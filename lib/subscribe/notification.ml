(* A change notification: what a subscriber receives when its subscription's
   underlying XML trigger fires.

   The wire form is NDJSON — one JSON object per line — because every sink
   speaks it: the file sink appends lines, the socket sink frames them, an
   in-process callback can parse or ignore them.  Rendering is lazy: the
   hot path (trigger firing -> enqueue) only captures the XML nodes; the
   string is produced when a sink first needs it, so notifications that are
   coalesced away or dropped by an overflow policy are never rendered. *)

type t = {
  subscription : string;
  seq : int;  (* per-subscription, assigned at enqueue, statement order *)
  stmt_id : int;  (* DML statement the firing derives from *)
  event : string;  (* INSERT / UPDATE / DELETE (XML-level event) *)
  trigger : string;  (* underlying XML trigger name *)
  old_xml : Xmlkit.Xml.t option;  (* OLD_NODE (absent for INSERT) *)
  new_xml : Xmlkit.Xml.t option;  (* NEW_NODE (absent for DELETE) *)
  ndjson : string Lazy.t;
}

(* Coalescing key: the monitored element's tag plus its attributes.  In
   key-tagged views (the trigger-specifiable views of Theorem 1) the node
   key surfaces as attributes of the monitored element — e.g. the catalog
   view's product@name — so two firings for the same view node coalesce
   while firings for different nodes never do.  Text content is excluded on
   purpose: it is exactly what changes between the versions we coalesce. *)
let node_key n =
  match n with
  | Xmlkit.Xml.Element { tag; attrs; _ } ->
    tag
    ^ String.concat ""
        (List.map
           (fun (k, v) -> "\x00" ^ k ^ "\x01" ^ v)
           (List.sort compare attrs))
  | Xmlkit.Xml.Text s -> "\x02" ^ s

let key t =
  t.subscription
  ^ "\x00"
  ^
  match t.new_xml, t.old_xml with
  | Some n, _ | None, Some n -> node_key n
  | None, None -> string_of_int t.seq  (* nothing to coalesce on: unique *)

let json_of t =
  let esc = Obs.Metrics.json_escape in
  let node = function
    | Some n -> "\"" ^ esc (Xmlkit.Xml.to_string ~canonical:true n) ^ "\""
    | None -> "null"
  in
  Printf.sprintf
    "{\"subscription\": \"%s\", \"seq\": %d, \"stmt\": %d, \"event\": \
     \"%s\", \"trigger\": \"%s\", \"old\": %s, \"new\": %s}"
    (esc t.subscription) t.seq t.stmt_id (esc t.event) (esc t.trigger)
    (node t.old_xml) (node t.new_xml)

let make ~subscription ~seq ~stmt_id ~event ~trigger ~old_xml ~new_xml =
  let rec n =
    { subscription; seq; stmt_id; event; trigger; old_xml; new_xml;
      ndjson = lazy (json_of n);
    }
  in
  n

(* The NDJSON line (no trailing newline), rendered on first use. *)
let to_ndjson t = Lazy.force t.ndjson
