(* The subscription hub: pub/sub delivery layered on the trigger runtime.

   A subscription is declared in DDL:

     SUBSCRIBE name AFTER event ON path [WHERE cond]
               [QUEUE n] [OVERFLOW drop-oldest|drop-newest|disconnect]
               [COALESCE on|off]

   and is implemented as an XML trigger over the published view:

     CREATE TRIGGER sub$name AFTER event ON path [WHERE cond]
       DO sub$notify('name', OLD_NODE, NEW_NODE)

   The literal first argument routes the firing back to its subscription —
   this is what makes one shared action function (and therefore, under
   GROUPED, one shared plan set) serve any number of subscribers: the
   subscription name is member state, not plan structure, exactly like the
   constants table of §5.1.

   Firings append {!Notification.t} records to the subscription's bounded
   {!Squeue}; [flush] drains every queue to the attached sinks (in-process
   callback, NDJSON file, {!Server} socket).  The period between two
   flushes is the coalescing window.

   Durability: the SUBSCRIBE DDL itself is logged (kind ["subscription"])
   while the generated trigger is *not* — after a crash, {!rearm} replays
   the subscription records from recovery meta and re-creates the triggers,
   so feeds come back armed without double-arming. *)

module Squeue = Squeue
module Replay = Replay
module Notification = Notification
module Server = Server
module Runtime = Trigview.Runtime
module Database = Relkit.Database

exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

type sink =
  | Callback of (Notification.t -> unit)
  | File of { path : string; oc : out_channel }
  | Socket of Server.t

type sub = {
  sb_name : string;
  sb_ddl : string;  (* the original SUBSCRIBE text, re-armed verbatim *)
  sb_event : Database.event;
  sb_path : string;
  sb_where : string option;
  sb_queue : Notification.t Squeue.t;
  sb_metric : string;  (* precomputed "deliver:<name>" histogram label *)
  mutable sb_seq : int;  (* per-subscription notification sequence *)
}

(* Sink I/O runs on a dedicated writer domain when one is started (see
   [start_writer]): [flush] drains the queues on the calling domain —
   keeping all conservation accounting deterministic — and hands the
   creation-ordered batch list to the writer through a Mutex/Condition
   inbox.  Socket writes and file appends then happen off the firing
   thread. *)
type writer = {
  w_lock : Mutex.t;
  w_cond : Condition.t;  (* signalled on enqueue AND on batch completion *)
  w_queue : (sub * Notification.t list) list Queue.t;  (* FIFO of flush batches *)
  mutable w_stop : bool;
  mutable w_busy : bool;  (* a popped batch is still being delivered *)
  mutable w_domain : unit Domain.t option;
}

type t = {
  mgr : Runtime.t;
  mutable subs : (string * sub) list;  (* newest first *)
  mutable ordered : (string * sub) list;  (* creation order; flush path *)
  (* Firing-path lookup, sharded by subscriber key so concurrent reader
     domains (parallel member fan-out) never contend on one table.  All
     structural mutation happens on the statement domain between firings;
     during a firing the shards are read-only, which OCaml Hashtbls allow
     from any number of domains. *)
  shards : (string, sub) Hashtbl.t array;
  mutable sinks : sink list;
  registry : Obs.Metrics.registry;  (* per-subscription delivery latency *)
  mutable flushes : int;
  mutable notifications_delivered : int;
  mutable writer : writer option;
}

let action_name = "sub$notify"
let trigger_name name = "sub$" ^ name

let n_shards = 16
let shard_of t name = t.shards.(Hashtbl.hash name land (n_shards - 1))
let find_sub t name = Hashtbl.find_opt (shard_of t name) name

(* --- the shared action: firing -> notification -> queue ---

   Registered [parallel_safe]: during a parallel member fan-out each shard
   dispatches distinct subscriptions, so [sb_seq] has one writer; the shard
   Hashtbls are read-only during firing; [Squeue.push] is mutex-guarded;
   and the audit branch is dead on the parallel path (fan-out is gated on
   auditing being off, so [fi_audit_id] is always 0 there). *)

let on_fire t (fi : Runtime.firing) =
  match fi.Runtime.fi_args with
  | Xqgm.Xval.Atom (Relkit.Value.String name) :: _ -> (
    match find_sub t name with
    | None -> ()  (* trigger outlived its subscription: stale firing, drop *)
    | Some sub ->
      sub.sb_seq <- sub.sb_seq + 1;
      let n =
        Notification.make ~subscription:name ~seq:sub.sb_seq
          ~stmt_id:fi.Runtime.fi_stmt_id
          ~event:(Database.string_of_event fi.Runtime.fi_event)
          ~trigger:fi.Runtime.fi_trigger ~old_xml:fi.Runtime.fi_old
          ~new_xml:fi.Runtime.fi_new
      in
      (* the key only matters for coalescing; skip building it otherwise *)
      let key =
        if Squeue.coalescing sub.sb_queue then Notification.key n else ""
      in
      let result = Squeue.push sub.sb_queue ~key n in
      if fi.Runtime.fi_audit_id > 0 then
        Obs.Audit.annotate
          (Database.audit (Runtime.database t.mgr))
          ~firing_id:fi.Runtime.fi_audit_id
          (Printf.sprintf "subscription %S: seq %d %s (depth %d)" name
             sub.sb_seq
             (match result with
             | Squeue.Enqueued -> "enqueued"
             | Squeue.Coalesced -> "coalesced"
             | Squeue.Dropped -> "dropped (overflow)"
             | Squeue.Disconnected -> "dropped (subscriber disconnected)")
             (Squeue.depth sub.sb_queue)))
  | _ -> ()  (* not a subscription-shaped firing *)

let attach mgr =
  let t =
    { mgr;
      subs = [];
      ordered = [];
      shards = Array.init n_shards (fun _ -> Hashtbl.create 8);
      sinks = [];
      registry = Obs.Metrics.create_registry ();
      flushes = 0;
      notifications_delivered = 0;
      writer = None;
    }
  in
  Runtime.register_action ~parallel_safe:true mgr ~name:action_name
    (fun fi -> on_fire t fi);
  t

(* --- SUBSCRIBE DDL parsing --- *)

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       name

type parsed = {
  p_name : string;
  p_event : Database.event;
  p_path : string;
  p_where : string option;
  p_capacity : int;
  p_overflow : Squeue.overflow;
  p_coalesce : bool;
}

let parse_ddl text =
  let kw k ~from = Trigview.Trigger.find_keyword text k ~from in
  let must k ~from =
    match kw k ~from with
    | Some i -> i
    | None -> fail "expected %s in subscription definition" k
  in
  let slice a b = String.trim (String.sub text a (b - a)) in
  let len = String.length text in
  let start =
    match kw "SUBSCRIBE" ~from:0 with Some i -> i + 9 | None -> 0
  in
  let after_i = must "AFTER" ~from:start in
  let on_i = must "ON" ~from:after_i in
  let name = slice start after_i in
  if not (valid_name name) then
    fail "malformed subscription name %S (use letters, digits, _ - .)" name;
  let event =
    match String.uppercase_ascii (slice (after_i + 5) on_i) with
    | "UPDATE" -> Database.Update
    | "INSERT" -> Database.Insert
    | "DELETE" -> Database.Delete
    | s -> fail "unknown event %S (expected UPDATE, INSERT or DELETE)" s
  in
  let where_i = kw "WHERE" ~from:on_i in
  let queue_i = kw "QUEUE" ~from:on_i in
  let overflow_i = kw "OVERFLOW" ~from:on_i in
  let coalesce_i = kw "COALESCE" ~from:on_i in
  let opts = List.filter_map Fun.id [ queue_i; overflow_i; coalesce_i ] in
  let end_of from = List.fold_left min len (List.filter (fun i -> i > from) opts) in
  let path_end =
    match where_i with Some w -> w | None -> end_of on_i
  in
  let p_path = slice (on_i + 2) path_end in
  if p_path = "" then fail "missing subscription path";
  let p_where =
    match where_i with
    | Some w ->
      let c = slice (w + 5) (end_of w) in
      if c = "" then fail "empty WHERE condition" else Some c
    | None -> None
  in
  (* option clauses take one word each *)
  let word_after i skip =
    let rest = String.sub text (i + skip) (len - i - skip) in
    match String.split_on_char ' ' (String.trim rest) with
    | w :: _ when w <> "" -> w
    | _ -> fail "missing value after option at offset %d" i
  in
  let p_capacity =
    match queue_i with
    | None -> 1024
    | Some i -> (
      match int_of_string_opt (word_after i 5) with
      | Some n when n > 0 -> n
      | _ -> fail "QUEUE expects a positive integer capacity")
  in
  let p_overflow =
    match overflow_i with
    | None -> Squeue.Drop_oldest
    | Some i -> (
      let w = String.lowercase_ascii (word_after i 8) in
      match Squeue.overflow_of_string w with
      | Some p -> p
      | None -> fail "unknown OVERFLOW policy %S (drop-oldest, drop-newest, disconnect)" w)
  in
  let p_coalesce =
    match coalesce_i with
    | None -> false
    | Some i -> (
      match String.lowercase_ascii (word_after i 8) with
      | "on" | "true" -> true
      | "off" | "false" -> false
      | w -> fail "COALESCE expects on or off, not %S" w)
  in
  { p_name = name; p_event = event; p_path; p_where; p_capacity; p_overflow; p_coalesce }

let trigger_text (p : parsed) =
  let args =
    match p.p_event with
    | Database.Insert -> Printf.sprintf "'%s', NEW_NODE" p.p_name
    | Database.Delete -> Printf.sprintf "'%s', OLD_NODE" p.p_name
    | Database.Update -> Printf.sprintf "'%s', OLD_NODE, NEW_NODE" p.p_name
  in
  Printf.sprintf "CREATE TRIGGER %s AFTER %s ON %s%s DO %s(%s)"
    (trigger_name p.p_name)
    (Database.string_of_event p.p_event)
    p.p_path
    (match p.p_where with Some c -> " WHERE " ^ c | None -> "")
    action_name args

(* --- lifecycle --- *)

(* [log] is off while re-arming from recovery meta would re-log records the
   WAL already holds... no: re-arming *must* re-log, because the runtime the
   records are replayed into starts with an empty DDL log (see [rearm]).
   The flag exists for callers embedding the hub without durability
   semantics; the CLI and tests always log. *)
let subscribe_internal ?(log = true) t ddl =
  let p = parse_ddl ddl in
  if find_sub t p.p_name <> None then fail "subscription %S already exists" p.p_name;
  (match Runtime.create_trigger ~log:false t.mgr (trigger_text p) with
  | () -> ()
  | exception Runtime.Error msg -> fail "cannot arm subscription %S: %s" p.p_name msg);
  let sub =
    { sb_name = p.p_name;
      sb_ddl = ddl;
      sb_event = p.p_event;
      sb_path = p.p_path;
      sb_where = p.p_where;
      sb_queue =
        Squeue.create ~capacity:p.p_capacity ~overflow:p.p_overflow
          ~coalesce:p.p_coalesce ();
      sb_metric = "deliver:" ^ p.p_name;
      sb_seq = 0;
    }
  in
  t.subs <- (p.p_name, sub) :: t.subs;
  t.ordered <- List.rev t.subs;
  Hashtbl.replace (shard_of t p.p_name) p.p_name sub;
  if log then
    Runtime.record_custom_ddl t.mgr ~kind:"subscription" ~name:p.p_name ~payload:ddl

let subscribe t ddl = subscribe_internal t ddl

let unsubscribe t name =
  match find_sub t name with
  | None -> fail "no subscription %S" name
  | Some _ ->
    Runtime.drop_trigger ~log:false t.mgr (trigger_name name);
    t.subs <- List.remove_assoc name t.subs;
    t.ordered <- List.rev t.subs;
    Hashtbl.remove (shard_of t name) name;
    Runtime.record_custom_ddl t.mgr ~kind:"drop_subscription" ~name ~payload:""

let subscription_names t = List.rev_map fst t.subs
let subscriptions t = List.rev_map snd t.subs

(* Re-arm subscriptions after {!Runtime.reopen}: replay the logged
   subscription DDL (recovery meta, commit order).  The fresh runtime's DDL
   log starts empty, so re-subscribing re-records each surviving
   subscription — the next checkpoint then carries them forward. *)
let rearm t ~meta =
  let errors = ref [] in
  List.iter
    (fun (kind, name, payload) ->
      match kind with
      | "subscription" -> (
        match subscribe_internal t payload with
        | () -> ()
        | exception Error msg -> errors := Printf.sprintf "subscription %S: %s" name msg :: !errors)
      | "drop_subscription" ->
        if find_sub t name <> None then (
          match unsubscribe t name with
          | () -> ()
          | exception Error msg -> errors := Printf.sprintf "drop %S: %s" name msg :: !errors)
      | _ -> ())
    meta;
  List.rev !errors

(* --- sinks --- *)

let add_callback t f = t.sinks <- Callback f :: t.sinks

let add_file t ~path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  t.sinks <- File { path; oc } :: t.sinks

let add_server t server = t.sinks <- Socket server :: t.sinks

let server t =
  List.find_map (function Socket s -> Some s | _ -> None) t.sinks

(* --- delivery --- *)

let deliver_one t n =
  List.iter
    (function
      | Callback f -> f n
      | File { oc; _ } ->
        output_string oc (Notification.to_ndjson n);
        output_char oc '\n'
      | Socket srv -> Server.publish srv (Notification.to_ndjson n))
    t.sinks

(* Push one flush's batches to the sinks, in subscription-creation order.
   Runs on the flushing domain in sync mode and on the writer domain in
   async mode ([Obs.Trace] keeps a ring per domain; the delivery-latency
   histograms are pre-created by [flush] before handoff, so [observe_in]
   never mutates the registry structurally off the statement domain). *)
let deliver_batches t ~tracer batches =
  List.iter
    (fun (sub, items) ->
      let t0 = Obs.Trace.now () in
      List.iter (deliver_one t) items;
      List.iter
        (function File { oc; _ } -> flush oc | Callback _ | Socket _ -> ())
        t.sinks;
      Obs.Metrics.observe_in t.registry sub.sb_metric
        (Int64.sub (Obs.Trace.now ()) t0);
      if Obs.Trace.enabled tracer then
        Obs.Trace.finish_note tracer t0 "deliver" sub.sb_name)
    batches

let writer_loop t w =
  let tracer = Database.tracer (Runtime.database t.mgr) in
  let rec loop () =
    Mutex.lock w.w_lock;
    while Queue.is_empty w.w_queue && not w.w_stop do
      Condition.wait w.w_cond w.w_lock
    done;
    if Queue.is_empty w.w_queue then Mutex.unlock w.w_lock  (* stopping *)
    else begin
      let batches = Queue.pop w.w_queue in
      w.w_busy <- true;
      Mutex.unlock w.w_lock;
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock w.w_lock;
          w.w_busy <- false;
          Condition.broadcast w.w_cond;
          Mutex.unlock w.w_lock)
        (fun () -> deliver_batches t ~tracer batches);
      loop ()
    end
  in
  loop ()

let start_writer t =
  match t.writer with
  | Some _ -> ()
  | None ->
    let w =
      { w_lock = Mutex.create ();
        w_cond = Condition.create ();
        w_queue = Queue.create ();
        w_stop = false;
        w_busy = false;
        w_domain = None;
      }
    in
    t.writer <- Some w;
    w.w_domain <- Some (Domain.spawn (fun () -> writer_loop t w))

(* Block until every handed-off batch has reached the sinks.  No-op in
   sync mode. *)
let drain_writer t =
  match t.writer with
  | None -> ()
  | Some w ->
    Mutex.lock w.w_lock;
    while (not (Queue.is_empty w.w_queue)) || w.w_busy do
      Condition.wait w.w_cond w.w_lock
    done;
    Mutex.unlock w.w_lock

let stop_writer t =
  match t.writer with
  | None -> ()
  | Some w ->
    drain_writer t;
    Mutex.lock w.w_lock;
    w.w_stop <- true;
    Condition.broadcast w.w_cond;
    Mutex.unlock w.w_lock;
    (match w.w_domain with Some d -> Domain.join d | None -> ());
    t.writer <- None

(* Stops the writer (if any) before closing: a file channel must not be
   closed under a delivery in flight. *)
let close_sinks t =
  stop_writer t;
  List.iter
    (function
      | File { oc; _ } -> close_out_noerr oc
      | Callback _ | Socket _ -> ())
    t.sinks;
  t.sinks <- []

(* Drain every subscription queue to the sinks, in subscription-creation
   order; within one queue, items leave in enqueue (statement) order.  Ends
   the current coalescing window.  Returns the number of notifications
   delivered.  Delivery latency is recorded per subscription, and a
   [deliver] span per non-empty queue lands in the runtime's tracer.

   Queue draining — and with it all Squeue conservation accounting and
   [notifications_delivered] — always happens here, on the calling domain,
   so the counters are deterministic at any domain count.  Only the sink
   I/O moves to the writer domain when one is running; callers that need
   the bytes on the wire before proceeding use [drain_writer]. *)
let flush t =
  t.flushes <- t.flushes + 1;
  let tracer = Database.tracer (Runtime.database t.mgr) in
  let batches =
    List.filter_map
      (fun (_, sub) ->
        match Squeue.flush sub.sb_queue with
        | [] -> None
        | items ->
          ignore (Obs.Metrics.ensure_in t.registry sub.sb_metric);
          Some (sub, items))
      t.ordered
  in
  let total =
    List.fold_left (fun acc (_, items) -> acc + List.length items) 0 batches
  in
  (match t.writer with
  | None -> deliver_batches t ~tracer batches
  | Some w ->
    if batches <> [] then begin
      Mutex.lock w.w_lock;
      Queue.push batches w.w_queue;
      Condition.broadcast w.w_cond;
      Mutex.unlock w.w_lock
    end);
  t.notifications_delivered <- total + t.notifications_delivered;
  total

(* --- observability --- *)

let pending t =
  List.fold_left (fun acc (_, s) -> acc + Squeue.depth s.sb_queue) 0 t.subs

let report t =
  let buf = Buffer.create 512 in
  if t.subs = [] then Buffer.add_string buf "(no subscriptions)\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%-16s %-7s %-10s %-8s %9s %9s %9s %9s %7s\n" "name"
         "event" "overflow" "coalesce" "enqueued" "delivered" "dropped"
         "coalesced" "depth");
    List.iter
      (fun (_, s) ->
        Buffer.add_string buf
          (Printf.sprintf "%-16s %-7s %-10s %-8s %9d %9d %9d %9d %7d%s\n"
             s.sb_name
             (Database.string_of_event s.sb_event)
             (Squeue.overflow_to_string (Squeue.overflow s.sb_queue))
             (if Squeue.coalescing s.sb_queue then "on" else "off")
             (Squeue.enqueued s.sb_queue)
             (Squeue.delivered s.sb_queue)
             (Squeue.dropped s.sb_queue)
             (Squeue.coalesced s.sb_queue)
             (Squeue.depth s.sb_queue)
             (if Squeue.disconnected s.sb_queue then " [disconnected]" else "")))
      (List.rev t.subs);
    Buffer.add_string buf
      (Printf.sprintf "%d flush(es), %d notification(s) delivered to %d sink(s)\n"
         t.flushes t.notifications_delivered (List.length t.sinks))
  end;
  (match server t with
  | None -> ()
  | Some srv ->
    Buffer.add_string buf
      (Printf.sprintf
         "socket server: %d client(s), %d published, %d frame(s) sent, %d \
          dropped, %d evicted (deadline %d ms)\n"
         (Server.client_count srv) (Server.published srv)
         (Server.frames_sent srv) (Server.clients_dropped srv)
         (Server.clients_evicted srv) (Server.deadline_ms srv)));
  Buffer.contents buf

(* Per-subscriber counters and gauges plus delivery latency histograms, in
   Prometheus text exposition format; appended to the runtime's own
   {!Runtime.metrics_prometheus} by the CLI. *)
let metrics_prometheus t =
  let per f = List.rev_map (fun (name, s) -> (name, f s.sb_queue)) t.subs in
  let buf = Buffer.create 1024 in
  if t.subs <> [] then begin
    Buffer.add_string buf
      (Obs.Metrics.prometheus_counters
         ~metric:"trigview_subscription_enqueued_total" (per Squeue.enqueued));
    Buffer.add_string buf
      (Obs.Metrics.prometheus_counters
         ~metric:"trigview_subscription_delivered_total" (per Squeue.delivered));
    Buffer.add_string buf
      (Obs.Metrics.prometheus_counters
         ~metric:"trigview_subscription_dropped_total" (per Squeue.dropped));
    Buffer.add_string buf
      (Obs.Metrics.prometheus_counters
         ~metric:"trigview_subscription_coalesced_total" (per Squeue.coalesced));
    Buffer.add_string buf
      (Obs.Metrics.prometheus_gauges ~metric:"trigview_subscription_depth"
         (per Squeue.depth))
  end;
  (match server t with
  | None -> ()
  | Some srv ->
    Buffer.add_string buf
      (Obs.Metrics.prometheus_counters ~metric:"trigview_subscribe_server_total"
         [ ("published", Server.published srv);
           ("frames_sent", Server.frames_sent srv);
           ("clients_dropped", Server.clients_dropped srv);
           ("clients_evicted", Server.clients_evicted srv);
         ]);
    Buffer.add_string buf
      (Obs.Metrics.prometheus_gauges
         ~metric:"trigview_subscribe_server_deadline_ms"
         [ ("configured", Server.deadline_ms srv) ]);
    Buffer.add_string buf
      (Obs.Metrics.prometheus_gauges ~metric:"trigview_subscribe_server_clients"
         [ ("connected", Server.client_count srv) ]));
  Buffer.add_string buf
    (Obs.Metrics.registry_to_prometheus ~metric:"trigview_delivery_ns" t.registry);
  Buffer.contents buf

let delivery_latencies t = Obs.Metrics.histograms t.registry
