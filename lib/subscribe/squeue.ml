(* Bounded per-subscriber delivery queue.

   A queue holds at most [capacity] pending notifications between flushes
   (the "flush window").  Three overflow policies match what a real fan-out
   tier needs: [Drop_oldest] (a lagging dashboard wants the freshest state),
   [Drop_newest] (an auditor wants the contiguous prefix), and [Disconnect]
   (a subscriber that cannot keep up is kicked and must re-sync, e.g. over
   the socket sink's ack/redelivery protocol).

   Coalescing is key-based and scoped to the flush window: when a new item
   carries the same key as one still pending, the pending item's payload is
   replaced *in place* — it keeps its queue position, so per-key delivery
   order is the first-arrival order and cross-key order is FIFO.  The
   superseded payload counts as [coalesced], never as delivered.

   Storage is a ring indexed by monotone sequence numbers, so there are no
   holes: [pending = next_seq - head_seq], eviction advances [head_seq],
   coalescing rewrites a slot.  The accounting invariant tests rely on:

     enqueued = delivered + dropped + coalesced + pending

   A queue is safe for cross-domain producer/consumer use: every operation
   that touches the ring, the coalescing index, or a pair of counters runs
   under the queue's mutex.  The per-queue lock is uncontended in the
   sequential engine and held only for the few stores of one push/flush,
   so the sequential cost is one lock/unlock pair per operation. *)

type overflow = Drop_oldest | Drop_newest | Disconnect

let overflow_to_string = function
  | Drop_oldest -> "drop-oldest"
  | Drop_newest -> "drop-newest"
  | Disconnect -> "disconnect"

let overflow_of_string = function
  | "drop-oldest" -> Some Drop_oldest
  | "drop-newest" -> Some Drop_newest
  | "disconnect" -> Some Disconnect
  | _ -> None

type push_result =
  | Enqueued
  | Coalesced  (* replaced a pending same-key item in place *)
  | Dropped  (* lost to the overflow policy *)
  | Disconnected  (* queue is (now) disconnected; item lost *)

type 'a slot = {
  s_key : string;
  mutable s_payload : 'a;
}

type 'a t = {
  capacity : int;
  overflow : overflow;
  coalesce : bool;
  lock : Mutex.t;  (* guards everything mutable below *)
  buf : 'a slot option array;  (* slot for seq s lives at s mod capacity *)
  index : (string, int) Hashtbl.t;  (* key -> pending seq (coalesce target) *)
  mutable head_seq : int;  (* seq of the oldest pending item *)
  mutable next_seq : int;
  mutable enqueued : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable coalesced : int;
  mutable disconnected : bool;
}

let create ?(capacity = 1024) ?(overflow = Drop_oldest) ?(coalesce = false) () =
  let capacity = max 1 capacity in
  { capacity;
    overflow;
    coalesce;
    lock = Mutex.create ();
    buf = Array.make capacity None;
    index = Hashtbl.create 64;
    head_seq = 0;
    next_seq = 0;
    enqueued = 0;
    delivered = 0;
    dropped = 0;
    coalesced = 0;
    disconnected = false;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.capacity
let overflow t = t.overflow
let coalescing t = t.coalesce
let depth_unlocked t = t.next_seq - t.head_seq
let depth t = with_lock t (fun () -> depth_unlocked t)
let enqueued t = with_lock t (fun () -> t.enqueued)
let delivered t = with_lock t (fun () -> t.delivered)
let dropped t = with_lock t (fun () -> t.dropped)
let coalesced t = with_lock t (fun () -> t.coalesced)
let disconnected t = with_lock t (fun () -> t.disconnected)

(* Re-admit a subscriber kicked by [Disconnect] (it re-synced out of band). *)
let reconnect t = with_lock t (fun () -> t.disconnected <- false)

let evict_head t =
  (match t.buf.(t.head_seq mod t.capacity) with
  | Some s ->
    (if t.coalesce then
       match Hashtbl.find_opt t.index s.s_key with
       | Some seq when seq = t.head_seq -> Hashtbl.remove t.index s.s_key
       | _ -> ());
    t.buf.(t.head_seq mod t.capacity) <- None
  | None -> ());
  t.head_seq <- t.head_seq + 1;
  t.dropped <- t.dropped + 1

(* the key index exists only to coalesce: skip its upkeep otherwise *)
let append t key v =
  t.buf.(t.next_seq mod t.capacity) <- Some { s_key = key; s_payload = v };
  if t.coalesce then Hashtbl.replace t.index key t.next_seq;
  t.next_seq <- t.next_seq + 1

let push t ~key v =
  with_lock t @@ fun () ->
  t.enqueued <- t.enqueued + 1;
  if t.disconnected then begin
    t.dropped <- t.dropped + 1;
    Disconnected
  end
  else
    match
      if t.coalesce then Hashtbl.find_opt t.index key else None
    with
    | Some seq when seq >= t.head_seq -> (
      match t.buf.(seq mod t.capacity) with
      | Some s ->
        s.s_payload <- v;
        t.coalesced <- t.coalesced + 1;
        Coalesced
      | None ->
        (* stale index entry (should not happen: eviction and flush both
           clean the index); treat as a fresh enqueue *)
        Hashtbl.remove t.index key;
        append t key v;
        Enqueued)
    | _ ->
      if depth_unlocked t >= t.capacity then
        match t.overflow with
        | Drop_newest ->
          t.dropped <- t.dropped + 1;
          Dropped
        | Drop_oldest ->
          evict_head t;
          append t key v;
          Enqueued
        | Disconnect ->
          (* the subscriber is gone: everything pending is lost with it *)
          while depth_unlocked t > 0 do
            evict_head t
          done;
          Hashtbl.reset t.index;
          t.dropped <- t.dropped + 1;
          t.disconnected <- true;
          Disconnected
      else begin
        append t key v;
        Enqueued
      end

(* Drain the pending window in order; the drained items count as delivered
   (the caller hands them to a sink). *)
let flush t =
  with_lock t @@ fun () ->
  let n = depth_unlocked t in
  let out = ref [] in
  (* clear only the occupied window, not the whole ring: flush runs once
     per statement batch and capacity may be far larger than depth *)
  for i = n - 1 downto 0 do
    let slot = (t.head_seq + i) mod t.capacity in
    (match t.buf.(slot) with
    | Some s -> out := s.s_payload :: !out
    | None -> ());
    t.buf.(slot) <- None
  done;
  if t.coalesce then Hashtbl.reset t.index;
  t.head_seq <- t.next_seq;
  t.delivered <- t.delivered + n;
  !out

(* The accounting invariant, for tests and assertions; the lock makes the
   snapshot consistent even while producers on other domains keep pushing. *)
let invariant_holds t =
  with_lock t @@ fun () ->
  let d = depth_unlocked t in
  t.enqueued = t.delivered + t.dropped + t.coalesced + d
  && d >= 0
  && d <= t.capacity
