(* Unix-domain-socket notification server.

   Single-threaded and step-driven: [step] runs one [select] round —
   accept new clients, read their frames, flush pending output — and
   returns.  The owner (CLI serve loop, tests, an embedding application)
   decides when to pump; nothing here blocks longer than the given timeout,
   so the server composes with a synchronous trigger runtime in one thread.

   Wire protocol, both directions: length-prefixed frames — a 4-byte
   big-endian payload length followed by that many bytes of UTF-8 JSON
   ({!Replay.frame_u32}).

   Server -> client frames carry one notification each, wrapped with the
   server's global publication sequence:

     {"gseq": 17, "payload": {"subscription": ..., "seq": ..., ...}}

   Client -> server frames are acks: {"ack": N} with N a gseq.  The ack is
   a *cursor*: the server remembers, per client identity, the highest acked
   gseq, and a client's first frame after connecting must be an ack naming
   the last gseq it has safely consumed (0 for a fresh client).  On that
   hello the server replays every retained notification above the cursor,
   then streams live — at-least-once delivery across reconnects, bounded by
   the retention ring ([retain] notifications; a client further behind than
   that gets the oldest retained data and a "gap" marker frame
   {"gap": true, "oldest": G} first).  Retention and replay live in the
   transport-agnostic {!Replay} core shared with the HTTP SSE sink.

   A client whose output buffer exceeds [max_buffered] bytes is dropped
   (slow-consumer protection); it can reconnect and resync via its ack
   cursor.  This mirrors the queue layer's [Disconnect] overflow policy one
   level down the stack.  Independently, [deadline_ms] (default: the
   TRIGVIEW_REQUEST_DEADLINE_MS knob) bounds how long a client may sit
   connected without completing its hello ack, and how long queued output
   may sit undrained: both evict the client ([clients_evicted]), the same
   request-deadline hygiene the HTTP front door applies per request.

   Cross-domain use: the hub's dedicated writer domain calls [publish]
   while the owning thread pumps [step], so the three entry points that
   touch server state ([publish], [step], [stop]) serialize on one coarse
   mutex.  [step] holds it across its [select] round — publishers stall at
   most one timeout (callers pump with 0–10 ms timeouts); a finer lock is
   not worth the complexity for a fan-out of one writer + one pump. *)

type client = {
  fd : Unix.file_descr;
  mutable inbuf : Buffer.t;
  outbuf : Buffer.t;
  mutable greeted : bool;  (* saw the hello ack; live frames flow after it *)
  mutable acked : int;  (* highest gseq this client acknowledged *)
  mutable closed : bool;
  mutable greet_due : int64;  (* ns deadline for the hello ack; 0 = none *)
  mutable write_due : int64;  (* ns deadline to drain outbuf; 0 = none *)
}

type t = {
  path : string;
  lock : Mutex.t;  (* serializes publish / step / stop across domains *)
  listen_fd : Unix.file_descr;
  mutable clients : client list;
  ring : string Replay.t;  (* retained payloads, keyed by gseq *)
  max_buffered : int;
  deadline_ms : int;  (* 0 disables deadline eviction *)
  mutable frames_sent : int;
  mutable clients_dropped : int;  (* slow consumers disconnected *)
  mutable clients_evicted : int;  (* deadline evictions (hello / stalled write) *)
  mutable stopped : bool;
}

let create ?(retain = 4096) ?(max_buffered = 4 * 1024 * 1024) ?deadline_ms
    ~path () =
  (if Sys.file_exists path then
     match (Unix.stat path).Unix.st_kind with
     | Unix.S_SOCK -> Sys.remove path  (* stale socket from a dead server *)
     | _ -> invalid_arg (Printf.sprintf "Server.create: %s exists and is not a socket" path));
  let deadline_ms =
    match deadline_ms with Some ms -> max 0 ms | None -> Obs.Knobs.request_deadline_ms ()
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  { path;
    lock = Mutex.create ();
    listen_fd = fd;
    clients = [];
    ring = Replay.create ~retain ();
    max_buffered;
    deadline_ms;
    frames_sent = 0;
    clients_dropped = 0;
    clients_evicted = 0;
    stopped = false;
  }

let path t = t.path
let client_count t = List.length t.clients
let published t = Replay.published t.ring
let frames_sent t = t.frames_sent
let clients_dropped t = t.clients_dropped
let clients_evicted t = t.clients_evicted
let deadline_ms t = t.deadline_ms
let last_gseq t = Replay.last_gseq t.ring

let deadline_after t =
  Int64.add (Obs.Trace.now ()) (Int64.of_int (t.deadline_ms * 1_000_000))

let close_client t c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.clients <- List.filter (fun c' -> c' != c) t.clients
  end

let send_frame t c payload =
  Buffer.add_string c.outbuf (Replay.frame_u32 payload);
  t.frames_sent <- t.frames_sent + 1;
  if t.deadline_ms > 0 && c.write_due = 0L then c.write_due <- deadline_after t;
  if Buffer.length c.outbuf > t.max_buffered then begin
    t.clients_dropped <- t.clients_dropped + 1;
    close_client t c
  end

let wrapped gseq payload =
  Printf.sprintf "{\"gseq\": %d, \"payload\": %s}" gseq payload

(* Replay everything retained above [cursor] to a (re)connecting client. *)
let replay t c ~cursor =
  (match Replay.gap_before t.ring ~cursor with
  | Some oldest ->
    send_frame t c (Printf.sprintf "{\"gap\": true, \"oldest\": %d}" oldest)
  | None -> ());
  Replay.iter_from t.ring ~cursor (fun g payload ->
      send_frame t c (wrapped g payload))

(* Publish one notification payload: retain it and send it to every greeted
   client.  Ungreeted clients get it from their hello replay instead —
   sending it twice would break the "frames arrive in gseq order" contract. *)
let publish t payload =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let gseq = Replay.publish t.ring payload in
  List.iter
    (fun c -> if c.greeted && not c.closed then send_frame t c (wrapped gseq payload))
    t.clients

(* Minimal parse of {"ack": N}: the only client->server frame. *)
let parse_ack payload =
  let rec digits i acc seen =
    if i >= String.length payload then if seen then Some acc else None
    else
      match payload.[i] with
      | '0' .. '9' as ch -> digits (i + 1) ((acc * 10) + (Char.code ch - 48)) true
      | _ -> if seen then Some acc else digits (i + 1) acc false
  in
  let has_ack =
    let rec find i =
      i + 5 <= String.length payload
      && (String.sub payload i 5 = "\"ack\"" || find (i + 1))
    in
    find 0
  in
  if has_ack then digits 0 0 false else None

let handle_frame t c payload =
  match parse_ack payload with
  | Some n ->
    c.acked <- max c.acked n;
    if not c.greeted then begin
      c.greeted <- true;
      c.greet_due <- 0L;
      replay t c ~cursor:c.acked
    end
  | None -> ()  (* unknown frame: ignore (forward compatibility) *)

(* Drain complete frames out of a client's input buffer. *)
let process_inbuf t c =
  let continue = ref true in
  while !continue do
    let data = Buffer.contents c.inbuf in
    let n = String.length data in
    if n < 4 then continue := false
    else
      let len =
        (Char.code data.[0] lsl 24)
        lor (Char.code data.[1] lsl 16)
        lor (Char.code data.[2] lsl 8)
        lor Char.code data.[3]
      in
      if len < 0 || len > 1 lsl 20 then begin
        (* protocol violation: oversized / corrupt frame header *)
        close_client t c;
        continue := false
      end
      else if n < 4 + len then continue := false
      else begin
        let payload = String.sub data 4 len in
        let rest = String.sub data (4 + len) (n - 4 - len) in
        Buffer.clear c.inbuf;
        Buffer.add_string c.inbuf rest;
        handle_frame t c payload
      end
  done

let read_client t c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> close_client t c  (* orderly EOF *)
  | n ->
    Buffer.add_subbytes c.inbuf buf 0 n;
    process_inbuf t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_client t c

let write_client t c =
  let data = Buffer.contents c.outbuf in
  if data <> "" then
    match Unix.write_substring c.fd data 0 (String.length data) with
    | n ->
      Buffer.clear c.outbuf;
      if n < String.length data then
        Buffer.add_substring c.outbuf data n (String.length data - n)
      else c.write_due <- 0L
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_client t c

let accept_pending t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.clients <-
        { fd;
          inbuf = Buffer.create 256;
          outbuf = Buffer.create 1024;
          greeted = false;
          acked = 0;
          closed = false;
          greet_due = (if t.deadline_ms > 0 then deadline_after t else 0L);
          write_due = 0L;
        }
        :: t.clients
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

(* Evict clients past their hello or write-drain deadline.  Like the
   slow-consumer drop, eviction is not an error for the client: its ack
   cursor survives, so a reconnect resyncs via replay. *)
let enforce_deadlines t =
  if t.deadline_ms > 0 then begin
    let now = Obs.Trace.now () in
    let overdue =
      List.filter
        (fun c ->
          (not c.closed)
          && ((c.greet_due <> 0L && Int64.compare now c.greet_due > 0)
             || (c.write_due <> 0L && Int64.compare now c.write_due > 0)))
        t.clients
    in
    List.iter
      (fun c ->
        t.clients_evicted <- t.clients_evicted + 1;
        close_client t c)
      overdue
  end

(* One cooperative round: wait up to [timeout_ms] for activity, then accept
   / read / write whatever is ready.  Returns the number of fds that were
   ready (0 on a pure timeout), so callers can spin while progress lasts. *)
let step ?(timeout_ms = 0) t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if t.stopped then 0
  else begin
    let reads = t.listen_fd :: List.map (fun c -> c.fd) t.clients in
    let writes =
      List.filter_map
        (fun c -> if Buffer.length c.outbuf > 0 then Some c.fd else None)
        t.clients
    in
    let timeout = float_of_int (max 0 timeout_ms) /. 1000.0 in
    match Unix.select reads writes [] timeout with
    | rs, ws, _ ->
      if List.mem t.listen_fd rs then accept_pending t;
      List.iter
        (fun c -> if (not c.closed) && List.mem c.fd rs then read_client t c)
        t.clients;
      List.iter
        (fun c -> if (not c.closed) && List.mem c.fd ws then write_client t c)
        t.clients;
      enforce_deadlines t;
      List.length rs + List.length ws
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  end

let stop t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if not t.stopped then begin
    t.stopped <- true;
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.clients;
    t.clients <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Sys.remove t.path with Sys_error _ -> ()
  end
