(* Transport-agnostic retained-ring replay core.

   Factored out of the Unix-socket server so every delivery transport —
   length-prefixed socket frames, HTTP server-sent events, long-poll —
   shares one publication-sequence / retention / replay implementation.

   Semantics (unchanged from the socket server that originated them):

   - every published entry gets the next global sequence number
     ([gseq], 1-based);
   - the last [retain] entries are kept in a ring;
   - a client that reconnects with an ack cursor C is replayed every
     retained entry with gseq > C, in order; if C+1 has already been
     evicted the caller is told the oldest retained gseq first so it
     can emit a transport-appropriate gap marker.

   Not thread-safe by itself: owners serialize access under their own
   lock (the socket server's publish/step/stop mutex, the HTTP
   server's connection lock). *)

type 'a t = {
  ring : (int * 'a) option array;  (* (gseq, entry) slots *)
  cap : int;
  mutable gseq : int;  (* last published global sequence number *)
  mutable published : int;  (* lifetime publish count *)
}

let create ?(retain = 4096) () =
  let cap = max 1 retain in
  { ring = Array.make cap None; cap; gseq = 0; published = 0 }

let capacity t = t.cap
let last_gseq t = t.gseq
let published t = t.published

(* Retain [v] under the next gseq and return it. *)
let publish t v =
  t.gseq <- t.gseq + 1;
  t.published <- t.published + 1;
  t.ring.((t.gseq - 1) mod t.cap) <- Some (t.gseq, v);
  t.gseq

(* Oldest gseq still guaranteed retained; 1 while nothing has been
   evicted yet. *)
let oldest_retained t = max 1 (t.gseq - min t.gseq t.cap + 1)

(* [Some oldest] when [cursor] is further behind than retention reaches:
   the client must be told about the gap before any replay. *)
let gap_before t ~cursor =
  let oldest = oldest_retained t in
  if cursor + 1 < oldest && t.gseq > 0 then Some oldest else None

(* Visit every retained entry above [cursor], in gseq order. *)
let iter_from t ~cursor f =
  for g = max (cursor + 1) (oldest_retained t) to t.gseq do
    match t.ring.((g - 1) mod t.cap) with
    | Some (g', v) when g' = g -> f g v
    | _ -> ()
  done

let entries_from t ~cursor =
  let acc = ref [] in
  iter_from t ~cursor (fun g v -> acc := (g, v) :: !acc);
  List.rev !acc

(* The socket transport's framing: 4-byte big-endian payload length,
   then the payload bytes.  Shared here so tests and any future framed
   transport agree with the server on the wire format. *)
let frame_u32 payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b
