(* Capacity knobs for the observability layer, overridable through
   TRIGVIEW_* environment variables.  These provide the process-wide
   defaults; `Runtime.tuning` can override them per runtime. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> default)
  | None -> default

(* Like [env_int] but 0 is meaningful (= feature disabled). *)
let env_int0 name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> default)
  | None -> default

let default_trace_ring = 8192
let default_audit_ring = 4096
let default_window_buckets = 12
let default_window_width_ms = 5000
let trace_ring () = env_int "TRIGVIEW_TRACE_RING" default_trace_ring
let audit_ring () = env_int "TRIGVIEW_AUDIT_RING" default_audit_ring

let window_buckets () =
  env_int "TRIGVIEW_WINDOW_BUCKETS" default_window_buckets

let window_width_ms () =
  env_int "TRIGVIEW_WINDOW_WIDTH_MS" default_window_width_ms

(* Per-request deadline for the network servers (socket hello/write-drain
   eviction, HTTP request/long-poll abort).  0 disables deadlines. *)
let default_request_deadline_ms = 10_000

let request_deadline_ms () =
  env_int0 "TRIGVIEW_REQUEST_DEADLINE_MS" default_request_deadline_ms
