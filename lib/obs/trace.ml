(* Lightweight span tracing.

   A tracer is a bounded in-memory sink of completed spans, each stamped
   with monotonic-clock nanoseconds ({!Monotonic_clock}, CLOCK_MONOTONIC).
   The hot-path contract: when the tracer is disabled, instrumented code
   performs exactly one boolean load per probe and allocates nothing —
   [start] returns the constant [0L] and [finish*] returns immediately.
   Call sites that build label strings must guard on [enabled] so the
   string is never allocated when tracing is off.

   Nesting is not tracked at record time (that would need exception-safe
   enter/leave pairs on hot paths); the renderer reconstructs the span tree
   from interval containment, which is exact for single-threaded nesting. *)

type event = {
  ev_name : string;
  ev_note : string;
  ev_start_ns : int64;
  ev_dur_ns : int64;
}

type t = {
  mutable enabled : bool;
  mutable events : event list;  (* newest first *)
  mutable count : int;
  mutable dropped : int;
  limit : int;
}

let now () = Monotonic_clock.now ()

let create ?(limit = 8192) () =
  { enabled = false; events = []; count = 0; dropped = 0; limit }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on

let clear t =
  t.events <- [];
  t.count <- 0;
  t.dropped <- 0

let dropped t = t.dropped

let record t ev =
  if t.count >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.events <- ev :: t.events;
    t.count <- t.count + 1
  end

let start t = if t.enabled then now () else 0L

let finish_note t t0 name note =
  if t.enabled && Int64.compare t0 0L <> 0 then
    record t
      { ev_name = name; ev_note = note; ev_start_ns = t0; ev_dur_ns = Int64.sub (now ()) t0 }

let finish t t0 name = finish_note t t0 name ""

(* Exception-safe convenience for cold paths (allocates a closure). *)
let span t ?(note = "") name f =
  if not t.enabled then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> finish_note t t0 name note) f
  end

let events t = List.rev t.events |> List.sort (fun a b -> Int64.compare a.ev_start_ns b.ev_start_ns)

(* Depth from interval containment: an event is nested under every earlier
   event whose [start, start+dur) interval still covers its start. *)
let with_depths t =
  let evs = events t in
  let stack = ref [] in  (* end timestamps of open ancestors *)
  List.map
    (fun ev ->
      let ends_after e = Int64.compare e ev.ev_start_ns > 0 in
      stack := List.filter ends_after !stack;
      let depth = List.length !stack in
      stack := Int64.add ev.ev_start_ns ev.ev_dur_ns :: !stack;
      (depth, ev))
    evs

let render t =
  match with_depths t with
  | [] -> "(no trace events; enable tracing and run some statements)"
  | devs ->
    let epoch =
      match devs with (_, ev) :: _ -> ev.ev_start_ns | [] -> 0L
    in
    let buf = Buffer.create 1024 in
    List.iter
      (fun (depth, ev) ->
        Buffer.add_string buf
          (Printf.sprintf "[+%10s] %9s  %s%s%s\n"
             (Metrics.pp_duration_ns (Int64.to_float (Int64.sub ev.ev_start_ns epoch)))
             (Metrics.pp_duration_ns (Int64.to_float ev.ev_dur_ns))
             (String.make (2 * depth) ' ')
             ev.ev_name
             (if ev.ev_note = "" then "" else " " ^ ev.ev_note)))
      devs;
    if t.dropped > 0 then
      Buffer.add_string buf (Printf.sprintf "(%d events dropped: buffer limit)\n" t.dropped);
    Buffer.contents buf

let to_json t =
  let entries =
    List.map
      (fun (depth, ev) ->
        Printf.sprintf
          "{\"name\": \"%s\", \"note\": \"%s\", \"start_ns\": %Ld, \"dur_ns\": %Ld, \"depth\": %d}"
          (Metrics.json_escape ev.ev_name)
          (Metrics.json_escape ev.ev_note)
          ev.ev_start_ns ev.ev_dur_ns depth)
      (with_depths t)
  in
  "[" ^ String.concat ", " entries ^ "]"
