(* Lightweight span tracing.

   A tracer is a bounded in-memory sink of completed spans, each stamped
   with monotonic-clock nanoseconds ({!Monotonic_clock}, CLOCK_MONOTONIC).
   The hot-path contract: when the tracer is disabled, instrumented code
   performs exactly one boolean load per probe and allocates nothing —
   [start] returns the constant [0L] and [finish*] returns immediately.
   Call sites that build label strings must guard on [enabled] so the
   string is never allocated when tracing is off.

   Since the firing pipeline can run on several domains (Pool), each
   domain records into its own ring: rings are created on first record
   from a domain (under [rings_lock]) and published by swapping the
   [rings] array pointer, so the record fast path takes no lock — it scans
   a tiny array for its own ring and appends, and only the owning domain
   ever mutates a ring's interior.  Readers ([events], [render], exports)
   run between parallel sections and merge all rings by start timestamp.

   Each ring is a true ring: when full, recording evicts the *oldest*
   span (a long run keeps its most recent window, not its startup), and
   [dropped] counts evictions across all rings.

   Nesting is not tracked at record time (that would need exception-safe
   enter/leave pairs on hot paths); the renderer reconstructs the span tree
   from interval containment, which is exact for single-threaded nesting
   and approximate across domains. *)

type event = {
  ev_name : string;
  ev_note : string;
  ev_start_ns : int64;
  ev_dur_ns : int64;
}

type ring = {
  ring_dom : int;  (* Domain.self of the recording domain *)
  mutable buf : event array;  (* ring storage; length 0 until first record *)
  mutable head : int;  (* index of the oldest event *)
  mutable count : int;
  mutable dropped : int;  (* oldest events evicted since [clear] *)
}

type t = {
  mutable enabled : bool;
  mutable rings : ring array;  (* published by pointer swap under [rings_lock] *)
  rings_lock : Mutex.t;
  limit : int;
}

let now () = Monotonic_clock.now ()

let create ?(limit = 8192) () =
  { enabled = false; rings = [||]; rings_lock = Mutex.create (); limit = max 1 limit }

let limit t = t.limit

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on

let clear t =
  Mutex.lock t.rings_lock;
  t.rings <- [||];
  Mutex.unlock t.rings_lock

let dropped t = Array.fold_left (fun acc r -> acc + r.dropped) 0 t.rings

let my_ring t =
  let dom = (Domain.self () :> int) in
  let rings = t.rings in
  let n = Array.length rings in
  let rec find i = if i = n then None else if rings.(i).ring_dom = dom then Some rings.(i) else find (i + 1) in
  match find 0 with
  | Some r -> r
  | None ->
    Mutex.lock t.rings_lock;
    (* re-check: someone (only ourselves, actually) may have added it *)
    let rings = t.rings in
    let n = Array.length rings in
    let rec find i = if i = n then None else if rings.(i).ring_dom = dom then Some rings.(i) else find (i + 1) in
    let r =
      match find 0 with
      | Some r -> r
      | None ->
        let r = { ring_dom = dom; buf = [||]; head = 0; count = 0; dropped = 0 } in
        t.rings <- Array.append rings [| r |];
        r
    in
    Mutex.unlock t.rings_lock;
    r

let record t ev =
  let r = my_ring t in
  if Array.length r.buf = 0 then r.buf <- Array.make (max 1 t.limit) ev;
  if r.count >= t.limit then begin
    (* full: overwrite the oldest slot and advance the head *)
    r.buf.(r.head) <- ev;
    r.head <- (r.head + 1) mod t.limit;
    r.dropped <- r.dropped + 1
  end
  else begin
    r.buf.((r.head + r.count) mod Array.length r.buf) <- ev;
    r.count <- r.count + 1
  end

let start t = if t.enabled then now () else 0L

let finish_note t t0 name note =
  if t.enabled && Int64.compare t0 0L <> 0 then
    record t
      { ev_name = name; ev_note = note; ev_start_ns = t0; ev_dur_ns = Int64.sub (now ()) t0 }

let finish t t0 name = finish_note t t0 name ""

(* Exception-safe convenience for cold paths (allocates a closure). *)
let span t ?(note = "") name f =
  if not t.enabled then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> finish_note t t0 name note) f
  end

let ring_events r =
  List.init r.count (fun i -> r.buf.((r.head + i) mod Array.length r.buf))

let events t =
  Array.fold_left (fun acc r -> List.rev_append (ring_events r) acc) [] t.rings
  |> List.sort (fun a b -> Int64.compare a.ev_start_ns b.ev_start_ns)

(* Events paired with the id of the domain that recorded them, merged and
   sorted; the Chrome export uses the domain id as the thread id. *)
let events_with_domains t =
  Array.fold_left
    (fun acc r -> List.rev_append (List.map (fun ev -> (r.ring_dom, ev)) (ring_events r)) acc)
    [] t.rings
  |> List.sort (fun (_, a) (_, b) -> Int64.compare a.ev_start_ns b.ev_start_ns)

(* Depth from interval containment: an event is nested under every earlier
   event whose [start, start+dur) interval still covers its start. *)
let with_depths t =
  let evs = events t in
  let stack = ref [] in  (* end timestamps of open ancestors *)
  List.map
    (fun ev ->
      let ends_after e = Int64.compare e ev.ev_start_ns > 0 in
      stack := List.filter ends_after !stack;
      let depth = List.length !stack in
      stack := Int64.add ev.ev_start_ns ev.ev_dur_ns :: !stack;
      (depth, ev))
    evs

let render t =
  match with_depths t with
  | [] -> "(no trace events; enable tracing and run some statements)"
  | devs ->
    let epoch =
      match devs with (_, ev) :: _ -> ev.ev_start_ns | [] -> 0L
    in
    let buf = Buffer.create 1024 in
    List.iter
      (fun (depth, ev) ->
        Buffer.add_string buf
          (Printf.sprintf "[+%10s] %9s  %s%s%s\n"
             (Metrics.pp_duration_ns (Int64.to_float (Int64.sub ev.ev_start_ns epoch)))
             (Metrics.pp_duration_ns (Int64.to_float ev.ev_dur_ns))
             (String.make (2 * depth) ' ')
             ev.ev_name
             (if ev.ev_note = "" then "" else " " ^ ev.ev_note)))
      devs;
    let d = dropped t in
    if d > 0 then
      Buffer.add_string buf (Printf.sprintf "(%d events dropped: buffer limit)\n" d);
    Buffer.contents buf

let to_json t =
  let entries =
    List.map
      (fun (depth, ev) ->
        Printf.sprintf
          "{\"name\": \"%s\", \"note\": \"%s\", \"start_ns\": %Ld, \"dur_ns\": %Ld, \"depth\": %d}"
          (Metrics.json_escape ev.ev_name)
          (Metrics.json_escape ev.ev_note)
          ev.ev_start_ns ev.ev_dur_ns depth)
      (with_depths t)
  in
  "[" ^ String.concat ", " entries ^ "]"

(* --- Chrome trace-event export (load in Perfetto / chrome://tracing) ---

   Spans become "ph":"X" complete events; [instants] (caller-supplied, e.g.
   audit records) become "ph":"i" instant events with a JSON args payload.
   Timestamps are microseconds as the format requires; fractional µs keep
   the ns resolution.  All events share pid 1; the tid is the id of the
   domain that recorded the span, so a parallel run shows one track per
   domain and Perfetto reconstructs per-track nesting from containment. *)

let chrome_ts ns = Int64.to_float ns /. 1_000.0

let to_chrome_json ?(instants = []) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string buf ", ";
    Buffer.add_string buf s
  in
  List.iter
    (fun (dom, ev) ->
      emit
        (Printf.sprintf
           "{\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \
            \"pid\": 1, \"tid\": %d%s}"
           (Metrics.json_escape ev.ev_name)
           (chrome_ts ev.ev_start_ns)
           (chrome_ts ev.ev_dur_ns)
           (dom + 1)
           (if ev.ev_note = "" then ""
            else
              Printf.sprintf ", \"args\": {\"note\": \"%s\"}"
                (Metrics.json_escape ev.ev_note))))
    (events_with_domains t);
  List.iter
    (fun (name, ts_ns, args_json) ->
      emit
        (Printf.sprintf
           "{\"name\": \"%s\", \"ph\": \"i\", \"ts\": %.3f, \"pid\": 1, \
            \"tid\": 1, \"s\": \"g\", \"args\": %s}"
           (Metrics.json_escape name) (chrome_ts ts_ns)
           (if args_json = "" then "{}" else args_json)))
    (List.sort (fun (_, a, _) (_, b, _) -> Int64.compare a b) instants);
  Buffer.add_string buf "], \"displayTimeUnit\": \"ns\"}";
  Buffer.contents buf
