(* Sliding-window statistics: named counter series bucketed over a ring
   of time-aligned buckets, wrapping lifetime totals so process-lifetime
   numbers stay intact while windowed rates age out.

   Every mutating or reading operation that depends on time takes an
   explicit [~now] (nanoseconds, monotonic); callers in the runtime pass
   [Obs.Trace.now ()], tests pass a synthetic clock.  The module itself
   never reads a clock, which keeps property tests deterministic.

   Conservation invariant (by construction, exact for integer-valued
   floats): for every series,

     total = evicted + sum(buckets)

   because [add] bumps the lifetime total and the current bucket in the
   same operation, and rotation moves expired bucket contents into
   [evicted] before zeroing. *)

type series = {
  mutable s_total : float; (* lifetime sum of all adds *)
  mutable s_evicted : float; (* sums rotated out of the window *)
  s_buckets : float array; (* per-bucket deltas, ring-indexed *)
  mutable s_ewma : float; (* EWMA of per-bucket rate, events/sec *)
}

type t = {
  n_buckets : int;
  width_ns : int64;
  mutable epoch : int64; (* start timestamp of the current bucket *)
  mutable cur : int; (* ring slot of the current bucket *)
  mutable rotations : int; (* completed bucket rotations since create *)
  tbl : (string, series) Hashtbl.t;
  alpha : float; (* EWMA smoothing factor *)
}

type snap = {
  sn_total : float;
  sn_window : float;
  sn_rate : float; (* events/sec over the covered window span *)
  sn_ewma : float; (* EWMA events/sec, updated at bucket boundaries *)
}

let create ?(buckets = 12) ?(width_ms = 5000) ~now () =
  let buckets = max 1 buckets in
  let width_ms = max 1 width_ms in
  {
    n_buckets = buckets;
    width_ns = Int64.mul (Int64.of_int width_ms) 1_000_000L;
    epoch = now;
    cur = 0;
    rotations = 0;
    tbl = Hashtbl.create 64;
    alpha = 2.0 /. (float_of_int buckets +. 1.0);
  }

let buckets t = t.n_buckets
let width_ms t = Int64.to_int (Int64.div t.width_ns 1_000_000L)
let width_s t = Int64.to_float t.width_ns /. 1e9

(* Advance the ring so [now] falls inside the current bucket.  Each step
   completes the current bucket: fold its rate into the EWMA, then
   recycle the next slot (moving its old contents into [s_evicted]).
   Steps beyond a full ring revolution are collapsed: the remaining
   slots are all evicted and the EWMA decays toward zero. *)
let rotate t ~now =
  if Int64.compare now (Int64.add t.epoch t.width_ns) >= 0 then begin
    let elapsed = Int64.sub now t.epoch in
    let steps64 = Int64.div elapsed t.width_ns in
    let steps =
      if Int64.compare steps64 (Int64.of_int (2 * t.n_buckets)) > 0 then
        2 * t.n_buckets
      else Int64.to_int steps64
    in
    let ws = width_s t in
    for _ = 1 to steps do
      let next = (t.cur + 1) mod t.n_buckets in
      Hashtbl.iter
        (fun _ s ->
          (* finish the current bucket: blend its rate into the EWMA *)
          let rate = s.s_buckets.(t.cur) /. ws in
          s.s_ewma <- (t.alpha *. rate) +. ((1.0 -. t.alpha) *. s.s_ewma);
          (* recycle the next slot *)
          s.s_evicted <- s.s_evicted +. s.s_buckets.(next);
          s.s_buckets.(next) <- 0.0)
        t.tbl;
      t.cur <- next;
      t.rotations <- t.rotations + 1
    done;
    t.epoch <- Int64.add t.epoch (Int64.mul steps64 t.width_ns)
  end

let series t name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s
  | None ->
      let s =
        {
          s_total = 0.0;
          s_evicted = 0.0;
          s_buckets = Array.make t.n_buckets 0.0;
          s_ewma = 0.0;
        }
      in
      Hashtbl.add t.tbl name s;
      s

let add t ~now name v =
  rotate t ~now;
  let s = series t name in
  s.s_total <- s.s_total +. v;
  s.s_buckets.(t.cur) <- s.s_buckets.(t.cur) +. v

let total t name =
  match Hashtbl.find_opt t.tbl name with Some s -> s.s_total | None -> 0.0

let evicted t name =
  match Hashtbl.find_opt t.tbl name with Some s -> s.s_evicted | None -> 0.0

let bucket_sum s = Array.fold_left ( +. ) 0.0 s.s_buckets

let window_sum t ~now name =
  rotate t ~now;
  match Hashtbl.find_opt t.tbl name with
  | Some s -> bucket_sum s
  | None -> 0.0

(* Span of time the ring currently covers: completed buckets capped at
   ring size minus one, plus the elapsed part of the current bucket. *)
let covered_span_s t ~now =
  let completed = min t.rotations (t.n_buckets - 1) in
  let in_cur = Int64.to_float (Int64.sub now t.epoch) /. 1e9 in
  let in_cur = if in_cur < 0.0 then 0.0 else min in_cur (width_s t) in
  (float_of_int completed *. width_s t) +. in_cur

let rate t ~now name =
  rotate t ~now;
  match Hashtbl.find_opt t.tbl name with
  | None -> 0.0
  | Some s ->
      let span = covered_span_s t ~now in
      if span <= 0.0 then 0.0 else bucket_sum s /. span

let ewma t name =
  match Hashtbl.find_opt t.tbl name with Some s -> s.s_ewma | None -> 0.0

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let mem t name = Hashtbl.mem t.tbl name
let remove t name = Hashtbl.remove t.tbl name

let remove_prefix t prefix =
  let plen = String.length prefix in
  let doomed =
    Hashtbl.fold
      (fun k _ acc ->
        if String.length k >= plen && String.sub k 0 plen = prefix then
          k :: acc
        else acc)
      t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) doomed

let clear t =
  Hashtbl.reset t.tbl;
  t.cur <- 0;
  t.rotations <- 0

let snapshot_one t ~now name =
  rotate t ~now;
  match Hashtbl.find_opt t.tbl name with
  | None -> { sn_total = 0.0; sn_window = 0.0; sn_rate = 0.0; sn_ewma = 0.0 }
  | Some s ->
      let span = covered_span_s t ~now in
      let w = bucket_sum s in
      {
        sn_total = s.s_total;
        sn_window = w;
        sn_rate = (if span <= 0.0 then 0.0 else w /. span);
        sn_ewma = s.s_ewma;
      }

let snapshot t ~now =
  rotate t ~now;
  let span = covered_span_s t ~now in
  Hashtbl.fold
    (fun name s acc ->
      let w = bucket_sum s in
      ( name,
        {
          sn_total = s.s_total;
          sn_window = w;
          sn_rate = (if span <= 0.0 then 0.0 else w /. span);
          sn_ewma = s.s_ewma;
        } )
      :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* For tests: (name, total, evicted + sum buckets) for every series.
   Conservation holds when the last two are equal. *)
let conservation t =
  Hashtbl.fold
    (fun name s acc -> (name, s.s_total, s.s_evicted +. bucket_sum s) :: acc)
    t.tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
