(* Firing provenance: "why did this trigger fire?"

   An audit log is a bounded ring of structured records, one per SQL-trigger
   activation that reached the delta query (the unit the paper's pipeline
   turns into XML-trigger firings).  Each record carries the full lineage
   chain: the DML statement (id, event, table, transition-table row counts)
   → the generated SQL trigger that it reached → the delta query that
   computed the (OLD_NODE, NEW_NODE) pairs (plan mode, fragment link keys)
   → the pair counts, split into kept / rejected-as-spurious (OLD = NEW) /
   rejected-by-condition → the action invocations dispatched, each with its
   condition outcome.

   The hot-path contract matches {!Trace}: when auditing is disabled, every
   instrumented site performs one boolean load and allocates nothing.  When
   enabled, the record is inserted *before* dispatch (so action callbacks
   can link back to it by id) and its counters are mutated as the firing
   proceeds; a record evicted mid-firing keeps accumulating harmlessly.

   Ids are 1-based and monotonically increasing; eviction drops the oldest
   record and bumps [dropped], so [find] on an evicted id returns [None]. *)

type action_outcome =
  | Fired  (* condition (if any) passed; the action callback ran *)
  | Condition_rejected  (* the fallback WHERE condition evaluated to false *)
  | No_action  (* passed, but no callback registered under that name *)

let string_of_outcome = function
  | Fired -> "fired"
  | Condition_rejected -> "condition-rejected"
  | No_action -> "no-action"

type action_rec = {
  a_trigger : string;  (* XML trigger name *)
  a_action : string;  (* registered action function name *)
  a_outcome : action_outcome;
  a_condition : string;  (* fallback condition text; "" when none *)
  a_has_old : bool;
  a_has_new : bool;
}

type record = {
  id : int;  (* the firing id [why] takes *)
  ts_ns : int64;  (* monotonic stamp at firing start *)
  stmt_id : int;  (* DML statement this firing derives from *)
  stmt_event : string;  (* INSERT / UPDATE / DELETE *)
  stmt_table : string;  (* table the statement modified *)
  sql_trigger : string;  (* generated SQL trigger that fired *)
  strategy : string;
  group_id : int;  (* trigger group (-1 for MATERIALIZED singletons) *)
  view : string;
  plan_table : string;  (* base table whose delta query ran *)
  plan_mode : string;  (* compiled / interpreted / middleware / materialized *)
  frag_keys : string list;  (* delta-query fragment link keys *)
  cond_mode : string;  (* none / pushed / fallback *)
  origin : string;
      (* source text of the higher-level statement (view DML) the firing
         statement was translated from; "" for direct relational DML *)
  mutable delta_rows : int;  (* Δ transition rows handed to the delta query *)
  mutable nabla_rows : int;  (* ∇ transition rows *)
  mutable pairs_computed : int;  (* (OLD_NODE, NEW_NODE) pairs the query produced *)
  mutable pairs_spurious : int;  (* suppressed by the OLD = NEW check *)
  mutable pairs_kept : int;
  mutable cond_rejected : int;  (* dispatches suppressed by a fallback condition *)
  mutable dispatched : int;  (* action callbacks actually run *)
  mutable actions : action_rec list;  (* newest first *)
  mutable notes : string list;  (* downstream annotations, newest first *)
}

type t = {
  mutable enabled : bool;
  mutable buf : record array;  (* ring storage; length 0 until first record *)
  mutable head : int;  (* index of the oldest record *)
  mutable count : int;
  mutable dropped : int;  (* oldest records evicted since [clear] *)
  limit : int;
  mutable next_id : int;
}

let create ?(limit = 4096) () =
  { enabled = false; buf = [||]; head = 0; count = 0; dropped = 0;
    limit = max 1 limit; next_id = 1 }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let limit t = t.limit

let clear t =
  t.buf <- [||];
  t.head <- 0;
  t.count <- 0;
  t.dropped <- 0

let dropped t = t.dropped
let count t = t.count

(* Total records ever admitted (current + evicted). *)
let total t = t.count + t.dropped

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let add t r =
  if Array.length t.buf = 0 then t.buf <- Array.make t.limit r;
  if t.count >= t.limit then begin
    t.buf.(t.head) <- r;
    t.head <- (t.head + 1) mod t.limit;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.buf.((t.head + t.count) mod Array.length t.buf) <- r;
    t.count <- t.count + 1
  end

let records t =
  List.init t.count (fun i -> t.buf.((t.head + i) mod Array.length t.buf))

let find t id =
  let rec go i =
    if i >= t.count then None
    else
      let r = t.buf.((t.head + i) mod Array.length t.buf) in
      if r.id = id then Some r else go (i + 1)
  in
  go 0

(* Attach a downstream annotation (e.g. a maintained view noting that it
   consumed this firing) to a live record; a no-op on evicted ids. *)
let annotate t ~firing_id note =
  match find t firing_id with
  | Some r -> r.notes <- note :: r.notes
  | None -> ()

(* --- rendering --- *)

let summary_line r =
  Printf.sprintf
    "#%-4d stmt#%-4d %-6s %-12s %-44s pairs=%d kept=%d spurious=%d condrej=%d dispatched=%d"
    r.id r.stmt_id r.stmt_event r.stmt_table r.sql_trigger r.pairs_computed
    r.pairs_kept r.pairs_spurious r.cond_rejected r.dispatched

let render t =
  match records t with
  | [] -> "(no audit records; enable auditing and run some statements)"
  | rs ->
    let buf = Buffer.create 1024 in
    List.iter (fun r -> Buffer.add_string buf (summary_line r); Buffer.add_char buf '\n') rs;
    if t.dropped > 0 then
      Buffer.add_string buf
        (Printf.sprintf "(%d older records evicted: buffer limit)\n" t.dropped);
    Buffer.contents buf

(* The full lineage chain of one firing, for [why <id>]. *)
let render_record r =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "firing #%d — %s on view %S (strategy %s%s)" r.id r.stmt_event r.view
    r.strategy
    (if r.group_id >= 0 then Printf.sprintf ", group %d" r.group_id else "");
  line "  statement   : #%d %s on %s (Δ=%d inserted row%s, ∇=%d deleted row%s)"
    r.stmt_id r.stmt_event r.stmt_table r.delta_rows
    (if r.delta_rows = 1 then "" else "s")
    r.nabla_rows
    (if r.nabla_rows = 1 then "" else "s");
  if r.origin <> "" then line "  origin      : %s" r.origin;
  line "  sql trigger : %s" r.sql_trigger;
  line "  delta query : %s plan over %s%s" r.plan_mode r.plan_table
    (match r.frag_keys with
    | [] -> ""
    | ks -> Printf.sprintf "; fragment links: [%s]" (String.concat "; " ks));
  line "  node pairs  : %d computed, %d spurious (OLD = NEW, suppressed), %d kept"
    r.pairs_computed r.pairs_spurious r.pairs_kept;
  line "  condition   : %s"
    (match r.cond_mode with
    | "pushed" -> "pushed into the delta query (rejected pairs never surface)"
    | "fallback" ->
      Printf.sprintf "evaluated per dispatch below (%d rejected)" r.cond_rejected
    | _ -> "none");
  (match List.rev r.actions with
  | [] -> line "  actions     : (none dispatched)"
  | actions ->
    line "  actions     :";
    List.iter
      (fun a ->
        line "    - trigger %S action %S: %s%s%s" a.a_trigger a.a_action
          (string_of_outcome a.a_outcome)
          (match a.a_outcome, a.a_condition with
          | Condition_rejected, c when c <> "" -> Printf.sprintf " [WHERE %s → false]" c
          | Fired, c when c <> "" -> Printf.sprintf " [WHERE %s → true]" c
          | _ -> "")
          (Printf.sprintf " (OLD_NODE %s, NEW_NODE %s)"
             (if a.a_has_old then "present" else "absent")
             (if a.a_has_new then "present" else "absent")))
      actions);
  (match List.rev r.notes with
  | [] -> ()
  | notes ->
    line "  notes       :";
    List.iter (fun n -> line "    - %s" n) notes);
  Buffer.contents buf

let why t id =
  match find t id with
  | Some r -> render_record r
  | None ->
    if id >= 1 && id < t.next_id then
      Printf.sprintf "firing #%d was evicted from the audit ring (limit %d, %d dropped)\n"
        id t.limit t.dropped
    else Printf.sprintf "no such firing #%d (ids run 1..%d)\n" id (t.next_id - 1)

(* --- JSON --- *)

let esc = Metrics.json_escape

let action_json a =
  Printf.sprintf
    "{\"trigger\": \"%s\", \"action\": \"%s\", \"outcome\": \"%s\", \
     \"condition\": \"%s\", \"has_old\": %b, \"has_new\": %b}"
    (esc a.a_trigger) (esc a.a_action)
    (string_of_outcome a.a_outcome)
    (esc a.a_condition) a.a_has_old a.a_has_new

let record_json r =
  Printf.sprintf
    "{\"id\": %d, \"ts_ns\": %Ld, \"stmt_id\": %d, \"stmt_event\": \"%s\", \
     \"stmt_table\": \"%s\", \"sql_trigger\": \"%s\", \"strategy\": \"%s\", \
     \"group\": %d, \"view\": \"%s\", \"plan_table\": \"%s\", \"plan_mode\": \
     \"%s\", \"frag_keys\": [%s], \"cond_mode\": \"%s\", \"origin\": \"%s\", \
     \"delta_rows\": %d, \
     \"nabla_rows\": %d, \"pairs_computed\": %d, \"pairs_spurious\": %d, \
     \"pairs_kept\": %d, \"cond_rejected\": %d, \"dispatched\": %d, \
     \"actions\": [%s], \"notes\": [%s]}"
    r.id r.ts_ns r.stmt_id (esc r.stmt_event) (esc r.stmt_table)
    (esc r.sql_trigger) (esc r.strategy) r.group_id (esc r.view)
    (esc r.plan_table) (esc r.plan_mode)
    (String.concat ", " (List.map (fun k -> "\"" ^ esc k ^ "\"") r.frag_keys))
    (esc r.cond_mode) (esc r.origin) r.delta_rows r.nabla_rows r.pairs_computed
    r.pairs_spurious r.pairs_kept r.cond_rejected r.dispatched
    (String.concat ", " (List.map action_json (List.rev r.actions)))
    (String.concat ", " (List.map (fun n -> "\"" ^ esc n ^ "\"") (List.rev r.notes)))

let to_json t =
  "[" ^ String.concat ", " (List.map record_json (records t)) ^ "]"

(* Instant-event feed for {!Trace.to_chrome_json}: one instant per record,
   stamped at firing start, args = the full record object. *)
let chrome_instants t =
  List.map
    (fun r -> (Printf.sprintf "firing#%d %s" r.id r.sql_trigger, r.ts_ns, record_json r))
    (records t)
