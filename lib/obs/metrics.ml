(* Log-bucketed latency histograms.

   A histogram is 48 power-of-two nanosecond buckets (bucket i counts
   durations in [2^i, 2^(i+1)) ns — enough to span 1 ns .. ~78 hours) plus
   exact count / sum / min / max.  Recording is a handful of integer ops and
   allocates nothing, so histograms can stay armed on hot paths.
   Percentiles are approximated by the geometric midpoint of the bucket
   containing the requested rank. *)

let n_buckets = 48

type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum_ns : float;
  mutable min_ns : int64;
  mutable max_ns : int64;
}

let create_histogram () =
  { buckets = Array.make n_buckets 0;
    count = 0;
    sum_ns = 0.0;
    min_ns = Int64.max_int;
    max_ns = 0L;
  }

let reset_histogram h =
  Array.fill h.buckets 0 n_buckets 0;
  h.count <- 0;
  h.sum_ns <- 0.0;
  h.min_ns <- Int64.max_int;
  h.max_ns <- 0L

let bucket_of_ns ns =
  if Int64.compare ns 2L < 0 then 0
  else begin
    let rec go i n =
      if Int64.compare n 1L <= 0 then i else go (i + 1) (Int64.shift_right_logical n 1)
    in
    min (n_buckets - 1) (go 0 ns)
  end

let observe h ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let b = bucket_of_ns ns in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.count <- h.count + 1;
  h.sum_ns <- h.sum_ns +. Int64.to_float ns;
  if Int64.compare ns h.min_ns < 0 then h.min_ns <- ns;
  if Int64.compare ns h.max_ns > 0 then h.max_ns <- ns

let count h = h.count
let sum_ns h = h.sum_ns
let mean_ns h = if h.count = 0 then 0.0 else h.sum_ns /. float_of_int h.count
let max_ns h = if h.count = 0 then 0L else h.max_ns
let min_ns h = if h.count = 0 then 0L else h.min_ns

(* Geometric midpoint of the bucket holding rank [q * count], clamped into
   [min_ns, max_ns]: the raw midpoint 2^(i+0.5) can exceed the recorded
   maximum (the rank lands in the top occupied bucket but max_ns sits in
   its lower half) or undershoot the minimum (bucket 0's midpoint is
   ~1.4 ns regardless of the actual samples), and a percentile outside the
   observed range is a lie. *)
let percentile_ns h q =
  if h.count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let clamp v =
      Float.max (Int64.to_float h.min_ns) (Float.min v (Int64.to_float h.max_ns))
    in
    let rec go i seen =
      if i >= n_buckets then Int64.to_float h.max_ns
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then
          (* midpoint of [2^i, 2^(i+1)) in log space *)
          clamp (2.0 ** (float_of_int i +. 0.5))
        else go (i + 1) seen
    in
    go 0 0
  end

let pp_duration_ns ns =
  if ns < 1_000.0 then Printf.sprintf "%.0fns" ns
  else if ns < 1_000_000.0 then Printf.sprintf "%.1fus" (ns /. 1_000.0)
  else if ns < 1_000_000_000.0 then Printf.sprintf "%.2fms" (ns /. 1_000_000.0)
  else Printf.sprintf "%.3fs" (ns /. 1_000_000_000.0)

let render_histogram ~name h =
  if h.count = 0 then Printf.sprintf "%-32s (no samples)" name
  else
    Printf.sprintf "%-32s n=%-7d mean=%-9s p50=%-9s p95=%-9s p99=%-9s max=%s"
      name h.count
      (pp_duration_ns (mean_ns h))
      (pp_duration_ns (percentile_ns h 0.50))
      (pp_duration_ns (percentile_ns h 0.95))
      (pp_duration_ns (percentile_ns h 0.99))
      (pp_duration_ns (Int64.to_float (max_ns h)))

(* --- JSON helpers (shared with Trace) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let histogram_json_fields h =
  Printf.sprintf
    "\"count\": %d, \"mean_ns\": %.1f, \"p50_ns\": %.1f, \"p95_ns\": %.1f, \"p99_ns\": %.1f, \"min_ns\": %Ld, \"max_ns\": %Ld"
    h.count (mean_ns h) (percentile_ns h 0.50) (percentile_ns h 0.95)
    (percentile_ns h 0.99) (min_ns h) (max_ns h)

(* --- named-histogram registry --- *)

type registry = (string, histogram) Hashtbl.t

let create_registry () : registry = Hashtbl.create 16

(* Find-or-create without observing.  The parallel dispatch path calls
   this for every histogram it will touch *before* fanning out, so the
   registry Hashtbl is never structurally mutated from several domains
   ([observe] on an existing histogram is plain field stores — racy but
   memory-safe, and each parallel shard touches distinct names). *)
let ensure_in (reg : registry) name =
  match Hashtbl.find_opt reg name with
  | Some h -> h
  | None ->
    let h = create_histogram () in
    Hashtbl.add reg name h;
    h

let observe_in (reg : registry) name ns =
  let h =
    match Hashtbl.find_opt reg name with
    | Some h -> h
    | None ->
      let h = create_histogram () in
      Hashtbl.add reg name h;
      h
  in
  observe h ns

let histograms (reg : registry) =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_registry (reg : registry) = Hashtbl.reset reg

(* Unregister one named histogram (e.g. when its trigger is dropped) so
   the registry doesn't accumulate series for dead triggers forever. *)
let remove_in (reg : registry) name = Hashtbl.remove reg name

let mem_in (reg : registry) name = Hashtbl.mem reg name

let render_registry (reg : registry) =
  match histograms reg with
  | [] -> "(no latency samples)"
  | hs -> String.concat "\n" (List.map (fun (name, h) -> render_histogram ~name h) hs)

let registry_json (reg : registry) =
  let entries =
    List.map
      (fun (name, h) ->
        Printf.sprintf "{\"name\": \"%s\", %s}" (json_escape name) (histogram_json_fields h))
      (histograms reg)
  in
  "[" ^ String.concat ", " entries ^ "]"

(* --- Prometheus text exposition format ---

   Histogram names like "firing:g0:product" are not legal metric names, so
   each set of named histograms becomes ONE histogram family ([metric]) with
   the original name carried in a {name="..."} label.  Buckets are the
   cumulative power-of-two boundaries; trailing all-zero buckets below the
   top occupied one are elided per series (the +Inf bucket always closes the
   series, so the parse stays valid). *)

let prometheus_escape_label s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prometheus_histogram buf ~metric ~label h =
  let lbl = prometheus_escape_label label in
  let top =
    let rec go i best = if i >= n_buckets then best else go (i + 1) (if h.buckets.(i) > 0 then i else best) in
    go 0 (-1)
  in
  let cum = ref 0 in
  for i = 0 to top do
    cum := !cum + h.buckets.(i);
    (* boundary of bucket i is exclusive 2^(i+1); report le as inclusive *)
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket{name=\"%s\",le=\"%.0f\"} %d\n" metric lbl
         (2.0 ** float_of_int (i + 1))
         !cum)
  done;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{name=\"%s\",le=\"+Inf\"} %d\n" metric lbl h.count);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum{name=\"%s\"} %.0f\n" metric lbl h.sum_ns);
  Buffer.add_string buf
    (Printf.sprintf "%s_count{name=\"%s\"} %d\n" metric lbl h.count)

(* [to_prometheus ~metric named] renders named histograms as one labelled
   histogram family in text exposition format. *)
let to_prometheus ?(metric = "trigview_latency_ns") (named : (string * histogram) list) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" metric);
  List.iter
    (fun (name, h) -> prometheus_histogram buf ~metric ~label:name h)
    (List.sort (fun (a, _) (b, _) -> compare a b) named);
  Buffer.contents buf

let registry_to_prometheus ?metric (reg : registry) =
  to_prometheus ?metric (histograms reg)

(* One labelled counter family: [# TYPE m counter] then one line per
   (label, value).  Values are int64-ish monotone counts. *)
let prometheus_counters ~metric (pairs : (string * int) list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" metric);
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s{name=\"%s\"} %d\n" metric (prometheus_escape_label label) v))
    pairs;
  Buffer.contents buf

(* Same shape for float-valued point-in-time values (windowed rates). *)
let prometheus_gauges_f ~metric (pairs : (string * float) list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" metric);
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s{name=\"%s\"} %.6g\n" metric (prometheus_escape_label label) v))
    pairs;
  Buffer.contents buf

(* Same shape for point-in-time values (queue depths, client counts). *)
let prometheus_gauges ~metric (pairs : (string * int) list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" metric);
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s{name=\"%s\"} %d\n" metric (prometheus_escape_label label) v))
    pairs;
  Buffer.contents buf
