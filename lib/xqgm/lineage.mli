(** Column provenance over XQGM graphs, for the view-update translator.

    {!Injective.analyze} answers a yes/no question per base table; view
    updates additionally need to know {e which} base column each output
    column carries, and whether a set of base columns feeds anything in the
    graph beyond a single level's element constructor (a predicate, a
    grouping key, a scalar aggregate, another level's field) — the
    side-effect analysis of Liu et al.'s updatable-XML-view translation. *)

type source =
  | Base of { table : string; column : string }
      (** the output column is a verbatim copy of this base column *)
  | Computed  (** anything else: expressions, aggregates, constructors *)

(** Provenance of every output column of [op], in output order.  A column
    surviving a multi-input union, an aggregate, or any computation is
    [Computed]; equality-join minimization is {e not} applied (each side
    keeps its own source). *)
val columns : Op.t -> (string * source) list

(** The graph sites whose result depends on the given base columns, other
    than plain copy-through projections and the one element-constructor
    definition [exempt] (operator id, output column) — the targeted level's
    own node template, which necessarily embeds the columns it displays.
    Returns human-readable site descriptions; [[]] means a change to those
    base columns can only re-render that single constructor. *)
val dependents :
  table:string ->
  cols:string list ->
  ?exempt:int * string ->
  Op.t ->
  string list
