(** Column provenance over XQGM graphs, for the view-update translator.

    {!Injective.analyze} answers a yes/no question per base table; view
    updates additionally need to know {e which} base column each output
    column carries, and whether a set of base columns feeds anything in the
    graph beyond a single level's element constructor (a predicate, a
    grouping key, a scalar aggregate, another level's field) — the
    side-effect analysis of Liu et al.'s updatable-XML-view translation. *)

type source =
  | Base of { table : string; column : string }
      (** the output column is a verbatim copy of this base column *)
  | Computed  (** anything else: expressions, aggregates, constructors *)

(** Provenance of every output column of [op], in output order.  A column
    surviving a multi-input union, an aggregate, or any computation is
    [Computed]; equality-join minimization is {e not} applied (each side
    keeps its own source). *)
val columns : Op.t -> (string * source) list

(** The set of [table]'s base columns observed by any POST scan in [op]
    (sorted, deduplicated).  A row change confined to columns outside this
    footprint cannot alter the plan's result. *)
val footprint : table:string -> Op.t -> string list

(** The tight variant of {!footprint}: [table]'s base columns whose values
    can reach the plan's output or influence row presence / group
    structure, computed by a top-down needed-columns pass (at the root all
    output columns count as needed).  Unlike {!footprint} this excludes
    columns a scan merely lists — compiled views scan full rows — so it is
    the set the independence signature watches. *)
val observed : table:string -> Op.t -> string list

(** One constant comparison known to hold for every row of a scan site that
    can influence the plan's output. *)
type filter = {
  f_col : string;  (** base column of the watched table *)
  f_cmp : Relkit.Ra.binop;  (** Eq / Neq / Lt / Le / Gt / Ge *)
  f_const : Relkit.Value.t;
}

val filter_to_string : filter -> string

(** Per-site constant filters for [table]'s POST scans: one list per site
    (conjunction within a site, disjunction across sites).  A base row
    failing every site's conjunction provably cannot affect the plan's
    output; an empty list for any site means that site is unconstrained and
    no pruning is possible.  Conservative: only [col cmp const] conjuncts
    dominating a site are kept, with join-kind rules ensuring soundness
    (outer/anti joins constrain only the side whose rows vanish when the
    predicate fails). *)
val site_filters : table:string -> Op.t -> filter list list

(** The graph sites whose result depends on the given base columns, other
    than plain copy-through projections and the one element-constructor
    definition [exempt] (operator id, output column) — the targeted level's
    own node template, which necessarily embeds the columns it displays.
    Returns human-readable site descriptions; [[]] means a change to those
    base columns can only re-render that single constructor. *)
val dependents :
  table:string ->
  cols:string list ->
  ?exempt:int * string ->
  Op.t ->
  string list
