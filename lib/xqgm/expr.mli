(** Expressions embedded in XQGM operators: scalar computation plus the XML
    constructor and aggregate functions of the paper (§2.1). *)

type binop = Relkit.Ra.binop

type t =
  | Col of string
  | Const of Relkit.Value.t
  | Binop of binop * t * t
  | Not of t
  | Is_null of t
  | Elem of {
      tag : string;
      attrs : (string * t) list;  (** attribute values, atomized to strings *)
      content : t list;  (** children; sequences splice, atoms become text *)
    }
  | Node_eq of t * t
      (** deep structural equality of XML values — the tagger-level
          comparison of Appendix E.1; never pushed down to SQL *)

(** Aggregate functions usable in GroupBy operators.  [Xml_frag] is the
    paper's aggXMLFrag: it collects one item per group row into a sequence. *)
type agg =
  | Count
  | Sum of t
  | Min of t
  | Max of t
  | Avg of t
  | Xml_frag of t

(** Input columns referenced (duplicates possible). *)
val cols : t -> string list

val agg_cols : agg -> string list

(** [true] when the expression cannot produce an XML node (no [Elem]). *)
val is_scalar : t -> bool

(** Renames column references. *)
val map_cols : (string -> string) -> t -> t

val map_agg_cols : (string -> string) -> agg -> agg

(** Columns appearing in injective positions only: directly as an output, or
    embedded in element constructors — but not under arithmetic or
    comparisons (Appendix F.2 of the paper). *)
val injectively_embedded_cols : t -> string list

val eq : t -> t -> t
val and_ : t list -> t
val string_of_binop : binop -> string
val to_string : t -> string
val agg_to_string : agg -> string
