(* Column provenance: which base-table column does each output column copy?

   The walk parallels {!Injective.classify} but answers a finer question —
   per-column identity rather than per-table coverage — and is deliberately
   conservative: anything that is not a verbatim copy (expressions,
   aggregates, multi-input unions) is [Computed].  Join minimization is not
   applied: after [pid = v_pid] each side still reports its own source, so a
   caller anchoring a level to one table sees that table's own columns. *)

type source =
  | Base of { table : string; column : string }
  | Computed

let rec columns (op : Op.t) : (string * source) list =
  match op.Op.node with
  | Op.Table { table; cols; _ } ->
    List.map (fun (src, out) -> (out, Base { table; column = src })) cols
  | Op.Select { input; _ } -> columns input
  | Op.Project { input; defs } ->
    let inner = columns input in
    List.map
      (fun (out, e) ->
        match e with
        | Expr.Col src -> (
          match List.assoc_opt src inner with
          | Some s -> (out, s)
          | None -> (out, Computed))
        | _ -> (out, Computed))
      defs
  | Op.Join { left; right; _ } -> columns left @ columns right
  | Op.Group_by { input; keys; aggs; _ } ->
    let inner = columns input in
    List.map
      (fun k ->
        match List.assoc_opt k inner with
        | Some s -> (k, s)
        | None -> (k, Computed))
      keys
    @ List.map (fun (out, _) -> (out, Computed)) aggs
  | Op.Union { cols = outs; inputs } -> (
    match inputs with
    | [ (input, mapping) ] ->
      let inner = columns input in
      List.map2
        (fun out src ->
          match List.assoc_opt src inner with
          | Some s -> (out, s)
          | None -> (out, Computed))
        outs mapping
    | _ -> List.map (fun out -> (out, Computed)) outs)

(* --- dependency scan --- *)

(* Does any referenced input column of a site carry one of the watched base
   columns?  [inner] is the lineage of the site's input relation. *)
let hits ~table ~cols inner refs =
  List.filter_map
    (fun r ->
      match List.assoc_opt r inner with
      | Some (Base { table = t; column = c }) when t = table && List.mem c cols ->
        Some (Printf.sprintf "%s.%s via %s" t c r)
      | _ -> None)
    refs

let dependents ~table ~cols ?exempt (op : Op.t) : string list =
  let sites = ref [] in
  let site op_id what found =
    match found with
    | [] -> ()
    | hs ->
      sites :=
        Printf.sprintf "op#%d %s [%s]" op_id what
          (String.concat ", " (List.sort_uniq compare hs))
        :: !sites
  in
  let exempted op_id out =
    match exempt with Some (i, c) -> i = op_id && c = out | None -> false
  in
  ignore
    (Op.fold op ~init:() ~f:(fun () o ->
         match o.Op.node with
         | Op.Table _ -> ()
         | Op.Select { input; pred } ->
           site o.Op.id "selection predicate" (hits ~table ~cols (columns input) (Expr.cols pred))
         | Op.Join { left; right; pred; _ } ->
           let inner = columns left @ columns right in
           site o.Op.id "join predicate" (hits ~table ~cols inner (Expr.cols pred))
         | Op.Group_by { input; keys; aggs; order } ->
           let inner = columns input in
           site o.Op.id "grouping keys" (hits ~table ~cols inner keys);
           site o.Op.id "group order" (hits ~table ~cols inner order);
           List.iter
             (fun (out, agg) ->
               match agg with
               | Expr.Xml_frag e ->
                 (* the fragment collects node columns built one level
                    below; direct base-column references inside it render
                    per row and count as a dependency *)
                 site o.Op.id
                   (Printf.sprintf "aggregate %s" out)
                   (hits ~table ~cols inner (Expr.cols e))
               | Expr.Count -> ()
               | Expr.Sum e | Expr.Min e | Expr.Max e | Expr.Avg e ->
                 site o.Op.id
                   (Printf.sprintf "aggregate %s" out)
                   (hits ~table ~cols inner (Expr.cols e)))
             aggs
         | Op.Project { input; defs } ->
           let inner = columns input in
           List.iter
             (fun (out, e) ->
               match e with
               | Expr.Col _ -> ()  (* copy-through: harmless *)
               | _ ->
                 if not (exempted o.Op.id out) then
                   site o.Op.id
                     (Printf.sprintf "computed column %s" out)
                     (hits ~table ~cols inner (Expr.cols e)))
             defs
         | Op.Union _ -> ()));
  List.rev !sites
