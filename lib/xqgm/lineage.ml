(* Column provenance: which base-table column does each output column copy?

   The walk parallels {!Injective.classify} but answers a finer question —
   per-column identity rather than per-table coverage — and is deliberately
   conservative: anything that is not a verbatim copy (expressions,
   aggregates, multi-input unions) is [Computed].  Join minimization is not
   applied: after [pid = v_pid] each side still reports its own source, so a
   caller anchoring a level to one table sees that table's own columns. *)

type source =
  | Base of { table : string; column : string }
  | Computed

let rec columns (op : Op.t) : (string * source) list =
  match op.Op.node with
  | Op.Table { table; cols; _ } ->
    List.map (fun (src, out) -> (out, Base { table; column = src })) cols
  | Op.Select { input; _ } -> columns input
  | Op.Project { input; defs } ->
    let inner = columns input in
    List.map
      (fun (out, e) ->
        match e with
        | Expr.Col src -> (
          match List.assoc_opt src inner with
          | Some s -> (out, s)
          | None -> (out, Computed))
        | _ -> (out, Computed))
      defs
  | Op.Join { left; right; _ } -> columns left @ columns right
  | Op.Group_by { input; keys; aggs; _ } ->
    let inner = columns input in
    List.map
      (fun k ->
        match List.assoc_opt k inner with
        | Some s -> (k, s)
        | None -> (k, Computed))
      keys
    @ List.map (fun (out, _) -> (out, Computed)) aggs
  | Op.Union { cols = outs; inputs } -> (
    match inputs with
    | [ (input, mapping) ] ->
      let inner = columns input in
      List.map2
        (fun out src ->
          match List.assoc_opt src inner with
          | Some s -> (out, s)
          | None -> (out, Computed))
        outs mapping
    | _ -> List.map (fun out -> (out, Computed)) outs)

(* --- column footprint --- *)

let footprint ~table (op : Op.t) : string list =
  Op.fold op ~init:[] ~f:(fun acc o ->
      match o.Op.node with
      | Op.Table { table = t; binding = Op.Post; cols } when t = table ->
        List.fold_left
          (fun acc (src, _) -> if List.mem src acc then acc else src :: acc)
          acc cols
      | _ -> acc)
  |> List.sort compare

(* --- observed columns: needed-columns dataflow ---

   [footprint] lists whatever the Table operator scans, which for compiled
   views is every schema column (row variables expose the full row even
   when the plan reads two fields).  The pruning signature needs the tight
   set: walk top-down with the set of output columns the consumers above
   can see (at the root: all of them — the tagger, keys, conditions all
   read root outputs), and at each scan of [table] keep only the source
   columns whose outputs are in that set.  Predicates count as consumers
   (they decide row presence), as do grouping keys and ordering columns
   (they decide group structure).  Shared operators are simply re-walked
   per parent — plans are small and the sets differ per path. *)

module Sset = Set.Make (String)

let observed ~table (op : Op.t) : string list =
  let acc = ref Sset.empty in
  let rec go op needed =
    match op.Op.node with
    | Op.Table { table = t; cols; _ } ->
      if t = table then
        List.iter
          (fun (src, out) -> if Sset.mem out needed then acc := Sset.add src !acc)
          cols
    | Op.Select { input; pred } ->
      go input (Sset.union needed (Sset.of_list (Expr.cols pred)))
    | Op.Project { input; defs } ->
      go input
        (List.fold_left
           (fun n (out, e) ->
             if Sset.mem out needed then Sset.union n (Sset.of_list (Expr.cols e))
             else n)
           Sset.empty defs)
    | Op.Join { left; right; pred; _ } ->
      let want = Sset.union needed (Sset.of_list (Expr.cols pred)) in
      go left (Sset.inter want (Sset.of_list (Op.cols left)));
      go right (Sset.inter want (Sset.of_list (Op.cols right)))
    | Op.Group_by { input; keys; aggs; order } ->
      go input
        (List.fold_left
           (fun n (out, agg) ->
             if Sset.mem out needed then
               Sset.union n (Sset.of_list (Expr.agg_cols agg))
             else n)
           (Sset.of_list (keys @ order))
           aggs)
    | Op.Union { cols = outs; inputs } ->
      List.iter
        (fun (input, mapping) ->
          go input
            (List.fold_left2
               (fun n out src -> if Sset.mem out needed then Sset.add src n else n)
               Sset.empty outs mapping))
        inputs
  in
  go op (Sset.of_list (Op.cols op));
  Sset.elements !acc

(* --- static independence: per-site constant filters ---

   Each POST scan of [table] is one *site*.  A base row can influence the
   plan's output only if it satisfies the conjunction of the constant
   comparison filters collected for at least one site (sites are a
   disjunction: the row may reach the output through any of them).  The
   extraction is conservative: only conjuncts of the literal shape
   [col cmp const] dominating the site are kept, and only where the join
   kind guarantees that a row failing the predicate cannot affect the
   output at all —

   - inner join predicates constrain both sides;
   - a left-outer join's predicate constrains only the right side (a left
     row appears NULL-padded regardless), and the right side's column map
     is dropped above the join so NULL padding never mis-attributes a
     later filter;
   - anti-join predicates constrain the probed side (its rows only matter
     through predicate matches); the eliminated side's columns do not
     reach the output, so its map is dropped;
   - group-by keys pass through (a row whose key fails a later filter
     lands in a group whose output rows all fail it too);
   - aggregates and computed projections end attribution for that column.

   An empty filter list for any site means rows reaching that site are
   unconstrained, so no pruning is possible for the whole plan. *)

type filter = {
  f_col : string;
  f_cmp : Relkit.Ra.binop;
  f_const : Relkit.Value.t;
}

let filter_to_string f =
  Printf.sprintf "%s %s %s" f.f_col
    (Expr.string_of_binop f.f_cmp)
    (Relkit.Value.to_sql_literal f.f_const)

(* site under construction: [map] sends the current operator's output
   columns back to this site's base columns *)
type site_acc = {
  map : (string * string) list;
  filters : filter list;
}

let conjuncts pred =
  let rec go acc = function
    | Expr.Binop (Relkit.Ra.And, a, b) -> go (go acc a) b
    | e -> e :: acc
  in
  go [] pred

let flip_cmp = function
  | Relkit.Ra.Lt -> Relkit.Ra.Gt
  | Relkit.Ra.Gt -> Relkit.Ra.Lt
  | Relkit.Ra.Le -> Relkit.Ra.Ge
  | Relkit.Ra.Ge -> Relkit.Ra.Le
  | c -> c

let constraint_of_conjunct map = function
  | Expr.Binop
      ( ((Relkit.Ra.Eq | Relkit.Ra.Neq | Relkit.Ra.Lt | Relkit.Ra.Le
         | Relkit.Ra.Gt | Relkit.Ra.Ge) as cmp),
        Expr.Col c,
        Expr.Const v ) -> (
    match List.assoc_opt c map with
    | Some base -> Some { f_col = base; f_cmp = cmp; f_const = v }
    | None -> None)
  | Expr.Binop
      ( ((Relkit.Ra.Eq | Relkit.Ra.Neq | Relkit.Ra.Lt | Relkit.Ra.Le
         | Relkit.Ra.Gt | Relkit.Ra.Ge) as cmp),
        Expr.Const v,
        Expr.Col c ) -> (
    match List.assoc_opt c map with
    | Some base -> Some { f_col = base; f_cmp = flip_cmp cmp; f_const = v }
    | None -> None)
  | _ -> None

let site_filters ~table (op : Op.t) : filter list list =
  let apply_pred pred sites =
    let cs = conjuncts pred in
    List.map
      (fun s ->
        let fs = List.filter_map (constraint_of_conjunct s.map) cs in
        { s with filters = fs @ s.filters })
      sites
  in
  let drop_map s = { s with map = [] } in
  let rec go op =
    match op.Op.node with
    | Op.Table { table = t; binding = Op.Post; cols } when t = table ->
      [ { map = List.map (fun (src, out) -> (out, src)) cols; filters = [] } ]
    | Op.Table _ -> []
    | Op.Select { input; pred } -> apply_pred pred (go input)
    | Op.Project { input; defs } ->
      List.map
        (fun s ->
          { s with
            map =
              List.filter_map
                (fun (out, e) ->
                  match e with
                  | Expr.Col src -> (
                    match List.assoc_opt src s.map with
                    | Some base -> Some (out, base)
                    | None -> None)
                  | _ -> None)
                defs;
          })
        (go input)
    | Op.Join { kind; left; right; pred } -> (
      let l = go left and r = go right in
      match kind with
      | Op.Inner -> apply_pred pred l @ apply_pred pred r
      | Op.Left_outer -> l @ List.map drop_map (apply_pred pred r)
      | Op.Left_anti -> l @ List.map drop_map (apply_pred pred r)
      | Op.Right_anti -> List.map drop_map (apply_pred pred l) @ r)
    | Op.Group_by { input; keys; _ } ->
      List.map
        (fun s ->
          { s with map = List.filter (fun (out, _) -> List.mem out keys) s.map })
        (go input)
    | Op.Union { cols = outs; inputs } ->
      List.concat_map
        (fun (input, mapping) ->
          List.map
            (fun s ->
              { s with
                map =
                  List.filter_map
                    (fun (out, src) ->
                      match List.assoc_opt src s.map with
                      | Some base -> Some (out, base)
                      | None -> None)
                    (List.combine outs mapping);
              })
            (go input))
        inputs
  in
  List.map (fun s -> s.filters) (go op)

(* --- dependency scan --- *)

(* Does any referenced input column of a site carry one of the watched base
   columns?  [inner] is the lineage of the site's input relation. *)
let hits ~table ~cols inner refs =
  List.filter_map
    (fun r ->
      match List.assoc_opt r inner with
      | Some (Base { table = t; column = c }) when t = table && List.mem c cols ->
        Some (Printf.sprintf "%s.%s via %s" t c r)
      | _ -> None)
    refs

let dependents ~table ~cols ?exempt (op : Op.t) : string list =
  let sites = ref [] in
  let site op_id what found =
    match found with
    | [] -> ()
    | hs ->
      sites :=
        Printf.sprintf "op#%d %s [%s]" op_id what
          (String.concat ", " (List.sort_uniq compare hs))
        :: !sites
  in
  let exempted op_id out =
    match exempt with Some (i, c) -> i = op_id && c = out | None -> false
  in
  ignore
    (Op.fold op ~init:() ~f:(fun () o ->
         match o.Op.node with
         | Op.Table _ -> ()
         | Op.Select { input; pred } ->
           site o.Op.id "selection predicate" (hits ~table ~cols (columns input) (Expr.cols pred))
         | Op.Join { left; right; pred; _ } ->
           let inner = columns left @ columns right in
           site o.Op.id "join predicate" (hits ~table ~cols inner (Expr.cols pred))
         | Op.Group_by { input; keys; aggs; order } ->
           let inner = columns input in
           site o.Op.id "grouping keys" (hits ~table ~cols inner keys);
           site o.Op.id "group order" (hits ~table ~cols inner order);
           List.iter
             (fun (out, agg) ->
               match agg with
               | Expr.Xml_frag e ->
                 (* the fragment collects node columns built one level
                    below; direct base-column references inside it render
                    per row and count as a dependency *)
                 site o.Op.id
                   (Printf.sprintf "aggregate %s" out)
                   (hits ~table ~cols inner (Expr.cols e))
               | Expr.Count -> ()
               | Expr.Sum e | Expr.Min e | Expr.Max e | Expr.Avg e ->
                 site o.Op.id
                   (Printf.sprintf "aggregate %s" out)
                   (hits ~table ~cols inner (Expr.cols e)))
             aggs
         | Op.Project { input; defs } ->
           let inner = columns input in
           List.iter
             (fun (out, e) ->
               match e with
               | Expr.Col _ -> ()  (* copy-through: harmless *)
               | _ ->
                 if not (exempted o.Op.id out) then
                   site o.Op.id
                     (Printf.sprintf "computed column %s" out)
                     (hits ~table ~cols inner (Expr.cols e)))
             defs
         | Op.Union _ -> ()));
  List.rev !sites
