type event = Insert | Update | Delete

let string_of_event = function
  | Insert -> "INSERT"
  | Update -> "UPDATE"
  | Delete -> "DELETE"

(* A committed statement, with full row images: replaying a change log
   through the DML path regenerates identical transition tables.  This is
   the unit a durability layer (see lib/relkit/durability) appends to its
   write-ahead log. *)
type change =
  | Ch_insert of { table : string; rows : Value.t array list }
  | Ch_update of {
      table : string;
      before : Value.t array list;
      after : Value.t array list;  (* pairwise with [before] *)
    }
  | Ch_delete of { table : string; rows : Value.t array list }
  | Ch_create_table of Schema.t
  | Ch_create_index of { table : string; column : string }

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable triggers : trigger list;  (* in creation order *)
  trig_index : (string * event, trigger list) Hashtbl.t;
      (* (table, event) → matching triggers in creation order: a DML
         statement activates exactly its bucket instead of sweeping the
         whole catalog (table-relevance prefilter) *)
  mutable trigger_skips : int;
      (* triggers the prefilter did not even consider, summed over
         statements: |catalog| - |bucket| per trigger-firing opportunity *)
  mutable parallel_runner : ((unit -> unit -> unit) list -> (unit -> unit) list) option;
      (* installed by the runtime when tuning.domains > 1: runs the given
         prepare thunks (read-only against the statement snapshot) to
         completion — on a domain pool, under [with_shared_reads] — and
         returns their continuations in submission order.  [None] = fire
         strictly sequentially (the domains=1 path) *)
  mutable firing_depth : int;
  mutable on_change : (change -> unit) option;
  mutable change_paused : bool;
  mutable triggers_suppressed : bool;
  mutable stmt_seq : int;
      (* statement id: bumped at the start of every DML statement (an int
         store, free) and carried into each trigger_ctx, so audit records
         can name the exact statement a firing derives from *)
  mutable stmt_origin : string;
      (* provenance of the statement currently executing: layers that
         translate a higher-level statement into base DML (the view-update
         translator) set this to the source text around their DML calls, so
         triggers and audit records fired underneath can name the true
         cause.  "" = a direct relational statement *)
  trace : Obs.Trace.t;
      (* one tracer per database; every layer holding a [t] (runtime,
         pushdown fragment engines via Ra_eval.ctx, durability) records
         spans here so a firing is observable end-to-end *)
  audit : Obs.Audit.t;
      (* one audit log per database, same ownership story as the tracer:
         the runtime's SQL-trigger bodies append firing records here *)
}

and trigger_ctx = {
  db : t;
  target : string;
  event : event;
  stmt_id : int;  (* id of the DML statement that fired this trigger *)
  inserted : Value.t array list;
  deleted : Value.t array list;
}

and trigger = {
  trig_name : string;
  trig_table : string;
  trig_event : event;
  body : trigger_ctx -> unit;
  prepare : (trigger_ctx -> unit -> unit) option;
      (* two-phase form of [body] for the parallel pipeline: [prepare ctx]
         is read-only against the frozen statement snapshot (plan
         execution, tagging, pair computation) and returns a continuation
         holding every side effect (counters, audit, dispatch, cascaded
         DML).  Contract: [body ctx] must behave exactly like
         [(Option.get prepare) ctx ()].  [None] = the trigger can only run
         sequentially (e.g. the MATERIALIZED baseline). *)
  sql_text : string;
}

let max_firing_depth = 16

let create () =
  { tables = Hashtbl.create 16;
    triggers = [];
    trig_index = Hashtbl.create 16;
    trigger_skips = 0;
    parallel_runner = None;
    firing_depth = 0;
    on_change = None;
    change_paused = false;
    triggers_suppressed = false;
    stmt_seq = 0;
    stmt_origin = "";
    trace = Obs.Trace.create ();
    audit = Obs.Audit.create ();
  }

let tracer t = t.trace
let audit t = t.audit
let statement_count t = t.stmt_seq

let statement_origin t = t.stmt_origin

(* Run [f] with every statement it issues stamped as originating from
   [origin] (e.g. the view-DML text a translator compiled into base DML).
   Restores the previous origin even on exceptions, so a failed translation
   cannot leak its stamp onto later direct statements. *)
let with_statement_origin t origin f =
  let saved = t.stmt_origin in
  t.stmt_origin <- origin;
  Fun.protect ~finally:(fun () -> t.stmt_origin <- saved) f

let next_stmt t =
  t.stmt_seq <- t.stmt_seq + 1;
  t.stmt_seq

(* --- durability hook --- *)

let attach_durability t f = t.on_change <- Some f
let detach_durability t = t.on_change <- None

let notify t ch =
  if not t.change_paused then Option.iter (fun f -> f ch) t.on_change

(* Run [f] without reporting its statements to the durability hook.  Used for
   system state that is regenerated from logical DDL on recovery (e.g. the
   runtime's trigger-constants tables). *)
let without_logging t f =
  let saved = t.change_paused in
  t.change_paused <- true;
  Fun.protect ~finally:(fun () -> t.change_paused <- saved) f

(* Run [f] without firing any AFTER triggers.  Used by crash recovery: the
   log already contains the full effects of every statement, including those
   issued by trigger bodies, so replaying with triggers armed would apply
   cascaded effects twice. *)
let with_triggers_suppressed t f =
  let saved = t.triggers_suppressed in
  t.triggers_suppressed <- true;
  Fun.protect ~finally:(fun () -> t.triggers_suppressed <- saved) f

let create_table t schema =
  let name = schema.Schema.name in
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Database.create_table: table %S already exists" name);
  Hashtbl.add t.tables name (Table.create schema);
  notify t (Ch_create_table schema)

(* Removes a table from the catalog.  No change notification is emitted:
   this exists for runtime-owned derived state (the trigger-grouping
   constants tables, regenerated when triggers are re-armed), which
   durability already excludes from the WAL and snapshots. *)
let drop_table t name = Hashtbl.remove t.tables name

let find_table t name = Hashtbl.find_opt t.tables name

(* Content version of a table (0 when absent).  Bumped by Table on every
   mutation reaching storage, whether or not the change hook is paused. *)
let table_version t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Table.version tbl
  | None -> 0

let get_table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> raise Not_found

let table_names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []

let create_index t ~table ~column =
  Table.create_index (get_table t table) column;
  notify t (Ch_create_index { table; column })

(* --- constraint checking --- *)

let check_row_valid tbl row =
  match Schema.validate_row (Table.schema tbl) row with
  | Ok () -> ()
  | Error msg ->
    invalid_arg
      (Printf.sprintf "constraint violation in table %S: %s"
         (Table.schema tbl).Schema.name msg)

let check_foreign_keys t tbl row =
  let schema = Table.schema tbl in
  List.iter
    (fun fk ->
      let vals = List.map (fun c -> row.(Schema.col_index schema c)) fk.Schema.fk_columns in
      if not (List.exists Value.is_null vals) then begin
        match find_table t fk.Schema.fk_table with
        | None ->
          invalid_arg
            (Printf.sprintf "foreign key references unknown table %S" fk.Schema.fk_table)
        | Some parent ->
          let pschema = Table.schema parent in
          let found =
            if fk.Schema.fk_ref_columns = pschema.Schema.primary_key then
              Table.find_pk parent vals <> None
            else begin
              match fk.Schema.fk_ref_columns, vals with
              | [ col ], [ v ] -> Table.lookup parent ~column:col v <> []
              | _ -> true (* composite non-PK references are not enforced *)
            end
          in
          if not found then
            invalid_arg
              (Printf.sprintf
                 "foreign key violation: (%s) not present in %S(%s)"
                 (String.concat ", " (List.map Value.to_string vals))
                 fk.Schema.fk_table
                 (String.concat ", " fk.Schema.fk_ref_columns))
      end)
    schema.Schema.foreign_keys

let check_uniques tbl row =
  let schema = Table.schema tbl in
  List.iter
    (fun ucols ->
      match ucols with
      | [ col ] ->
        let v = row.(Schema.col_index schema col) in
        if (not (Value.is_null v)) && Table.lookup tbl ~column:col v <> [] then
          invalid_arg
            (Printf.sprintf "unique violation on %S.%s = %s" schema.Schema.name col
               (Value.to_string v))
      | _ ->
        (* Composite uniques are checked only against the PK path; a full
           implementation would keep a composite index.  Not needed by the
           paper's workloads. *)
        ())
    schema.Schema.uniques

(* --- shared-read snapshot (single writer / multiple readers) --- *)

(* Freezes every table for the duration of [f]: reader domains may query
   the database freely (it is a stable statement snapshot — mutation
   attempts raise), shared per-table memo caches are bypassed.  Thaws on
   the way out even on exceptions.  Tables created during [f] would escape
   the freeze, but DDL is itself a mutation of engine state and never runs
   inside a parallel section. *)
let with_shared_reads t f =
  Hashtbl.iter (fun _ tbl -> Table.set_frozen tbl true) t.tables;
  Fun.protect
    ~finally:(fun () -> Hashtbl.iter (fun _ tbl -> Table.set_frozen tbl false) t.tables)
    f

let set_parallel_runner t runner = t.parallel_runner <- runner
let trigger_skips t = t.trigger_skips
let reset_trigger_skips t = t.trigger_skips <- 0

(* --- trigger firing --- *)

let fire_triggers t ~target ~event ~stmt_id ~inserted ~deleted =
  if t.triggers_suppressed then ()
  else begin
    (* Table-relevance prefilter: only this (table, event) bucket can have
       non-empty transition tables; the rest of the catalog is skipped
       without being examined (and without audit probes). *)
    let to_fire =
      Option.value ~default:[] (Hashtbl.find_opt t.trig_index (target, event))
    in
    t.trigger_skips <- t.trigger_skips + (List.length t.triggers - List.length to_fire);
    if to_fire <> [] then begin
      if t.firing_depth >= max_firing_depth then
        invalid_arg "Database: trigger recursion depth exceeded";
      t.firing_depth <- t.firing_depth + 1;
      let ctx = { db = t; target; event; stmt_id; inserted; deleted } in
      let fire_sequentially () =
        List.iter
          (fun tr ->
            let t0 = Obs.Trace.start t.trace in
            tr.body ctx;
            (* trig_name is a live string: no allocation when disabled *)
            Obs.Trace.finish_note t.trace t0 "trigger" tr.trig_name)
          to_fire
      in
      Fun.protect
        ~finally:(fun () -> t.firing_depth <- t.firing_depth - 1)
        (fun () ->
          match t.parallel_runner with
          | Some run
            when List.length to_fire >= 2
                 && List.for_all (fun tr -> tr.prepare <> None) to_fire ->
            (* Two-phase parallel firing: the read-only prepares run on the
               pool against the frozen snapshot; the continuations — every
               side effect — run here, on the statement's domain, in
               creation order.  Firing order, audit records, WAL appends
               are therefore identical to the sequential path. *)
            let ks =
              run (List.map (fun tr () -> (Option.get tr.prepare) ctx) to_fire)
            in
            List.iter2
              (fun tr k ->
                let t0 = Obs.Trace.start t.trace in
                k ();
                Obs.Trace.finish_note t.trace t0 "trigger" tr.trig_name)
              to_fire ks
          | _ -> fire_sequentially ())
    end
  end

(* --- DML --- *)

let validate_batch t tbl rows =
  List.iter
    (fun row ->
      check_row_valid tbl row;
      check_uniques tbl row;
      check_foreign_keys t tbl row)
    rows;
  (* Detect duplicate PKs within the batch before mutating anything. *)
  let seen = Hashtbl.create (List.length rows) in
  List.iter
    (fun row ->
      let pk = Schema.pk_of_row (Table.schema tbl) row in
      let key = List.map Value.to_string pk in
      if Hashtbl.mem seen key then
        invalid_arg "duplicate primary key within inserted batch";
      Hashtbl.add seen key ())
    rows

let insert_no_fire t ~table rows =
  let tbl = get_table t table in
  validate_batch t tbl rows;
  List.iter
    (fun row ->
      if Table.find_pk tbl (Schema.pk_of_row (Table.schema tbl) row) <> None then
        invalid_arg
          (Printf.sprintf "duplicate primary key on insert into %S" table);
      Table.insert_exn tbl row)
    rows;
  if rows <> [] then notify t (Ch_insert { table; rows })

(* Span label for one DML statement; only called when tracing is enabled. *)
let dml_note op table n = Printf.sprintf "%s %s n=%d" op table n

let insert_rows t ~table rows =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  insert_no_fire t ~table rows;
  if rows <> [] then
    fire_triggers t ~target:table ~event:Insert ~stmt_id:sid ~inserted:rows ~deleted:[];
  if Obs.Trace.enabled t.trace then
    Obs.Trace.finish_note t.trace t0 "dml" (dml_note "INSERT" table (List.length rows))

let load_rows = insert_no_fire

let update_rows t ~table ~where ~set =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  let tbl = get_table t table in
  let victims = Table.fold tbl ~init:[] ~f:(fun acc row -> if where row then row :: acc else acc) in
  let pairs = List.map (fun old -> (old, set old)) victims in
  List.iter (fun (_, row) -> check_row_valid tbl row) pairs;
  let schema = Table.schema tbl in
  List.iter
    (fun (old, row) ->
      let old_pk = Schema.pk_of_row schema old in
      let new_pk = Schema.pk_of_row schema row in
      if List.equal Value.equal old_pk new_pk then ignore (Table.replace_exn tbl row)
      else begin
        ignore (Table.delete_pk tbl old_pk);
        Table.insert_exn tbl row
      end;
      check_foreign_keys t tbl row)
    pairs;
  if pairs <> [] then begin
    notify t
      (Ch_update
         { table; before = List.map fst pairs; after = List.map snd pairs });
    fire_triggers t ~target:table ~event:Update ~stmt_id:sid
      ~inserted:(List.map snd pairs)
      ~deleted:(List.map fst pairs)
  end;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.finish_note t.trace t0 "dml" (dml_note "UPDATE" table (List.length pairs));
  List.length pairs

let update_pk t ~table ~pk ~set =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  let tbl = get_table t table in
  match Table.find_pk tbl pk with
  | None -> false
  | Some old ->
    let row = set old in
    check_row_valid tbl row;
    let schema = Table.schema tbl in
    let new_pk = Schema.pk_of_row schema row in
    if List.equal Value.equal pk new_pk then ignore (Table.replace_exn tbl row)
    else begin
      ignore (Table.delete_pk tbl pk);
      Table.insert_exn tbl row
    end;
    check_foreign_keys t tbl row;
    notify t (Ch_update { table; before = [ old ]; after = [ row ] });
    fire_triggers t ~target:table ~event:Update ~stmt_id:sid ~inserted:[ row ] ~deleted:[ old ];
    if Obs.Trace.enabled t.trace then
      Obs.Trace.finish_note t.trace t0 "dml" (dml_note "UPDATE_PK" table 1);
    true

let delete_rows t ~table ~where =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  let tbl = get_table t table in
  let victims = Table.fold tbl ~init:[] ~f:(fun acc row -> if where row then row :: acc else acc) in
  let schema = Table.schema tbl in
  List.iter (fun row -> ignore (Table.delete_pk tbl (Schema.pk_of_row schema row))) victims;
  if victims <> [] then begin
    notify t (Ch_delete { table; rows = victims });
    fire_triggers t ~target:table ~event:Delete ~stmt_id:sid ~inserted:[] ~deleted:victims
  end;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.finish_note t.trace t0 "dml" (dml_note "DELETE" table (List.length victims));
  List.length victims

let delete_pk t ~table ~pk =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  let tbl = get_table t table in
  match Table.delete_pk tbl pk with
  | None -> false
  | Some old ->
    notify t (Ch_delete { table; rows = [ old ] });
    fire_triggers t ~target:table ~event:Delete ~stmt_id:sid ~inserted:[] ~deleted:[ old ];
    if Obs.Trace.enabled t.trace then
      Obs.Trace.finish_note t.trace t0 "dml" (dml_note "DELETE_PK" table 1);
    true

(* --- trigger catalog --- *)

let create_trigger t trigger =
  if List.exists (fun tr -> tr.trig_name = trigger.trig_name) t.triggers then
    invalid_arg
      (Printf.sprintf "Database.create_trigger: trigger %S already exists"
         trigger.trig_name);
  if not (Hashtbl.mem t.tables trigger.trig_table) then
    invalid_arg
      (Printf.sprintf "Database.create_trigger: unknown table %S" trigger.trig_table);
  t.triggers <- t.triggers @ [ trigger ];
  let key = (trigger.trig_table, trigger.trig_event) in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.trig_index key) in
  Hashtbl.replace t.trig_index key (bucket @ [ trigger ])

let drop_trigger t name =
  (match List.find_opt (fun tr -> tr.trig_name = name) t.triggers with
  | None -> ()
  | Some tr ->
    let key = (tr.trig_table, tr.trig_event) in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt t.trig_index key) in
    (match List.filter (fun b -> b.trig_name <> name) bucket with
    | [] -> Hashtbl.remove t.trig_index key
    | rest -> Hashtbl.replace t.trig_index key rest));
  t.triggers <- List.filter (fun tr -> tr.trig_name <> name) t.triggers

let triggers_on t ~table ~event =
  Option.value ~default:[] (Hashtbl.find_opt t.trig_index (table, event))

let trigger_count t = List.length t.triggers
let trigger_sql t = List.map (fun tr -> (tr.trig_name, tr.sql_text)) t.triggers
