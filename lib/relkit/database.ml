type event = Insert | Update | Delete

let string_of_event = function
  | Insert -> "INSERT"
  | Update -> "UPDATE"
  | Delete -> "DELETE"

(* A committed statement, with full row images: replaying a change log
   through the DML path regenerates identical transition tables.  This is
   the unit a durability layer (see lib/relkit/durability) appends to its
   write-ahead log. *)
type change =
  | Ch_insert of { table : string; rows : Value.t array list }
  | Ch_update of {
      table : string;
      before : Value.t array list;
      after : Value.t array list;  (* pairwise with [before] *)
    }
  | Ch_delete of { table : string; rows : Value.t array list }
  | Ch_create_table of Schema.t
  | Ch_create_index of { table : string; column : string }

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable triggers_rev : trigger list;
      (* newest first (O(1) registration); creation order is recovered at
         read time — [trigger_sql], [drop_trigger] — which are rare *)
  mutable trig_count : int;
      (* cached |catalog|, maintained on add/drop: the firing path's skip
         accounting must not walk the catalog per statement *)
  trig_names : (string, unit) Hashtbl.t;  (* O(1) duplicate-name check *)
  mutable trig_seq : int;
      (* global creation sequence, stamped on bucket entries so candidate
         sets recovered from several indexes can be merged back into
         creation order *)
  trig_index : (string * event, bucket) Hashtbl.t;
      (* (table, event) → bucket: a DML statement activates exactly its
         bucket instead of sweeping the whole catalog (table-relevance
         prefilter); within a bucket, relevance signatures prune further *)
  mutable trigger_skips : int;
      (* triggers the prefilter did not even consider, summed over
         statements: |catalog| - |bucket| per trigger-firing opportunity *)
  mutable independence_skips : int;
      (* triggers inside the activated bucket that the static relevance
         signature proved independent of the statement (counted separately
         from the table-level prefilter above) *)
  mutable parallel_runner : ((unit -> unit -> unit) list -> (unit -> unit) list) option;
      (* installed by the runtime when tuning.domains > 1: runs the given
         prepare thunks (read-only against the statement snapshot) to
         completion — on a domain pool, under [with_shared_reads] — and
         returns their continuations in submission order.  [None] = fire
         strictly sequentially (the domains=1 path) *)
  mutable firing_depth : int;
  mutable on_change : (change -> unit) option;
  mutable change_paused : bool;
  mutable triggers_suppressed : bool;
  mutable stmt_seq : int;
      (* statement id: bumped at the start of every DML statement (an int
         store, free) and carried into each trigger_ctx, so audit records
         can name the exact statement a firing derives from *)
  mutable stmt_origin : string;
      (* provenance of the statement currently executing: layers that
         translate a higher-level statement into base DML (the view-update
         translator) set this to the source text around their DML calls, so
         triggers and audit records fired underneath can name the true
         cause.  "" = a direct relational statement *)
  trace : Obs.Trace.t;
      (* one tracer per database; every layer holding a [t] (runtime,
         pushdown fragment engines via Ra_eval.ctx, durability) records
         spans here so a firing is observable end-to-end *)
  audit : Obs.Audit.t;
      (* one audit log per database, same ownership story as the tracer:
         the runtime's SQL-trigger bodies append firing records here *)
  mutable window : Obs.Window.t;
      (* sliding-window statistics (per-table DML rates, skip rates,
         per-group firing profiles) shared by every layer holding a [t];
         all adds happen on the statement's domain, so windowed series
         conserve exactly even with a parallel prepare pool *)
}

and trigger_ctx = {
  db : t;
  target : string;
  event : event;
  stmt_id : int;  (* id of the DML statement that fired this trigger *)
  inserted : Value.t array list;
  deleted : Value.t array list;
}

and trigger = {
  trig_name : string;
  trig_table : string;
  trig_event : event;
  body : trigger_ctx -> unit;
  prepare : (trigger_ctx -> unit -> unit) option;
      (* two-phase form of [body] for the parallel pipeline: [prepare ctx]
         is read-only against the frozen statement snapshot (plan
         execution, tagging, pair computation) and returns a continuation
         holding every side effect (counters, audit, dispatch, cascaded
         DML).  Contract: [body ctx] must behave exactly like
         [(Option.get prepare) ctx ()].  [None] = the trigger can only run
         sequentially (e.g. the MATERIALIZED baseline). *)
  relevance : relevance option;
      (* static relevance signature derived at arm time from the trigger's
         plan; [None] = always relevant (fire on every bucket hit) *)
  sql_text : string;
}

and relevance = {
  rel_cols : string list option;
      (* base columns of [trig_table] the trigger's plans can observe;
         [None] = all.  An UPDATE whose every (OLD, NEW) pair is identical
         on these columns provably yields no pair. *)
  rel_pred : (Value.t array -> bool) option;
      (* constant-filter test over full base rows (disjunction of the
         plan's scan-site conjunctions): a row failing it cannot influence
         any of the trigger's plans.  Must answer [true] on NULLs or any
         doubt.  [None] = unconstrained. *)
  rel_eq : (string * Value.t) option;
      (* an equality every scan site implies, when one exists: lets the
         bucket index the trigger by (column, constant) so a statement
         only considers triggers whose constant appears in its transition
         rows *)
}

(* One bucket member.  Column names from the signature are resolved to row
   slots once, at registration, so the firing path never touches the
   schema. *)
and entry = {
  e_seq : int;  (* global creation sequence, for order recovery *)
  e_trig : trigger;
  e_slots : int list option;  (* resolved [rel_cols]; [None] = all *)
  e_pred : (Value.t array -> bool) option;
}

and bucket = {
  mutable b_entries_rev : entry list;  (* newest first *)
  mutable b_ordered : trigger list;  (* cached creation-order view *)
  mutable b_stale : bool;
  mutable b_size : int;
  mutable b_rel_count : int;  (* entries carrying a relevance signature *)
  mutable b_plain_rev : entry list;
      (* entries with no index key: always candidates (their exact
         relevance check still runs if they carry a signature) *)
  b_by_col : (int, entry list) Hashtbl.t;
      (* UPDATE buckets: observed slot → entries; an entry appears under
         each of its observed slots *)
  b_by_val : (int * Value.t, entry list) Hashtbl.t;
      (* (slot, constant) → entries whose every scan site implies that
         equality *)
  mutable b_eq_slots : int list;  (* distinct slots keyed in [b_by_val] *)
  mutable b_indexed : int;  (* entries reachable only via an index *)
}

let max_firing_depth = 16

let create () =
  { tables = Hashtbl.create 16;
    triggers_rev = [];
    trig_count = 0;
    trig_names = Hashtbl.create 16;
    trig_seq = 0;
    trig_index = Hashtbl.create 16;
    trigger_skips = 0;
    independence_skips = 0;
    parallel_runner = None;
    firing_depth = 0;
    on_change = None;
    change_paused = false;
    triggers_suppressed = false;
    stmt_seq = 0;
    stmt_origin = "";
    trace = Obs.Trace.create ~limit:(Obs.Knobs.trace_ring ()) ();
    audit = Obs.Audit.create ~limit:(Obs.Knobs.audit_ring ()) ();
    window =
      Obs.Window.create
        ~buckets:(Obs.Knobs.window_buckets ())
        ~width_ms:(Obs.Knobs.window_width_ms ())
        ~now:(Obs.Trace.now ()) ();
  }

let tracer t = t.trace
let audit t = t.audit
let window t = t.window

(* Replace the sliding window with a fresh one (different bucket
   geometry).  Lifetime totals restart; the runtime calls this at
   creation time, before any traffic. *)
let set_window t ~buckets ~width_ms =
  t.window <- Obs.Window.create ~buckets ~width_ms ~now:(Obs.Trace.now ()) ()
let statement_count t = t.stmt_seq

let statement_origin t = t.stmt_origin

(* Run [f] with every statement it issues stamped as originating from
   [origin] (e.g. the view-DML text a translator compiled into base DML).
   Restores the previous origin even on exceptions, so a failed translation
   cannot leak its stamp onto later direct statements. *)
let with_statement_origin t origin f =
  let saved = t.stmt_origin in
  t.stmt_origin <- origin;
  Fun.protect ~finally:(fun () -> t.stmt_origin <- saved) f

let next_stmt t =
  t.stmt_seq <- t.stmt_seq + 1;
  t.stmt_seq

(* --- durability hook --- *)

let attach_durability t f = t.on_change <- Some f
let detach_durability t = t.on_change <- None

let notify t ch =
  if not t.change_paused then Option.iter (fun f -> f ch) t.on_change

(* Run [f] without reporting its statements to the durability hook.  Used for
   system state that is regenerated from logical DDL on recovery (e.g. the
   runtime's trigger-constants tables). *)
let without_logging t f =
  let saved = t.change_paused in
  t.change_paused <- true;
  Fun.protect ~finally:(fun () -> t.change_paused <- saved) f

(* Run [f] without firing any AFTER triggers.  Used by crash recovery: the
   log already contains the full effects of every statement, including those
   issued by trigger bodies, so replaying with triggers armed would apply
   cascaded effects twice. *)
let with_triggers_suppressed t f =
  let saved = t.triggers_suppressed in
  t.triggers_suppressed <- true;
  Fun.protect ~finally:(fun () -> t.triggers_suppressed <- saved) f

let create_table t schema =
  let name = schema.Schema.name in
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Database.create_table: table %S already exists" name);
  Hashtbl.add t.tables name (Table.create schema);
  notify t (Ch_create_table schema)

(* Removes a table from the catalog.  No change notification is emitted:
   this exists for runtime-owned derived state (the trigger-grouping
   constants tables, regenerated when triggers are re-armed), which
   durability already excludes from the WAL and snapshots. *)
let drop_table t name = Hashtbl.remove t.tables name

let find_table t name = Hashtbl.find_opt t.tables name

(* Content version of a table (0 when absent).  Bumped by Table on every
   mutation reaching storage, whether or not the change hook is paused. *)
let table_version t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Table.version tbl
  | None -> 0

let get_table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> raise Not_found

let table_names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []

let create_index t ~table ~column =
  Table.create_index (get_table t table) column;
  notify t (Ch_create_index { table; column })

(* --- constraint checking --- *)

let check_row_valid tbl row =
  match Schema.validate_row (Table.schema tbl) row with
  | Ok () -> ()
  | Error msg ->
    invalid_arg
      (Printf.sprintf "constraint violation in table %S: %s"
         (Table.schema tbl).Schema.name msg)

let check_foreign_keys t tbl row =
  let schema = Table.schema tbl in
  List.iter
    (fun fk ->
      let vals = List.map (fun c -> row.(Schema.col_index schema c)) fk.Schema.fk_columns in
      if not (List.exists Value.is_null vals) then begin
        match find_table t fk.Schema.fk_table with
        | None ->
          invalid_arg
            (Printf.sprintf "foreign key references unknown table %S" fk.Schema.fk_table)
        | Some parent ->
          let pschema = Table.schema parent in
          let found =
            if fk.Schema.fk_ref_columns = pschema.Schema.primary_key then
              Table.find_pk parent vals <> None
            else begin
              match fk.Schema.fk_ref_columns, vals with
              | [ col ], [ v ] -> Table.lookup parent ~column:col v <> []
              | _ -> true (* composite non-PK references are not enforced *)
            end
          in
          if not found then
            invalid_arg
              (Printf.sprintf
                 "foreign key violation: (%s) not present in %S(%s)"
                 (String.concat ", " (List.map Value.to_string vals))
                 fk.Schema.fk_table
                 (String.concat ", " fk.Schema.fk_ref_columns))
      end)
    schema.Schema.foreign_keys

let check_uniques tbl row =
  let schema = Table.schema tbl in
  List.iter
    (fun ucols ->
      match ucols with
      | [ col ] ->
        let v = row.(Schema.col_index schema col) in
        if (not (Value.is_null v)) && Table.lookup tbl ~column:col v <> [] then
          invalid_arg
            (Printf.sprintf "unique violation on %S.%s = %s" schema.Schema.name col
               (Value.to_string v))
      | _ ->
        (* Composite uniques are checked only against the PK path; a full
           implementation would keep a composite index.  Not needed by the
           paper's workloads. *)
        ())
    schema.Schema.uniques

(* --- shared-read snapshot (single writer / multiple readers) --- *)

(* Freezes every table for the duration of [f]: reader domains may query
   the database freely (it is a stable statement snapshot — mutation
   attempts raise), shared per-table memo caches are bypassed.  Thaws on
   the way out even on exceptions.  Tables created during [f] would escape
   the freeze, but DDL is itself a mutation of engine state and never runs
   inside a parallel section. *)
let with_shared_reads t f =
  Hashtbl.iter (fun _ tbl -> Table.set_frozen tbl true) t.tables;
  Fun.protect
    ~finally:(fun () -> Hashtbl.iter (fun _ tbl -> Table.set_frozen tbl false) t.tables)
    f

let set_parallel_runner t runner = t.parallel_runner <- runner
let trigger_skips t = t.trigger_skips
let reset_trigger_skips t = t.trigger_skips <- 0
let independence_skips t = t.independence_skips
let reset_independence_skips t = t.independence_skips <- 0

(* --- trigger firing --- *)

(* Creation-order view of a bucket, cached across statements. *)
let bucket_ordered b =
  if b.b_stale then begin
    b.b_ordered <- List.rev_map (fun e -> e.e_trig) b.b_entries_rev;
    b.b_stale <- false
  end;
  b.b_ordered

(* Does (old, new) differ on any observed slot?  [None] = all columns
   observed; update statements never reach here with a fully identical
   pair (the DML path filters those), so [None] answers [true]. *)
let differs_on slots o n =
  match slots with
  | None -> true
  | Some l ->
    List.exists
      (fun s ->
        s < Array.length o && s < Array.length n
        && not (Value.equal o.(s) n.(s)))
      l

(* Exact relevance check for one candidate.  UPDATE relevance is per pair:
   some (OLD, NEW) pair must both change an observed column and have at
   least one version passing the constant filters — a pair failing either
   test provably cannot contribute.  A raising predicate is treated as
   relevant (the check is an optimization, never a gate). *)
let entry_relevant ~event ~pairs ~inserted ~deleted e =
  match e.e_trig.relevance with
  | None -> true
  | Some _ ->
    let pass row =
      match e.e_pred with
      | None -> true
      | Some p -> ( try p row with _ -> true)
    in
    (match event with
    | Update ->
      List.exists
        (fun (o, n) -> differs_on e.e_slots o n && (pass o || pass n))
        pairs
    | Insert -> List.exists pass inserted
    | Delete -> List.exists pass deleted)

(* The candidate set for one statement: plain entries, plus column-indexed
   entries whose observed slots intersect the statement's changed slots,
   plus value-indexed entries whose (slot, constant) key appears in some
   transition row.  Both indexes are sound over-approximations; the exact
   check above then decides each candidate.  [touched] optionally bounds
   the changed-slot scan to the columns the statement's SET list could
   write. *)
(* [b_by_val] keys go through a polymorphic Hashtbl whose structural
   equality is finer than [Value.compare] (which coerces Int/Float, so the
   engine treats [Int 1] and [Float 1.] as equal).  Widen ints at both
   insert and lookup so the index agrees with the engine. *)
let val_key = function Value.Int i -> Value.Float (float_of_int i) | v -> v

let relevant_bucket_triggers t b ~event ~inserted ~deleted ~touched =
  if b.b_rel_count = 0 then bucket_ordered b
  else begin
    let pairs =
      match event with
      | Update -> ( try List.combine deleted inserted with Invalid_argument _ -> [])
      | Insert | Delete -> []
    in
    let candidates =
      if b.b_indexed = 0 then b.b_entries_rev
      else begin
        let acc = ref b.b_plain_rev in
        if Hashtbl.length b.b_by_col > 0 && event = Update then begin
          (* changed-slot set of the statement's pairs *)
          match pairs with
          | [] -> ()
          | (first, _) :: _ ->
            let arity = Array.length first in
            let slots =
              match touched with
              | Some ts -> List.filter (fun s -> s >= 0 && s < arity) ts
              | None -> List.init arity Fun.id
            in
            List.iter
              (fun s ->
                if
                  List.exists
                    (fun (o, n) ->
                      s < Array.length o && s < Array.length n
                      && not (Value.equal o.(s) n.(s)))
                    pairs
                then
                  match Hashtbl.find_opt b.b_by_col s with
                  | Some es -> acc := List.rev_append es !acc
                  | None -> ())
              slots
        end;
        if b.b_eq_slots <> [] then begin
          let seen = Hashtbl.create 8 in
          List.iter
            (fun row ->
              List.iter
                (fun s ->
                  if s < Array.length row then begin
                    let key = (s, val_key row.(s)) in
                    if not (Hashtbl.mem seen key) then begin
                      Hashtbl.add seen key ();
                      match Hashtbl.find_opt b.b_by_val key with
                      | Some es -> acc := List.rev_append es !acc
                      | None -> ()
                    end
                  end)
                b.b_eq_slots)
            (List.rev_append inserted deleted)
        end;
        List.sort_uniq (fun a b' -> compare a.e_seq b'.e_seq) !acc
      end
    in
    let kept =
      List.filter (entry_relevant ~event ~pairs ~inserted ~deleted) candidates
    in
    (* candidates out of an index merge may still be newest-first *)
    let kept =
      if b.b_indexed = 0 then
        List.rev_map (fun e -> e.e_trig) kept
      else List.map (fun e -> e.e_trig) kept
    in
    t.independence_skips <- t.independence_skips + (b.b_size - List.length kept);
    kept
  end

let fire_triggers t ~target ~event ~stmt_id ~inserted ~deleted ?touched () =
  if t.triggers_suppressed then ()
  else begin
    (* Table-relevance prefilter: only this (table, event) bucket can have
       non-empty transition tables; the rest of the catalog is skipped
       without being examined (and without audit probes).  The cached
       catalog count keeps the skip accounting O(1) per statement. *)
    match Hashtbl.find_opt t.trig_index (target, event) with
    | None ->
      t.trigger_skips <- t.trigger_skips + t.trig_count;
      if t.trig_count > 0 then
        Obs.Window.add t.window ~now:(Obs.Trace.now ()) "skips:prefilter"
          (float_of_int t.trig_count)
    | Some bucket ->
    let pre_skipped = t.trig_count - bucket.b_size in
    t.trigger_skips <- t.trigger_skips + pre_skipped;
    let ind0 = t.independence_skips in
    let to_fire =
      relevant_bucket_triggers t bucket ~event ~inserted ~deleted ~touched
    in
    let ind_skipped = t.independence_skips - ind0 in
    if pre_skipped > 0 || ind_skipped > 0 then begin
      let now = Obs.Trace.now () in
      if pre_skipped > 0 then
        Obs.Window.add t.window ~now "skips:prefilter" (float_of_int pre_skipped);
      if ind_skipped > 0 then
        Obs.Window.add t.window ~now "skips:independence"
          (float_of_int ind_skipped)
    end;
    if to_fire <> [] then begin
      if t.firing_depth >= max_firing_depth then
        invalid_arg "Database: trigger recursion depth exceeded";
      t.firing_depth <- t.firing_depth + 1;
      let ctx = { db = t; target; event; stmt_id; inserted; deleted } in
      let fire_sequentially () =
        List.iter
          (fun tr ->
            let t0 = Obs.Trace.start t.trace in
            tr.body ctx;
            (* trig_name is a live string: no allocation when disabled *)
            Obs.Trace.finish_note t.trace t0 "trigger" tr.trig_name)
          to_fire
      in
      Fun.protect
        ~finally:(fun () -> t.firing_depth <- t.firing_depth - 1)
        (fun () ->
          match t.parallel_runner with
          | Some run
            when List.length to_fire >= 2
                 && List.for_all (fun tr -> tr.prepare <> None) to_fire ->
            (* Two-phase parallel firing: the read-only prepares run on the
               pool against the frozen snapshot; the continuations — every
               side effect — run here, on the statement's domain, in
               creation order.  Firing order, audit records, WAL appends
               are therefore identical to the sequential path. *)
            let ks =
              run (List.map (fun tr () -> (Option.get tr.prepare) ctx) to_fire)
            in
            List.iter2
              (fun tr k ->
                let t0 = Obs.Trace.start t.trace in
                k ();
                Obs.Trace.finish_note t.trace t0 "trigger" tr.trig_name)
              to_fire ks
          | _ -> fire_sequentially ())
    end
  end

(* --- DML --- *)

let validate_batch t tbl rows =
  List.iter
    (fun row ->
      check_row_valid tbl row;
      check_uniques tbl row;
      check_foreign_keys t tbl row)
    rows;
  (* Detect duplicate PKs within the batch before mutating anything. *)
  let seen = Hashtbl.create (List.length rows) in
  List.iter
    (fun row ->
      let pk = Schema.pk_of_row (Table.schema tbl) row in
      let key = List.map Value.to_string pk in
      if Hashtbl.mem seen key then
        invalid_arg "duplicate primary key within inserted batch";
      Hashtbl.add seen key ())
    rows

let insert_no_fire t ~table rows =
  let tbl = get_table t table in
  validate_batch t tbl rows;
  List.iter
    (fun row ->
      if Table.find_pk tbl (Schema.pk_of_row (Table.schema tbl) row) <> None then
        invalid_arg
          (Printf.sprintf "duplicate primary key on insert into %S" table);
      Table.insert_exn tbl row)
    rows;
  if rows <> [] then notify t (Ch_insert { table; rows })

(* Span label for one DML statement; only called when tracing is enabled. *)
let dml_note op table n = Printf.sprintf "%s %s n=%d" op table n

(* Windowed per-table DML statistics: one statement count plus the rows it
   affected.  Called once per statement, on the statement's domain. *)
let bump_dml t table n =
  let now = Obs.Trace.now () in
  Obs.Window.add t.window ~now ("dml:" ^ table) 1.0;
  if n > 0 then
    Obs.Window.add t.window ~now ("dml_rows:" ^ table) (float_of_int n)

let insert_rows t ~table rows =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  insert_no_fire t ~table rows;
  bump_dml t table (List.length rows);
  if rows <> [] then
    fire_triggers t ~target:table ~event:Insert ~stmt_id:sid ~inserted:rows ~deleted:[] ();
  if Obs.Trace.enabled t.trace then
    Obs.Trace.finish_note t.trace t0 "dml" (dml_note "INSERT" table (List.length rows))

let load_rows = insert_no_fire

(* Full-image row equality: a pair the statement matched but did not
   actually change.  Such pairs carry no information — every trigger would
   later discover OLD = NEW and keep zero pairs — so the DML path drops
   them before the durability hook and trigger firing (the statement's
   *affected* count still includes them, as in SQL). *)
let rows_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (Value.equal a.(i) b.(i) && go (i - 1)) in
  go (Array.length a - 1)

let update_rows_gen t ~table ~where ~touched_cols ~set =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  let tbl = get_table t table in
  let victims = Table.fold tbl ~init:[] ~f:(fun acc row -> if where row then row :: acc else acc) in
  let pairs = List.map (fun old -> (old, set old)) victims in
  List.iter (fun (_, row) -> check_row_valid tbl row) pairs;
  let schema = Table.schema tbl in
  List.iter
    (fun (old, row) ->
      let old_pk = Schema.pk_of_row schema old in
      let new_pk = Schema.pk_of_row schema row in
      if List.equal Value.equal old_pk new_pk then ignore (Table.replace_exn tbl row)
      else begin
        ignore (Table.delete_pk tbl old_pk);
        Table.insert_exn tbl row
      end;
      check_foreign_keys t tbl row)
    pairs;
  let changed = List.filter (fun (o, n) -> not (rows_equal o n)) pairs in
  bump_dml t table (List.length pairs);
  if changed <> [] then begin
    notify t
      (Ch_update
         { table; before = List.map fst changed; after = List.map snd changed });
    let touched =
      Option.map
        (List.filter_map (fun c ->
             match Schema.col_index schema c with
             | s -> Some s
             | exception _ -> None))
        touched_cols
    in
    fire_triggers t ~target:table ~event:Update ~stmt_id:sid
      ~inserted:(List.map snd changed)
      ~deleted:(List.map fst changed)
      ?touched ()
  end;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.finish_note t.trace t0 "dml" (dml_note "UPDATE" table (List.length pairs));
  List.length pairs

let update_rows t ~table ~where ~set =
  update_rows_gen t ~table ~where ~touched_cols:None ~set

let update_rows_hint t ~table ~where ~touched_cols ~set =
  update_rows_gen t ~table ~where ~touched_cols:(Some touched_cols) ~set

let update_pk t ~table ~pk ~set =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  let tbl = get_table t table in
  match Table.find_pk tbl pk with
  | None -> false
  | Some old ->
    let row = set old in
    check_row_valid tbl row;
    let schema = Table.schema tbl in
    let new_pk = Schema.pk_of_row schema row in
    if List.equal Value.equal pk new_pk then ignore (Table.replace_exn tbl row)
    else begin
      ignore (Table.delete_pk tbl pk);
      Table.insert_exn tbl row
    end;
    check_foreign_keys t tbl row;
    bump_dml t table 1;
    if not (rows_equal old row) then begin
      notify t (Ch_update { table; before = [ old ]; after = [ row ] });
      fire_triggers t ~target:table ~event:Update ~stmt_id:sid ~inserted:[ row ]
        ~deleted:[ old ] ()
    end;
    if Obs.Trace.enabled t.trace then
      Obs.Trace.finish_note t.trace t0 "dml" (dml_note "UPDATE_PK" table 1);
    true

let delete_rows t ~table ~where =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  let tbl = get_table t table in
  let victims = Table.fold tbl ~init:[] ~f:(fun acc row -> if where row then row :: acc else acc) in
  let schema = Table.schema tbl in
  List.iter (fun row -> ignore (Table.delete_pk tbl (Schema.pk_of_row schema row))) victims;
  bump_dml t table (List.length victims);
  if victims <> [] then begin
    notify t (Ch_delete { table; rows = victims });
    fire_triggers t ~target:table ~event:Delete ~stmt_id:sid ~inserted:[] ~deleted:victims ()
  end;
  if Obs.Trace.enabled t.trace then
    Obs.Trace.finish_note t.trace t0 "dml" (dml_note "DELETE" table (List.length victims));
  List.length victims

let delete_pk t ~table ~pk =
  let t0 = Obs.Trace.start t.trace in
  let sid = next_stmt t in
  let tbl = get_table t table in
  match Table.delete_pk tbl pk with
  | None -> false
  | Some old ->
    bump_dml t table 1;
    notify t (Ch_delete { table; rows = [ old ] });
    fire_triggers t ~target:table ~event:Delete ~stmt_id:sid ~inserted:[] ~deleted:[ old ] ();
    if Obs.Trace.enabled t.trace then
      Obs.Trace.finish_note t.trace t0 "dml" (dml_note "DELETE_PK" table 1);
    true

(* --- trigger catalog --- *)

let fresh_bucket () =
  { b_entries_rev = [];
    b_ordered = [];
    b_stale = false;
    b_size = 0;
    b_rel_count = 0;
    b_plain_rev = [];
    b_by_col = Hashtbl.create 4;
    b_by_val = Hashtbl.create 4;
    b_eq_slots = [];
    b_indexed = 0;
  }

(* Registration is O(1) amortized in both the catalog and the bucket:
   storage is newest-first, the creation-order views are rebuilt lazily at
   read time. *)
let create_trigger t trigger =
  if Hashtbl.mem t.trig_names trigger.trig_name then
    invalid_arg
      (Printf.sprintf "Database.create_trigger: trigger %S already exists"
         trigger.trig_name);
  if not (Hashtbl.mem t.tables trigger.trig_table) then
    invalid_arg
      (Printf.sprintf "Database.create_trigger: unknown table %S" trigger.trig_table);
  Hashtbl.add t.trig_names trigger.trig_name ();
  t.triggers_rev <- trigger :: t.triggers_rev;
  t.trig_count <- t.trig_count + 1;
  t.trig_seq <- t.trig_seq + 1;
  let key = (trigger.trig_table, trigger.trig_event) in
  let b =
    match Hashtbl.find_opt t.trig_index key with
    | Some b -> b
    | None ->
      let b = fresh_bucket () in
      Hashtbl.add t.trig_index key b;
      b
  in
  let schema = Table.schema (get_table t trigger.trig_table) in
  let slot c = try Some (Schema.col_index schema c) with _ -> None in
  let e =
    match trigger.relevance with
    | None ->
      { e_seq = t.trig_seq; e_trig = trigger; e_slots = None; e_pred = None }
    | Some r ->
      (* columns the schema does not know cannot be written by DML on this
         table, so they are dropped from the observed set *)
      { e_seq = t.trig_seq;
        e_trig = trigger;
        e_slots = Option.map (List.filter_map slot) r.rel_cols;
        e_pred = r.rel_pred;
      }
  in
  b.b_entries_rev <- e :: b.b_entries_rev;
  b.b_stale <- true;
  b.b_size <- b.b_size + 1;
  if trigger.relevance <> None then b.b_rel_count <- b.b_rel_count + 1;
  let indexed =
    match trigger.relevance with
    | None -> false
    | Some r -> (
      match Option.bind r.rel_eq (fun (c, v) -> Option.map (fun s -> (s, v)) (slot c)) with
      | Some (s, v) ->
        let key = (s, val_key v) in
        let es = Option.value ~default:[] (Hashtbl.find_opt b.b_by_val key) in
        Hashtbl.replace b.b_by_val key (e :: es);
        if not (List.mem s b.b_eq_slots) then b.b_eq_slots <- s :: b.b_eq_slots;
        true
      | None -> (
        (* the column index only discriminates UPDATE statements (every
           column "changes" under INSERT/DELETE) *)
        match trigger.trig_event, e.e_slots with
        | Update, Some (_ :: _ as slots) ->
          List.iter
            (fun s ->
              let es = Option.value ~default:[] (Hashtbl.find_opt b.b_by_col s) in
              Hashtbl.replace b.b_by_col s (e :: es))
            (List.sort_uniq compare slots);
          true
        | _ -> false))
  in
  if indexed then b.b_indexed <- b.b_indexed + 1
  else b.b_plain_rev <- e :: b.b_plain_rev

let drop_trigger t name =
  match List.find_opt (fun tr -> tr.trig_name = name) t.triggers_rev with
  | None -> ()
  | Some tr ->
    Hashtbl.remove t.trig_names name;
    t.triggers_rev <- List.filter (fun tr -> tr.trig_name <> name) t.triggers_rev;
    t.trig_count <- t.trig_count - 1;
    let key = (tr.trig_table, tr.trig_event) in
    (match Hashtbl.find_opt t.trig_index key with
    | None -> ()
    | Some b ->
      let keep e = e.e_trig.trig_name <> name in
      (match List.filter keep b.b_entries_rev with
      | [] -> Hashtbl.remove t.trig_index key
      | rest ->
        b.b_entries_rev <- rest;
        b.b_stale <- true;
        b.b_size <- b.b_size - 1;
        let was_plain = List.exists (fun e -> not (keep e)) b.b_plain_rev in
        b.b_plain_rev <- List.filter keep b.b_plain_rev;
        if was_plain then ()
        else begin
          b.b_indexed <- b.b_indexed - 1;
          Hashtbl.iter (fun k es -> Hashtbl.replace b.b_by_col k (List.filter keep es)) (Hashtbl.copy b.b_by_col);
          Hashtbl.iter (fun k es -> Hashtbl.replace b.b_by_val k (List.filter keep es)) (Hashtbl.copy b.b_by_val)
        end;
        (match tr.relevance with
        | Some _ -> b.b_rel_count <- b.b_rel_count - 1
        | None -> ())))

let triggers_on t ~table ~event =
  match Hashtbl.find_opt t.trig_index (table, event) with
  | None -> []
  | Some b -> bucket_ordered b

let trigger_count t = t.trig_count

let trigger_sql t =
  List.rev_map (fun tr -> (tr.trig_name, tr.sql_text)) t.triggers_rev
