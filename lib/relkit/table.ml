module Pk = struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash pk = Hashtbl.hash (List.map Value.hash pk)
end

module Pk_table = Hashtbl.Make (Pk)

module V_key = struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end

module V_table = Hashtbl.Make (V_key)

(* A secondary index maps a column value to the set of primary keys of rows
   holding that value. *)
type index = unit Pk_table.t V_table.t

type t = {
  schema : Schema.t;
  rows : Value.t array Pk_table.t;
  mutable indexes : (string * int * index) list;  (* (column, slot, index) *)
  mutable version : int;
      (* bumped on every content mutation; cached plan artifacts (compiled
         hash-join build sides) are invalidated by comparing versions *)
  lookup_cache : (string * Value.t, Value.t array list) Hashtbl.t;
  mutable lookup_cache_version : int;
      (* [lookup] result rows, valid for exactly one version: one trigger
         firing probes the same (column, value) several times — old and new
         sides, count subqueries, fragment plans — and mutations reset it *)
}

let create schema =
  { schema;
    rows = Pk_table.create 64;
    indexes = [];
    version = 0;
    lookup_cache = Hashtbl.create 64;
    lookup_cache_version = -1;
  }
let schema t = t.schema
let row_count t = Pk_table.length t.rows
let version t = t.version
let bump t = t.version <- t.version + 1

let pk_of t row = Schema.pk_of_row t.schema row

let index_add idx v pk =
  let set =
    match V_table.find_opt idx v with
    | Some set -> set
    | None ->
      let set = Pk_table.create 4 in
      V_table.add idx v set;
      set
  in
  Pk_table.replace set pk ()

let index_remove idx v pk =
  match V_table.find_opt idx v with
  | None -> ()
  | Some set ->
    Pk_table.remove set pk;
    if Pk_table.length set = 0 then V_table.remove idx v

let create_index t column =
  if not (List.exists (fun (c, _, _) -> c = column) t.indexes) then begin
    let slot = Schema.col_index t.schema column in
    let idx : index = V_table.create 64 in
    Pk_table.iter (fun pk row -> index_add idx row.(slot) pk) t.rows;
    t.indexes <- (column, slot, idx) :: t.indexes
  end

let indexed_columns t = List.map (fun (c, _, _) -> c) t.indexes
let has_index t column = List.exists (fun (c, _, _) -> c = column) t.indexes

let find_pk t pk = Pk_table.find_opt t.rows pk

let lookup t ~column v =
  match List.find_opt (fun (c, _, _) -> c = column) t.indexes with
  | Some (_, _, idx) -> (
    match V_table.find_opt idx v with
    | None -> []
    | Some set ->
      Pk_table.fold
        (fun pk () acc ->
          match Pk_table.find_opt t.rows pk with
          | Some row -> row :: acc
          | None -> acc)
        set [])
  | None ->
    let slot = Schema.col_index t.schema column in
    Pk_table.fold
      (fun _ row acc -> if Value.equal row.(slot) v then row :: acc else acc)
      t.rows []

(* Memoized probe for the compiled executor: one trigger firing probes the
   same (column, value) several times — old and new sides, count subqueries,
   fragment plans.  Valid for exactly one version; any mutation resets it.
   The interpreter keeps the plain [lookup] so it stays a faithful
   reference implementation. *)
let lookup_cached t ~column v =
  if t.lookup_cache_version <> t.version then begin
    Hashtbl.reset t.lookup_cache;
    t.lookup_cache_version <- t.version
  end;
  let key = (column, v) in
  match Hashtbl.find_opt t.lookup_cache key with
  | Some rows -> rows
  | None ->
    let rows = lookup t ~column v in
    Hashtbl.add t.lookup_cache key rows;
    rows

let iter t f = Pk_table.iter (fun _ row -> f row) t.rows
let fold t ~init ~f = Pk_table.fold (fun _ row acc -> f acc row) t.rows init
let to_rows t = Pk_table.fold (fun _ row acc -> row :: acc) t.rows []

let index_row t op row =
  List.iter
    (fun (_, slot, idx) ->
      match op with
      | `Add -> index_add idx row.(slot) (pk_of t row)
      | `Remove -> index_remove idx row.(slot) (pk_of t row))
    t.indexes

let insert_exn t row =
  let pk = pk_of t row in
  if Pk_table.mem t.rows pk then
    invalid_arg
      (Printf.sprintf "Table.insert: duplicate primary key (%s) in table %S"
         (String.concat ", " (List.map Value.to_string pk))
         t.schema.Schema.name);
  Pk_table.replace t.rows pk row;
  index_row t `Add row;
  bump t

let delete_pk t pk =
  match Pk_table.find_opt t.rows pk with
  | None -> None
  | Some row ->
    Pk_table.remove t.rows pk;
    index_row t `Remove row;
    bump t;
    Some row

let replace_exn t row =
  let pk = pk_of t row in
  match Pk_table.find_opt t.rows pk with
  | None ->
    invalid_arg
      (Printf.sprintf "Table.replace: no row with primary key (%s) in table %S"
         (String.concat ", " (List.map Value.to_string pk))
         t.schema.Schema.name)
  | Some old ->
    index_row t `Remove old;
    Pk_table.replace t.rows pk row;
    index_row t `Add row;
    bump t;
    old
