module Pk = struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash pk = Hashtbl.hash (List.map Value.hash pk)
end

module Pk_table = Hashtbl.Make (Pk)

module V_key = struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end

module V_table = Hashtbl.Make (V_key)

(* A secondary index maps a column value to the set of primary keys of rows
   holding that value.  NULL keys are never stored: SQL equality never
   matches NULL, so a NULL-keyed bucket could never serve a lookup — it
   would only accumulate entries (and, with a total-equality witness that
   distinguished NULLs, leak a fresh bucket per NULL row). *)
type index = unit Pk_table.t V_table.t

(* Probe accounting for the observability layer: how often the physical
   access paths are exercised and how often they hit.  Plain int increments,
   safe to leave always-on. *)
type probe_stats = {
  mutable pk_probes : int;
  mutable pk_hits : int;
  mutable idx_probes : int;  (* secondary-index lookups *)
  mutable idx_hits : int;  (* ... that returned at least one row *)
  mutable scan_lookups : int;  (* [lookup] calls that had to scan *)
  mutable cache_hits : int;  (* [lookup_cached] probes served by the memo *)
}

type t = {
  schema : Schema.t;
  rows : Value.t array Pk_table.t;
  mutable indexes : (string * int * index) list;  (* (column, slot, index) *)
  mutable version : int;
      (* bumped on every content mutation; cached plan artifacts (compiled
         hash-join build sides) are invalidated by comparing versions *)
  lookup_cache : (string * Value.t, Value.t array list) Hashtbl.t;
  mutable lookup_cache_version : int;
      (* [lookup] result rows, valid for exactly one version: one trigger
         firing probes the same (column, value) several times — old and new
         sides, count subqueries, fragment plans — and mutations reset it *)
  mutable frozen : bool;
      (* single-writer/multi-reader discipline for the parallel firing
         pipeline: while frozen, mutations raise and [lookup_cached]
         bypasses its (shared, unsynchronized) memo — the content is a
         stable statement snapshot that reader domains may scan freely *)
  probes : probe_stats;
}

let create schema =
  { schema;
    rows = Pk_table.create 64;
    indexes = [];
    version = 0;
    lookup_cache = Hashtbl.create 64;
    lookup_cache_version = -1;
    frozen = false;
    probes =
      { pk_probes = 0;
        pk_hits = 0;
        idx_probes = 0;
        idx_hits = 0;
        scan_lookups = 0;
        cache_hits = 0;
      };
  }
let schema t = t.schema
let row_count t = Pk_table.length t.rows
let version t = t.version
let bump t = t.version <- t.version + 1

let frozen t = t.frozen
let set_frozen t on = t.frozen <- on

let check_not_frozen t what =
  if t.frozen then
    invalid_arg
      (Printf.sprintf "Table.%s: table %S is frozen (shared-read snapshot)"
         what t.schema.Schema.name)

let pk_of t row = Schema.pk_of_row t.schema row

let index_add idx v pk =
  if not (Value.is_null v) then begin
    let set =
      match V_table.find_opt idx v with
      | Some set -> set
      | None ->
        let set = Pk_table.create 4 in
        V_table.add idx v set;
        set
    in
    Pk_table.replace set pk ()
  end

let index_remove idx v pk =
  if not (Value.is_null v) then begin
    match V_table.find_opt idx v with
    | None -> ()
    | Some set ->
      Pk_table.remove set pk;
      if Pk_table.length set = 0 then V_table.remove idx v
  end

let create_index t column =
  check_not_frozen t "create_index";
  if not (List.exists (fun (c, _, _) -> c = column) t.indexes) then begin
    let slot = Schema.col_index t.schema column in
    let idx : index = V_table.create 64 in
    Pk_table.iter (fun pk row -> index_add idx row.(slot) pk) t.rows;
    t.indexes <- (column, slot, idx) :: t.indexes
  end

let indexed_columns t = List.map (fun (c, _, _) -> c) t.indexes
let has_index t column = List.exists (fun (c, _, _) -> c = column) t.indexes

(* Distinct keys currently stored in the secondary index on [column]; NULLs
   are never stored, so this is also the count of distinct non-NULL values. *)
let index_entry_count t column =
  match List.find_opt (fun (c, _, _) -> c = column) t.indexes with
  | Some (_, _, idx) -> V_table.length idx
  | None ->
    invalid_arg
      (Printf.sprintf "Table.index_entry_count: no index on %S.%s"
         t.schema.Schema.name column)

let probe_report t =
  let p = t.probes in
  [ ("pk_probes", p.pk_probes);
    ("pk_hits", p.pk_hits);
    ("idx_probes", p.idx_probes);
    ("idx_hits", p.idx_hits);
    ("scan_lookups", p.scan_lookups);
    ("lookup_cache_hits", p.cache_hits);
  ]

let reset_probe_report t =
  let p = t.probes in
  p.pk_probes <- 0;
  p.pk_hits <- 0;
  p.idx_probes <- 0;
  p.idx_hits <- 0;
  p.scan_lookups <- 0;
  p.cache_hits <- 0

let find_pk t pk =
  t.probes.pk_probes <- t.probes.pk_probes + 1;
  match Pk_table.find_opt t.rows pk with
  | Some _ as r ->
    t.probes.pk_hits <- t.probes.pk_hits + 1;
    r
  | None -> None

(* SQL equality semantics on both paths: nothing equals NULL, so a NULL
   probe value returns no rows — whether or not an index exists.  (The
   pre-update-state reconstruction and join filters all use [Value.sql_eq];
   before this guard the indexed and scan paths returned the NULL-valued
   rows themselves, i.e. total-equality matching, inconsistent with every
   caller.) *)
let lookup t ~column v =
  if Value.is_null v then []
  else
    match List.find_opt (fun (c, _, _) -> c = column) t.indexes with
    | Some (_, _, idx) -> (
      t.probes.idx_probes <- t.probes.idx_probes + 1;
      match V_table.find_opt idx v with
      | None -> []
      | Some set ->
        let rows =
          Pk_table.fold
            (fun pk () acc ->
              match Pk_table.find_opt t.rows pk with
              | Some row -> row :: acc
              | None -> acc)
            set []
        in
        if rows <> [] then t.probes.idx_hits <- t.probes.idx_hits + 1;
        rows)
    | None ->
      t.probes.scan_lookups <- t.probes.scan_lookups + 1;
      let slot = Schema.col_index t.schema column in
      Pk_table.fold
        (fun _ row acc -> if Value.equal row.(slot) v then row :: acc else acc)
        t.rows []

(* Memoized probe for the compiled executor: one trigger firing probes the
   same (column, value) several times — old and new sides, count subqueries,
   fragment plans.  Valid for exactly one version; any mutation resets it.
   The interpreter keeps the plain [lookup] so it stays a faithful
   reference implementation. *)
let lookup_cached t ~column v =
  (* While frozen, several domains may probe concurrently: the shared memo
     Hashtbl is not safe to mutate then, so fall through to the plain
     lookup (the snapshot is stable, correctness is unaffected). *)
  if t.frozen then lookup t ~column v
  else begin
    if t.lookup_cache_version <> t.version then begin
      Hashtbl.reset t.lookup_cache;
      t.lookup_cache_version <- t.version
    end;
    let key = (column, v) in
    match Hashtbl.find_opt t.lookup_cache key with
    | Some rows ->
      t.probes.cache_hits <- t.probes.cache_hits + 1;
      rows
    | None ->
      let rows = lookup t ~column v in
      Hashtbl.add t.lookup_cache key rows;
      rows
  end

let iter t f = Pk_table.iter (fun _ row -> f row) t.rows
let fold t ~init ~f = Pk_table.fold (fun _ row acc -> f acc row) t.rows init
let to_rows t = Pk_table.fold (fun _ row acc -> row :: acc) t.rows []

let index_row t op row =
  List.iter
    (fun (_, slot, idx) ->
      match op with
      | `Add -> index_add idx row.(slot) (pk_of t row)
      | `Remove -> index_remove idx row.(slot) (pk_of t row))
    t.indexes

let insert_exn t row =
  check_not_frozen t "insert";
  let pk = pk_of t row in
  if Pk_table.mem t.rows pk then
    invalid_arg
      (Printf.sprintf "Table.insert: duplicate primary key (%s) in table %S"
         (String.concat ", " (List.map Value.to_string pk))
         t.schema.Schema.name);
  Pk_table.replace t.rows pk row;
  index_row t `Add row;
  bump t

let delete_pk t pk =
  check_not_frozen t "delete";
  match Pk_table.find_opt t.rows pk with
  | None -> None
  | Some row ->
    Pk_table.remove t.rows pk;
    index_row t `Remove row;
    bump t;
    Some row

let replace_exn t row =
  check_not_frozen t "replace";
  let pk = pk_of t row in
  match Pk_table.find_opt t.rows pk with
  | None ->
    invalid_arg
      (Printf.sprintf "Table.replace: no row with primary key (%s) in table %S"
         (String.concat ", " (List.map Value.to_string pk))
         t.schema.Schema.name)
  | Some old ->
    index_row t `Remove old;
    Pk_table.replace t.rows pk row;
    index_row t `Add row;
    bump t;
    old
