(** The database: a catalog of tables, DML statements that compute transition
    tables, and statement-level AFTER triggers (the SQL-trigger substrate of
    the paper, §2.3).

    Every DML call ([insert_rows] / [update_rows] / [delete_rows]) is one SQL
    statement: it applies the change, then fires each AFTER trigger defined
    on that (table, event) once, passing the [INSERTED] (Δ) and [DELETED]
    (∇) transition tables — exactly DB2's [FOR EACH STATEMENT ... REFERENCING
    OLD_TABLE AS DELETED, NEW_TABLE AS INSERTED] semantics. *)

type t

type event = Insert | Update | Delete

val string_of_event : event -> string

(** Context passed to a firing trigger: the post-update database plus the
    statement's transition tables. *)
type trigger_ctx = {
  db : t;
  target : string;  (** table the statement modified *)
  event : event;
  stmt_id : int;
      (** id of the DML statement that fired this trigger (1-based,
          monotone per database); audit records use it to name the exact
          statement a firing derives from *)
  inserted : Value.t array list;  (** Δtable: new versions (empty on DELETE) *)
  deleted : Value.t array list;  (** ∇table: old versions (empty on INSERT) *)
}

type trigger = {
  trig_name : string;
  trig_table : string;
  trig_event : event;
  body : trigger_ctx -> unit;
  prepare : (trigger_ctx -> unit -> unit) option;
      (** two-phase form of [body] for the parallel firing pipeline:
          [prepare ctx] must be read-only (it runs on a reader domain
          against the frozen statement snapshot) and return a continuation
          holding every side effect; [body ctx] must behave exactly like
          [(Option.get prepare) ctx ()].  [None] (fine for all
          sequential-only users) opts the trigger out of parallel firing. *)
  relevance : relevance option;
      (** static relevance signature derived at arm time; [None] = always
          fire on a bucket hit (the pre-independence behaviour) *)
  sql_text : string;  (** printable form of the generated trigger *)
}

(** Static query–update independence signature of one trigger, derived by
    the caller from the trigger's plans.  The firing path uses it to prove,
    before any plan runs, that a statement cannot produce an (OLD, NEW)
    pair for this trigger: an UPDATE whose pairs are all identical on
    [rel_cols], or a statement none of whose transition rows passes
    [rel_pred], is skipped (counted in {!independence_skips}).  All three
    components are sound over-approximations supplied by the deriving
    layer; [rel_pred] must answer [true] on any doubt (NULLs, exceptions). *)
and relevance = {
  rel_cols : string list option;
      (** base columns of [trig_table] the trigger's plans can observe;
          [None] = all *)
  rel_pred : (Value.t array -> bool) option;
      (** constant-filter test over full base rows; [None] = unconstrained *)
  rel_eq : (string * Value.t) option;
      (** an equality every plan site implies, enabling value-indexed
          bucket lookup *)
}

(** A committed statement with full row images ([before]/[after] are
    pairwise), as reported to the durability hook.  Replaying a change
    stream through the DML path regenerates identical transition tables. *)
type change =
  | Ch_insert of { table : string; rows : Value.t array list }
  | Ch_update of {
      table : string;
      before : Value.t array list;
      after : Value.t array list;
    }
  | Ch_delete of { table : string; rows : Value.t array list }
  | Ch_create_table of Schema.t
  | Ch_create_index of { table : string; column : string }

(** Ring/window capacities default from the [TRIGVIEW_TRACE_RING],
    [TRIGVIEW_AUDIT_RING], [TRIGVIEW_WINDOW_BUCKETS] and
    [TRIGVIEW_WINDOW_WIDTH_MS] environment variables (see {!Obs.Knobs}). *)
val create : unit -> t

(** The database's span tracer (one per database, created disabled).  All
    layers that can reach a [t] — DML, trigger firing, the runtime's plan
    execution, the durability hook — record their spans here, so enabling it
    observes a statement end-to-end. *)
val tracer : t -> Obs.Trace.t

(** The database's firing-provenance audit log (one per database, created
    disabled, same ownership story as {!tracer}): the runtime's generated
    SQL-trigger bodies append one structured record per firing. *)
val audit : t -> Obs.Audit.t

(** The database's sliding-window statistics (per-table DML rates, skip
    rates, and the runtime's per-group firing profiles).  All series are
    maintained on the statement's domain, so bucket deltas conserve
    exactly against lifetime totals. *)
val window : t -> Obs.Window.t

(** Replace the window with a fresh one using a different bucket
    geometry.  Lifetime totals restart; intended to be called before any
    traffic (the runtime applies [tuning] overrides this way). *)
val set_window : t -> buckets:int -> width_ms:int -> unit

(** Number of DML statements executed so far (= the id stamped on the most
    recent one; see {!trigger_ctx.stmt_id}). *)
val statement_count : t -> int

(** Provenance of the statement currently executing: layers that translate a
    higher-level statement into base DML (the view-update translator) set
    this to the source text around their DML calls, so triggers and audit
    records fired underneath can name the true cause.  [""] = a direct
    relational statement. *)
val statement_origin : t -> string

(** [with_statement_origin db origin f] runs [f] with {!statement_origin}
    set to [origin], restoring the previous value afterwards (also on
    exceptions). *)
val with_statement_origin : t -> string -> (unit -> 'a) -> 'a

(** [attach_durability db f] calls [f] after every committed DML/DDL
    statement (insert/update/delete with full row images, table and index
    creation).  One observer at a time; see [lib/relkit/durability] for the
    WAL-backed implementation. *)
val attach_durability : t -> (change -> unit) -> unit

val detach_durability : t -> unit

(** [without_logging db f] runs [f] with the durability hook muted: its
    statements are system state regenerated from logical DDL on recovery
    (e.g. the runtime's trigger-constants tables). *)
val without_logging : t -> (unit -> 'a) -> 'a

(** [with_triggers_suppressed db f] runs [f] without firing AFTER triggers.
    Crash recovery replays a log that already contains the full effects of
    every statement — including those issued by trigger bodies — so replay
    must not fire them again. *)
val with_triggers_suppressed : t -> (unit -> 'a) -> 'a

(** @raise Invalid_argument on duplicate table name. *)
val create_table : t -> Schema.t -> unit

(** Removes a table from the catalog without emitting a change notification:
    meant for runtime-owned derived state (e.g. trigger-grouping constants
    tables), which durability already excludes; a no-op when absent. *)
val drop_table : t -> string -> unit

(** @raise Not_found if absent. *)
val get_table : t -> string -> Table.t

val find_table : t -> string -> Table.t option
val table_names : t -> string list

(** Content-version counter of a table (0 if the table does not exist);
    delegates to {!Table.version}.  Compiled plans ({!Ra_compile}) compare
    versions to decide whether a cached hash-join build side is still
    valid. *)
val table_version : t -> string -> int

(** Secondary index management (delegates to {!Table}). *)
val create_index : t -> table:string -> column:string -> unit

(** [insert_rows db ~table rows] validates each row (types, NOT NULL, PK
    uniqueness, FK references), inserts them, and fires AFTER INSERT
    triggers once with Δ = [rows].
    @raise Invalid_argument on constraint violation (the statement is not
    applied in that case). *)
val insert_rows : t -> table:string -> Value.t array list -> unit

(** Bulk load: validates and inserts without firing triggers (used to build
    benchmark databases). *)
val load_rows : t -> table:string -> Value.t array list -> unit

(** [update_rows db ~table ~where ~set] updates all rows satisfying [where],
    firing AFTER UPDATE triggers once with ∇ = old versions and Δ = new
    versions.  Pairs [set] left fully identical are dropped from the
    transition tables (and from the durability hook): a statement that
    changes no row values never enters the firing path.  Returns the number
    of rows {e matched} (SQL affected-count semantics, identical pairs
    included). *)
val update_rows :
  t ->
  table:string ->
  where:(Value.t array -> bool) ->
  set:(Value.t array -> Value.t array) ->
  int

(** {!update_rows} with a hint naming the only columns [set] can write
    (e.g. a SQL SET list), bounding the firing path's changed-column scan
    (separate entry point so the hint never burdens existing callers). *)
val update_rows_hint :
  t ->
  table:string ->
  where:(Value.t array -> bool) ->
  touched_cols:string list ->
  set:(Value.t array -> Value.t array) ->
  int

(** Keyed single-row update (fast path: no table scan).  Returns [true] if a
    row with that primary key existed. *)
val update_pk :
  t -> table:string -> pk:Value.t list -> set:(Value.t array -> Value.t array) -> bool

val delete_rows : t -> table:string -> where:(Value.t array -> bool) -> int
val delete_pk : t -> table:string -> pk:Value.t list -> bool

(** {2 Parallel firing support}

    The statement path stays single-writer: DML always executes on one
    domain.  When a statement fires several two-phase triggers and a
    parallel runner is installed, their [prepare] phases run concurrently
    against the frozen snapshot ({!with_shared_reads}) and the
    continuations execute sequentially in creation order — firing order,
    audit records and WAL appends are identical to the sequential path. *)

(** [with_shared_reads db f] freezes every table for the duration of [f]
    (mutations raise, shared memo caches are bypassed — see
    {!Table.set_frozen}), thawing on the way out even on exceptions. *)
val with_shared_reads : t -> (unit -> 'a) -> 'a

(** Installs (or clears) the runner used by the firing path: it receives
    the prepare thunks of one statement's triggers and must run them all to
    completion — typically on a domain pool, under {!with_shared_reads} —
    returning their continuations in submission order.  [None] (the
    default) fires strictly sequentially. *)
val set_parallel_runner :
  t -> ((unit -> unit -> unit) list -> (unit -> unit) list) option -> unit

(** Triggers never examined thanks to the (table, event) prefilter index,
    summed over all statements that had a firing opportunity. *)
val trigger_skips : t -> int

val reset_trigger_skips : t -> unit

(** Triggers inside an activated (table, event) bucket that the static
    relevance signature proved independent of the statement — skipped
    before any delta plan ran.  Kept separate from {!trigger_skips}: the
    prefilter counts table-level misses, this counts column/predicate-level
    ones. *)
val independence_skips : t -> int

val reset_independence_skips : t -> unit

(** Trigger catalog.  Triggers fire in creation order.
    @raise Invalid_argument on duplicate trigger name or unknown table. *)
val create_trigger : t -> trigger -> unit

val drop_trigger : t -> string -> unit
val triggers_on : t -> table:string -> event:event -> trigger list
val trigger_count : t -> int

(** All triggers' printable SQL, for inspection. *)
val trigger_sql : t -> (string * string) list
