(** Mutable row store for one table: a primary-key hash map plus optional
    secondary hash indexes on single columns.

    All mutation goes through {!Database}, which enforces constraints and
    fires triggers; [Table] only maintains storage and indexes. *)

type t

val create : Schema.t -> t
val schema : t -> Schema.t
val row_count : t -> int

(** Monotonic content-version counter: bumped by every insert / delete /
    replace.  {!Ra_compile} keys its cached hash-join build sides on it, so
    any mutation — including ones issued while durability logging is muted —
    invalidates derived artifacts. *)
val version : t -> int

(** Single-writer / multi-reader snapshot discipline for the parallel
    firing pipeline.  While frozen the table is a stable statement
    snapshot: reader domains may call every query operation freely, and
    any mutation ({!insert_exn}, {!delete_pk}, {!replace_exn},
    {!create_index}) raises [Invalid_argument].  {!lookup_cached} bypasses
    its shared memo while frozen.  {!Database.with_shared_reads} freezes
    and thaws every table of a database around a parallel section. *)
val frozen : t -> bool

val set_frozen : t -> bool -> unit

(** Adds a secondary hash index on [column] (no-op if already present).
    @raise Not_found if the column does not exist. *)
val create_index : t -> string -> unit

val indexed_columns : t -> string list

(** [find_pk t pk] is the row whose primary key equals [pk], if any. *)
val find_pk : t -> Value.t list -> Value.t array option

(** [lookup t ~column v] returns all rows with [row.column = v], with SQL
    equality semantics: a NULL [v] matches nothing and returns [[]] on both
    the indexed and the scan path.  Uses the secondary index when one
    exists, otherwise scans. *)
val lookup : t -> column:string -> Value.t -> Value.t array list

(** [lookup_cached] is [lookup] through a per-version memo: repeated probes
    of the same [(column, value)] between two mutations share one result
    list.  Used by the compiled executor; any table mutation invalidates. *)
val lookup_cached : t -> column:string -> Value.t -> Value.t array list

val has_index : t -> string -> bool

(** Distinct keys currently stored in the secondary index on [column].
    NULLs are never indexed, so this equals the number of distinct non-NULL
    values present.  Used by tests and EXPLAIN output.
    @raise Invalid_argument if no index exists on [column]. *)
val index_entry_count : t -> string -> int

(** Always-on access-path counters, as [(name, count)] pairs:
    [pk_probes]/[pk_hits] ({!find_pk}), [idx_probes]/[idx_hits]
    (indexed {!lookup}), [scan_lookups] (unindexed {!lookup}), and
    [lookup_cache_hits] ({!lookup_cached} memo hits). *)
val probe_report : t -> (string * int) list

val reset_probe_report : t -> unit

(** Iterate over all rows (order unspecified). *)
val iter : t -> (Value.t array -> unit) -> unit

val fold : t -> init:'a -> f:('a -> Value.t array -> 'a) -> 'a
val to_rows : t -> Value.t array list

(** Low-level mutations used by {!Database}.  [insert_exn] fails on duplicate
    primary key; [delete_pk] returns the removed row. *)
val insert_exn : t -> Value.t array -> unit

val delete_pk : t -> Value.t list -> Value.t array option

(** [replace t row] overwrites the row with the same primary key (which must
    exist) and returns the old version. *)
val replace_exn : t -> Value.t array -> Value.t array
