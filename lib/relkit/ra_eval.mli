(** Interpreting executor for {!Ra} plans.

    Physical planning is done on the fly:
    - equi-join conjuncts are detected and executed as hash joins;
    - a join whose inner side is a (possibly filtered) scan of a base table
      with a usable index — or of [Old_of] — runs as an index-nested-loop
      join, probing per outer row;
    - probes against [Old_of b] hit [b]'s index and patch the result with the
      statement's Δ/∇ rows, so the pre-update state is never materialized
      (Design decision 2 in DESIGN.md).

    This module is the reference oracle: {!Ra_compile} makes the same
    physical decisions once per plan and must produce identical results. *)

type rel = {
  cols : string array;
  rows : Value.t array list;
}

(** Accounting of rows materialized by full source scans (index probes do
    not count), keyed by source description ("scan:T", "delta:T", ...).
    Owned by whoever creates the context — each runtime manager keeps its
    own accumulator, so concurrent managers cannot corrupt each other's
    counters.  Tests use it to assert that affected-key pushdown keeps
    per-update work independent of table sizes. *)
type scan_stats

val create_scan_stats : unit -> scan_stats
val count_scan : scan_stats -> string -> int -> unit
val reset_scan_stats : scan_stats -> unit
val scan_stats_total : scan_stats -> int

(** Adds every per-source count of [src] into [into].  The parallel firing
    pipeline accumulates into task-private stats on reader domains and
    merges them here from the sequential phase. *)
val merge_scan_stats : into:scan_stats -> scan_stats -> unit

(** Per-source row counts, highest first. *)
val scan_stats_report : scan_stats -> (string * int) list

(** Evaluation context: the (post-update) database plus the transition
    tables of the firing statement, and any auxiliary named relations. *)
type ctx = {
  db : Database.t;
  trans : (string * (Value.t array list * Value.t array list)) list;
      (** table → (Δ rows, ∇ rows) *)
  rels : (string * rel) list;  (** bindings for {!Ra.Rel} sources *)
  shared_memo : (int, rel) Hashtbl.t;
      (** per-firing cache for {!Ra.Shared} subplans; fresh in each context *)
  scan_stats : scan_stats;  (** scan accounting sink for this context *)
}

(** [ctx_of_trigger ?stats tc] builds a firing context.  When [stats] is
    given, scan accounting accumulates there (shared across firings);
    otherwise each context gets a fresh private accumulator. *)
val ctx_of_trigger : ?stats:scan_stats -> Database.trigger_ctx -> ctx

(** Context over a quiescent database: all transition tables empty. *)
val ctx_of_db : ?stats:scan_stats -> Database.t -> ctx

(** @raise Invalid_argument on malformed plans or unknown sources. *)
val eval : ctx -> Ra.t -> rel

(** Rows of table [name] in the pre-statement state, reconstructed from the
    current contents and the transition tables (the paper's B_old). *)
val old_rows : ctx -> string -> Value.t array list

(** The (Δ, ∇) transition rows recorded for a table (empty pair if none). *)
val transitions : ctx -> string -> Value.t array list * Value.t array list

(** Column position in a relation.  @raise Not_found if absent. *)
val col_index : rel -> string -> int

(** Rows as association lists, for tests. *)
val rows_assoc : rel -> (string * Value.t) list list

(** Deterministically sorted copy (all columns ascending), for comparisons. *)
val sorted : rel -> rel

val equal_rel : rel -> rel -> bool
val pp_rel : Format.formatter -> rel -> unit

(** Hashing rows by value (SQL semantics are applied by callers; [Null]
    hashes/compares like an ordinary value here). *)
module Row_tbl : Hashtbl.S with type key = Value.t array

(** [row_set rows] is a membership set over row values. *)
val row_set : Value.t array list -> unit Row_tbl.t

(** Column-name → slot maps and expression compilation against a fixed
    layout.  {!Ra_compile} resolves these once per plan; the interpreter
    redoes them per evaluation. *)
val colmap : string array -> (string, int) Hashtbl.t

(** @raise Invalid_argument on unknown column. *)
val slot : (string, int) Hashtbl.t -> string -> int

val compile_expr : (string, int) Hashtbl.t -> Ra.expr -> Value.t array -> Value.t
val compile_pred : (string, int) Hashtbl.t -> Ra.expr -> Value.t array -> bool

(** Join planning shared by the interpreter and {!Ra_compile}: predicate
    decomposition into equi/residual conjuncts, and recognition of
    index-probeable inner sides. *)
module Planner : sig
  val conjuncts : Ra.expr -> Ra.expr list

  type join_split = {
    equi : (string * string) list;  (** (left col, right col) *)
    residual : Ra.expr list;
  }

  val split_join_pred :
    left_cols:string list -> right_cols:string list -> Ra.expr -> join_split

  (** A join inner side of shape [Select? (Scan (Base|Old_of))]. *)
  type probe_side = {
    p_table : string;
    p_old : bool;
    p_renames : (string * string) list;  (** source col → output col *)
    p_filter : Ra.expr option;  (** over output columns *)
  }

  val as_probe_side : Ra.t -> probe_side option

  type probe_strategy =
    | Probe_pk of (string * string) list
        (** (outer col, pk source col) in PK order: full-PK lookup *)
    | Probe_index of string * string
        (** (outer col, indexed source col): secondary-index lookup *)

  val probe_strategy :
    Table.t -> probe_side -> (string * string) list -> probe_strategy option
end
