exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

type result =
  | Rows of Ra_eval.rel
  | Affected of int
  | Done

(* unquoted identifiers resolve case-insensitively, like column names *)
let find_table_ci db name =
  match Database.find_table db name with
  | Some t -> Some (Table.schema t).Schema.name
  | None ->
    List.find_opt
      (fun t -> String.lowercase_ascii t = String.lowercase_ascii name)
      (Database.table_names db)

(* --- lexer --- *)

type token =
  | Id of string  (* identifier or keyword, original case *)
  | Num of Value.t
  | Str of string
  | Punct of string

let keyword t = String.uppercase_ascii t

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let is_id_start c = ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c = '_' in
  let is_id c = is_id_start c || ('0' <= c && c <= '9') || c = '$' in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id input.[!i] do
        incr i
      done;
      tokens := Id (String.sub input start (!i - start)) :: !tokens
    end
    else if ('0' <= c && c <= '9') || (c = '.' && !i + 1 < n && '0' <= input.[!i + 1] && input.[!i + 1] <= '9')
    then begin
      let start = !i in
      let dot = ref false in
      while
        !i < n
        && (('0' <= input.[!i] && input.[!i] <= '9')
           || (input.[!i] = '.' && not !dot))
      do
        if input.[!i] = '.' then dot := true;
        incr i
      done;
      let s = String.sub input start (!i - start) in
      tokens :=
        Num (if !dot then Value.Float (float_of_string s) else Value.Int (int_of_string s))
        :: !tokens
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 8 in
      let closed = ref false in
      while not !closed do
        if !i >= n then fail "unterminated string literal";
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      tokens := Str (Buffer.contents buf) :: !tokens
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
        tokens := Punct two :: !tokens;
        i := !i + 2
      | _ -> (
        match c with
        | '(' | ')' | ',' | ';' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | '%' | '.' ->
          tokens := Punct (String.make 1 c) :: !tokens;
          incr i
        | c -> fail "unexpected character %C" c)
    end
  done;
  List.rev !tokens

(* --- token stream --- *)

type stream = {
  mutable toks : token list;
}

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let eat_kw st kw =
  match peek st with
  | Some (Id t) when keyword t = kw ->
    advance st;
    true
  | _ -> false

let expect_kw st kw = if not (eat_kw st kw) then fail "expected %s" kw

let eat_punct st p =
  match peek st with
  | Some (Punct q) when q = p ->
    advance st;
    true
  | _ -> false

let expect_punct st p = if not (eat_punct st p) then fail "expected %S" p

let ident st =
  match peek st with
  | Some (Id t) ->
    advance st;
    t
  | _ -> fail "expected an identifier"

(* --- expressions --- *)

type sexpr =
  | E_col of string option * string  (* qualifier, column *)
  | E_const of Value.t
  | E_binop of Ra.binop * sexpr * sexpr
  | E_not of sexpr
  | E_is_null of sexpr * bool  (* negated? *)
  | E_agg_raw of string * sexpr option  (* aggregate: function name, argument *)

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if eat_kw st "OR" then E_binop (Ra.Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if eat_kw st "AND" then E_binop (Ra.And, left, parse_and st) else left

and parse_not st = if eat_kw st "NOT" then E_not (parse_not st) else parse_cmp st

and parse_cmp st =
  let left = parse_add st in
  if eat_kw st "IS" then begin
    let negated = eat_kw st "NOT" in
    expect_kw st "NULL";
    E_is_null (left, negated)
  end
  else
    match peek st with
    | Some (Punct "=") ->
      advance st;
      E_binop (Ra.Eq, left, parse_add st)
    | Some (Punct ("<>" | "!=")) ->
      advance st;
      E_binop (Ra.Neq, left, parse_add st)
    | Some (Punct "<=") ->
      advance st;
      E_binop (Ra.Le, left, parse_add st)
    | Some (Punct ">=") ->
      advance st;
      E_binop (Ra.Ge, left, parse_add st)
    | Some (Punct "<") ->
      advance st;
      E_binop (Ra.Lt, left, parse_add st)
    | Some (Punct ">") ->
      advance st;
      E_binop (Ra.Gt, left, parse_add st)
    | _ -> left

and parse_add st =
  let left = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    if eat_punct st "+" then left := E_binop (Ra.Add, !left, parse_mul st)
    else if eat_punct st "-" then left := E_binop (Ra.Sub, !left, parse_mul st)
    else continue := false
  done;
  !left

and parse_mul st =
  let left = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    if eat_punct st "*" then left := E_binop (Ra.Mul, !left, parse_primary st)
    else if eat_punct st "/" then left := E_binop (Ra.Div, !left, parse_primary st)
    else if eat_punct st "%" then left := E_binop (Ra.Mod, !left, parse_primary st)
    else continue := false
  done;
  !left

and parse_primary st =
  match peek st with
  | Some (Num v) ->
    advance st;
    E_const v
  | Some (Str s) ->
    advance st;
    E_const (Value.String s)
  | Some (Punct "(") ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | Some (Punct "-") ->
    advance st;
    E_binop (Ra.Sub, E_const (Value.Int 0), parse_primary st)
  | Some (Id t) -> (
    match keyword t with
    | "NULL" ->
      advance st;
      E_const Value.Null
    | "TRUE" ->
      advance st;
      E_const (Value.Bool true)
    | "FALSE" ->
      advance st;
      E_const (Value.Bool false)
    | "COUNT" | "SUM" | "MIN" | "MAX" | "AVG" ->
      let fn = keyword t in
      advance st;
      expect_punct st "(";
      if fn = "COUNT" && eat_punct st "*" then begin
        expect_punct st ")";
        E_agg_raw ("COUNT*", None)
      end
      else begin
        let arg = parse_expr st in
        expect_punct st ")";
        E_agg_raw (fn, Some arg)
      end
    | _ ->
      advance st;
      if eat_punct st "." then E_col (Some t, ident st) else E_col (None, t))
  | _ -> fail "expected an expression"

(* --- name resolution --- *)

(* bindings: (qualifier, source column, plan output column) *)
type scope = (string * string * string) list

let resolve (scope : scope) qual name =
  let matches =
    List.filter
      (fun (q, c, _) ->
        String.lowercase_ascii c = String.lowercase_ascii name
        && match qual with Some q' -> String.lowercase_ascii q = String.lowercase_ascii q' | None -> true)
      scope
  in
  match matches with
  | [ (_, _, out) ] -> out
  | [] ->
    fail "unknown column %s%s"
      (match qual with Some q -> q ^ "." | None -> "")
      name
  | _ ->
    fail "ambiguous column %s%s (qualify it)"
      (match qual with Some q -> q ^ "." | None -> "")
      name

(* compile a scalar expression; aggregates are collected into [aggs] and
   replaced by column references when [aggs] is given, rejected otherwise *)
let rec compile ?aggs scope (e : sexpr) : Ra.expr =
  match e with
  | E_col (q, c) -> Ra.Col (resolve scope q c)
  | E_const v -> Ra.Const v
  | E_binop (op, a, b) -> Ra.Binop (op, compile ?aggs scope a, compile ?aggs scope b)
  | E_not e -> Ra.Not (compile ?aggs scope e)
  | E_is_null (e, negated) ->
    let base = Ra.Is_null (compile ?aggs scope e) in
    if negated then Ra.Not base else base
  | E_agg_raw (fn, arg) -> (
    match aggs with
    | None -> fail "aggregate %s is not allowed here" fn
    | Some cell ->
      let ra =
        match fn, arg with
        | "COUNT*", None -> Ra.Count_star
        | "COUNT", Some a -> Ra.Count (compile scope a)
        | "SUM", Some a -> Ra.Sum (compile scope a)
        | "MIN", Some a -> Ra.Min (compile scope a)
        | "MAX", Some a -> Ra.Max (compile scope a)
        | "AVG", Some a -> Ra.Avg (compile scope a)
        | _ -> fail "malformed aggregate %s" fn
      in
      (* reuse an existing identical aggregate column *)
      let existing = List.find_opt (fun (_, a) -> a = ra) !cell in
      let col =
        match existing with
        | Some (c, _) -> c
        | None ->
          let c = Printf.sprintf "agg$%d" (List.length !cell) in
          cell := !cell @ [ (c, ra) ];
          c
      in
      Ra.Col col)

let rec has_aggregate = function
  | E_agg_raw _ -> true
  | E_col _ | E_const _ -> false
  | E_binop (_, a, b) -> has_aggregate a || has_aggregate b
  | E_not e | E_is_null (e, _) -> has_aggregate e

(* --- SELECT planning --- *)

let rec expr_cols scope = function
  | E_col (q, c) -> [ resolve scope q c ]
  | E_const _ -> []
  | E_binop (_, a, b) -> expr_cols scope a @ expr_cols scope b
  | E_not e | E_is_null (e, _) -> expr_cols scope e
  | E_agg_raw (_, Some a) -> expr_cols scope a
  | E_agg_raw (_, None) -> []

let plan_select_tokens db st =
  expect_kw st "SELECT";
  (* select list *)
  let star = eat_punct st "*" in
  let items = ref [] in
  if not star then begin
    let rec go () =
      let e = parse_expr st in
      let alias =
        if eat_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Some (Id t)
            when not
                   (List.mem (keyword t)
                      [ "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "AS" ]) ->
            advance st;
            Some t
          | _ -> None
      in
      items := (e, alias) :: !items;
      if eat_punct st "," then go ()
    in
    go ();
    items := List.rev !items
  end;
  expect_kw st "FROM";
  (* FROM list *)
  let sources = ref [] in
  let rec go () =
    let tname = ident st in
    let alias =
      match peek st with
      | Some (Id t)
        when not (List.mem (keyword t) [ "WHERE"; "GROUP"; "HAVING"; "ORDER"; "ON" ]) ->
        advance st;
        t
      | _ -> tname
    in
    sources := (tname, alias) :: !sources;
    if eat_punct st "," then go ()
  in
  go ();
  let sources = List.rev !sources in
  (* build scans with qualified output names and the resolution scope *)
  let scope : scope ref = ref [] in
  let scans =
    List.map
      (fun (tname, alias) ->
        let tname =
          match find_table_ci db tname with
          | Some t -> t
          | None -> fail "unknown table %S" tname
        in
        let schema = Table.schema (Database.get_table db tname) in
        let renames =
          List.map
            (fun c ->
              let out = alias ^ "." ^ c in
              scope := !scope @ [ (alias, c, out) ];
              (c, out))
            (Schema.column_names schema)
        in
        Ra.Scan (Ra.Base tname, renames))
      sources
  in
  let scope = !scope in
  (* WHERE: place each conjunct at the earliest join point covering it *)
  let where = if eat_kw st "WHERE" then Some (parse_expr st) else None in
  let conjuncts =
    match where with
    | None -> []
    | Some w ->
      let rec split = function
        | E_binop (Ra.And, a, b) -> split a @ split b
        | e -> [ e ]
      in
      split w
  in
  let compiled_conjuncts =
    List.map (fun e -> (compile scope e, expr_cols scope e)) conjuncts
  in
  let plan, leftover =
    match scans with
    | [] -> fail "empty FROM"
    | first :: rest ->
      List.fold_left
        (fun (acc, pending) scan ->
          let acc_cols = Ra.columns acc @ Ra.columns scan in
          let here, later =
            List.partition
              (fun (_, cols) -> List.for_all (fun c -> List.mem c acc_cols) cols)
              pending
          in
          (Ra.Join (Ra.Inner, Ra.conj (List.map fst here), acc, scan), later))
        (first, compiled_conjuncts)
        rest
  in
  (* conjuncts over a single table (or anything left) *)
  let plan =
    let plan_cols = Ra.columns plan in
    List.fold_left
      (fun acc (e, cols) ->
        if List.for_all (fun c -> List.mem c plan_cols) cols then Ra.Select (e, acc)
        else fail "condition references unknown columns")
      plan leftover
  in
  (* GROUP BY / aggregates *)
  let group_cols =
    if eat_kw st "GROUP" then begin
      expect_kw st "BY";
      let cols = ref [] in
      let rec go () =
        let q, c =
          let t = ident st in
          if eat_punct st "." then (Some t, ident st) else (None, t)
        in
        cols := resolve scope q c :: !cols;
        if eat_punct st "," then go ()
      in
      go ();
      Some (List.rev !cols)
    end
    else None
  in
  let having = if eat_kw st "HAVING" then Some (parse_expr st) else None in
  let any_agg =
    (not star)
    && (List.exists (fun (e, _) -> has_aggregate e) !items
       || group_cols <> None
       || match having with Some h -> has_aggregate h | None -> false)
  in
  let plan, out_defs =
    if not any_agg then begin
      (* plain projection *)
      if Option.is_some having then fail "HAVING requires GROUP BY or aggregates";
      if star then (plan, List.map (fun c -> (c, Ra.Col c)) (Ra.columns plan))
      else
        ( plan,
          List.mapi
            (fun i (e, alias) ->
              let name =
                match alias, e with
                | Some a, _ -> a
                | None, E_col (_, c) -> c
                | None, _ -> Printf.sprintf "col%d" i
              in
              (name, compile scope e))
            !items )
    end
    else begin
      let aggs = ref [] in
      let keys = Option.value group_cols ~default:[] in
      let defs =
        List.mapi
          (fun i (e, alias) ->
            let compiled = compile ~aggs scope e in
            (* non-aggregate select items must be grouping columns *)
            (match compiled with
            | Ra.Col c when List.mem c keys -> ()
            | _ ->
              if not (has_aggregate e) then
                fail "select item %d is neither an aggregate nor a grouping column" (i + 1));
            let name =
              match alias, e with
              | Some a, _ -> a
              | None, E_col (_, c) -> c
              | None, E_agg_raw (fn, _) -> String.lowercase_ascii fn
              | None, _ -> Printf.sprintf "col%d" i
            in
            (name, compiled))
          !items
      in
      let having_pred = Option.map (compile ~aggs scope) having in
      let grouped = Ra.Group_by (keys, !aggs, plan) in
      let grouped =
        match having_pred with Some h -> Ra.Select (h, grouped) | None -> grouped
      in
      (grouped, defs)
    end
  in
  let plan = Ra.Project (out_defs, plan) in
  (* ORDER BY over output names (case-insensitive, like other identifiers) *)
  let plan =
    if eat_kw st "ORDER" then begin
      expect_kw st "BY";
      let out_names = List.map fst out_defs in
      let resolve_out c =
        match
          List.find_opt
            (fun o -> String.lowercase_ascii o = String.lowercase_ascii c)
            out_names
        with
        | Some o -> o
        | None -> fail "ORDER BY references unknown output column %S" c
      in
      let keys = ref [] in
      let rec go () =
        let c = resolve_out (ident st) in
        let dir = if eat_kw st "DESC" then Ra.Desc else (ignore (eat_kw st "ASC"); Ra.Asc) in
        keys := (c, dir) :: !keys;
        if eat_punct st "," then go ()
      in
      go ();
      Ra.Order_by (List.rev !keys, plan)
    end
    else plan
  in
  plan

(* --- DDL / DML --- *)

let parse_col_type st =
  let t = keyword (ident st) in
  (* swallow optional length arguments like VARCHAR(20) *)
  if eat_punct st "(" then begin
    (match peek st with Some (Num _) -> advance st | _ -> ());
    expect_punct st ")"
  end;
  match t with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" -> Schema.TInt
  | "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" -> Schema.TFloat
  | "VARCHAR" | "CHAR" | "TEXT" | "STRING" -> Schema.TString
  | "BOOLEAN" | "BOOL" -> Schema.TBool
  | t -> fail "unknown column type %S" t

let parse_name_list st =
  expect_punct st "(";
  let names = ref [ ident st ] in
  while eat_punct st "," do
    names := ident st :: !names
  done;
  expect_punct st ")";
  List.rev !names

let exec_create_table db st =
  let tname = ident st in
  expect_punct st "(";
  let columns = ref [] in
  let pk = ref [] in
  let fks = ref [] in
  let rec go () =
    if eat_kw st "PRIMARY" then begin
      expect_kw st "KEY";
      pk := parse_name_list st
    end
    else if eat_kw st "FOREIGN" then begin
      expect_kw st "KEY";
      let cols = parse_name_list st in
      expect_kw st "REFERENCES";
      let rt = ident st in
      let rcols = parse_name_list st in
      fks := { Schema.fk_columns = cols; fk_table = rt; fk_ref_columns = rcols } :: !fks
    end
    else begin
      let cname = ident st in
      let ty = parse_col_type st in
      if eat_kw st "PRIMARY" then begin
        expect_kw st "KEY";
        pk := !pk @ [ cname ]
      end
      else ignore (eat_kw st "NOT" && (expect_kw st "NULL"; true));
      columns := (cname, ty) :: !columns
    end;
    if eat_punct st "," then go ()
  in
  go ();
  expect_punct st ")";
  (match
     Schema.make ~name:tname ~columns:(List.rev !columns) ~primary_key:!pk
       ~foreign_keys:(List.rev !fks) ()
   with
  | schema -> Database.create_table db schema
  | exception Invalid_argument msg -> fail "%s" msg);
  Done

let exec_insert db st =
  expect_kw st "INTO";
  let tname = ident st in
  let cols =
    match peek st with Some (Punct "(") -> Some (parse_name_list st) | _ -> None
  in
  expect_kw st "VALUES";
  let tname =
    match find_table_ci db tname with Some t -> t | None -> fail "unknown table %S" tname
  in
  let schema = Table.schema (Database.get_table db tname) in
  let parse_tuple () =
    expect_punct st "(";
    let vals = ref [] in
    let rec go () =
      (match parse_expr st with
      | E_const v -> vals := v :: !vals
      | E_binop (Ra.Sub, E_const (Value.Int 0), E_const (Value.Int i)) ->
        vals := Value.Int (-i) :: !vals
      | E_binop (Ra.Sub, E_const (Value.Int 0), E_const (Value.Float f)) ->
        vals := Value.Float (-.f) :: !vals
      | _ -> fail "INSERT values must be literals");
      if eat_punct st "," then go ()
    in
    go ();
    expect_punct st ")";
    let vals = List.rev !vals in
    match cols with
    | None ->
      if List.length vals <> Schema.arity schema then fail "wrong number of values";
      Array.of_list vals
    | Some names ->
      if List.length vals <> List.length names then fail "wrong number of values";
      let row = Array.make (Schema.arity schema) Value.Null in
      List.iter2 (fun name v -> row.(Schema.col_index schema name) <- v) names vals;
      row
  in
  let rows = ref [ parse_tuple () ] in
  while eat_punct st "," do
    rows := parse_tuple () :: !rows
  done;
  let rows = List.rev !rows in
  (match Database.insert_rows db ~table:tname rows with
  | () -> ()
  | exception Invalid_argument msg -> fail "%s" msg);
  Affected (List.length rows)

let table_scope db tname =
  let tname =
    match find_table_ci db tname with Some t -> t | None -> fail "unknown table %S" tname
  in
  let schema = Table.schema (Database.get_table db tname) in
  (tname, schema, List.map (fun c -> (tname, c, c)) (Schema.column_names schema))

let compile_row_pred db tname st =
  let tname, schema, scope = table_scope db tname in
  let pred =
    if eat_kw st "WHERE" then compile scope (parse_expr st) else Ra.Const (Value.Bool true)
  in
  let m = Hashtbl.create 8 in
  List.iteri (fun i c -> Hashtbl.replace m c i) (Schema.column_names schema);
  let compiled = ref None in
  let f row =
    let g =
      match !compiled with
      | Some g -> g
      | None ->
        (* compile lazily against the row layout *)
        let rec to_fn (e : Ra.expr) : Value.t array -> Value.t =
          match e with
          | Ra.Col c ->
            let i =
              match Hashtbl.find_opt m c with
              | Some i -> i
              | None ->
                invalid_arg
                  (Printf.sprintf
                     "SQL WHERE clause references unknown column %S of table %S"
                     c tname)
            in
            fun r -> r.(i)
          | Ra.Const v -> fun _ -> v
          | Ra.Binop (op, a, b) -> (
            let fa = to_fn a and fb = to_fn b in
            match op with
            | Ra.And -> fun r -> Value.Bool (fa r = Value.Bool true && fb r = Value.Bool true)
            | Ra.Or -> fun r -> Value.Bool (fa r = Value.Bool true || fb r = Value.Bool true)
            | Ra.Add -> fun r -> Value.add (fa r) (fb r)
            | Ra.Sub -> fun r -> Value.sub (fa r) (fb r)
            | Ra.Mul -> fun r -> Value.mul (fa r) (fb r)
            | Ra.Div -> fun r -> Value.div (fa r) (fb r)
            | Ra.Mod -> fun r -> Value.modulo (fa r) (fb r)
            | cmp ->
              fun r ->
                let a = fa r and b = fb r in
                if Value.is_null a || Value.is_null b then Value.Bool false
                else
                  let c = Value.compare a b in
                  Value.Bool
                    (match cmp with
                    | Ra.Eq -> c = 0
                    | Ra.Neq -> c <> 0
                    | Ra.Lt -> c < 0
                    | Ra.Le -> c <= 0
                    | Ra.Gt -> c > 0
                    | Ra.Ge -> c >= 0
                    | (Ra.And | Ra.Or | Ra.Add | Ra.Sub | Ra.Mul | Ra.Div | Ra.Mod) as op ->
                      (* handled by the outer match; reaching here means the
                         operator table above went out of sync *)
                      invalid_arg
                        (Printf.sprintf
                           "Sql.to_fn: operator %s is not a comparison"
                           (match op with
                           | Ra.And -> "AND" | Ra.Or -> "OR" | Ra.Add -> "+"
                           | Ra.Sub -> "-" | Ra.Mul -> "*" | Ra.Div -> "/"
                           | Ra.Mod -> "%"
                           | _ -> "?"))))
          | Ra.Not e ->
            let f = to_fn e in
            fun r -> Value.Bool (f r <> Value.Bool true)
          | Ra.Is_null e ->
            let f = to_fn e in
            fun r -> Value.Bool (Value.is_null (f r))
        in
        let g = to_fn pred in
        compiled := Some g;
        g
    in
    g row = Value.Bool true
  in
  (tname, schema, scope, f)

let exec_update db st =
  let tname = ident st in
  expect_kw st "SET";
  let assignments = ref [] in
  let rec go () =
    let c = ident st in
    expect_punct st "=";
    let e = parse_expr st in
    assignments := (c, e) :: !assignments;
    if eat_punct st "," then go ()
  in
  go ();
  let tname, schema, scope, where_fn = compile_row_pred db tname st in
  let compiled_assignments =
    List.rev_map (fun (c, e) -> (Schema.col_index schema c, compile scope e)) !assignments
  in
  let set row =
    let copy = Array.copy row in
    List.iter
      (fun (slot, e) ->
        let rec eval (e : Ra.expr) =
          match e with
          | Ra.Col c -> row.(Schema.col_index schema c)
          | Ra.Const v -> v
          | Ra.Binop (Ra.Add, a, b) -> Value.add (eval a) (eval b)
          | Ra.Binop (Ra.Sub, a, b) -> Value.sub (eval a) (eval b)
          | Ra.Binop (Ra.Mul, a, b) -> Value.mul (eval a) (eval b)
          | Ra.Binop (Ra.Div, a, b) -> Value.div (eval a) (eval b)
          | Ra.Binop (Ra.Mod, a, b) -> Value.modulo (eval a) (eval b)
          | _ -> fail "unsupported expression in SET"
        in
        copy.(slot) <- eval e)
      compiled_assignments;
    copy
  in
  (* the SET list is the statement's full write set: passing it as the
     touched-columns hint bounds the firing path's changed-column scan *)
  let touched_cols = List.rev_map fst !assignments in
  match
    Database.update_rows_hint db ~table:tname ~where:where_fn ~touched_cols ~set
  with
  | n -> Affected n
  | exception Invalid_argument msg -> fail "%s" msg

let exec_delete db st =
  expect_kw st "FROM";
  let tname = ident st in
  let tname, _, _, where_fn = compile_row_pred db tname st in
  match Database.delete_rows db ~table:tname ~where:where_fn with
  | n -> Affected n
  | exception Invalid_argument msg -> fail "%s" msg

let exec_statement db st =
  match peek st with
  | Some (Id t) -> (
    match keyword t with
    | "SELECT" ->
      let plan = plan_select_tokens db st in
      Rows (Ra_eval.eval (Ra_eval.ctx_of_db db) plan)
    | "CREATE" ->
      advance st;
      if eat_kw st "TABLE" then exec_create_table db st
      else if eat_kw st "INDEX" then begin
        (* optional index name *)
        if not (eat_kw st "ON") then begin
          ignore (ident st);
          expect_kw st "ON"
        end;
        let tname = ident st in
        let cols = parse_name_list st in
        List.iter (fun c -> Database.create_index db ~table:tname ~column:c) cols;
        Done
      end
      else fail "expected TABLE or INDEX after CREATE"
    | "INSERT" ->
      advance st;
      exec_insert db st
    | "UPDATE" ->
      advance st;
      exec_update db st
    | "DELETE" ->
      advance st;
      exec_delete db st
    | kw -> fail "unsupported statement %S" kw)
  | _ -> fail "empty statement"

let exec db input =
  let st = { toks = lex input } in
  let r = exec_statement db st in
  ignore (eat_punct st ";");
  if st.toks <> [] then fail "trailing tokens after statement";
  r

let plan_select db input =
  let st = { toks = lex input } in
  let plan = plan_select_tokens db st in
  ignore (eat_punct st ";");
  if st.toks <> [] then fail "trailing tokens after statement";
  plan

let exec_script db input =
  let st = { toks = lex input } in
  let results = ref [] in
  while st.toks <> [] do
    results := exec_statement db st :: !results;
    ignore (eat_punct st ";")
  done;
  List.rev !results
