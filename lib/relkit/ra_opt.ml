(* Fresh names for the key relation's columns so they never collide with plan
   columns. *)
let fresh_sj =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "sj%d$" !n

let rec push_semijoin_internal ~keys ~on plan =
  let root_attach = ref false in
  let root = plan in
  let prefix = fresh_sj () in
  let keys =
    (* project the needed key columns under fresh names, deduplicated *)
    Ra.Distinct
      (Ra.Project
         (List.map (fun (_, kc) -> (prefix ^ kc, Ra.Col kc)) on, keys))
  in
  let attach on node =
    if node == root then root_attach := true;
    let pred = Ra.conj (List.map (fun (pc, kc) -> Ra.Binop (Ra.Eq, Ra.Col (prefix ^ kc), Ra.Col pc)) on) in
    let joined = Ra.Join (Ra.Inner, pred, keys, node) in
    let cols = Ra.columns node in
    Ra.Project (List.map (fun c -> (c, Ra.Col c)) cols, joined)
  in
  let rec push on node =
    let plan_cols = List.map fst on in
    match node with
    | Ra.Select (p, i) -> Ra.Select (p, push on i)
    | Ra.Distinct i -> Ra.Distinct (push on i)
    | Ra.Order_by (ks, i) -> Ra.Order_by (ks, push on i)
    | Ra.Project (defs, i) -> (
      (* rewrite link columns through the projection when they are plain
         column references *)
      let mapped =
        List.map
          (fun (pc, kc) ->
            match List.assoc_opt pc defs with
            | Some (Ra.Col src) -> Some (src, kc)
            | _ -> None)
          on
      in
      if List.for_all Option.is_some mapped then
        Ra.Project (defs, push (List.map Option.get mapped) i)
      else attach on node)
    | Ra.Join (kind, p, l, r) -> (
      let lcols = Ra.columns l and rcols = Ra.columns r in
      (* Equality conjuncts let link columns transfer across the join: after
         l.id = r.parent, a restriction on id is also a restriction on
         parent.  This is what carries the affected-key semijoin through the
         view's nesting joins down to the base-table scans. *)
      let rec equi = function
        | Ra.Binop (Ra.And, a, b) -> equi a @ equi b
        | Ra.Binop (Ra.Eq, Ra.Col a, Ra.Col b) -> [ (a, b); (b, a) ]
        | _ -> []
      in
      let eq_pairs = equi p in
      let resolve side_cols (pc, kc) =
        if List.mem pc side_cols then Some (pc, kc)
        else
          List.find_map
            (fun (a, b) -> if a = pc && List.mem b side_cols then Some (b, kc) else None)
            eq_pairs
      in
      let resolve_all side_cols =
        let mapped = List.map (resolve side_cols) on in
        if List.for_all Option.is_some mapped then Some (List.map Option.get mapped)
        else None
      in
      let lmap = resolve_all lcols and rmap = resolve_all rcols in
      (* Sideways information passing: when only one side takes the
         restriction directly, the restricted side itself becomes the key
         relation for the other side through the join's own equality
         conjuncts (the magic-sets step of §5.2). *)
      let lr_pairs =
        List.filter_map
          (fun (a, b) ->
            if List.mem a lcols && List.mem b rcols then Some (a, b) else None)
          eq_pairs
      in
      let sideways_join kind p l' r =
        (* reuse the shared left as both join input and key relation *)
        match lr_pairs with
        | [] -> Ra.Join (kind, p, l', r)
        | pairs ->
          let keys2 = Ra.shared l' in
          let r', _ =
            push_semijoin_internal ~keys:keys2
              ~on:(List.map (fun (a, b) -> (b, a)) pairs)
              r
          in
          Ra.Join (kind, p, keys2, r')
      in
      match kind with
      | Ra.Inner -> (
        match lmap, rmap with
        | Some lm, Some rm -> Ra.Join (kind, p, push lm l, push rm r)
        | Some lm, None -> sideways_join kind p (push lm l) r
        | None, Some rm ->
          let rl_pairs = List.map (fun (a, b) -> (b, a)) lr_pairs in
          (match rl_pairs with
          | [] -> Ra.Join (kind, p, l, push rm r)
          | pairs ->
            let r' = push rm r in
            let keys2 = Ra.shared r' in
            let l', _ =
              push_semijoin_internal ~keys:keys2
                ~on:(List.map (fun (a, b) -> (b, a)) pairs)
                l
            in
            Ra.Join (kind, p, l', keys2))
        | None, None -> attach on node)
      | Ra.Left_outer | Ra.Left_anti -> (
        (* The left side must be restricted (it determines the output rows);
           once it is, the right side may be too — right rows matching a kept
           left row necessarily carry a kept key value, and padding /
           anti-join decisions for kept rows are unchanged. *)
        match lmap with
        | None -> attach on node
        | Some lm -> (
          match rmap with
          | Some rm -> Ra.Join (kind, p, push lm l, push rm r)
          | None -> sideways_join kind p (push lm l) r))
      | Ra.Right_anti -> (
        match rmap with
        | None -> attach on node
        | Some rm -> (
          match lmap with
          | Some lm -> Ra.Join (kind, p, push lm l, push rm r)
          | None ->
            let r' = push rm r in
            let rl = List.map (fun (a, b) -> (b, a)) lr_pairs in
            (match rl with
            | [] -> Ra.Join (kind, p, l, r')
            | pairs ->
              let keys2 = Ra.shared r' in
              let l', _ =
                push_semijoin_internal ~keys:keys2
                  ~on:(List.map (fun (a, b) -> (b, a)) pairs)
                  l
              in
              Ra.Join (kind, p, l', keys2)))))
    | Ra.Group_by (gkeys, aggs, i) ->
      (* restricting rows is equivalent to restricting groups when the link
         columns are grouping columns *)
      if List.for_all (fun c -> List.mem c gkeys) plan_cols then
        Ra.Group_by (gkeys, aggs, push on i)
      else attach on node
    | Ra.Union { all; inputs } -> (
      (* union columns are positional: translate link names through each
         input's own column list *)
      match inputs with
      | [] -> node
      | first :: _ ->
        let out_cols = Ra.columns first in
        let positions =
          List.map
            (fun (pc, kc) ->
              let rec idx i = function
                | [] -> None
                | c :: rest -> if c = pc then Some i else idx (i + 1) rest
              in
              (idx 0 out_cols, kc))
            on
        in
        if List.exists (fun (p, _) -> p = None) positions then attach on node
        else
          let inputs =
            List.map
              (fun i ->
                let cols = Ra.columns i in
                let on_i =
                  List.map
                    (fun (p, kc) -> (List.nth cols (Option.get p), kc))
                    positions
                in
                push on_i i)
              inputs
          in
          Ra.Union { all; inputs })
    | Ra.Scan _ | Ra.Values _ | Ra.Shared _ -> attach on node
  in
  let pushed = push on plan in
  (pushed, not !root_attach)

let push_semijoin ~keys ~on plan = fst (push_semijoin_internal ~keys ~on plan)

(* As push_semijoin, but None when the restriction could only be attached at
   the root (no progress — used to guard runtime sideways information
   passing against re-attaching forever). *)
let push_semijoin_deep ~keys ~on plan =
  match push_semijoin_internal ~keys ~on plan with
  | pushed, true -> Some pushed
  | _, false -> None

let rec contains_transition = function
  | Ra.Scan ((Ra.Delta _ | Ra.Nabla _), _) -> true
  | Ra.Scan ((Ra.Base _ | Ra.Old_of _ | Ra.Rel _), _) | Ra.Values _ -> false
  | Ra.Select (_, i)
  | Ra.Project (_, i)
  | Ra.Group_by (_, _, i)
  | Ra.Distinct i
  | Ra.Order_by (_, i)
  | Ra.Shared (_, i) ->
    contains_transition i
  | Ra.Join (_, _, l, r) -> contains_transition l || contains_transition r
  | Ra.Union { inputs; _ } -> List.exists contains_transition inputs

let equi_pairs ~left_cols ~right_cols pred =
  let rec conjuncts = function
    | Ra.Binop (Ra.And, a, b) -> conjuncts a @ conjuncts b
    | e -> [ e ]
  in
  List.filter_map
    (fun e ->
      match e with
      | Ra.Binop (Ra.Eq, Ra.Col a, Ra.Col b) when List.mem a left_cols && List.mem b right_cols
        ->
        Some (a, b)
      | Ra.Binop (Ra.Eq, Ra.Col a, Ra.Col b) when List.mem b left_cols && List.mem a right_cols
        ->
        Some (b, a)
      | _ -> None)
    (conjuncts pred)

let rec push_transition_joins plan =
  match plan with
  | Ra.Join (Ra.Inner, pred, l, r) -> (
    let l = push_transition_joins l and r = push_transition_joins r in
    let lt = contains_transition l and rt = contains_transition r in
    let lcols = Ra.columns l and rcols = Ra.columns r in
    let pairs = equi_pairs ~left_cols:lcols ~right_cols:rcols pred in
    match lt, rt, pairs with
    | true, false, _ :: _ ->
      let keys = Ra.shared l in
      let r' = push_semijoin ~keys ~on:(List.map (fun (a, b) -> (b, a)) pairs) r in
      Ra.Join (Ra.Inner, pred, keys, r')
    | false, true, _ :: _ ->
      let keys = Ra.shared r in
      let l' = push_semijoin ~keys ~on:pairs l in
      Ra.Join (Ra.Inner, pred, l', keys)
    | _ -> Ra.Join (Ra.Inner, pred, l, r))
  | Ra.Join (k, p, l, r) ->
    Ra.Join (k, p, push_transition_joins l, push_transition_joins r)
  | Ra.Scan _ | Ra.Values _ -> plan
  | Ra.Select (p, i) -> Ra.Select (p, push_transition_joins i)
  | Ra.Project (d, i) -> Ra.Project (d, push_transition_joins i)
  | Ra.Group_by (k, a, i) -> Ra.Group_by (k, a, push_transition_joins i)
  | Ra.Distinct i -> Ra.Distinct (push_transition_joins i)
  | Ra.Order_by (k, i) -> Ra.Order_by (k, push_transition_joins i)
  | Ra.Shared (id, i) -> Ra.Shared (id, push_transition_joins i)
  | Ra.Union { all; inputs } ->
    Ra.Union { all; inputs = List.map push_transition_joins inputs }

(* Common-subplan sharing via bottom-up interning: every distinct subtree
   (modulo Shared ids) gets an integer id, so lookups never hash or compare
   whole plans — trigger compilation on deep views stays linear-ish. *)

type anode = {
  a_id : int;
  a_orig : Ra.t;
  a_weight : int;  (* joins + group-bys below, as a "worth sharing" measure *)
  a_kids : anode list;
}

let share_common_subplans plan =
  let interner : (string * string * int list, int) Hashtbl.t = Hashtbl.create 256 in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let next_id = ref 0 in
  (* plans reached through an existing Shared node are annotated once — the
     rewrites that build deep plans reuse Shared values heavily, and
     re-walking them from every reference would dominate trigger compilation *)
  let shared_memo : (int, anode) Hashtbl.t = Hashtbl.create 64 in
  let rec annotate (p : Ra.t) : anode =
    match p with
    | Ra.Shared (sid, _) when Hashtbl.mem shared_memo sid ->
      let a = Hashtbl.find shared_memo sid in
      Hashtbl.replace counts a.a_id
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts a.a_id));
      a
    | _ -> annotate_fresh p
  and annotate_fresh (p : Ra.t) : anode =
    let kids, tag, payload, local_weight =
      match p with
      | Ra.Scan (src, renames) -> ([], "scan", Marshal.to_string (src, renames) [], 0)
      | Ra.Values (cols, rows) -> ([], "values", Marshal.to_string (cols, rows) [], 0)
      | Ra.Select (e, i) -> ([ i ], "select", Marshal.to_string e [], 0)
      | Ra.Project (d, i) -> ([ i ], "project", Marshal.to_string d [], 0)
      | Ra.Group_by (k, a, i) -> ([ i ], "groupby", Marshal.to_string (k, a) [], 1)
      | Ra.Distinct i -> ([ i ], "distinct", "", 0)
      | Ra.Order_by (k, i) -> ([ i ], "orderby", Marshal.to_string k [], 0)
      | Ra.Shared (_, i) -> ([ i ], "shared", "", 0)  (* ids erased *)
      | Ra.Join (k, e, l, r) -> ([ l; r ], "join", Marshal.to_string (k, e) [], 1)
      | Ra.Union { all; inputs } -> (inputs, "union", string_of_bool all, 0)
    in
    let akids = List.map annotate kids in
    let key = (tag, payload, List.map (fun k -> k.a_id) akids) in
    let id =
      match Hashtbl.find_opt interner key with
      | Some id -> id
      | None ->
        incr next_id;
        Hashtbl.replace interner key !next_id;
        !next_id
    in
    Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id));
    let a =
      { a_id = id;
        a_orig = p;
        a_weight = local_weight + List.fold_left (fun acc k -> acc + k.a_weight) 0 akids;
        a_kids = akids;
      }
    in
    (match p with Ra.Shared (sid, _) -> Hashtbl.replace shared_memo sid a | _ -> ());
    a
  in
  let root = annotate plan in
  let shared_nodes : (int, Ra.t) Hashtbl.t = Hashtbl.create 32 in
  let rec rewrite (a : anode) : Ra.t =
    if Option.value ~default:0 (Hashtbl.find_opt counts a.a_id) >= 2 && a.a_weight >= 1
    then begin
      match Hashtbl.find_opt shared_nodes a.a_id with
      | Some sh -> sh
      | None ->
        let sh = Ra.shared (rewrite_children a) in
        Hashtbl.add shared_nodes a.a_id sh;
        sh
    end
    else rewrite_children a
  and rewrite_children a =
    match a.a_orig, a.a_kids with
    | ((Ra.Scan _ | Ra.Values _) as p), _ -> p
    | Ra.Select (e, _), [ i ] -> Ra.Select (e, rewrite i)
    | Ra.Project (d, _), [ i ] -> Ra.Project (d, rewrite i)
    | Ra.Group_by (k, ag, _), [ i ] -> Ra.Group_by (k, ag, rewrite i)
    | Ra.Distinct _, [ i ] -> Ra.Distinct (rewrite i)
    | Ra.Order_by (k, _), [ i ] -> Ra.Order_by (k, rewrite i)
    | Ra.Shared (id, _), [ i ] -> Ra.Shared (id, rewrite i)
    | Ra.Join (k, p, _, _), [ l; r ] -> Ra.Join (k, p, rewrite l, rewrite r)
    | Ra.Union { all; _ }, inputs -> Ra.Union { all; inputs = List.map rewrite inputs }
    | _ -> assert false
  in
  rewrite root
