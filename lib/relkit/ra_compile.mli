(** Compiling executor for {!Ra} plans.

    [compile] makes every per-plan decision once — column-name → offset
    resolution, rename slot computation, Select/Project fusion, physical
    join selection (the same index-nested-loop vs. hash choices as
    {!Ra_eval}, via {!Ra_eval.Planner}) — and returns a tree of closures.
    Executing it against a per-firing context only runs row loops.

    Hash-join build sides whose subplans read only base tables (no
    transition tables, no [Old_of], no [Rel] bindings) are additionally
    cached across executions and revalidated by comparing {!Table.version}
    counters, so repeated firings skip rebuilding them until a dependency
    table changes.

    A compiled plan is bound to the database it was compiled against
    (table handles are captured at compile time): execute it only with
    contexts over that same database.  {!Ra_eval.eval} is the reference
    oracle — for any plan and context both executors return the same
    multiset of rows. *)

(** Instrumentation shared by all plans compiled with the same record
    (the runtime keeps one per manager, surfaced through its stats). *)
type counters = {
  mutable plans_compiled : int;
  mutable compiled_execs : int;
  mutable build_cache_hits : int;
  mutable build_cache_misses : int;
}

val create_counters : unit -> counters

type t

(** Output column names, in order (equal to [Ra.columns] of the plan). *)
val cols : t -> string list

(** Per-operator annotation, one per compiled node.  [a_label] names the
    physical operator chosen at compile time (INL vs hash join, probe kind,
    cacheable build side); the mutable fields fill in as the plan runs —
    output cardinality of the last execution, cumulative rows, execution
    count, and build-cache / shared-memo hit/miss traffic. *)
type annot = {
  a_label : string;
  mutable a_last_rows : int;
  mutable a_total_rows : int;
  mutable a_execs : int;
  mutable a_hits : int;
  mutable a_misses : int;
  a_children : annot list;
}

(** Root of the plan's annotation tree (shared with the executing closures:
    reading it after an [exec] sees that execution's cardinalities). *)
val annot : t -> annot

(** Render the annotated physical plan as an indented tree: one line per
    operator with last/total cardinalities, execution count, and cache
    traffic.  Deterministic given a deterministic workload — no times, no
    hash order.  Nodes that never ran say [never run]. *)
val explain : t -> string

(** Same annotation tree as a JSON object (nested [children] arrays). *)
val explain_json : t -> string

(** [static_deps plan] is [Some tables] when the plan's result depends only
    on the current contents of [tables] (no transition tables, no [Old_of],
    no [Rel] bindings): a materialization keyed on those tables' version
    counters stays valid until one of them mutates.  [None] otherwise. *)
val static_deps : Ra.t -> string list option

(** [compile ?counters db plan] resolves [plan] against [db]'s catalog.
    @raise Invalid_argument on malformed plans (arity mismatches, unknown
    columns) and [Not_found] on base tables absent from [db]. *)
val compile : ?counters:counters -> Database.t -> Ra.t -> t

(** Execute against a firing context over the compilation database.
    Transition tables, [Rel] bindings and the shared-subplan memo are read
    from the context per call; scan accounting goes to its [scan_stats]. *)
val exec : t -> Ra_eval.ctx -> Ra_eval.rel

