(* Compiled executor for Ra plans.

   [compile] walks a plan ONCE and produces a tree of closures in which every
   per-plan decision — column-name resolution, rename slot computation,
   physical join selection, expression compilation — has already been made.
   Executing the result only runs row loops: no name lookups, no plan
   traversal, no [Ra.columns] recomputation.

   The physical decisions mirror {!Ra_eval} exactly (both call into
   {!Ra_eval.Planner}), so the interpreter serves as a differential oracle:
   for any plan and context, [exec] must produce the same multiset of rows.

   On top of the one-time planning, hash-join build sides over *static*
   subplans (those reading only base tables and inline values — no
   transition tables, no [Old_of], no [Rel] bindings) are cached inside the
   closure and reused across executions; {!Table.version} counters detect
   staleness.  A compiled plan is bound to the database it was compiled
   against: execute it only with contexts over that same database. *)

type counters = {
  mutable plans_compiled : int;
  mutable compiled_execs : int;
  mutable build_cache_hits : int;
  mutable build_cache_misses : int;
}

let create_counters () =
  { plans_compiled = 0; compiled_execs = 0; build_cache_hits = 0; build_cache_misses = 0 }

(* Per-operator annotation, updated on every execution.  [a_label] encodes
   the *physical* decision made at compile time (INL vs hash join, probe
   kind, cached build side), so EXPLAIN shows what will actually run;
   cardinalities and cache traffic fill in as the plan executes. *)
type annot = {
  a_label : string;
  mutable a_last_rows : int;  (* output rows of the most recent run *)
  mutable a_total_rows : int;
  mutable a_execs : int;
  mutable a_hits : int;  (* build-cache / memo hits, where applicable *)
  mutable a_misses : int;
  a_children : annot list;
}

let make_annot label children =
  { a_label = label;
    a_last_rows = 0;
    a_total_rows = 0;
    a_execs = 0;
    a_hits = 0;
    a_misses = 0;
    a_children = children;
  }

type node = {
  n_cols : string array;
  n_annot : annot;
  n_run : Ra_eval.ctx -> Value.t array list;
}

(* Smart constructor: wraps the run closure so the node records its output
   cardinality.  [List.length] over rows the node just materialized is noise
   next to producing them, so the accounting stays always-on. *)
let mk_with a n_cols n_run =
  { n_cols;
    n_annot = a;
    n_run =
      (fun ctx ->
        let rows = n_run ctx in
        let n = List.length rows in
        a.a_last_rows <- n;
        a.a_total_rows <- a.a_total_rows + n;
        a.a_execs <- a.a_execs + 1;
        rows);
  }

let mk ~label ~children n_cols n_run =
  mk_with (make_annot label children) n_cols n_run

type t = {
  cols : string array;
  root : annot;
  exec : Ra_eval.ctx -> Ra_eval.rel;
}

let cols t = Array.to_list t.cols
let exec t ctx = t.exec ctx
let annot t = t.root

(* Shared subplans make the annot graph a DAG: the same (physical) subtree
   is a child of every [shared] node referencing it.  Render each subtree
   once and print back-references after, or a deep plan with heavy sharing
   blows up exponentially in the output. *)
let rec render_annot buf seen depth a =
  Buffer.add_string buf (String.make (2 * depth) ' ');
  Buffer.add_string buf a.a_label;
  let already = List.memq a !seen in
  if not already then seen := a :: !seen;
  if already then Buffer.add_string buf "  [see above]"
  else if a.a_execs = 0 then Buffer.add_string buf "  [never run]"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "  [last=%d rows, total=%d over %d execs" a.a_last_rows
         a.a_total_rows a.a_execs);
    if a.a_hits + a.a_misses > 0 then
      Buffer.add_string buf
        (Printf.sprintf ", cache hit=%d miss=%d" a.a_hits a.a_misses);
    Buffer.add_string buf "]"
  end;
  Buffer.add_char buf '\n';
  if not already then List.iter (render_annot buf seen (depth + 1)) a.a_children

let explain t =
  let buf = Buffer.create 256 in
  render_annot buf (ref []) 0 t.root;
  Buffer.contents buf

let rec annot_json seen a =
  let already = List.memq a !seen in
  if not already then seen := a :: !seen;
  if already then
    Printf.sprintf "{\"label\": \"%s\", \"ref\": true}"
      (Obs.Metrics.json_escape a.a_label)
  else
    Printf.sprintf
      "{\"label\": \"%s\", \"last_rows\": %d, \"total_rows\": %d, \"execs\": %d, \
       \"cache_hits\": %d, \"cache_misses\": %d, \"children\": [%s]}"
      (Obs.Metrics.json_escape a.a_label)
      a.a_last_rows a.a_total_rows a.a_execs a.a_hits a.a_misses
      (String.concat ", " (List.map (annot_json seen) a.a_children))

let explain_json t = annot_json (ref []) t.root

exception Skip
(* raised inside fused Select/Project pipelines to drop a row *)

module Planner = Ra_eval.Planner
module Row_tbl = Ra_eval.Row_tbl

let colmap = Ra_eval.colmap
let slot = Ra_eval.slot

type env = {
  db : Database.t;
  counters : counters;
  shared : (int, node) Hashtbl.t;  (* compile-time memo for Shared subplans *)
}

(* --- static-dependency analysis for build-side caching ---

   [Some tables]: the subplan's result depends only on the current contents
   of [tables] (and constants), so a materialization keyed on their version
   counters stays valid.  [None]: the subplan reads per-firing state
   (transition tables, Old_of, Rel bindings) and must be re-evaluated. *)

let rec static_deps (plan : Ra.t) : string list option =
  let both a b =
    match a, b with Some x, Some y -> Some (x @ y) | _ -> None
  in
  match plan with
  | Ra.Scan (Ra.Base t, _) -> Some [ t ]
  | Ra.Scan ((Ra.Delta _ | Ra.Nabla _ | Ra.Old_of _ | Ra.Rel _), _) -> None
  | Ra.Values _ -> Some []
  | Ra.Select (_, i) | Ra.Project (_, i) | Ra.Distinct i
  | Ra.Order_by (_, i) | Ra.Group_by (_, _, i) | Ra.Shared (_, i) ->
    static_deps i
  | Ra.Join (_, _, l, r) -> both (static_deps l) (static_deps r)
  | Ra.Union { inputs; _ } ->
    List.fold_left (fun acc i -> both acc (static_deps i)) (Some []) inputs

(* --- sources --- *)

(* Rename application compiled against a fixed input layout.  Identity
   renames (all columns, in order, unrenamed) skip the per-row copy: every
   downstream operator allocates fresh arrays, so sharing storage rows is
   safe. *)
let rename_plan in_cols renames =
  let identity =
    List.length renames = List.length in_cols
    && List.for_all2 (fun c (s, o) -> c = s && c = o) in_cols renames
  in
  if identity then `Identity
  else begin
    let m = colmap (Array.of_list in_cols) in
    `Slots (Array.of_list (List.map (fun (s, _) -> slot m s) renames))
  end

let apply_rename_plan rp rows =
  match rp with
  | `Identity -> rows
  | `Slots slots -> List.map (fun row -> Array.map (fun i -> row.(i)) slots) rows

let compile_scan env (src : Ra.source) renames =
  let n_cols = Array.of_list (List.map snd renames) in
  let of_table table key rows_of =
    let tbl = Database.get_table env.db table in
    let rp = rename_plan (Schema.column_names (Table.schema tbl)) renames in
    mk ~label:key ~children:[] n_cols
      (fun ctx ->
        let rows = rows_of tbl ctx in
        Ra_eval.count_scan ctx.Ra_eval.scan_stats key (List.length rows);
        apply_rename_plan rp rows)
  in
  match src with
  | Ra.Base table ->
    of_table table ("scan:" ^ table) (fun tbl _ -> Table.to_rows tbl)
  | Ra.Delta table ->
    of_table table ("delta:" ^ table)
      (fun _ ctx -> fst (Ra_eval.transitions ctx table))
  | Ra.Nabla table ->
    of_table table ("nabla:" ^ table)
      (fun _ ctx -> snd (Ra_eval.transitions ctx table))
  | Ra.Old_of table ->
    of_table table ("oldof:" ^ table) (fun _ ctx -> Ra_eval.old_rows ctx table)
  | Ra.Rel name ->
    (* A context binding takes priority; slots against it are resolved per
       run (bound relations are small and their layouts can vary).  Without
       a binding, fall back to a database table of that name (constants
       tables), resolved at compile time when it already exists. *)
    let fallback =
      match Database.find_table env.db name with
      | Some tbl ->
        let rp = rename_plan (Schema.column_names (Table.schema tbl)) renames in
        Some (tbl, rp)
      | None -> None
    in
    let src_names = Array.of_list (List.map fst renames) in
    mk ~label:("rel:" ^ name) ~children:[] n_cols
      (fun ctx ->
          match List.assoc_opt name ctx.Ra_eval.rels with
          | Some rel ->
            (* Frag-key bindings are built with exactly the scanned layout;
               detect that identity case without building a column map. *)
            if
              Array.length rel.Ra_eval.cols = Array.length src_names
              && (let ok = ref true in
                  Array.iteri
                    (fun i c -> if rel.Ra_eval.cols.(i) <> c then ok := false)
                    src_names;
                  !ok)
            then rel.Ra_eval.rows
            else begin
              let m = colmap rel.Ra_eval.cols in
              let slots =
                Array.of_list (List.map (fun (s, _) -> slot m s) renames)
              in
              List.map
                (fun row -> Array.map (fun i -> row.(i)) slots)
                rel.Ra_eval.rows
            end
          | None ->
            let tbl, rp =
              match fallback with
              | Some pair -> pair
              | None ->
                let tbl = Database.get_table ctx.Ra_eval.db name in
                (tbl, rename_plan (Schema.column_names (Table.schema tbl)) renames)
            in
            let rows = Table.to_rows tbl in
            Ra_eval.count_scan ctx.Ra_eval.scan_stats ("rel:" ^ name)
              (List.length rows);
            apply_rename_plan rp rows)

(* --- aggregates --- *)

let compile_agg m (a : Ra.agg) =
  match a with
  | Ra.Count_star -> `Count_star
  | Ra.Count e -> `Count (Ra_eval.compile_expr m e)
  | Ra.Sum e -> `Sum (Ra_eval.compile_expr m e)
  | Ra.Min e -> `Min (Ra_eval.compile_expr m e)
  | Ra.Max e -> `Max (Ra_eval.compile_expr m e)
  | Ra.Avg e -> `Avg (Ra_eval.compile_expr m e)

let compute_agg rows = function
  | `Count_star -> Value.Int (List.length rows)
  | `Count f ->
    Value.Int (List.length (List.filter (fun r -> not (Value.is_null (f r))) rows))
  | `Sum f ->
    List.fold_left
      (fun acc r ->
        let v = f r in
        if Value.is_null v then acc
        else match acc with Value.Null -> v | acc -> Value.add acc v)
      Value.Null rows
  | `Min f ->
    List.fold_left
      (fun acc r ->
        let v = f r in
        if Value.is_null v then acc
        else
          match acc with
          | Value.Null -> v
          | acc -> if Value.compare v acc < 0 then v else acc)
      Value.Null rows
  | `Max f ->
    List.fold_left
      (fun acc r ->
        let v = f r in
        if Value.is_null v then acc
        else
          match acc with
          | Value.Null -> v
          | acc -> if Value.compare v acc > 0 then v else acc)
      Value.Null rows
  | `Avg f ->
    let vals =
      List.filter_map
        (fun r ->
          let v = f r in
          if Value.is_null v then None else Some (Value.to_float v))
        rows
    in
    if vals = [] then Value.Null
    else Value.Float (List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals))

let dedup_rows rows =
  match rows with
  | [] | [ _ ] -> rows
  | _ ->
    let seen = Row_tbl.create 16 in
    List.filter
      (fun r ->
        if Row_tbl.mem seen r then false
        else begin
          Row_tbl.replace seen r ();
          true
        end)
      rows

(* --- compilation --- *)

let rec compile_node env (plan : Ra.t) : node =
  match plan with
  | Ra.Shared (id, input) ->
    let n =
      match Hashtbl.find_opt env.shared id with
      | Some n -> n
      | None ->
        let n = compile_node env input in
        Hashtbl.add env.shared id n;
        n
    in
    let a = make_annot "shared" [ n.n_annot ] in
    mk_with a n.n_cols (fun ctx ->
        match Hashtbl.find_opt ctx.Ra_eval.shared_memo id with
        | Some rel ->
          a.a_hits <- a.a_hits + 1;
          rel.Ra_eval.rows
        | None ->
          a.a_misses <- a.a_misses + 1;
          let rows = n.n_run ctx in
          Hashtbl.add ctx.Ra_eval.shared_memo id
            { Ra_eval.cols = n.n_cols; rows };
          rows)
  | Ra.Scan (src, renames) -> compile_scan env src renames
  | Ra.Values (cols, rows) ->
    mk
      ~label:(Printf.sprintf "values (%d rows)" (List.length rows))
      ~children:[]
      (Array.of_list cols)
      (fun _ -> rows)
  | Ra.Select _ | Ra.Project _ -> compile_pipeline env plan
  | Ra.Join (kind, pred, left, right) -> compile_join env kind pred left right
  | Ra.Group_by (keys, aggs, input) -> compile_group_by env keys aggs input
  | Ra.Union { all; inputs } ->
    let ns = List.map (compile_node env) inputs in
    let n_cols =
      match ns with
      | [] -> invalid_arg "Ra_compile: empty union"
      | n :: _ -> n.n_cols
    in
    List.iter
      (fun n ->
        if Array.length n.n_cols <> Array.length n_cols then
          invalid_arg "Ra_compile: union arity mismatch")
      ns;
    mk
      ~label:(if all then "union all" else "union distinct")
      ~children:(List.map (fun n -> n.n_annot) ns)
      n_cols
      (fun ctx ->
        let rows = List.concat_map (fun n -> n.n_run ctx) ns in
        if all then rows else dedup_rows rows)
  | Ra.Distinct input ->
    let n = compile_node env input in
    mk ~label:"distinct" ~children:[ n.n_annot ] n.n_cols (fun ctx ->
        dedup_rows (n.n_run ctx))
  | Ra.Order_by (keys, input) ->
    let n = compile_node env input in
    let m = colmap n.n_cols in
    let keys = List.map (fun (c, d) -> (slot m c, d)) keys in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (i, d) :: rest ->
          let c = Value.compare a.(i) b.(i) in
          let c = match d with Ra.Asc -> c | Ra.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go keys
    in
    mk ~label:"order_by" ~children:[ n.n_annot ] n.n_cols (fun ctx ->
        List.stable_sort cmp (n.n_run ctx))

(* Fuse a chain of Select / Project operators over one input into a single
   per-row transform: no intermediate row lists, one traversal. *)
and compile_pipeline env plan =
  let rec peel plan steps =
    match plan with
    | Ra.Select (p, input) -> peel input (`Filter p :: steps)
    | Ra.Project (defs, input) -> peel input (`Project defs :: steps)
    | base -> (base, steps)
  in
  let base, steps = peel plan [] in
  let base_n = compile_node env base in
  let out_cols, trans =
    List.fold_left
      (fun (cols, f) step ->
        let m = colmap cols in
        match step with
        | `Filter p ->
          let pr = Ra_eval.compile_pred m p in
          ( cols,
            fun row ->
              let r = f row in
              if pr r then r else raise Skip )
        | `Project defs ->
          let fs =
            Array.of_list (List.map (fun (_, e) -> Ra_eval.compile_expr m e) defs)
          in
          ( Array.of_list (List.map fst defs),
            fun row ->
              let r = f row in
              Array.map (fun g -> g r) fs ))
      (base_n.n_cols, fun row -> row)
      steps
  in
  let label =
    let kinds =
      List.map (function `Filter _ -> "select" | `Project _ -> "project") steps
    in
    "pipeline[" ^ String.concat "," kinds ^ "]"
  in
  mk ~label ~children:[ base_n.n_annot ] out_cols (fun ctx ->
      let rec loop acc = function
        | [] -> List.rev acc
        | row :: rest -> (
          match trans row with
          | row' -> loop (row' :: acc) rest
          | exception Skip -> loop acc rest)
      in
      loop [] (base_n.n_run ctx))

and compile_join env kind pred left right =
  let left_n = compile_node env left in
  let left_cols = Array.to_list left_n.n_cols in
  let right_cols = Ra.columns right in
  let { Planner.equi; residual } =
    Planner.split_join_pred ~left_cols ~right_cols pred
  in
  let inl =
    if equi = [] then None
    else
      match Planner.as_probe_side right with
      | None -> None
      | Some side -> (
        match Database.find_table env.db side.Planner.p_table with
        | None -> None
        | Some tbl ->
          Option.map
            (fun strat -> (side, tbl, strat))
            (Planner.probe_strategy tbl side equi))
  in
  match inl, kind with
  | Some (side, tbl, strat), (Ra.Inner | Ra.Left_outer | Ra.Left_anti) ->
    compile_inl_join kind ~left_n ~equi ~residual side tbl strat
  | _ -> compile_hash_join env kind ~equi ~residual left left_n right

(* Index-nested-loop join: the inner side is a probeable base-table (or
   Old_of) scan.  Everything name-shaped — probe key slots, rename slots,
   residual predicates — is resolved here, once. *)
and compile_inl_join kind ~left_n ~equi ~residual side tbl strat =
  let lmap = colmap left_n.n_cols in
  let schema = Table.schema tbl in
  let rename_slots =
    Array.of_list
      (List.map (fun (s, _) -> Schema.col_index schema s) side.Planner.p_renames)
  in
  let right_out = Array.of_list (List.map snd side.Planner.p_renames) in
  let joined_cols = Array.append left_n.n_cols right_out in
  let n_left = Array.length left_n.n_cols in
  (* one allocation per joined row: copy left, project right into place *)
  let join_row lrow srow =
    let joined = Array.make (n_left + Array.length rename_slots) Value.Null in
    Array.blit lrow 0 joined 0 n_left;
    Array.iteri (fun k i -> joined.(n_left + k) <- srow.(i)) rename_slots;
    joined
  in
  let out_cols =
    match kind with
    | Ra.Inner | Ra.Left_outer -> joined_cols
    | Ra.Left_anti -> left_n.n_cols
    | Ra.Right_anti -> assert false
  in
  let jm = colmap joined_cols in
  let scan_filter = Option.map (Ra_eval.compile_pred jm) side.Planner.p_filter in
  let residual_preds = List.map (Ra_eval.compile_pred jm) residual in
  let equi_checks =
    List.map
      (fun (lc, rc) ->
        let li = slot lmap lc in
        let src =
          List.find (fun (_, o) -> o = rc) side.Planner.p_renames |> fst
        in
        let ri = Schema.col_index schema src in
        fun lrow srow -> Value.sql_eq lrow.(li) srow.(ri))
      equi
  in
  let probe =
    match strat with
    | Planner.Probe_pk pairs ->
      let slots =
        Array.of_list (List.map (fun (outer, _) -> slot lmap outer) pairs)
      in
      let n_slots = Array.length slots in
      fun lrow ->
        let rec pk_from i =
          if i >= n_slots then [] else lrow.(slots.(i)) :: pk_from (i + 1)
        in
        (match Table.find_pk tbl (pk_from 0) with Some r -> [ r ] | None -> [])
    | Planner.Probe_index (outer, src_col) ->
      let li = slot lmap outer in
      fun lrow -> Table.lookup_cached tbl ~column:src_col lrow.(li)
  in
  let n_right = List.length side.Planner.p_renames in
  let p_old = side.Planner.p_old and p_table = side.Planner.p_table in
  let no_filters = scan_filter = None && residual_preds = [] in
  let label =
    let kind_s =
      match kind with
      | Ra.Inner -> "inner"
      | Ra.Left_outer -> "left_outer"
      | Ra.Left_anti -> "left_anti"
      | Ra.Right_anti -> "right_anti"
    in
    let probe_s =
      match strat with
      | Planner.Probe_pk _ -> "pk"
      | Planner.Probe_index (_, col) -> "index " ^ col
    in
    Printf.sprintf "inl-join %s (probe %s%s via %s)" kind_s
      (if p_old then "oldof " else "")
      p_table probe_s
  in
  (* The joined row built for predicate checking doubles as the output row:
     one Array.append per candidate, not two. *)
  let filters_pass joined =
    (match scan_filter with Some f -> f joined | None -> true)
    && List.for_all (fun p -> p joined) residual_preds
  in
  let equi_pass lrow srow =
    List.for_all (fun chk -> chk lrow srow) equi_checks
  in
  mk ~label ~children:[ left_n.n_annot ] out_cols (fun ctx ->
      match left_n.n_run ctx with
        | [] -> []
        | lrows ->
          (* Candidate source rows for one left row; the Old_of transition
             sets are resolved once per execution, not per left row. *)
          let candidates =
            if not p_old then probe
            else begin
              (* OLD-OF: drop post-state rows, add matching pre-state rows. *)
              let delta, nabla = Ra_eval.transitions ctx p_table in
              let survivors =
                match delta with
                | [] -> fun base -> base
                | _ ->
                  let delta_set = Ra_eval.row_set delta in
                  fun base ->
                    List.filter (fun r -> not (Row_tbl.mem delta_set r)) base
              in
              fun lrow ->
                survivors (probe lrow) @ List.filter (equi_pass lrow) nabla
            end
          in
          let out = ref [] in
          List.iter
            (fun lrow ->
              match kind with
              | Ra.Inner ->
                List.iter
                  (fun srow ->
                    if equi_pass lrow srow then begin
                      let joined =
                        join_row lrow srow
                      in
                      if no_filters || filters_pass joined then
                        out := joined :: !out
                    end)
                  (candidates lrow)
              | Ra.Left_outer ->
                let emitted = ref false in
                List.iter
                  (fun srow ->
                    if equi_pass lrow srow then begin
                      let joined =
                        join_row lrow srow
                      in
                      if no_filters || filters_pass joined then begin
                        emitted := true;
                        out := joined :: !out
                      end
                    end)
                  (candidates lrow);
                if not !emitted then
                  out :=
                    Array.append lrow (Array.make n_right Value.Null) :: !out
              | Ra.Left_anti ->
                let matched =
                  List.exists
                    (fun srow ->
                      equi_pass lrow srow
                      && (no_filters
                         || filters_pass
                              (join_row lrow srow)))
                    (candidates lrow)
                in
                if not matched then out := lrow :: !out
              | Ra.Right_anti -> assert false)
            lrows;
          List.rev !out)

and compile_hash_join env kind ~equi ~residual left_plan left_n right_plan =
  let right_n = compile_node env right_plan in
  let joined_cols = Array.append left_n.n_cols right_n.n_cols in
  let lmap = colmap left_n.n_cols and rmap = colmap right_n.n_cols in
  let l_slots = Array.of_list (List.map (fun (lc, _) -> slot lmap lc) equi) in
  let r_slots = Array.of_list (List.map (fun (_, rc) -> slot rmap rc) equi) in
  let key_of slots row = Array.map (fun i -> row.(i)) slots in
  let residual_preds =
    List.map (Ra_eval.compile_pred (colmap joined_cols)) residual
  in
  let passes lrow rrow =
    (* SQL equality on join keys: NULL joins with nothing. *)
    (let n = Array.length l_slots in
     let rec go i =
       i >= n || (Value.sql_eq lrow.(l_slots.(i)) rrow.(r_slots.(i)) && go (i + 1))
     in
     go 0)
    && (residual_preds = []
       ||
       let joined = Array.append lrow rrow in
       List.for_all (fun p -> p joined) residual_preds)
  in
  let kind_s =
    match kind with
    | Ra.Inner -> "inner"
    | Ra.Left_outer -> "left_outer"
    | Ra.Left_anti -> "left_anti"
    | Ra.Right_anti -> "right_anti"
  in
  let children = [ left_n.n_annot; right_n.n_annot ] in
  if equi = [] then begin
    (* Nested loop for non-equi joins. *)
    mk
      ~label:("nl-join " ^ kind_s)
      ~children
      (match kind with
      | Ra.Inner | Ra.Left_outer -> joined_cols
      | Ra.Left_anti -> left_n.n_cols
      | Ra.Right_anti -> right_n.n_cols)
      (fun ctx ->
          let lrows = left_n.n_run ctx and rrows = right_n.n_run ctx in
          let out = ref [] in
          (match kind with
          | Ra.Inner ->
            List.iter
              (fun lrow ->
                List.iter
                  (fun rrow ->
                    if passes lrow rrow then out := Array.append lrow rrow :: !out)
                  rrows)
              lrows
          | Ra.Left_outer ->
            let width = Array.length right_n.n_cols in
            List.iter
              (fun lrow ->
                let matches = List.filter (passes lrow) rrows in
                if matches = [] then
                  out := Array.append lrow (Array.make width Value.Null) :: !out
                else
                  List.iter
                    (fun rrow -> out := Array.append lrow rrow :: !out)
                    matches)
              lrows
          | Ra.Left_anti ->
            List.iter
              (fun lrow ->
                if not (List.exists (passes lrow) rrows) then out := lrow :: !out)
              lrows
          | Ra.Right_anti ->
            List.iter
              (fun rrow ->
                if not (List.exists (fun lrow -> passes lrow rrow) lrows) then
                  out := rrow :: !out)
              rrows);
          List.rev !out)
  end
  else begin
    let build rows slots =
      let index : Value.t array list ref Row_tbl.t = Row_tbl.create 64 in
      List.iter
        (fun row ->
          let key = key_of slots row in
          if not (Array.exists Value.is_null key) then begin
            match Row_tbl.find_opt index key with
            | Some cell -> cell := row :: !cell
            | None -> Row_tbl.replace index key (ref [ row ])
          end)
        rows;
      index
    in
    (* A build side whose plan reads only base tables can be cached across
       executions and revalidated by comparing table version counters.  Cache
       traffic is recorded both globally (manager counters) and on the join
       node's annotation [a], for EXPLAIN. *)
    let cached_build a plan n slots =
      match static_deps plan with
      | None -> fun ctx -> build (n.n_run ctx) slots
      | Some names ->
        let tbls =
          List.map (Database.get_table env.db) (List.sort_uniq compare names)
        in
        let cell = ref None in
        fun ctx ->
          let versions = List.map Table.version tbls in
          (match !cell with
          | Some (vs, index) when vs = versions ->
            env.counters.build_cache_hits <- env.counters.build_cache_hits + 1;
            a.a_hits <- a.a_hits + 1;
            index
          | _ ->
            env.counters.build_cache_misses <-
              env.counters.build_cache_misses + 1;
            a.a_misses <- a.a_misses + 1;
            let index = build (n.n_run ctx) slots in
            cell := Some (versions, index);
            index)
    in
    let label ~build_side ~cacheable =
      Printf.sprintf "hash-join %s (build %s%s)" kind_s build_side
        (if cacheable then ", cached" else "")
    in
    match kind with
    | Ra.Inner | Ra.Left_outer | Ra.Left_anti ->
      let a =
        make_annot
          (label ~build_side:"right" ~cacheable:(static_deps right_plan <> None))
          children
      in
      let get_build = cached_build a right_plan right_n r_slots in
      let probe index lrow =
        let key = key_of l_slots lrow in
        if Array.exists Value.is_null key then []
        else
          match Row_tbl.find_opt index key with
          | None -> []
          | Some cell -> List.filter (passes lrow) !cell
      in
      let n_cols =
        match kind with
        | Ra.Inner | Ra.Left_outer -> joined_cols
        | _ -> left_n.n_cols
      in
      mk_with a n_cols (fun ctx ->
            let index = get_build ctx in
            let lrows = left_n.n_run ctx in
            match kind with
            | Ra.Inner ->
              let out = ref [] in
              List.iter
                (fun lrow ->
                  List.iter
                    (fun rrow -> out := Array.append lrow rrow :: !out)
                    (probe index lrow))
                lrows;
              List.rev !out
            | Ra.Left_outer ->
              let width = Array.length right_n.n_cols in
              let out = ref [] in
              List.iter
                (fun lrow ->
                  match probe index lrow with
                  | [] ->
                    out :=
                      Array.append lrow (Array.make width Value.Null) :: !out
                  | matches ->
                    List.iter
                      (fun rrow -> out := Array.append lrow rrow :: !out)
                      matches)
                lrows;
              List.rev !out
            | _ -> List.filter (fun lrow -> probe index lrow = []) lrows)
    | Ra.Right_anti ->
      (* Build on the left instead. *)
      let a =
        make_annot
          (label ~build_side:"left" ~cacheable:(static_deps left_plan <> None))
          children
      in
      let get_build = cached_build a left_plan left_n l_slots in
      mk_with a right_n.n_cols (fun ctx ->
            let lindex = get_build ctx in
            let matched rrow =
              let key = key_of r_slots rrow in
              (not (Array.exists Value.is_null key))
              &&
              match Row_tbl.find_opt lindex key with
              | None -> false
              | Some cell -> List.exists (fun lrow -> passes lrow rrow) !cell
            in
            List.filter (fun r -> not (matched r)) (right_n.n_run ctx))
  end

and compile_group_by env keys aggs input =
  let input_n = compile_node env input in
  let m = colmap input_n.n_cols in
  let key_slots = Array.of_list (List.map (slot m) keys) in
  let agg_fs = Array.of_list (List.map (fun (_, a) -> compile_agg m a) aggs) in
  let n_cols = Array.of_list (keys @ List.map fst aggs) in
  let scalar = keys = [] in
  let nk = Array.length key_slots and na = Array.length agg_fs in
  let label =
    Printf.sprintf "group_by [%s] aggs=%d" (String.concat "," keys)
      (List.length aggs)
  in
  mk ~label ~children:[ input_n.n_annot ] n_cols (fun ctx ->
        let in_rows = input_n.n_run ctx in
        if scalar then
          (* Scalar aggregate: exactly one output row, even over empty input. *)
          [ Array.map (compute_agg in_rows) agg_fs ]
        else
          match in_rows with
          | [] -> []
          | _ ->
            let groups : Value.t array list ref Row_tbl.t =
              Row_tbl.create 16
            in
            let order = ref [] in
            List.iter
              (fun row ->
                let key = Array.map (fun i -> row.(i)) key_slots in
                match Row_tbl.find_opt groups key with
                | Some cell -> cell := row :: !cell
                | None ->
                  Row_tbl.replace groups key (ref [ row ]);
                  order := key :: !order)
              in_rows;
            List.rev_map
              (fun key ->
                let rows = !(Row_tbl.find groups key) in
                let out = Array.make (nk + na) Value.Null in
                Array.blit key 0 out 0 nk;
                for j = 0 to na - 1 do
                  out.(nk + j) <- compute_agg rows agg_fs.(j)
                done;
                out)
              !order)

let compile ?counters db plan =
  let counters =
    match counters with Some c -> c | None -> create_counters ()
  in
  let env = { db; counters; shared = Hashtbl.create 8 } in
  let n = compile_node env plan in
  counters.plans_compiled <- counters.plans_compiled + 1;
  { cols = n.n_cols;
    root = n.n_annot;
    exec =
      (fun ctx ->
        counters.compiled_execs <- counters.compiled_execs + 1;
        { Ra_eval.cols = n.n_cols; rows = n.n_run ctx });
  }
