type rel = {
  cols : string array;
  rows : Value.t array list;
}

(* Debug / test accounting: rows materialized by full source scans, keyed by
   source description.  Owned by the evaluation context (each manager keeps
   its own accumulator), so concurrent managers cannot corrupt each other's
   counters.  Cheap enough to keep always-on; tests use it to assert that
   affected-key pushdown avoids full scans. *)
type scan_stats = (string, int) Hashtbl.t

let create_scan_stats () : scan_stats = Hashtbl.create 16

let count_scan (stats : scan_stats) name n =
  Hashtbl.replace stats name (n + Option.value ~default:0 (Hashtbl.find_opt stats name))

let reset_scan_stats (stats : scan_stats) = Hashtbl.reset stats

(* Fold [src] into [dst].  The parallel firing pipeline gives each prepare
   task a private accumulator and merges them into the manager's shared one
   from the sequential continuation, so totals are deterministic. *)
let merge_scan_stats ~into:(dst : scan_stats) (src : scan_stats) =
  Hashtbl.iter (fun k n -> count_scan dst k n) src

(* Per-operator output-cardinality keys (["op:select"], ["op:join"], ...)
   share the table with source-scan keys but measure something else, so the
   scan total — used by tests to assert pushdown avoided full scans — must
   not include them. *)
let is_op_key k = String.length k >= 3 && String.sub k 0 3 = "op:"

let scan_stats_total (stats : scan_stats) =
  Hashtbl.fold (fun k n acc -> if is_op_key k then acc else acc + n) stats 0

let scan_stats_report (stats : scan_stats) =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) stats []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

type ctx = {
  db : Database.t;
  trans : (string * (Value.t array list * Value.t array list)) list;
  rels : (string * rel) list;
  shared_memo : (int, rel) Hashtbl.t;
      (* caches Shared subplans across eval calls within one firing *)
  scan_stats : scan_stats;
}

let ctx_of_trigger ?stats (tc : Database.trigger_ctx) =
  { db = tc.Database.db;
    trans = [ (tc.Database.target, (tc.Database.inserted, tc.Database.deleted)) ];
    rels = [];
    shared_memo = Hashtbl.create 8;
    scan_stats = (match stats with Some s -> s | None -> create_scan_stats ());
  }

let ctx_of_db ?stats db =
  { db;
    trans = [];
    rels = [];
    shared_memo = Hashtbl.create 8;
    scan_stats = (match stats with Some s -> s | None -> create_scan_stats ());
  }

let col_index rel name =
  let n = Array.length rel.cols in
  let rec go i = if i >= n then raise Not_found else if rel.cols.(i) = name then i else go (i + 1) in
  go 0

let rows_assoc rel =
  List.map
    (fun row -> Array.to_list (Array.mapi (fun i v -> (rel.cols.(i), v)) row))
    rel.rows

let compare_rows a b =
  let n = Array.length a in
  let rec go i =
    if i >= n then 0
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let sorted rel = { rel with rows = List.sort compare_rows rel.rows }

let equal_rel a b =
  Array.to_list a.cols = Array.to_list b.cols
  && List.equal
       (fun x y -> compare_rows x y = 0)
       (sorted a).rows (sorted b).rows

let pp_rel ppf rel =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " (Array.to_list rel.cols));
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@,"
        (String.concat " | " (Array.to_list (Array.map Value.to_string row))))
    rel.rows;
  Format.fprintf ppf "(%d rows)@]" (List.length rel.rows)

(* --- row hashing --- *)

module Row_key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash r = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 r
end

module Row_tbl = Hashtbl.Make (Row_key)

let row_set rows =
  let set = Row_tbl.create (List.length rows + 1) in
  List.iter (fun r -> Row_tbl.replace set r ()) rows;
  set

(* --- expression compilation --- *)

let colmap cols =
  let m = Hashtbl.create (Array.length cols) in
  Array.iteri (fun i c -> Hashtbl.replace m c i) cols;
  m

let slot m c =
  match Hashtbl.find_opt m c with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Ra_eval: unknown column %S" c)

let value_cmp op a b =
  if Value.is_null a || Value.is_null b then Value.Bool false
  else
    let c = Value.compare a b in
    Value.Bool
      (match op with
      | Ra.Eq -> c = 0
      | Ra.Neq -> c <> 0
      | Ra.Lt -> c < 0
      | Ra.Le -> c <= 0
      | Ra.Gt -> c > 0
      | Ra.Ge -> c >= 0
      | Ra.And | Ra.Or | Ra.Add | Ra.Sub | Ra.Mul | Ra.Div | Ra.Mod ->
        invalid_arg "value_cmp: not a comparison")

let as_bool = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> invalid_arg (Printf.sprintf "Ra_eval: %s is not a boolean" (Value.to_string v))

let rec compile_expr m (e : Ra.expr) : Value.t array -> Value.t =
  match e with
  | Ra.Col c ->
    let i = slot m c in
    fun row -> row.(i)
  | Ra.Const v -> fun _ -> v
  | Ra.Binop (op, a, b) -> (
    let fa = compile_expr m a and fb = compile_expr m b in
    match op with
    | Ra.Eq | Ra.Neq | Ra.Lt | Ra.Le | Ra.Gt | Ra.Ge ->
      fun row -> value_cmp op (fa row) (fb row)
    | Ra.And -> fun row -> Value.Bool (as_bool (fa row) && as_bool (fb row))
    | Ra.Or -> fun row -> Value.Bool (as_bool (fa row) || as_bool (fb row))
    | Ra.Add -> fun row -> Value.add (fa row) (fb row)
    | Ra.Sub -> fun row -> Value.sub (fa row) (fb row)
    | Ra.Mul -> fun row -> Value.mul (fa row) (fb row)
    | Ra.Div -> fun row -> Value.div (fa row) (fb row)
    | Ra.Mod -> fun row -> Value.modulo (fa row) (fb row))
  | Ra.Not e ->
    let f = compile_expr m e in
    fun row -> Value.Bool (not (as_bool (f row)))
  | Ra.Is_null e ->
    let f = compile_expr m e in
    fun row -> Value.Bool (Value.is_null (f row))

let compile_pred m e =
  let f = compile_expr m e in
  fun row -> as_bool (f row)

(* --- sources --- *)

let trans_for ctx table =
  match List.assoc_opt table ctx.trans with
  | Some pair -> pair
  | None -> ([], [])

let table_rows tbl = Table.to_rows tbl

let old_rows ctx table =
  (* (B EXCEPT ΔB) UNION ∇B, by row value — §4.2 of the paper. *)
  let tbl = Database.get_table ctx.db table in
  let delta, nabla = trans_for ctx table in
  let dset = row_set delta in
  let base = List.filter (fun r -> not (Row_tbl.mem dset r)) (table_rows tbl) in
  base @ nabla

let transitions = trans_for

let source_rel ctx (src : Ra.source) : rel =
  let of_table table rows =
    let schema = Table.schema (Database.get_table ctx.db table) in
    count_scan ctx.scan_stats
      (match src with
      | Ra.Base t -> "scan:" ^ t
      | Ra.Delta t -> "delta:" ^ t
      | Ra.Nabla t -> "nabla:" ^ t
      | Ra.Old_of t -> "oldof:" ^ t
      | Ra.Rel t -> "rel:" ^ t)
      (List.length rows);
    { cols = Array.of_list (Schema.column_names schema); rows }
  in
  match src with
  | Ra.Base table -> of_table table (table_rows (Database.get_table ctx.db table))
  | Ra.Delta table -> of_table table (fst (trans_for ctx table))
  | Ra.Nabla table -> of_table table (snd (trans_for ctx table))
  | Ra.Old_of table -> of_table table (old_rows ctx table)
  | Ra.Rel name -> (
    match List.assoc_opt name ctx.rels with
    | Some rel -> rel
    | None ->
      (* Fall back to a database table of that name (constants tables are
         stored as ordinary tables). *)
      of_table name (table_rows (Database.get_table ctx.db name)))

let apply_renames rel renames =
  let idx = List.map (fun (src, _) -> col_index rel src) renames in
  { cols = Array.of_list (List.map snd renames);
    rows = List.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) idx)) rel.rows;
  }

(* --- join planning: predicate decomposition and probe recognition ---

   Shared between this interpreter and the compiled executor ({!Ra_compile}),
   which makes the same physical decisions once at compile time. *)

module Planner = struct
  let rec conjuncts = function
    | Ra.Binop (Ra.And, a, b) -> conjuncts a @ conjuncts b
    | Ra.Const (Value.Bool true) -> []
    | e -> [ e ]

  type join_split = {
    equi : (string * string) list;  (* (left col, right col) *)
    residual : Ra.expr list;
  }

  let split_join_pred ~left_cols ~right_cols pred =
    let in_left c = List.mem c left_cols and in_right c = List.mem c right_cols in
    List.fold_left
      (fun acc e ->
        match e with
        | Ra.Binop (Ra.Eq, Ra.Col a, Ra.Col b) when in_left a && in_right b ->
          { acc with equi = (a, b) :: acc.equi }
        | Ra.Binop (Ra.Eq, Ra.Col a, Ra.Col b) when in_right a && in_left b ->
          { acc with equi = (b, a) :: acc.equi }
        | e -> { acc with residual = e :: acc.residual })
      { equi = []; residual = [] } (conjuncts pred)

  (* probing plans: recognize (Select? (Scan (Base|Old_of))) *)

  type probe_side = {
    p_table : string;
    p_old : bool;
    p_renames : (string * string) list;  (* source col -> output col *)
    p_filter : Ra.expr option;  (* over output columns *)
  }

  let as_probe_side = function
    | Ra.Scan (Ra.Base t, renames) ->
      Some { p_table = t; p_old = false; p_renames = renames; p_filter = None }
    | Ra.Scan (Ra.Old_of t, renames) ->
      Some { p_table = t; p_old = true; p_renames = renames; p_filter = None }
    | Ra.Select (p, Ra.Scan (Ra.Base t, renames)) ->
      Some { p_table = t; p_old = false; p_renames = renames; p_filter = Some p }
    | Ra.Select (p, Ra.Scan (Ra.Old_of t, renames)) ->
      Some { p_table = t; p_old = true; p_renames = renames; p_filter = Some p }
    | _ -> None

  (* Given equi pairs (outer col, inner output col), pick a probe strategy:
     - full PK coverage: keyed lookup
     - a single indexed column: index lookup, remaining equi pairs as filters *)
  type probe_strategy =
    | Probe_pk of (string * string) list  (* (outer col, pk source col) in PK order *)
    | Probe_index of string * string  (* (outer col, indexed source col) *)

  let probe_strategy tbl side equi =
    let schema = Table.schema tbl in
    let source_of output =
      List.find_map (fun (s, o) -> if o = output then Some s else None) side.p_renames
    in
    let equi_src =
      List.filter_map
        (fun (outer, inner) ->
          match source_of inner with Some s -> Some (outer, s) | None -> None)
        equi
    in
    let pk = schema.Schema.primary_key in
    let pk_pairs =
      List.map (fun k -> (List.assoc_opt k (List.map (fun (o, s) -> (s, o)) equi_src), k)) pk
    in
    if pk <> [] && List.for_all (fun (o, _) -> o <> None) pk_pairs then
      Some (Probe_pk (List.map (fun (o, k) -> (Option.get o, k)) pk_pairs))
    else
      match
        List.find_opt (fun (_, s) -> Table.has_index tbl s) equi_src
      with
      | Some (outer, s) -> Some (Probe_index (outer, s))
      | None -> None
end

open Planner

(* --- evaluation --- *)

let op_label : Ra.t -> string = function
  | Ra.Shared _ -> "op:shared"
  | Ra.Scan _ -> "op:scan"
  | Ra.Values _ -> "op:values"
  | Ra.Select _ -> "op:select"
  | Ra.Project _ -> "op:project"
  | Ra.Join _ -> "op:join"
  | Ra.Group_by _ -> "op:group_by"
  | Ra.Union _ -> "op:union"
  | Ra.Distinct _ -> "op:distinct"
  | Ra.Order_by _ -> "op:order_by"

(* Every node records its output cardinality under an "op:" key, giving the
   interpreter the same per-operator row accounting the compiled executor
   keeps in its annotation tree. *)
let rec eval ctx (plan : Ra.t) : rel =
  let rel = eval_node ctx plan in
  count_scan ctx.scan_stats (op_label plan) (List.length rel.rows);
  rel

and eval_node ctx (plan : Ra.t) : rel =
  match plan with
  | Ra.Shared (id, input) -> (
    match Hashtbl.find_opt ctx.shared_memo id with
    | Some rel -> rel
    | None ->
      let rel = eval ctx input in
      Hashtbl.add ctx.shared_memo id rel;
      rel)
  | Ra.Scan (src, renames) -> apply_renames (source_rel ctx src) renames
  | Ra.Values (cols, rows) -> { cols = Array.of_list cols; rows }
  | Ra.Select (pred, input) ->
    let rel = eval ctx input in
    let f = compile_pred (colmap rel.cols) pred in
    { rel with rows = List.filter f rel.rows }
  | Ra.Project (defs, input) ->
    let rel = eval ctx input in
    let m = colmap rel.cols in
    let fs = List.map (fun (_, e) -> compile_expr m e) defs in
    { cols = Array.of_list (List.map fst defs);
      rows = List.map (fun row -> Array.of_list (List.map (fun f -> f row) fs)) rel.rows;
    }
  | Ra.Join (kind, pred, left, right) -> eval_join ctx kind pred left right
  | Ra.Group_by (keys, aggs, input) -> eval_group_by ctx keys aggs input
  | Ra.Union { all; inputs } ->
    let rels = List.map (eval ctx) inputs in
    let cols =
      match rels with
      | [] -> invalid_arg "Ra_eval: empty union"
      | r :: _ -> r.cols
    in
    List.iter
      (fun r ->
        if Array.length r.cols <> Array.length cols then
          invalid_arg "Ra_eval: union arity mismatch")
      rels;
    let rows = List.concat_map (fun r -> r.rows) rels in
    let rows =
      if all then rows
      else begin
        let seen = Row_tbl.create 64 in
        List.filter
          (fun r ->
            if Row_tbl.mem seen r then false
            else begin
              Row_tbl.replace seen r ();
              true
            end)
          rows
      end
    in
    { cols; rows }
  | Ra.Distinct input ->
    let rel = eval ctx input in
    let seen = Row_tbl.create 64 in
    { rel with
      rows =
        List.filter
          (fun r ->
            if Row_tbl.mem seen r then false
            else begin
              Row_tbl.replace seen r ();
              true
            end)
          rel.rows;
    }
  | Ra.Order_by (keys, input) ->
    let rel = eval ctx input in
    let m = colmap rel.cols in
    let keys = List.map (fun (c, d) -> (slot m c, d)) keys in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (i, d) :: rest ->
          let c = Value.compare a.(i) b.(i) in
          let c = match d with Ra.Asc -> c | Ra.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go keys
    in
    { rel with rows = List.stable_sort cmp rel.rows }

and eval_group_by ctx keys aggs input =
  let rel = eval ctx input in
  let m = colmap rel.cols in
  let key_slots = List.map (slot m) keys in
  let agg_fs =
    List.map
      (fun (_, a) ->
        match a with
        | Ra.Count_star -> `Count_star
        | Ra.Count e -> `Count (compile_expr m e)
        | Ra.Sum e -> `Sum (compile_expr m e)
        | Ra.Min e -> `Min (compile_expr m e)
        | Ra.Max e -> `Max (compile_expr m e)
        | Ra.Avg e -> `Avg (compile_expr m e))
      aggs
  in
  let groups : Value.t array list ref Row_tbl.t = Row_tbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let key = Array.of_list (List.map (fun i -> row.(i)) key_slots) in
      match Row_tbl.find_opt groups key with
      | Some cell -> cell := row :: !cell
      | None ->
        Row_tbl.replace groups key (ref [ row ]);
        order := key :: !order)
    rel.rows;
  let compute_agg rows = function
    | `Count_star -> Value.Int (List.length rows)
    | `Count f ->
      Value.Int (List.length (List.filter (fun r -> not (Value.is_null (f r))) rows))
    | `Sum f ->
      List.fold_left
        (fun acc r ->
          let v = f r in
          if Value.is_null v then acc
          else match acc with Value.Null -> v | acc -> Value.add acc v)
        Value.Null rows
    | `Min f ->
      List.fold_left
        (fun acc r ->
          let v = f r in
          if Value.is_null v then acc
          else
            match acc with
            | Value.Null -> v
            | acc -> if Value.compare v acc < 0 then v else acc)
        Value.Null rows
    | `Max f ->
      List.fold_left
        (fun acc r ->
          let v = f r in
          if Value.is_null v then acc
          else
            match acc with
            | Value.Null -> v
            | acc -> if Value.compare v acc > 0 then v else acc)
        Value.Null rows
    | `Avg f ->
      let vals = List.filter_map (fun r -> let v = f r in if Value.is_null v then None else Some (Value.to_float v)) rows in
      if vals = [] then Value.Null
      else Value.Float (List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals))
  in
  let out_rows =
    if keys = [] then begin
      (* Scalar aggregate: exactly one output row, even over empty input. *)
      let rows = rel.rows in
      [ Array.of_list (List.map (compute_agg rows) agg_fs) ]
    end
    else
      List.rev_map
        (fun key ->
          let rows = !(Row_tbl.find groups key) in
          Array.append key (Array.of_list (List.map (compute_agg rows) agg_fs)))
        !order
  in
  { cols = Array.of_list (keys @ List.map fst aggs); rows = out_rows }

and eval_join ctx kind pred left right =
  let left_cols = Ra.columns left and right_cols = Ra.columns right in
  let { equi; residual } = split_join_pred ~left_cols ~right_cols pred in
  (* Try an index-nested-loop join with the right side as inner. *)
  let inl =
    if equi = [] then None
    else
      match as_probe_side right with
      | None -> None
      | Some side ->
        let tbl = Database.get_table ctx.db side.p_table in
        Option.map (fun strat -> (side, tbl, strat)) (probe_strategy tbl side equi)
  in
  match inl, kind with
  | Some (side, tbl, strat), (Inner | Left_outer | Left_anti) ->
    eval_inl_join ctx kind ~left ~equi ~residual side tbl strat
  | _ -> eval_hash_join ctx kind pred ~equi ~residual left right

and eval_inl_join ctx kind ~left ~equi ~residual side tbl strat =
  let lrel = eval ctx left in
  let lmap = colmap lrel.cols in
  let schema = Table.schema tbl in
  (* Δ/∇ patches for Old_of probing. *)
  let delta, nabla = trans_for ctx side.p_table in
  let delta_set = if side.p_old then row_set delta else Row_tbl.create 1 in
  let rename_srcs = List.map fst side.p_renames in
  let rename_slots = List.map (Schema.col_index schema) rename_srcs in
  let project_source_row row = Array.of_list (List.map (fun i -> row.(i)) rename_slots) in
  let out_cols =
    match kind with
    | Inner | Left_outer -> Array.append lrel.cols (Array.of_list (List.map snd side.p_renames))
    | Left_anti -> lrel.cols
    | Right_anti -> assert false
  in
  let out_map = colmap out_cols in
  let scan_filter =
    Option.map
      (fun p ->
        (* The scan-level filter mentions only right output columns, which are
           all present in out_cols for Inner; for Left_anti we evaluate the
           filter on a synthetic (left ++ right) row. *)
        let cols = Array.append lrel.cols (Array.of_list (List.map snd side.p_renames)) in
        compile_pred (colmap cols) p)
      side.p_filter
  in
  let residual_preds =
    List.map
      (fun e ->
        let cols = Array.append lrel.cols (Array.of_list (List.map snd side.p_renames)) in
        compile_pred (colmap cols) e)
      residual
  in
  ignore out_map;
  (* Remaining equi conditions (those not used by the probe) are re-checked
     uniformly below by comparing values directly. *)
  let equi_checks =
    List.map
      (fun (lc, rc) ->
        let li = slot lmap lc in
        let src = List.find (fun (_, o) -> o = rc) side.p_renames |> fst in
        let ri = Schema.col_index schema src in
        fun lrow srow -> Value.sql_eq lrow.(li) srow.(ri))
      equi
  in
  let candidates lrow =
    let base_candidates =
      match strat with
      | Probe_pk pairs ->
        let pk = List.map (fun (outer, _) -> lrow.(slot lmap outer)) pairs in
        (match Table.find_pk tbl pk with Some r -> [ r ] | None -> [])
      | Probe_index (outer, src_col) ->
        Table.lookup tbl ~column:src_col lrow.(slot lmap outer)
    in
    if not side.p_old then base_candidates
    else begin
      (* OLD-OF: drop post-state rows, add matching pre-state rows. *)
      let survivors = List.filter (fun r -> not (Row_tbl.mem delta_set r)) base_candidates in
      let extra =
        List.filter
          (fun r -> List.for_all (fun chk -> chk lrow r) equi_checks)
          nabla
      in
      survivors @ extra
    end
  in
  let match_row lrow srow =
    List.for_all (fun chk -> chk lrow srow) equi_checks
    &&
    let joined = Array.append lrow (project_source_row srow) in
    (match scan_filter with Some f -> f joined | None -> true)
    && List.for_all (fun p -> p joined) residual_preds
  in
  let out = ref [] in
  List.iter
    (fun lrow ->
      let matches = List.filter (match_row lrow) (candidates lrow) in
      match kind with
      | Inner ->
        List.iter
          (fun srow -> out := Array.append lrow (project_source_row srow) :: !out)
          matches
      | Left_outer ->
        if matches = [] then
          out :=
            Array.append lrow
              (Array.make (List.length side.p_renames) Value.Null)
            :: !out
        else
          List.iter
            (fun srow -> out := Array.append lrow (project_source_row srow) :: !out)
            matches
      | Left_anti -> if matches = [] then out := lrow :: !out
      | Right_anti -> assert false)
    lrel.rows;
  { cols = out_cols; rows = List.rev !out }

and eval_hash_join ctx kind pred ~equi ~residual left right =
  ignore pred;
  let lrel = eval ctx left and rrel = eval ctx right in
  let lmap = colmap lrel.cols and rmap = colmap rrel.cols in
  let l_slots = List.map (fun (lc, _) -> slot lmap lc) equi in
  let r_slots = List.map (fun (_, rc) -> slot rmap rc) equi in
  let key_of slots row = Array.of_list (List.map (fun i -> row.(i)) slots) in
  let joined_cols = Array.append lrel.cols rrel.cols in
  let residual_preds =
    List.map (fun e -> compile_pred (colmap joined_cols) e) residual
  in
  let passes lrow rrow =
    (* SQL equality on join keys: NULL joins with nothing. *)
    List.for_all2
      (fun li ri -> Value.sql_eq lrow.(li) rrow.(ri))
      l_slots r_slots
    &&
    let joined = Array.append lrow rrow in
    List.for_all (fun p -> p joined) residual_preds
  in
  if equi = [] then begin
    (* Nested loop for non-equi joins. *)
    let out = ref [] in
    (match kind with
    | Inner ->
      List.iter
        (fun lrow ->
          List.iter
            (fun rrow -> if passes lrow rrow then out := Array.append lrow rrow :: !out)
            rrel.rows)
        lrel.rows
    | Left_outer ->
      List.iter
        (fun lrow ->
          let matches = List.filter (passes lrow) rrel.rows in
          if matches = [] then
            out := Array.append lrow (Array.make (Array.length rrel.cols) Value.Null) :: !out
          else List.iter (fun rrow -> out := Array.append lrow rrow :: !out) matches)
        lrel.rows
    | Left_anti ->
      List.iter
        (fun lrow ->
          if not (List.exists (passes lrow) rrel.rows) then out := lrow :: !out)
        lrel.rows
    | Right_anti ->
      List.iter
        (fun rrow ->
          if not (List.exists (fun lrow -> passes lrow rrow) lrel.rows) then
            out := rrow :: !out)
        rrel.rows);
    let cols =
      match kind with
      | Inner | Left_outer -> joined_cols
      | Left_anti -> lrel.cols
      | Right_anti -> rrel.cols
    in
    { cols; rows = List.rev !out }
  end
  else begin
    (* Hash join: build on the right. *)
    let index : Value.t array list ref Row_tbl.t = Row_tbl.create 64 in
    List.iter
      (fun rrow ->
        let key = key_of r_slots rrow in
        if not (Array.exists Value.is_null key) then begin
          match Row_tbl.find_opt index key with
          | Some cell -> cell := rrow :: !cell
          | None -> Row_tbl.replace index key (ref [ rrow ])
        end)
      rrel.rows;
    let probe lrow =
      let key = key_of l_slots lrow in
      if Array.exists Value.is_null key then []
      else
        match Row_tbl.find_opt index key with
        | None -> []
        | Some cell -> List.filter (passes lrow) !cell
    in
    match kind with
    | Inner ->
      let out = ref [] in
      List.iter
        (fun lrow ->
          List.iter (fun rrow -> out := Array.append lrow rrow :: !out) (probe lrow))
        lrel.rows;
      { cols = joined_cols; rows = List.rev !out }
    | Left_outer ->
      let out = ref [] in
      List.iter
        (fun lrow ->
          match probe lrow with
          | [] ->
            out := Array.append lrow (Array.make (Array.length rrel.cols) Value.Null) :: !out
          | matches ->
            List.iter (fun rrow -> out := Array.append lrow rrow :: !out) matches)
        lrel.rows;
      { cols = joined_cols; rows = List.rev !out }
    | Left_anti ->
      { cols = lrel.cols; rows = List.filter (fun lrow -> probe lrow = []) lrel.rows }
    | Right_anti ->
      (* Build on the left instead. *)
      let lindex : Value.t array list ref Row_tbl.t = Row_tbl.create 64 in
      List.iter
        (fun lrow ->
          let key = key_of l_slots lrow in
          if not (Array.exists Value.is_null key) then begin
            match Row_tbl.find_opt lindex key with
            | Some cell -> cell := lrow :: !cell
            | None -> Row_tbl.replace lindex key (ref [ lrow ])
          end)
        lrel.rows;
      let matched rrow =
        let key = key_of r_slots rrow in
        (not (Array.exists Value.is_null key))
        &&
        match Row_tbl.find_opt lindex key with
        | None -> false
        | Some cell -> List.exists (fun lrow -> passes lrow rrow) !cell
      in
      { cols = rrel.cols; rows = List.filter (fun r -> not (matched r)) rrel.rows }
  end
