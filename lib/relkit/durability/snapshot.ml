(* Full-database checkpoints.

   A snapshot file [snapshot-%012d.snap] holds every user table (schema,
   secondary-index columns, rows), the logical DDL meta records needed to
   re-arm the XML trigger runtime (view definitions, trigger DDL text), and
   the index of the first WAL segment whose records postdate the snapshot.

   Writes are atomic: the body goes to a [.tmp] file which is fsynced and
   then renamed into place, so a crash mid-checkpoint leaves the previous
   snapshot untouched.  [latest] verifies the checksum and falls back to the
   previous snapshot if the newest one does not validate. *)

module Database = Relkit.Database
module Table = Relkit.Table

let magic = "TVSNAP1\n"

type contents = {
  tables :
    (Relkit.Schema.t * string list (* indexed columns *) * Relkit.Value.t array list)
    list;
  meta : (string * string * string) list;  (* (kind, name, payload), in order *)
  wal_start : int;  (* replay WAL segments >= this index on recovery *)
}

let snapshot_name id = Printf.sprintf "snapshot-%012d.snap" id
let snapshot_path dir id = Filename.concat dir (snapshot_name id)

let id_of_file name =
  try Scanf.sscanf name "snapshot-%12d.snap%!" (fun i -> Some i) with _ -> None

let ids dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map id_of_file
    |> List.sort compare

(* --- capture --- *)

let capture db ~exclude ~meta ~wal_start =
  let tables =
    Database.table_names db
    |> List.filter (fun name -> not (exclude name))
    |> List.sort compare
    |> List.map (fun name ->
           let tbl = Database.get_table db name in
           (Table.schema tbl, Table.indexed_columns tbl, Table.to_rows tbl))
  in
  { tables; meta; wal_start }

(* --- encoding --- *)

let encode contents =
  let buf = Buffer.create 4096 in
  Codec.put_u32 buf contents.wal_start;
  Codec.put_u32 buf (List.length contents.tables);
  List.iter
    (fun (schema, indexed, rows) ->
      Codec.put_schema buf schema;
      Codec.put_string_list buf indexed;
      Codec.put_rows buf rows)
    contents.tables;
  Codec.put_u32 buf (List.length contents.meta);
  List.iter
    (fun (kind, name, payload) ->
      Codec.put_string buf kind;
      Codec.put_string buf name;
      Codec.put_string buf payload)
    contents.meta;
  Buffer.contents buf

let decode payload =
  let c = Codec.cursor payload in
  let wal_start = Codec.get_u32 c in
  let tables =
    Codec.get_list c (fun c ->
        let schema = Codec.get_schema c in
        let indexed = Codec.get_string_list c in
        let rows = Codec.get_rows c in
        (schema, indexed, rows))
  in
  let meta =
    Codec.get_list c (fun c ->
        let kind = Codec.get_string c in
        let name = Codec.get_string c in
        let payload = Codec.get_string c in
        (kind, name, payload))
  in
  { tables; meta; wal_start }

(* --- file I/O --- *)

let write ~dir ~id contents =
  Wal.mkdirs dir;
  let payload = encode contents in
  let path = snapshot_path dir id in
  let tmp = path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      let buf = Buffer.create 8 in
      Codec.put_u32 buf (String.length payload);
      Codec.put_u32 buf (Codec.crc32 payload);
      Buffer.output_buffer oc buf;
      output_string oc payload;
      Wal.fsync_oc oc);
  Sys.rename tmp path;
  Wal.fsync_dir dir;
  path

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      let contents = really_input_string ic size in
      let mlen = String.length magic in
      if size < mlen + 8 then Codec.corrupt "snapshot too short (%d bytes)" size;
      if String.sub contents 0 mlen <> magic then
        Codec.corrupt "bad snapshot magic";
      let c = Codec.cursor ~pos:mlen contents in
      let len = Codec.get_u32 c in
      let crc = Codec.get_u32 c in
      if mlen + 8 + len <> size then
        Codec.corrupt "snapshot length mismatch: header says %d, file has %d" len
          (size - mlen - 8);
      let payload = String.sub contents (mlen + 8) len in
      if Codec.crc32 payload <> crc then Codec.corrupt "snapshot checksum mismatch";
      decode payload)

(* Newest snapshot that validates; a corrupt newest falls back to older. *)
let latest dir =
  let rec go = function
    | [] -> None
    | id :: rest -> (
      match load (snapshot_path dir id) with
      | contents -> Some (id, contents)
      | exception (Codec.Corrupt _ | Sys_error _) -> go rest)
  in
  go (List.rev (ids dir))

(* Keep the newest [keep] snapshots, delete the rest. *)
let prune dir ~keep =
  let all = List.rev (ids dir) in
  List.iteri
    (fun i id ->
      if i >= keep then
        try Sys.remove (snapshot_path dir id) with Sys_error _ -> ())
    all
