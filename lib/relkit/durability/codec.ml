(* Length-prefixed, CRC32-checksummed binary codec for relkit values, rows,
   schemas and DML statements.

   Every WAL record and snapshot body is an [encode_stmt]-style payload
   framed as [u32 length][u32 crc32][payload]; the framing itself lives in
   Wal/Snapshot, this module owns the payload bytes.  Statements carry full
   row images (old and new), so replaying a log through the normal
   [Database] DML path regenerates identical transition tables — which is
   what lets recovered SQL triggers observe the same deltas they would have
   seen live. *)

module Value = Relkit.Value
module Schema = Relkit.Schema

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

(* --- CRC-32 (IEEE 802.3, the zlib polynomial) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

(* --- statements --- *)

type stmt =
  | Insert of { table : string; rows : Value.t array list }
  | Update of {
      table : string;
      before : Value.t array list;
      after : Value.t array list;
    }
  | Delete of { table : string; rows : Value.t array list }
  | Create_table of Schema.t
  | Create_index of { table : string; column : string }
  | Meta of { kind : string; name : string; payload : string }
      (* logical DDL owned by layers above relkit: published view
         definitions, XML trigger DDL text, trigger drops.  Recovery hands
         these back verbatim so the runtime can re-compile and re-arm. *)

let stmt_of_change : Relkit.Database.change -> stmt = function
  | Relkit.Database.Ch_insert { table; rows } -> Insert { table; rows }
  | Relkit.Database.Ch_update { table; before; after } ->
    Update { table; before; after }
  | Relkit.Database.Ch_delete { table; rows } -> Delete { table; rows }
  | Relkit.Database.Ch_create_table schema -> Create_table schema
  | Relkit.Database.Ch_create_index { table; column } ->
    Create_index { table; column }

(* --- encoding --- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  if v < 0 || v > 0xffffffff then corrupt "u32 out of range: %d" v;
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let put_i64 buf v = Buffer.add_int64_le buf v

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_string_list buf l =
  put_u32 buf (List.length l);
  List.iter (put_string buf) l

let put_value buf (v : Value.t) =
  match v with
  | Value.Null -> put_u8 buf 0
  | Value.Int i ->
    put_u8 buf 1;
    put_i64 buf (Int64.of_int i)
  | Value.Float f ->
    put_u8 buf 2;
    put_i64 buf (Int64.bits_of_float f)
  | Value.String s ->
    put_u8 buf 3;
    put_string buf s
  | Value.Bool false -> put_u8 buf 4
  | Value.Bool true -> put_u8 buf 5

let put_row buf row =
  put_u32 buf (Array.length row);
  Array.iter (put_value buf) row

let put_rows buf rows =
  put_u32 buf (List.length rows);
  List.iter (put_row buf) rows

let col_type_tag = function
  | Schema.TInt -> 0
  | Schema.TFloat -> 1
  | Schema.TString -> 2
  | Schema.TBool -> 3

let put_schema buf (s : Schema.t) =
  put_string buf s.Schema.name;
  put_u32 buf (List.length s.Schema.columns);
  List.iter
    (fun c ->
      put_string buf c.Schema.col_name;
      put_u8 buf (col_type_tag c.Schema.col_type);
      put_u8 buf (if c.Schema.nullable then 1 else 0))
    s.Schema.columns;
  put_string_list buf s.Schema.primary_key;
  put_u32 buf (List.length s.Schema.uniques);
  List.iter (put_string_list buf) s.Schema.uniques;
  put_u32 buf (List.length s.Schema.foreign_keys);
  List.iter
    (fun fk ->
      put_string_list buf fk.Schema.fk_columns;
      put_string buf fk.Schema.fk_table;
      put_string_list buf fk.Schema.fk_ref_columns)
    s.Schema.foreign_keys

let put_stmt buf = function
  | Insert { table; rows } ->
    put_u8 buf 1;
    put_string buf table;
    put_rows buf rows
  | Update { table; before; after } ->
    put_u8 buf 2;
    put_string buf table;
    put_rows buf before;
    put_rows buf after
  | Delete { table; rows } ->
    put_u8 buf 3;
    put_string buf table;
    put_rows buf rows
  | Create_table schema ->
    put_u8 buf 4;
    put_schema buf schema
  | Create_index { table; column } ->
    put_u8 buf 5;
    put_string buf table;
    put_string buf column
  | Meta { kind; name; payload } ->
    put_u8 buf 6;
    put_string buf kind;
    put_string buf name;
    put_string buf payload

let encode_stmt stmt =
  let buf = Buffer.create 256 in
  put_stmt buf stmt;
  Buffer.contents buf

(* --- decoding --- *)

type cursor = { src : string; mutable pos : int }

let cursor ?(pos = 0) src = { src; pos }
let at_end c = c.pos >= String.length c.src

let need c n =
  if c.pos + n > String.length c.src then
    corrupt "truncated payload: need %d bytes at offset %d (have %d)" n c.pos
      (String.length c.src)

let get_u8 c =
  need c 1;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let b i = Char.code c.src.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let get_i64 c =
  need c 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.src.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_list c f =
  let n = get_u32 c in
  List.init n (fun _ -> f c)

let get_string_list c = get_list c get_string

let get_value c : Value.t =
  match get_u8 c with
  | 0 -> Value.Null
  | 1 -> Value.Int (Int64.to_int (get_i64 c))
  | 2 -> Value.Float (Int64.float_of_bits (get_i64 c))
  | 3 -> Value.String (get_string c)
  | 4 -> Value.Bool false
  | 5 -> Value.Bool true
  | tag -> corrupt "unknown value tag %d" tag

let get_row c =
  let n = get_u32 c in
  Array.init n (fun _ -> get_value c)

let get_rows c = get_list c get_row

let get_col_type c =
  match get_u8 c with
  | 0 -> Schema.TInt
  | 1 -> Schema.TFloat
  | 2 -> Schema.TString
  | 3 -> Schema.TBool
  | tag -> corrupt "unknown column-type tag %d" tag

let get_schema c : Schema.t =
  let name = get_string c in
  let columns =
    get_list c (fun c ->
        let col_name = get_string c in
        let col_type = get_col_type c in
        let nullable = get_u8 c <> 0 in
        { Schema.col_name; col_type; nullable })
  in
  let primary_key = get_string_list c in
  let uniques = get_list c get_string_list in
  let foreign_keys =
    get_list c (fun c ->
        let fk_columns = get_string_list c in
        let fk_table = get_string c in
        let fk_ref_columns = get_string_list c in
        { Schema.fk_columns; fk_table; fk_ref_columns })
  in
  { Schema.name; columns; primary_key; uniques; foreign_keys }

let get_stmt c =
  match get_u8 c with
  | 1 ->
    let table = get_string c in
    let rows = get_rows c in
    Insert { table; rows }
  | 2 ->
    let table = get_string c in
    let before = get_rows c in
    let after = get_rows c in
    if List.length before <> List.length after then
      corrupt "update record: %d before rows vs %d after rows"
        (List.length before) (List.length after);
    Update { table; before; after }
  | 3 ->
    let table = get_string c in
    let rows = get_rows c in
    Delete { table; rows }
  | 4 -> Create_table (get_schema c)
  | 5 ->
    let table = get_string c in
    let column = get_string c in
    Create_index { table; column }
  | 6 ->
    let kind = get_string c in
    let name = get_string c in
    let payload = get_string c in
    Meta { kind; name; payload }
  | tag -> corrupt "unknown statement tag %d" tag

let decode_stmt s =
  let c = cursor s in
  let stmt = get_stmt c in
  if not (at_end c) then
    corrupt "trailing garbage after statement (%d of %d bytes consumed)" c.pos
      (String.length s);
  stmt
