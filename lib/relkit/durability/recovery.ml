(* Crash recovery.

   [recover ~data_dir ()]:
     1. loads the newest valid snapshot (if any) into a fresh database —
        bulk row loads, constraints deferred;
     2. replays the WAL tail (segments >= the snapshot's [wal_start])
        through the normal [Database] DML path with triggers suppressed —
        the log holds full row images of every committed statement,
        including any issued by trigger bodies, so replay is exact and must
        not re-fire;
     3. verifies PK / FK / unique / typing invariants over the result.

   A torn or corrupt WAL tail is not an error: recovery keeps every record
   up to the last complete one and reports the tail status. *)

module Database = Relkit.Database
module Table = Relkit.Table
module Schema = Relkit.Schema
module Value = Relkit.Value

type outcome = {
  db : Database.t;
  meta : (string * string * string) list;
      (* snapshot meta followed by WAL meta records, in commit order *)
  snapshot_id : int option;
  wal_applied : int;  (* DML/DDL records replayed from the WAL *)
  wal_status : Wal.tail_status;
  errors : string list;  (* replay failures + invariant violations *)
  duration_ns : int64;  (* wall time of the whole recovery, verify included *)
}

let has_state ~data_dir =
  Snapshot.ids data_dir <> [] || Wal.segment_indexes data_dir <> []

(* --- invariant verification (post-replay §4 constraints) --- *)

let verify_invariants db =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  List.iter
    (fun name ->
      let tbl = Database.get_table db name in
      let schema = Table.schema tbl in
      (* typing / nullability *)
      Table.iter tbl (fun row ->
          match Schema.validate_row schema row with
          | Ok () -> ()
          | Error msg -> err "table %S: %s" name msg);
      (* single-column unique constraints (the enforced subset) *)
      List.iter
        (fun ucols ->
          match ucols with
          | [ col ] ->
            let slot = Schema.col_index schema col in
            let seen = Hashtbl.create 64 in
            Table.iter tbl (fun row ->
                let v = row.(slot) in
                if not (Value.is_null v) then begin
                  let key = Value.to_string v in
                  if Hashtbl.mem seen key then
                    err "unique violation on %S.%s = %s" name col key
                  else Hashtbl.add seen key ()
                end)
          | _ -> ())
        schema.Schema.uniques;
      (* foreign keys *)
      List.iter
        (fun fk ->
          match Database.find_table db fk.Schema.fk_table with
          | None -> err "table %S: FK references unknown table %S" name fk.Schema.fk_table
          | Some parent ->
            let pschema = Table.schema parent in
            Table.iter tbl (fun row ->
                let vals =
                  List.map
                    (fun c -> row.(Schema.col_index schema c))
                    fk.Schema.fk_columns
                in
                if not (List.exists Value.is_null vals) then
                  let found =
                    if fk.Schema.fk_ref_columns = pschema.Schema.primary_key then
                      Table.find_pk parent vals <> None
                    else
                      match fk.Schema.fk_ref_columns, vals with
                      | [ col ], [ v ] -> Table.lookup parent ~column:col v <> []
                      | _ -> true
                  in
                  if not found then
                    err "FK violation: %S(%s) = (%s) has no parent in %S" name
                      (String.concat ", " fk.Schema.fk_columns)
                      (String.concat ", " (List.map Value.to_string vals))
                      fk.Schema.fk_table))
        schema.Schema.foreign_keys)
    (List.sort compare (Database.table_names db));
  List.rev !errors

(* --- replay --- *)

let apply_snapshot db (contents : Snapshot.contents) =
  (* Bulk load: rows go straight into the row stores (constraint checks are
     deferred to [verify_invariants]); index DDL is replayed so lookups match
     the pre-crash physical design. *)
  List.iter
    (fun (schema, _indexed, _rows) -> Database.create_table db schema)
    contents.Snapshot.tables;
  List.iter
    (fun ((schema : Schema.t), indexed, rows) ->
      let tbl = Database.get_table db schema.Schema.name in
      List.iter (Table.insert_exn tbl) rows;
      List.iter (fun col -> Table.create_index tbl col) indexed)
    contents.Snapshot.tables

let replay_stmt db errors meta_acc = function
  | Codec.Insert { table; rows } -> Database.insert_rows db ~table rows
  | Codec.Update { table; before; after } ->
    List.iter2
      (fun old_row new_row ->
        let tbl = Database.get_table db table in
        let pk = Schema.pk_of_row (Table.schema tbl) old_row in
        if not (Database.update_pk db ~table ~pk ~set:(fun _ -> new_row)) then
          errors :=
            Printf.sprintf "replay: UPDATE of missing row (%s) in %S"
              (String.concat ", " (List.map Value.to_string pk))
              table
            :: !errors)
      before after
  | Codec.Delete { table; rows } ->
    let tbl = Database.get_table db table in
    List.iter
      (fun row ->
        let pk = Schema.pk_of_row (Table.schema tbl) row in
        if not (Database.delete_pk db ~table ~pk) then
          errors :=
            Printf.sprintf "replay: DELETE of missing row (%s) in %S"
              (String.concat ", " (List.map Value.to_string pk))
              table
            :: !errors)
      rows
  | Codec.Create_table schema -> Database.create_table db schema
  | Codec.Create_index { table; column } -> Database.create_index db ~table ~column
  | Codec.Meta { kind; name; payload } -> meta_acc := (kind, name, payload) :: !meta_acc

let recover ?(verify = true) ~data_dir () =
  let t0 = Obs.Trace.now () in
  let db = Database.create () in
  let errors = ref [] in
  let snapshot_id, snapshot_meta, wal_from =
    match Snapshot.latest data_dir with
    | Some (id, contents) ->
      apply_snapshot db contents;
      (Some id, contents.Snapshot.meta, contents.Snapshot.wal_start)
    | None -> (None, [], 0)
  in
  let records, wal_status = Wal.read_dir ~from_segment:wal_from data_dir in
  let meta_acc = ref [] in
  let applied = ref 0 in
  Database.with_triggers_suppressed db (fun () ->
      List.iter
        (fun stmt ->
          match replay_stmt db errors meta_acc stmt with
          | () -> (match stmt with Codec.Meta _ -> () | _ -> incr applied)
          | exception (Invalid_argument msg | Failure msg) ->
            errors := Printf.sprintf "replay failed: %s" msg :: !errors)
        records);
  let invariant_errors = if verify then verify_invariants db else [] in
  { db;
    meta = snapshot_meta @ List.rev !meta_acc;
    snapshot_id;
    wal_applied = !applied;
    wal_status;
    errors = List.rev !errors @ invariant_errors;
    duration_ns = Int64.sub (Obs.Trace.now ()) t0;
  }
