(* Append-only segmented write-ahead log.

   A log directory holds segment files [wal-%08d.log]; each record is framed
   as [u32 payload-length][u32 crc32][payload] where the payload is a
   [Codec.stmt].  Appends go to the newest segment; when it exceeds the
   segment limit the writer rotates to a fresh file.  The reader walks the
   segments in index order and stops cleanly at the first torn (truncated
   mid-record) or corrupt (checksum / decode failure) frame — everything
   after a bad frame is untrusted, exactly the redo-log contract.

   Durability is governed by the fsync policy:
     Always    — fsync after every record (no committed record is ever lost)
     EveryN n  — fsync every n records (bounded loss window, the default)
     Never     — leave flushing to the OS (fastest; loss window unbounded) *)

type sync_policy = Always | EveryN of int | Never

let header_bytes = 8
let max_record_bytes = 64 * 1024 * 1024

type t = {
  dir : string;
  segment_limit : int;
  policy : sync_policy;
  mutable seg_index : int;
  mutable oc : out_channel;
  mutable seg_bytes : int;
  mutable unsynced : int;  (* records appended since the last fsync *)
  mutable appended : int;  (* records appended over this handle's lifetime *)
  mutable closed : bool;
  h_append : Obs.Metrics.histogram;  (* whole-append latency, fsync included *)
  h_fsync : Obs.Metrics.histogram;
}

let segment_name i = Printf.sprintf "wal-%08d.log" i
let segment_path dir i = Filename.concat dir (segment_name i)

let segment_index_of_file name =
  try Scanf.sscanf name "wal-%8d.log%!" (fun i -> Some i) with _ -> None

let segment_indexes dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map segment_index_of_file
    |> List.sort compare

let rec mkdirs dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let fsync_oc oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(* Durability of a rename / create also needs the directory entry synced. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let open_segment dir i =
  open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
    (segment_path dir i)

let open_log ?(segment_limit = 8 * 1024 * 1024) ?(policy = EveryN 64) dir =
  mkdirs dir;
  (* Always start a fresh segment: a previous crash may have left a torn
     tail in the last one, and we never append after a torn record. *)
  let seg_index =
    match List.rev (segment_indexes dir) with [] -> 0 | last :: _ -> last + 1
  in
  let oc = open_segment dir seg_index in
  fsync_dir dir;
  { dir;
    segment_limit;
    policy;
    seg_index;
    oc;
    seg_bytes = 0;
    unsynced = 0;
    appended = 0;
    closed = false;
    h_append = Obs.Metrics.create_histogram ();
    h_fsync = Obs.Metrics.create_histogram ();
  }

(* Timed fsync through this handle (policy syncs, explicit [sync], rotation). *)
let fsync_timed t =
  let t0 = Obs.Trace.now () in
  fsync_oc t.oc;
  Obs.Metrics.observe t.h_fsync (Int64.sub (Obs.Trace.now ()) t0)

(* Always-on latency accounting, as [(name, histogram)] pairs. *)
let timings t = [ ("wal.append", t.h_append); ("wal.fsync", t.h_fsync) ]

let sync t =
  if not t.closed then begin
    fsync_timed t;
    t.unsynced <- 0
  end

let rotate t =
  if t.closed then invalid_arg "Wal.rotate: log is closed";
  fsync_timed t;
  close_out t.oc;
  t.seg_index <- t.seg_index + 1;
  t.oc <- open_segment t.dir t.seg_index;
  t.seg_bytes <- 0;
  t.unsynced <- 0;
  fsync_dir t.dir;
  t.seg_index

let current_segment t = t.seg_index
let appended_records t = t.appended

let append t stmt =
  if t.closed then invalid_arg "Wal.append: log is closed";
  let t0 = Obs.Trace.now () in
  let payload = Codec.encode_stmt stmt in
  let len = String.length payload in
  if len > max_record_bytes then
    invalid_arg (Printf.sprintf "Wal.append: record of %d bytes exceeds limit" len);
  let frame = Buffer.create (header_bytes + len) in
  Codec.put_u32 frame len;
  Codec.put_u32 frame (Codec.crc32 payload);
  Buffer.add_string frame payload;
  Buffer.output_buffer t.oc frame;
  t.seg_bytes <- t.seg_bytes + Buffer.length frame;
  t.appended <- t.appended + 1;
  (match t.policy with
  | Always ->
    fsync_timed t;
    t.unsynced <- 0
  | EveryN n ->
    t.unsynced <- t.unsynced + 1;
    if t.unsynced >= max n 1 then begin
      fsync_timed t;
      t.unsynced <- 0
    end
  | Never -> flush t.oc);
  if t.seg_bytes >= t.segment_limit then ignore (rotate t);
  Obs.Metrics.observe t.h_append (Int64.sub (Obs.Trace.now ()) t0)

let close t =
  if not t.closed then begin
    fsync_oc t.oc;
    close_out t.oc;
    t.closed <- true
  end

(* --- reading --- *)

type tail_status =
  | Clean
  | Torn of { segment : string; offset : int; reason : string }

let read_segment_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      let contents = really_input_string ic size in
      let records = ref [] in
      let status = ref Clean in
      let pos = ref 0 in
      let stop reason =
        status :=
          Torn { segment = Filename.basename path; offset = !pos; reason }
      in
      (try
         while !status = Clean && !pos < size do
           if !pos + header_bytes > size then stop "truncated record header"
           else begin
             let c = Codec.cursor ~pos:!pos contents in
             let len = Codec.get_u32 c in
             let crc = Codec.get_u32 c in
             if len > max_record_bytes then stop "implausible record length"
             else if !pos + header_bytes + len > size then
               stop "truncated record payload"
             else begin
               let payload = String.sub contents (!pos + header_bytes) len in
               if Codec.crc32 payload <> crc then stop "checksum mismatch"
               else begin
                 match Codec.decode_stmt payload with
                 | stmt ->
                   records := stmt :: !records;
                   pos := !pos + header_bytes + len
                 | exception Codec.Corrupt msg -> stop ("undecodable record: " ^ msg)
               end
             end
           end
         done
       with Codec.Corrupt msg -> stop msg);
      (List.rev !records, !status))

(* Read every record from segments [>= from_segment] in order, stopping at
   the first torn or corrupt frame.  Returns the records that are trusted. *)
let read_dir ?(from_segment = 0) dir =
  let segs = List.filter (fun i -> i >= from_segment) (segment_indexes dir) in
  let rec go acc = function
    | [] -> (List.concat (List.rev acc), Clean)
    | i :: rest -> (
      match read_segment_file (segment_path dir i) with
      | records, Clean -> go (records :: acc) rest
      | records, (Torn _ as torn) ->
        (List.concat (List.rev (records :: acc)), torn))
  in
  go [] segs

let remove_segments_below dir n =
  List.iter
    (fun i -> if i < n then try Sys.remove (segment_path dir i) with Sys_error _ -> ())
    (segment_indexes dir)

let total_bytes dir =
  List.fold_left
    (fun acc i ->
      match (Unix.stat (segment_path dir i)).Unix.st_size with
      | size -> acc + size
      | exception Unix.Unix_error _ -> acc)
    0 (segment_indexes dir)
