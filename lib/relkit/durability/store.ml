(* The durability facade a database (or the trigview runtime) attaches to.

   [attach ~data_dir db] opens a WAL in [data_dir] and hooks
   [Database.attach_durability] so every committed DML/DDL statement is
   encoded and appended.  Tables matching [is_system_table] are skipped:
   they are regenerated from logical DDL meta records (e.g. the runtime's
   trigger-constants tables) and must not be double-applied on recovery.

   [checkpoint] takes an atomic snapshot of the database plus the caller's
   current logical DDL, then truncates the WAL.  The rotation happens
   *before* the snapshot is written and old segments are removed only
   *after* the snapshot is durable, so a crash at any point leaves a
   recoverable (snapshot, WAL-tail) pair. *)

module Database = Relkit.Database

type t = {
  data_dir : string;
  wal : Wal.t;
  is_system_table : string -> bool;
  mutable detached : bool;
  h_checkpoint : Obs.Metrics.histogram;
}

let default_is_system_table _ = false

let change_is_system is_system = function
  | Database.Ch_insert { table; _ }
  | Database.Ch_update { table; _ }
  | Database.Ch_delete { table; _ }
  | Database.Ch_create_index { table; _ } -> is_system table
  | Database.Ch_create_table schema -> is_system schema.Relkit.Schema.name

let attach ?segment_limit ?policy ?(is_system_table = default_is_system_table)
    ~data_dir db =
  let wal = Wal.open_log ?segment_limit ?policy data_dir in
  let store =
    { data_dir;
      wal;
      is_system_table;
      detached = false;
      h_checkpoint = Obs.Metrics.create_histogram ();
    }
  in
  Database.attach_durability db (fun change ->
      if not (store.detached || change_is_system is_system_table change) then
        Wal.append wal (Codec.stmt_of_change change));
  store

(* Logical DDL owned by the layer above (view definitions, XML trigger DDL).
   Recovery returns these verbatim for the runtime to re-compile. *)
let log_meta t ~kind ~name ~payload =
  if not t.detached then Wal.append t.wal (Codec.Meta { kind; name; payload })

let sync t = Wal.sync t.wal
let wal_bytes t = Wal.total_bytes t.data_dir
let wal_records t = Wal.appended_records t.wal
let data_dir t = t.data_dir

(* WAL append/fsync and checkpoint latency histograms, always-on. *)
let timings t = Wal.timings t.wal @ [ ("checkpoint", t.h_checkpoint) ]

let checkpoint t db ~meta =
  let t0 = Obs.Trace.now () in
  (* 1. rotate: records from here on belong to the new snapshot's tail *)
  let wal_start = Wal.rotate t.wal in
  (* 2. durable snapshot of everything before the rotation *)
  let contents = Snapshot.capture db ~exclude:t.is_system_table ~meta ~wal_start in
  let id = match Snapshot.ids t.data_dir with [] -> 1 | ids -> List.fold_left max 0 ids + 1 in
  let path = Snapshot.write ~dir:t.data_dir ~id contents in
  (* 3. only now is the old tail dead *)
  Wal.remove_segments_below t.data_dir wal_start;
  Snapshot.prune t.data_dir ~keep:2;
  Obs.Metrics.observe t.h_checkpoint (Int64.sub (Obs.Trace.now ()) t0);
  path

let detach t db =
  if not t.detached then begin
    t.detached <- true;
    Database.detach_durability db;
    Wal.close t.wal
  end
