(** Updatable XML views: write-through view DML compiled onto base tables.

    The read side of the system publishes XML views of relational data and
    compiles XML triggers down to SQL triggers; this module closes the loop
    on the write side.  It accepts three DML verbs over a published view

    {v
      INSERT NODE <xml> INTO view("v")/path
      REPLACE NODE view("v")/path WITH <xml>
      DELETE NODE view("v")/path [WHERE cond]
    v}

    plans them against the view's XQGM graph, and translates each into
    base-table INSERT / UPDATE / DELETE statements, following the
    translation + side-effect analysis of Liu et al.'s updatable-XML-views
    work: a targeted view node is updatable when its level's canonical key
    pins a unique base row ({!Xqgm.Lineage} provenance covering the base
    table's primary key), and the update is accepted only when it provably
    re-renders nothing but the targeted nodes — checked statically through
    {!Xqgm.Lineage.dependents} when possible, and otherwise dynamically by
    differencing the current document against a hypothetical evaluation of
    the post-update state (no base table is touched until the translation
    is verified).

    Ambiguous updates — a node whose level maps to several candidate base
    rows, e.g. deleting a grouped [<product>] built from two product rows —
    raise {!Rejected} with a structured diagnostic listing the candidates,
    unless a BIRDS-style programmable strategy ({!set_strategy}) resolves
    the choice for that view.

    Accepted translations execute through the normal {!Relkit.Database}
    path: they stamp statement ids, fire SQL triggers (and hence XML
    triggers), appear in the audit ring tagged with the originating view-DML
    text, replicate to subscribers, and land in the WAL. *)

(** A parsed view-DML statement. *)
type stmt =
  | Insert_node of { xml : Xmlkit.Xml.t; into : Xquery.Ast.path }
  | Replace_node of { path : Xquery.Ast.path; xml : Xmlkit.Xml.t }
  | Delete_node of { path : Xquery.Ast.path; where : Xquery.Ast.expr option }

(** One translated base-table statement. *)
type base_op =
  | Ins of { table : string; row : Relkit.Value.t array }
  | Upd of {
      table : string;
      pk : Relkit.Value.t list;
      before : Relkit.Value.t array;
      after : Relkit.Value.t array;
    }
  | Del of { table : string; pk : Relkit.Value.t list; row : Relkit.Value.t array }

(** The translation of one view-DML statement, as shown by [explain-update]. *)
type plan = {
  p_text : string;  (** the source view-DML text *)
  p_view : string;
  p_level : string;  (** tag path of the targeted level, e.g. "catalog/product" *)
  p_anchor : string;  (** base table the level is anchored to *)
  p_targets : int;  (** view nodes the path selected *)
  p_verdict : string list;  (** injectivity / safety verdict, one line each *)
  p_ops : base_op list;  (** base statements, in execution order *)
}

(** Why an update was refused: the ambiguity or side effect, with the
    candidate base rows (an ambiguous update always names >= 2). *)
type diagnostic = {
  d_stmt : string;
  d_view : string;
  d_level : string;
  d_table : string;  (** implicated base table; "" when none identified *)
  d_reason : string;
  d_candidates : (string * Relkit.Value.t array) list;  (** (table, row) *)
  d_side_effects : string list;  (** dependent graph sites / diff findings *)
}

exception Error of string  (** parse errors, unknown views/levels/fields *)

exception Rejected of diagnostic

val render_diagnostic : diagnostic -> string

(** {2 Programmable ambiguity strategies (BIRDS-style)}

    When a targeted node does not pin a unique base row, the view's strategy
    decides.  [Custom f] receives the ambiguity and returns the base rows to
    operate on ([None] falls back to rejection); strategy-resolved
    translations still run the side-effect verification, so e.g.
    [First_candidate] is rejected when deleting only the first candidate
    would leave the targeted node visible. *)

type ambiguity = {
  amb_stmt : string;
  amb_view : string;
  amb_level : string;
  amb_table : string;
  amb_schema : Relkit.Schema.t;
  amb_candidates : Relkit.Value.t array list;
}

type strategy =
  | Reject_ambiguous  (** the default: raise {!Rejected} *)
  | First_candidate
  | All_candidates
  | Custom of (ambiguity -> Relkit.Value.t array list option)

val strategy_to_string : strategy -> string

(** Per-runtime, per-view strategy registry; {!execute}'s [?strategy]
    overrides it.  Keyed by runtime identity so a strategy set for a view on
    one runtime never applies to a same-named view of another. *)
val set_strategy : Trigview.Runtime.t -> view:string -> strategy -> unit

val clear_strategy : Trigview.Runtime.t -> view:string -> unit
val strategy_for : Trigview.Runtime.t -> view:string -> strategy

(** {2 Parsing, planning, execution} *)

(** @raise Error on malformed statements. *)
val parse : string -> stmt

(** Plans without executing: parse, resolve the level, anchor it, translate,
    and verify.  @raise Error / Rejected. *)
val plan : Trigview.Runtime.t -> ?strategy:strategy -> string -> plan

(** Plans and executes the translation through the normal [Database] path
    (statement ids, triggers, audit, WAL), with
    {!Relkit.Database.statement_origin} set to the view-DML text and a
    ["viewdml"] meta record logged for recovery provenance.
    @raise Error / Rejected; the database is untouched in that case. *)
val execute : Trigview.Runtime.t -> ?strategy:strategy -> string -> plan

(** Renders the plan — or the rejection diagnostic — without executing;
    never raises {!Rejected}. *)
val explain : Trigview.Runtime.t -> string -> string

val render_plan : plan -> string
val base_op_to_string : base_op -> string

(** Like {!base_op_to_string} but with column names resolved through the
    database's schemas (SQL-shaped [SET c = v] / [WHERE pk = v] clauses). *)
val base_op_render : Relkit.Database.t -> base_op -> string
