(* Write-through view DML: the XML-side DML verbs planned against the view's
   XQGM graph and translated into base-table statements.

   The translation follows Liu et al.'s updatable-XML-view analysis:

   - a targeted view node is *anchored* when its level's canonical key
     carries (per {!Xqgm.Lineage} provenance) a full primary key of one base
     table — that key value names the unique base row behind the node;
   - an update is *side-effect free* when the changed base columns feed
     nothing in the view graph beyond the targeted level's own element
     constructor ({!Xqgm.Lineage.dependents}); when that static check is
     inconclusive, the planner evaluates the view over the hypothetical
     post-update state (through [Op.to_old] + transition tables, no base
     table is touched) and compares against the structurally edited current
     document;
   - a node that is not anchored (e.g. a grouped <product> built from two
     product rows) yields a candidate-row ambiguity, resolved by the view's
     programmable strategy (BIRDS-style) or rejected with a diagnostic.

   Accepted plans execute through the normal [Database] DML path, so the
   translated statements stamp ids, fire SQL triggers, hit the audit ring
   (tagged with the view-DML source text via [Database.statement_origin]),
   replicate to subscribers and land in the WAL. *)

open Relkit
module Xml = Xmlkit.Xml
module Ast = Xquery.Ast
module Parser = Xquery.Parser
module Compile = Xquery.Compile
module Compose = Xquery.Compose
module Op = Xqgm.Op
module Expr = Xqgm.Expr
module Xval = Xqgm.Xval
module Eval = Xqgm.Eval
module Lineage = Xqgm.Lineage
module Runtime = Trigview.Runtime
module Pushdown = Trigview.Pushdown

type stmt =
  | Insert_node of { xml : Xml.t; into : Ast.path }
  | Replace_node of { path : Ast.path; xml : Xml.t }
  | Delete_node of { path : Ast.path; where : Ast.expr option }

type base_op =
  | Ins of { table : string; row : Value.t array }
  | Upd of {
      table : string;
      pk : Value.t list;
      before : Value.t array;
      after : Value.t array;
    }
  | Del of { table : string; pk : Value.t list; row : Value.t array }

type plan = {
  p_text : string;
  p_view : string;
  p_level : string;
  p_anchor : string;
  p_targets : int;
  p_verdict : string list;
  p_ops : base_op list;
}

type diagnostic = {
  d_stmt : string;
  d_view : string;
  d_level : string;
  d_table : string;
  d_reason : string;
  d_candidates : (string * Value.t array) list;
  d_side_effects : string list;
}

exception Error of string
exception Rejected of diagnostic

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* --- strategies --- *)

type ambiguity = {
  amb_stmt : string;
  amb_view : string;
  amb_level : string;
  amb_table : string;
  amb_schema : Schema.t;
  amb_candidates : Value.t array list;
}

type strategy =
  | Reject_ambiguous
  | First_candidate
  | All_candidates
  | Custom of (ambiguity -> Value.t array list option)

let strategy_to_string = function
  | Reject_ambiguous -> "reject-ambiguous"
  | First_candidate -> "first-candidate"
  | All_candidates -> "all-candidates"
  | Custom _ -> "custom"

(* Keyed by runtime identity: a strategy registered for view "v" on one
   runtime must not leak to a same-named view of another runtime in the
   process.  The association list is pruned when a runtime's last strategy
   is cleared, so it does not pin abandoned runtimes forever. *)
let strategies : (Runtime.t * (string, strategy) Hashtbl.t) list ref = ref []

let set_strategy rt ~view strat =
  let tbl =
    match List.assq_opt rt !strategies with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 8 in
      strategies := (rt, tbl) :: !strategies;
      tbl
  in
  Hashtbl.replace tbl view strat

let clear_strategy rt ~view =
  match List.assq_opt rt !strategies with
  | None -> ()
  | Some tbl ->
    Hashtbl.remove tbl view;
    if Hashtbl.length tbl = 0 then
      strategies := List.filter (fun (rt', _) -> rt' != rt) !strategies

let strategy_for rt ~view =
  match List.assq_opt rt !strategies with
  | None -> Reject_ambiguous
  | Some tbl -> Option.value ~default:Reject_ambiguous (Hashtbl.find_opt tbl view)

(* --- parsing --- *)

(* Whitespace-only text nodes in hand-written XML are layout, not content;
   the rendered views never contain them. *)
let rec strip_ws = function
  | Xml.Element { tag; attrs; children } ->
    let children =
      List.filter_map
        (function
          | Xml.Text t when String.trim t = "" -> None
          | c -> Some (strip_ws c))
        children
    in
    Xml.elem ~attrs tag children
  | t -> t

(* Scans one balanced XML literal starting at [s.[i] = '<']; returns the
   literal and the index just past it.  Quoted attribute values may contain
   angle brackets; <?...?> / <!...> and self-closing tags do not nest. *)
let scan_xml s i =
  let n = String.length s in
  if i >= n || s.[i] <> '<' then fail "expected an XML literal";
  let starts_with j p =
    let lp = String.length p in
    j + lp <= n && String.sub s j lp = p
  in
  (* comments and CDATA may contain markup ('<!-- see <b>note</b> -->');
     skip to their closing delimiter without counting element depth *)
  let skip_past j close =
    let lc = String.length close in
    let rec go j =
      if j + lc > n then fail "unterminated %s in XML literal" close
      else if String.sub s j lc = close then j + lc
      else go (j + 1)
    in
    go j
  in
  let depth = ref 0 and j = ref i and fin = ref (-1) in
  while !fin < 0 do
    if !j >= n then fail "unterminated XML literal";
    if s.[!j] <> '<' then incr j
    else if starts_with !j "<!--" then begin
      j := skip_past (!j + 4) "-->";
      if !depth = 0 then fin := !j
    end
    else if starts_with !j "<![CDATA[" then begin
      j := skip_past (!j + 9) "]]>";
      if !depth = 0 then fin := !j
    end
    else begin
      let closing = !j + 1 < n && s.[!j + 1] = '/' in
      let special = !j + 1 < n && (s.[!j + 1] = '!' || s.[!j + 1] = '?') in
      let k = ref (!j + 1) and quote = ref None and stop = ref (-1) in
      while !stop < 0 do
        if !k >= n then fail "unterminated tag in XML literal";
        (match !quote with
        | Some q -> if s.[!k] = q then quote := None
        | None ->
          if s.[!k] = '"' || s.[!k] = '\'' then quote := Some s.[!k]
          else if s.[!k] = '>' then stop := !k);
        incr k
      done;
      let self_closing = !stop > !j + 1 && s.[!stop - 1] = '/' in
      if special || self_closing then ()
      else if closing then decr depth
      else incr depth;
      j := !stop + 1;
      if !depth = 0 then fin := !j
    end
  done;
  (String.sub s i (!fin - i), !fin)

(* First top-level occurrence of keyword [kw] (case-insensitive, word
   boundaries, outside quotes and outside [...] / (...)). *)
let find_keyword s kw =
  let n = String.length s and m = String.length kw in
  let low = Char.lowercase_ascii in
  let rec go i depth quote =
    if i >= n then None
    else
      match quote with
      | Some q -> go (i + 1) depth (if s.[i] = q then None else quote)
      | None ->
        if s.[i] = '\'' || s.[i] = '"' then go (i + 1) depth (Some s.[i])
        else if s.[i] = '[' || s.[i] = '(' then go (i + 1) (depth + 1) None
        else if s.[i] = ']' || s.[i] = ')' then go (i + 1) (depth - 1) None
        else if
          depth = 0
          && i + m <= n
          && (i = 0 || not (Parser.is_word_char s.[i - 1]))
          && (i + m = n || not (Parser.is_word_char s.[i + m]))
          &&
          let rec eq k = k = m || (low s.[i + k] = low kw.[k] && eq (k + 1)) in
          eq 0
        then Some i
        else go (i + 1) depth None
  in
  go 0 0 None

let parse_xml_literal lit =
  match Xmlkit.Xml_parse.parse_opt (String.trim lit) with
  | Some x -> strip_ws x
  | None -> fail "malformed XML literal: %s" (String.trim lit)

let parse_path_text s =
  match Parser.parse_path (String.trim s) with
  | p -> p
  | exception Parser.Parse_error msg -> fail "bad path %S: %s" (String.trim s) msg

let parse text =
  let s = String.trim text in
  let has_prefix p =
    let lp = String.length p in
    String.length s >= lp
    && String.uppercase_ascii (String.sub s 0 lp) = p
    && (String.length s = lp || not (Parser.is_word_char s.[lp]))
  in
  let after p = String.trim (String.sub s (String.length p) (String.length s - String.length p)) in
  if has_prefix "INSERT NODE" then begin
    let body = after "INSERT NODE" in
    let lit, j = scan_xml body 0 in
    let rest = String.trim (String.sub body j (String.length body - j)) in
    if not (String.length rest > 4 && String.uppercase_ascii (String.sub rest 0 4) = "INTO"
            && not (Parser.is_word_char rest.[4]))
    then fail "expected INTO <path> after the XML literal";
    let path = parse_path_text (String.sub rest 4 (String.length rest - 4)) in
    Insert_node { xml = parse_xml_literal lit; into = path }
  end
  else if has_prefix "REPLACE NODE" then begin
    let body = after "REPLACE NODE" in
    match find_keyword body "WITH" with
    | None -> fail "expected REPLACE NODE <path> WITH <xml>"
    | Some k ->
      let path = parse_path_text (String.sub body 0 k) in
      let lit = String.sub body (k + 4) (String.length body - k - 4) in
      Replace_node { path; xml = parse_xml_literal lit }
  end
  else if has_prefix "DELETE NODE" then begin
    let body = after "DELETE NODE" in
    match find_keyword body "WHERE" with
    | None -> Delete_node { path = parse_path_text body; where = None }
    | Some k ->
      let path = parse_path_text (String.sub body 0 k) in
      let cond_text = String.trim (String.sub body (k + 5) (String.length body - k - 5)) in
      let cond =
        match Parser.parse_expr cond_text with
        | e -> e
        | exception Parser.Parse_error msg -> fail "bad WHERE condition: %s" msg
      in
      Delete_node { path; where = Some cond }
  end
  else fail "expected INSERT NODE / REPLACE NODE / DELETE NODE, got %S" s

(* --- AST utilities --- *)

(* A view-DML WHERE condition refers to the targeted node as [.] or [NODE];
   the fallback evaluator binds OLD_NODE/NEW_NODE, so rewrite the roots. *)
let rec rewrite_expr (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Lit _ -> e
  | Ast.Path p -> Ast.Path (rewrite_path p)
  | Ast.Flwor { clauses; where; return } ->
    Ast.Flwor
      { clauses = List.map rewrite_clause clauses;
        where = Option.map rewrite_expr where;
        return = rewrite_expr return;
      }
  | Ast.Elem { tag; attrs; content } ->
    Ast.Elem
      { tag;
        attrs = List.map (fun (k, v) -> (k, rewrite_expr v)) attrs;
        content = List.map rewrite_content content;
      }
  | Ast.Cmp (c, a, b) -> Ast.Cmp (c, rewrite_expr a, rewrite_expr b)
  | Ast.Arith (o, a, b) -> Ast.Arith (o, rewrite_expr a, rewrite_expr b)
  | Ast.And (a, b) -> Ast.And (rewrite_expr a, rewrite_expr b)
  | Ast.Or (a, b) -> Ast.Or (rewrite_expr a, rewrite_expr b)
  | Ast.Not a -> Ast.Not (rewrite_expr a)
  | Ast.Call (f, args) -> Ast.Call (f, List.map rewrite_expr args)
  | Ast.Quantified { universal; var; source; satisfies } ->
    Ast.Quantified
      { universal; var; source = rewrite_expr source; satisfies = rewrite_expr satisfies }

and rewrite_clause = function
  | Ast.For (v, e) -> Ast.For (v, rewrite_expr e)
  | Ast.Let (v, e) -> Ast.Let (v, rewrite_expr e)

and rewrite_content = function
  | Ast.C_text _ as c -> c
  | Ast.C_elem e -> Ast.C_elem (rewrite_expr e)
  | Ast.C_enclosed e -> Ast.C_enclosed (rewrite_expr e)

and rewrite_path ({ root; steps } : Ast.path) : Ast.path =
  match root with
  | Ast.R_var ("." | "NODE") -> { Ast.root = Ast.R_var "OLD_NODE"; steps }
  | _ -> { Ast.root; steps }

(* --- typed values --- *)

let col_type (schema : Schema.t) c =
  match List.find_opt (fun col -> col.Schema.col_name = c) schema.Schema.columns with
  | Some col -> col.Schema.col_type
  | None -> fail "no column %S in table %S" c schema.Schema.name

let value_of_text ty s =
  match ty with
  | Schema.TString -> Value.String s
  | Schema.TInt -> (
    try Value.Int (int_of_string (String.trim s)) with _ -> fail "%S is not an integer" s)
  | Schema.TFloat -> (
    try Value.Float (float_of_string (String.trim s)) with _ -> fail "%S is not a number" s)
  | Schema.TBool -> (
    match String.lowercase_ascii (String.trim s) with
    | "true" -> Value.Bool true
    | "false" -> Value.Bool false
    | _ -> fail "%S is not a boolean" s)

let coerce ty (v : Value.t) =
  match (ty, v) with
  | Schema.TFloat, Value.Int i -> Value.Float (float_of_int i)
  | Schema.TString, (Value.Int _ | Value.Float _ | Value.Bool _) ->
    Value.String (Value.to_string v)
  | _ -> v

(* --- lineage helpers --- *)

let lineage_base lin col =
  match List.assoc_opt col lin with
  | Some (Lineage.Base { table; column }) -> Some (table, column)
  | _ -> None

let is_count_field f = String.length f >= 6 && String.sub f 0 6 = "count("
let is_attr_field f = String.length f > 0 && f.[0] = '@'

(* --- level resolution --- *)

let view_name_of (path : Ast.path) =
  match path.Ast.root with
  | Ast.R_view v -> v
  | Ast.R_var _ -> fail "a view-DML path must be rooted at view(...)"

(* Tag path of a level inside its view tree, e.g. "catalog/product". *)
let level_path (view : Compile.view) (tree : Compile.view_tree) =
  let rec go t acc =
    if t == tree then Some (List.rev (t.Compile.elem_tag :: acc))
    else List.find_map (fun c -> go c (t.Compile.elem_tag :: acc)) t.Compile.children
  in
  match go view.Compile.tree [] with
  | Some tags -> String.concat "/" tags
  | None -> tree.Compile.elem_tag

(* The {!Compose.monitored} of a path; an empty-step path denotes the
   document element (allowed as an INSERT target). *)
let monitored_of view (path : Ast.path) =
  if path.Ast.steps = [] then
    { Compose.m_op = view.Compile.tree.Compile.op;
      m_node_col = view.Compile.tree.Compile.node_col;
      m_key = view.Compile.tree.Compile.key;
      m_tree = view.Compile.tree;
    }
  else
    match Compose.compose_path view path with
    | m -> m
    | exception Compose.Compose_error msg -> fail "%s" msg

(* --- target evaluation (generic path) --- *)

type target = {
  t_row : (string * Xval.t) list;
  t_node : Xml.t;
}

let eval_targets db (m : Compose.monitored) ~(where : Ast.expr option) =
  let ctx = Ra_eval.ctx_of_db db in
  let rel = Eval.eval ctx m.Compose.m_op in
  let cols = Array.to_list rel.Eval.cols in
  let targets =
    List.map
      (fun row ->
        let assoc = List.mapi (fun i c -> (c, row.(i))) cols in
        let node =
          match List.assoc m.Compose.m_node_col assoc with
          | Xval.Node n -> n
          | v -> fail "level row did not produce a node (%s)" (Xval.to_string v)
        in
        { t_row = assoc; t_node = node })
      rel.Eval.rows
  in
  match where with
  | None -> targets
  | Some cond ->
    let cond = rewrite_expr cond in
    (match Compose.validate_fallback cond with
    | Ok () -> ()
    | Error msg -> fail "unsupported WHERE condition: %s" msg);
    List.filter
      (fun t -> Compose.condition_fallback cond ~old_node:(Some t.t_node) ~new_node:None)
      targets

(* --- anchoring --- *)

(* Lineage walks the level's whole op graph (the root op embeds every
   descendant level), so deriving it per statement is the planner's largest
   repeated cost.  Ops are immutable and ids process-unique, so the result
   is memoized across statements. *)
let lineage_memo : (int, (string * Lineage.source) list) Hashtbl.t = Hashtbl.create 16

let lin_of (op : Op.t) =
  match Hashtbl.find_opt lineage_memo op.Op.id with
  | Some l -> l
  | None ->
    let l = Lineage.columns op in
    Hashtbl.add lineage_memo op.Op.id l;
    l

type anchor =
  | Anchored of {
      table : string;
      schema : Schema.t;
      pk_slots : (string * string) list;  (* (base pk column, level output column) *)
    }
  | Unanchored of { table : string option; schema : Schema.t option; reason : string }

(* A level is anchored to T when its key columns that copy T's columns cover
   T's primary key.  Several tables can qualify (correlation columns carry
   ancestor keys through joins); prefer the table carrying the most key
   columns, then the one whose key column appears last — the iterated
   (deepest) side of the level's joins. *)
let anchor_of_level_uncached db (tree : Compile.view_tree) =
  let lin = lin_of tree.Compile.op in
  let keyed =
    List.filter_map (fun k -> Option.map (fun b -> (k, b)) (lineage_base lin k)) tree.Compile.key
  in
  let pos k =
    let rec go i = function
      | [] -> -1
      | k' :: _ when k' = k -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 tree.Compile.key
  in
  let tables = List.sort_uniq compare (List.map (fun (_, (t, _)) -> t) keyed) in
  let covering =
    List.filter_map
      (fun t ->
        match Database.find_table db t with
        | None -> None
        | Some tbl ->
          let schema = Table.schema tbl in
          let carried =
            List.filter_map (fun (k, (t', c)) -> if t' = t then Some (c, k) else None) keyed
          in
          if
            schema.Schema.primary_key <> []
            && List.for_all (fun c -> List.mem_assoc c carried) schema.Schema.primary_key
          then Some (t, schema, carried)
          else None)
      tables
  in
  match covering with
  | [] ->
    let table = match keyed with [] -> None | (_, (t, _)) :: _ -> Some t in
    let schema = Option.map (fun t -> Table.schema (Database.get_table db t)) table in
    let reason =
      match keyed with
      | [] -> "no key column of this level copies a base column"
      | _ ->
        Printf.sprintf "the level key [%s] does not cover the primary key of %s"
          (String.concat "; " tree.Compile.key)
          (match table with Some t -> t | None -> "?")
    in
    Unanchored { table; schema; reason }
  | _ ->
    let score (_, _, carried) =
      ( List.length carried,
        List.fold_left (fun m (_, k) -> max m (pos k)) (-1) carried )
    in
    let t, schema, carried =
      List.fold_left
        (fun best cand ->
          match best with
          | Some b when score b >= score cand -> Some b
          | _ -> Some cand)
        None covering
      |> Option.get
    in
    Anchored
      { table = t;
        schema;
        pk_slots = List.map (fun c -> (c, List.assoc c carried)) schema.Schema.primary_key;
      }

(* Anchoring is pure in the (immutable) level op and the database's schemas,
   and the planner consults it for the target level and every ancestor on
   each statement — memoize per (database, level op).  Entries are keyed by
   database identity; stale databases' entries are shed on the next probe of
   the same op. *)
let anchor_memo : (int, (Database.t * anchor) list) Hashtbl.t = Hashtbl.create 16

let anchor_of_level db (tree : Compile.view_tree) =
  let id = tree.Compile.op.Op.id in
  let entries = Option.value ~default:[] (Hashtbl.find_opt anchor_memo id) in
  match List.assq_opt db entries with
  | Some a -> a
  | None ->
    let a = anchor_of_level_uncached db tree in
    Hashtbl.replace anchor_memo id
      ((db, a) :: List.filter (fun (db', _) -> db' == db) entries);
    a

(* Base rows of [table] matching the target tuple on every level column that
   copies one of [table]'s columns — the candidate rows of an ambiguous
   update. *)
let candidate_rows db ~table lin (get_opt : string -> Xval.t option) =
  let tbl = Database.get_table db table in
  let schema = Table.schema tbl in
  let checks =
    List.filter_map
      (fun (out, src) ->
        match src with
        | Lineage.Base { table = t; column } when t = table -> (
          match get_opt out with
          | Some (Xval.Atom v) -> Some (Schema.col_index schema column, v)
          | _ -> None)
        | _ -> None)
      lin
  in
  List.rev
    (Table.fold tbl ~init:[] ~f:(fun acc row ->
         if List.for_all (fun (i, v) -> Value.equal row.(i) v) checks then row :: acc else acc))

(* --- fields of user-supplied XML --- *)

let xml_field_value node field =
  if is_attr_field field then Xml.attr node (String.sub field 1 (String.length field - 1))
  else if is_count_field field then None
  else
    match Xml.children_named node field with
    | [] -> None
    | [ c ] -> Some (Xml.text_content c)
    | _ -> fail "multiple <%s> children; the field maps to one column" field

(* An inserted node may carry only the level's own fields: unknown content
   has no underlying column, and nested view levels are separate nodes. *)
let check_insert_shape (tree : Compile.view_tree) xml =
  let fields = tree.Compile.fields in
  let field_attr a = List.mem_assoc ("@" ^ a) fields in
  let field_child t = List.mem_assoc t fields in
  let child_level t = List.exists (fun c -> c.Compile.elem_tag = t) tree.Compile.children in
  match xml with
  | Xml.Text _ -> fail "the inserted node must be an element"
  | Xml.Element { tag; attrs; children } ->
    List.iter
      (fun (a, _) ->
        if not (field_attr a) then
          fail "attribute %S of <%s> has no underlying column" a tag)
      attrs;
    List.iter
      (function
        | Xml.Text t ->
          if String.trim t <> "" then
            fail "text content %S of <%s> has no underlying column" t tag
        | Xml.Element { tag = ct; _ } ->
          if child_level ct then
            fail "<%s> is a nested view level; insert those nodes one at a time" ct
          else if not (field_child ct) then
            fail "child <%s> of <%s> has no underlying column" ct tag)
      children

(* A replacement must match the old node everywhere except field values:
   same tag, same attribute names (non-field values unchanged), and the same
   child sequence up to the text of simple field children. *)
let check_replace_shape (tree : Compile.view_tree) ~old_node xml =
  match (old_node, xml) with
  | Xml.Element o, Xml.Element r ->
    if r.tag <> o.tag then
      fail "replacement root <%s> does not match the targeted <%s>" r.tag o.tag;
    let fields = tree.Compile.fields in
    let field_attr a = List.mem_assoc ("@" ^ a) fields in
    let field_child t = List.mem_assoc t fields in
    let names l = List.sort compare (List.map fst l) in
    if names r.attrs <> names o.attrs then
      fail "replacement changes the attribute set of <%s>" o.tag;
    List.iter
      (fun (a, v) ->
        if not (field_attr a) then
          match Xml.attr old_node a with
          | Some v' when v' = v -> ()
          | _ -> fail "attribute %S of <%s> has no underlying column" a o.tag)
      r.attrs;
    if List.length r.children <> List.length o.children then
      fail
        "replacement changes the child structure of <%s>; only field values are \
         updatable (REPLACE nested nodes directly)"
        o.tag;
    List.iter2
      (fun oc rc ->
        match (oc, rc) with
        | Xml.Element { tag = ot; _ }, Xml.Element { tag = rt; _ }
          when ot = rt && field_child ot ->
          ()
        | _ ->
          if not (Xml.equal oc rc) then
            fail
              "child %s of <%s> is not a simple field; REPLACE the nested node directly"
              (match Xml.tag rc with Some t -> "<" ^ t ^ ">" | None -> "text") o.tag)
      o.children r.children
  | _ -> fail "REPLACE needs element nodes"

(* Field-by-field diff of a replacement against the current values.
   Returns (base column, old, new) per changed column of the anchor table;
   fields carried by joined non-anchor tables must be unchanged. *)
let replace_changes db ~anchor lin (tree : Compile.view_tree)
    ~(get : string -> Value.t) xml =
  List.filter_map
    (fun (field, out) ->
      if is_count_field field then None
      else
        match lineage_base lin out with
        | None -> (
          match xml_field_value xml field with
          | None -> None
          | Some s ->
            if Value.equal (value_of_text Schema.TString s) (get out)
               || Value.to_string (get out) = s
            then None
            else fail "field %s is computed and not updatable" field)
        | Some (t, c) -> (
          let schema = Table.schema (Database.get_table db t) in
          let ty = col_type schema c in
          match xml_field_value xml field with
          | None -> fail "replacement is missing field %s" field
          | Some s ->
            let nv = value_of_text ty s in
            let ov = get out in
            if Value.equal nv ov then None
            else if t = anchor then Some (c, ov, nv)
            else
              fail "field %s lives in table %s, not the level's anchor table %s" field t
                anchor))
    tree.Compile.fields

(* --- static side-effect analysis --- *)

(* The Project definition that constructs this level's elements — the one
   graph site allowed to depend on the changed columns.  Returns the
   Project's id, the constructor expression, and the Project's input (the
   operator the constructor's column references are resolved against). *)
let constructor_memo : (int, (int * Expr.t * Op.t) option) Hashtbl.t = Hashtbl.create 16

let constructor_def (tree : Compile.view_tree) =
  let rec find (op : Op.t) =
    match op.Op.node with
    | Op.Project { defs; input } -> (
      match List.assoc_opt tree.Compile.node_col defs with
      | Some (Expr.Elem _ as e) -> Some (op.Op.id, e, input)
      | _ -> find input)
    | Op.Select { input; _ } -> find input
    | _ -> None
  in
  let id = tree.Compile.op.Op.id in
  match Hashtbl.find_opt constructor_memo id with
  | Some r -> r
  | None ->
    let r = find tree.Compile.op in
    Hashtbl.add constructor_memo id r;
    r

let constructor_site (tree : Compile.view_tree) =
  Option.map (fun (id, _, _) -> (id, tree.Compile.node_col)) (constructor_def tree)

(* [None] = statically safe; [Some sites] = inconclusive, listing the
   dependent graph sites (fall through to the dynamic check). *)
let dependents_memo :
    (int * string * (int * string) * string list, string list) Hashtbl.t =
  Hashtbl.create 16

let static_unsafe (view : Compile.view) (tree : Compile.view_tree) lin ~table ~cols =
  let key_base =
    List.filter_map
      (fun k ->
        match lineage_base lin k with Some (t, c) when t = table -> Some c | _ -> None)
      tree.Compile.key
  in
  if List.exists (fun c -> List.mem c key_base) cols then
    Some [ "the change touches the level's key columns (node identity / order)" ]
  else
    match constructor_site tree with
    | None -> Some [ "could not locate the level's element constructor" ]
    | Some exempt -> (
      (* the dependency scan re-derives lineage at every graph site, so it
         dominates per-statement planning; the scan is pure in the (immutable)
         op graph and its parameters, so memoize per (root op, table, column
         set, exempt site) — repeated updates touching the same columns, the
         common case, pay it once *)
      let key =
        (view.Compile.tree.Compile.op.Op.id, table, exempt, List.sort_uniq compare cols)
      in
      let sites =
        match Hashtbl.find_opt dependents_memo key with
        | Some s -> s
        | None ->
          let s = Lineage.dependents ~table ~cols ~exempt view.Compile.tree.Compile.op in
          Hashtbl.add dependents_memo key s;
          s
      in
      match sites with
      | [] -> None
      | sites -> Some sites)

(* --- hypothetical-future evaluation --- *)

(* Ra_eval reconstructs the "old" state of a table as (current \ Δ) ∪ ∇.
   Feeding the rows a plan removes as Δ and the rows it adds as ∇ therefore
   makes the *future* state readable through Pre bindings — no base table is
   touched to verify a translation. *)
let future_ctx db ops =
  let tbl : (string, Value.t array list * Value.t array list) Hashtbl.t = Hashtbl.create 4 in
  let add table ~removed ~added =
    let r, a = Option.value ~default:([], []) (Hashtbl.find_opt tbl table) in
    Hashtbl.replace tbl table (removed @ r, added @ a)
  in
  List.iter
    (function
      | Ins { table; row } -> add table ~removed:[] ~added:[ row ]
      | Upd { table; before; after; _ } -> add table ~removed:[ before ] ~added:[ after ]
      | Del { table; row; _ } -> add table ~removed:[ row ] ~added:[])
    ops;
  let trans = Hashtbl.fold (fun t (r, a) acc -> (t, (r, a)) :: acc) tbl [] in
  ({ (Ra_eval.ctx_of_db db) with Ra_eval.trans }, List.map fst trans)

let future_eval db ops op =
  let ctx, touched = future_ctx db ops in
  let op = List.fold_left (fun o t -> Op.to_old ~table:t o) op touched in
  Eval.eval ctx op

let current_doc db view = Compile.materialize (Ra_eval.ctx_of_db db) view

let future_doc db view ops =
  let rel = future_eval db ops view.Compile.tree.Compile.op in
  match rel.Eval.rows with
  | [ row ] -> (
    match row.(Eval.col_index rel view.Compile.tree.Compile.node_col) with
    | Xval.Node n -> n
    | v -> fail "future document evaluated to %s" (Xval.to_string v))
  | rows -> fail "future document evaluated to %d rows" (List.length rows)

(* --- structural document edits (the expected outcome) --- *)

let rec replace_first node ~target ~repl =
  if Xml.equal node target then (repl, true)
  else
    match node with
    | Xml.Text _ -> (node, false)
    | Xml.Element { tag; attrs; children } ->
      let rec go acc found = function
        | [] -> (List.rev acc, found)
        | c :: rest ->
          if found then go (c :: acc) found rest
          else
            let c', f = replace_first c ~target ~repl in
            go (c' :: acc) f rest
      in
      let children, found = go [] false children in
      (Xml.elem ~attrs tag children, found)

let rec remove_first node ~target =
  match node with
  | Xml.Text _ -> (node, false)
  | Xml.Element { tag; attrs; children } ->
    let rec go acc found = function
      | [] -> (List.rev acc, found)
      | c :: rest ->
        if found then go (c :: acc) found rest
        else if Xml.equal c target then go acc true rest
        else
          let c', f = remove_first c ~target in
          go (c' :: acc) f rest
    in
    let children, found = go [] false children in
    (Xml.elem ~attrs tag children, found)

(* Whether [target] occurs in [doc] (structural equality).  The level
   relation can contain rows whose nodes never reach the document — an
   ancestor level's predicate (a count() WHERE, say) can hide the whole
   subtree — and such rows are not valid view-DML targets. *)
let rec node_occurs doc ~target =
  Xml.equal doc target
  ||
  match doc with
  | Xml.Text _ -> false
  | Xml.Element { children; _ } -> List.exists (fun c -> node_occurs c ~target) children

(* [f] must equal [c] up to exactly one extra node somewhere below; returns
   the added node.  Any other difference — a second addition, a modified
   sibling, a changed attribute (e.g. an exposed count) — is a side effect. *)
let rec diff_one_insert c f =
  if Xml.equal c f then `Same
  else
    match (c, f) with
    | Xml.Element ce, Xml.Element fe when ce.tag = fe.tag && ce.attrs = fe.attrs ->
      let nc = List.length ce.children and nf = List.length fe.children in
      if nf = nc + 1 then
        let rec try_at i =
          if i >= nf then `Mismatch
          else
            let without = List.filteri (fun j _ -> j <> i) fe.children in
            if List.for_all2 Xml.equal ce.children without then
              `Added (List.nth fe.children i)
            else try_at (i + 1)
        in
        try_at 0
      else if nf = nc then
        let rec go cs fs =
          match (cs, fs) with
          | [], [] -> `Mismatch
          | cc :: cr, fc :: fr ->
            if Xml.equal cc fc then go cr fr
            else if List.length cr = List.length fr && List.for_all2 Xml.equal cr fr then
              diff_one_insert cc fc
            else `Mismatch
          | _ -> `Mismatch
        in
        go ce.children fe.children
      else `Mismatch
    | _ -> `Mismatch

(* --- foreign-key cascade (deepest first) --- *)

let fk_dependents db table =
  List.filter_map
    (fun tname ->
      match Database.find_table db tname with
      | None -> None
      | Some tbl ->
        let s = Table.schema tbl in
        let fks = List.filter (fun fk -> fk.Schema.fk_table = table) s.Schema.foreign_keys in
        if fks = [] then None else Some (tname, s, fks))
    (Database.table_names db)

(* Deleting a base row must also delete the rows referencing it — the
   node's view subtree — in dependency order (recovery's invariant check
   flags orphaned foreign keys). *)
let cascade_deletes db table row =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go table row =
    let schema = Table.schema (Database.get_table db table) in
    let pk = Schema.pk_of_row schema row in
    if not (Hashtbl.mem seen (table, pk)) then begin
      Hashtbl.add seen (table, pk) ();
      List.iter
        (fun (utable, uschema, fks) ->
          let utbl = Database.get_table db utable in
          List.iter
            (fun fk ->
              let ref_vals =
                List.map (fun c -> row.(Schema.col_index schema c)) fk.Schema.fk_ref_columns
              in
              let idxs = List.map (Schema.col_index uschema) fk.Schema.fk_columns in
              let matches urow =
                List.for_all2 (fun i v -> Value.equal urow.(i) v) idxs ref_vals
              in
              let rows =
                match (fk.Schema.fk_columns, ref_vals) with
                | [ c ], [ v ] when Table.has_index utbl c ->
                  Table.lookup utbl ~column:c v
                | _ -> List.filter matches (Table.to_rows utbl)
              in
              List.iter (fun urow -> if matches urow then go utable urow) rows)
            fks)
        (fk_dependents db table);
      acc := Del { table; pk; row } :: !acc
    end
  in
  go table row;
  List.rev !acc

let dedupe_ops ops =
  let key = function
    | Ins { table; row } -> (table, "I", Array.to_list row)
    | Upd { table; pk; _ } -> (table, "U", pk)
    | Del { table; pk; _ } -> (table, "D", pk)
  in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun op ->
      let k = key op in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    ops

(* --- rendering --- *)

let row_to_string row =
  String.concat ", " (List.map Value.to_sql_literal (Array.to_list row))

let base_op_to_string = function
  | Ins { table; row } -> Printf.sprintf "INSERT INTO %s VALUES (%s)" table (row_to_string row)
  | Upd { table; pk; before; after } ->
    let sets = ref [] in
    Array.iteri
      (fun i v ->
        if not (Value.equal v after.(i)) then
          sets := Printf.sprintf "col%d: %s -> %s" i (Value.to_sql_literal v)
                    (Value.to_sql_literal after.(i)) :: !sets)
      before;
    Printf.sprintf "UPDATE %s SET {%s} WHERE PRIMARY KEY = (%s)" table
      (String.concat "; " (List.rev !sets))
      (String.concat ", " (List.map Value.to_sql_literal pk))
  | Del { table; pk; _ } ->
    Printf.sprintf "DELETE FROM %s WHERE PRIMARY KEY = (%s)" table
      (String.concat ", " (List.map Value.to_sql_literal pk))

(* Column-named rendering when the schema is at hand (explain output). *)
let base_op_render db = function
  | Ins { table; row } ->
    let schema = Table.schema (Database.get_table db table) in
    Printf.sprintf "INSERT INTO %s (%s) VALUES (%s)" table
      (String.concat ", " (Schema.column_names schema))
      (row_to_string row)
  | Upd { table; pk; before; after } ->
    let schema = Table.schema (Database.get_table db table) in
    let names = Array.of_list (Schema.column_names schema) in
    let sets = ref [] in
    Array.iteri
      (fun i v ->
        if not (Value.equal v after.(i)) then
          sets :=
            Printf.sprintf "%s = %s" names.(i) (Value.to_sql_literal after.(i)) :: !sets)
      before;
    let where =
      List.map2
        (fun c v -> Printf.sprintf "%s = %s" c (Value.to_sql_literal v))
        schema.Schema.primary_key pk
    in
    Printf.sprintf "UPDATE %s SET %s WHERE %s" table
      (String.concat ", " (List.rev !sets))
      (String.concat " AND " where)
  | Del { table; pk; _ } ->
    let schema = Table.schema (Database.get_table db table) in
    let where =
      List.map2
        (fun c v -> Printf.sprintf "%s = %s" c (Value.to_sql_literal v))
        schema.Schema.primary_key pk
    in
    Printf.sprintf "DELETE FROM %s WHERE %s" table (String.concat " AND " where)

let render_diagnostic d =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "rejected: %s" d.d_reason;
  line "  statement : %s" d.d_stmt;
  line "  view      : %S, level %s" d.d_view d.d_level;
  if d.d_table <> "" then line "  table     : %s" d.d_table;
  (match d.d_candidates with
  | [] -> ()
  | cs ->
    line "  candidate base rows (%d):" (List.length cs);
    List.iter (fun (t, row) -> line "    - %s(%s)" t (row_to_string row)) cs);
  (match d.d_side_effects with
  | [] -> ()
  | ss ->
    line "  side effects:";
    List.iter (fun s -> line "    - %s" s) ss);
  if d.d_candidates <> [] then
    line
      "  hint: a per-view strategy (Viewupdate.set_strategy / CLI update-strategy) can \
       resolve ambiguous updates";
  Buffer.contents buf

let render_plan_with ~render_op p =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "view-update plan: %s" p.p_text;
  line "  view      : %S, level %s (%d node%s)" p.p_view p.p_level p.p_targets
    (if p.p_targets = 1 then "" else "s");
  if p.p_anchor <> "" then line "  anchor    : table %s" p.p_anchor;
  List.iter (fun v -> line "  verdict   : %s" v) p.p_verdict;
  (match p.p_ops with
  | [] -> line "  base DML  : (none — the statement is a no-op)"
  | ops ->
    line "  base DML  :";
    List.iter (fun op -> line "    %s" (render_op op)) ops);
  Buffer.contents buf

let render_plan p = render_plan_with ~render_op:base_op_to_string p

(* --- the planner --- *)

let apply_changes schema changes row =
  let row = Array.copy row in
  List.iter (fun (c, _, nv) -> row.(Schema.col_index schema c) <- nv) changes;
  row

let injectivity_verdict db (view : Compile.view) table =
  let schema_of name = Table.schema (Database.get_table db name) in
  Printf.sprintf "injectivity w.r.t. %s: %s" table
    (Xqgm.Injective.verdict_to_string
       (Xqgm.Injective.analyze ~table ~schema_of view.Compile.tree.Compile.op))

(* Strategy resolution: hand the candidates to the view's hook, or reject
   with the full diagnostic. *)
let resolve_ambiguity strat amb ~diagnostic =
  match strat with
  | Reject_ambiguous -> raise (Rejected (diagnostic ()))
  | First_candidate -> (
    match amb.amb_candidates with
    | [] -> raise (Rejected (diagnostic ()))
    | r :: _ -> ([ r ], "ambiguity resolved by strategy first-candidate"))
  | All_candidates -> (
    match amb.amb_candidates with
    | [] -> raise (Rejected (diagnostic ()))
    | rs -> (rs, "ambiguity resolved by strategy all-candidates"))
  | Custom f -> (
    match f amb with
    | Some rows when rows <> [] -> (rows, "ambiguity resolved by custom strategy hook")
    | _ -> raise (Rejected (diagnostic ())))

(* Locate the unique base row behind an anchored target tuple. *)
let anchored_row db ~table ~pk_slots (get : string -> Value.t) =
  let pk = List.map (fun (_, out) -> get out) pk_slots in
  match Table.find_pk (Database.get_table db table) pk with
  | Some row -> row
  | None -> fail "the node's base row vanished from %s during planning" table

(* Shared: pick the base rows a target tuple maps to, via anchor or
   strategy-resolved candidates.  Returns (table, schema, rows, verdict). *)
let rows_for_target db view strat stmt_text level_str tree lin
    (get : string -> Value.t) (get_opt : string -> Xval.t option) =
  match anchor_of_level db tree with
  | Anchored { table; schema; pk_slots } ->
    (table, schema, [ anchored_row db ~table ~pk_slots get ],
     Printf.sprintf "anchored: level key pins one %s row by primary key" table)
  | Unanchored { table = Some table; schema = Some schema; reason } -> (
    let cands = candidate_rows db ~table lin get_opt in
    match cands with
    | [ row ] ->
      (table, schema, [ row ],
       Printf.sprintf "not key-anchored (%s), but a single %s row matches the node" reason
         table)
    | _ ->
      let amb =
        { amb_stmt = stmt_text;
          amb_view = view.Compile.view_name;
          amb_level = level_str;
          amb_table = table;
          amb_schema = schema;
          amb_candidates = cands;
        }
      in
      let diagnostic () =
        { d_stmt = stmt_text;
          d_view = view.Compile.view_name;
          d_level = level_str;
          d_table = table;
          d_reason =
            Printf.sprintf "ambiguous update: %s; %d candidate rows of %s match the node"
              reason (List.length cands) table;
          d_candidates = List.map (fun r -> (table, r)) cands;
          d_side_effects = [];
        }
      in
      let rows, verdict = resolve_ambiguity strat amb ~diagnostic in
      (table, schema, rows, verdict))
  | Unanchored { table; schema = _; reason } ->
    raise
      (Rejected
         { d_stmt = stmt_text;
           d_view = view.Compile.view_name;
           d_level = level_str;
           d_table = (match table with Some t -> t | None -> "");
           d_reason = Printf.sprintf "the targeted level maps to no unique base row: %s" reason;
           d_candidates = [];
           d_side_effects = [];
         })

let reject_side_effects ~stmt_text ~view ~level_str ~table ~sides =
  raise
    (Rejected
       { d_stmt = stmt_text;
         d_view = view.Compile.view_name;
         d_level = level_str;
         d_table = table;
         d_reason = "the translated statements would change untargeted view nodes";
         d_candidates = [];
         d_side_effects = sides;
       })

(* Expected key values of the replaced node in the future state. *)
let expected_future_key tree lin ~table changes (get : string -> Value.t) =
  List.map
    (fun k ->
      match lineage_base lin k with
      | Some (t, c) when t = table -> (
        match List.find_opt (fun (c', _, _) -> c' = c) changes with
        | Some (_, _, nv) -> (k, nv)
        | None -> (k, get k))
      | _ -> (k, get k))
    tree.Compile.key

(* Find the level row with the given key values in a (future) evaluation. *)
let find_level_row rel (key_vals : (string * Value.t) list) =
  let idx = List.map (fun (k, v) -> (Eval.col_index rel k, v)) key_vals in
  List.find_opt
    (fun row ->
      List.for_all
        (fun (i, v) ->
          match row.(i) with Xval.Atom a -> Value.equal a v | _ -> false)
        idx)
    rel.Eval.rows

(* -- REPLACE -- *)

(* Fast path: a leaf-level REPLACE whose final-step predicate is a
   conjunction of field equalities resolvable to anchor-table columns skips
   the level evaluation entirely — target rows come straight off the base
   table (by primary key or index), and the static dependency check makes
   document materialization unnecessary.  This is what keeps view-DML
   within a few percent of direct base DML on the Table-2 workload. *)
let pred_constraints (pred : Ast.expr option) =
  let rec field_of (p : Ast.path) =
    match (p.Ast.root, p.Ast.steps) with
    | Ast.R_var ".", [ { Ast.axis = Ast.Attribute; name; predicate = None } ] ->
      Some ("@" ^ name)
    | Ast.R_var ".", [ { Ast.axis = Ast.Child; name; predicate = None } ] -> Some name
    | _ -> None
  and go = function
    | Ast.And (a, b) -> (
      match (go a, go b) with Some x, Some y -> Some (x @ y) | _ -> None)
    | Ast.Cmp (Ast.Eq, Ast.Path p, Ast.Lit v) | Ast.Cmp (Ast.Eq, Ast.Lit v, Ast.Path p) -> (
      match field_of p with Some f -> Some [ (f, v) ] | None -> None)
    | _ -> None
  in
  match pred with None -> None | Some e -> go e

(* Shredding a level op is pure in the op (ops are immutable, ids are
   process-unique), so the result is memoized across statements — the
   fast path's visibility probes pay planner work once per view level. *)
let shred_memo : (int, Pushdown.t option) Hashtbl.t = Hashtbl.create 16

let shred_of (op : Op.t) =
  match Hashtbl.find_opt shred_memo op.Op.id with
  | Some r -> r
  | None ->
    let r = try Some (Pushdown.shred op) with Pushdown.Not_pushable _ -> None in
    Hashtbl.add shred_memo op.Op.id r;
    r

(* A probe asks whether a level has a row matching some key values.  The
   restricted plan is built and physically planned ONCE per (database,
   level op, key column set) — {!Ra_opt.push_semijoin} over the shredded
   scalar plan with the keys delivered through a [Ra.Rel] binding, the same
   parameterized-semijoin trick the trigger path uses for fragment
   restriction — so the per-statement cost is a few index accesses, not
   plan construction.  (The memo holds the database of each entry to keep
   compiled table handles honest; entries of abandoned runtimes are shed
   when the op id is next probed.) *)
type probe = {
  pr_rel : string;  (* the [Ra.Rel] binding name carrying the key values *)
  pr_run : Ra_eval.ctx -> Ra_eval.rel;
}

let probe_memo : (int, (Database.t * string list * probe) list) Hashtbl.t =
  Hashtbl.create 16

let probe_name =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "vuprobe$%d" !n

let probe_for db (tree : Compile.view_tree) kcols =
  match shred_of tree.Compile.op with
  | None -> None
  | Some sh ->
    let plan_cols = Ra.columns sh.Pushdown.plan in
    if kcols = [] || not (List.for_all (fun c -> List.mem c plan_cols) kcols) then None
    else begin
      let id = tree.Compile.op.Op.id in
      let entries = Option.value ~default:[] (Hashtbl.find_opt probe_memo id) in
      match List.find_opt (fun (db', ks, _) -> db' == db && ks = kcols) entries with
      | Some (_, _, p) -> Some p
      | None ->
        let name = probe_name () in
        let plan =
          Ra_opt.push_semijoin
            ~keys:(Ra.Scan (Ra.Rel name, List.map (fun c -> (c, c)) kcols))
            ~on:(List.map (fun c -> (c, c)) kcols)
            sh.Pushdown.plan
        in
        let run =
          match Ra_compile.compile db plan with
          | exec -> fun ctx -> Ra_compile.exec exec ctx
          | exception (Not_found | Invalid_argument _) ->
            fun ctx -> Ra_eval.eval ctx plan
        in
        let p = { pr_rel = name; pr_run = run } in
        let entries = List.filter (fun (db', _, _) -> db' == db) entries in
        Hashtbl.replace probe_memo id ((db, kcols, p) :: entries);
        Some p
    end

(* Does the level have a row matching [keys]?  [None] = cannot decide here
   (unshreddable op, or a key column missing from the scalar plan);
   [Some None] = no such row; [Some (Some (cols, row))] = the first
   matching row's scalar columns. *)
let level_probe db (tree : Compile.view_tree) (keys : (string * Value.t) list) =
  match probe_for db tree (List.map fst keys) with
  | None -> None
  | Some p ->
    let krel =
      { Ra_eval.cols = Array.of_list (List.map fst keys);
        rows = [ Array.of_list (List.map snd keys) ];
      }
    in
    let ctx = { (Ra_eval.ctx_of_db db) with Ra_eval.rels = [ (p.pr_rel, krel) ] } in
    let rel = p.pr_run ctx in
    (match rel.Ra_eval.rows with
    | [] -> Some None
    | row :: _ -> Some (Some (rel.Ra_eval.cols, row)))

(* Whether every row of the anchor [table] reaches the level relation — the
   shredded level plan applies no filter to the anchor's rows: no Select,
   and the anchor reached only through Project / Distinct / Order_by /
   Shared and the LEFT side of left-outer joins.  For such a level, a
   node's visibility in the level relation is exactly base-row existence,
   so visibility checks can replace the compiled probe with a primary-key
   lookup.  (Left-outer right sides may duplicate left rows; that affects
   multiplicity, never existence, which is all the callers ask.) *)
let rec anchor_preserving ~table (plan : Ra.t) =
  match plan with
  | Ra.Scan (Ra.Base t, _) -> t = table
  | Ra.Project (_, p) | Ra.Distinct p | Ra.Order_by (_, p) | Ra.Shared (_, p) ->
    anchor_preserving ~table p
  | Ra.Join (Ra.Left_outer, _, l, _) -> anchor_preserving ~table l
  | _ -> false

(* Column equivalences induced by the plan's join equalities and renames:
   after [t2.parent = t1.id] the child-side correlation column carries the
   ancestor's key, but lineage deliberately reports each side's own source
   — the existence shortcut must cross that equality to reach the anchor's
   primary key. *)
let rec plan_equalities (plan : Ra.t) acc =
  match plan with
  | Ra.Scan _ | Ra.Values _ -> acc
  | Ra.Select (_, p)
  | Ra.Distinct p
  | Ra.Order_by (_, p)
  | Ra.Shared (_, p)
  | Ra.Group_by (_, _, p) ->
    plan_equalities p acc
  | Ra.Project (defs, p) ->
    let acc =
      List.fold_left
        (fun acc (out, e) ->
          match e with Ra.Col src when src <> out -> (out, src) :: acc | _ -> acc)
        acc defs
    in
    plan_equalities p acc
  | Ra.Join (_, pred, l, r) ->
    let rec eqs e acc =
      match e with
      | Ra.Binop (Ra.And, a, b) -> eqs a (eqs b acc)
      | Ra.Binop (Ra.Eq, Ra.Col a, Ra.Col b) -> (a, b) :: acc
      | _ -> acc
    in
    plan_equalities l (plan_equalities r (eqs pred acc))
  | Ra.Union { inputs; _ } ->
    List.fold_left (fun acc p -> plan_equalities p acc) acc inputs

let equalities_memo : (int, (string * string) list) Hashtbl.t = Hashtbl.create 16

let level_equalities (tree : Compile.view_tree) =
  let id = tree.Compile.op.Op.id in
  match Hashtbl.find_opt equalities_memo id with
  | Some e -> e
  | None ->
    let e =
      match shred_of tree.Compile.op with
      | None -> []
      | Some sh -> plan_equalities sh.Pushdown.plan []
    in
    Hashtbl.add equalities_memo id e;
    e

let equiv_class eqs c =
  let rec go frontier seen =
    match frontier with
    | [] -> List.rev seen
    | x :: rest ->
      if List.mem x seen then go rest seen
      else
        let nbrs =
          List.filter_map
            (fun (a, b) ->
              if a = x then Some b else if b = x then Some a else None)
            eqs
        in
        go (nbrs @ rest) (x :: seen)
  in
  go [ c ] []

(* Does the level relation trivially contain the rows of its anchor table
   (see {!anchor_preserving})?  Memoized per level op. *)
let filter_free_memo : (int, bool) Hashtbl.t = Hashtbl.create 16

let level_filter_free (tree : Compile.view_tree) ~table =
  let id = tree.Compile.op.Op.id in
  match Hashtbl.find_opt filter_free_memo id with
  | Some b -> b
  | None ->
    let b =
      match shred_of tree.Compile.op with
      | None -> false
      | Some sh -> anchor_preserving ~table sh.Pushdown.plan
    in
    Hashtbl.add filter_free_memo id b;
    b

(* Primary-key shortcut for filter-free ancestors: when the ancestor level
   keeps every row of its anchor table, its node for [corr] is visible iff
   the anchor row exists — one hashtable lookup instead of running the
   compiled probe (which for grouped ancestors re-aggregates the whole
   subtree per statement).  [None] = not applicable here, use the probe;
   [Some None] = no such row; [Some (Some corr')] = visible, with the
   ancestor's own correlation values for the next link of the chain. *)
let fast_ancestor_visible db (a : Compile.view_tree) (corr : (string * Value.t) list) =
  match anchor_of_level db a with
  | Unanchored _ -> None
  | Anchored { table; schema; _ } ->
    if not (level_filter_free a ~table) then None
    else
      let lin = lin_of a.Compile.op in
      let eqs = level_equalities a in
      let base_of c =
        List.find_map
          (fun c' ->
            match lineage_base lin c' with
            | Some (t, bc) when t = table -> Some bc
            | _ -> None)
          (equiv_class eqs c)
      in
      let base_kv =
        List.filter_map
          (fun (c, v) -> Option.map (fun bc -> (bc, v)) (base_of c))
          corr
      in
      if
        not
          (List.for_all
             (fun pk -> List.mem_assoc pk base_kv)
             schema.Schema.primary_key)
      then None
      else
        let pk = List.map (fun c -> List.assoc c base_kv) schema.Schema.primary_key in
        (match Table.find_pk (Database.get_table db table) pk with
        | None -> Some None
        | Some row ->
          let corr' =
            List.filter_map
              (fun c ->
                Option.map
                  (fun bc -> (c, row.(Schema.col_index schema bc)))
                  (base_of c))
              a.Compile.corr
          in
          if List.length corr' <> List.length a.Compile.corr then None
          else Some (Some corr'))

(* Ancestors of [tree] inside [view], nearest first (the document root
   comes last); [tree] itself is excluded. *)
let ancestor_chain (view : Compile.view) (tree : Compile.view_tree) =
  let rec go t acc =
    if t == tree then Some acc
    else List.find_map (fun c -> go c (t :: acc)) t.Compile.children
  in
  Option.value ~default:[] (go view.Compile.tree [])

(* Whether the ancestor chain above a level row renders — i.e. whether the
   row's node actually reaches the document.  [corr] carries the child's
   correlation values linking it to the nearest ancestor; each verified
   ancestor hands its own correlation values up the chain.  An empty [corr]
   means the level iterates at the top of the document, under the root
   element, which always renders its single row.  [Some b] = decided;
   [None] = undecidable here (callers fall back to a document check). *)
let rec chain_visible db chain (corr : (string * Value.t) list) =
  match (chain, corr) with
  | [], _ -> Some true
  | [ _root ], [] -> Some true
  | _, [] -> None
  | a :: rest, _ -> (
    match fast_ancestor_visible db a corr with
    | Some None -> Some false
    | Some (Some corr') -> chain_visible db rest corr'
    | None -> probe_ancestor db a rest corr)

and probe_ancestor db a rest corr =
  match level_probe db a corr with
  | None -> None
  | Some None -> Some false
  | Some (Some (cols, row)) ->
    let corr' =
      List.filter_map
        (fun c ->
          let rec idx i =
            if i >= Array.length cols then None
            else if cols.(i) = c then Some (c, row.(i))
            else idx (i + 1)
          in
          idx 0)
        a.Compile.corr
    in
    if List.length corr' <> List.length a.Compile.corr then None
    else chain_visible db rest corr'

(* Renders the level element for one base row straight from the level's
   constructor expression, mirroring {!Eval}'s [Elem] semantics (attribute
   values atomize and drop NULLs; atom children become text nodes).  Covers
   the Col/Const/Elem fragment the compiler emits for levels whose columns
   all copy the anchor table; [None] = unsupported shape. *)
let render_node_of_row ~table ~schema lin row (elem : Expr.t) =
  let rec all f = function
    | [] -> Some []
    | x :: rest -> (
      match f x with
      | None -> None
      | Some y -> Option.map (fun ys -> y :: ys) (all f rest))
  in
  let rec go e =
    match e with
    | Expr.Const v -> Some (Xval.Atom v)
    | Expr.Col c -> (
      match lineage_base lin c with
      | Some (t, bc) when t = table ->
        Some (Xval.Atom row.(Schema.col_index schema bc))
      | _ -> None)
    | Expr.Elem { tag; attrs; content } ->
      Option.bind (all (fun (k, e) -> Option.map (fun v -> (k, v)) (go e)) attrs)
        (fun avs ->
          Option.map
            (fun cvs ->
              let attrs =
                List.filter_map
                  (fun (k, v) ->
                    match Xval.atomize v with
                    | Value.Null -> None
                    | a -> Some (k, Value.to_string a))
                  avs
              in
              Xval.Node (Xml.elem ~attrs tag (List.concat_map Xval.to_nodes cvs)))
            (all go content))
    | _ -> None
  in
  match go elem with Some (Xval.Node n) -> Some n | _ -> None

let try_fast_replace db view tree pred xml text level_str =
  match anchor_of_level db tree with
  | Unanchored _ -> None
  | Anchored { table; schema; pk_slots } -> (
    let lin = lin_of tree.Compile.op in
    let all_fields_anchored =
      List.for_all
        (fun (f, out) ->
          is_count_field f
          || match lineage_base lin out with Some (t, _) -> t = table | None -> false)
        tree.Compile.fields
    in
    if tree.Compile.children <> [] || not all_fields_anchored then None
    else
      match pred_constraints pred with
      | None -> None
      | Some cs -> (
        (* field constraints -> base-column constraints *)
        let base_cs =
          List.map
            (fun (f, v) ->
              match List.assoc_opt f tree.Compile.fields with
              | None -> raise Exit
              | Some out -> (
                match lineage_base lin out with
                | Some (t, c) when t = table -> (c, coerce (col_type schema c) v)
                | _ -> raise Exit))
            cs
        in
        match
          (let covers_pk =
             List.for_all (fun c -> List.mem_assoc c base_cs) schema.Schema.primary_key
           in
           let tbl = Database.get_table db table in
           let matches row =
             List.for_all
               (fun (c, v) -> Value.equal row.(Schema.col_index schema c) v)
               base_cs
           in
           if covers_pk then
             let pk = List.map (fun c -> List.assoc c base_cs) schema.Schema.primary_key in
             match Table.find_pk tbl pk with
             | Some row when matches row -> [ row ]
             | _ -> []
           else
             match
               List.find_opt (fun (c, _) -> Table.has_index tbl c) base_cs
             with
             | Some (c, v) -> List.filter matches (Table.lookup tbl ~column:c v)
             | None -> List.filter matches (Table.to_rows tbl))
        with
        | [] -> fail "no node matches the path"
        | _ :: _ :: _ -> None (* ambiguous: let the generic path build the diagnostic *)
        | [ row ] -> (
          (* the base row alone does not prove the node is in the view: the
             level's own predicates and any ancestor level's (say a count()
             WHERE on the parent) must hold.  Probe the level relation and
             the ancestor chain through the pushdown engine — index probes,
             not scans; anything undecidable falls back to the generic
             path's document check (Exit). *)
          (* the row is known to exist, so a filter-free level needs no probe *)
          (if not (level_filter_free tree ~table) then
             let probe_keys =
               List.map (fun (c, out) -> (out, row.(Schema.col_index schema c))) pk_slots
             in
             match level_probe db tree probe_keys with
             | None -> raise Exit
             | Some None ->
               fail "no node matches the path (a level predicate excludes the node \
                     from the view)"
             | Some (Some _) -> ());
          let corr_vals =
            List.map
              (fun c ->
                match lineage_base lin c with
                | Some (t, bc) when t = table -> (c, row.(Schema.col_index schema bc))
                | _ -> raise Exit)
              tree.Compile.corr
          in
          (match chain_visible db (ancestor_chain view tree) corr_vals with
          | None -> raise Exit
          | Some false ->
            fail "no node matches the path (an ancestor level's predicate hides the \
                  node from the view)"
          | Some true -> ());
          (* the replacement must pass the same shape check as the generic
             path, against the node this row currently renders *)
          let old_node =
            match constructor_def tree with
            | None -> raise Exit
            | Some (_, elem, input) -> (
              match
                render_node_of_row ~table ~schema (lin_of input) row elem
              with
              | Some n -> n
              | None -> raise Exit)
          in
          check_replace_shape tree ~old_node xml;
          let get out =
            match lineage_base lin out with
            | Some (t, c) when t = table -> row.(Schema.col_index schema c)
            | _ -> raise Exit
          in
          let changes = replace_changes db ~anchor:table lin tree ~get xml in
          if changes = [] then
            Some
              { p_text = text;
                p_view = view.Compile.view_name;
                p_level = level_str;
                p_anchor = table;
                p_targets = 1;
                p_verdict = [ "no-op: every field already has the given value" ];
                p_ops = [];
              }
          else
            match
              static_unsafe view tree lin ~table
                ~cols:(List.map (fun (c, _, _) -> c) changes)
            with
            | Some _ -> None (* fall back to the dynamic differential check *)
            | None ->
              let after = apply_changes schema changes row in
              Some
                { p_text = text;
                  p_view = view.Compile.view_name;
                  p_level = level_str;
                  p_anchor = table;
                  p_targets = 1;
                  p_verdict =
                    [ "anchored: level key pins one row by primary key";
                      "statically safe: the changed columns feed only this node's constructor";
                    ];
                  p_ops = [ Upd { table; pk = Schema.pk_of_row schema row; before = row; after } ];
                })))

let plan_replace db view strat path xml text =
  if path.Ast.steps = [] then fail "the document element cannot be replaced";
  let last = List.nth path.Ast.steps (List.length path.Ast.steps - 1) in
  let m = monitored_of view path in
  let tree = m.Compose.m_tree in
  let level_str = level_path view tree in
  match
    try try_fast_replace db view tree last.Ast.predicate xml text level_str
    with Exit -> None
  with
  | Some p -> p
  | None -> (
    let targets = eval_targets db m ~where:None in
    match targets with
    | [] -> fail "no node matches %s" (Ast.path_to_string path)
    | _ :: _ :: _ ->
      fail "REPLACE targets %d nodes; the path must select exactly one"
        (List.length targets)
    | [ tgt ] ->
      check_replace_shape tree ~old_node:tgt.t_node xml;
      (* the level relation can hold rows an ancestor level's predicate
         hides from the document; those are not valid REPLACE targets *)
      let cdoc = current_doc db view in
      if not (node_occurs cdoc ~target:tgt.t_node) then
        fail "no node matches %s: the targeted node is not in the view document (an \
              ancestor level's predicate hides it)"
          (Ast.path_to_string path);
      let lin = lin_of tree.Compile.op in
      let get_opt out = List.assoc_opt out tgt.t_row in
      let get out =
        match get_opt out with
        | Some v -> Xval.atomize v
        | None -> fail "level has no column %S" out
      in
      let table, schema, rows, how =
        rows_for_target db view strat text level_str tree lin get get_opt
      in
      let changes = replace_changes db ~anchor:table lin tree ~get xml in
      if changes = [] then
        { p_text = text;
          p_view = view.Compile.view_name;
          p_level = level_str;
          p_anchor = table;
          p_targets = 1;
          p_verdict = [ how; "no-op: every field already has the given value" ];
          p_ops = [];
        }
      else begin
        let ops =
          List.map
            (fun row ->
              Upd
                { table;
                  pk = Schema.pk_of_row schema row;
                  before = row;
                  after = apply_changes schema changes row;
                })
            rows
        in
        let cols = List.map (fun (c, _, _) -> c) changes in
        let verdict =
          match static_unsafe view tree lin ~table ~cols with
          | None ->
            [ how;
              "statically safe: the changed columns feed only this node's constructor";
            ]
          | Some sites ->
            (* dynamic differential check over the hypothetical future state *)
            let fdoc = future_doc db view ops in
            let frel = future_eval db ops tree.Compile.op in
            let key_vals = expected_future_key tree lin ~table changes get in
            let new_node =
              match find_level_row frel key_vals with
              | Some row -> (
                match row.(Eval.col_index frel tree.Compile.node_col) with
                | Xval.Node n -> n
                | _ -> fail "future level row did not produce a node")
              | None ->
                reject_side_effects ~stmt_text:text ~view ~level_str ~table
                  ~sides:
                    ("the targeted node disappears from the view after the update"
                    :: sites)
            in
            let expected, found = replace_first cdoc ~target:tgt.t_node ~repl:new_node in
            if not found then
              (* unreachable after the occurrence check above; defensive *)
              reject_side_effects ~stmt_text:text ~view ~level_str ~table
                ~sides:("the targeted node is not visible in the view document" :: sites);
            if Xml.equal fdoc expected then
              [ how;
                "verified dynamically: only the targeted node re-renders (dependent sites \
                 checked by differential evaluation)";
              ]
            else
              reject_side_effects ~stmt_text:text ~view ~level_str ~table
                ~sides:
                  ("re-evaluating the view over the translated update changes more than \
                    the targeted node"
                  :: sites)
        in
        { p_text = text;
          p_view = view.Compile.view_name;
          p_level = level_str;
          p_anchor = table;
          p_targets = 1;
          p_verdict = injectivity_verdict db view table :: verdict;
          p_ops = ops;
        }
      end)

(* -- DELETE -- *)

let plan_delete db view strat path where text =
  if path.Ast.steps = [] then fail "the document element cannot be deleted";
  let m = monitored_of view path in
  let tree = m.Compose.m_tree in
  let level_str = level_path view tree in
  let targets = eval_targets db m ~where in
  if targets = [] then fail "no node matches %s" (Ast.path_to_string path);
  (* the level relation can hold rows an ancestor level's predicate hides
     from the document; path semantics are over the document, so those rows
     are not DELETE targets *)
  let cdoc = current_doc db view in
  let targets = List.filter (fun tgt -> node_occurs cdoc ~target:tgt.t_node) targets in
  if targets = [] then
    fail "no node matches %s: the matching nodes are not in the view document (an \
          ancestor level's predicate hides them)"
      (Ast.path_to_string path);
  let lin = lin_of tree.Compile.op in
  let anchor_desc = ref "" in
  let verdicts = ref [] in
  let ops =
    List.concat_map
      (fun tgt ->
        let get_opt out = List.assoc_opt out tgt.t_row in
        let get out =
          match get_opt out with
          | Some v -> Xval.atomize v
          | None -> fail "level has no column %S" out
        in
        let table, _, rows, how =
          rows_for_target db view strat text level_str tree lin get get_opt
        in
        anchor_desc := table;
        if not (List.mem how !verdicts) then verdicts := how :: !verdicts;
        List.concat_map (fun row -> cascade_deletes db table row) rows)
      targets
    |> dedupe_ops
  in
  (* dynamic verification: the future document must equal the current one
     with exactly the targeted nodes removed *)
  let fdoc = future_doc db view ops in
  let expected =
    List.fold_left
      (fun doc tgt ->
        let doc', found = remove_first doc ~target:tgt.t_node in
        if not found then
          (* unreachable after the occurrence filter above; defensive *)
          reject_side_effects ~stmt_text:text ~view ~level_str ~table:!anchor_desc
            ~sides:[ "a targeted node is not visible in the view document" ];
        doc')
      cdoc targets
  in
  if not (Xml.equal fdoc expected) then
    reject_side_effects ~stmt_text:text ~view ~level_str ~table:!anchor_desc
      ~sides:
        [ "re-evaluating the view over the translated deletes does not remove exactly \
           the targeted nodes (untargeted nodes change or a target stays visible)";
        ];
  { p_text = text;
    p_view = view.Compile.view_name;
    p_level = level_str;
    p_anchor = !anchor_desc;
    p_targets = List.length targets;
    p_verdict =
      injectivity_verdict db view !anchor_desc
      :: List.rev !verdicts
      @ [ "verified dynamically: the future document equals the current one minus the \
           targeted nodes" ];
    p_ops = ops;
  }

(* -- INSERT -- *)

let plan_insert db view strat into xml text =
  let m = monitored_of view into in
  let ptree = m.Compose.m_tree in
  let parents = eval_targets db m ~where:None in
  let parent =
    match parents with
    | [ p ] -> p
    | [] -> fail "no parent node matches %s" (Ast.path_to_string into)
    | ps -> fail "INSERT path matches %d parent nodes; it must select exactly one"
              (List.length ps)
  in
  let tag =
    match xml with
    | Xml.Element { tag; _ } -> tag
    | Xml.Text _ -> fail "the inserted node must be an element"
  in
  let tree =
    match List.find_opt (fun c -> c.Compile.elem_tag = tag) ptree.Compile.children with
    | Some t -> t
    | None ->
      fail "view %S has no <%s> level under <%s>" view.Compile.view_name tag
        ptree.Compile.elem_tag
  in
  let level_str = level_path view tree in
  check_insert_shape tree xml;
  let lin = lin_of tree.Compile.op in
  let build_row table schema =
    let row = Array.make (Schema.arity schema) Value.Null in
    let setc c v =
      let i = Schema.col_index schema c in
      if Value.is_null row.(i) then row.(i) <- v
      else if not (Value.equal row.(i) v) then
        fail "conflicting values for column %s of %s: %s vs %s" c table
          (Value.to_string row.(i)) (Value.to_string v)
    in
    List.iter
      (fun (field, out) ->
        if not (is_count_field field) then
          match lineage_base lin out with
          | Some (t, c) when t = table -> (
            match xml_field_value xml field with
            | Some s -> setc c (value_of_text (col_type schema c) s)
            | None -> ())
          | _ -> (
            match xml_field_value xml field with
            | Some _ ->
              fail "field %s of <%s> is derived from a joined table, not insertable"
                field tag
            | None -> ()))
      tree.Compile.fields;
    (* correlation columns inherit the parent's values (the join back to the
       parent level), e.g. the leaf's [parent] foreign key *)
    List.iter
      (fun corr ->
        match lineage_base lin corr with
        | Some (t, c) when t = table -> (
          match List.assoc_opt corr parent.t_row with
          | Some v -> setc c (Xval.atomize v)
          | None -> ())
        | _ -> ())
      tree.Compile.corr;
    (match Schema.validate_row schema row with
    | Ok () -> ()
    | Error msg -> fail "cannot build a %s row from <%s>: %s" table tag msg);
    (match Table.find_pk (Database.get_table db table) (Schema.pk_of_row schema row) with
    | Some _ -> fail "a %s row with this primary key already exists" table
    | None -> ());
    (* early foreign-key check: execution would reject it anyway, but here
       the message still has the XML-side context *)
    List.iter
      (fun fk ->
        let vals = List.map (fun c -> row.(Schema.col_index schema c)) fk.Schema.fk_columns in
        if not (List.exists Value.is_null vals) then
          match Database.find_table db fk.Schema.fk_table with
          | None -> ()
          | Some rtbl ->
            let rs = Table.schema rtbl in
            let ok =
              if fk.Schema.fk_ref_columns = rs.Schema.primary_key then
                Table.find_pk rtbl vals <> None
              else
                List.exists
                  (fun r ->
                    List.for_all2
                      (fun c v -> Value.equal r.(Schema.col_index rs c) v)
                      fk.Schema.fk_ref_columns vals)
                  (Table.to_rows rtbl)
            in
            if not ok then
              fail "foreign key (%s) -> %s has no matching row"
                (String.concat ", " fk.Schema.fk_columns)
                fk.Schema.fk_table)
      schema.Schema.foreign_keys;
    row
  in
  let table, schema, rows, how =
    match anchor_of_level db tree with
    | Anchored { table; schema; _ } ->
      (table, schema, [ build_row table schema ],
       Printf.sprintf "anchored: the new node becomes one %s row" table)
    | Unanchored { table; schema = _; reason } -> (
      let table' = match table with Some t -> t | None -> "" in
      let diagnostic () =
        { d_stmt = text;
          d_view = view.Compile.view_name;
          d_level = level_str;
          d_table = table';
          d_reason =
            Printf.sprintf "the <%s> level maps to no unique base row: %s" tag reason;
          d_candidates = [];
          d_side_effects = [];
        }
      in
      match (table, strat) with
      | Some t, Custom f -> (
        let schema = Table.schema (Database.get_table db t) in
        let amb =
          { amb_stmt = text;
            amb_view = view.Compile.view_name;
            amb_level = level_str;
            amb_table = t;
            amb_schema = schema;
            amb_candidates = [];
          }
        in
        match f amb with
        | Some rows when rows <> [] ->
          (t, schema, rows, "rows supplied by custom strategy hook")
        | _ -> raise (Rejected (diagnostic ())))
      | _ -> raise (Rejected (diagnostic ())))
  in
  let ops = List.map (fun row -> Ins { table; row }) rows in
  (* dynamic verification: exactly one node appears, it is the new node, and
     it sits under the targeted parent (correlation columns match) *)
  let fdoc = future_doc db view ops in
  let cdoc = current_doc db view in
  let verdict =
    match diff_one_insert cdoc fdoc with
    | `Same ->
      [ "the new row is not visible in the view (a level predicate filters it); the \
         document is unchanged";
      ]
    | `Mismatch ->
      reject_side_effects ~stmt_text:text ~view ~level_str ~table
        ~sides:
          [ "re-evaluating the view over the translated insert changes more than one \
             node (e.g. a sibling re-renders or another level's predicate flips)";
          ]
    | `Added n -> (
      let frel = future_eval db ops tree.Compile.op in
      let confirm row =
        let pk = Schema.pk_of_row schema row in
        let found =
          List.find_opt
            (fun frow ->
              match anchor_of_level db tree with
              | Anchored { pk_slots; _ } ->
                List.for_all2
                  (fun (_, out) v ->
                    match frow.(Eval.col_index frel out) with
                    | Xval.Atom a -> Value.equal a v
                    | _ -> false)
                  pk_slots pk
              | Unanchored _ -> true)
            frel.Eval.rows
        in
        match found with
        | None -> false
        | Some frow ->
          let node_ok =
            match frow.(Eval.col_index frel tree.Compile.node_col) with
            | Xval.Node nd -> Xml.equal nd n
            | _ -> false
          in
          let corr_ok =
            List.for_all
              (fun corr ->
                match
                  (List.assoc_opt corr parent.t_row, Eval.col_index frel corr)
                with
                | Some pv, i -> (
                  match frow.(i) with
                  | Xval.Atom a -> Value.equal a (Xval.atomize pv)
                  | v -> Xval.equal v pv)
                | None, _ -> true
                | exception Not_found -> true)
              tree.Compile.corr
          in
          node_ok && corr_ok
      in
      if List.exists confirm rows then
        [ "verified dynamically: exactly the new node appears, under the targeted parent" ]
      else
        reject_side_effects ~stmt_text:text ~view ~level_str ~table
          ~sides:
            [ "the translated insert renders a node, but not the targeted one (wrong \
               parent or different content)";
            ])
  in
  { p_text = text;
    p_view = view.Compile.view_name;
    p_level = level_str;
    p_anchor = table;
    p_targets = 1;
    p_verdict = (injectivity_verdict db view table :: how :: verdict);
    p_ops = ops;
  }

(* --- entry points --- *)

let plan rt ?strategy text =
  let stmt = parse text in
  let path =
    match stmt with
    | Insert_node { into; _ } -> into
    | Replace_node { path; _ } -> path
    | Delete_node { path; _ } -> path
  in
  let vname = view_name_of path in
  let view =
    match Runtime.find_view rt vname with
    | Some v -> v
    | None -> fail "unknown view %S" vname
  in
  let db = Runtime.database rt in
  let strat = match strategy with Some s -> s | None -> strategy_for rt ~view:vname in
  match stmt with
  | Replace_node { path; xml } -> plan_replace db view strat path xml (String.trim text)
  | Delete_node { path; where } -> plan_delete db view strat path where (String.trim text)
  | Insert_node { xml; into } -> plan_insert db view strat into xml (String.trim text)

let execute rt ?strategy text =
  let p = plan rt ?strategy text in
  match p.p_ops with
  | [] -> p
  | ops ->
    let db = Runtime.database rt in
    let name = Printf.sprintf "vdml%d" (Database.statement_count db + 1) in
    (* provenance meta record: recovery sees which view-DML statement the
       WAL's base statements were translated from; the immediate drop record
       compacts the pair away at the next checkpoint *)
    Runtime.record_custom_ddl rt ~kind:"viewdml" ~name ~payload:p.p_text;
    Fun.protect
      ~finally:(fun () -> Runtime.record_custom_ddl rt ~kind:"drop_viewdml" ~name ~payload:"")
      (fun () ->
        Database.with_statement_origin db p.p_text (fun () ->
            (* The plan was verified as one atomic unit, so it must not be
               left half-applied: each op re-validates its plan-time before
               image (a trigger may have written the row since planning),
               and any failure — validation, an FK rejection, a trigger
               raising — compensates the already-applied ops in reverse,
               through the Database path so the rollback also lands in the
               WAL and fires triggers symmetrically. *)
            let rows_equal a b =
              Array.length a = Array.length b
              && Array.for_all2 Value.equal a b
            in
            let check_before table pk expect =
              match Table.find_pk (Database.get_table db table) pk with
              | None -> fail "row of %s vanished during execution" table
              | Some cur ->
                if not (rows_equal cur expect) then
                  fail "a row of %s changed between planning and execution (a trigger \
                        wrote it); the view update is aborted"
                    table
            in
            let apply op =
              match op with
              | Ins { table; row } -> Database.insert_rows db ~table [ row ]
              | Upd { table; pk; before; after } ->
                check_before table pk before;
                if not (Database.update_pk db ~table ~pk ~set:(fun _ -> after)) then
                  fail "row of %s vanished during execution" table
              | Del { table; pk; row } ->
                check_before table pk row;
                ignore (Database.delete_pk db ~table ~pk)
            in
            (* An exception can escape mid-write (a trigger raising after
               the row landed), so the op being applied when the failure hit
               is compensated too — undo inspects the current state to tell
               whether the write actually took effect. *)
            let undo op =
              match op with
              | Ins { table; row } ->
                let schema = Table.schema (Database.get_table db table) in
                ignore (Database.delete_pk db ~table ~pk:(Schema.pk_of_row schema row))
              | Upd { table; pk; before; after } ->
                let schema = Table.schema (Database.get_table db table) in
                (* key by the after image: the update may have changed PK
                   columns; falls back to the before key when the write
                   never landed *)
                let apk = Schema.pk_of_row schema after in
                if
                  not (Database.update_pk db ~table ~pk:apk ~set:(fun _ -> before))
                then (
                  match Table.find_pk (Database.get_table db table) pk with
                  | Some cur when rows_equal cur before -> ()
                  | _ -> fail "cannot restore a row of %s" table)
              | Del { table; pk; row } -> (
                match Table.find_pk (Database.get_table db table) pk with
                | Some _ -> () (* the delete never landed *)
                | None -> Database.insert_rows db ~table [ row ])
            in
            let applied = ref [] in
            try
              List.iter
                (fun op ->
                  applied := op :: !applied;
                  apply op)
                ops
            with exn ->
              let bt = Printexc.get_raw_backtrace () in
              let failures = ref [] in
              List.iter
                (fun op ->
                  try undo op with e -> failures := Printexc.to_string e :: !failures)
                !applied;
              (match !failures with
              | [] -> ()
              | fs ->
                fail "view update failed (%s) and compensation also failed (%s); the \
                      database may hold a partial translation"
                  (Printexc.to_string exn) (String.concat "; " fs));
              Printexc.raise_with_backtrace exn bt));
    p

let explain rt text =
  match plan rt text with
  | p ->
    let db = Runtime.database rt in
    render_plan_with ~render_op:(base_op_render db) p ^ "  (not executed)\n"
  | exception Rejected d -> render_diagnostic d
