(** Hand-rolled HTTP/1.1 server over [Unix] — the network front door's
    transport layer.

    Same architecture as the Unix-socket notification server
    ({!Subscribe.Server}): single-threaded and step-driven.  [step] runs
    one [select] round — accept, read, parse, dispatch, write — and
    returns; the owner decides when to pump, so the server composes with
    the synchronous trigger runtime in one thread while [publish] may be
    called from the hub's writer domain (the three state-touching entry
    points serialize on one coarse mutex).

    The handler (installed with {!set_handler}) is the routing layer; it
    runs inside [step] on the pumping thread, so database reads, DML and
    trigger firings all execute with the same single-threaded discipline
    as the CLI paths.  A handler returns either a complete {!response},
    or upgrades the connection into one of the two subscription
    transports backed by the shared {!Subscribe.Replay} ring:

    - {!constructor:Sse}: the connection becomes a [text/event-stream];
      retained events above the client's cursor are replayed first
      (preceded by a [gap] event when the cursor has fallen out of
      retention), then live events stream as they are published.  Event
      ids are the ring's gseq, so [Last-Event-ID] on reconnect resumes
      with at-least-once semantics.
    - {!constructor:Long_poll}: the connection is held until a matching
      publish or the deadline, then answered with a JSON batch
      [{"cursor": C, "events": [...]}].

    Job hygiene (the basex-utils watchdog discipline):
    - every request has a deadline ([deadline_ms], default the
      [TRIGVIEW_REQUEST_DEADLINE_MS] knob): exceeded while reading →
      408; while holding a long-poll → empty batch; while draining a
      response or streaming → eviction;
    - admission control: when [max_inflight] connections are already
      streaming/held, new requests get 503 with [Retry-After]
      ([overloads] counts them);
    - oversized request lines/headers/bodies → 400/413/431, malformed
      requests → 400, never a crash. *)

type request = {
  meth : string;  (** uppercased: GET, POST, ... *)
  path : string;  (** percent-decoded path, no query string *)
  query : string;  (** raw (undecoded) query string, [""] if none *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type response = {
  status : int;
  headers : (string * string) list;  (** content-type etc.; length is added *)
  body : string;
}

type action =
  | Respond of response
  | Sse of { channel : string option; cursor : int }
      (** stream ring events; [channel = Some c] filters to channel [c],
          [None] streams everything; [cursor] = last gseq already seen *)
  | Long_poll of { channel : string option; cursor : int }
      (** hold until a matching publish or the deadline *)

type t

(** [create ~port ()] listens on 127.0.0.1:[port] ([0] picks an
    ephemeral port — read it back with {!port}).  [deadline_ms] defaults
    from the [TRIGVIEW_REQUEST_DEADLINE_MS] knob; [0] disables
    deadlines.  [retain] bounds the SSE replay ring, [max_buffered] the
    per-connection output buffer, [max_inflight] the admission cap on
    concurrently streaming/held connections. *)
val create :
  ?max_inflight:int ->
  ?deadline_ms:int ->
  ?retain:int ->
  ?max_buffered:int ->
  port:int ->
  unit ->
  t

val set_handler : t -> (request -> action) -> unit

(** Bound TCP port (resolves 0 to the ephemeral port actually bound). *)
val port : t -> int

(** Publish one event into the replay ring: appended to every matching
    SSE stream, answers every matching held long-poll.  Callable from
    any domain.  Returns the event's gseq. *)
val publish : t -> channel:string -> string -> int

(** One select round; returns the number of ready fds (0 = idle). *)
val step : ?timeout_ms:int -> t -> int

val stop : t -> unit

(** {2 Counters} *)

val connection_count : t -> int

(** Streaming + held connections. *)
val inflight : t -> int

val requests : t -> int
val responses : t -> int

(** 503s from the admission cap. *)
val overloads : t -> int

(** 408s + expired long-polls. *)
val deadline_aborts : t -> int

(** Drain/stream deadline evictions. *)
val clients_evicted : t -> int

(** Slow consumers over [max_buffered]. *)
val clients_dropped : t -> int

(** Lifetime streams opened. *)
val sse_streams : t -> int

val sse_events_sent : t -> int
val published : t -> int
val last_gseq : t -> int
val deadline_ms : t -> int
val max_inflight : t -> int

(** Reason-phrase helper shared with the routing layer. *)
val reason : int -> string
