(** RQL — the front door's Resource Query Language.

    A query string is a ['&']-separated conjunction of terms:

    {v
      eq(region,ASIA)&ge(price,100)&sort(-open_auctions,+name)&limit(0,50)
    v}

    - comparison terms [eq(f,v)] [ne] [lt] [le] [gt] [ge]: field [f]
      compares against literal [v];
    - [sort(±f,...)]: sort keys in priority order, ['-'] descending,
      ['+'] (or nothing) ascending;
    - [limit(offset,count)]: slice of the sorted result;
    - [select(f,...)]: restrict the fields rendered per row.

    Literals parse as int, then float, then [true]/[false]/[null], else
    string; the prefix [string:] forces a string (so [string:123] is the
    text "123").  Field names and literal values are percent-decoded
    after tokenization, so encoded structural characters ([%26], [%28],
    [%2C], ...) are data.  {!print} renders the canonical form, which
    re-parses to the same query (the qcheck round-trip property).

    Queries compile onto the relational planner: {!compile} wraps a plan
    producing the queried columns with [Select] / [Order_by] nodes, so
    filtering and sorting run through the same {!Relkit.Ra_compile}
    executor as the trigger runtime's delta queries. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type filter = {
  f_field : string;
  f_cmp : cmp;
  f_value : Relkit.Value.t;
}

type t = {
  filters : filter list;  (** conjunction, in query order *)
  sorts : (string * bool) list;  (** (field, descending), priority order *)
  limit : (int * int) option;  (** (offset, count) *)
  select : string list;  (** [] = all fields *)
}

val empty : t

exception Error of string

(** Percent-decoding shared with the routing layer.
    @raise Error on malformed encodings. *)
val pct_decode : string -> string

(** @raise Error on malformed queries (unknown operator, bad arity,
    unbalanced parentheses, bad percent-encoding). *)
val parse : string -> t

(** Canonical rendering; [parse (print q)] is structurally [q]. *)
val print : t -> string

(** [resolve_field ~columns f] maps an RQL field name to a plan column:
    [f] itself, or ["@" ^ f] (so [eq(name,...)] reaches the attribute
    field ["@name"]).
    @raise Error when neither exists. *)
val resolve_field : columns:string list -> string -> string

(** Wraps [plan] (producing [columns]) with the query's [Select] and
    [Order_by]; [limit] and [select] are not part of the plan — apply
    {!limit_slice} to the executed rows and filter rendered fields.
    @raise Error on unknown fields. *)
val compile : columns:string list -> t -> Relkit.Ra.t -> Relkit.Ra.t

(** Applies the [limit(offset,count)] slice. *)
val limit_slice : t -> 'a list -> 'a list
