(* HTTP/1.1 transport: select-driven, step-pumped, coarse-locked.
   See httpd.mli for the contract.  The connection state machine:

     Reading --request parsed--> (dispatch)
       dispatch -> Respond    -> Draining --outbuf empty--> Reading | close
       dispatch -> Sse        -> Streaming (until EOF / eviction)
       dispatch -> Long_poll  -> Held --publish/deadline--> Draining

   Requests are processed one at a time per connection; pipelined bytes
   wait in [inbuf] until the previous response drains. *)

module Replay = Subscribe.Replay

type request = {
  meth : string;
  path : string;
  query : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

type action =
  | Respond of response
  | Sse of { channel : string option; cursor : int }
  | Long_poll of { channel : string option; cursor : int }

type conn_state =
  | Reading
  | Draining
  | Streaming of string option  (* channel filter *)
  | Held of { channel : string option; cursor : int; due : int64 }

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbuf : Buffer.t;
  mutable state : conn_state;
  mutable close_after : bool;
  mutable read_due : int64;  (* partial request must complete by; 0 = none *)
  mutable drain_due : int64;  (* queued output must drain by; 0 = none *)
  mutable closed : bool;
}

type t = {
  lock : Mutex.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  mutable conns : conn list;
  ring : (string * string) Replay.t;  (* (channel, payload) *)
  mutable handler : request -> action;
  max_inflight : int;
  deadline_ms : int;  (* 0 disables deadlines *)
  max_buffered : int;
  mutable requests_c : int;
  mutable responses_c : int;
  mutable overloads_c : int;
  mutable deadline_aborts_c : int;
  mutable clients_evicted_c : int;
  mutable clients_dropped_c : int;
  mutable sse_streams_c : int;
  mutable sse_events_c : int;
  mutable stopped : bool;
}

(* --- limits --- *)

let max_head_bytes = 16 * 1024
let max_headers = 64
let max_body_bytes = 1 lsl 20

let reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let create ?(max_inflight = 64) ?deadline_ms ?(retain = 4096)
    ?(max_buffered = 4 * 1024 * 1024) ~port () =
  let deadline_ms =
    match deadline_ms with
    | Some ms -> max 0 ms
    | None -> Obs.Knobs.request_deadline_ms ()
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 128;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { lock = Mutex.create ();
    listen_fd = fd;
    bound_port;
    conns = [];
    ring = Replay.create ~retain ();
    handler =
      (fun _ ->
        Respond { status = 404; headers = []; body = "" });
    max_inflight = max 1 max_inflight;
    deadline_ms;
    max_buffered;
    requests_c = 0;
    responses_c = 0;
    overloads_c = 0;
    deadline_aborts_c = 0;
    clients_evicted_c = 0;
    clients_dropped_c = 0;
    sse_streams_c = 0;
    sse_events_c = 0;
    stopped = false;
  }

let set_handler t h = t.handler <- h
let port t = t.bound_port
let connection_count t = List.length t.conns
let requests t = t.requests_c
let responses t = t.responses_c
let overloads t = t.overloads_c
let deadline_aborts t = t.deadline_aborts_c
let clients_evicted t = t.clients_evicted_c
let clients_dropped t = t.clients_dropped_c
let sse_streams t = t.sse_streams_c
let sse_events_sent t = t.sse_events_c
let published t = Replay.published t.ring
let last_gseq t = Replay.last_gseq t.ring
let deadline_ms t = t.deadline_ms
let max_inflight t = t.max_inflight

let inflight_locked t =
  List.fold_left
    (fun acc c ->
      match c.state with
      | (Streaming _ | Held _) when not c.closed -> acc + 1
      | _ -> acc)
    0 t.conns

(* lock-free like the other counters: handlers read it from inside
   [step] (the pumping thread already holds the lock), and a racing
   cross-thread read of the snapshot is benign *)
let inflight t = inflight_locked t

let now_ns () = Obs.Trace.now ()

let due_after t =
  if t.deadline_ms = 0 then 0L
  else Int64.add (now_ns ()) (Int64.of_int (t.deadline_ms * 1_000_000))

let close_conn t c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns
  end

let add_output t c data =
  Buffer.add_string c.outbuf data;
  if c.drain_due = 0L then c.drain_due <- due_after t;
  if Buffer.length c.outbuf > t.max_buffered then begin
    t.clients_dropped_c <- t.clients_dropped_c + 1;
    close_conn t c
  end

(* --- responses --- *)

let render_head status headers =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf "\r\n";
  Buffer.contents buf

let queue_response t c (r : response) =
  t.responses_c <- t.responses_c + 1;
  let headers =
    r.headers
    @ [ ("content-length", string_of_int (String.length r.body));
        ("connection", if c.close_after then "close" else "keep-alive");
      ]
  in
  add_output t c (render_head r.status headers ^ r.body);
  if not c.closed then c.state <- Draining

let error_body msg =
  Printf.sprintf "{\"error\": \"%s\"}" (Obs.Metrics.json_escape msg)

let json_headers = [ ("content-type", "application/json") ]

let queue_error t c status msg =
  c.close_after <- true;
  queue_response t c { status; headers = json_headers; body = error_body msg }

(* --- SSE / long-poll over the replay ring --- *)

let channel_matches filter channel =
  match filter with None -> true | Some c -> c = channel

let sse_event ~id ~event data =
  Printf.sprintf "id: %d\nevent: %s\ndata: %s\n\n" id event data

let start_sse t c ~channel ~cursor =
  t.sse_streams_c <- t.sse_streams_c + 1;
  c.close_after <- true;  (* an event stream never reverts to keep-alive *)
  let head =
    render_head 200
      [ ("content-type", "text/event-stream");
        ("cache-control", "no-cache");
        ("connection", "close");
      ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf head;
  (match Replay.gap_before t.ring ~cursor with
  | Some oldest ->
    Buffer.add_string buf
      (sse_event ~id:(oldest - 1) ~event:"gap"
         (Printf.sprintf "{\"gap\": true, \"oldest\": %d}" oldest))
  | None -> ());
  Replay.iter_from t.ring ~cursor (fun g (ch, payload) ->
      if channel_matches channel ch then begin
        t.sse_events_c <- t.sse_events_c + 1;
        Buffer.add_string buf (sse_event ~id:g ~event:"notification" payload)
      end);
  add_output t c (Buffer.contents buf);
  if not c.closed then c.state <- Streaming channel

let longpoll_body t ~channel ~cursor =
  let events = ref [] in
  Replay.iter_from t.ring ~cursor (fun g (ch, payload) ->
      if channel_matches channel ch then
        events :=
          Printf.sprintf "{\"gseq\": %d, \"data\": %s}" g payload :: !events);
  let events = List.rev !events in
  let cursor' = if events = [] then cursor else Replay.last_gseq t.ring in
  let gap =
    match Replay.gap_before t.ring ~cursor with
    | Some oldest -> Printf.sprintf " \"gap\": true, \"oldest\": %d," oldest
    | None -> ""
  in
  ( events <> [],
    Printf.sprintf "{\"cursor\": %d,%s \"events\": [%s]}" cursor' gap
      (String.concat ", " events) )

let answer_longpoll t c ~channel ~cursor =
  let _, body = longpoll_body t ~channel ~cursor in
  queue_response t c { status = 200; headers = json_headers; body }

(* Publish one event: retain, then fan out to matching streams and held
   polls.  Called from the hub's writer domain as well as the pump
   thread, hence the lock. *)
let publish t ~channel payload =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let gseq = Replay.publish t.ring (channel, payload) in
  List.iter
    (fun c ->
      if not c.closed then
        match c.state with
        | Streaming filter when channel_matches filter channel ->
          t.sse_events_c <- t.sse_events_c + 1;
          add_output t c (sse_event ~id:gseq ~event:"notification" payload)
        | Held { channel = filter; cursor; _ }
          when channel_matches filter channel ->
          answer_longpoll t c ~channel:filter ~cursor
        | _ -> ())
    t.conns;
  gseq

(* --- request parsing --- *)

let pct_decode_opt s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - 48)
    | 'a' .. 'f' -> Some (Char.code c - 87)
    | 'A' .. 'F' -> Some (Char.code c - 55)
    | _ -> None
  in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else
      match s.[i] with
      | '%' ->
        if i + 2 >= n then None
        else (
          match (hex s.[i + 1], hex s.[i + 2]) with
          | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            go (i + 3)
          | _ -> None)
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

type parse_outcome =
  | Incomplete  (* need more bytes *)
  | Bad of int * string  (* error status + message; close the connection *)
  | Parsed of request * int  (* request + total bytes consumed *)

let is_token_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' -> true
  | _ -> false

let parse_head data =
  match find_sub data "\r\n\r\n" 0 with
  | None ->
    if String.length data > max_head_bytes then
      Bad (431, "request head too large")
    else Incomplete
  | Some head_end -> (
    let head = String.sub data 0 head_end in
    match String.split_on_char '\n' head with
    | [] -> Bad (400, "empty request")
    | req_line :: header_lines -> (
      let req_line = String.trim req_line in
      let parts =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' req_line)
      in
      match parts with
      | [ meth; target; version ]
        when String.length version >= 7 && String.sub version 0 7 = "HTTP/1."
             && meth <> ""
             && String.for_all is_token_char meth -> (
        let headers = ref [] in
        let bad = ref None in
        List.iter
          (fun line ->
            if !bad = None then
              let line = String.trim line in
              if line <> "" then
                match String.index_opt line ':' with
                | None -> bad := Some "malformed header line"
                | Some i ->
                  if List.length !headers >= max_headers then
                    bad := Some "too many headers"
                  else
                    headers :=
                      ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
                        String.trim
                          (String.sub line (i + 1) (String.length line - i - 1))
                      )
                      :: !headers)
          header_lines;
        match !bad with
        | Some msg -> Bad (400, msg)
        | None -> (
          let headers = List.rev !headers in
          if List.mem_assoc "transfer-encoding" headers then
            Bad (501, "transfer-encoding not supported")
          else
            let body_len =
              match List.assoc_opt "content-length" headers with
              | None -> Some 0
              | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n when n >= 0 -> Some n
                | _ -> None)
            in
            match body_len with
            | None -> Bad (400, "bad content-length")
            | Some n when n > max_body_bytes -> Bad (413, "body too large")
            | Some body_len -> (
              let total = head_end + 4 + body_len in
              if String.length data < total then Incomplete
              else
                let body = String.sub data (head_end + 4) body_len in
                let target_path, query =
                  match String.index_opt target '?' with
                  | None -> (target, "")
                  | Some q ->
                    ( String.sub target 0 q,
                      String.sub target (q + 1) (String.length target - q - 1)
                    )
                in
                if String.length target_path = 0 || target_path.[0] <> '/'
                then Bad (400, "bad request target")
                else
                  match pct_decode_opt target_path with
                  | None -> Bad (400, "bad percent-encoding in path")
                  | Some path ->
                    Parsed
                      ( { meth = String.uppercase_ascii meth;
                          path;
                          query;
                          headers;
                          body;
                        },
                        total ))))
      | _ -> Bad (400, "malformed request line")))

(* --- dispatch --- *)

let wants_close (req : request) =
  match List.assoc_opt "connection" req.headers with
  | Some v -> String.lowercase_ascii (String.trim v) = "close"
  | None -> false

let dispatch t c req =
  t.requests_c <- t.requests_c + 1;
  if wants_close req then c.close_after <- true;
  if inflight_locked t >= t.max_inflight then begin
    t.overloads_c <- t.overloads_c + 1;
    queue_response t c
      { status = 503;
        headers = ("retry-after", "1") :: json_headers;
        body = error_body "overloaded: too many in-flight requests";
      }
  end
  else
    match (try t.handler req with e -> Respond
      { status = 500; headers = json_headers;
        body = error_body (Printexc.to_string e) })
    with
    | Respond r -> queue_response t c r
    | Sse { channel; cursor } -> start_sse t c ~channel ~cursor
    | Long_poll { channel; cursor } ->
      let has_events, body = longpoll_body t ~channel ~cursor in
      if has_events then
        queue_response t c { status = 200; headers = json_headers; body }
      else
        c.state <- Held { channel; cursor; due = due_after t }

(* Process as many complete requests as the state machine allows (one,
   then the connection is Draining until its response is on the wire). *)
let rec try_process t c =
  if (not c.closed) && c.state = Reading then begin
    let data = Buffer.contents c.inbuf in
    if data = "" then c.read_due <- 0L
    else begin
      if c.read_due = 0L then c.read_due <- due_after t;
      match parse_head data with
      | Incomplete -> ()
      | Bad (status, msg) ->
        c.read_due <- 0L;
        t.requests_c <- t.requests_c + 1;
        queue_error t c status msg
      | Parsed (req, consumed) ->
        let rest =
          String.sub data consumed (String.length data - consumed)
        in
        Buffer.clear c.inbuf;
        Buffer.add_string c.inbuf rest;
        c.read_due <- 0L;
        dispatch t c req;
        try_process t c  (* state gates pipelined requests *)
    end
  end

(* --- socket I/O --- *)

let read_conn t c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t c  (* orderly EOF *)
  | n -> (
    match c.state with
    | Reading ->
      Buffer.add_subbytes c.inbuf buf 0 n;
      try_process t c
    | Draining -> Buffer.add_subbytes c.inbuf buf 0 n  (* pipelined bytes *)
    | Streaming _ | Held _ -> ()  (* ignore input on upgraded conns *))
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_conn t c

let write_conn t c =
  let data = Buffer.contents c.outbuf in
  if data <> "" then
    match Unix.write_substring c.fd data 0 (String.length data) with
    | n ->
      Buffer.clear c.outbuf;
      if n < String.length data then
        Buffer.add_substring c.outbuf data n (String.length data - n)
      else begin
        c.drain_due <- 0L;
        if c.state = Draining then
          if c.close_after then close_conn t c
          else begin
            c.state <- Reading;
            try_process t c  (* pipelined request already buffered? *)
          end
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> close_conn t c

let accept_pending t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.conns <-
        { fd;
          inbuf = Buffer.create 512;
          outbuf = Buffer.create 1024;
          state = Reading;
          close_after = false;
          read_due = 0L;
          drain_due = 0L;
          closed = false;
        }
        :: t.conns
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let enforce_deadlines t =
  if t.deadline_ms > 0 then begin
    let now = now_ns () in
    let overdue d = d <> 0L && Int64.compare now d > 0 in
    List.iter
      (fun c ->
        if not c.closed then
          match c.state with
          | Held { channel; cursor; due } when overdue due ->
            (* long-poll hold expired: answer with an empty batch *)
            t.deadline_aborts_c <- t.deadline_aborts_c + 1;
            let _, body = longpoll_body t ~channel ~cursor in
            queue_response t c
              { status = 200; headers = json_headers; body }
          | Reading when overdue c.read_due ->
            (* a partial request stalled: time it out *)
            t.deadline_aborts_c <- t.deadline_aborts_c + 1;
            t.requests_c <- t.requests_c + 1;
            queue_error t c 408 "request deadline exceeded"
          | (Draining | Streaming _) when overdue c.drain_due ->
            (* queued output is not draining: evict the consumer *)
            t.clients_evicted_c <- t.clients_evicted_c + 1;
            close_conn t c
          | _ -> ())
      (* snapshot: queue_response can drop conns via max_buffered *)
      (List.filter (fun c -> not c.closed) t.conns)
  end

let step ?(timeout_ms = 0) t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if t.stopped then 0
  else begin
    let reads = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
    let writes =
      List.filter_map
        (fun c -> if Buffer.length c.outbuf > 0 then Some c.fd else None)
        t.conns
    in
    let timeout = float_of_int (max 0 timeout_ms) /. 1000.0 in
    match Unix.select reads writes [] timeout with
    | rs, ws, _ ->
      if List.mem t.listen_fd rs then accept_pending t;
      List.iter
        (fun c -> if (not c.closed) && List.mem c.fd rs then read_conn t c)
        t.conns;
      List.iter
        (fun c -> if (not c.closed) && List.mem c.fd ws then write_conn t c)
        t.conns;
      enforce_deadlines t;
      List.length rs + List.length ws
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  end

let stop t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if not t.stopped then begin
    t.stopped <- true;
    List.iter
      (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      t.conns;
    t.conns <- [];
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end
