(* The trigview HTTP API: routing, rendering, and the runtime wiring.
   See api.mli for the endpoint contract. *)

module Runtime = Trigview.Runtime
module Database = Relkit.Database
module Value = Relkit.Value
module Ra = Relkit.Ra
module Ra_eval = Relkit.Ra_eval
module Ra_compile = Relkit.Ra_compile
module Sql = Relkit.Sql
module Xml = Xmlkit.Xml
module Hub = Subscribe

type t = {
  mgr : Runtime.t;
  hub : Hub.t;
  httpd : Httpd.t;
  registry : Obs.Metrics.registry;  (* per-endpoint latency histograms *)
  mutable hub_dirty : bool;
      (* a handler ran DML: flush the hub after the transport round (sink
         delivery publishes back into the httpd ring and must not run
         under the transport lock) *)
}

(* --- JSON / XML rendering helpers --- *)

let jesc = Obs.Metrics.json_escape

let json_of_value = function
  | Value.Null -> "null"
  | Value.Int n -> string_of_int n
  | Value.Float f ->
    if Float.is_finite f then
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
    else "null"
  | Value.Bool b -> if b then "true" else "false"
  | Value.String s -> Printf.sprintf "\"%s\"" (jesc s)

let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_response ?(status = 200) body =
  Httpd.Respond
    { status; headers = [ ("content-type", "application/json") ]; body }

let text_response ?(status = 200) ~ctype body =
  Httpd.Respond { status; headers = [ ("content-type", ctype) ]; body }

let error_response status msg =
  json_response ~status (Printf.sprintf "{\"error\": \"%s\"}" (jesc msg))

(* RQL errors carry a structured payload — the offending query plus the
   queryable fields as [name] singletons — so clients can self-correct. *)
let rql_error ~query ~fields msg =
  json_response ~status:400
    (Printf.sprintf
       "{\"error\": \"%s\", \"detail\": {\"query\": \"%s\", \"fields\": [%s]}}"
       (jesc msg) (jesc query)
       (String.concat ", "
          (List.map (fun f -> Printf.sprintf "[\"%s\"]" (jesc f)) fields)))

(* --- query-string handling ---

   A view query string mixes RQL terms (name(args)) with plain key=value
   options (level, format, mode, cursor).  A part is an option when its
   '=' comes before any '('. *)

let split_query qs =
  let parts = List.filter (fun s -> s <> "") (String.split_on_char '&' qs) in
  let opts, terms =
    List.partition_map
      (fun part ->
        match String.index_opt part '=' with
        | Some i
          when (match String.index_opt part '(' with
               | None -> true
               | Some j -> i < j) ->
          Either.Left
            ( Rql.pct_decode (String.sub part 0 i),
              Rql.pct_decode
                (String.sub part (i + 1) (String.length part - i - 1)) )
        | _ -> Either.Right part)
      parts
  in
  (opts, String.concat "&" terms)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- GET /views/:name --- *)

let query_view t name (req : Httpd.request) =
  let opts, rql_text = split_query req.query in
  let level = List.assoc_opt "level" opts in
  let format =
    match List.assoc_opt "format" opts with
    | Some "xml" -> `Xml
    | Some "json" -> `Json
    | Some other ->
      raise (Rql.Error (Printf.sprintf "unknown format %S" other))
    | None -> (
      match List.assoc_opt "accept" req.headers with
      | Some a when contains_sub a "application/xml" -> `Xml
      | _ -> `Json)
  in
  let fields = Runtime.view_level_fields t.mgr ~view:name ?level () in
  let q =
    try Rql.parse rql_text
    with Rql.Error msg -> raise (Rql.Error msg)
  in
  let rows = Runtime.view_rows t.mgr ~view:name ?level () in
  let db = Runtime.database t.mgr in
  (* the queried relation: one row per element, the level's provenance
     fields as columns plus the element's document-order index; RQL
     filters and sorts compile onto it and run through the same
     compiling executor as the trigger runtime's plans *)
  let cols = "__row" :: fields in
  let vrows =
    List.mapi
      (fun i (r : Runtime.view_row) ->
        Array.of_list (Value.Int i :: List.map snd r.Runtime.vr_fields))
      rows
  in
  let plan = Rql.compile ~columns:fields q (Ra.Values (cols, vrows)) in
  let rel = Ra_compile.exec (Ra_compile.compile db plan) (Ra_eval.ctx_of_db db) in
  let idx = Ra_eval.col_index rel "__row" in
  let arr = Array.of_list rows in
  let matched =
    List.map (fun r -> arr.(Value.to_int r.(idx))) rel.Ra_eval.rows
  in
  let total = List.length matched in
  let out = Rql.limit_slice q matched in
  let render_fields =
    match q.Rql.select with
    | [] -> fields
    | sel -> List.map (Rql.resolve_field ~columns:fields) sel
  in
  let level_tag =
    match (level, rows) with
    | Some l, _ -> l
    | None, r :: _ -> r.Runtime.vr_tag
    | None, [] -> ""
  in
  match format with
  | `Json ->
    let row_json (r : Runtime.view_row) =
      let fields_json =
        String.concat ", "
          (List.map
             (fun f ->
               Printf.sprintf "\"%s\": %s" (jesc f)
                 (json_of_value
                    (match List.assoc_opt f r.Runtime.vr_fields with
                    | Some v -> v
                    | None -> Value.Null)))
             render_fields)
      in
      Printf.sprintf "{\"fields\": {%s}, \"xml\": \"%s\"}" fields_json
        (jesc (Xml.to_string r.Runtime.vr_node))
    in
    json_response
      (Printf.sprintf
         "{\"view\": \"%s\", \"level\": \"%s\", \"total\": %d, \"count\": %d, \
          \"rows\": [%s]}"
         (jesc name) (jesc level_tag) total (List.length out)
         (String.concat ", " (List.map row_json out)))
  | `Xml ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "<results view=\"%s\" level=\"%s\" total=\"%d\" count=\"%d\">"
         (xml_escape name) (xml_escape level_tag) total (List.length out));
    List.iter
      (fun (r : Runtime.view_row) ->
        Buffer.add_string buf (Xml.to_string r.Runtime.vr_node))
      out;
    Buffer.add_string buf "</results>";
    text_response ~ctype:"application/xml" (Buffer.contents buf)

(* --- POST /sql --- *)

let exec_sql t (req : Httpd.request) =
  let db = Runtime.database t.mgr in
  match Sql.exec db req.body with
  | Sql.Rows rel ->
    let cols =
      String.concat ", "
        (List.map
           (fun c -> Printf.sprintf "\"%s\"" (jesc c))
           (Array.to_list rel.Ra_eval.cols))
    in
    let rows =
      String.concat ", "
        (List.map
           (fun row ->
             Printf.sprintf "[%s]"
               (String.concat ", "
                  (List.map json_of_value (Array.to_list row))))
           rel.Ra_eval.rows)
    in
    json_response
      (Printf.sprintf "{\"cols\": [%s], \"rows\": [%s], \"count\": %d}" cols
         rows
         (List.length rel.Ra_eval.rows))
  | Sql.Affected n ->
    t.hub_dirty <- true;
    json_response (Printf.sprintf "{\"affected\": %d}" n)
  | Sql.Done ->
    t.hub_dirty <- true;
    json_response "{\"ok\": true}"

(* --- POST /views/:name/update --- *)

let view_update t name (req : Httpd.request) =
  (* parse first so a statement aimed at another view 409s before any
     planning or execution *)
  let stmt = Viewupdate.parse req.body in
  let target_view =
    let root (p : Xquery.Ast.path) =
      match p.Xquery.Ast.root with
      | Xquery.Ast.R_view v -> v
      | Xquery.Ast.R_var _ -> ""
    in
    match stmt with
    | Viewupdate.Insert_node { into; _ } -> root into
    | Viewupdate.Replace_node { path; _ } -> root path
    | Viewupdate.Delete_node { path; _ } -> root path
  in
  if target_view <> name then
    error_response 409
      (Printf.sprintf "statement targets view %S, not %S" target_view name)
  else begin
    let p = Viewupdate.execute t.mgr req.body in
    t.hub_dirty <- true;
    let db = Runtime.database t.mgr in
    json_response
      (Printf.sprintf
         "{\"ok\": true, \"view\": \"%s\", \"level\": \"%s\", \"targets\": \
          %d, \"ops\": [%s]}"
         (jesc p.Viewupdate.p_view) (jesc p.Viewupdate.p_level)
         p.Viewupdate.p_targets
         (String.concat ", "
            (List.map
               (fun op ->
                 Printf.sprintf "\"%s\"" (jesc (Viewupdate.base_op_render db op)))
               p.Viewupdate.p_ops)))
  end

let diagnostic_json (d : Viewupdate.diagnostic) =
  Printf.sprintf
    "{\"error\": \"rejected\", \"reason\": \"%s\", \"view\": \"%s\", \
     \"level\": \"%s\", \"table\": \"%s\", \"candidates\": %d, \
     \"side_effects\": [%s]}"
    (jesc d.Viewupdate.d_reason) (jesc d.Viewupdate.d_view)
    (jesc d.Viewupdate.d_level) (jesc d.Viewupdate.d_table)
    (List.length d.Viewupdate.d_candidates)
    (String.concat ", "
       (List.map
          (fun s -> Printf.sprintf "\"%s\"" (jesc s))
          d.Viewupdate.d_side_effects))

(* --- GET /subscribe/:name --- *)

let subscribe_feed t name (req : Httpd.request) =
  match Hub.find_sub t.hub name with
  | None -> error_response 404 (Printf.sprintf "unknown subscription %S" name)
  | Some _ ->
    let opts, _ = split_query req.query in
    let cursor =
      match List.assoc_opt "last-event-id" req.headers with
      | Some v -> ( match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> n
        | _ -> 0)
      | None -> (
        match List.assoc_opt "cursor" opts with
        | Some v -> (
          match int_of_string_opt v with Some n when n >= 0 -> n | _ -> 0)
        | None -> 0)
    in
    (match List.assoc_opt "mode" opts with
    | Some "longpoll" -> Httpd.Long_poll { channel = Some name; cursor }
    | Some "sse" | None -> Httpd.Sse { channel = Some name; cursor }
    | Some other ->
      error_response 400 (Printf.sprintf "unknown mode %S" other))

(* --- operational surface --- *)

let metrics_prometheus t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Obs.Metrics.prometheus_counters ~metric:"trigview_http_total"
       [ ("requests", Httpd.requests t.httpd);
         ("responses", Httpd.responses t.httpd);
         ("overloads", Httpd.overloads t.httpd);
         ("deadline_aborts", Httpd.deadline_aborts t.httpd);
         ("clients_evicted", Httpd.clients_evicted t.httpd);
         ("clients_dropped", Httpd.clients_dropped t.httpd);
         ("sse_streams", Httpd.sse_streams t.httpd);
         ("sse_events_sent", Httpd.sse_events_sent t.httpd);
         ("published", Httpd.published t.httpd);
       ]);
  Buffer.add_string buf
    (Obs.Metrics.prometheus_gauges ~metric:"trigview_http_connections"
       [ ("connected", Httpd.connection_count t.httpd);
         ("inflight", Httpd.inflight t.httpd);
       ]);
  Buffer.add_string buf
    (Obs.Metrics.prometheus_gauges ~metric:"trigview_http_config"
       [ ("deadline_ms", Httpd.deadline_ms t.httpd);
         ("max_inflight", Httpd.max_inflight t.httpd);
       ]);
  Buffer.add_string buf
    (Obs.Metrics.registry_to_prometheus ~metric:"trigview_http_latency_ns"
       t.registry);
  Buffer.contents buf

let all_metrics t =
  Runtime.metrics_prometheus t.mgr
  ^ Hub.metrics_prometheus t.hub
  ^ metrics_prometheus t

(* --- routing --- *)

let split_path p = List.filter (fun s -> s <> "") (String.split_on_char '/' p)

let endpoint_label (req : Httpd.request) =
  match (req.meth, split_path req.path) with
  | "GET", "views" :: _ -> "GET /views"
  | "POST", [ "views"; _; "update" ] -> "POST /views/update"
  | "POST", [ "sql" ] -> "POST /sql"
  | "GET", "subscribe" :: _ -> "GET /subscribe"
  | "GET", [ "metrics" ] -> "GET /metrics"
  | "GET", [ "stats" ] -> "GET /stats"
  | "GET", [ "analyze" ] -> "GET /analyze"
  | "GET", [ "healthz" ] -> "GET /healthz"
  | meth, _ -> meth ^ " other"

let route t (req : Httpd.request) =
  match (req.meth, split_path req.path) with
  | "GET", [ "views"; name ] -> query_view t name req
  | "POST", [ "sql" ] -> exec_sql t req
  | "POST", [ "views"; name; "update" ] -> view_update t name req
  | "GET", [ "subscribe"; name ] -> subscribe_feed t name req
  | "GET", [ "metrics" ] ->
    text_response ~ctype:"text/plain; version=0.0.4" (all_metrics t)
  | "GET", [ "stats" ] -> json_response (Runtime.report_json t.mgr)
  | "GET", [ "analyze" ] -> json_response (Runtime.analyze_json t.mgr)
  | "GET", [ "healthz" ] -> json_response "{\"ok\": true}"
  | _, ([ "sql" ] | [ "views"; _ ] | [ "views"; _; "update" ]
       | [ "subscribe"; _ ] | [ "metrics" ] | [ "stats" ] | [ "analyze" ]) ->
    error_response 405 "method not allowed"
  | _ -> error_response 404 "not found"

let handle t (req : Httpd.request) =
  let label = endpoint_label req in
  let tracer = Database.tracer (Runtime.database t.mgr) in
  let t0 = Obs.Trace.now () in
  let act =
    try route t req with
    | Rql.Error msg ->
      let fields =
        try
          let opts, _ = split_query req.query in
          match split_path req.path with
          | [ "views"; name ] ->
            Runtime.view_level_fields t.mgr ~view:name
              ?level:(List.assoc_opt "level" opts) ()
          | _ -> []
        with _ -> []
      in
      rql_error ~query:req.query ~fields msg
    | Runtime.Error msg -> error_response 404 msg
    | Sql.Error msg -> error_response 400 msg
    | Viewupdate.Error msg -> error_response 400 msg
    | Viewupdate.Rejected d -> json_response ~status:422 (diagnostic_json d)
    | Invalid_argument msg | Failure msg -> error_response 400 msg
  in
  Obs.Metrics.observe_in t.registry ("http:" ^ label)
    (Int64.sub (Obs.Trace.now ()) t0);
  if Obs.Trace.enabled tracer then Obs.Trace.finish_note tracer t0 "http" label;
  act

(* --- lifecycle --- *)

let create ?max_inflight ?deadline_ms ?retain ?(port = 0) ~mgr ~hub () =
  let httpd = Httpd.create ?max_inflight ?deadline_ms ?retain ~port () in
  let t =
    { mgr;
      hub;
      httpd;
      registry = Obs.Metrics.create_registry ();
      hub_dirty = false;
    }
  in
  Httpd.set_handler httpd (fun req -> handle t req);
  (* notifications flow into the HTTP replay ring alongside the other
     sinks; the channel is the subscription name, the payload the same
     NDJSON the socket server frames *)
  Hub.add_callback hub (fun n ->
      ignore
        (Httpd.publish httpd
           ~channel:n.Hub.Notification.subscription
           (Hub.Notification.to_ndjson n)));
  t

let httpd t = t.httpd
let port t = Httpd.port t.httpd
let registry t = t.registry

(* One transport round, then any deferred hub flush.  The flush happens
   with the transport lock released: sink delivery (possibly on the
   writer domain) publishes back into this server via {!Httpd.publish},
   which takes the lock itself.  A zero-timeout extra round pushes the
   freshly queued SSE bytes onto the wire within the same call. *)
let step ?timeout_ms t =
  let n = Httpd.step ?timeout_ms t.httpd in
  if t.hub_dirty then begin
    t.hub_dirty <- false;
    ignore (Hub.flush t.hub);
    Hub.drain_writer t.hub;
    n + Httpd.step ~timeout_ms:0 t.httpd
  end
  else n

let stop t = Httpd.stop t.httpd
