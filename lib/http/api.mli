(** The trigview HTTP API: routes {!Httpd} requests onto the runtime.

    Endpoints:

    - [GET /views/:name] — query a published view's repeated elements
      with an {!Rql} query string (plus [level=tag] to query a nested
      level, [format=json|xml] / [Accept: application/xml] to pick the
      rendering).  Filters and sorts compile onto the relational
      planner ({!Relkit.Ra_compile}) over the level's provenance
      fields.
    - [POST /sql] — body is one SQL statement, executed exactly like
      the CLI's SQL path: triggers fire, audit origin and WAL records
      are written by the same machinery.
    - [POST /views/:name/update] — body is a view-DML statement
      ([INSERT NODE ...] / [REPLACE NODE ...] / [DELETE NODE ...])
      planned and executed by {!Viewupdate}; 409 when the statement
      targets a different view than the URL, 422 with the structured
      diagnostic when the planner rejects it.
    - [GET /subscribe/:name] — subscription feed as SSE (default) or
      long-poll ([mode=longpoll]).  The cursor is the replay ring's
      gseq: [Last-Event-ID] header or [cursor=N]; at-least-once across
      reconnects, with a [gap] event when the cursor has fallen out of
      retention.
    - [GET /metrics] — Prometheus text: runtime + hub + HTTP server
      series.
    - [GET /stats] — {!Trigview.Runtime.report_json}.
    - [GET /analyze] — {!Trigview.Runtime.analyze_json}.
    - [GET /healthz] — liveness.

    Per-endpoint latency histograms land in the API's
    {!Obs.Metrics.registry} (labels [GET /views], [POST /sql], ...);
    when the runtime's tracer is enabled every request records an
    [http] span noted with its endpoint.

    DML handlers only mark the hub dirty; {!step} flushes it after the
    transport round so sink delivery (including {!Httpd.publish} back
    into this server's SSE ring) never runs under the transport lock. *)

type t

val create :
  ?max_inflight:int ->
  ?deadline_ms:int ->
  ?retain:int ->
  ?port:int ->
  mgr:Trigview.Runtime.t ->
  hub:Subscribe.t ->
  unit ->
  t

val httpd : t -> Httpd.t
val port : t -> int

(** One transport round; flushes the hub afterwards when a DML request
    fired triggers, so notifications reach SSE/long-poll clients within
    the same call. *)
val step : ?timeout_ms:int -> t -> int

val stop : t -> unit

(** Per-endpoint latency histograms. *)
val registry : t -> Obs.Metrics.registry

(** HTTP server counters + per-endpoint latencies in Prometheus text
    format (appended after the runtime's and hub's own sections). *)
val metrics_prometheus : t -> string
