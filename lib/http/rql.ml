(* RQL parser / printer / planner-compiler.  See rql.mli for the
   grammar.  The term tokenizer splits on structural characters first
   ('&' between terms, '(' ')' around arguments, ',' between them) and
   percent-decodes afterwards, so encoded structural characters inside
   field names and literals are data. *)

module Ra = Relkit.Ra
module Value = Relkit.Value

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type filter = {
  f_field : string;
  f_cmp : cmp;
  f_value : Value.t;
}

type t = {
  filters : filter list;
  sorts : (string * bool) list;
  limit : (int * int) option;
  select : string list;
}

let empty = { filters = []; sorts = []; limit = None; select = [] }

exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

(* --- percent-coding --- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - 48
  | 'a' .. 'f' -> Char.code c - 87
  | 'A' .. 'F' -> Char.code c - 55
  | _ -> fail "bad percent-encoding: %%%c" c

let pct_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' ->
      if !i + 2 >= n then fail "truncated percent-encoding in %S" s;
      Buffer.add_char buf
        (Char.chr ((hex_val s.[!i + 1] * 16) + hex_val s.[!i + 2]));
      i := !i + 2
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* Unreserved characters stay literal; everything structural ('&', '(',
   ')', ',', '+', '-' at token start, '%', '=', '#', '?', ...) is
   encoded.  '-' is kept literal except as the first character, where it
   would read as a descending-sort prefix. *)
let pct_encode s =
  let literal i c =
    match c with
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '~' | '@' -> true
    | '-' -> i > 0
    | _ -> false
  in
  let buf = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      if literal i c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

(* --- literals --- *)

let parse_value tok =
  let s = pct_decode tok in
  if String.length s >= 7 && String.sub s 0 7 = "string:" then
    Value.String (String.sub s 7 (String.length s - 7))
  else
    match s with
    | "true" -> Value.Bool true
    | "false" -> Value.Bool false
    | "null" -> Value.Null
    | _ -> (
      match int_of_string_opt s with
      | Some n -> Value.Int n
      | None -> (
        match float_of_string_opt s with
        | Some f -> Value.Float f
        | None -> Value.String s))

(* A string literal needs the [string:] prefix exactly when its raw form
   would re-parse as something else. *)
let ambiguous_string s =
  s = "true" || s = "false" || s = "null"
  || int_of_string_opt s <> None
  || float_of_string_opt s <> None
  || (String.length s >= 7 && String.sub s 0 7 = "string:")

let print_value = function
  | Value.Int n -> string_of_int n
  | Value.Float f ->
    let s = Printf.sprintf "%.17g" f in
    (* %g may drop the decimal point for integral floats; keep the token
       float-shaped so it re-parses as a Float, not an Int *)
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'n' (* nan / inf have no '.'; accept as-is *)
       || String.contains s 'i'
    then s
    else s ^ "."
  | Value.Bool true -> "true"
  | Value.Bool false -> "false"
  | Value.Null -> "null"
  | Value.String s ->
    if ambiguous_string s then "string:" ^ pct_encode s else pct_encode s

(* --- parsing --- *)

let cmp_of_name = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "le" -> Some Le
  | "gt" -> Some Gt
  | "ge" -> Some Ge
  | _ -> None

let split_term term =
  match String.index_opt term '(' with
  | None -> fail "malformed term %S: expected name(args)" term
  | Some lp ->
    if String.length term = 0 || term.[String.length term - 1] <> ')' then
      fail "malformed term %S: missing closing parenthesis" term;
    let name = String.sub term 0 lp in
    let args = String.sub term (lp + 1) (String.length term - lp - 2) in
    if name = "" then fail "malformed term %S: empty operator" term;
    if String.contains args '(' then
      fail "malformed term %S: nested parentheses" term;
    (name, if args = "" then [] else String.split_on_char ',' args)

let parse_sort_key tok =
  if tok = "" || tok = "+" || tok = "-" then fail "empty sort key";
  match tok.[0] with
  | '-' -> (pct_decode (String.sub tok 1 (String.length tok - 1)), true)
  | '+' -> (pct_decode (String.sub tok 1 (String.length tok - 1)), false)
  | _ -> (pct_decode tok, false)

let parse_int tok =
  match int_of_string_opt (pct_decode tok) with
  | Some n when n >= 0 -> n
  | _ -> fail "expected a non-negative integer, got %S" tok

let parse s =
  let s = String.trim s in
  if s = "" then empty
  else
    let terms = String.split_on_char '&' s in
    List.fold_left
      (fun q term ->
        if term = "" then q
        else
          let name, args = split_term term in
          match (cmp_of_name name, args) with
          | Some cmp, [ f; v ] ->
            let filter =
              { f_field = pct_decode f; f_cmp = cmp; f_value = parse_value v }
            in
            { q with filters = q.filters @ [ filter ] }
          | Some _, _ -> fail "%s() takes exactly (field,value)" name
          | None, _ -> (
            match name with
            | "sort" ->
              if args = [] then fail "sort() needs at least one key";
              { q with sorts = q.sorts @ List.map parse_sort_key args }
            | "limit" -> (
              match args with
              | [ off; cnt ] ->
                { q with limit = Some (parse_int off, parse_int cnt) }
              | _ -> fail "limit() takes exactly (offset,count)")
            | "select" ->
              if args = [] then fail "select() needs at least one field";
              { q with select = q.select @ List.map pct_decode args }
            | _ -> fail "unknown RQL operator %S" name))
      empty terms

(* --- printing --- *)

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let print q =
  let terms =
    List.map
      (fun f ->
        Printf.sprintf "%s(%s,%s)" (cmp_name f.f_cmp) (pct_encode f.f_field)
          (print_value f.f_value))
      q.filters
    @ (match q.sorts with
      | [] -> []
      | sorts ->
        [ Printf.sprintf "sort(%s)"
            (String.concat ","
               (List.map
                  (fun (f, desc) ->
                    (if desc then "-" else "+") ^ pct_encode f)
                  sorts));
        ])
    @ (match q.select with
      | [] -> []
      | fields ->
        [ Printf.sprintf "select(%s)"
            (String.concat "," (List.map pct_encode fields));
        ])
    @
    match q.limit with
    | None -> []
    | Some (off, cnt) -> [ Printf.sprintf "limit(%d,%d)" off cnt ]
  in
  String.concat "&" terms

(* --- compilation onto the relational planner --- *)

let resolve_field ~columns f =
  if List.mem f columns then f
  else
    let attr = "@" ^ f in
    if List.mem attr columns then attr
    else fail "unknown field %S" f

let ra_cmp = function
  | Eq -> Ra.Eq
  | Ne -> Ra.Neq
  | Lt -> Ra.Lt
  | Le -> Ra.Le
  | Gt -> Ra.Gt
  | Ge -> Ra.Ge

let compile ~columns q plan =
  (* validate select() names even though projection happens at render *)
  List.iter (fun f -> ignore (resolve_field ~columns f)) q.select;
  let plan =
    match q.filters with
    | [] -> plan
    | filters ->
      let pred =
        Ra.conj
          (List.map
             (fun f ->
               Ra.Binop
                 ( ra_cmp f.f_cmp,
                   Ra.Col (resolve_field ~columns f.f_field),
                   Ra.Const f.f_value ))
             filters)
      in
      Ra.Select (pred, plan)
  in
  match q.sorts with
  | [] -> plan
  | sorts ->
    Ra.Order_by
      ( List.map
          (fun (f, desc) ->
            (resolve_field ~columns f, if desc then Ra.Desc else Ra.Asc))
          sorts,
        plan )

let limit_slice q rows =
  match q.limit with
  | None -> rows
  | Some (off, cnt) ->
    let rec drop n = function
      | rest when n <= 0 -> rest
      | [] -> []
      | _ :: rest -> drop (n - 1) rest
    in
    let rec take n = function
      | _ when n <= 0 -> []
      | [] -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take cnt (drop off rows)
