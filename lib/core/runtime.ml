module Database = Relkit.Database
module Schema = Relkit.Schema
module Value = Relkit.Value
module Ra = Relkit.Ra
module Ra_opt = Relkit.Ra_opt
module Ra_eval = Relkit.Ra_eval
module Op = Xqgm.Op
module Expr = Xqgm.Expr
module Xval = Xqgm.Xval
module Eval = Xqgm.Eval
module Xml = Xmlkit.Xml
module Lineage = Xqgm.Lineage
module Ast = Xquery.Ast
module Compile = Xquery.Compile
module Compose = Xquery.Compose

type strategy = Ungrouped | Grouped | Grouped_agg | Materialized

let strategy_to_string = function
  | Ungrouped -> "UNGROUPED"
  | Grouped -> "GROUPED"
  | Grouped_agg -> "GROUPED-AGG"
  | Materialized -> "MATERIALIZED"

let strategy_of_string = function
  | "UNGROUPED" -> Some Ungrouped
  | "GROUPED" -> Some Grouped
  | "GROUPED-AGG" -> Some Grouped_agg
  | "MATERIALIZED" -> Some Materialized
  | _ -> None

type firing = {
  fi_trigger : string;
  fi_event : Database.event;
  fi_old : Xml.t option;
  fi_new : Xml.t option;
  fi_args : Xval.t list;
  fi_audit_id : int;  (* audit record this firing links to; 0 when auditing off *)
  fi_stmt_id : int;  (* DML statement this firing derives from *)
}

type action = firing -> unit

type stats = {
  mutable sql_firings : int;
  mutable rows_computed : int;
  mutable actions_dispatched : int;
  mutable plans_compiled : int;
  mutable compiled_execs : int;
  mutable build_cache_hits : int;
  mutable build_cache_misses : int;
  mutable prefilter_skips : int;
      (* SQL triggers never examined thanks to the (table, event) index *)
  mutable independence_skips : int;
      (* SQL triggers inside an activated bucket that the static relevance
         signature proved independent of the statement *)
  mutable triggers_dropped : int;
      (* XML triggers dropped over the runtime's lifetime; their telemetry
         series are unregistered on drop, so this counter is what keeps
         Prometheus scrapes from seeing series vanish unexplained *)
}

exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

type tuning = {
  push_affected_keys : bool;
  share_subplans : bool;
  compile_plans : bool;
  independence : bool;
      (* derive static relevance signatures at arm time and let the firing
         path prune provably independent statements; off = every bucket hit
         fires (the pre-independence behaviour) *)
  domains : int;
  window_buckets : int;
      (* sliding-window ring geometry for the observatory: number of
         time buckets ... *)
  window_width_ms : int;
      (* ... and the width of each, so the window spans
         buckets × width_ms of recent traffic *)
  request_deadline_ms : int;
      (* per-request deadline for the network servers (socket hello /
         write-drain eviction, HTTP request + long-poll abort); 0
         disables deadlines *)
}

(* [domains] defaults from TRIGVIEW_DOMAINS so an unmodified test suite can
   be re-run under the parallel engine (CI does, at 4); absent or invalid
   means 1 = the sequential path. *)
let default_tuning =
  let domains =
    match Sys.getenv_opt "TRIGVIEW_DOMAINS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
    | None -> 1
  in
  { push_affected_keys = true;
    share_subplans = true;
    compile_plans = true;
    independence = true;
    domains;
    window_buckets = Obs.Knobs.window_buckets ();
    window_width_ms = Obs.Knobs.window_width_ms ();
    request_deadline_ms = Obs.Knobs.request_deadline_ms ();
  }

(* --- execution plan per (group, table): pushed-down or middleware --- *)

type table_plan = {
  tp_table : string;
  tp_shred : Pushdown.t option;  (* None: middleware evaluation *)
  tp_exec : Pushdown.compiled option;
      (* plans compiled once per group against the database; None when
         compilation is disabled, failed, or the graph is not pushable —
         the interpreted [tp_shred] path is the fallback *)
  tp_graph : Op.t;  (* the affected-node graph, for middleware / display *)
  tp_rel_events : Database.event list;
  tp_relevant_cols : string list;  (* UPDATE transition pruning *)
  tp_frag_keys : string list;
      (* the delta query's fragment link-key signature, static per plan;
         audit records stamp it so [why] can name the fragments involved *)
  tp_sql : string Lazy.t;  (* rendering deep plans is expensive: on demand *)
}

and member = {
  m_trigger : Trigger.t;
  m_fallback_cond : Ast.expr option;
  m_args : Ast.expr list;
}

and group = {
  g_id : int;
  g_signature : string;
  g_event : Database.event;  (* the XML-level event *)
  g_key : string list;
  g_consts_table : string;
  g_needs_old : bool ref;
  g_needs_new : bool ref;
  g_node_compare : bool;
  g_plans : table_plan list;
  mutable g_members : (string (* cid *) * member list) list;  (* keyed by cid *)
  mutable g_next_cid : int;
  g_consts_index : (string, int * string) Hashtbl.t;
      (* constants vector -> (cid, current trig_ids); avoids rescanning the
         constants table when the 100 000th similar trigger arrives *)
  g_monitored : Compose.monitored;
  g_view : string;
  g_cond_mode : string;
      (* how member conditions are evaluated — "pushed" (in the plan),
         "fallback" (per dispatch), "none"; shared by all members because
         the condition shape is part of the group signature *)
  g_strategy : strategy;
      (* the strategy this group was armed under; usually the runtime's
         default, but TUNE can re-arm individual triggers differently *)
  g_cohort : string;
      (* structural cohort key: view | path | event | condition skeleton
         (literals blanked).  Triggers sharing a cohort would share one
         group under GROUPED, so the advisor's cost model sizes cohorts,
         not groups, when comparing strategies *)
}

and t = {
  db : Database.t;
  strat : strategy;
  tuning : tuning;
  mutable views : (string * Compile.view) list;
  mutable actions : (string * (action * bool)) list;
      (* name -> (callback, parallel_safe): the flag asserts the callback
         may run on a pool domain concurrently with other members'
         callbacks (it must only touch domain-safe state, e.g. the
         subscription hub's mutex-guarded queues or atomics) *)
  pool : Pool.t;  (* shared domain pool; size 1 = strictly sequential *)
  mutable groups : group list;
  mutable trigger_index : (string * group) list;  (* trigger name -> group *)
  (* Materialized baseline: one snapshot per (view, path) *)
  mutable snapshots : (string * (string * Xml.t) list ref) list;
  counters : stats;
  ra_counters : Relkit.Ra_compile.counters;
  frag_memo : Pushdown.frag_memo;
      (* fragment engines shared across all compiled trigger groups *)
  scan_stats : Ra_eval.scan_stats;
      (* per-manager scan accounting, shared by all firing contexts *)
  histograms : Obs.Metrics.registry;
      (* always-on log-bucketed latency histograms: one per XML trigger
         (dispatch time, condition + action) and one per trigger-group
         firing body (plan execution + tagging + dispatch, non-empty
         firings only) *)
  mutable next_group : int;
  template_cache : (string, template_plans) Hashtbl.t;
  (* logical DDL in creation order (newest first): view definitions and XML
     trigger DDL text.  This — not the compiled plans — is what durability
     persists; recovery re-compiles and re-arms from it. *)
  mutable ddl_log : (string * string * string) list;  (* kind, name, payload *)
  mutable store : Durability.Store.t option;
  strategy_overrides : (string, strategy) Hashtbl.t;
      (* per-trigger strategy pins applied by TUNE: consulted (instead of
         [strat]) when the named trigger is (re-)armed; persisted as
         custom "tune" DDL records so recovery re-applies them *)
  last_reco : (string, strategy) Hashtbl.t;
      (* most recent recommendation per trigger, to detect changes *)
  mutable reco_instants : (string * int64 * string) list;
      (* recommendation-change instants (name, ts_ns, args json), newest
         first, exported into the Chrome trace *)
  mutable last_cache_hits : int;
  mutable last_cache_misses : int;
      (* build-cache totals at the last firing continuation, so the
         sequential continuation can attribute windowed cache deltas *)
}

(* Compiled plan templates, shared across groups of this manager with the
   same structure: trigger compile time is paid once per structure, so
   installing 100 000 similar triggers stays cheap. *)
and template_plans = {
  tmpl_key : string list;
  tmpl_node_compare : bool;
  tmpl_plans :
    (string (* table *) * Pushdown.t option * Op.t * Database.event list * string list)
    list;
}

let create ?(strategy = Grouped_agg) ?(tuning = default_tuning) db =
  let pool = Pool.get ~domains:tuning.domains in
  (* The runner freezes all tables (single-writer snapshot) and runs the
     statement's prepare thunks on the pool; continuations come back in
     submission order and the firing path executes them sequentially. *)
  if Pool.size pool > 1 then
    Database.set_parallel_runner db
      (Some (fun thunks -> Database.with_shared_reads db (fun () -> Pool.run_list pool thunks)));
  (* Apply window-geometry overrides before any traffic; leave the window
     alone when the tuning matches, so totals survive re-creation. *)
  let w = Database.window db in
  if
    Obs.Window.buckets w <> tuning.window_buckets
    || Obs.Window.width_ms w <> tuning.window_width_ms
  then
    Database.set_window db ~buckets:tuning.window_buckets
      ~width_ms:tuning.window_width_ms;
  { db;
    strat = strategy;
    tuning;
    views = [];
    actions = [];
    pool;
    groups = [];
    trigger_index = [];
    snapshots = [];
    counters =
      { sql_firings = 0;
        rows_computed = 0;
        actions_dispatched = 0;
        plans_compiled = 0;
        compiled_execs = 0;
        build_cache_hits = 0;
        build_cache_misses = 0;
        prefilter_skips = 0;
        independence_skips = 0;
        triggers_dropped = 0;
      };
    ra_counters = Relkit.Ra_compile.create_counters ();
    frag_memo = Pushdown.create_frag_memo ();
    scan_stats = Ra_eval.create_scan_stats ();
    histograms = Obs.Metrics.create_registry ();
    next_group = 0;
    template_cache = Hashtbl.create 16;
    ddl_log = [];
    store = None;
    strategy_overrides = Hashtbl.create 8;
    last_reco = Hashtbl.create 8;
    reco_instants = [];
    last_cache_hits = 0;
    last_cache_misses = 0;
  }

(* Tables owned by the runtime itself (trigger-grouping constants tables).
   They are regenerated when triggers are re-armed, so durability excludes
   them from both the WAL and snapshots. *)
let is_system_table name = String.length name >= 10 && String.sub name 0 10 = "trigconsts"

let record_ddl t ~kind ~name ~payload =
  t.ddl_log <- (kind, name, payload) :: t.ddl_log;
  match t.store with
  | Some s -> Durability.Store.log_meta s ~kind ~name ~payload
  | None -> ()

(* The current logical catalog: the DDL log with dropped entries compacted
   away — a ["drop_<kind>"] record cancels the earlier ["<kind>"] record of
   the same name, for any kind (xmltrigger, subscription, ...).  This is the
   meta a checkpoint embeds in its snapshot. *)
let current_meta t =
  List.rev
    (List.fold_left
       (fun acc (kind, name, payload) ->
         if String.length kind > 5 && String.sub kind 0 5 = "drop_" then
           let dropped = String.sub kind 5 (String.length kind - 5) in
           List.filter (fun (k, n, _) -> not (k = dropped && n = name)) acc
         else (kind, name, payload) :: acc)
       [] (List.rev t.ddl_log))

(* Layers above the runtime (e.g. the subscription hub) persist their own
   DDL through the runtime's log so it rides the same WAL/checkpoint/replay
   machinery.  [reopen] ignores kinds it does not know; the owning layer
   replays them from [recovery_meta] after reopen.  A ["drop_<kind>"] record
   compacts away the matching ["<kind>"] record at checkpoint time. *)
let record_custom_ddl t ~kind ~name ~payload = record_ddl t ~kind ~name ~payload

let database t = t.db
let strategy t = t.strat

let stats t =
  (* the execution-layer counters live in the Ra_compile record shared by
     all compiled plans of this manager; mirror them on read *)
  t.counters.plans_compiled <- t.ra_counters.Relkit.Ra_compile.plans_compiled;
  t.counters.compiled_execs <- t.ra_counters.Relkit.Ra_compile.compiled_execs;
  t.counters.build_cache_hits <- t.ra_counters.Relkit.Ra_compile.build_cache_hits;
  t.counters.build_cache_misses <- t.ra_counters.Relkit.Ra_compile.build_cache_misses;
  (* the prefilter and independence counters live in the database's firing
     path; mirror on read *)
  t.counters.prefilter_skips <- Database.trigger_skips t.db;
  t.counters.independence_skips <- Database.independence_skips t.db;
  t.counters

let reset_stats t =
  t.counters.sql_firings <- 0;
  t.counters.rows_computed <- 0;
  t.counters.actions_dispatched <- 0;
  t.counters.plans_compiled <- 0;
  t.counters.compiled_execs <- 0;
  t.counters.build_cache_hits <- 0;
  t.counters.build_cache_misses <- 0;
  t.counters.prefilter_skips <- 0;
  t.counters.independence_skips <- 0;
  Database.reset_trigger_skips t.db;
  Database.reset_independence_skips t.db;
  t.ra_counters.Relkit.Ra_compile.plans_compiled <- 0;
  t.ra_counters.Relkit.Ra_compile.compiled_execs <- 0;
  t.ra_counters.Relkit.Ra_compile.build_cache_hits <- 0;
  t.ra_counters.Relkit.Ra_compile.build_cache_misses <- 0

(* Scan accounting over all plan executions of this manager (interpreted
   and compiled), per source; tests assert no-full-scan properties here. *)
let reset_scan_rows t = Ra_eval.reset_scan_stats t.scan_stats
let scan_rows_total t = Ra_eval.scan_stats_total t.scan_stats
let scan_rows_report t = Ra_eval.scan_stats_report t.scan_stats

let schema_of t name =
  match Database.find_table t.db name with
  | Some tbl -> Relkit.Table.schema tbl
  | None -> fail "unknown table %S" name

let define_view t ~name text =
  if List.mem_assoc name t.views then fail "view %S already exists" name;
  match Compile.view_of_string ~schema_of:(schema_of t) ~name text with
  | view ->
    t.views <- (name, view) :: t.views;
    record_ddl t ~kind:"view" ~name ~payload:text
  | exception Compile.Unsupported msg -> fail "cannot compile view %S: %s" name msg
  | exception Xquery.Parser.Parse_error msg -> fail "cannot parse view %S: %s" name msg
  | exception Xqgm.Keys.Not_trigger_specifiable msg ->
    fail "view %S is not trigger-specifiable (Theorem 1): %s" name msg

let find_view t name = List.assoc_opt name t.views

let register_action ?(parallel_safe = false) t ~name action =
  t.actions <- (name, (action, parallel_safe)) :: List.remove_assoc name t.actions

let trigger_names t = List.map fst t.trigger_index
let sql_trigger_count t = Database.trigger_count t.db

let generated_sql t =
  List.concat_map
    (fun g ->
      List.map
        (fun tp -> (Printf.sprintf "group%d/%s" g.g_id tp.tp_table, Lazy.force tp.tp_sql))
        g.g_plans)
    t.groups

(* --- constants extraction (trigger grouping, §5.1) --- *)

let gc_col i = Printf.sprintf "gc$%d" i

(* Replace every non-boolean constant by a reference to a constants-table
   column, sharing the column counter across the given expressions. *)
let generalize_many (exprs : Expr.t list) : Expr.t list * Value.t list =
  let consts = ref [] in
  let rec go = function
    | Expr.Const (Value.Bool _ as v) -> Expr.Const v
    | Expr.Const v ->
      let i = List.length !consts in
      consts := !consts @ [ v ];
      Expr.Col (gc_col i)
    | Expr.Col c -> Expr.Col c
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
    | Expr.Not e -> Expr.Not (go e)
    | Expr.Is_null e -> Expr.Is_null (go e)
    | Expr.Node_eq (a, b) -> Expr.Node_eq (go a, go b)
    | Expr.Elem _ as e -> e
  in
  let gs = List.map go exprs in
  (gs, !consts)

let value_col_type = function
  | Value.Int _ -> Schema.TInt
  | Value.Float _ -> Schema.TFloat
  | Value.String _ -> Schema.TString
  | Value.Bool _ -> Schema.TBool
  | Value.Null -> Schema.TString

(* --- argument / side analysis --- *)

let rec expr_mentions_var name (e : Ast.expr) =
  match e with
  | Ast.Path { root = Ast.R_var v; _ } -> v = name
  | Ast.Lit _ -> false
  | Ast.Path _ -> false
  | Ast.Cmp (_, a, b) | Ast.Arith (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
    expr_mentions_var name a || expr_mentions_var name b
  | Ast.Not e -> expr_mentions_var name e
  | Ast.Call (_, args) -> List.exists (expr_mentions_var name) args
  | Ast.Quantified { source; satisfies; _ } ->
    expr_mentions_var name source || expr_mentions_var name satisfies
  | Ast.Elem { attrs; content; _ } ->
    List.exists (fun (_, e) -> expr_mentions_var name e) attrs
    || List.exists
         (function
           | Ast.C_text _ -> false
           | Ast.C_elem e | Ast.C_enclosed e -> expr_mentions_var name e)
         content
  | Ast.Flwor { clauses; where; return } ->
    List.exists
      (function Ast.For (_, e) | Ast.Let (_, e) -> expr_mentions_var name e)
      clauses
    || (match where with Some w -> expr_mentions_var name w | None -> false)
    || expr_mentions_var name return

(* Constant-fold literal arithmetic in action arguments.  The expression
   parser has no unary minus, so a negative literal like [-5] arrives as
   [Arith (Sub, Lit 0, Lit 5)]; folding turns it (and any other
   all-literal arithmetic) back into a single [Lit] that [validate_arg]
   accepts and [eval_arg] returns as an atom. *)
let rec fold_arg (a : Ast.expr) : Ast.expr =
  match a with
  | Ast.Arith (op, l, r) -> (
    match fold_arg l, fold_arg r with
    | Ast.Lit (Value.Int x), Ast.Lit (Value.Int y) -> (
      match op with
      | Ast.Add -> Ast.Lit (Value.Int (x + y))
      | Ast.Sub -> Ast.Lit (Value.Int (x - y))
      | Ast.Mul -> Ast.Lit (Value.Int (x * y))
      | Ast.Div when y <> 0 -> Ast.Lit (Value.Int (x / y))
      | Ast.Mod when y <> 0 -> Ast.Lit (Value.Int (x mod y))
      | _ -> a)
    | l', r' -> (
      let as_float = function
        | Ast.Lit (Value.Float f) -> Some f
        | Ast.Lit (Value.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      match as_float l', as_float r' with
      | Some x, Some y -> (
        match op with
        | Ast.Add -> Ast.Lit (Value.Float (x +. y))
        | Ast.Sub -> Ast.Lit (Value.Float (x -. y))
        | Ast.Mul -> Ast.Lit (Value.Float (x *. y))
        | Ast.Div -> Ast.Lit (Value.Float (x /. y))
        | Ast.Mod -> a)
      | _ -> if l' == l && r' == r then a else Ast.Arith (op, l', r')))
  | _ -> a

let validate_arg (a : Ast.expr) =
  let rec ok = function
    | Ast.Lit _ -> true
    | Ast.Path { root = Ast.R_var ("OLD_NODE" | "NEW_NODE"); _ } -> true
    | Ast.Call (("count" | "sum" | "min" | "max" | "avg"), [ p ]) -> ok p
    | _ -> false
  in
  if not (ok (fold_arg a)) then
    fail "unsupported action argument %s (use literals or OLD_NODE/NEW_NODE paths)"
      (Ast.expr_to_string a)

let eval_arg ~old_node ~new_node (a : Ast.expr) : Xval.t =
  let nodes_of (p : Ast.path) =
    let base =
      match p.Ast.root with
      | Ast.R_var "OLD_NODE" -> old_node
      | Ast.R_var "NEW_NODE" -> new_node
      | _ -> None
    in
    match base with
    | None -> []
    | Some node ->
      if p.Ast.steps = [] then [ node ]
      else
        let steps =
          List.map
            (fun (s : Ast.step) ->
              { Xmlkit.Xpath.axis =
                  (match s.Ast.axis with
                  | Ast.Child -> Xmlkit.Xpath.Child
                  | Ast.Descendant -> Xmlkit.Xpath.Descendant
                  | Ast.Attribute -> Xmlkit.Xpath.Attribute
                  | Ast.Self -> Xmlkit.Xpath.Self);
                test =
                  (if s.Ast.name = "*" then Xmlkit.Xpath.Any
                   else Xmlkit.Xpath.Name s.Ast.name);
                preds = [];
              })
            p.Ast.steps
        in
        Xmlkit.Xpath.eval node { Xmlkit.Xpath.absolute = false; steps }
  in
  match fold_arg a with
  | Ast.Lit v -> Xval.atom v
  | Ast.Path p -> Xval.seq (List.map Xval.node (nodes_of p))
  | Ast.Call ("count", [ Ast.Path p ]) -> Xval.atom (Value.Int (List.length (nodes_of p)))
  | Ast.Call ((("sum" | "min" | "max" | "avg") as fn), [ Ast.Path p ]) -> (
    let nums =
      List.filter_map
        (fun n -> float_of_string_opt (String.trim (Xml.text_content n)))
        (nodes_of p)
    in
    match nums with
    | [] -> Xval.atom Value.Null
    | _ ->
      let v =
        match fn with
        | "sum" -> List.fold_left ( +. ) 0.0 nums
        | "min" -> List.fold_left Float.min Float.infinity nums
        | "max" -> List.fold_left Float.max Float.neg_infinity nums
        | _ -> List.fold_left ( +. ) 0.0 nums /. float_of_int (List.length nums)
      in
      Xval.atom (Value.Float v))
  | _ -> Xval.atom Value.Null

(* --- transition-table pruning (Appendix F.1, refined to scanned columns) --- *)

let prune_ctx (ctx : Ra_eval.ctx) ~table ~pk_slots ~relevant_slots =
  match List.assoc_opt table ctx.Ra_eval.trans with
  | None | Some ([], _) | Some (_, []) -> ctx
  | Some (delta, nabla) ->
    let key_of row = List.map (fun i -> row.(i)) pk_slots in
    let nabla_by_pk = Hashtbl.create (List.length nabla) in
    List.iter
      (fun row -> Hashtbl.replace nabla_by_pk (List.map Value.to_string (key_of row)) row)
      nabla;
    let same_relevant a b =
      List.for_all (fun i -> Value.equal a.(i) b.(i)) relevant_slots
    in
    let dropped_nabla = Hashtbl.create 8 in
    let delta' =
      List.filter
        (fun d ->
          match Hashtbl.find_opt nabla_by_pk (List.map Value.to_string (key_of d)) with
          | Some n when same_relevant d n ->
            Hashtbl.replace dropped_nabla (List.map Value.to_string (key_of n)) ();
            false
          | _ -> true)
        delta
    in
    let nabla' =
      List.filter
        (fun n ->
          not (Hashtbl.mem dropped_nabla (List.map Value.to_string (key_of n))))
        nabla
    in
    { ctx with
      Ra_eval.trans =
        (table, (delta', nabla'))
        :: List.remove_assoc table ctx.Ra_eval.trans;
    }

(* --- installing a group's SQL triggers --- *)

let decode_node = function
  | Xval.Node n -> Some n
  | Xval.Atom Value.Null -> None
  | Xval.Seq [] -> None
  | v -> fail "unexpected node value %s" (Xval.to_string v)

(* Record the outcome of one member dispatch on a live audit record.  Only
   reached when auditing is on, so the allocations here are off the
   audit-disabled hot path. *)
let audit_action (r : Obs.Audit.record) m ~outcome ~old_node ~new_node =
  (match outcome with
  | Obs.Audit.Fired -> r.Obs.Audit.dispatched <- r.Obs.Audit.dispatched + 1
  | Obs.Audit.Condition_rejected ->
    r.Obs.Audit.cond_rejected <- r.Obs.Audit.cond_rejected + 1
  | Obs.Audit.No_action -> ());
  r.Obs.Audit.actions <-
    { Obs.Audit.a_trigger = m.m_trigger.Trigger.name;
      a_action = m.m_trigger.Trigger.action;
      a_outcome = outcome;
      a_condition =
        (match m.m_fallback_cond with Some c -> Ast.expr_to_string c | None -> "");
      a_has_old = old_node <> None;
      a_has_new = new_node <> None;
    }
    :: r.Obs.Audit.actions

(* Fan a dispatch's member sweep out across the pool only when it is worth
   a batch handoff: the per-member work (condition + args + callback) is a
   few µs, so small member lists stay inline. *)
let parallel_dispatch_threshold = 16

let dispatch ?audit ?(stmt_id = 0) t group ~trig_ids ~old_node ~new_node =
  let members =
    match List.assoc_opt trig_ids group.g_members with
    | Some ms -> ms
    | None -> []
  in
  let audit_id = match audit with Some r -> r.Obs.Audit.id | None -> 0 in
  (* [bump] abstracts the dispatched counter so the parallel path can count
     into shard-local cells and merge deterministically afterwards. *)
  let dispatch_one ~bump m =
    let t0 = Obs.Trace.now () in
    let passes =
      match m.m_fallback_cond with
      | None -> true
      | Some cond -> Compose.condition_fallback cond ~old_node ~new_node
    in
    let callback =
      if passes then
        Option.map fst (List.assoc_opt m.m_trigger.Trigger.action t.actions)
      else None
    in
    (match audit with
    | Some r ->
      let outcome =
        if not passes then Obs.Audit.Condition_rejected
        else if Option.is_none callback then Obs.Audit.No_action
        else Obs.Audit.Fired
      in
      audit_action r m ~outcome ~old_node ~new_node
    | None -> ());
    if passes then begin
      bump ();
      (match callback with
      | Some action ->
        action
          { fi_trigger = m.m_trigger.Trigger.name;
            fi_event = group.g_event;
            fi_old = old_node;
            fi_new = new_node;
            fi_args = List.map (eval_arg ~old_node ~new_node) m.m_args;
            fi_audit_id = audit_id;
            fi_stmt_id = stmt_id;
          }
      | None -> ())
    end;
    let dt = Int64.sub (Obs.Trace.now ()) t0 in
    Obs.Metrics.observe_in t.histograms m.m_trigger.Trigger.name dt;
    let tracer = Database.tracer t.db in
    if Obs.Trace.enabled tracer then
      Obs.Trace.finish_note tracer t0 "dispatch" m.m_trigger.Trigger.name
  in
  let pool_size = Pool.size t.pool in
  let parallel_ok =
    pool_size > 1 && audit = None
    && List.length members >= parallel_dispatch_threshold
    && List.for_all
         (fun m ->
           match List.assoc_opt m.m_trigger.Trigger.action t.actions with
           | Some (_, parallel_safe) -> parallel_safe
           | None -> true (* no callback: nothing unsafe will run *))
         members
  in
  if not parallel_ok then
    List.iter
      (dispatch_one ~bump:(fun () ->
           t.counters.actions_dispatched <- t.counters.actions_dispatched + 1))
      members
  else begin
    (* Pre-create every member's histogram on this domain so the registry
       Hashtbl is never structurally mutated from the shards. *)
    List.iter
      (fun m -> ignore (Obs.Metrics.ensure_in t.histograms m.m_trigger.Trigger.name))
      members;
    let arr = Array.of_list members in
    let n = Array.length arr in
    let shard_len = (n + pool_size - 1) / pool_size in
    let shards =
      List.init pool_size (fun s ->
          let lo = s * shard_len in
          let hi = min n (lo + shard_len) in
          (lo, hi))
      |> List.filter (fun (lo, hi) -> lo < hi)
    in
    let counts =
      Pool.run_list t.pool
        (List.map
           (fun (lo, hi) () ->
             let c = ref 0 in
             for i = lo to hi - 1 do
               dispatch_one ~bump:(fun () -> incr c) arr.(i)
             done;
             !c)
           shards)
    in
    t.counters.actions_dispatched <-
      t.counters.actions_dispatched + List.fold_left ( + ) 0 counts
  end

(* --- static query–update independence (signature derivation) ---

   At arm time, the trigger's monitored plan determines (a) which base
   columns of each table its delta queries can observe and (b) which
   constant predicates every contributing row must satisfy (the path
   predicates compiled into the plan as literals — WHERE-condition
   constants are generalized into the constants table and deliberately
   invisible here).  The firing path uses the resulting signature to prove
   statements independent before any delta plan runs. *)

(* Does [row] satisfy one resolved filter?  Mirrors [Ra_eval.value_cmp] for
   non-NULL scalars; anything uncertain (NULL, out-of-range slot) answers
   [true] — the row is then treated as relevant. *)
let relevance_filter_holds row (s, cmp, v) =
  s >= Array.length row
  ||
  let a = row.(s) in
  Value.is_null a || Value.is_null v
  ||
  let c = Value.compare a v in
  (match cmp with
  | Ra.Eq -> c = 0
  | Ra.Neq -> c <> 0
  | Ra.Lt -> c < 0
  | Ra.Le -> c <= 0
  | Ra.Gt -> c > 0
  | Ra.Ge -> c >= 0
  | Ra.And | Ra.Or | Ra.Add | Ra.Sub | Ra.Mul | Ra.Div | Ra.Mod -> true)

(* The signature for one (plan, table): observed columns come from
   [Lineage.observed], the needed-columns pass over the monitored plan (the
   raw scan footprint would list every schema column the Table op exposes,
   observed or not); the predicate is the disjunction over scan sites of
   each site's constant-filter conjunction.  A site with no (resolvable)
   filters disables the predicate entirely: rows reaching it are
   unconstrained. *)
let derive_relevance t ~table monitored_op =
  if not t.tuning.independence then None
  else begin
    let schema = schema_of t table in
    let cols = Lineage.observed ~table monitored_op in
    let sites = Lineage.site_filters ~table monitored_op in
    let resolve f =
      match Schema.col_index schema f.Lineage.f_col with
      | s -> Some (s, f.Lineage.f_cmp, f.Lineage.f_const)
      | exception _ -> None
    in
    let rsites = List.map (List.filter_map resolve) sites in
    let pred =
      if rsites = [] || List.mem [] rsites then None
      else
        Some
          (fun row -> List.exists (List.for_all (relevance_filter_holds row)) rsites)
    in
    let eq =
      (* an equality implied by every site lets the bucket index this
         trigger by (column, constant) *)
      match sites with
      | [] -> None
      | first :: rest ->
        List.find_opt
          (fun f ->
            f.Lineage.f_cmp = Ra.Eq
            && List.for_all
                 (List.exists (fun g ->
                      g.Lineage.f_cmp = Ra.Eq
                      && g.Lineage.f_col = f.Lineage.f_col
                      && Value.equal g.Lineage.f_const f.Lineage.f_const))
                 rest)
          first
        |> Option.map (fun f -> (f.Lineage.f_col, f.Lineage.f_const))
    in
    Some { Database.rel_cols = Some cols; rel_pred = pred; rel_eq = eq }
  end

(* Printable form of a signature, for [explain]. *)
let relevance_summary ~table monitored_op =
  let observed = Lineage.observed ~table monitored_op in
  let sites = Lineage.site_filters ~table monitored_op in
  let cols = String.concat "," observed in
  let pred =
    if sites = [] || List.exists (fun s -> s = []) sites then "-"
    else
      String.concat " OR "
        (List.map
           (fun s ->
             "(" ^ String.concat " AND " (List.map Lineage.filter_to_string s) ^ ")")
           sites)
  in
  Printf.sprintf "cols={%s} pred=%s" cols pred

let install_sql_triggers t group =
  (* Windowed series names for this group, allocated once per install so
     the firing continuation never formats strings for the observatory. *)
  let gkey = Printf.sprintf "g%d" group.g_id in
  let w_firings = "firings:" ^ gkey in
  let w_latency = "latency_ns:" ^ gkey in
  let w_pairs = "pairs:" ^ gkey in
  let w_kept = "kept:" ^ gkey in
  let w_spurious = "spurious:" ^ gkey in
  let w_scan = "scan_rows:" ^ gkey in
  List.iter
    (fun tp ->
      let schema = schema_of t tp.tp_table in
      let pk_slots =
        List.map (Schema.col_index schema) schema.Schema.primary_key
      in
      let relevant_slots = List.map (Schema.col_index schema) tp.tp_relevant_cols in
      (* Two-phase body.  [prepare tc] is the read-only half: it builds the
         evaluation context (over a task-private scan accumulator), runs
         the delta plans and computes the (OLD, NEW) pairs plus spurious
         verdicts — everything a reader domain may do against the frozen
         statement snapshot.  It returns a continuation holding every side
         effect: counters, scan-stat merge, audit record creation (and its
         [fresh_id]), action dispatch and any DML those actions cascade.
         Continuations always run on the statement's domain in trigger
         creation order, so firing order, audit ids and WAL appends are
         independent of the domain count. *)
      let prepare tc =
        let pstats = Ra_eval.create_scan_stats () in
        let ctx = Ra_eval.ctx_of_trigger ~stats:pstats tc in
        let ctx =
          if tc.Database.event = Database.Update then
            prune_ctx ctx ~table:tp.tp_table ~pk_slots ~relevant_slots
          else ctx
        in
        let finish_empty () =
          t.counters.sql_firings <- t.counters.sql_firings + 1;
          Ra_eval.merge_scan_stats ~into:t.scan_stats pstats
        in
        let empty =
          match List.assoc_opt tp.tp_table ctx.Ra_eval.trans with
          | Some ([], []) -> true
          | _ -> false
        in
        if empty then finish_empty
        else begin
          let t0 = Obs.Trace.now () in
          let cols =
            [ "trig_ids" ]
            @ (if !(group.g_needs_old) || group.g_node_compare then [ "old_node" ] else [])
            @ if !(group.g_needs_new) || group.g_node_compare then [ "new_node" ] else []
          in
          let rel =
            match tp.tp_exec, tp.tp_shred with
            | Some comp, _ -> Pushdown.render_compiled ~cols comp ctx
            | None, Some shred -> Pushdown.render ~cols ctx shred
            | None, None ->
              let full = Eval.eval ctx tp.tp_graph in
              let slots = List.map (Eval.col_index full) cols in
              { Eval.cols = Array.of_list cols;
                rows =
                  List.map
                    (fun row -> Array.of_list (List.map (fun i -> row.(i)) slots))
                    full.Eval.rows;
              }
          in
          let idx c = Eval.col_index rel c in
          let ti = idx "trig_ids" in
          let oi = if List.mem "old_node" cols then Some (idx "old_node") else None in
          let ni = if List.mem "new_node" cols then Some (idx "new_node") else None in
          (* Consecutive rows usually carry the same (old, new) nodes — one
             view node matched by many triggers — and the compiled getters
             share them physically, so remember the last verdict. *)
          let last_cmp = ref None in
          let pairs =
            List.map
              (fun row ->
                let old_node = Option.bind oi (fun i -> decode_node row.(i)) in
                let new_node = Option.bind ni (fun i -> decode_node row.(i)) in
                let spurious =
                  group.g_node_compare
                  &&
                  match old_node, new_node with
                  | Some a, Some b -> (
                    match !last_cmp with
                    | Some (a', b', verdict) when a' == a && b' == b -> verdict
                    | _ ->
                      let verdict = Xml.equal a b in
                      last_cmp := Some (a, b, verdict);
                      verdict)
                  | _ -> false
                in
                let trig_ids =
                  if spurious then ""
                  else
                    match row.(ti) with
                    | Xval.Atom (Value.String s) -> s
                    | v -> fail "bad trig_ids value %s" (Xval.to_string v)
                in
                (old_node, new_node, trig_ids, spurious))
              rel.Eval.rows
          in
          fun () ->
            t.counters.sql_firings <- t.counters.sql_firings + 1;
            Ra_eval.merge_scan_stats ~into:t.scan_stats pstats;
            (* audit record, inserted before dispatch so action callbacks
               can link back by id; its counters are mutated as the firing
               proceeds.  One boolean load when auditing is off. *)
            let audit_log = Database.audit t.db in
            let arec =
              if Obs.Audit.enabled audit_log then begin
                let delta_rows, nabla_rows =
                  match List.assoc_opt tp.tp_table ctx.Ra_eval.trans with
                  | Some (d, n) -> (List.length d, List.length n)
                  | None -> (0, 0)
                in
                let r =
                  { Obs.Audit.id = Obs.Audit.fresh_id audit_log;
                    ts_ns = Obs.Trace.now ();
                    stmt_id = tc.Database.stmt_id;
                    stmt_event = Database.string_of_event tc.Database.event;
                    stmt_table = tc.Database.target;
                    sql_trigger =
                      Printf.sprintf "xmltrig$g%d$%s$%s" group.g_id tp.tp_table
                        (Database.string_of_event tc.Database.event);
                    strategy = strategy_to_string group.g_strategy;
                    group_id = group.g_id;
                    view = group.g_view;
                    plan_table = tp.tp_table;
                    plan_mode =
                      (match tp.tp_exec, tp.tp_shred with
                      | Some _, _ -> "compiled"
                      | None, Some _ -> "interpreted"
                      | None, None -> "middleware");
                    frag_keys = tp.tp_frag_keys;
                    cond_mode = group.g_cond_mode;
                    origin = Database.statement_origin t.db;
                    delta_rows;
                    nabla_rows;
                    pairs_computed = 0;
                    pairs_spurious = 0;
                    pairs_kept = 0;
                    cond_rejected = 0;
                    dispatched = 0;
                    actions = [];
                    notes = [];
                  }
                in
                Obs.Audit.add audit_log r;
                Some r
              end
              else None
            in
            t.counters.rows_computed <-
              t.counters.rows_computed + List.length rel.Eval.rows;
            (match arec with
            | Some r -> r.Obs.Audit.pairs_computed <- List.length rel.Eval.rows
            | None -> ());
            let n_spurious = ref 0 and n_kept = ref 0 in
            List.iter
              (fun (old_node, new_node, trig_ids, spurious) ->
                if spurious then begin
                  incr n_spurious;
                  match arec with
                  | Some r ->
                    r.Obs.Audit.pairs_spurious <- r.Obs.Audit.pairs_spurious + 1
                  | None -> ()
                end
                else begin
                  incr n_kept;
                  (match arec with
                  | Some r -> r.Obs.Audit.pairs_kept <- r.Obs.Audit.pairs_kept + 1
                  | None -> ());
                  dispatch ?audit:arec ~stmt_id:tc.Database.stmt_id t group
                    ~trig_ids ~old_node ~new_node
                end)
              pairs;
            let fin = Obs.Trace.now () in
            let dt = Int64.sub fin t0 in
            Obs.Metrics.observe_in t.histograms
              (Printf.sprintf "firing:g%d:%s" group.g_id tp.tp_table)
              dt;
            (* Windowed cost profile for the advisor.  Continuations run
               sequentially on the statement's domain, so these adds (and
               the cache-delta attribution) are race-free. *)
            let w = Database.window t.db in
            Obs.Window.add w ~now:fin w_firings 1.0;
            Obs.Window.add w ~now:fin w_latency (Int64.to_float dt);
            let pc = List.length rel.Eval.rows in
            if pc > 0 then Obs.Window.add w ~now:fin w_pairs (float_of_int pc);
            if !n_kept > 0 then
              Obs.Window.add w ~now:fin w_kept (float_of_int !n_kept);
            if !n_spurious > 0 then
              Obs.Window.add w ~now:fin w_spurious (float_of_int !n_spurious);
            let sc = Ra_eval.scan_stats_total pstats in
            if sc > 0 then Obs.Window.add w ~now:fin w_scan (float_of_int sc);
            let ch = t.ra_counters.Relkit.Ra_compile.build_cache_hits
            and cm = t.ra_counters.Relkit.Ra_compile.build_cache_misses in
            if ch > t.last_cache_hits then
              Obs.Window.add w ~now:fin "cache_hits"
                (float_of_int (ch - t.last_cache_hits));
            if cm > t.last_cache_misses then
              Obs.Window.add w ~now:fin "cache_misses"
                (float_of_int (cm - t.last_cache_misses));
            t.last_cache_hits <- ch;
            t.last_cache_misses <- cm
        end
      in
      let body tc = (prepare tc) () in
      (* one signature per (plan, table), shared by all relational events:
         a statement provably unable to change the monitored level cannot
         produce an XML event of any kind *)
      let relevance =
        derive_relevance t ~table:tp.tp_table group.g_monitored.Compose.m_op
      in
      List.iter
        (fun ev ->
          Database.create_trigger t.db
            { Database.trig_name =
                Printf.sprintf "xmltrig$g%d$%s$%s" group.g_id tp.tp_table
                  (Database.string_of_event ev);
              trig_table = tp.tp_table;
              trig_event = ev;
              body;
              prepare = Some prepare;
              relevance;
              (* the full text is available via [generated_sql]; rendering a
                 deep plan eagerly here would dominate trigger creation *)
              sql_text =
                Printf.sprintf "-- SQL trigger for %s (see Runtime.generated_sql)"
                  tp.tp_table;
            })
        tp.tp_rel_events)
    group.g_plans

(* --- group construction --- *)

let consts_template = "trigconsts$template"

let rec rename_base_table ~from ~to_ (plan : Ra.t) : Ra.t =
  let go = rename_base_table ~from ~to_ in
  match plan with
  | Ra.Scan (Ra.Base tname, renames) when tname = from -> Ra.Scan (Ra.Base to_, renames)
  | Ra.Scan (s, r) -> Ra.Scan (s, r)
  | Ra.Values (c, r) -> Ra.Values (c, r)
  | Ra.Select (p, i) -> Ra.Select (p, go i)
  | Ra.Project (d, i) -> Ra.Project (d, go i)
  | Ra.Group_by (k, a, i) -> Ra.Group_by (k, a, go i)
  | Ra.Distinct i -> Ra.Distinct (go i)
  | Ra.Order_by (k, i) -> Ra.Order_by (k, go i)
  | Ra.Shared (id, i) -> Ra.Shared (id, go i)
  | Ra.Join (k, p, l, r) -> Ra.Join (k, p, go l, go r)
  | Ra.Union { all; inputs } -> Ra.Union { all; inputs = List.map go inputs }

let rec rename_in_template ~from ~to_ (tpl : Pushdown.template) =
  match tpl with
  | Pushdown.T_atom a -> Pushdown.T_atom a
  | Pushdown.T_elem { tag; attrs; content } ->
    Pushdown.T_elem
      { tag; attrs; content = List.map (rename_in_template ~from ~to_) content }
  | Pushdown.T_frag f ->
    Pushdown.T_frag
      { f with
        Pushdown.f_plan = rename_base_table ~from ~to_ f.Pushdown.f_plan;
        f_template = rename_in_template ~from ~to_ f.Pushdown.f_template;
      }

let rename_shred ~from ~to_ (s : Pushdown.t) =
  { s with
    Pushdown.plan = rename_base_table ~from ~to_ s.Pushdown.plan;
    xml =
      List.map (fun (c, tpl) -> (c, rename_in_template ~from ~to_ tpl)) s.Pushdown.xml;
  }

let rec rename_op_table ~from ~to_ (op : Op.t) : Op.t =
  let go = rename_op_table ~from ~to_ in
  match op.Op.node with
  | Op.Table { table; binding; cols } ->
    if table = from then Op.table ~binding to_ cols else op
  | Op.Select { input; pred } -> Op.select ~pred (go input)
  | Op.Project { input; defs } -> Op.project ~defs (go input)
  | Op.Join { kind; left; right; pred } -> Op.join ~kind ~pred (go left) (go right)
  | Op.Group_by { input; keys; aggs; order } -> Op.group_by ~keys ~aggs ~order (go input)
  | Op.Union { cols; inputs } ->
    Op.union ~cols (List.map (fun (i, m) -> (go i, m)) inputs)

let signature ~view_name ~path_text ~event ~cond_shape ~n_consts ~strat =
  Printf.sprintf "%s|%s|%s|%s|%d|%s" view_name path_text
    (Database.string_of_event event)
    cond_shape n_consts
    (match strat with Grouped_agg -> "agg" | _ -> "plain")

let build_template t ~strat ~monitored ~event ~cond_rel ~nested ~n_consts =
  (* spurious-update checking (Appendix E.1/F): injective views need none;
     aggregate-only non-injectivity compares the aggregate columns in the
     plan; otherwise the tagger compares the full nodes *)
  let node_compare = ref false in
  let verdict_check table =
    if event <> Database.Update then Angraph.No_check
    else
      match Xqgm.Injective.analyze ~table ~schema_of:(schema_of t) monitored.Compose.m_op with
      | Xqgm.Injective.Injective -> Angraph.No_check
      | Xqgm.Injective.Agg_only cols -> Angraph.Compare_cols cols
      | Xqgm.Injective.Opaque ->
        node_compare := true;
        Angraph.No_check
  in
  let consts_cols =
    ("cid", "cid") :: ("trig_ids", "trig_ids")
    :: List.init n_consts (fun i -> (gc_col i, gc_col i))
  in
  let consts_op = Op.table consts_template consts_cols in
  let events =
    Event_pushdown.source_events monitored.Compose.m_op event
  in
  let tables = List.sort_uniq compare (List.map (fun e -> e.Event_pushdown.ev_table) events) in
  let m : Angraph.monitored =
    { Angraph.graph = monitored.Compose.m_op;
      node_col = monitored.Compose.m_node_col;
      key = monitored.Compose.m_key;
    }
  in
  let plans =
    List.filter_map
      (fun table ->
        let check = verdict_check table in
        match
          Angraph.create ~schema_of:(schema_of t) ~event ~table ~check ?cond:cond_rel
            ~consts:consts_op ?nested m
        with
        | None -> None
        | Some an ->
          let shred =
            match Pushdown.shred an.Angraph.graph with
            | shred ->
              (* Pass order matters: (1) restrict by affected keys — before
                 the GROUPED-AGG rewrite introduces transition scans into the
                 old side, which would hide the restriction opportunity;
                 (2) invert old aggregates; (3) share common subplans — a
                 shared plan is evaluated once, so it must already contain
                 the affected-keys join (ProductCount over AffectedKeys,
                 Fig. 16). *)
              let shred =
                if t.tuning.push_affected_keys then
                  { shred with
                    Pushdown.plan = Ra_opt.push_transition_joins shred.Pushdown.plan;
                  }
                else shred
              in
              let shred =
                if strat = Grouped_agg then
                  Pushdown.invert_old_aggregates ~table shred
                else shred
              in
              let plan =
                if t.tuning.share_subplans then
                  Ra_opt.share_common_subplans shred.Pushdown.plan
                else shred.Pushdown.plan
              in
              Some { shred with Pushdown.plan }
            | exception Pushdown.Not_pushable _ -> None
          in
          let rel_events =
            List.filter_map
              (fun e ->
                if e.Event_pushdown.ev_table = table then Some e.Event_pushdown.ev_event
                else None)
              events
            |> List.sort_uniq compare
          in
          let relevant = Event_pushdown.relevant_columns monitored.Compose.m_op ~table in
          Some (table, shred, an.Angraph.graph, rel_events, relevant))
      tables
  in
  { tmpl_key = monitored.Compose.m_key; tmpl_node_compare = !node_compare; tmpl_plans = plans }

(* Instantiation compiles each pushed-down plan once against the database
   (the group's constants table and its indexes already exist at this
   point, so probe strategies can resolve against them).  A compilation
   failure degrades to the interpreted path, never to an error. *)
let instantiate_template t tmpl ~consts_table =
  List.map
    (fun (table, shred, graph, rel_events, relevant) ->
      let shred = Option.map (rename_shred ~from:consts_template ~to_:consts_table) shred in
      let graph = rename_op_table ~from:consts_template ~to_:consts_table graph in
      let exec =
        if not t.tuning.compile_plans then None
        else
          Option.bind shred (fun s ->
              try Some (Pushdown.compile ~counters:t.ra_counters ~frag_memo:t.frag_memo t.db s)
              with _ -> None)
      in
      let sql =
        lazy
          (match shred with
          | Some s -> Pushdown.to_sql s
          | None ->
            "-- middleware evaluation (plan not pushable):\n" ^ Xqgm.Print.to_string graph)
      in
      { tp_table = table;
        tp_shred = shred;
        tp_exec = exec;
        tp_graph = graph;
        tp_rel_events = rel_events;
        tp_relevant_cols = relevant;
        tp_frag_keys =
          (match shred with Some s -> Pushdown.frag_keys s | None -> []);
        tp_sql = sql;
      })
    tmpl.tmpl_plans

(* --- consts table management --- *)

let create_consts_table t ~name ~consts =
  let cols =
    [ ("cid", Schema.TInt); ("trig_ids", Schema.TString) ]
    @ List.mapi (fun i v -> (gc_col i, value_col_type v)) consts
  in
  Database.create_table t.db
    (Schema.make ~name ~columns:cols ~primary_key:[ "cid" ] ());
  (* the generated plans probe the constants table by constant value *)
  List.iteri (fun i _ -> Database.create_index t.db ~table:name ~column:(gc_col i)) consts

let add_member_constants t group ~consts ~trig_name =
  let key = String.concat "\x00" (List.map Value.to_string consts) in
  match Hashtbl.find_opt group.g_consts_index key with
  | Some (cid, old_ids) ->
    let new_ids = old_ids ^ "," ^ trig_name in
    ignore
      (Database.update_pk t.db ~table:group.g_consts_table ~pk:[ Value.Int cid ]
         ~set:(fun r ->
           let r = Array.copy r in
           r.(1) <- Value.String new_ids;
           r));
    Hashtbl.replace group.g_consts_index key (cid, new_ids);
    (new_ids, old_ids)
  | None ->
    let cid = group.g_next_cid in
    group.g_next_cid <- cid + 1;
    Database.insert_rows t.db ~table:group.g_consts_table
      [ Array.of_list (Value.Int cid :: Value.String trig_name :: consts) ];
    Hashtbl.replace group.g_consts_index key (cid, trig_name);
    (trig_name, "")

(* --- the Materialized baseline --- *)

let snapshot_key view_name path_text = view_name ^ "#" ^ path_text

let level_snapshot t (m : Compose.monitored) =
  let rel = Eval.eval (Ra_eval.ctx_of_db ~stats:t.scan_stats t.db) m.Compose.m_op in
  let kslots = List.map (Eval.col_index rel) m.Compose.m_key in
  let nslot = Eval.col_index rel m.Compose.m_node_col in
  List.map
    (fun row ->
      let key =
        String.concat "\x00" (List.map (fun i -> Xval.to_string row.(i)) kslots)
      in
      match row.(nslot) with
      | Xval.Node n -> (key, n)
      | v -> fail "level row is not a node: %s" (Xval.to_string v))
    rel.Eval.rows

let install_materialized t ~gid (tr : Trigger.t) view_name m =
  (* Windowed series names (one set per singleton group), allocated once. *)
  let gkey = Printf.sprintf "g%d" gid in
  let w_firings = "firings:" ^ gkey in
  let w_latency = "latency_ns:" ^ gkey in
  let w_pairs = "pairs:" ^ gkey in
  let w_kept = "kept:" ^ gkey in
  let w_spurious = "spurious:" ^ gkey in
  (* one snapshot per trigger: each diff consumes its own before-image *)
  let key =
    snapshot_key view_name (Ast.path_to_string tr.Trigger.path) ^ "#" ^ tr.Trigger.name
  in
  let snap =
    match List.assoc_opt key t.snapshots with
    | Some s -> s
    | None ->
      let s = ref (level_snapshot t m) in
      t.snapshots <- (key, s) :: t.snapshots;
      s
  in
  let events = Event_pushdown.source_events m.Compose.m_op tr.Trigger.event in
  let body tc =
    let bt0 = Obs.Trace.now () in
    let n_computed = ref 0 and n_sp = ref 0 and n_kept = ref 0 in
    t.counters.sql_firings <- t.counters.sql_firings + 1;
    let before = !snap in
    let after = level_snapshot t m in
    snap := after;
    let audit_log = Database.audit t.db in
    let arec =
      if Obs.Audit.enabled audit_log then begin
        let r =
          { Obs.Audit.id = Obs.Audit.fresh_id audit_log;
            ts_ns = Obs.Trace.now ();
            stmt_id = tc.Database.stmt_id;
            stmt_event = Database.string_of_event tc.Database.event;
            stmt_table = tc.Database.target;
            sql_trigger =
              Printf.sprintf "xmltrig$mat$%s$%s$%s" tr.Trigger.name
                tc.Database.target
                (Database.string_of_event tc.Database.event);
            strategy = strategy_to_string Materialized;
            group_id = -1;  (* materialized triggers are not grouped *)
            view = view_name;
            plan_table = tc.Database.target;
            plan_mode = "materialized";
            frag_keys = [];
            cond_mode =
              (if tr.Trigger.condition <> None then "fallback" else "none");
            origin = Database.statement_origin t.db;
            delta_rows = List.length tc.Database.inserted;
            nabla_rows = List.length tc.Database.deleted;
            pairs_computed = 0;
            pairs_spurious = 0;
            pairs_kept = 0;
            cond_rejected = 0;
            dispatched = 0;
            actions = [];
            notes = [];
          }
        in
        Obs.Audit.add audit_log r;
        Some r
      end
      else None
    in
    let audit_id = match arec with Some r -> r.Obs.Audit.id | None -> 0 in
    let fire ~old_node ~new_node =
      let t0 = Obs.Trace.now () in
      incr n_kept;
      t.counters.rows_computed <- t.counters.rows_computed + 1;
      let passes =
        match tr.Trigger.condition with
        | None -> true
        | Some c -> Compose.condition_fallback c ~old_node ~new_node
      in
      let callback =
        if passes then
          Option.map fst (List.assoc_opt tr.Trigger.action t.actions)
        else None
      in
      (match arec with
      | Some r ->
        r.Obs.Audit.pairs_kept <- r.Obs.Audit.pairs_kept + 1;
        let outcome =
          if not passes then Obs.Audit.Condition_rejected
          else if Option.is_none callback then Obs.Audit.No_action
          else Obs.Audit.Fired
        in
        (match outcome with
        | Obs.Audit.Fired -> r.Obs.Audit.dispatched <- r.Obs.Audit.dispatched + 1
        | Obs.Audit.Condition_rejected ->
          r.Obs.Audit.cond_rejected <- r.Obs.Audit.cond_rejected + 1
        | Obs.Audit.No_action -> ());
        r.Obs.Audit.actions <-
          { Obs.Audit.a_trigger = tr.Trigger.name;
            a_action = tr.Trigger.action;
            a_outcome = outcome;
            a_condition =
              (match tr.Trigger.condition with
              | Some c -> Ast.expr_to_string c
              | None -> "");
            a_has_old = old_node <> None;
            a_has_new = new_node <> None;
          }
          :: r.Obs.Audit.actions
      | None -> ());
      if passes then begin
        t.counters.actions_dispatched <- t.counters.actions_dispatched + 1;
        (match callback with
        | Some action ->
          action
            { fi_trigger = tr.Trigger.name;
              fi_event = tr.Trigger.event;
              fi_old = old_node;
              fi_new = new_node;
              fi_args =
                List.map (eval_arg ~old_node ~new_node) tr.Trigger.args;
              fi_audit_id = audit_id;
              fi_stmt_id = tc.Database.stmt_id;
            }
        | None -> ())
      end;
      Obs.Metrics.observe_in t.histograms tr.Trigger.name
        (Int64.sub (Obs.Trace.now ()) t0)
    in
    (* pair accounting for the audit record: every candidate the diff
       examines is "computed"; UPDATE candidates whose before/after nodes
       are structurally equal are the spurious ones the diff suppresses *)
    let seen_pair spurious =
      incr n_computed;
      if spurious then incr n_sp;
      match arec with
      | Some r ->
        r.Obs.Audit.pairs_computed <- r.Obs.Audit.pairs_computed + 1;
        if spurious then
          r.Obs.Audit.pairs_spurious <- r.Obs.Audit.pairs_spurious + 1
      | None -> ()
    in
    (match tr.Trigger.event with
    | Database.Update ->
      List.iter
        (fun (k, old_n) ->
          match List.assoc_opt k after with
          | Some new_n when not (Xml.equal old_n new_n) ->
            seen_pair false;
            fire ~old_node:(Some old_n) ~new_node:(Some new_n)
          | Some _ -> seen_pair true
          | None -> ())
        before
    | Database.Insert ->
      List.iter
        (fun (k, new_n) ->
          if not (List.mem_assoc k before) then begin
            seen_pair false;
            fire ~old_node:None ~new_node:(Some new_n)
          end)
        after
    | Database.Delete ->
      List.iter
        (fun (k, old_n) ->
          if not (List.mem_assoc k after) then begin
            seen_pair false;
            fire ~old_node:(Some old_n) ~new_node:None
          end)
        before);
    (* windowed cost profile: the whole recompute-and-diff is the firing *)
    let fin = Obs.Trace.now () in
    let w = Database.window t.db in
    Obs.Window.add w ~now:fin w_firings 1.0;
    Obs.Window.add w ~now:fin w_latency (Int64.to_float (Int64.sub fin bt0));
    if !n_computed > 0 then
      Obs.Window.add w ~now:fin w_pairs (float_of_int !n_computed);
    if !n_kept > 0 then Obs.Window.add w ~now:fin w_kept (float_of_int !n_kept);
    if !n_sp > 0 then Obs.Window.add w ~now:fin w_spurious (float_of_int !n_sp)
  in
  List.iter
    (fun ev ->
      (* same signature source as the translated strategies: a statement
         that provably cannot change the monitored level leaves the
         snapshot valid, so skipping the recompute-and-diff is sound (its
         audit record would have had pairs_kept = 0) *)
      let relevance =
        derive_relevance t ~table:ev.Event_pushdown.ev_table m.Compose.m_op
      in
      Database.create_trigger t.db
        { Database.trig_name =
            Printf.sprintf "xmltrig$mat$%s$%s$%s" tr.Trigger.name ev.Event_pushdown.ev_table
              (Database.string_of_event ev.Event_pushdown.ev_event);
          trig_table = ev.Event_pushdown.ev_table;
          trig_event = ev.Event_pushdown.ev_event;
          body;
          (* recompute-and-diff mutates the snapshot as it fires: it cannot
             be split into a read-only prepare, so it opts out of parallel
             firing (the whole statement falls back to the sequential path) *)
          prepare = None;
          relevance;
          sql_text = "-- MATERIALIZED baseline: recompute and diff";
        })
    events

(* --- create_trigger: the full pipeline --- *)

(* Blank string and numeric literals out of a condition's text, so triggers
   differing only in their constants share one structural cohort key (the
   advisor sizes cohorts when modeling GROUPED sharing).  Digits embedded in
   identifiers (e2, NEW_NODE) are kept. *)
let cond_skeleton s =
  let n = String.length s in
  let b = Buffer.create n in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = '\'' then begin
      Buffer.add_string b "'?'";
      incr i;
      while !i < n && s.[!i] <> '\'' do incr i done;
      if !i < n then incr i
    end
    else if c >= '0' && c <= '9' && (!i = 0 || not (is_word s.[!i - 1])) then begin
      Buffer.add_char b '?';
      while !i < n && ((s.[!i] >= '0' && s.[!i] <= '9') || s.[!i] = '.') do
        incr i
      done
    end
    else begin
      Buffer.add_char b c;
      incr i
    end
  done;
  Buffer.contents b

let create_trigger_internal t text =
  let tr = try Trigger.parse text with Trigger.Parse_error msg -> fail "%s" msg in
  if List.mem_assoc tr.Trigger.name t.trigger_index then
    fail "trigger %S already exists" tr.Trigger.name;
  List.iter validate_arg tr.Trigger.args;
  if not (List.mem_assoc tr.Trigger.action t.actions) then
    fail "unknown action function %S (register it first)" tr.Trigger.action;
  let view_name =
    match tr.Trigger.path.Ast.root with
    | Ast.R_view v -> v
    | Ast.R_var _ -> fail "trigger path must be over a view"
  in
  let view =
    match List.assoc_opt view_name t.views with
    | Some v -> v
    | None -> fail "unknown view %S" view_name
  in
  let m =
    try Compose.compose_path view tr.Trigger.path with
    | Compose.Compose_error msg -> fail "%s" msg
    | Xqgm.Keys.Not_trigger_specifiable msg -> fail "not trigger-specifiable (Theorem 1): %s" msg
  in
  (match Xqgm.Keys.trigger_specifiable ~schema_of:(schema_of t) m.Compose.m_op with
  | Ok () -> ()
  | Error msg -> fail "view is not trigger-specifiable (Theorem 1): %s" msg);
  (* event restriction of §2.2: OLD_NODE exists only for UPDATE/DELETE,
     NEW_NODE only for UPDATE/INSERT *)
  let uses_old e = expr_mentions_var "OLD_NODE" e in
  let uses_new e = expr_mentions_var "NEW_NODE" e in
  let all_exprs = Option.to_list tr.Trigger.condition @ tr.Trigger.args in
  if tr.Trigger.event = Database.Insert && List.exists uses_old all_exprs then
    fail "OLD_NODE cannot be used with an INSERT trigger";
  if tr.Trigger.event = Database.Delete && List.exists uses_new all_exprs then
    fail "NEW_NODE cannot be used with a DELETE trigger";
  (* TUNE pins individual triggers to a strategy; everything else arms
     under the runtime's default. *)
  let strat =
    match Hashtbl.find_opt t.strategy_overrides tr.Trigger.name with
    | Some s -> s
    | None -> t.strat
  in
  let path_text = Ast.path_to_string tr.Trigger.path in
  let cohort =
    Printf.sprintf "%s|%s|%s|%s" view_name path_text
      (Database.string_of_event tr.Trigger.event)
      (match tr.Trigger.condition with
      | Some c -> cond_skeleton (Ast.expr_to_string c)
      | None -> "-")
  in
  if strat = Materialized then begin
    install_materialized t ~gid:t.next_group tr view_name m;
    (* materialized triggers are not grouped; track them in a singleton *)
    let group =
      { g_id = t.next_group;
        g_signature = "materialized:" ^ tr.Trigger.name;
        g_event = tr.Trigger.event;
        g_key = m.Compose.m_key;
        g_consts_table = "";
        g_needs_old = ref true;
        g_needs_new = ref true;
        g_node_compare = false;
        g_plans = [];
        g_members = [];
        g_next_cid = 0;
        g_consts_index = Hashtbl.create 1;
        g_monitored = m;
        g_view = view_name;
        g_cond_mode = (if tr.Trigger.condition <> None then "fallback" else "none");
        g_strategy = Materialized;
        g_cohort = cohort;
      }
    in
    t.next_group <- t.next_group + 1;
    t.groups <- group :: t.groups;
    t.trigger_index <- (tr.Trigger.name, group) :: t.trigger_index
  end
  else begin
    (* Condition analysis, in decreasing order of pushdown power:
       (1) a §5.1 nested-count conjunct handled by a grouped subquery,
       (2) a plain relational predicate,
       (3) middleware fallback (XPath over the tagged nodes). *)
    let nested_split = Option.bind tr.Trigger.condition (Compose.compile_nested_count m) in
    let nested, cond_rel, fallback_cond =
      match nested_split with
      | Some (nc, rest) -> (
        match rest with
        | None -> (Some nc, None, None)
        | Some r -> (
          match Compose.compile_condition m r with
          | Some e -> (Some nc, Some e, None)
          | None -> (None, None, tr.Trigger.condition)))
      | None ->
        let cond_rel = Option.bind tr.Trigger.condition (Compose.compile_condition m) in
        let fb =
          match tr.Trigger.condition, cond_rel with Some c, None -> Some c | _ -> None
        in
        (None, cond_rel, fb)
    in
    (match fallback_cond with
    | Some c -> (
      match Compose.validate_fallback c with
      | Ok () -> ()
      | Error msg -> fail "unsupported trigger condition: %s" msg)
    | None -> ());
    let shapes, consts =
      generalize_many
        (Option.to_list cond_rel
        @
        match nested with
        | Some nc -> [ nc.Compose.nc_inner; nc.Compose.nc_rhs ]
        | None -> [])
    in
    let cond_rel_shape, nested_shape =
      match cond_rel, nested, shapes with
      | Some _, Some nc, [ c; i; r ] -> (Some c, Some (nc, i, r))
      | Some _, None, [ c ] -> (Some c, None)
      | None, Some nc, [ i; r ] -> (None, Some (nc, i, r))
      | None, None, [] -> (None, None)
      | _ ->
        (* generalize_many returns one shape per input expression, so the
           arity can only disagree if that invariant is broken *)
        fail
          "internal error: constant generalization produced %d shapes for \
           trigger %S (cond_rel=%b, nested=%b)"
          (List.length shapes) tr.Trigger.name (cond_rel <> None) (nested <> None)
    in
    let cond_shape =
      match fallback_cond with
      | Some c -> "fallback:" ^ Ast.expr_to_string c
      | None -> (
        match shapes, nested with
        | [], None -> "none"
        | _ ->
          String.concat "&" (List.map Expr.to_string shapes)
          ^ (match nested with
            | Some nc ->
              "#nested:" ^ nc.Compose.nc_child.Compile.elem_tag
              ^ (match nc.Compose.nc_side with `Old -> "o" | `New -> "n")
            | None -> ""))
    in
    let grouped = strat = Grouped || strat = Grouped_agg in
    let sig_base =
      signature ~view_name ~path_text ~event:tr.Trigger.event ~cond_shape
        ~n_consts:(List.length consts) ~strat
    in
    let group_sig = if grouped then sig_base else sig_base ^ "!" ^ tr.Trigger.name in
    let member =
      { m_trigger = tr; m_fallback_cond = fallback_cond; m_args = tr.Trigger.args }
    in
    let needs_old =
      tr.Trigger.event = Database.Delete
      || List.exists uses_old all_exprs
      || fallback_cond <> None && List.exists uses_old (Option.to_list tr.Trigger.condition)
    in
    let needs_new = tr.Trigger.event <> Database.Delete in
    let group =
      match List.find_opt (fun g -> g.g_signature = group_sig) t.groups with
      | Some g -> g
      | None ->
        (* first member: build (or reuse) the plan template and install *)
        let tmpl =
          match Hashtbl.find_opt t.template_cache sig_base with
          | Some tmpl -> tmpl
          | None ->
            let an_nested =
              Option.map
                (fun ((nc : Compose.nested_count), inner, rhs) ->
                  { Angraph.an_child = nc.Compose.nc_child.Compile.op;
                    an_link = nc.Compose.nc_link;
                    an_side = nc.Compose.nc_side;
                    an_inner = inner;
                    an_cmp = nc.Compose.nc_cmp;
                    an_rhs = rhs;
                  })
                nested_shape
            in
            let tmpl =
              build_template t ~strat ~monitored:m ~event:tr.Trigger.event
                ~cond_rel:cond_rel_shape ~nested:an_nested
                ~n_consts:(List.length consts)
            in
            Hashtbl.replace t.template_cache sig_base tmpl;
            tmpl
        in
        let gid = t.next_group in
        t.next_group <- gid + 1;
        let consts_table = Printf.sprintf "trigconsts%d" gid in
        create_consts_table t ~name:consts_table ~consts;
        let plans = instantiate_template t tmpl ~consts_table in
        let g =
          { g_id = gid;
            g_signature = group_sig;
            g_event = tr.Trigger.event;
            g_key = tmpl.tmpl_key;
            g_consts_table = consts_table;
            g_needs_old = ref false;
            g_needs_new = ref false;
            g_node_compare = tmpl.tmpl_node_compare;
            g_plans = plans;
            g_members = [];
            g_next_cid = 0;
            g_consts_index = Hashtbl.create 64;
            g_monitored = m;
            g_view = view_name;
            g_cond_mode =
              (if fallback_cond <> None then "fallback"
               else if cond_rel <> None || nested <> None then "pushed"
               else "none");
            g_strategy = strat;
            g_cohort = cohort;
          }
        in
        t.groups <- g :: t.groups;
        install_sql_triggers t g;
        g
    in
    if needs_old then group.g_needs_old := true;
    if needs_new then group.g_needs_new := true;
    let new_ids, old_ids =
      add_member_constants t group ~consts ~trig_name:tr.Trigger.name
    in
    let existing = match List.assoc_opt old_ids group.g_members with Some ms -> ms | None -> [] in
    group.g_members <-
      (new_ids, member :: existing) :: List.remove_assoc old_ids group.g_members;
    t.trigger_index <- (tr.Trigger.name, group) :: t.trigger_index
  end;
  tr.Trigger.name

(* [log]: whether the DDL lands in the durability log.  Layers that manage
   trigger lifecycle themselves (the subscription hub logs one
   ["subscription"] record instead and re-creates the trigger on re-arm)
   pass ~log:false so recovery does not arm the same trigger twice. *)
let create_trigger ?(log = true) t text =
  (* The constants-table DDL/DML below is system state: recovery re-arms
     triggers from the logged DDL text, which recreates it, so it must not
     also be replayed from the WAL. *)
  let name = Database.without_logging t.db (fun () -> create_trigger_internal t text) in
  if log then record_ddl t ~kind:"xmltrigger" ~name ~payload:text

(* Remove [name] from the comma-joined member list [ids]. *)
let remove_from_ids ids name =
  String.concat ","
    (List.filter (fun n -> n <> name) (String.split_on_char ',' ids))

(* Drop the member's share of the group's constants table: the row whose
   trig_ids names it alone disappears; a row shared with other triggers is
   rewritten without it.  Without this, unsubscribe/resubscribe churn under
   GROUPED leaks one constants row (and one index entry) per cycle — and a
   leaked row keeps firing plans for a trigger that no longer exists. *)
let remove_member_constants t group ~name ~old_ids =
  if group.g_consts_table <> "" then
    let hit =
      Hashtbl.fold
        (fun key (cid, ids) acc -> if ids = old_ids then Some (key, cid) else acc)
        group.g_consts_index None
    in
    match hit with
    | None -> ()
    | Some (key, cid) ->
      let new_ids = remove_from_ids old_ids name in
      if new_ids = "" then begin
        ignore
          (Database.delete_pk t.db ~table:group.g_consts_table
             ~pk:[ Value.Int cid ]);
        Hashtbl.remove group.g_consts_index key
      end
      else begin
        ignore
          (Database.update_pk t.db ~table:group.g_consts_table
             ~pk:[ Value.Int cid ]
             ~set:(fun r ->
               let r = Array.copy r in
               r.(1) <- Value.String new_ids;
               r));
        Hashtbl.replace group.g_consts_index key (cid, new_ids)
      end

let drop_trigger ?(log = true) t name =
  match List.assoc_opt name t.trigger_index with
  | None -> ()
  | Some group ->
    if log then record_ddl t ~kind:"drop_xmltrigger" ~name ~payload:"";
    t.trigger_index <- List.remove_assoc name t.trigger_index;
    (* constants bookkeeping happens inside without_logging for the same
       reason as in create_trigger: it is re-derived state, not user data *)
    Database.without_logging t.db (fun () ->
        (match
           List.find_opt
             (fun (_, ms) ->
               List.exists (fun m -> m.m_trigger.Trigger.name = name) ms)
             group.g_members
         with
        | Some (old_ids, _) -> remove_member_constants t group ~name ~old_ids
        | None -> ());
        group.g_members <-
          List.filter_map
            (fun (ids, ms) ->
              let ms' =
                List.filter (fun m -> m.m_trigger.Trigger.name <> name) ms
              in
              if ms' == ms then Some (ids, ms)
              else if ms' = [] then None
              else Some (remove_from_ids ids name, ms'))
            group.g_members);
    (* Materialized triggers installed their SQL triggers under their own
       name; grouped ones share the group's. *)
    if group.g_members = [] then begin
      List.iter
        (fun tp ->
          List.iter
            (fun ev ->
              Database.drop_trigger t.db
                (Printf.sprintf "xmltrig$g%d$%s$%s" group.g_id tp.tp_table
                   (Database.string_of_event ev)))
            tp.tp_rel_events;
          Obs.Metrics.remove_in t.histograms
            (Printf.sprintf "firing:g%d:%s" group.g_id tp.tp_table))
        group.g_plans;
      (* the constants table is group state: gone with its group, or
         create/drop churn would accrete one orphan table per generation *)
      if group.g_consts_table <> "" then
        Database.drop_table t.db group.g_consts_table;
      (* group telemetry dies with the group: without this, tune churn and
         subscribe/unsubscribe cycles grow the window and the registry by
         one dead series set per generation *)
      List.iter
        (fun pfx ->
          Obs.Window.remove (Database.window t.db)
            (Printf.sprintf "%s:g%d" pfx group.g_id))
        [ "firings"; "latency_ns"; "pairs"; "kept"; "spurious"; "scan_rows" ];
      t.groups <- List.filter (fun g -> g.g_id <> group.g_id) t.groups
    end;
    List.iter
      (fun tbl ->
        List.iter
          (fun ev ->
            Database.drop_trigger t.db
              (Printf.sprintf "xmltrig$mat$%s$%s$%s" name tbl
                 (Database.string_of_event ev)))
          [ Database.Insert; Database.Update; Database.Delete ])
      (Database.table_names t.db);
    (* the dropped trigger's own latency histogram goes too — but the drop
       is still visible: [triggers_dropped] explains the vanished series
       to anything scraping the registry *)
    Obs.Metrics.remove_in t.histograms name;
    Hashtbl.remove t.last_reco name;
    t.counters.triggers_dropped <- t.counters.triggers_dropped + 1

(* --- durability: WAL + snapshots + crash recovery --- *)

let checkpoint t =
  match t.store with
  | None -> fail "no durability attached (use attach_durability or reopen)"
  | Some s -> ignore (Durability.Store.checkpoint s t.db ~meta:(current_meta t))

(* Attach a durability store: every subsequent DML/DDL statement is logged
   to the WAL in [data_dir], and an immediate checkpoint captures the
   current database and catalog as the recovery baseline. *)
let attach_durability ?segment_limit ?policy t ~data_dir =
  if t.store <> None then fail "durability already attached";
  let store =
    Durability.Store.attach ?segment_limit ?policy ~is_system_table ~data_dir t.db
  in
  t.store <- Some store;
  checkpoint t

let detach_durability t =
  match t.store with
  | None -> ()
  | Some s ->
    Durability.Store.detach s t.db;
    t.store <- None

let durability_attached t = t.store <> None
let durability_sync t = Option.iter Durability.Store.sync t.store

type reopened = {
  runtime : t;
  recovery : Durability.Recovery.outcome;
  rearmed_views : int;
  rearmed_triggers : int;
  rearm_errors : string list;  (* triggers/views that failed to re-arm *)
}

(* Rebuild a runtime from [data_dir] after a crash: recover the database
   (snapshot + WAL tail, triggers suppressed during replay), re-compile the
   published views, re-compile and re-arm every XML trigger from its logged
   DDL text, then re-attach durability (with a fresh checkpoint, so the
   recovery just performed is itself durable).

   [actions] must supply every action function the recovered triggers name —
   OCaml closures cannot be persisted.  A trigger whose action (or view) is
   missing is reported in [rearm_errors] rather than aborting recovery. *)
let reopen ?(strategy = Grouped_agg) ?tuning ?segment_limit ?policy
    ?(actions = []) ~data_dir () =
  let recovery = Durability.Recovery.recover ~data_dir () in
  let t = create ~strategy ?tuning recovery.Durability.Recovery.db in
  List.iter (fun (name, action) -> register_action t ~name action) actions;
  let views = ref 0 and triggers = ref 0 and errors = ref [] in
  List.iter
    (fun (kind, name, payload) ->
      match kind with
      | "view" -> (
        match define_view t ~name payload with
        | () -> incr views
        | exception Error msg ->
          errors := Printf.sprintf "view %S: %s" name msg :: !errors)
      | "xmltrigger" -> (
        match create_trigger t payload with
        | () -> incr triggers
        | exception Error msg ->
          errors := Printf.sprintf "trigger %S: %s" name msg :: !errors)
      | "drop_xmltrigger" -> drop_trigger t name
      | "tune" -> (
        (* a TUNE pin: applies to the re-create that follows in the log *)
        match strategy_of_string payload with
        | Some s -> Hashtbl.replace t.strategy_overrides name s
        | None -> ())
      | _ -> ())
    recovery.Durability.Recovery.meta;
  attach_durability ?segment_limit ?policy t ~data_dir;
  { runtime = t;
    recovery;
    rearmed_views = !views;
    rearmed_triggers = !triggers;
    rearm_errors = List.rev !errors;
  }

let view_nodes t ~path =
  let path =
    try Xquery.Parser.parse_path path
    with Xquery.Parser.Parse_error msg -> fail "%s" msg
  in
  let view_name =
    match path.Ast.root with Ast.R_view v -> v | Ast.R_var _ -> fail "bad path root"
  in
  let view =
    match List.assoc_opt view_name t.views with
    | Some v -> v
    | None -> fail "unknown view %S" view_name
  in
  let m =
    try Compose.compose_path view path
    with Compose.Compose_error msg -> fail "%s" msg
  in
  let rel = Eval.eval (Ra_eval.ctx_of_db ~stats:t.scan_stats t.db) m.Compose.m_op in
  let slot = Eval.col_index rel m.Compose.m_node_col in
  List.filter_map
    (fun row -> match row.(slot) with Xval.Node n -> Some n | _ -> None)
    rel.Eval.rows

(* --- query-over-view entry point (the HTTP front door's read path) --- *)

type view_row = {
  vr_tag : string;
  vr_node : Xml.t;
  vr_fields : (string * Value.t) list;
}

(* Resolve [level] (an element tag; default: the view's repeated top-level
   element) to its view-tree node. *)
let view_level view level =
  let tree = view.Compile.tree in
  match level with
  | None -> (
    match tree.Compile.children with
    | child :: _ -> child
    | [] -> tree)
  | Some tag ->
    let rec find n =
      if n.Compile.elem_tag = tag then Some n
      else List.find_map find n.Compile.children
    in
    (match find tree with
    | Some n -> n
    | None -> fail "view has no element level %S" tag)

let view_level_fields t ~view ?level () =
  match List.assoc_opt view t.views with
  | None -> fail "unknown view %S" view
  | Some v ->
    let lvl = view_level v level in
    List.map fst lvl.Compile.fields

(* One row per element of the level, in document order, carrying the
   constructed node plus the level's provenance fields as scalars — the
   relation the HTTP layer's RQL compiles against. *)
let view_rows t ~view ?level () =
  match List.assoc_opt view t.views with
  | None -> fail "unknown view %S" view
  | Some v ->
    let lvl = view_level v level in
    let ctx = Ra_eval.ctx_of_db ~stats:t.scan_stats t.db in
    let rel = Eval.eval_sorted ctx ~by:lvl.Compile.key lvl.Compile.op in
    let node_slot = Eval.col_index rel lvl.Compile.node_col in
    let field_slots =
      List.map
        (fun (name, col) -> (name, Eval.col_index rel col))
        lvl.Compile.fields
    in
    let scalar v =
      try Xval.atomize v
      with Invalid_argument _ -> Value.String (Xval.to_string v)
    in
    List.filter_map
      (fun row ->
        match row.(node_slot) with
        | Xval.Node n ->
          Some
            { vr_tag = lvl.Compile.elem_tag;
              vr_node = n;
              vr_fields =
                List.map (fun (name, i) -> (name, scalar row.(i))) field_slots;
            }
        | _ -> None)
      rel.Eval.rows

(* --- observability: tracing, latency histograms, EXPLAIN, reports --- *)

let set_tracing t on = Obs.Trace.set_enabled (Database.tracer t.db) on
let tracing_enabled t = Obs.Trace.enabled (Database.tracer t.db)
let trace_clear t = Obs.Trace.clear (Database.tracer t.db)
let trace_render t = Obs.Trace.render (Database.tracer t.db)
let trace_json t = Obs.Trace.to_json (Database.tracer t.db)

let latencies t = Obs.Metrics.histograms t.histograms
let latency_report t = Obs.Metrics.render_registry t.histograms
let reset_latencies t = Obs.Metrics.reset_registry t.histograms

let durability_timings t =
  match t.store with None -> [] | Some s -> Durability.Store.timings s

(* --- firing provenance: the audit trail --- *)

let set_audit t on = Obs.Audit.set_enabled (Database.audit t.db) on
let audit_enabled t = Obs.Audit.enabled (Database.audit t.db)
let audit_clear t = Obs.Audit.clear (Database.audit t.db)
let audit_records t = Obs.Audit.records (Database.audit t.db)
let audit t = Obs.Audit.render (Database.audit t.db)
let audit_json t = Obs.Audit.to_json (Database.audit t.db)
let why t id = Obs.Audit.why (Database.audit t.db) id

(* --- export: Chrome trace (Perfetto) and Prometheus text exposition --- *)

let trace_chrome_json t =
  Obs.Trace.to_chrome_json
    ~instants:
      (Obs.Audit.chrome_instants (Database.audit t.db) @ t.reco_instants)
    (Database.tracer t.db)

(* Grouped members live in g_members; materialized triggers only in the
   trigger index — merge both. *)
let group_trigger_names t g =
  List.concat_map
    (fun (_, ms) -> List.map (fun m -> m.m_trigger.Trigger.name) ms)
    g.g_members
  @ List.filter_map (fun (n, g') -> if g' == g then Some n else None) t.trigger_index
  |> List.sort_uniq compare

let plan_mode t tp =
  match tp.tp_exec, tp.tp_shred with
  | Some _, _ -> "compiled"
  | None, Some _ ->
    if t.tuning.compile_plans then "interpreted (compilation failed)"
    else "interpreted (compilation disabled)"
  | None, None -> "middleware (graph not pushable)"

let explain t =
  let buf = Buffer.create 1024 in
  let groups = List.sort (fun a b -> compare a.g_id b.g_id) t.groups in
  if groups = [] then Buffer.add_string buf "(no triggers installed)\n";
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "== group %d: %s %s on view %s ==\n" g.g_id
           (strategy_to_string g.g_strategy)
           (Database.string_of_event g.g_event)
           g.g_view);
      Buffer.add_string buf
        (Printf.sprintf "triggers: %s\n" (String.concat ", " (group_trigger_names t g)));
      if g.g_strategy = Materialized then begin
        Buffer.add_string buf
          "plan: MATERIALIZED baseline -- recompute the monitored level and \
           diff snapshots on every relevant statement\n";
        List.iter
          (fun tp ->
            Buffer.add_string buf
              (Printf.sprintf "-- table %s relevance: %s\n" tp.tp_table
                 (relevance_summary ~table:tp.tp_table
                    g.g_monitored.Compose.m_op)))
          g.g_plans
      end
      else
        List.iter
          (fun tp ->
            Buffer.add_string buf
              (Printf.sprintf "-- table %s: %s\n" tp.tp_table (plan_mode t tp));
            Buffer.add_string buf
              (Printf.sprintf "   relevance: %s\n"
                 (relevance_summary ~table:tp.tp_table
                    g.g_monitored.Compose.m_op));
            match tp.tp_exec with
            | Some comp -> Buffer.add_string buf (Pushdown.explain_compiled comp)
            | None -> ())
          g.g_plans)
    groups;
  Buffer.contents buf

let explain_json t =
  let groups = List.sort (fun a b -> compare a.g_id b.g_id) t.groups in
  let esc = Obs.Metrics.json_escape in
  let group_json g =
    let triggers =
      String.concat ", "
        (List.map (fun n -> "\"" ^ esc n ^ "\"") (group_trigger_names t g))
    in
    let tables =
      String.concat ", "
        (List.map
           (fun tp ->
             let plan =
               match tp.tp_exec with
               | Some comp -> Pushdown.explain_compiled_json comp
               | None -> "null"
             in
             Printf.sprintf
               "{\"table\": \"%s\", \"mode\": \"%s\", \"relevance\": \
                \"%s\", \"plan\": %s}"
               (esc tp.tp_table) (esc (plan_mode t tp))
               (esc
                  (relevance_summary ~table:tp.tp_table
                     g.g_monitored.Compose.m_op))
               plan)
           g.g_plans)
    in
    Printf.sprintf
      "{\"group\": %d, \"strategy\": \"%s\", \"event\": \"%s\", \"view\": \
       \"%s\", \"triggers\": [%s], \"tables\": [%s]}"
      g.g_id
      (esc (strategy_to_string g.g_strategy))
      (esc (Database.string_of_event g.g_event))
      (esc g.g_view) triggers tables
  in
  "[" ^ String.concat ", " (List.map group_json groups) ^ "]"

(* Per-table PK/index probe accounting, tables with no traffic elided. *)
let probe_reports t =
  List.filter_map
    (fun name ->
      match Database.find_table t.db name with
      | None -> None
      | Some tbl ->
        let rep = Relkit.Table.probe_report tbl in
        if List.for_all (fun (_, n) -> n = 0) rep then None else Some (name, rep))
    (List.sort compare (Database.table_names t.db))

(* --- workload observatory: cost profiles, ANALYZE, TUNE ---

   The cost model follows the paper's Table-2 findings: per relevant
   statement, UNGROUPED pays one delta-plan execution per trigger
   (m × C_plan) while GROUPED pays one shared execution plus the
   constants-table join (C_plan × (1 + j)), so the winner flips with the
   cohort size m.  C_plan is calibrated from the *observed* windowed mean
   firing latency under whatever strategy is currently armed, and the
   MATERIALIZED alternative is sized by the monitored base tables
   (recompute-and-diff touches every row, per trigger). *)

let consts_join_overhead = 0.25
(* the GROUPED-AGG inverse-maintenance rewrite adds bookkeeping joins; it
   only pays off when observation (not this static model) proves it, so
   the model prices it slightly above GROUPED and lets an armed
   GROUPED-AGG cohort defend itself with observed numbers *)
let grouped_agg_penalty = 1.05
let materialized_row_ns = 2000.0
(* recompute-and-diff pays view re-evaluation, tagging and the level diff
   on every relevant statement before any rows are even scanned; without
   this floor a toy-sized base table would make MATERIALIZED model as
   nearly free *)
let materialized_stmt_ns = 100_000.0
(* a translated delta plan reads deltas, not the level: when the cohort is
   currently MATERIALIZED there is no observed translated latency, so the
   model assumes the recompute is ~10× a delta execution *)
let materialized_discount = 10.0
(* hysteresis: only recommend a switch that models ≥10% cheaper, so noise
   never flip-flops a cohort between near-equal strategies *)
let switch_threshold = 0.9

type observed = {
  ob_firings : float;  (* plan activations (window, or lifetime fallback) *)
  ob_rate : float;  (* activations/sec over the covered window *)
  ob_latency_ns : float;  (* mean ns per activation *)
  ob_pairs : float;
  ob_kept : float;
  ob_spurious : float;
  ob_scan_rows : float;
  ob_windowed : bool;  (* false = window empty, lifetime totals used *)
}

let observed_of_group t g =
  let w = Database.window t.db in
  let now = Obs.Trace.now () in
  let key pfx = Printf.sprintf "%s:g%d" pfx g.g_id in
  let win pfx = Obs.Window.window_sum w ~now (key pfx) in
  let life pfx = Obs.Window.total w (key pfx) in
  let windowed = win "firings" > 0.0 in
  let get pfx = if windowed then win pfx else life pfx in
  let f = get "firings" in
  let lat = get "latency_ns" in
  { ob_firings = f;
    ob_rate = Obs.Window.rate w ~now (key "firings");
    ob_latency_ns = (if f > 0.0 then lat /. f else 0.0);
    ob_pairs = get "pairs";
    ob_kept = get "kept";
    ob_spurious = get "spurious";
    ob_scan_rows = get "scan_rows";
    ob_windowed = windowed;
  }

(* Base-table footprint of a group's monitored level, for sizing the
   MATERIALIZED recompute. *)
let group_base_rows t g =
  let evs = Event_pushdown.source_events g.g_monitored.Compose.m_op g.g_event in
  let tabs =
    List.sort_uniq compare (List.map (fun e -> e.Event_pushdown.ev_table) evs)
  in
  List.fold_left
    (fun acc tb ->
      match Database.find_table t.db tb with
      | Some tbl -> acc + Relkit.Table.row_count tbl
      | None -> acc)
    0 tabs

type recommendation = {
  r_trigger : string;
  r_group : int;
  r_members : int;  (* cohort size: triggers sharing the structure *)
  r_current : strategy;
  r_recommended : strategy;
  r_observed_ns : float;  (* observed cohort cost per relevant statement *)
  r_modeled_ns : (strategy * float) list;
  r_rate : float;  (* cohort activations/sec *)
  r_observed : observed;
  r_frags : string list;  (* view fragments worth materializing *)
  r_reason : string;
}

(* One cohort = the triggers that would share a single GROUPED plan.
   Model it as a unit: per-trigger switching makes no sense (leaving a
   group does not make the group's shared plan cheaper). *)
let model_cohort t groups =
  let members =
    List.fold_left
      (fun acc g -> acc + List.length (group_trigger_names t g))
      0 groups
  in
  let m = float_of_int (max 1 members) in
  let obs = List.map (fun g -> (g, observed_of_group t g)) groups in
  (* per relevant statement every group of the cohort activates once, so
     the cohort's observed per-statement cost is the sum of mean
     per-activation latencies *)
  let observed_total =
    List.fold_left (fun acc (_, o) -> acc +. o.ob_latency_ns) 0.0 obs
  in
  let firings = List.fold_left (fun acc (_, o) -> acc +. o.ob_firings) 0.0 obs in
  let rate = List.fold_left (fun acc (_, o) -> acc +. o.ob_rate) 0.0 obs in
  let windowed = List.exists (fun (_, o) -> o.ob_windowed) obs in
  let merged =
    { ob_firings = firings;
      ob_rate = rate;
      ob_latency_ns = (if firings > 0.0 then observed_total else 0.0);
      ob_pairs = List.fold_left (fun a (_, o) -> a +. o.ob_pairs) 0.0 obs;
      ob_kept = List.fold_left (fun a (_, o) -> a +. o.ob_kept) 0.0 obs;
      ob_spurious = List.fold_left (fun a (_, o) -> a +. o.ob_spurious) 0.0 obs;
      ob_scan_rows =
        List.fold_left (fun a (_, o) -> a +. o.ob_scan_rows) 0.0 obs;
      ob_windowed = windowed;
    }
  in
  (* dominant current strategy, by member count *)
  let current =
    let count s =
      List.fold_left
        (fun acc g ->
          if g.g_strategy = s then acc + List.length (group_trigger_names t g)
          else acc)
        0 groups
    in
    List.fold_left
      (fun best s -> if count s > count best then s else best)
      Ungrouped
      [ Grouped; Grouped_agg; Materialized ]
  in
  let base_rows =
    match groups with g :: _ -> group_base_rows t g | [] -> 0
  in
  if firings <= 0.0 then
    (members, current, merged, observed_total, [], current,
     "no observed firings in the window; keeping the current strategy")
  else begin
    let c_plan =
      match current with
      | Ungrouped -> observed_total /. m
      | Grouped | Grouped_agg -> observed_total /. (1.0 +. consts_join_overhead)
      | Materialized -> observed_total /. m /. materialized_discount
    in
    let cost = function
      | Ungrouped ->
        if current = Ungrouped then observed_total else m *. c_plan
      | Grouped ->
        if current = Grouped then observed_total
        else c_plan *. (1.0 +. consts_join_overhead)
      | Grouped_agg ->
        if current = Grouped_agg then observed_total
        else c_plan *. (1.0 +. consts_join_overhead) *. grouped_agg_penalty
      | Materialized ->
        if current = Materialized then observed_total
        else
          (* two lower bounds, keep the larger: a static recompute-and-diff
             estimate from the base-table footprint, and the observed
             delta-plan cost scaled by the recompute ratio — recomputing a
             level cannot undercut the delta plan that reads only changes *)
          Float.max
            (materialized_stmt_ns
            +. (m *. float_of_int (max 1 base_rows) *. materialized_row_ns))
            (m *. c_plan *. materialized_discount)
    in
    let modeled =
      List.map (fun s -> (s, cost s))
        [ Ungrouped; Grouped; Grouped_agg; Materialized ]
    in
    let best, best_cost =
      List.fold_left
        (fun (bs, bc) (s, c) -> if c < bc then (s, c) else (bs, bc))
        (Ungrouped, cost Ungrouped) modeled
    in
    let reco, reason =
      if best = current then
        (current, "current strategy already models cheapest")
      else if best_cost < switch_threshold *. cost current then
        ( best,
          Printf.sprintf "models %.1fx cheaper than %s"
            (cost current /. best_cost)
            (strategy_to_string current) )
      else
        (current, "no alternative models >10% cheaper")
    in
    (members, current, merged, observed_total, modeled, reco, reason)
  end

(* Greedy fragment-materialization advice (Chebotko & Fu's view-selection
   problem, approximated from the windowed fragment-cache hit/miss
   traffic): when the cache misses more than it hits while this cohort is
   hot, the fragments its delta plans link through are worth pinning. *)
let frag_advice t groups rate =
  let w = Database.window t.db in
  let now = Obs.Trace.now () in
  let hits =
    let wh = Obs.Window.window_sum w ~now "cache_hits" in
    if wh > 0.0 then wh else Obs.Window.total w "cache_hits"
  and misses =
    let wm = Obs.Window.window_sum w ~now "cache_misses" in
    if wm > 0.0 then wm else Obs.Window.total w "cache_misses"
  in
  let traffic = hits +. misses in
  if traffic <= 0.0 || rate <= 0.0 || misses /. traffic < 0.5 then []
  else
    List.concat_map
      (fun g -> List.concat_map (fun tp -> tp.tp_frag_keys) g.g_plans)
      groups
    |> List.sort_uniq compare
    |> fun l -> if List.length l > 5 then List.filteri (fun i _ -> i < 5) l else l

(* Record recommendation changes as Chrome-trace instants, bounded. *)
let note_reco t name reco =
  let changed =
    match Hashtbl.find_opt t.last_reco name with
    | Some s -> s <> reco
    | None -> true
  in
  if changed then begin
    Hashtbl.replace t.last_reco name reco;
    let inst =
      ( "reco:" ^ name,
        Obs.Trace.now (),
        Printf.sprintf "{\"recommended\": \"%s\"}" (strategy_to_string reco) )
    in
    let kept =
      if List.length t.reco_instants >= 256 then
        List.filteri (fun i _ -> i < 255) t.reco_instants
      else t.reco_instants
    in
    t.reco_instants <- inst :: kept
  end

let recommendations t =
  (* cohorts in first-creation order *)
  let cohorts = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun g ->
      match Hashtbl.find_opt cohorts g.g_cohort with
      | Some gs -> Hashtbl.replace cohorts g.g_cohort (g :: gs)
      | None ->
        Hashtbl.add cohorts g.g_cohort [ g ];
        order := g.g_cohort :: !order)
    t.groups;
  let models = Hashtbl.create 16 in
  Hashtbl.iter
    (fun key gs -> Hashtbl.replace models key (model_cohort t gs))
    cohorts;
  List.rev t.trigger_index
  |> List.map (fun (name, g) ->
         let members, current, merged, observed_total, modeled, reco, reason =
           Hashtbl.find models g.g_cohort
         in
         note_reco t name reco;
         { r_trigger = name;
           r_group = g.g_id;
           r_members = members;
           r_current = g.g_strategy;
           r_recommended = reco;
           r_observed_ns = observed_total;
           r_modeled_ns = modeled;
           r_rate = merged.ob_rate;
           r_observed = merged;
           r_frags =
             frag_advice t
               (Hashtbl.find_all cohorts g.g_cohort |> List.concat)
               merged.ob_rate;
           r_reason =
             (if g.g_strategy <> current then
                "cohort dominated by " ^ strategy_to_string current ^ "; "
                ^ reason
              else reason);
         })

let spurious_ratio o =
  if o.ob_pairs > 0.0 then o.ob_spurious /. o.ob_pairs else 0.0

let analyze t =
  let recos = recommendations t in
  let w = Database.window t.db in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "workload observatory: window = %d buckets x %d ms (last ~%.1fs)\n"
       (Obs.Window.buckets w) (Obs.Window.width_ms w)
       (float_of_int (Obs.Window.buckets w * Obs.Window.width_ms w) /. 1000.0));
  if recos = [] then Buffer.add_string buf "(no triggers installed)\n";
  List.iter
    (fun r ->
      let o = r.r_observed in
      Buffer.add_string buf
        (Printf.sprintf "== trigger %s (group %d, cohort of %d) ==\n"
           r.r_trigger r.r_group r.r_members);
      Buffer.add_string buf
        (Printf.sprintf
           "  current: %-12s observed cost/stmt: %.0f ns%s  rate: %.2f/s\n"
           (strategy_to_string r.r_current)
           r.r_observed_ns
           (if o.ob_windowed then "" else " (lifetime: window empty)")
           r.r_rate);
      Buffer.add_string buf
        (Printf.sprintf
           "  pairs: computed=%.0f kept=%.0f spurious=%.0f (ratio %.2f)  \
            scan_rows=%.0f\n"
           o.ob_pairs o.ob_kept o.ob_spurious (spurious_ratio o)
           o.ob_scan_rows);
      (match r.r_modeled_ns with
      | [] -> Buffer.add_string buf "  modeled: (insufficient data)\n"
      | ms ->
        Buffer.add_string buf "  modeled cost/stmt:";
        List.iter
          (fun (s, c) ->
            Buffer.add_string buf
              (Printf.sprintf " %s=%.0fns" (strategy_to_string s) c))
          ms;
        Buffer.add_char buf '\n');
      Buffer.add_string buf
        (Printf.sprintf "  recommendation: %s (%s)\n"
           (strategy_to_string r.r_recommended)
           r.r_reason);
      if r.r_frags <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  materialize fragments: %s\n"
             (String.concat ", " r.r_frags)))
    recos;
  Buffer.contents buf

let analyze_json t =
  let esc = Obs.Metrics.json_escape in
  let w = Database.window t.db in
  let recos = recommendations t in
  let reco_json r =
    let o = r.r_observed in
    let modeled =
      String.concat ", "
        (List.map
           (fun (s, c) ->
             Printf.sprintf "\"%s\": %.0f" (esc (strategy_to_string s)) c)
           r.r_modeled_ns)
    in
    let frags =
      String.concat ", "
        (List.map (fun f -> "\"" ^ esc f ^ "\"") r.r_frags)
    in
    Printf.sprintf
      "{\"name\": \"%s\", \"group\": %d, \"cohort_members\": %d, \
       \"strategy\": \"%s\", \"observed\": {\"cost_per_stmt_ns\": %.0f, \
       \"rate_per_s\": %.4f, \"firings\": %.0f, \"pairs_computed\": %.0f, \
       \"pairs_kept\": %.0f, \"pairs_spurious\": %.0f, \"spurious_ratio\": \
       %.4f, \"scan_rows\": %.0f, \"windowed\": %b}, \"modeled_cost_ns\": \
       {%s}, \"recommendation\": \"%s\", \"reason\": \"%s\", \
       \"materialize_fragments\": [%s]}"
      (esc r.r_trigger) r.r_group r.r_members
      (esc (strategy_to_string r.r_current))
      r.r_observed_ns r.r_rate o.ob_firings o.ob_pairs o.ob_kept
      o.ob_spurious (spurious_ratio o) o.ob_scan_rows o.ob_windowed modeled
      (esc (strategy_to_string r.r_recommended))
      (esc r.r_reason) frags
  in
  Printf.sprintf
    "{\"window\": {\"buckets\": %d, \"width_ms\": %d}, \"triggers\": [%s]}"
    (Obs.Window.buckets w) (Obs.Window.width_ms w)
    (String.concat ", " (List.map reco_json recos))

(* --- TUNE: apply recommendations by re-arming live --- *)

(* Re-arm [name] under [strat]: drop + recreate from the logged DDL text.
   The action registry, subscriptions and the audit ring live outside the
   trigger, so they carry over; the drop/tune/create record triple makes
   recovery replay the same transition. *)
let retarget_trigger t name strat =
  let payload =
    List.find_map
      (fun (k, n, p) -> if k = "xmltrigger" && n = name then Some p else None)
      t.ddl_log
  in
  match payload with
  | None ->
    fail "cannot tune %S: no logged DDL for it (created with log off?)" name
  | Some text ->
    drop_trigger t name;
    record_ddl t ~kind:"tune" ~name ~payload:(strategy_to_string strat);
    Hashtbl.replace t.strategy_overrides name strat;
    create_trigger t text

let set_strategy_override t name strat =
  Hashtbl.replace t.strategy_overrides name strat

let trigger_strategy t name =
  Option.map (fun g -> g.g_strategy) (List.assoc_opt name t.trigger_index)

let tune ?trigger t =
  let recos = recommendations t in
  let recos =
    match trigger with
    | None -> recos
    | Some n -> (
      match List.filter (fun r -> r.r_trigger = n) recos with
      | [] -> fail "unknown trigger %S" n
      | rs -> rs)
  in
  let buf = Buffer.create 256 in
  let changed = ref 0 in
  List.iter
    (fun r ->
      if r.r_recommended <> r.r_current then begin
        retarget_trigger t r.r_trigger r.r_recommended;
        incr changed;
        Buffer.add_string buf
          (Printf.sprintf "%s: %s -> %s (re-armed; %s)\n" r.r_trigger
             (strategy_to_string r.r_current)
             (strategy_to_string r.r_recommended)
             r.r_reason)
      end
      else
        Buffer.add_string buf
          (Printf.sprintf "%s: %s (unchanged; %s)\n" r.r_trigger
             (strategy_to_string r.r_current)
             r.r_reason))
    recos;
  Buffer.add_string buf (Printf.sprintf "%d trigger(s) re-armed\n" !changed);
  Buffer.contents buf

(* Everything scrape-worthy in Prometheus text exposition format: runtime
   counters, per-source scan rows, per-table probe counts, the latency
   registry, durability timings, and audit-log totals.  Histogram names are
   not legal metric names ([firing:g0:product]), so each section is one
   family carrying the name as a label. *)
let metrics_prometheus t =
  let s = stats t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Obs.Metrics.prometheus_counters ~metric:"trigview_runtime_total"
       [ ("sql_firings", s.sql_firings);
         ("rows_computed", s.rows_computed);
         ("actions_dispatched", s.actions_dispatched);
         ("plans_compiled", s.plans_compiled);
         ("compiled_execs", s.compiled_execs);
         ("build_cache_hits", s.build_cache_hits);
         ("build_cache_misses", s.build_cache_misses);
         ("prefilter_skips", s.prefilter_skips);
         ("independence_skips", s.independence_skips);
         ("triggers_dropped", s.triggers_dropped);
       ]);
  Buffer.add_string buf
    (Obs.Metrics.prometheus_counters ~metric:"trigview_runtime_domains"
       [ ("configured", t.tuning.domains) ]);
  (* observability configuration (ring/window geometry), for dashboards *)
  let w = Database.window t.db in
  Buffer.add_string buf
    (Obs.Metrics.prometheus_counters ~metric:"trigview_obs_config"
       [ ("trace_ring", Obs.Trace.limit (Database.tracer t.db));
         ("audit_ring", Obs.Audit.limit (Database.audit t.db));
         ("window_buckets", Obs.Window.buckets w);
         ("window_width_ms", Obs.Window.width_ms w);
         ("request_deadline_ms", t.tuning.request_deadline_ms);
       ]);
  (* windowed rates for every live series (events/sec over the window) *)
  (match Obs.Window.snapshot w ~now:(Obs.Trace.now ()) with
  | [] -> ()
  | snaps ->
    Buffer.add_string buf
      (Obs.Metrics.prometheus_gauges_f ~metric:"trigview_window_rate"
         (List.map (fun (n, sn) -> (n, sn.Obs.Window.sn_rate)) snaps));
    Buffer.add_string buf
      (Obs.Metrics.prometheus_gauges_f ~metric:"trigview_window_ewma"
         (List.map (fun (n, sn) -> (n, sn.Obs.Window.sn_ewma)) snaps)));
  (* per-trigger recommended strategy as a coded gauge *)
  (match recommendations t with
  | [] -> ()
  | recos ->
    let code = function
      | Ungrouped -> 0.0
      | Grouped -> 1.0
      | Grouped_agg -> 2.0
      | Materialized -> 3.0
    in
    Buffer.add_string buf
      (Obs.Metrics.prometheus_gauges_f
         ~metric:"trigview_recommended_strategy"
         (List.map (fun r -> (r.r_trigger, code r.r_recommended)) recos)));
  (match scan_rows_report t with
  | [] -> ()
  | rep ->
    Buffer.add_string buf
      (Obs.Metrics.prometheus_counters ~metric:"trigview_scan_rows_total" rep));
  (match probe_reports t with
  | [] -> ()
  | reps ->
    let flat =
      List.concat_map
        (fun (tbl, rep) -> List.map (fun (k, v) -> (tbl ^ "/" ^ k, v)) rep)
        reps
    in
    Buffer.add_string buf
      (Obs.Metrics.prometheus_counters ~metric:"trigview_probe_total" flat));
  Buffer.add_string buf
    (Obs.Metrics.registry_to_prometheus ~metric:"trigview_latency_ns" t.histograms);
  (match durability_timings t with
  | [] -> ()
  | timings ->
    Buffer.add_string buf
      (Obs.Metrics.to_prometheus ~metric:"trigview_durability_ns" timings));
  let a = Database.audit t.db in
  Buffer.add_string buf
    (Obs.Metrics.prometheus_counters ~metric:"trigview_audit_total"
       [ ("records", Obs.Audit.total a); ("dropped", Obs.Audit.dropped a) ]);
  Buffer.contents buf

let report t =
  let s = stats t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "counters:\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-22s %d\n" k v))
    [ ("sql_firings", s.sql_firings);
      ("rows_computed", s.rows_computed);
      ("actions_dispatched", s.actions_dispatched);
      ("plans_compiled", s.plans_compiled);
      ("compiled_execs", s.compiled_execs);
      ("build_cache_hits", s.build_cache_hits);
      ("build_cache_misses", s.build_cache_misses);
      ("prefilter_skips", s.prefilter_skips);
      ("independence_skips", s.independence_skips);
      ("triggers_dropped", s.triggers_dropped);
      ("domains", t.tuning.domains);
    ];
  let w = Database.window t.db in
  Buffer.add_string buf
    (Printf.sprintf
       "observatory: window %d x %dms, trace ring %d, audit ring %d, \
        request deadline %dms\n"
       (Obs.Window.buckets w) (Obs.Window.width_ms w)
       (Obs.Trace.limit (Database.tracer t.db))
       (Obs.Audit.limit (Database.audit t.db))
       t.tuning.request_deadline_ms);
  (match Obs.Window.snapshot w ~now:(Obs.Trace.now ()) with
  | [] -> Buffer.add_string buf "  (no windowed series yet)\n"
  | snaps ->
    List.iter
      (fun (n, sn) ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-28s total=%-10.0f window=%-8.0f rate=%.2f/s ewma=%.2f/s\n" n
             sn.Obs.Window.sn_total sn.Obs.Window.sn_window
             sn.Obs.Window.sn_rate sn.Obs.Window.sn_ewma))
      snaps);
  (match recommendations t with
  | [] -> ()
  | recos ->
    Buffer.add_string buf "advisor:\n";
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %-20s %s -> %s (%s)\n" r.r_trigger
             (strategy_to_string r.r_current)
             (strategy_to_string r.r_recommended)
             r.r_reason))
      recos);
  Buffer.add_string buf "scan rows (per source):\n";
  (match scan_rows_report t with
  | [] -> Buffer.add_string buf "  (none)\n"
  | rep ->
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-22s %d\n" k v))
      rep);
  (match probe_reports t with
  | [] -> ()
  | reps ->
    Buffer.add_string buf "index/PK probes (per table):\n";
    List.iter
      (fun (tbl, rep) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-22s %s\n" tbl
             (String.concat " "
                (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) rep))))
      reps);
  Buffer.add_string buf "latency histograms:\n";
  Buffer.add_string buf (Obs.Metrics.render_registry t.histograms);
  Buffer.add_char buf '\n';
  (match durability_timings t with
  | [] -> ()
  | timings ->
    Buffer.add_string buf "durability timings:\n";
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf (Obs.Metrics.render_histogram ~name h);
        Buffer.add_char buf '\n')
      timings);
  Buffer.contents buf

let report_json t =
  let s = stats t in
  let esc = Obs.Metrics.json_escape in
  let counters =
    Printf.sprintf
      "{\"sql_firings\": %d, \"rows_computed\": %d, \"actions_dispatched\": %d, \
       \"plans_compiled\": %d, \"compiled_execs\": %d, \"build_cache_hits\": \
       %d, \"build_cache_misses\": %d, \"prefilter_skips\": %d, \
       \"independence_skips\": %d, \"triggers_dropped\": %d, \"domains\": %d}"
      s.sql_firings s.rows_computed s.actions_dispatched s.plans_compiled
      s.compiled_execs s.build_cache_hits s.build_cache_misses
      s.prefilter_skips s.independence_skips s.triggers_dropped
      t.tuning.domains
  in
  let scan =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\": %d" (esc k) v)
           (scan_rows_report t))
    ^ "}"
  in
  let probes =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (tbl, rep) ->
             Printf.sprintf "\"%s\": {%s}" (esc tbl)
               (String.concat ", "
                  (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (esc k) v) rep)))
           (probe_reports t))
    ^ "}"
  in
  let durability =
    "["
    ^ String.concat ", "
        (List.map
           (fun (name, h) ->
             Printf.sprintf "{\"name\": \"%s\", %s}" (esc name)
               (Obs.Metrics.histogram_json_fields h))
           (durability_timings t))
    ^ "]"
  in
  let observatory =
    let w = Database.window t.db in
    let series =
      String.concat ", "
        (List.map
           (fun (n, sn) ->
             Printf.sprintf
               "{\"name\": \"%s\", \"total\": %.0f, \"window\": %.0f, \
                \"rate_per_s\": %.4f, \"ewma_per_s\": %.4f}"
               (esc n) sn.Obs.Window.sn_total sn.Obs.Window.sn_window
               sn.Obs.Window.sn_rate sn.Obs.Window.sn_ewma)
           (Obs.Window.snapshot w ~now:(Obs.Trace.now ())))
    in
    Printf.sprintf
      "{\"knobs\": {\"trace_ring\": %d, \"audit_ring\": %d, \
       \"window_buckets\": %d, \"window_width_ms\": %d, \
       \"request_deadline_ms\": %d}, \"series\": [%s], \
       \"advisor\": %s}"
      (Obs.Trace.limit (Database.tracer t.db))
      (Obs.Audit.limit (Database.audit t.db))
      (Obs.Window.buckets w) (Obs.Window.width_ms w)
      t.tuning.request_deadline_ms series (analyze_json t)
  in
  Printf.sprintf
    "{\"strategy\": \"%s\", \"counters\": %s, \"scan_rows\": %s, \"probes\": \
     %s, \"latencies_ns\": %s, \"durability_timings\": %s, \"observatory\": \
     %s, \"explain\": %s}"
    (esc (strategy_to_string t.strat))
    counters scan probes
    (Obs.Metrics.registry_json t.histograms)
    durability observatory (explain_json t)
