(* A small work-stealing domain pool for the parallel firing pipeline.

   Design notes, in decreasing order of importance:

   - [domains <= 1] means "no parallelism": [run_list] executes the thunks
     inline, in order, on the calling domain.  That path allocates nothing
     beyond the result list and is bit-identical to not having a pool at
     all, which is what makes `tuning.domains = 1` exactly today's
     sequential engine.

   - Pools are process-global and shared by size ([get ~domains]).  OCaml
     caps the number of live domains at roughly the hardware limit (~128);
     test suites create dozens of runtimes, so a pool per runtime would
     exhaust the cap.  Sharing by size keeps the worst case at a handful of
     resident worker sets for the whole process, and means runtimes need no
     teardown hook.

   - Each participant (the [size - 1] workers plus the submitting caller)
     owns a deque guarded by its own mutex: owner pushes/pops at the front,
     thieves steal from the back.  Contention is therefore limited to
     steals, which only happen when somebody ran dry.

   - [run_list] is a scatter/gather barrier: the caller seeds the deques,
     participates in the work loop itself, and returns when every task has
     finished.  Task results land in a preallocated array at their own
     index, so the gathered list order is the submission order regardless
     of which domain ran what.  The per-batch [remaining] counter is an
     [Atomic]; its decrement provides the release/acquire edge that makes
     the result slots safely readable by the caller afterwards.

   - Exceptions raised by tasks are captured with their backtraces and
     re-raised in the caller once the batch has drained, lowest task index
     first — again deterministic regardless of scheduling. *)

type task = { run : unit -> unit }

type deque = {
  dq_lock : Mutex.t;
  mutable front : task list;  (* owner end *)
  mutable back : task list;   (* thief end, reversed *)
}

let deque_create () = { dq_lock = Mutex.create (); front = []; back = [] }

let deque_push d t =
  Mutex.lock d.dq_lock;
  d.front <- t :: d.front;
  Mutex.unlock d.dq_lock

let deque_pop d =
  Mutex.lock d.dq_lock;
  let r =
    match d.front with
    | t :: rest ->
      d.front <- rest;
      Some t
    | [] -> (
      match List.rev d.back with
      | t :: rest ->
        d.back <- [];
        d.front <- rest;
        Some t
      | [] -> None)
  in
  Mutex.unlock d.dq_lock;
  r

let deque_steal d =
  Mutex.lock d.dq_lock;
  let r =
    match d.back with
    | t :: rest ->
      d.back <- rest;
      Some t
    | [] -> (
      match List.rev d.front with
      | t :: rest ->
        (* steal the oldest front entry (tail of the reversed list) *)
        d.front <- List.rev rest;
        Some t
      | [] -> None)
  in
  Mutex.unlock d.dq_lock;
  r

type t = {
  size : int;  (* total participants incl. the caller; >= 2 when real *)
  deques : deque array;  (* one per participant; index 0 = caller *)
  lock : Mutex.t;  (* guards [pending] and [stop], pairs with [wake] *)
  wake : Condition.t;
  mutable pending : int;  (* tasks submitted and not yet picked up *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

(* Try own deque first, then sweep the others for a steal. *)
let find_task t me =
  match deque_pop t.deques.(me) with
  | Some _ as r -> r
  | None ->
    let n = Array.length t.deques in
    let rec sweep i =
      if i = n then None
      else
        let j = (me + 1 + i) mod n in
        match deque_steal t.deques.(j) with
        | Some _ as r -> r
        | None -> sweep (i + 1)
    in
    sweep 0

let run_task task =
  (* Task exceptions are handled inside [run] (see [run_list]); a raise
     escaping here is a pool bug, not a user error. *)
  task.run ()

let worker_loop t me () =
  let rec loop () =
    Mutex.lock t.lock;
    while t.pending = 0 && not t.stop do
      Condition.wait t.wake t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      Mutex.unlock t.lock;
      (match find_task t me with
      | Some task ->
        Mutex.lock t.lock;
        t.pending <- t.pending - 1;
        Mutex.unlock t.lock;
        run_task task
      | None -> Domain.cpu_relax ());
      loop ()
    end
  in
  loop ()

let create ~domains =
  let size = max 1 domains in
  if size <= 1 then
    { size = 1; deques = [||]; lock = Mutex.create (); wake = Condition.create ();
      pending = 0; stop = false; workers = [] }
  else begin
    let t =
      { size;
        deques = Array.init size (fun _ -> deque_create ());
        lock = Mutex.create ();
        wake = Condition.create ();
        pending = 0;
        stop = false;
        workers = [] }
    in
    t.workers <- List.init (size - 1) (fun i -> Domain.spawn (worker_loop t (i + 1)));
    t
  end

let shutdown t =
  if t.size > 1 then begin
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let run_list (type a) t (thunks : (unit -> a) list) : a list =
  match thunks with
  | [] -> []
  | _ when t.size <= 1 || List.length thunks = 1 -> List.map (fun f -> f ()) thunks
  | _ ->
    let n = List.length thunks in
    let results : (a, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let remaining = Atomic.make n in
    let tasks =
      List.mapi
        (fun i f ->
          { run =
              (fun () ->
                let r =
                  match f () with
                  | v -> Ok v
                  | exception e -> Error (e, Printexc.get_raw_backtrace ())
                in
                results.(i) <- Some r;
                Atomic.decr remaining) })
        thunks
    in
    (* Seed round-robin across all deques so workers find work without
       stealing in the common case. *)
    List.iteri (fun i task -> deque_push t.deques.(i mod t.size) task) tasks;
    Mutex.lock t.lock;
    t.pending <- t.pending + n;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    (* The caller participates: drain tasks until the batch is done.  It may
       run dry while workers still hold the last tasks; spin-relax then. *)
    let rec drain () =
      if Atomic.get remaining > 0 then begin
        (match find_task t 0 with
        | Some task ->
          Mutex.lock t.lock;
          t.pending <- t.pending - 1;
          Mutex.unlock t.lock;
          run_task task
        | None -> Domain.cpu_relax ());
        drain ()
      end
    in
    drain ();
    (* [Atomic.decr] on [remaining] orders each task's result store before
       our read of 0; all slots are now filled and visible. *)
    let out = ref [] in
    let pending_exn = ref None in
    for i = n - 1 downto 0 do
      match results.(i) with
      | Some (Ok v) -> out := v :: !out
      | Some (Error (e, bt)) -> pending_exn := Some (e, bt)
      | None -> assert false
    done;
    (match !pending_exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    !out

(* --- process-global shared pools, keyed by size --- *)

let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_lock = Mutex.create ()

let sequential = create ~domains:1

let get ~domains =
  let domains = max 1 domains in
  if domains <= 1 then sequential
  else begin
    Mutex.lock registry_lock;
    let pool =
      match Hashtbl.find_opt registry domains with
      | Some p -> p
      | None ->
        let p = create ~domains in
        Hashtbl.add registry domains p;
        p
    in
    Mutex.unlock registry_lock;
    pool
  end
