(** The XML trigger specification language (§2.2 of the paper — the subset of
    Bonifati et al.'s syntax):

    {v
    CREATE TRIGGER Name AFTER Event ON Path [WHERE Condition] DO Action(args)
    v}

    [Event] is UPDATE, INSERT or DELETE; [Path] is an XPath expression over a
    published view; [Condition] is a boolean XQuery expression over OLD_NODE
    / NEW_NODE; [Action] names an external function registered with the
    runtime, applied to XQuery expressions over the same two variables. *)

type t = {
  name : string;
  event : Relkit.Database.event;
  path : Xquery.Ast.path;
  condition : Xquery.Ast.expr option;
  action : string;
  args : Xquery.Ast.expr list;
}

exception Parse_error of string

(** @raise Parse_error on malformed trigger text. *)
val parse : string -> t

val to_string : t -> string

(** Finds a top-level keyword (outside quotes, parentheses and brackets),
    case-insensitively, at word boundaries; returns its offset.  Exposed for
    layers with trigger-like DDL of their own (the subscription language). *)
val find_keyword : string -> string -> from:int -> int option
