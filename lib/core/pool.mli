(** A work-stealing pool of OCaml 5 domains for the parallel firing
    pipeline.

    A pool of size [n] has [n - 1] worker domains; the caller of
    {!run_list} is the [n]-th participant and helps execute the batch, so
    a pool of size 4 really uses 4 cores.  A pool of size 1 has no workers
    and {!run_list} runs the thunks inline in order — that is the
    sequential engine, bit for bit.

    Pools are cheap to look up and shared process-wide by size
    ({!get}); they are never torn down (OCaml bounds live domains, and a
    handful of parked workers cost nothing). *)

type t

(** Shared pool of the given size (clamped to >= 1).  [get ~domains:1]
    returns a no-worker pool whose {!run_list} is purely sequential. *)
val get : domains:int -> t

(** A private pool.  Prefer {!get}; use this only for tests that must own
    their workers.  Pair with {!shutdown}. *)
val create : domains:int -> t

val shutdown : t -> unit

(** Total participants (workers + caller); 1 for the sequential pool. *)
val size : t -> int

(** Runs every thunk to completion — on the pool for sizes >= 2, inline
    for size 1 — and returns their results in submission order.  If any
    thunk raised, the batch still drains fully and then the exception of
    the lowest-indexed failed thunk is re-raised with its backtrace. *)
val run_list : t -> (unit -> 'a) list -> 'a list
