(** The trigger manager — the system architecture of Figure 6.

    A manager owns a set of published views over one database, a registry of
    external action functions, and the installed XML triggers.  Creating an
    XML trigger runs the full paper pipeline: parse → compose Path with the
    view (§3.3) → event pushdown (Appendix C) → affected-node graph (§4) →
    grouping (§5.1) → pushdown to relational plans (§5.2) → registration of
    one SQL trigger per (base table, relational event).  When a SQL trigger
    fires, the plans compute the (OLD_NODE, NEW_NODE) pairs, the tagger
    rebuilds the XML, and the activation module dispatches to the OCaml
    action callbacks.

    Strategies match the paper's evaluation:
    - [Ungrouped]: one plan set per XML trigger (§6's UNGROUPED);
    - [Grouped]: structurally similar triggers share one plan set
      parameterized by a constants table (GROUPED);
    - [Grouped_agg]: GROUPED plus the inverse-maintenance rewrite of
      aggregates over the pre-update state (GROUPED-AGG);
    - [Materialized]: the rejected baseline of §1 — keep the monitored view
      level materialized, recompute and diff on every relevant statement. *)

type strategy = Ungrouped | Grouped | Grouped_agg | Materialized

val strategy_to_string : strategy -> string

(** Inverse of {!strategy_to_string}; [None] on unknown spellings. *)
val strategy_of_string : string -> strategy option

(** What the activation module hands to an action callback. *)
type firing = {
  fi_trigger : string;  (** XML trigger name *)
  fi_event : Relkit.Database.event;
  fi_old : Xmlkit.Xml.t option;  (** OLD_NODE (absent for INSERT) *)
  fi_new : Xmlkit.Xml.t option;  (** NEW_NODE (absent for DELETE) *)
  fi_args : Xqgm.Xval.t list;  (** the Action's evaluated parameters *)
  fi_audit_id : int;
      (** id of the audit record this firing links to (see {!why}); [0]
          when auditing is disabled *)
  fi_stmt_id : int;
      (** id of the DML statement this firing derives from
          ({!Relkit.Database.statement_count} at execution time); lets
          downstream consumers order notifications by statement *)
}

type action = firing -> unit

type stats = {
  mutable sql_firings : int;  (** SQL trigger activations *)
  mutable rows_computed : int;  (** (OLD, NEW) pairs produced by the plans *)
  mutable actions_dispatched : int;
  mutable plans_compiled : int;
      (** {!Relkit.Ra_compile} plans built (one-time, at trigger creation) *)
  mutable compiled_execs : int;  (** executions through compiled plans *)
  mutable build_cache_hits : int;
      (** hash-join build sides reused across firings (version check passed) *)
  mutable build_cache_misses : int;  (** build sides (re)materialized *)
  mutable prefilter_skips : int;
      (** SQL triggers the (table, event) relevance prefilter never even
          examined, summed over statements; they are not audited either *)
  mutable independence_skips : int;
      (** SQL triggers inside an activated (table, event) bucket that the
          static relevance signature (column footprint / constant
          predicates derived from the trigger's XQGM plan at arm time)
          proved independent of the statement — skipped before any delta
          plan ran, and not audited *)
  mutable triggers_dropped : int;
      (** XML triggers dropped over the runtime's lifetime; explains
          per-trigger series vanishing from the latency registry and the
          window *)
}

type t

exception Error of string

(** Optimizer-pass toggles, for ablation studies (bench target
    [ablation]), plus the domain count of the parallel firing pipeline.
    The boolean toggles default to on; turning any off is always
    semantics-preserving, only slower. *)
type tuning = {
  push_affected_keys : bool;
      (** semijoin-restrict plans by the affected keys (§5.2 pushdown) *)
  share_subplans : bool;  (** common-subplan sharing (the WITH clauses) *)
  compile_plans : bool;
      (** compile trigger-group plans once with {!Relkit.Ra_compile} and
          execute firings through the compiled form; off = interpret every
          firing with {!Relkit.Ra_eval} *)
  independence : bool;
      (** derive static relevance signatures (column footprints + constant
          WHERE filters from the XQGM plan) when arming triggers and let
          the firing path prune statements provably independent of a
          trigger before any delta plan runs; off = every bucket hit fires
          (the pre-independence behaviour) *)
  domains : int;
      (** domains the firing pipeline may use (a shared work-stealing
          {!Pool}).  [1] (the default) is exactly the sequential engine.
          For [> 1], each statement's trigger prepares (plan execution,
          tagging, pair computation) run concurrently against a frozen
          snapshot of the tables, and every side effect — counters, audit
          records, dispatch, cascaded DML, WAL appends — executes
          sequentially in trigger creation order afterwards, so results
          are identical at any setting.  Semantics-preserving by
          construction; see DESIGN.md "Concurrency model". *)
  window_buckets : int;
      (** bucket count of the sliding statistics window (defaults from
          [$TRIGVIEW_WINDOW_BUCKETS], else 12); applied to the database's
          window at {!create} when it differs from the current geometry *)
  window_width_ms : int;
      (** bucket width in milliseconds (defaults from
          [$TRIGVIEW_WINDOW_WIDTH_MS], else 5000) *)
  request_deadline_ms : int;
      (** per-request deadline applied by the network servers (Unix-socket
          hello/write-drain eviction, HTTP request parse, handler and
          long-poll hold); defaults from [$TRIGVIEW_REQUEST_DEADLINE_MS],
          else 10000; [0] disables deadline enforcement *)
}

(** [domains] defaults to [$TRIGVIEW_DOMAINS] when set to a positive
    integer (so a whole test run can be switched to the parallel engine
    from the environment), else [1]. *)
val default_tuning : tuning

val create : ?strategy:strategy -> ?tuning:tuning -> Relkit.Database.t -> t
val database : t -> Relkit.Database.t
val strategy : t -> strategy

(** Compiles and publishes a view; its name is the one used in trigger
    paths.  @raise Error on parse/compile problems. *)
val define_view : t -> name:string -> string -> unit

(** The compiled form of a published view, for layers that plan against its
    XQGM graph directly (the view-update translator). *)
val find_view : t -> string -> Xquery.Compile.view option

(** Registers an external function callable from trigger actions.
    [parallel_safe] (default false) asserts the callback tolerates running
    on a pool domain concurrently with other members' callbacks of the
    same firing: it must only touch domain-safe state (mutex-guarded
    queues, atomics) and must not issue DML.  Only firings with
    [tuning.domains > 1], auditing off, and every member action marked
    safe are fanned out; everything else dispatches sequentially. *)
val register_action : ?parallel_safe:bool -> t -> name:string -> action -> unit

(** Parses and installs an XML trigger (syntax of §2.2).  [log] (default
    true) controls whether the DDL is recorded for durability; layers that
    persist their own lifecycle records (see {!record_custom_ddl}) pass
    [~log:false] so recovery does not arm the trigger twice.
    @raise Error on syntax errors, unknown views/actions, paths over
    non-trigger-specifiable views (Theorem 1), or unsupported conditions. *)
val create_trigger : ?log:bool -> t -> string -> unit

val drop_trigger : ?log:bool -> t -> string -> unit
val trigger_names : t -> string list

(** Appends a custom DDL record to the runtime's durability log, so
    subsystems layered above the runtime (e.g. the subscription hub) ride
    the same WAL/checkpoint/recovery machinery.  {!reopen} ignores kinds it
    does not know; the owning layer replays them from
    [reopened.recovery.meta].  A later record of kind ["drop_<kind>"] with
    the same name compacts the pair away at the next checkpoint. *)
val record_custom_ddl : t -> kind:string -> name:string -> payload:string -> unit

(** Number of SQL triggers currently registered underneath. *)
val sql_trigger_count : t -> int

(** The generated SQL trigger texts, for inspection (cf. Figure 16). *)
val generated_sql : t -> (string * string) list

val stats : t -> stats
val reset_stats : t -> unit

(** Scan accounting over all plan executions of this manager (interpreted
    and compiled), per source ("scan:T", "delta:T", ...).  Each manager owns
    its accumulator, so concurrent managers do not interfere. *)
val reset_scan_rows : t -> unit

val scan_rows_total : t -> int
val scan_rows_report : t -> (string * int) list

(** Materializes the nodes a trigger path selects (used by
    {!Maintain} for initial population, and handy for debugging).
    @raise Error on unknown views or non-composable paths. *)
val view_nodes : t -> path:string -> Xmlkit.Xml.t list

(** {2 Query-over-view entry point (the HTTP front door's read path)} *)

type view_row = {
  vr_tag : string;  (** element tag of the level *)
  vr_node : Xmlkit.Xml.t;  (** the constructed element, document order *)
  vr_fields : (string * Relkit.Value.t) list;
      (** the level's provenance fields (["@attr"], simple child tags,
          ["count(tag)"]) atomized to scalars — the relation RQL queries
          compile against *)
}

(** Field names exposed at [level] (default: the view's repeated
    top-level element).
    @raise Error on unknown view or level. *)
val view_level_fields : t -> view:string -> ?level:string -> unit -> string list

(** One {!view_row} per element of [level], in document order, evaluated
    through the reference XQGM evaluator against current table contents.
    @raise Error on unknown view or level. *)
val view_rows : t -> view:string -> ?level:string -> unit -> view_row list

(** {2 Observability: tracing, latency histograms, EXPLAIN}

    Span tracing is off by default and costs nothing while disabled (the
    instrumented sites take one mutable-bool read).  Latency histograms are
    log-bucketed and always on: one per XML trigger (dispatch time:
    condition evaluation + action callback) and one per trigger-group
    firing body ([firing:g<id>:<table>]: plan execution, tagging and
    dispatch of one SQL-trigger activation with a non-empty transition). *)

(** Enables/disables span tracing on the underlying database's tracer:
    DML statements, SQL-trigger firings, plan and fragment executions,
    tagging, and action dispatch. *)
val set_tracing : t -> bool -> unit

val tracing_enabled : t -> bool
val trace_clear : t -> unit

(** The recorded spans as an indented timeline (see {!Obs.Trace.render}). *)
val trace_render : t -> string

val trace_json : t -> string

(** Per-trigger and per-firing latency histograms, name-sorted. *)
val latencies : t -> (string * Obs.Metrics.histogram) list

val latency_report : t -> string
val reset_latencies : t -> unit

(** WAL append/fsync and checkpoint latency histograms; [[]] when no
    durability store is attached. *)
val durability_timings : t -> (string * Obs.Metrics.histogram) list

(** Renders every trigger group's execution plan: strategy, monitored view,
    member triggers, and per base table the compiled-vs-interpreted choice
    plus (when compiled) the annotated physical plan of
    {!Pushdown.explain_compiled} — operator labels with join/probe choices,
    last-run cardinalities, cache traffic.  Deterministic for a fixed
    trigger-creation and firing history: no timestamps, no hash order. *)
val explain : t -> string

(** The same structure as JSON: an array of group objects. *)
val explain_json : t -> string

(** Everything at once, human-readable: counters, per-source scan rows,
    per-table PK/index probe counts, latency histograms, durability
    timings. *)
val report : t -> string

(** The machine-readable form; includes {!explain_json} under ["explain"]
    and the workload observatory (knobs, windowed series, advisor) under
    ["observatory"]. *)
val report_json : t -> string

(** {2 Workload observatory: windowed profiles, ANALYZE, TUNE}

    The database maintains a sliding window ({!Obs.Window}) of per-table
    DML rates, skip rates and per-group firing profiles (latency, pair
    counts, scan rows, fragment-cache traffic).  [analyze] feeds the
    windowed profiles into a cost model of the paper's Table-2 trade-off —
    UNGROUPED pays one delta plan per trigger and per statement, GROUPED
    one shared plan plus the constants-table join, MATERIALIZED a
    recompute sized by the monitored base tables — and recommends, per
    trigger cohort, the cheapest strategy (with hysteresis: a switch must
    model ≥10% cheaper).  [tune] applies recommendations by re-arming the
    trigger live from its logged DDL; the transition is itself logged, so
    recovery replays it. *)

(** Windowed (or, when the window is empty, lifetime) observation of one
    trigger cohort. *)
type observed = {
  ob_firings : float;
  ob_rate : float;  (** plan activations/sec over the covered window *)
  ob_latency_ns : float;  (** mean ns per activation *)
  ob_pairs : float;
  ob_kept : float;
  ob_spurious : float;
  ob_scan_rows : float;
  ob_windowed : bool;  (** [false] = window empty, lifetime totals used *)
}

type recommendation = {
  r_trigger : string;
  r_group : int;
  r_members : int;  (** cohort size: triggers sharing plan structure *)
  r_current : strategy;
  r_recommended : strategy;
  r_observed_ns : float;  (** observed cohort cost per relevant statement *)
  r_modeled_ns : (strategy * float) list;
      (** modeled per-statement cost under each strategy; [[]] when the
          cohort has no observed firings *)
  r_rate : float;
  r_observed : observed;
  r_frags : string list;
      (** view fragments worth materializing (greedy selection from
          fragment-cache hit/miss traffic); [[]] when the cache is warm *)
  r_reason : string;
}

(** One recommendation per installed trigger, in creation order.  Also
    records recommendation *changes* as instants for
    {!trace_chrome_json}. *)
val recommendations : t -> recommendation list

(** Human-readable ANALYZE report: per trigger the observed windowed cost
    under the current strategy, the modeled cost under each alternative,
    and the recommendation. *)
val analyze : t -> string

val analyze_json : t -> string

(** Applies the advisor's recommendations ([?trigger] restricts to one):
    every trigger whose recommended strategy differs is dropped and
    re-created from its logged DDL under the new strategy (subscriptions
    and registered actions are unaffected; the drop/tune/create triple is
    logged so recovery replays the transition).  Returns a summary.
    @raise Error on unknown [?trigger] or when a trigger has no logged
    DDL (created with [~log:false]). *)
val tune : ?trigger:string -> t -> string

(** Pins [name]'s strategy for its next (re-)creation, overriding the
    manager default — the mechanism both {!tune} and recovery's ["tune"]
    meta records use. *)
val set_strategy_override : t -> string -> strategy -> unit

(** The strategy a currently-installed trigger actually runs under. *)
val trigger_strategy : t -> string -> strategy option

(** {2 Firing provenance: "why did this trigger fire?"}

    The audit log (off by default, one boolean load per probe while
    disabled) records one structured {!Obs.Audit.record} per SQL-trigger
    activation that reached a delta query, carrying the full lineage chain:
    DML statement (id, event, table, Δ/∇ transition row counts) → generated
    SQL trigger → delta query (plan mode, fragment link keys) → (OLD_NODE,
    NEW_NODE) pair counts split into kept / spurious (OLD = NEW) /
    condition-rejected → action invocations with per-dispatch condition
    outcomes.  Action callbacks receive the record's id as
    {!firing.fi_audit_id} and downstream consumers (e.g. {!Maintain}) can
    annotate the record through it. *)

val set_audit : t -> bool -> unit
val audit_enabled : t -> bool
val audit_clear : t -> unit

(** The live records, oldest first (bounded ring; oldest evicted). *)
val audit_records : t -> Obs.Audit.record list

(** One summary line per record, plus an eviction note when the ring
    overflowed. *)
val audit : t -> string

(** The records as a JSON array. *)
val audit_json : t -> string

(** Renders the full lineage chain of one firing by audit id; explains
    itself when the id was evicted or never existed. *)
val why : t -> int -> string

(** {2 Export: Perfetto and Prometheus}

    [trace_chrome_json] renders the recorded spans as Chrome trace-event
    JSON (load in Perfetto / chrome://tracing): spans become ["ph": "X"]
    complete events, audit records become instant events carrying the full
    record as [args].  [metrics_prometheus] renders counters, scan rows,
    probe counts, the latency registry, durability timings and audit totals
    in Prometheus text exposition format. *)

val trace_chrome_json : t -> string
val metrics_prometheus : t -> string

(** {2 Durability: WAL + snapshots + crash recovery}

    With durability attached, every committed DML/DDL statement is appended
    to a write-ahead log under [data_dir], and every view definition and XML
    trigger DDL is logged as a meta record.  After a crash, {!reopen}
    restores the database from the latest snapshot plus the WAL tail and
    re-compiles / re-arms all views and XML triggers, so the next statement
    fires exactly the actions an uncrashed instance would have fired.

    Tables named [trigconsts*] (the runtime's trigger-grouping constants
    tables) are system state: excluded from the log and snapshots, they are
    regenerated when triggers are re-armed. *)

(** Attaches a durability store rooted at [data_dir] and takes an immediate
    checkpoint of the current database and catalog.
    @raise Error if one is already attached. *)
val attach_durability :
  ?segment_limit:int ->
  ?policy:Durability.Wal.sync_policy ->
  t ->
  data_dir:string ->
  unit

(** Atomic snapshot (write-temp-then-rename) of the database plus the
    logical catalog; truncates the WAL.  @raise Error if not attached. *)
val checkpoint : t -> unit

val detach_durability : t -> unit
val durability_attached : t -> bool

(** Forces an fsync of the WAL regardless of the sync policy. *)
val durability_sync : t -> unit

type reopened = {
  runtime : t;
  recovery : Durability.Recovery.outcome;
  rearmed_views : int;
  rearmed_triggers : int;
  rearm_errors : string list;
      (** views/triggers whose re-compilation failed (e.g. an action
          function missing from [actions]); recovery itself still succeeds *)
}

(** Rebuilds a runtime from [data_dir]: latest valid snapshot, then the WAL
    tail replayed through the normal DML path with triggers suppressed
    (stopping cleanly at a torn tail), then views and XML triggers re-armed
    from their logged DDL.  [actions] must name every action function the
    recovered triggers use — closures cannot be persisted.  Durability is
    re-attached and a fresh checkpoint taken before returning. *)
val reopen :
  ?strategy:strategy ->
  ?tuning:tuning ->
  ?segment_limit:int ->
  ?policy:Durability.Wal.sync_policy ->
  ?actions:(string * action) list ->
  data_dir:string ->
  unit ->
  reopened
