(** Trigger pushdown (§5.2 of the paper): compile an XQGM graph into
    relational plans plus tagging templates, and evaluate them through the
    relational engine.

    [shred] splits a graph into a scalar {!Relkit.Ra} plan per nesting level
    (the branches of the paper's sorted outer union) and a template per
    XML-valued column describing how the tagger rebuilds nodes from rows.
    aggXMLFrag aggregates become child levels linked to their parent by the
    grouping columns.

    [render] executes a shredded graph: child levels are restricted to the
    parent's link keys with {!Relkit.Ra_opt.push_semijoin} before evaluation
    (so only affected subtrees are ever computed), rows are grouped and
    ordered, and templates are instantiated — the constant-space tagger.
    Only the requested columns are materialized: a trigger whose action needs
    only NEW_NODE never touches the OLD side's content.

    [invert_old_aggregates] is the GROUPED-AGG optimization (§5.2): a
    GroupBy over the pre-update table computes its COUNT/SUM aggregates from
    the post-state aggregate and the transition tables instead
    (old = new + ∇-contributions − Δ-contributions), eliminating OLD-OF
    access for distributive aggregates.  MIN/MAX are not invertible and are
    left untouched, as in the paper. *)

exception Not_pushable of string

type atom =
  | A_col of string
  | A_const of Relkit.Value.t

type template =
  | T_elem of {
      tag : string;
      attrs : (string * atom) list;
      content : template list;
    }
  | T_atom of atom
  | T_frag of frag

and frag = {
  f_plan : Relkit.Ra.t;  (** child level plan, unrestricted *)
  f_template : template;  (** instantiated once per child row *)
  f_link : (string * string) list;  (** (parent plan column, child plan column) *)
  f_order : string list;  (** child columns giving document order *)
}

type t = {
  plan : Relkit.Ra.t;  (** scalar part of the top level *)
  out_cols : string list;  (** the original graph's output columns *)
  xml : (string * template) list;  (** XML-valued outputs *)
}

(** @raise Not_pushable when the graph uses features with no relational
    translation (node comparisons, XML-valued unions, computed attribute
    contents); callers fall back to direct XQGM evaluation. *)
val shred : Xqgm.Op.t -> t

(** Rewrites every invertible GroupBy-over-OLD-OF in the shredded plans. *)
val invert_old_aggregates : table:string -> t -> t

(** The child-level link-key signature of every fragment in the shredded
    graph (one ["k1,k2"] entry per distinct fragment, outermost first).
    Static per plan; audit records stamp it as the delta query's lineage. *)
val frag_keys : t -> string list

(** Evaluates; [cols] defaults to all output columns. *)
val render : ?cols:string list -> Relkit.Ra_eval.ctx -> t -> Xqgm.Eval.xrel

(** A shredded graph compiled once against a database: plans go through
    {!Relkit.Ra_compile}, template column references become slots, and each
    fragment level's parent-key semijoin restriction is planned at compile
    time (parameterized by a per-firing key binding) instead of being
    rebuilt and re-optimized on every firing. *)
type compiled

(** Shared fragment-engine memo: templates whose fragments have the same
    child plan/template (the OLD- and NEW-node sides of one trigger group,
    or several groups over the same view) share the per-fragment child
    executor and its version-keyed result cache.  Pass the same memo to
    every [compile] over one database to enable cross-template sharing. *)
type frag_memo

val create_frag_memo : unit -> frag_memo

(** @raise Not_found / Invalid_argument when the plans or templates do not
    resolve against the database catalog; callers fall back to [render]. *)
val compile :
  ?counters:Relkit.Ra_compile.counters ->
  ?frag_memo:frag_memo ->
  Relkit.Database.t ->
  t ->
  compiled

(** Per-firing execution; produces exactly what [render] produces on the
    same context.  [cols] defaults to all output columns. *)
val render_compiled :
  ?cols:string list -> compiled -> Relkit.Ra_eval.ctx -> Xqgm.Eval.xrel

(** Annotated physical plan of the compiled top level followed by each
    fragment child level (see {!Relkit.Ra_compile.explain}): operator
    labels with join choices, last-run cardinalities, cache traffic.
    [fragkeys$N] binding names are masked to [fragkeys$_] so the output is
    stable across runtime instances. *)
val explain_compiled : compiled -> string

(** The same as a JSON object: [{"plan": ..., "fragments": [...]}]. *)
val explain_compiled_json : compiled -> string

(** The printable single-query form (shared subplans as WITH clauses), for
    the generated SQL trigger text. *)
val to_sql : t -> string
