module Xml = Xmlkit.Xml

(* The store keys on canonical XML text but tracks *multiplicity*: two
   distinct view nodes can serialize identically (siblings projecting the
   same non-key column values), and a DELETE of one must not drop the
   other.  Bare [Hashtbl.remove]/[replace] on the text key collapsed such
   duplicates into one entry. *)
type t = {
  mgr : Runtime.t;
  store : (string, Xml.t * int ref) Hashtbl.t;
      (* canonical text -> (node, multiplicity) *)
  mutable deltas : int;
  trigger_names : string list;
}

let next_id =
  let n = ref 0 in
  fun () ->
    incr n;
    !n

let key node = Xml.to_string ~canonical:true node

let add_node store node =
  let k = key node in
  match Hashtbl.find_opt store k with
  | Some (_, n) -> incr n
  | None -> Hashtbl.add store k (node, ref 1)

let remove_node store node =
  let k = key node in
  match Hashtbl.find_opt store k with
  | Some (_, n) -> if !n <= 1 then Hashtbl.remove store k else decr n
  | None -> ()

let apply t fi =
  t.deltas <- t.deltas + 1;
  (match fi.Runtime.fi_old with
  | Some old_node -> remove_node t.store old_node
  | None -> ());
  (match fi.Runtime.fi_new with
  | Some new_node -> add_node t.store new_node
  | None -> ());
  (* close the provenance loop: the audit record that caused this delta
     learns that a maintained copy consumed it *)
  if fi.Runtime.fi_audit_id > 0 then
    Obs.Audit.annotate
      (Relkit.Database.audit (Runtime.database t.mgr))
      ~firing_id:fi.Runtime.fi_audit_id
      (Printf.sprintf "maintained copy applied delta #%d (store now %d node(s))"
         t.deltas (Hashtbl.length t.store))

let attach mgr ~path =
  let id = next_id () in
  let store = Hashtbl.create 64 in
  List.iter (add_node store) (Runtime.view_nodes mgr ~path);
  let action = Printf.sprintf "maintain$%d" id in
  let trigger_names =
    List.map
      (fun event -> Printf.sprintf "maintain$%d$%s" id event)
      [ "UPDATE"; "INSERT"; "DELETE" ]
  in
  let t = { mgr; store; deltas = 0; trigger_names } in
  Runtime.register_action mgr ~name:action (apply t);
  List.iter2
    (fun name event ->
      Runtime.create_trigger mgr
        (Printf.sprintf "CREATE TRIGGER %s AFTER %s ON %s DO %s(%s)" name event path
           action
           (match event with "DELETE" -> "OLD_NODE" | _ -> "NEW_NODE")))
    trigger_names
    [ "UPDATE"; "INSERT"; "DELETE" ];
  t

let current t =
  Hashtbl.fold
    (fun _ (node, n) acc ->
      let rec dup acc i = if i <= 0 then acc else dup (node :: acc) (i - 1) in
      dup acc !n)
    t.store []
  |> List.sort Xml.compare

let deltas_applied t = t.deltas

let detach t = List.iter (Runtime.drop_trigger t.mgr) t.trigger_names
