module Op = Xqgm.Op
module Expr = Xqgm.Expr
module Xval = Xqgm.Xval
module Eval = Xqgm.Eval
module Ra = Relkit.Ra
module Ra_opt = Relkit.Ra_opt
module Ra_eval = Relkit.Ra_eval
module Value = Relkit.Value
module Xml = Xmlkit.Xml

exception Not_pushable of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Not_pushable msg)) fmt

type atom =
  | A_col of string
  | A_const of Value.t

type template =
  | T_elem of {
      tag : string;
      attrs : (string * atom) list;
      content : template list;
    }
  | T_atom of atom
  | T_frag of frag

and frag = {
  f_plan : Ra.t;
  f_template : template;
  f_link : (string * string) list;
  f_order : string list;
}

type t = {
  plan : Ra.t;
  out_cols : string list;
  xml : (string * template) list;
}

(* --- shredding --- *)

let source_of_binding table = function
  | Op.Post -> Ra.Base table
  | Op.Pre -> Ra.Old_of table
  | Op.Delta -> Ra.Delta table
  | Op.Nabla -> Ra.Nabla table

(* Scalar expression translation; XML constructs are rejected. *)
let rec translate_scalar ~xml_cols (e : Expr.t) : Ra.expr =
  match e with
  | Expr.Col c ->
    if List.mem_assoc c xml_cols then fail "column %S is XML-valued in a scalar position" c;
    Ra.Col c
  | Expr.Const v -> Ra.Const v
  | Expr.Binop (op, a, b) ->
    Ra.Binop (op, translate_scalar ~xml_cols a, translate_scalar ~xml_cols b)
  | Expr.Not e -> Ra.Not (translate_scalar ~xml_cols e)
  | Expr.Is_null e -> Ra.Is_null (translate_scalar ~xml_cols e)
  | Expr.Elem _ -> fail "element constructor in a scalar position"
  | Expr.Node_eq _ -> fail "node comparison has no relational translation"

let atom_of_expr ~xml_cols = function
  | Expr.Col c ->
    if List.mem_assoc c xml_cols then fail "XML column %S used as an atomic value" c;
    A_col c
  | Expr.Const v -> A_const v
  | e -> fail "computed value %s in an XML template (bind it to a column first)" (Expr.to_string e)

let rec template_of_expr ~xml_cols (e : Expr.t) : template =
  match e with
  | Expr.Col c -> (
    match List.assoc_opt c xml_cols with
    | Some t -> t
    | None -> T_atom (A_col c))
  | Expr.Const v -> T_atom (A_const v)
  | Expr.Elem { tag; attrs; content } ->
    T_elem
      { tag;
        attrs = List.map (fun (k, e) -> (k, atom_of_expr ~xml_cols e)) attrs;
        content = List.map (template_of_expr ~xml_cols) content;
      }
  | e -> fail "expression %s cannot appear in XML content" (Expr.to_string e)

let hidden_col =
  let n = ref 0 in
  fun c ->
    incr n;
    Printf.sprintf "h%d$%s" !n c

(* Rename the *current level's* column references of a template (atoms and
   parent sides of fragment links); child levels are untouched. *)
let rec rename_template_cols m tpl =
  let ren c = match List.assoc_opt c m with Some c' -> c' | None -> c in
  match tpl with
  | T_atom (A_col c) -> T_atom (A_col (ren c))
  | T_atom (A_const v) -> T_atom (A_const v)
  | T_elem { tag; attrs; content } ->
    T_elem
      { tag;
        attrs =
          List.map
            (fun (k, a) -> (k, match a with A_col c -> A_col (ren c) | a -> a))
            attrs;
        content = List.map (rename_template_cols m) content;
      }
  | T_frag f ->
    T_frag { f with f_link = List.map (fun (p, c) -> (ren p, c)) f.f_link }

(* Columns of the *current level's plan* that a template needs: atom columns
   plus the parent side of immediate fragment links.  Child templates resolve
   against their own level. *)
let rec template_plan_cols = function
  | T_atom (A_col c) -> [ c ]
  | T_atom (A_const _) -> []
  | T_elem { attrs; content; _ } ->
    List.filter_map (fun (_, a) -> match a with A_col c -> Some c | A_const _ -> None) attrs
    @ List.concat_map template_plan_cols content
  | T_frag f -> List.map fst f.f_link

let rec shred (op : Op.t) : t =
  match op.Op.node with
  | Op.Table { table; binding; cols } ->
    { plan = Ra.Scan (source_of_binding table binding, cols);
      out_cols = List.map snd cols;
      xml = [];
    }
  | Op.Select { input; pred } ->
    let s = shred input in
    let pred = translate_scalar ~xml_cols:s.xml pred in
    { s with plan = Ra.Select (pred, s.plan) }
  | Op.Project { input; defs } ->
    let s = shred input in
    let scalar_defs, xml_defs =
      List.partition (fun (_, e) -> Expr.is_scalar e && not (List.exists (fun c -> List.mem_assoc c s.xml) (Expr.cols e))) defs
    in
    let xml =
      List.map (fun (o, e) -> (o, template_of_expr ~xml_cols:s.xml e)) xml_defs
    in
    let ra_defs =
      List.map (fun (o, e) -> (o, translate_scalar ~xml_cols:s.xml e)) scalar_defs
    in
    (* Carry the columns the templates still need.  They are renamed to fresh
       hidden names so they can never collide with the projection's own
       outputs (the old/new sides of an affected-node graph both carry the
       same underlying columns). *)
    let needed =
      List.sort_uniq compare (List.concat_map (fun (_, t) -> template_plan_cols t) xml)
    in
    let renaming, ra_defs =
      List.fold_left
        (fun (ren, acc) c ->
          (* reuse an identity pass-through when the projection already has
             one for this column *)
          match List.find_opt (fun (_, e) -> e = Ra.Col c) acc with
          | Some (o, _) -> ((c, o) :: ren, acc)
          | None ->
            let h = hidden_col c in
            ((c, h) :: ren, acc @ [ (h, Ra.Col c) ]))
        ([], ra_defs) needed
    in
    let xml = List.map (fun (o, t) -> (o, rename_template_cols renaming t)) xml in
    { plan = Ra.Project (ra_defs, s.plan);
      out_cols = List.map fst defs;
      xml;
    }
  | Op.Join { kind; left; right; pred } ->
    let l = shred left and r = shred right in
    let xml_cols = l.xml @ r.xml in
    let pred = translate_scalar ~xml_cols pred in
    let kind' =
      match kind with
      | Op.Inner -> Ra.Inner
      | Op.Left_outer -> Ra.Left_outer
      | Op.Left_anti -> Ra.Left_anti
      | Op.Right_anti -> Ra.Right_anti
    in
    let out_cols =
      match kind with
      | Op.Inner | Op.Left_outer -> l.out_cols @ r.out_cols
      | Op.Left_anti -> l.out_cols
      | Op.Right_anti -> r.out_cols
    in
    let xml =
      match kind with
      | Op.Inner | Op.Left_outer -> xml_cols
      | Op.Left_anti -> l.xml
      | Op.Right_anti -> r.xml
    in
    { plan = Ra.Join (kind', pred, l.plan, r.plan); out_cols; xml }
  | Op.Group_by { input; keys; aggs; order } ->
    let s = shred input in
    List.iter
      (fun k -> if List.mem_assoc k s.xml then fail "grouping on XML column %S" k)
      keys;
    let rel_aggs, frag_aggs =
      List.partition_map
        (fun (o, a) ->
          match a with
          | Expr.Count -> Left (o, Ra.Count_star)
          | Expr.Sum e -> Left (o, Ra.Sum (translate_scalar ~xml_cols:s.xml e))
          | Expr.Min e -> Left (o, Ra.Min (translate_scalar ~xml_cols:s.xml e))
          | Expr.Max e -> Left (o, Ra.Max (translate_scalar ~xml_cols:s.xml e))
          | Expr.Avg e -> Left (o, Ra.Avg (translate_scalar ~xml_cols:s.xml e))
          | Expr.Xml_frag e -> Right (o, e))
        aggs
    in
    let xml =
      List.map
        (fun (o, e) ->
          let f_template = template_of_expr ~xml_cols:s.xml e in
          List.iter
            (fun c -> if List.mem_assoc c s.xml then fail "order column %S is XML-valued" c)
            order;
          ( o,
            T_frag
              { f_plan = s.plan;
                f_template;
                f_link = List.map (fun k -> (k, k)) keys;
                f_order = order;
              } ))
        frag_aggs
    in
    { plan = Ra.Group_by (keys, rel_aggs, s.plan);
      out_cols = keys @ List.map fst aggs;
      xml;
    }
  | Op.Union { cols; inputs } ->
    let shredded = List.map (fun (i, mapping) -> (shred i, mapping)) inputs in
    List.iter
      (fun ((s : t), _) ->
        if s.xml <> [] then fail "union over XML-valued columns is not pushable")
      shredded;
    let parts =
      List.map
        (fun ((s : t), mapping) ->
          Ra.Project (List.map2 (fun out src -> (out, Ra.Col src)) cols mapping, s.plan))
        shredded
    in
    { plan = Ra.Union { all = false; inputs = parts }; out_cols = cols; xml = [] }

(* --- fragment link keys (for audit/provenance) ---

   The child-level link columns of every fragment in a shredded graph, one
   entry per distinct fragment, outermost first.  Static per plan: the
   runtime computes this once at trigger-group construction and stamps it
   on every audit record, so the hot path never walks templates. *)

let rec template_frag_keys acc = function
  | T_atom _ -> acc
  | T_elem { content; _ } -> List.fold_left template_frag_keys acc content
  | T_frag f ->
    let key = String.concat "," (List.map snd f.f_link) in
    let acc = if List.mem key acc then acc else acc @ [ key ] in
    template_frag_keys acc f.f_template

let frag_keys (t : t) =
  List.fold_left (fun acc (_, tpl) -> template_frag_keys acc tpl) [] t.xml

(* --- GROUPED-AGG: invert aggregates over OLD-OF (§5.2) --- *)

let rec plan_scans_old table = function
  | Ra.Scan (Ra.Old_of t, _) -> t = table
  | Ra.Scan (_, _) | Ra.Values _ -> false
  | Ra.Select (_, i)
  | Ra.Project (_, i)
  | Ra.Group_by (_, _, i)
  | Ra.Distinct i
  | Ra.Order_by (_, i)
  | Ra.Shared (_, i) ->
    plan_scans_old table i
  | Ra.Join (_, _, l, r) -> plan_scans_old table l || plan_scans_old table r
  | Ra.Union { inputs; _ } -> List.exists (plan_scans_old table) inputs

let rec subst_old table replacement = function
  | Ra.Scan (Ra.Old_of t, renames) when t = table -> Ra.Scan (replacement t, renames)
  | Ra.Scan (s, renames) -> Ra.Scan (s, renames)
  | Ra.Values (c, r) -> Ra.Values (c, r)
  | Ra.Select (p, i) -> Ra.Select (p, subst_old table replacement i)
  | Ra.Project (d, i) -> Ra.Project (d, subst_old table replacement i)
  | Ra.Group_by (k, a, i) -> Ra.Group_by (k, a, subst_old table replacement i)
  | Ra.Distinct i -> Ra.Distinct (subst_old table replacement i)
  | Ra.Order_by (k, i) -> Ra.Order_by (k, subst_old table replacement i)
  | Ra.Shared (id, i) ->
    (* keep the id (and thus the per-firing memoization) when nothing below
       actually changed; rebuild with a fresh id otherwise *)
    let i' = subst_old table replacement i in
    if i' = i then Ra.Shared (id, i) else Ra.shared i'
  | Ra.Join (k, p, l, r) ->
    Ra.Join (k, p, subst_old table replacement l, subst_old table replacement r)
  | Ra.Union { all; inputs } ->
    Ra.Union { all; inputs = List.map (subst_old table replacement) inputs }

let exists_col = "old_exists$"

let invert_group_by table keys aggs input =
  let invertible =
    List.for_all (fun (_, a) -> match a with Ra.Count_star | Ra.Sum _ -> true | _ -> false) aggs
  in
  if not invertible then None
  else begin
    let post_input = subst_old table (fun t -> Ra.Base t) input in
    let deleted_input = subst_old table (fun t -> Ra.Nabla t) input in
    let inserted_input = subst_old table (fun t -> Ra.Delta t) input in
    (* Existence of a group in the pre-state = its row count there; reuse an
       existing COUNT aggregate when the view already computes one, so the
       post-state group-by stays structurally identical to the NEW side's and
       common-subplan sharing evaluates it once per firing. *)
    let existing_count = List.find_opt (fun (_, a) -> a = Ra.Count_star) aggs in
    let exists_col =
      match existing_count with Some (c, _) -> c | None -> exists_col
    in
    let aggs_plus =
      match existing_count with
      | Some _ -> aggs
      | None -> aggs @ [ (exists_col, Ra.Count_star) ]
    in
    (* Post-state aggregates.  Deliberately NOT wrapped in Shared here: the
       affected-key restriction must still be pushed inside; common-subplan
       sharing runs after that pass. *)
    let base = Ra.Group_by (keys, aggs_plus, post_input) in
    let contrib sign inp =
      let defs =
        List.map (fun k -> (k, Ra.Col k)) keys
        @ List.map
            (fun (o, a) ->
              let v =
                match a with
                | Ra.Count_star -> Ra.Const (Value.Int 1)
                | Ra.Sum e -> e
                | Ra.Count _ | Ra.Min _ | Ra.Max _ | Ra.Avg _ ->
                  (* invertibility was checked before rewriting; reaching
                     here means the check and this table disagree *)
                  invalid_arg
                    (Printf.sprintf
                       "Pushdown.invert_old_aggregates: aggregate %s of \
                        output %S is not invertible (only COUNT(*) and SUM \
                        are)"
                       (match a with
                       | Ra.Count _ -> "COUNT(expr)"
                       | Ra.Min _ -> "MIN"
                       | Ra.Max _ -> "MAX"
                       | _ -> "AVG")
                       o)
              in
              (o, if sign > 0 then v else Ra.Binop (Ra.Sub, Ra.Const (Value.Int 0), v)))
            aggs_plus
      in
      Ra.Project (defs, inp)
    in
    let base_rows =
      Ra.Project
        ( List.map (fun k -> (k, Ra.Col k)) keys
          @ List.map (fun (o, _) -> (o, Ra.Col o)) aggs_plus,
          base )
    in
    let union =
      Ra.Union
        { all = true;
          inputs =
            [ base_rows; contrib 1 deleted_input; contrib (-1) inserted_input ];
        }
    in
    let resummed =
      Ra.Group_by
        (keys, List.map (fun (o, _) -> (o, Ra.Sum (Ra.Col o))) aggs_plus, union)
    in
    (* a group existed in the pre-state iff its row count there was > 0 *)
    let filtered =
      Ra.Select (Ra.Binop (Ra.Gt, Ra.Col exists_col, Ra.Const (Value.Int 0)), resummed)
    in
    let dropped =
      Ra.Project
        ( List.map (fun k -> (k, Ra.Col k)) keys
          @ List.map (fun (o, _) -> (o, Ra.Col o)) aggs,
          filtered )
    in
    Some dropped
  end

(* Number of OLD-OF scans below a plan: the contribution algebra of
   invert_group_by is linear in one occurrence of the pre-update table, so
   inversion only applies when there is exactly one. *)
let rec old_scan_count table = function
  | Ra.Scan (Ra.Old_of t, _) -> if t = table then 1 else 0
  | Ra.Scan (_, _) | Ra.Values _ -> 0
  | Ra.Select (_, i)
  | Ra.Project (_, i)
  | Ra.Group_by (_, _, i)
  | Ra.Distinct i
  | Ra.Order_by (_, i)
  | Ra.Shared (_, i) ->
    old_scan_count table i
  | Ra.Join (_, _, l, r) -> old_scan_count table l + old_scan_count table r
  | Ra.Union { inputs; _ } ->
    List.fold_left (fun acc i -> acc + old_scan_count table i) 0 inputs

(* Only the top-most qualifying GroupBy on each path is rewritten: its three
   substituted branches (post / deleted / inserted) already account for every
   OLD-OF access below it, so recursing into them would only multiply the
   plan size (3^depth for nested groupings). *)
let rec invert_plan table = function
  | Ra.Group_by (keys, aggs, input)
    when plan_scans_old table input && old_scan_count table input = 1 -> (
    match invert_group_by table keys aggs input with
    | Some rewritten -> rewritten
    | None -> Ra.Group_by (keys, aggs, invert_plan table input))
  | Ra.Scan (s, r) -> Ra.Scan (s, r)
  | Ra.Values (c, r) -> Ra.Values (c, r)
  | Ra.Select (p, i) -> Ra.Select (p, invert_plan table i)
  | Ra.Project (d, i) -> Ra.Project (d, invert_plan table i)
  | Ra.Group_by (k, a, i) -> Ra.Group_by (k, a, invert_plan table i)
  | Ra.Distinct i -> Ra.Distinct (invert_plan table i)
  | Ra.Order_by (k, i) -> Ra.Order_by (k, invert_plan table i)
  | Ra.Shared (id, i) -> Ra.Shared (id, invert_plan table i)
  | Ra.Join (k, p, l, r) -> Ra.Join (k, p, invert_plan table l, invert_plan table r)
  | Ra.Union { all; inputs } -> Ra.Union { all; inputs = List.map (invert_plan table) inputs }

let rec invert_template table = function
  | T_atom a -> T_atom a
  | T_elem { tag; attrs; content } ->
    T_elem { tag; attrs; content = List.map (invert_template table) content }
  | T_frag f ->
    T_frag
      { f with
        f_plan = invert_plan table f.f_plan;
        f_template = invert_template table f.f_template;
      }

let invert_old_aggregates ~table t =
  { t with
    plan = invert_plan table t.plan;
    xml = List.map (fun (o, tpl) -> (o, invert_template table tpl)) t.xml;
  }

(* --- rendering (the tagger) --- *)

let distinct_rows rows =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun row ->
      let k = Array.to_list (Array.map Value.to_string row) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    rows

let rec node_fun ctx (rel : Ra_eval.rel) (tpl : template) : Value.t array -> Xval.t =
  match tpl with
  | T_atom (A_const v) -> fun _ -> Xval.atom v
  | T_atom (A_col c) ->
    let i = Ra_eval.col_index rel c in
    fun row -> Xval.atom row.(i)
  | T_elem { tag; attrs; content } ->
    let attr_fs =
      List.map
        (fun (k, a) ->
          match a with
          | A_const v -> (k, fun (_ : Value.t array) -> v)
          | A_col c ->
            let i = Ra_eval.col_index rel c in
            (k, fun row -> row.(i)))
        attrs
    in
    let content_fs = List.map (node_fun ctx rel) content in
    fun row ->
      let attrs =
        List.filter_map
          (fun (k, f) ->
            match f row with Value.Null -> None | v -> Some (k, Value.to_string v))
          attr_fs
      in
      let children = List.concat_map (fun f -> Xval.to_nodes (f row)) content_fs in
      Xval.node (Xml.elem ~attrs tag children)
  | T_frag f ->
    let parent_slots = List.map (fun (p, _) -> Ra_eval.col_index rel p) f.f_link in
    (* restrict the child level to the parent keys actually present *)
    let key_rows =
      distinct_rows
        (List.map
           (fun row -> Array.of_list (List.map (fun i -> row.(i)) parent_slots))
           rel.Ra_eval.rows)
    in
    let key_cols = List.map (fun (_, c) -> "lk$" ^ c) f.f_link in
    let keys_rel = Ra.Values (key_cols, key_rows) in
    let restricted =
      Ra_opt.push_semijoin ~keys:keys_rel
        ~on:(List.map2 (fun (_, c) kc -> (c, kc)) f.f_link key_cols)
        f.f_plan
    in
    let child_rel = Ra_eval.eval ctx restricted in
    let child_node = node_fun ctx child_rel f.f_template in
    let child_link_slots = List.map (fun (_, c) -> Ra_eval.col_index child_rel c) f.f_link in
    let order_slots = List.map (Ra_eval.col_index child_rel) f.f_order in
    (* group child rows by link value, ordered by the order columns *)
    let groups : (string list, (Value.t list * Xval.t) list ref) Hashtbl.t =
      Hashtbl.create 32
    in
    List.iter
      (fun row ->
        let link = List.map (fun i -> Value.to_string row.(i)) child_link_slots in
        let okey = List.map (fun i -> row.(i)) order_slots in
        let node = child_node row in
        match Hashtbl.find_opt groups link with
        | Some cell -> cell := (okey, node) :: !cell
        | None -> Hashtbl.add groups link (ref [ (okey, node) ]))
      child_rel.Ra_eval.rows;
    fun row ->
      let link = List.map (fun i -> Value.to_string row.(i)) parent_slots in
      match Hashtbl.find_opt groups link with
      | None -> Xval.Seq []
      | Some cell ->
        let sorted =
          List.sort
            (fun (a, _) (b, _) -> List.compare Value.compare a b)
            (List.rev !cell)
        in
        Xval.seq (List.map snd sorted)

(* --- compiled rendering ---

   [compile] resolves everything name-shaped in a shredded graph once: the
   relational plans go through {!Relkit.Ra_compile}, template column
   references become slots, and each fragment level's parent-key restriction
   is baked in via [push_semijoin] against a named [Rel] source bound per
   firing — instead of rebuilding and re-optimizing the child plan on every
   firing as [render] does. *)

type cnode = {
  (* [bind ctx parent_rows] does the per-firing work of one template level
     (for fragments: execute the child plan restricted to the parent keys
     and group its rows), returning the per-row tagger. *)
  bind : Ra_eval.ctx -> Value.t array list -> Value.t array -> Xval.t;
}

type compiled = {
  c_ra : Relkit.Ra_compile.t;
  c_out_cols : string list;
  c_getters : (string * [ `Slot of int | `Tpl of cnode * int array ]) list;
  c_frags : (string * Relkit.Ra_compile.t) list;
      (* fragment child plans this template tree executes, for EXPLAIN *)
}

(* A fragment engine does the per-firing work below one [T_frag]: execute
   the child plan restricted to the parent link keys and group the rendered
   child nodes by link key.  The OLD- and NEW-node templates of one trigger
   group — and the templates of different groups over the same view — differ
   only in parent-side column names, so their fragments share one engine
   (memoized on the child plan/template) and one result cache: when the
   fragment plan reads only base tables, a bind with the same key rows and
   the same table versions returns the previously grouped sequences. *)
type frag_engine = {
  fe_bind : Ra_eval.ctx -> Value.t array list -> (Value.t list, Xval.t) Hashtbl.t;
  fe_ra : Relkit.Ra_compile.t;  (* the restricted child plan, for EXPLAIN *)
}

type frag_memo = (Ra.t * template * string list * string list, frag_engine) Hashtbl.t

let create_frag_memo () : frag_memo = Hashtbl.create 8

(* [Some (bases, trans)]: the fragment plan reads the current contents of
   base tables [bases] and the firing's transition data for tables [trans]
   — its result is reusable while those stay equal.  [None]: the plan reads
   a [Rel] binding and is never cached (our own fragkeys [Rel] is bound
   outside the plan, so it does not appear here). *)
let rec frag_deps (plan : Ra.t) : (string list * string list) option =
  let both a b =
    match a, b with
    | Some (x1, y1), Some (x2, y2) -> Some (x1 @ x2, y1 @ y2)
    | _ -> None
  in
  match plan with
  | Ra.Scan (Ra.Base t, _) -> Some ([ t ], [])
  | Ra.Scan ((Ra.Delta t | Ra.Nabla t), _) -> Some ([], [ t ])
  | Ra.Scan (Ra.Old_of t, _) -> Some ([ t ], [ t ])
  | Ra.Scan (Ra.Rel _, _) -> None
  | Ra.Values _ -> Some ([], [])
  | Ra.Select (_, i) | Ra.Project (_, i) | Ra.Distinct i
  | Ra.Order_by (_, i) | Ra.Group_by (_, _, i) | Ra.Shared (_, i) ->
    frag_deps i
  | Ra.Join (_, _, l, r) -> both (frag_deps l) (frag_deps r)
  | Ra.Union { inputs; _ } ->
    List.fold_left (fun acc i -> both acc (frag_deps i)) (Some ([], [])) inputs

let fragkeys_name =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "fragkeys$%d" !n

let col_slot cols c =
  let n = Array.length cols in
  let rec go i =
    if i >= n then
      invalid_arg
        (Printf.sprintf
           "Pushdown: template references unknown column %S (plan produces: %s)"
           c
           (String.concat ", " (Array.to_list cols)))
    else if cols.(i) = c then i
    else go (i + 1)
  in
  go 0

(* Dedup key rows structurally: link keys come out of an equi-join, so the
   matching values are identical and polymorphic equality is exact. *)
let distinct_key_rows rows =
  match rows with
  | [] | [ _ ] -> rows
  | _ ->
    let seen : (Value.t array, unit) Hashtbl.t = Hashtbl.create 16 in
    List.filter
      (fun row ->
        if Hashtbl.mem seen row then false
        else begin
          Hashtbl.add seen row ();
          true
        end)
      rows

let rec compile_template ?counters ~memo ~frags db cols (tpl : template) : cnode =
  match tpl with
  | T_atom (A_const v) ->
    let f _ = Xval.atom v in
    { bind = (fun _ _ -> f) }
  | T_atom (A_col c) ->
    let i = col_slot cols c in
    let f row = Xval.atom row.(i) in
    { bind = (fun _ _ -> f) }
  | T_elem { tag; attrs; content } ->
    let attr_fs =
      List.map
        (fun (k, a) ->
          match a with
          | A_const v -> (k, fun (_ : Value.t array) -> v)
          | A_col c ->
            let i = col_slot cols c in
            (k, fun row -> row.(i)))
        attrs
    in
    let content_cs =
      List.map (compile_template ?counters ~memo ~frags db cols) content
    in
    { bind =
        (fun ctx parent_rows ->
          let content_fs = List.map (fun c -> c.bind ctx parent_rows) content_cs in
          fun row ->
            let attrs =
              List.filter_map
                (fun (k, f) ->
                  match f row with
                  | Value.Null -> None
                  | v -> Some (k, Value.to_string v))
                attr_fs
            in
            let children =
              List.concat_map (fun f -> Xval.to_nodes (f row)) content_fs
            in
            Xval.node (Xml.elem ~attrs tag children));
    }
  | T_frag f ->
    let parent_slots = List.map (fun (p, _) -> col_slot cols p) f.f_link in
    let parent_slots_arr = Array.of_list parent_slots in
    let engine = frag_engine_of ?counters ~memo ~frags db f in
    { bind =
        (fun ctx parent_rows ->
          let key_rows =
            distinct_key_rows
              (List.map
                 (fun row -> Array.map (fun i -> row.(i)) parent_slots_arr)
                 parent_rows)
          in
          if key_rows = [] then fun _ -> Xval.Seq []
          else begin
            let seqs = engine.fe_bind ctx key_rows in
            fun row ->
              let link = List.map (fun i -> row.(i)) parent_slots in
              match Hashtbl.find_opt seqs link with
              | None -> Xval.Seq []
              | Some v -> v
          end);
    }

(* Engine construction happens once per distinct (plan, template, link,
   order); the parent-side link column names are deliberately NOT part of
   the key — key rows arrive already extracted, so OLD_/NEW_-prefixed
   parents reuse the same engine. *)
and frag_engine_of ?counters ~memo ~frags db (f : frag) : frag_engine =
  let mkey = (f.f_plan, f.f_template, List.map snd f.f_link, f.f_order) in
  let note_frag e =
    (* collect once per distinct child plan, for EXPLAIN output *)
    if not (List.exists (fun (_, ra) -> ra == e.fe_ra) !frags) then
      frags :=
        !frags
        @ [ ( Printf.sprintf "fragment (link on %s)"
                (String.concat ", " (List.map snd f.f_link)),
              e.fe_ra )
          ];
    e
  in
  match Hashtbl.find_opt memo mkey with
  | Some e -> note_frag e
  | None ->
    let key_cols = List.map (fun (_, c) -> "lk$" ^ c) f.f_link in
    let rel_name = fragkeys_name () in
    let keys_plan =
      Ra.Scan (Ra.Rel rel_name, List.map (fun kc -> (kc, kc)) key_cols)
    in
    let restricted =
      Ra_opt.push_semijoin ~keys:keys_plan
        ~on:(List.map2 (fun (_, c) kc -> (c, kc)) f.f_link key_cols)
        f.f_plan
    in
    let child_ra = Relkit.Ra_compile.compile ?counters db restricted in
    let child_cols = Array.of_list (Relkit.Ra_compile.cols child_ra) in
    let child_tpl =
      compile_template ?counters ~memo ~frags db child_cols f.f_template
    in
    let child_link_slots = List.map (fun (_, c) -> col_slot child_cols c) f.f_link in
    let order_slots = List.map (col_slot child_cols) f.f_order in
    let key_cols_arr = Array.of_list key_cols in
    let run ctx key_rows =
      let trace = Relkit.Database.tracer ctx.Ra_eval.db in
      let t0 = Obs.Trace.start trace in
      let ctx' =
        { ctx with
          Ra_eval.rels =
            (rel_name, { Ra_eval.cols = key_cols_arr; rows = key_rows })
            :: ctx.Ra_eval.rels;
        }
      in
      let child_rel = Relkit.Ra_compile.exec child_ra ctx' in
      let child_node = child_tpl.bind ctx child_rel.Ra_eval.rows in
      let groups : (Value.t list, (Value.t list * Xval.t) list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      List.iter
        (fun row ->
          let link = List.map (fun i -> row.(i)) child_link_slots in
          let okey = List.map (fun i -> row.(i)) order_slots in
          let node = child_node row in
          match Hashtbl.find_opt groups link with
          | Some cell -> cell := (okey, node) :: !cell
          | None -> Hashtbl.add groups link (ref [ (okey, node) ]))
        child_rel.Ra_eval.rows;
      (* Sort each group once and share the sequence: several parent
         rows (one per satisfied trigger) reference the same group. *)
      let seqs : (Value.t list, Xval.t) Hashtbl.t =
        Hashtbl.create (Hashtbl.length groups)
      in
      Hashtbl.iter
        (fun link cell ->
          let sorted =
            List.sort
              (fun (a, _) (b, _) -> List.compare Value.compare a b)
              (List.rev !cell)
          in
          Hashtbl.replace seqs link (Xval.seq (List.map snd sorted)))
        groups;
      if Obs.Trace.enabled trace then
        Obs.Trace.finish_note trace t0 "frag.exec"
          (Printf.sprintf "keys=%d child_rows=%d" (List.length key_rows)
             (List.length child_rel.Ra_eval.rows));
      seqs
    in
    let deps = frag_deps f.f_plan in
    let cache = ref None in
    let fe_bind ctx key_rows =
      match deps with
      | None -> run ctx key_rows
      | Some (base_tables, trans_tables) ->
        let versions =
          List.map
            (fun tn -> Relkit.Table.version (Relkit.Database.get_table db tn))
            base_tables
        in
        (* Transition deltas are a handful of rows per firing; comparing
           them structurally lets OLD-side fragments (whose inverted plans
           read pre-update state) share results across the getters and
           groups fired by one update. *)
        let trans =
          List.map (fun tn -> List.assoc_opt tn ctx.Ra_eval.trans) trans_tables
        in
        (match !cache with
        | Some (kr, vs, tr, seqs)
          when vs = versions && tr = trans
               && List.equal (fun a b -> a = b) kr key_rows ->
          seqs
        | _ ->
          let seqs = run ctx key_rows in
          cache := Some (key_rows, versions, trans, seqs);
          seqs)
    in
    let e = { fe_bind; fe_ra = child_ra } in
    Hashtbl.add memo mkey e;
    note_frag e

(* Slots of the parent row a template's per-row tagger actually reads:
   attribute and atom columns plus fragment link columns.  Rows that agree
   on these slots produce the same node, so taggers memoize on them. *)
let rec template_slots cols acc = function
  | T_atom (A_const _) -> acc
  | T_atom (A_col c) -> col_slot cols c :: acc
  | T_elem { attrs; content; _ } ->
    let acc =
      List.fold_left
        (fun acc (_, a) ->
          match a with
          | A_const _ -> acc
          | A_col c -> col_slot cols c :: acc)
        acc attrs
    in
    List.fold_left (template_slots cols) acc content
  | T_frag f ->
    List.fold_left (fun acc (p, _) -> col_slot cols p :: acc) acc f.f_link

let compile ?counters ?frag_memo db (t : t) : compiled =
  let memo =
    match frag_memo with Some m -> m | None -> create_frag_memo ()
  in
  let frags = ref [] in
  let ra = Relkit.Ra_compile.compile ?counters db t.plan in
  let cols_arr = Array.of_list (Relkit.Ra_compile.cols ra) in
  let getters =
    List.map
      (fun c ->
        match List.assoc_opt c t.xml with
        | Some tpl ->
          let slots =
            Array.of_list (List.sort_uniq compare (template_slots cols_arr [] tpl))
          in
          (c, `Tpl (compile_template ?counters ~memo ~frags db cols_arr tpl, slots))
        | None -> (c, `Slot (col_slot cols_arr c)))
      t.out_cols
  in
  { c_ra = ra; c_out_cols = t.out_cols; c_getters = getters; c_frags = !frags }

(* The per-firing semijoin binding is named [fragkeys$N] with a process-wide
   counter; EXPLAIN output masks the digits so renderings are stable across
   runtimes (and golden-testable). *)
let mask_fragkeys s =
  let pat = "fragkeys$" in
  let plen = String.length pat in
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + plen <= n && String.sub s !i plen = pat then begin
      Buffer.add_string buf pat;
      i := !i + plen;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      Buffer.add_char buf '_'
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let explain_compiled (c : compiled) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Relkit.Ra_compile.explain c.c_ra);
  List.iter
    (fun (name, ra) ->
      Buffer.add_string buf (name ^ ":\n");
      Buffer.add_string buf (Relkit.Ra_compile.explain ra))
    c.c_frags;
  mask_fragkeys (Buffer.contents buf)

let explain_compiled_json (c : compiled) =
  let frag_json =
    List.map
      (fun (name, ra) ->
        Printf.sprintf "{\"name\": \"%s\", \"plan\": %s}"
          (Obs.Metrics.json_escape name)
          (Relkit.Ra_compile.explain_json ra))
      c.c_frags
  in
  mask_fragkeys
    (Printf.sprintf "{\"plan\": %s, \"fragments\": [%s]}"
       (Relkit.Ra_compile.explain_json c.c_ra)
       (String.concat ", " frag_json))

let render_compiled ?cols (c : compiled) ctx : Eval.xrel =
  let trace = Relkit.Database.tracer ctx.Ra_eval.db in
  let wanted = match cols with Some cs -> cs | None -> c.c_out_cols in
  let t0 = Obs.Trace.start trace in
  let rel = Relkit.Ra_compile.exec c.c_ra ctx in
  if Obs.Trace.enabled trace then
    Obs.Trace.finish_note trace t0 "plan.exec"
      (Printf.sprintf "compiled rows=%d" (List.length rel.Ra_eval.rows));
  let t1 = Obs.Trace.start trace in
  let getters =
    List.map
      (fun name ->
        match List.assoc name c.c_getters with
        | `Slot i -> fun row -> Xval.atom row.(i)
        | `Tpl (node, slots) ->
          let tag = node.bind ctx rel.Ra_eval.rows in
          (* Rows agreeing on the template's slots (e.g. the same view node
             matched by many triggers) share one physically equal value. *)
          let memo : (Value.t array, Xval.t) Hashtbl.t = Hashtbl.create 8 in
          fun row ->
            let key = Array.map (fun i -> row.(i)) slots in
            (match Hashtbl.find_opt memo key with
            | Some v -> v
            | None ->
              let v = tag row in
              Hashtbl.add memo key v;
              v))
      wanted
  in
  let rows =
    List.map
      (fun row -> Array.of_list (List.map (fun g -> g row) getters))
      rel.Ra_eval.rows
  in
  if Obs.Trace.enabled trace then
    Obs.Trace.finish_note trace t1 "tagger"
      (Printf.sprintf "compiled rows=%d" (List.length rows));
  { Eval.cols = Array.of_list wanted; rows }

let render ?cols ctx (t : t) : Eval.xrel =
  let trace = Relkit.Database.tracer ctx.Ra_eval.db in
  let wanted = match cols with Some cs -> cs | None -> t.out_cols in
  let t0 = Obs.Trace.start trace in
  let rel = Ra_eval.eval ctx t.plan in
  if Obs.Trace.enabled trace then
    Obs.Trace.finish_note trace t0 "plan.exec"
      (Printf.sprintf "interpreted rows=%d" (List.length rel.Ra_eval.rows));
  let getters =
    List.map
      (fun c ->
        match List.assoc_opt c t.xml with
        | Some tpl -> node_fun ctx rel tpl
        | None ->
          let i = Ra_eval.col_index rel c in
          fun row -> Xval.atom row.(i))
      wanted
  in
  let t1 = Obs.Trace.start trace in
  let rows =
    List.map
      (fun row -> Array.of_list (List.map (fun g -> g row) getters))
      rel.Ra_eval.rows
  in
  if Obs.Trace.enabled trace then
    Obs.Trace.finish_note trace t1 "tagger"
      (Printf.sprintf "interpreted rows=%d" (List.length rows));
  { Eval.cols = Array.of_list wanted; rows }

let to_sql (t : t) =
  (* Present the levels as one sorted-outer-union query: the top level is
     branch 0; each fragment level becomes a further branch. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Relkit.Sql_print.plan_to_sql t.plan);
  let rec frags prefix = function
    | T_frag f ->
      Buffer.add_string buf
        (Printf.sprintf "\n\nUNION ALL -- child level %s (link on %s, order by %s)\n"
           prefix
           (String.concat ", " (List.map fst f.f_link))
           (String.concat ", " f.f_order));
      Buffer.add_string buf (Relkit.Sql_print.plan_to_sql f.f_plan);
      frags (prefix ^ "*") f.f_template
    | T_elem { content; _ } -> List.iter (frags prefix) content
    | T_atom _ -> ()
  in
  List.iter (fun (_, tpl) -> frags "*" tpl) t.xml;
  Buffer.contents buf
