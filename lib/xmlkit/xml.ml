type t =
  | Element of {
      tag : string;
      attrs : (string * string) list;
      children : t list;
    }
  | Text of string

let elem ?(attrs = []) tag children = Element { tag; attrs; children }
let text s = Text s

let tag = function Element { tag; _ } -> Some tag | Text _ -> None

let attr node name =
  match node with
  | Element { attrs; _ } -> List.assoc_opt name attrs
  | Text _ -> None

let children = function Element { children; _ } -> children | Text _ -> []

let children_named node name =
  List.filter
    (fun c -> match c with Element { tag; _ } -> tag = name | Text _ -> false)
    (children node)

let rec descendants_named node name =
  let self =
    match node with Element { tag; _ } when tag = name -> [ node ] | _ -> []
  in
  self @ List.concat_map (fun c -> descendants_named c name) (children node)

let rec text_content = function
  | Text s -> s
  | Element { children; _ } -> String.concat "" (List.map text_content children)

let sorted_attrs attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) attrs

(* Attribute order is not significant, but nodes built by the same template
   list their attributes in the same order; checking plain list equality
   first keeps the common case allocation-free and only falls back to
   sorting when the lists genuinely differ. *)
let rec attrs_identical a b =
  match a, b with
  | [], [] -> true
  | (k1, v1) :: ra, (k2, v2) :: rb ->
    String.equal k1 k2 && String.equal v1 v2 && attrs_identical ra rb
  | _ -> false

let compare_attrs a b =
  if attrs_identical a b then 0
  else
    List.compare
      (fun (k1, v1) (k2, v2) ->
        let c = String.compare k1 k2 in
        if c <> 0 then c else String.compare v1 v2)
      (sorted_attrs a) (sorted_attrs b)

let rec compare a b =
  if a == b then 0
  else
    match a, b with
    | Text x, Text y -> String.compare x y
    | Text _, Element _ -> -1
    | Element _, Text _ -> 1
    | Element ea, Element eb ->
      let c = String.compare ea.tag eb.tag in
      if c <> 0 then c
      else
        let c = compare_attrs ea.attrs eb.attrs in
        if c <> 0 then c else List.compare compare ea.children eb.children

let equal a b = compare a b = 0

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(canonical = false) node =
  let buf = Buffer.create 256 in
  let rec go = function
    | Text s -> Buffer.add_string buf (escape_text s)
    | Element { tag; attrs; children } ->
      let attrs = if canonical then sorted_attrs attrs else attrs in
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_attr v);
          Buffer.add_char buf '"')
        attrs;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter go children;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
      end
  in
  go node;
  Buffer.contents buf

let to_pretty_string node =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | Text s ->
      pad depth;
      Buffer.add_string buf (escape_text s);
      Buffer.add_char buf '\n'
    | Element { tag; attrs; children } ->
      pad depth;
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape_attr v)))
        attrs;
      (match children with
      | [] -> Buffer.add_string buf "/>\n"
      | [ Text s ] ->
        Buffer.add_char buf '>';
        Buffer.add_string buf (escape_text s);
        Buffer.add_string buf (Printf.sprintf "</%s>\n" tag)
      | children ->
        Buffer.add_string buf ">\n";
        List.iter (go (depth + 1)) children;
        pad depth;
        Buffer.add_string buf (Printf.sprintf "</%s>\n" tag))
  in
  go 0 node;
  Buffer.contents buf

let pp ppf node = Format.pp_print_string ppf (to_string ~canonical:true node)
