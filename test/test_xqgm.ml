(* Tests for the XQGM algebra: canonical keys (Table 3), the reference
   evaluator, and the injectivity analysis (Appendix F). *)

open Relkit
open Xqgm

let v_int = Fixtures.v_int
let v_str = Fixtures.v_str
let v_float = Fixtures.v_float

let ctx db = Ra_eval.ctx_of_db db
let key ~db op = Keys.canonical_key ~schema_of:(Fixtures.schema_of db) op

(* Static schema resolver for tests that do not need a live database. *)
let schema_of = function
  | "product" -> Fixtures.product_schema
  | "vendor" -> Fixtures.vendor_schema
  | name -> Alcotest.failf "unknown table %s" name

(* --- Xval --- *)

let test_xval_seq_flattens () =
  let s = Xval.seq [ Xval.atom (v_int 1); Xval.seq [ Xval.atom (v_int 2) ]; Xval.empty ] in
  Alcotest.(check int) "two items" 2 (Xval.item_count s);
  let singleton = Xval.seq [ Xval.atom (v_int 7) ] in
  Alcotest.(check bool) "singleton collapses" true (Xval.equal singleton (Xval.atom (v_int 7)))

let test_xval_atomize () =
  Alcotest.(check bool) "atom" true (Value.equal (Xval.atomize (Xval.atom (v_int 3))) (v_int 3));
  let n = Xval.node (Xmlkit.Xml.elem "x" [ Xmlkit.Xml.text "hi" ]) in
  Alcotest.(check bool) "node string value" true
    (Value.equal (Xval.atomize n) (v_str "hi"));
  Alcotest.(check bool) "empty seq is null" true (Value.is_null (Xval.atomize Xval.empty));
  Alcotest.check_raises "multi raises"
    (Invalid_argument "Xval.atomize: sequence of more than one item") (fun () ->
      ignore (Xval.atomize (Xval.seq [ Xval.atom (v_int 1); Xval.atom (v_int 2) ])))

let test_xval_to_nodes () =
  let s = Xval.seq [ Xval.atom (v_str "a"); Xval.node (Xmlkit.Xml.elem "b" []) ] in
  Alcotest.(check int) "two nodes" 2 (List.length (Xval.to_nodes s));
  Alcotest.(check int) "null vanishes" 0 (List.length (Xval.to_nodes (Xval.atom Value.Null)))

(* --- canonical keys (Table 3) --- *)

let test_keys_table () =
  let db = Fixtures.mk_db () in
  let product = Op.table "product" [ ("pid", "pid"); ("pname", "pname") ] in
  Alcotest.(check (list string)) "table pk" [ "pid" ] (key ~db product);
  let vendor = Op.table "vendor" [ ("vid", "vid"); ("pid", "v_pid"); ("price", "price") ] in
  Alcotest.(check (list string)) "composite pk, renamed" [ "vid"; "v_pid" ] (key ~db vendor)

let test_keys_join_concat () =
  let db = Fixtures.mk_db () in
  Alcotest.(check (list string)) "join key" [ "pid"; "vid"; "v_pid" ]
    (key ~db (Fixtures.vendor_elem_level ()))

let test_keys_group_by () =
  let db = Fixtures.mk_db () in
  Alcotest.(check (list string)) "product level key" [ "pname" ]
    (key ~db (Fixtures.product_level ()))

let test_keys_project_must_propagate () =
  let db = Fixtures.mk_db () in
  let product = Op.table "product" [ ("pid", "pid"); ("pname", "pname") ] in
  let dropped = Op.project ~defs:[ ("pname", Expr.Col "pname") ] product in
  (match key ~db dropped with
  | _ -> Alcotest.fail "expected Not_trigger_specifiable"
  | exception Keys.Not_trigger_specifiable msg ->
    Alcotest.(check bool) "message mentions key" true
      (String.length msg > 0 && String.lowercase_ascii msg |> fun s ->
       let has sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       has "key"))

let test_keys_missing_pk () =
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"nokeys" ~columns:[ ("a", Schema.TInt) ] ~primary_key:[] ());
  let t = Op.table "nokeys" [ ("a", "a") ] in
  Alcotest.(check bool) "not specifiable" true
    (Result.is_error (Keys.trigger_specifiable ~schema_of:(Fixtures.schema_of db) t))

let test_keys_catalog_specifiable () =
  let db = Fixtures.mk_db () in
  Alcotest.(check bool) "catalog view ok" true
    (Result.is_ok
       (Keys.trigger_specifiable ~schema_of:(Fixtures.schema_of db) (Fixtures.catalog_view ())))

let test_keys_union () =
  let db = Fixtures.mk_db () in
  let a = Op.table "product" [ ("pid", "pid"); ("pname", "pname") ] in
  let b = Op.table "product" [ ("pid", "pid"); ("mfr", "pname") ] in
  let u = Op.union ~cols:[ "k"; "label" ] [ (a, [ "pid"; "pname" ]); (b, [ "pid"; "pname" ]) ] in
  Alcotest.(check (list string)) "union key" [ "k" ] (key ~db u)

(* --- evaluator --- *)

let materialize_catalog db =
  let rel = Eval.eval (ctx db) (Fixtures.catalog_view ()) in
  match rel.Eval.rows with
  | [ [| Xval.Node n |] ] -> n
  | _ -> Alcotest.fail "catalog view must produce one node"

let test_eval_catalog_matches_figure_4 () =
  let db = Fixtures.mk_db () in
  let catalog = materialize_catalog db in
  (* Figure 4: products ordered CRT 15, LCD 19; CRT 15 has the five vendors of
     P1 and P3, LCD 19 has two. *)
  let products = Xmlkit.Xml.children_named catalog "product" in
  Alcotest.(check (list (option string)))
    "product names"
    [ Some "CRT 15"; Some "LCD 19" ]
    (List.map (fun p -> Xmlkit.Xml.attr p "name") products);
  let vendor_counts =
    List.map (fun p -> List.length (Xmlkit.Xml.children_named p "vendor")) products
  in
  Alcotest.(check (list int)) "vendor counts" [ 5; 2 ] vendor_counts;
  (* Spot-check the first vendor element (document order = vid, pid). *)
  let first_vendor =
    List.hd (Xmlkit.Xml.children_named (List.hd products) "vendor")
  in
  Alcotest.(check (list string)) "amazon first"
    [ "P1"; "Amazon"; "100.0" ]
    (List.map Xmlkit.Xml.text_content (Xmlkit.Xml.children first_vendor))

let test_eval_count_predicate_filters () =
  let db = Fixtures.mk_db () in
  (* Remove one of LCD 19's two vendors: it drops below count >= 2. *)
  Fixtures.delete_vendor db ~vid:"Buy.com" ~pid:"P2";
  let catalog = materialize_catalog db in
  let products = Xmlkit.Xml.children_named catalog "product" in
  Alcotest.(check (list (option string)))
    "LCD 19 gone"
    [ Some "CRT 15" ]
    (List.map (fun p -> Xmlkit.Xml.attr p "name") products)

let test_eval_pre_binding_sees_old_state () =
  let db = Fixtures.mk_db () in
  let seen = ref None in
  Database.create_trigger db
    { Database.trig_name = "capture";
      trig_table = "vendor";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body =
        (fun tc ->
          let tctx = Ra_eval.ctx_of_trigger tc in
          let old_graph = Op.to_old ~table:"vendor" (Fixtures.product_level ()) in
          let rel = Eval.eval_sorted tctx ~by:[ "pname" ] old_graph in
          let cur = Eval.eval_sorted tctx ~by:[ "pname" ] (Fixtures.product_level ()) in
          seen := Some (rel, cur));
    };
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  match !seen with
  | None -> Alcotest.fail "no firing"
  | Some (old_rel, cur_rel) ->
    let price_of rel =
      let i = Eval.col_index rel "product_elem" in
      match rel.Eval.rows with
      | row :: _ -> (
        match row.(i) with
        | Xval.Node n -> List.hd (Xmlkit.Xpath.select_strings n "/vendor[vid='Amazon']/price")
        | _ -> Alcotest.fail "not a node")
      | [] -> Alcotest.fail "empty"
    in
    Alcotest.(check string) "old price" "100.0" (price_of old_rel);
    Alcotest.(check string) "new price" "75.0" (price_of cur_rel)

let test_eval_delta_nabla_bindings () =
  let db = Fixtures.mk_db () in
  let seen = ref None in
  Database.create_trigger db
    { Database.trig_name = "capture";
      trig_table = "vendor";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body =
        (fun tc ->
          let tctx = Ra_eval.ctx_of_trigger tc in
          let delta =
            Op.table ~binding:Op.Delta "vendor" [ ("vid", "vid"); ("price", "price") ]
          in
          let nabla =
            Op.table ~binding:Op.Nabla "vendor" [ ("vid", "vid"); ("price", "price") ]
          in
          seen := Some (Eval.eval tctx delta, Eval.eval tctx nabla));
    };
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  match !seen with
  | Some (d, n) ->
    Alcotest.(check int) "delta rows" 1 (List.length d.Eval.rows);
    Alcotest.(check int) "nabla rows" 1 (List.length n.Eval.rows)
  | None -> Alcotest.fail "no firing"

let test_eval_union_dedups () =
  let db = Fixtures.mk_db () in
  let names = Op.table "product" [ ("pname", "pname") ] in
  let u = Op.union ~cols:[ "pname" ] [ (names, [ "pname" ]); (names, [ "pname" ]) ] in
  let rel = Eval.eval (ctx db) u in
  (* CRT 15 appears twice in the table, once in the set-semantics union. *)
  Alcotest.(check int) "distinct names" 2 (List.length rel.Eval.rows)

let test_eval_left_outer_and_anti () =
  let db = Fixtures.mk_db () in
  Database.insert_rows db ~table:"product" [ [| v_str "P4"; v_str "OLED"; v_str "LG" |] ];
  let product = Op.table "product" [ ("pid", "pid") ] in
  let vendor = Op.table "vendor" [ ("pid", "v_pid") ] in
  let outer =
    Eval.eval (ctx db)
      (Op.join ~kind:Op.Left_outer ~pred:(Expr.eq (Expr.Col "pid") (Expr.Col "v_pid"))
         product vendor)
  in
  Alcotest.(check int) "7 matches + 1 padded" 8 (List.length outer.Eval.rows);
  let anti =
    Eval.eval (ctx db)
      (Op.join ~kind:Op.Left_anti ~pred:(Expr.eq (Expr.Col "pid") (Expr.Col "v_pid"))
         product vendor)
  in
  Alcotest.(check int) "P4 unmatched" 1 (List.length anti.Eval.rows)

let test_eval_general_comparison_existential () =
  let db = Fixtures.mk_db () in
  (* count($vendors where price < 110) via a sequence comparison *)
  let vendor = Op.table "vendor" [ ("vid", "vid"); ("pid", "pid"); ("price", "price") ] in
  let grouped =
    Op.group_by ~keys:[ "pid" ] ~aggs:[ ("prices", Expr.Xml_frag (Expr.Col "price")) ]
      ~order:[ "vid" ] vendor
  in
  let filtered =
    Op.select
      ~pred:(Expr.Binop (Relkit.Ra.Lt, Expr.Col "prices", Expr.Const (v_float 110.0)))
      grouped
  in
  let rel = Eval.eval (ctx db) filtered in
  (* only P1 has some vendor under 110 *)
  Alcotest.(check int) "P1 only" 1 (List.length rel.Eval.rows)

let test_eval_scalar_arith_and_bool () =
  let db = Fixtures.mk_db () in
  let vendor = Op.table "vendor" [ ("vid", "vid"); ("price", "price") ] in
  let proj =
    Op.project
      ~defs:[ ("vid", Expr.Col "vid"); ("double", Expr.Binop (Relkit.Ra.Mul, Expr.Col "price", Expr.Const (v_int 2))) ]
      vendor
  in
  let rel = Eval.eval (ctx db) proj in
  Alcotest.(check int) "all rows" 7 (List.length rel.Eval.rows);
  let sel =
    Op.select
      ~pred:
        (Expr.Binop
           ( Relkit.Ra.And,
             Expr.Binop (Relkit.Ra.Ge, Expr.Col "double", Expr.Const (v_float 300.0)),
             Expr.Not (Expr.Binop (Relkit.Ra.Eq, Expr.Col "vid", Expr.Const (v_str "Amazon"))) ))
      proj
  in
  Alcotest.(check int) "filtered" 3 (List.length (Eval.eval (ctx db) sel).Eval.rows)

let test_eval_null_attr_omitted () =
  let db = Fixtures.mk_db () in
  let t = Op.table "product" [ ("pid", "pid") ] in
  let proj =
    Op.project
      ~defs:
        [ ( "e",
            Expr.Elem
              { tag = "x"; attrs = [ ("a", Expr.Const Value.Null) ]; content = [] } );
          ("pid", Expr.Col "pid");
        ]
      t
  in
  let rel = Eval.eval (ctx db) proj in
  match rel.Eval.rows with
  | row :: _ -> (
    match row.(0) with
    | Xval.Node n -> Alcotest.(check (option string)) "no attr" None (Xmlkit.Xml.attr n "a")
    | _ -> Alcotest.fail "expected node")
  | [] -> Alcotest.fail "empty"

(* --- injectivity (Appendix F) --- *)

let test_injective_catalog () =
  let g = Fixtures.product_level () in
  Alcotest.(check string) "wrt vendor" "INJECTIVE"
    (Injective.verdict_to_string (Injective.analyze ~table:"vendor" ~schema_of g));
  Alcotest.(check string) "wrt product" "INJECTIVE"
    (Injective.verdict_to_string (Injective.analyze ~table:"product" ~schema_of g))

let test_injective_minprice_agg_only () =
  let g = Fixtures.minprice_product_level () in
  match Injective.analyze ~table:"vendor" ~schema_of g with
  | Injective.Agg_only cols ->
    Alcotest.(check bool) "minp compared" true (List.mem "minp" cols)
  | v -> Alcotest.failf "expected Agg_only, got %s" (Injective.verdict_to_string v)

let test_injective_unrelated_table () =
  (* A view over product only is trivially injective w.r.t. vendor. *)
  let g =
    Op.project
      ~defs:[ ("pid", Expr.Col "pid"); ("pname", Expr.Col "pname") ]
      (Op.table "product" [ ("pid", "pid"); ("pname", "pname") ])
  in
  Alcotest.(check string) "no vendor flow" "INJECTIVE"
    (Injective.verdict_to_string (Injective.analyze ~table:"vendor" ~schema_of g))

let test_injective_opaque_arith_in_elem () =
  let vendor = Op.table "vendor" [ ("vid", "vid"); ("price", "price") ] in
  let g =
    Op.project
      ~defs:
        [ ("vid", Expr.Col "vid");
          ( "e",
            Expr.Elem
              { tag = "x";
                attrs = [];
                content =
                  [ Expr.Binop (Relkit.Ra.Add, Expr.Col "price", Expr.Col "price") ];
              } );
        ]
      vendor
  in
  Alcotest.(check string) "opaque" "OPAQUE"
    (Injective.verdict_to_string (Injective.analyze ~table:"vendor" ~schema_of g))

let test_injective_dropped_column_not_injective () =
  (* price influences nothing visible injectively; compare-based fallback on
     the scalar outputs is still possible (Agg_only). *)
  let vendor = Op.table "vendor" [ ("vid", "vid"); ("pid", "pid"); ("price", "price") ] in
  let g = Op.project ~defs:[ ("vid", Expr.Col "vid"); ("pid", Expr.Col "pid") ] vendor in
  match Injective.analyze ~table:"vendor" ~schema_of g with
  | Injective.Injective -> Alcotest.fail "dropping a column must not be injective"
  | Injective.Agg_only _ | Injective.Opaque -> ()

(* --- print --- *)

let test_print_mentions_operators () =
  let s = Print.to_string (Fixtures.product_level ()) in
  List.iter
    (fun frag ->
      let has =
        let n = String.length s and m = String.length frag in
        let rec go i = i + m <= n && (String.sub s i m = frag || go (i + 1)) in
        go 0
      in
      if not has then Alcotest.failf "missing %S in:\n%s" frag s)
    [ "GroupBy"; "aggXMLFrag"; "Table product"; "Table vendor"; "Select"; "Project" ]

(* --- property tests --- *)

let random_price_update =
  QCheck.Gen.(
    pair (int_range 0 6) (int_range 50 300) |> map (fun (i, p) -> (i, float_of_int p)))

let prop_view_eval_deterministic =
  QCheck.Test.make ~name:"evaluation is deterministic across row orders" ~count:30
    (QCheck.make random_price_update) (fun (i, price) ->
      let db = Fixtures.mk_db () in
      let vendors = Table.to_rows (Database.get_table db "vendor") in
      let victim = List.nth vendors (i mod List.length vendors) in
      ignore
        (Database.update_rows db ~table:"vendor"
           ~where:(fun r -> r == victim)
           ~set:(fun r -> [| r.(0); r.(1); v_float price |]));
      let a = Eval.eval (Ra_eval.ctx_of_db db) (Fixtures.catalog_view ()) in
      let b = Eval.eval (Ra_eval.ctx_of_db db) (Fixtures.catalog_view ()) in
      Eval.equal_xrel a b)

let prop_old_graph_is_pre_state =
  QCheck.Test.make ~name:"G_old = view evaluated before the statement" ~count:30
    (QCheck.make random_price_update) (fun (i, price) ->
      let db = Fixtures.mk_db () in
      let before = Eval.eval (Ra_eval.ctx_of_db db) (Fixtures.catalog_view ()) in
      let vendors = Table.to_rows (Database.get_table db "vendor") in
      let victim = List.nth vendors (i mod List.length vendors) in
      let ok = ref false in
      Database.create_trigger db
        { Database.trig_name = "capture";
          trig_table = "vendor";
          trig_event = Database.Update;
          prepare = None;
      relevance = None;
          sql_text = "(test)";
          body =
            (fun tc ->
              let tctx = Ra_eval.ctx_of_trigger tc in
              let old_graph = Op.to_old ~table:"vendor" (Fixtures.catalog_view ()) in
              ok := Eval.equal_xrel (Eval.eval tctx old_graph) before);
        };
      ignore
        (Database.update_rows db ~table:"vendor"
           ~where:(fun r -> r == victim)
           ~set:(fun r -> [| r.(0); r.(1); v_float price |]));
      !ok)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_view_eval_deterministic; prop_old_graph_is_pre_state ]

let () =
  Alcotest.run "xqgm"
    [ ( "xval",
        [ Alcotest.test_case "seq flattens" `Quick test_xval_seq_flattens;
          Alcotest.test_case "atomize" `Quick test_xval_atomize;
          Alcotest.test_case "to_nodes" `Quick test_xval_to_nodes;
        ] );
      ( "keys",
        [ Alcotest.test_case "table pk" `Quick test_keys_table;
          Alcotest.test_case "join concatenates" `Quick test_keys_join_concat;
          Alcotest.test_case "group by" `Quick test_keys_group_by;
          Alcotest.test_case "projection must propagate" `Quick test_keys_project_must_propagate;
          Alcotest.test_case "missing pk" `Quick test_keys_missing_pk;
          Alcotest.test_case "catalog specifiable (Thm 1)" `Quick test_keys_catalog_specifiable;
          Alcotest.test_case "union key" `Quick test_keys_union;
        ] );
      ( "eval",
        [ Alcotest.test_case "catalog = Figure 4" `Quick test_eval_catalog_matches_figure_4;
          Alcotest.test_case "count predicate filters" `Quick test_eval_count_predicate_filters;
          Alcotest.test_case "PRE binding" `Quick test_eval_pre_binding_sees_old_state;
          Alcotest.test_case "DELTA/NABLA bindings" `Quick test_eval_delta_nabla_bindings;
          Alcotest.test_case "union dedups" `Quick test_eval_union_dedups;
          Alcotest.test_case "outer + anti joins" `Quick test_eval_left_outer_and_anti;
          Alcotest.test_case "existential comparison" `Quick
            test_eval_general_comparison_existential;
          Alcotest.test_case "arith + bool" `Quick test_eval_scalar_arith_and_bool;
          Alcotest.test_case "null attr omitted" `Quick test_eval_null_attr_omitted;
        ] );
      ( "injective",
        [ Alcotest.test_case "catalog injective" `Quick test_injective_catalog;
          Alcotest.test_case "min-price agg-only" `Quick test_injective_minprice_agg_only;
          Alcotest.test_case "unrelated table" `Quick test_injective_unrelated_table;
          Alcotest.test_case "arith in elem opaque" `Quick test_injective_opaque_arith_in_elem;
          Alcotest.test_case "dropped column" `Quick test_injective_dropped_column_not_injective;
        ] );
      ("print", [ Alcotest.test_case "operators shown" `Quick test_print_mentions_operators ]);
      ("properties", qcheck_tests);
    ]
