(* Differential tests for the compiling executor (Relkit.Ra_compile):
   random plans — all join kinds, grouping, unions, distinct, ordering,
   shared subplans, transition-table and Old_of sources — are executed by
   both the Ra_eval interpreter (the reference oracle) and the compiled
   form, and must produce identical multisets of rows.  Plus unit tests for
   the version-keyed build-side cache: hits on repeated executions, misses
   (and correct results) after a dependency table mutates. *)

open Relkit

let v_int i = Value.Int i

(* Two all-int tables, so any generated comparison is type-sensible.
   Every non-key column carries NULLs: joins, index probes and group-by
   keys over NULL are part of the differential surface (SQL semantics:
   NULL joins nothing, indexes skip NULL keys, GROUP BY treats NULLs as
   one group). *)
let null_every n i v = if i mod n = n - 1 then Value.Null else v

let make_db () =
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"t1"
       ~columns:[ ("a", Schema.TInt); ("b", Schema.TInt); ("c", Schema.TInt) ]
       ~primary_key:[ "a" ] ());
  Database.create_table db
    (Schema.make ~name:"t2"
       ~columns:[ ("d", Schema.TInt); ("e", Schema.TInt) ]
       ~primary_key:[ "d" ] ());
  Database.create_index db ~table:"t1" ~column:"b";
  Database.load_rows db ~table:"t1"
    (List.init 20 (fun i ->
         [| v_int i; null_every 6 i (v_int (i mod 5)); null_every 7 i (v_int (i mod 7)) |]));
  Database.load_rows db ~table:"t2"
    (List.init 12 (fun i -> [| v_int i; null_every 5 i (v_int (i mod 4)) |]));
  db

(* The firing's transition tables, consistent with the current contents of
   t1: rows 0-2 were inserted by the statement (Δ, present in t1), rows
   100-102 were deleted (∇, absent from t1). *)
let delta_rows = List.init 3 (fun i -> [| v_int i; v_int (i mod 5); v_int (i mod 7) |])

let nabla_rows =
  List.init 3 (fun i ->
      [| v_int (100 + i); (if i = 1 then Value.Null else v_int i); v_int 1 |])

let aux_rows =
  List.init 6 (fun i ->
      [| (if i = 2 then Value.Null else v_int (i mod 4)); v_int (10 - i) |])

let make_ctx db =
  {
    Ra_eval.db;
    trans = [ ("t1", (delta_rows, nabla_rows)) ];
    rels = [ ("aux", { Ra_eval.cols = [| "k1"; "k2" |]; rows = aux_rows }) ];
    shared_memo = Hashtbl.create 8;
    scan_stats = Ra_eval.create_scan_stats ();
  }

(* --- random plan generator ---

   Well-formed by construction: every subtree's columns carry a distinct
   prefix, and joins give their inputs sibling prefixes, so column sets are
   disjoint wherever Ra.columns requires it. *)

let t1_cols = [ "a"; "b"; "c" ]
let t2_cols = [ "d"; "e" ]
let aux_cols = [ "k1"; "k2" ]

let gen_expr cols =
  let open QCheck.Gen in
  let cmp =
    oneofl [ Ra.Eq; Ra.Neq; Ra.Lt; Ra.Le; Ra.Gt; Ra.Ge ] >>= fun op ->
    oneofl cols >>= fun c ->
    int_range (-2) 12 >>= fun k ->
    return (Ra.Binop (op, Ra.Col c, Ra.Const (v_int k)))
  in
  let is_null = oneofl cols >|= fun c -> Ra.Is_null (Ra.Col c) in
  fix
    (fun self n ->
      if n = 0 then cmp
      else
        frequency
          [ (3, cmp);
            (1, is_null);
            (1, map (fun p -> Ra.Not p) is_null);
            (2, map2 (fun a b -> Ra.Binop (Ra.And, a, b)) (self (n - 1)) (self (n - 1)));
            (2, map2 (fun a b -> Ra.Binop (Ra.Or, a, b)) (self (n - 1)) (self (n - 1)));
            (1, map (fun a -> Ra.Not a) (self (n - 1)));
          ])
    2

let gen_arith cols =
  let open QCheck.Gen in
  let leaf =
    frequency
      [ (3, map (fun c -> Ra.Col c) (oneofl cols));
        (1, map (fun k -> Ra.Const (v_int k)) (int_range 0 9));
      ]
  in
  frequency
    [ (2, leaf);
      ( 2,
        oneofl [ Ra.Add; Ra.Sub; Ra.Mul ] >>= fun op ->
        map2 (fun a b -> Ra.Binop (op, a, b)) leaf leaf );
    ]

let gen_plan fuel prefix0 =
  let open QCheck.Gen in
  let scan_of prefix src cols =
    Ra.Scan (src, List.map (fun c -> (c, prefix ^ c)) cols)
  in
  let leaf prefix =
    frequency
      [ (3, return (scan_of prefix (Ra.Base "t1") t1_cols));
        (2, return (scan_of prefix (Ra.Base "t2") t2_cols));
        (1, return (scan_of prefix (Ra.Delta "t1") t1_cols));
        (1, return (scan_of prefix (Ra.Nabla "t1") t1_cols));
        (1, return (scan_of prefix (Ra.Old_of "t1") t1_cols));
        (1, return (scan_of prefix (Ra.Rel "aux") aux_cols));
        ( 1,
          list_size (int_range 0 4) (pair (int_range 0 5) (int_range 0 5))
          >|= fun cells ->
          Ra.Values
            ( [ prefix ^ "v0"; prefix ^ "v1" ],
              List.map (fun (x, y) -> [| v_int x; v_int y |]) cells ) );
      ]
  in
  let rec go fuel prefix =
    if fuel = 0 then leaf prefix
    else
      let sub extra = go (fuel - 1) (prefix ^ extra) in
      frequency
        [ (2, leaf prefix);
          ( 3,
            sub "s" >>= fun s ->
            gen_expr (Ra.columns s) >|= fun p -> Ra.Select (p, s) );
          ( 3,
            sub "p" >>= fun s ->
            let cols = Ra.columns s in
            int_range 1 3 >>= fun n ->
            list_repeat n (gen_arith cols) >|= fun exprs ->
            Ra.Project
              ( List.mapi (fun i e -> (Printf.sprintf "%so%d" prefix i, e)) exprs
                @ [ (List.hd cols, Ra.Col (List.hd cols)) ],
                s ) );
          ( 3,
            oneofl [ Ra.Inner; Ra.Left_outer; Ra.Left_anti; Ra.Right_anti ]
            >>= fun kind ->
            sub "l" >>= fun l ->
            sub "r" >>= fun r ->
            let lc = Ra.columns l and rc = Ra.columns r in
            frequency
              [ ( 4,
                  oneofl lc >>= fun cl ->
                  oneofl rc >>= fun cr ->
                  frequency
                    [ (2, return (Ra.eq_cols [ (cl, cr) ]));
                      ( 1,
                        int_range 0 9 >|= fun k ->
                        Ra.Binop
                          ( Ra.And,
                            Ra.eq_cols [ (cl, cr) ],
                            Ra.Binop (Ra.Lt, Ra.Col cl, Ra.Const (v_int k)) ) );
                    ] );
                (1, return (Ra.Const (Value.Bool true)));
              ]
            >|= fun pred -> Ra.Join (kind, pred, l, r) );
          ( 2,
            sub "g" >>= fun s ->
            let cols = Ra.columns s in
            oneofl [ 0; 1; 2 ] >>= fun nkeys ->
            let keys = List.filteri (fun i _ -> i < nkeys) cols in
            oneofl cols >>= fun ac ->
            oneofl
              [ Ra.Count_star; Ra.Count (Ra.Col ac); Ra.Sum (Ra.Col ac);
                Ra.Min (Ra.Col ac); Ra.Max (Ra.Col ac); Ra.Avg (Ra.Col ac);
              ]
            >|= fun agg -> Ra.Group_by (keys, [ (prefix ^ "agg", agg) ], s) );
          ( 2,
            (* union of two filtered scans of the same table: columns align *)
            leaf prefix >>= fun s ->
            gen_expr (Ra.columns s) >>= fun p1 ->
            gen_expr (Ra.columns s) >>= fun p2 ->
            bool >|= fun all ->
            Ra.Union { all; inputs = [ Ra.Select (p1, s); Ra.Select (p2, s) ] }
          );
          (1, sub "d" >|= fun s -> Ra.Distinct s);
          ( 2,
            sub "o" >>= fun s ->
            let cols = Ra.columns s in
            oneofl cols >>= fun c ->
            oneofl [ Ra.Asc; Ra.Desc ] >|= fun dir -> Ra.Order_by ([ (c, dir) ], s)
          );
          (1, sub "w" >|= Ra.shared);
        ]
  in
  go fuel prefix0

let arb_plan =
  QCheck.make
    ~print:(fun plan -> Format.asprintf "%a" Ra.pp plan)
    (gen_plan 3 "x")

(* --- the differential property --- *)

let db = make_db ()

let prop_compiled_matches_interpreter =
  QCheck.Test.make ~name:"compiled executor = interpreter (random plans)"
    ~count:250 arb_plan (fun plan ->
      let expected = Ra_eval.sorted (Ra_eval.eval (make_ctx db) plan) in
      let compiled = Ra_compile.compile db plan in
      let got1 = Ra_eval.sorted (Ra_compile.exec compiled (make_ctx db)) in
      (* twice: build-side caches and shared-memo reuse must not change
         the result *)
      let got2 = Ra_eval.sorted (Ra_compile.exec compiled (make_ctx db)) in
      Ra_eval.equal_rel got1 expected && Ra_eval.equal_rel got2 expected)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_compiled_matches_interpreter ]

(* --- build-side cache unit tests --- *)

(* A hash join whose build side is cacheable: the Project around the t2
   scan makes the inner side non-probeable, and its only dependency is the
   base table t2. *)
let hash_join_plan =
  Ra.Join
    ( Ra.Inner,
      Ra.eq_cols [ ("b", "dd") ],
      Ra.Scan (Ra.Base "t1", [ ("a", "a"); ("b", "b") ]),
      Ra.Project
        ( [ ("dd", Ra.Col "d"); ("ee", Ra.Col "e") ],
          Ra.Scan (Ra.Base "t2", [ ("d", "d"); ("e", "e") ]) ) )

let test_build_cache_hits_and_invalidation () =
  let db = make_db () in
  let counters = Ra_compile.create_counters () in
  let compiled = Ra_compile.compile ~counters db hash_join_plan in
  let exec () = Ra_compile.exec compiled (make_ctx db) in
  ignore (exec ());
  Alcotest.(check int) "first exec builds" 1 counters.Ra_compile.build_cache_misses;
  ignore (exec ());
  ignore (exec ());
  Alcotest.(check int) "repeats reuse the build" 2 counters.Ra_compile.build_cache_hits;
  Alcotest.(check int) "no extra builds" 1 counters.Ra_compile.build_cache_misses;
  (* mutating the build-side table invalidates *)
  Database.insert_rows db ~table:"t2" [ [| v_int 50; v_int 3 |] ];
  let after = exec () in
  Alcotest.(check int) "mutation forces a rebuild" 2
    counters.Ra_compile.build_cache_misses;
  (* and the rebuilt side is the fresh contents: interpreter agrees *)
  let expected = Ra_eval.eval (make_ctx db) hash_join_plan in
  Alcotest.(check bool) "post-mutation result matches interpreter" true
    (Ra_eval.equal_rel (Ra_eval.sorted after) (Ra_eval.sorted expected));
  (* probe-side mutations don't touch the cached build *)
  Database.insert_rows db ~table:"t1" [ [| v_int 200; v_int 3; v_int 0 |] ];
  ignore (exec ());
  Alcotest.(check int) "probe-side change is not an invalidation" 3
    counters.Ra_compile.build_cache_hits

let test_transition_builds_never_cached () =
  let db = make_db () in
  let counters = Ra_compile.create_counters () in
  let plan =
    Ra.Join
      ( Ra.Inner,
        Ra.eq_cols [ ("b", "db") ],
        Ra.Scan (Ra.Base "t1", [ ("a", "a"); ("b", "b") ]),
        Ra.Project
          ( [ ("dals", Ra.Col "da"); ("db", Ra.Col "db2") ],
            Ra.Scan (Ra.Delta "t1", [ ("a", "da"); ("b", "db2") ]) ) )
  in
  let compiled = Ra_compile.compile ~counters db plan in
  ignore (Ra_compile.exec compiled (make_ctx db));
  ignore (Ra_compile.exec compiled (make_ctx db));
  Alcotest.(check int) "per-firing inputs are never cache hits" 0
    counters.Ra_compile.build_cache_hits

let test_counters_count_compiles_and_execs () =
  let db = make_db () in
  let counters = Ra_compile.create_counters () in
  let c1 = Ra_compile.compile ~counters db hash_join_plan in
  let c2 =
    Ra_compile.compile ~counters db (Ra.Scan (Ra.Base "t2", [ ("d", "d") ]))
  in
  Alcotest.(check int) "plans_compiled" 2 counters.Ra_compile.plans_compiled;
  ignore (Ra_compile.exec c1 (make_ctx db));
  ignore (Ra_compile.exec c2 (make_ctx db));
  ignore (Ra_compile.exec c2 (make_ctx db));
  Alcotest.(check int) "compiled_execs" 3 counters.Ra_compile.compiled_execs

let () =
  Alcotest.run "ra_compile"
    [ ("differential", qcheck_tests);
      ( "build cache",
        [ Alcotest.test_case "hits and invalidation" `Quick
            test_build_cache_hits_and_invalidation;
          Alcotest.test_case "transition inputs uncached" `Quick
            test_transition_builds_never_cached;
          Alcotest.test_case "compile/exec counters" `Quick
            test_counters_count_compiles_and_execs;
        ] );
    ]
