(* Golden tests for the firing-provenance audit trail: one fixed
   single-table workload, one trigger, one update — the [Runtime.why]
   lineage rendering is pinned verbatim under every strategy, compiled and
   interpreted.  The output is deterministic by design: audit ids and
   statement ids follow execution order and no timestamps are printed. *)

open Relkit

let product_schema =
  Schema.make ~name:"product"
    ~columns:
      [ ("pid", Schema.TString); ("pname", Schema.TString); ("price", Schema.TFloat) ]
    ~primary_key:[ "pid" ] ()

let view_text =
  {|<catalog>
    {for $p in view("default")/product/row
     return <product name="{$p/pname}"><price>{$p/price}</price></product>}
  </catalog>|}

let mk_db () =
  let db = Database.create () in
  Database.create_table db product_schema;
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P1"; Value.String "crt"; Value.Float 10.0 |];
      [| Value.String "P2"; Value.String "lcd"; Value.Float 20.0 |];
    ];
  db

(* Statement ids in the goldens: #1 is the seed insert, #2 the trigger
   grouping's constants-table insert (absent for MATERIALIZED), the last
   one the audited update. *)
let setup ?tuning ?condition ?(audit = true) strategy =
  let db = mk_db () in
  let mgr = Trigview.Runtime.create ~strategy ?tuning db in
  Trigview.Runtime.define_view mgr ~name:"catalog" view_text;
  let fired = ref [] in
  Trigview.Runtime.register_action mgr ~name:"rec" (fun fi ->
      fired := fi.Trigview.Runtime.fi_audit_id :: !fired);
  if audit then Trigview.Runtime.set_audit mgr true;
  Trigview.Runtime.create_trigger mgr
    (Printf.sprintf
       "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product %sDO rec(NEW_NODE)"
       (match condition with None -> "" | Some c -> "WHERE " ^ c ^ " "));
  ignore
    (Database.update_pk db ~table:"product" ~pk:[ Value.String "P1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 11.0 |]));
  (mgr, fired)

let why_expected ~strategy_name ~plan_mode =
  Printf.sprintf
    "firing #1 — UPDATE on view \"catalog\" (strategy %s, group 0)\n\
    \  statement   : #3 UPDATE on product (Δ=1 inserted row, ∇=1 deleted row)\n\
    \  sql trigger : xmltrig$g0$product$UPDATE\n\
    \  delta query : %s plan over product\n\
    \  node pairs  : 1 computed, 0 spurious (OLD = NEW, suppressed), 1 kept\n\
    \  condition   : none\n\
    \  actions     :\n\
    \    - trigger \"t\" action \"rec\": fired (OLD_NODE absent, NEW_NODE present)\n"
    strategy_name plan_mode

let check_why label expected (mgr, fired) =
  Alcotest.(check string) label expected (Trigview.Runtime.why mgr 1);
  Alcotest.(check (list int)) (label ^ ": fi_audit_id links back") [ 1 ] !fired

let test_ungrouped () =
  check_why "ungrouped why"
    (why_expected ~strategy_name:"UNGROUPED" ~plan_mode:"compiled")
    (setup Trigview.Runtime.Ungrouped)

let test_grouped () =
  check_why "grouped why"
    (why_expected ~strategy_name:"GROUPED" ~plan_mode:"compiled")
    (setup Trigview.Runtime.Grouped)

let test_grouped_agg () =
  check_why "grouped-agg why"
    (why_expected ~strategy_name:"GROUPED-AGG" ~plan_mode:"compiled")
    (setup Trigview.Runtime.Grouped_agg)

let test_interpreted () =
  check_why "interpreted why"
    (why_expected ~strategy_name:"GROUPED" ~plan_mode:"interpreted")
    (setup
       ~tuning:
         { Trigview.Runtime.default_tuning with Trigview.Runtime.compile_plans = false }
       Trigview.Runtime.Grouped)

(* The MATERIALIZED diff examines both products: P2's node is unchanged and
   is suppressed as spurious — exactly the noise the translated strategies
   never compute. *)
let test_materialized () =
  check_why "materialized why"
    "firing #1 — UPDATE on view \"catalog\" (strategy MATERIALIZED)\n\
    \  statement   : #2 UPDATE on product (Δ=1 inserted row, ∇=1 deleted row)\n\
    \  sql trigger : xmltrig$mat$t$product$UPDATE\n\
    \  delta query : materialized plan over product\n\
    \  node pairs  : 2 computed, 1 spurious (OLD = NEW, suppressed), 1 kept\n\
    \  condition   : none\n\
    \  actions     :\n\
    \    - trigger \"t\" action \"rec\": fired (OLD_NODE present, NEW_NODE present)\n"
    (setup Trigview.Runtime.Materialized)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let test_pushed_condition () =
  let mgr, _ = setup ~condition:"NEW_NODE/@name = 'crt'" Trigview.Runtime.Grouped in
  let out = Trigview.Runtime.why mgr 1 in
  Alcotest.(check bool) "pushed condition line" true
    (contains out
       "condition   : pushed into the delta query (rejected pairs never surface)")

let test_fallback_condition_rejected () =
  let mgr, fired = setup ~condition:"NEW_NODE/nosuch/x < 80" Trigview.Runtime.Grouped in
  Alcotest.(check (list int)) "rejected: action never ran" [] !fired;
  Alcotest.(check string) "fallback-rejected why"
    "firing #1 — UPDATE on view \"catalog\" (strategy GROUPED, group 0)\n\
    \  statement   : #3 UPDATE on product (Δ=1 inserted row, ∇=1 deleted row)\n\
    \  sql trigger : xmltrig$g0$product$UPDATE\n\
    \  delta query : compiled plan over product\n\
    \  node pairs  : 1 computed, 0 spurious (OLD = NEW, suppressed), 1 kept\n\
    \  condition   : evaluated per dispatch below (1 rejected)\n\
    \  actions     :\n\
    \    - trigger \"t\" action \"rec\": condition-rejected [WHERE \
     ($NEW_NODE/nosuch/x < 80) → false] (OLD_NODE absent, NEW_NODE present)\n"
    (Trigview.Runtime.why mgr 1)

let test_summary_line () =
  let mgr, _ = setup Trigview.Runtime.Grouped in
  Alcotest.(check string) "audit summary"
    "#1    stmt#3    UPDATE product      \
     xmltrig$g0$product$UPDATE                    pairs=1 kept=1 spurious=0 \
     condrej=0 dispatched=1\n"
    (Trigview.Runtime.audit mgr)

let test_audit_off () =
  let mgr, fired = setup ~audit:false Trigview.Runtime.Grouped in
  Alcotest.(check (list int)) "fi_audit_id is 0 when off" [ 0 ] !fired;
  Alcotest.(check int) "no records" 0
    (List.length (Trigview.Runtime.audit_records mgr));
  Alcotest.(check string) "why explains the miss"
    "no such firing #1 (ids run 1..0)\n" (Trigview.Runtime.why mgr 1)

let test_unknown_and_evicted_ids () =
  let mgr, _ = setup Trigview.Runtime.Grouped in
  Alcotest.(check string) "out of range"
    "no such firing #7 (ids run 1..1)\n" (Trigview.Runtime.why mgr 7)

(* A maintained view copy annotates the records it consumed, closing the
   provenance loop downstream of the action dispatch. *)
let test_maintain_annotates () =
  let db = mk_db () in
  let mgr = Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped db in
  Trigview.Runtime.define_view mgr ~name:"catalog" view_text;
  Trigview.Runtime.set_audit mgr true;
  let copy = Trigview.Maintain.attach mgr ~path:"view('catalog')/product" in
  ignore
    (Database.update_pk db ~table:"product" ~pk:[ Value.String "P1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 11.0 |]));
  Alcotest.(check int) "delta applied" 1 (Trigview.Maintain.deltas_applied copy);
  let out =
    String.concat "\n"
      (List.map Obs.Audit.render_record (Trigview.Runtime.audit_records mgr))
  in
  Alcotest.(check bool) "note recorded" true
    (contains out "notes       :\n    - maintained copy applied delta #1")

let () =
  Alcotest.run "audit"
    [ ( "why-golden",
        [ Alcotest.test_case "UNGROUPED" `Quick test_ungrouped;
          Alcotest.test_case "GROUPED" `Quick test_grouped;
          Alcotest.test_case "GROUPED-AGG" `Quick test_grouped_agg;
          Alcotest.test_case "interpreted" `Quick test_interpreted;
          Alcotest.test_case "MATERIALIZED" `Quick test_materialized;
        ] );
      ( "conditions",
        [ Alcotest.test_case "pushed" `Quick test_pushed_condition;
          Alcotest.test_case "fallback rejected" `Quick test_fallback_condition_rejected;
        ] );
      ( "log",
        [ Alcotest.test_case "summary line" `Quick test_summary_line;
          Alcotest.test_case "audit off" `Quick test_audit_off;
          Alcotest.test_case "unknown id" `Quick test_unknown_and_evicted_ids;
          Alcotest.test_case "maintain annotates" `Quick test_maintain_annotates;
        ] );
    ]
