(* Tests for the XQuery front-end: parsing, compilation to XQGM, view
   composition, and condition compilation — all against the paper's running
   example (Figures 3-5). *)

open Relkit
open Xqgm

let schema_of = Fixtures.schema_of

(* Figure 3, verbatim modulo quoting. *)
let catalog_text =
  {|<catalog>
  {for $prodname in distinct(view("default")/product/row/pname)
   let $products := view("default")/product/row[./pname = $prodname]
   let $vendors := view("default")/vendor/row[./pid = $products/pid]
   where count($vendors) >= 2
   return <product name="{$prodname}">
     {for $vendor in $vendors
      return <vendor>{$vendor/*}</vendor>}
   </product>}
</catalog>|}

let compile_catalog db =
  Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"catalog" catalog_text

(* --- parser --- *)

let test_parse_figure_3 () =
  match Xquery.Parser.parse_expr catalog_text with
  | Xquery.Ast.Elem { tag = "catalog"; content; _ } ->
    Alcotest.(check int) "one enclosed flwor" 1
      (List.length
         (List.filter
            (function Xquery.Ast.C_enclosed (Xquery.Ast.Flwor _) -> true | _ -> false)
            content))
  | _ -> Alcotest.fail "expected <catalog> constructor"

let test_parse_operators_and_precedence () =
  let e = Xquery.Parser.parse_expr "1 + 2 * 3 >= 7 - 1 and not(2 = 3)" in
  match e with
  | Xquery.Ast.And (Xquery.Ast.Cmp (Xquery.Ast.Ge, _, _), Xquery.Ast.Not _) -> ()
  | _ -> Alcotest.failf "unexpected parse: %s" (Xquery.Ast.expr_to_string e)

let test_parse_paths () =
  let p = Xquery.Parser.parse_path "view(\"catalog\")/product" in
  Alcotest.(check int) "one step" 1 (List.length p.Xquery.Ast.steps);
  let p2 = Xquery.Parser.parse_path "view('catalog')//vendor" in
  (match p2.Xquery.Ast.steps with
  | [ { Xquery.Ast.axis = Xquery.Ast.Descendant; name = "vendor"; _ } ] -> ()
  | _ -> Alcotest.fail "descendant step expected");
  match Xquery.Parser.parse_expr "$p/pname" with
  | Xquery.Ast.Path { root = Xquery.Ast.R_var "p"; _ } -> ()
  | _ -> Alcotest.fail "var path"

let test_parse_predicate_in_path () =
  let e = Xquery.Parser.parse_expr "view(\"default\")/product/row[./pname = 'CRT 15']" in
  match e with
  | Xquery.Ast.Path { steps = [ _; { Xquery.Ast.predicate = Some (Xquery.Ast.Cmp _); _ } ]; _ }
    ->
    ()
  | _ -> Alcotest.failf "unexpected parse: %s" (Xquery.Ast.expr_to_string e)

let test_parse_quantified () =
  match Xquery.Parser.parse_expr "some $v in $vendors satisfies $v/price < 100" with
  | Xquery.Ast.Quantified { universal = false; var = "v"; _ } -> ()
  | _ -> Alcotest.fail "quantified"

let test_parse_comments_and_errors () =
  (match Xquery.Parser.parse_expr "1 (: a comment :) + 2" with
  | Xquery.Ast.Arith (Xquery.Ast.Add, _, _) -> ()
  | _ -> Alcotest.fail "comment handling");
  let bad s =
    match Xquery.Parser.parse_expr s with
    | exception Xquery.Parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unclosed tag" true (bad "<a><b></a>");
  Alcotest.(check bool) "trailing" true (bad "1 + 2 extra");
  Alcotest.(check bool) "missing return" true (bad "for $x in view('v')/t/row where 1 = 1")

(* --- compilation --- *)

let test_compile_catalog_matches_figure_4 () =
  let db = Fixtures.mk_db () in
  let view = compile_catalog db in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  let products = Xmlkit.Xml.children_named doc "product" in
  Alcotest.(check (list (option string)))
    "product names"
    [ Some "CRT 15"; Some "LCD 19" ]
    (List.map (fun p -> Xmlkit.Xml.attr p "name") products);
  Alcotest.(check (list int)) "vendor counts" [ 5; 2 ]
    (List.map (fun p -> List.length (Xmlkit.Xml.children_named p "vendor")) products);
  (* vendor children carry all row fields *)
  let first = List.hd (Xmlkit.Xml.children_named (List.hd products) "vendor") in
  Alcotest.(check (list string)) "row expansion"
    [ "vid"; "pid"; "price" ]
    (List.filter_map Xmlkit.Xml.tag (Xmlkit.Xml.children first))

let test_compile_catalog_equals_handbuilt_fixture () =
  (* The compiled view and the hand-built Figure 5 graph must produce
     equal documents (modulo child field order, which follows the schema
     here and the paper's listing in the fixture). *)
  let db = Fixtures.mk_db () in
  let view = compile_catalog db in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  let fixture_rel = Eval.eval (Ra_eval.ctx_of_db db) (Fixtures.catalog_view ()) in
  let fixture_doc =
    match fixture_rel.Eval.rows with
    | [ [| Xval.Node n |] ] -> n
    | _ -> Alcotest.fail "fixture"
  in
  let product_names n =
    List.filter_map (fun p -> Xmlkit.Xml.attr p "name") (Xmlkit.Xml.children_named n "product")
  in
  Alcotest.(check (list string)) "same products" (product_names fixture_doc)
    (product_names doc);
  let vendor_vids n =
    List.map
      (fun v -> Xmlkit.Xml.text_content (List.hd (Xmlkit.Xml.children_named v "vid")))
      (Xmlkit.Xml.descendants_named n "vendor")
  in
  Alcotest.(check (list string)) "same vendors in order" (vendor_vids fixture_doc)
    (vendor_vids doc)

let test_compile_trigger_specifiable () =
  let db = Fixtures.mk_db () in
  let view = compile_catalog db in
  Alcotest.(check bool) "Theorem 1 holds" true
    (Result.is_ok
       (Keys.trigger_specifiable ~schema_of:(schema_of db) view.Xquery.Compile.tree.Xquery.Compile.op))

let test_compile_minprice_view () =
  let db = Fixtures.mk_db () in
  let text =
    {|<catalog>
  {for $prodname in distinct(view("default")/product/row/pname)
   let $products := view("default")/product/row[./pname = $prodname]
   let $vendors := view("default")/vendor/row[./pid = $products/pid]
   where count($vendors) >= 2
   return <product name="{$prodname}"><min>{min($vendors/price)}</min></product>}
</catalog>|}
  in
  let view = Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"minprice" text in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  let mins =
    List.map
      (fun p -> Xmlkit.Xml.text_content (List.hd (Xmlkit.Xml.children_named p "min")))
      (Xmlkit.Xml.children_named doc "product")
  in
  Alcotest.(check (list string)) "min prices" [ "100.0"; "180.0" ] mins

let test_compile_simple_flat_view () =
  let db = Fixtures.mk_db () in
  let text =
    {|<products>
  {for $p in view("default")/product/row
   where $p/mfr = 'Samsung'
   return <product id="{$p/pid}"><name>{$p/pname}</name></product>}
</products>|}
  in
  let view = Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"flat" text in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  Alcotest.(check int) "2 samsung products" 2
    (List.length (Xmlkit.Xml.children_named doc "product"))

let test_compile_quantified_view () =
  let db = Fixtures.mk_db () in
  let text =
    {|<cheap>
  {for $p in view("default")/product/row
   let $v := view("default")/vendor/row[./pid = $p/pid]
   where some $w in $v satisfies $w/price < 110
   return <product>{$p/pname}</product>}
</cheap>|}
  in
  let view = Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"cheap" text in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  Alcotest.(check (list string)) "only P1 has a vendor under 110" [ "CRT 15" ]
    (List.map Xmlkit.Xml.text_content (Xmlkit.Xml.children_named doc "product"))

let test_compile_every_quantifier () =
  let db = Fixtures.mk_db () in
  let text =
    {|<premium>
  {for $p in view("default")/product/row
   let $v := view("default")/vendor/row[./pid = $p/pid]
   where every $w in $v satisfies $w/price >= 120
   return <product>{$p/pname}</product>}
</premium>|}
  in
  let view = Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"premium" text in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  (* P2 (180, 200) and P3 (120, 140) qualify; P1 has a 100 vendor. *)
  Alcotest.(check (list string)) "every >= 120" [ "CRT 15"; "LCD 19" ]
    (List.sort compare
       (List.map Xmlkit.Xml.text_content (Xmlkit.Xml.children_named doc "product")))

let test_compile_unsupported_reports () =
  let db = Fixtures.mk_db () in
  let bad = "<v>{for $x in view(\"default\")/product/row return $x/pid}</v>" in
  match Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"bad" bad with
  | exception Xquery.Compile.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

(* --- composition --- *)

let test_compose_product_path () =
  let db = Fixtures.mk_db () in
  let view = compile_catalog db in
  let path = Xquery.Parser.parse_path "view(\"catalog\")/product" in
  let m = Xquery.Compose.compose_path view path in
  Alcotest.(check bool) "has a key" true (m.Xquery.Compose.m_key <> []);
  (* evaluating the composed graph yields the two product nodes *)
  let rel = Eval.eval (Ra_eval.ctx_of_db db) m.Xquery.Compose.m_op in
  Alcotest.(check int) "two products" 2 (List.length rel.Eval.rows)

let test_compose_descendant_vendor () =
  let db = Fixtures.mk_db () in
  let view = compile_catalog db in
  let m = Xquery.Compose.compose_path view (Xquery.Parser.parse_path "view('catalog')//vendor") in
  let rel = Eval.eval (Ra_eval.ctx_of_db db) m.Xquery.Compose.m_op in
  Alcotest.(check int) "seven vendors" 7 (List.length rel.Eval.rows)

let test_compose_with_predicate () =
  let db = Fixtures.mk_db () in
  let view = compile_catalog db in
  let m =
    Xquery.Compose.compose_path view
      (Xquery.Parser.parse_path "view(\"catalog\")/product[@name = 'CRT 15']")
  in
  let rel = Eval.eval (Ra_eval.ctx_of_db db) m.Xquery.Compose.m_op in
  Alcotest.(check int) "one product" 1 (List.length rel.Eval.rows)

let test_compose_unknown_element () =
  let db = Fixtures.mk_db () in
  let view = compile_catalog db in
  match
    Xquery.Compose.compose_path view (Xquery.Parser.parse_path "view(\"catalog\")/nonsense")
  with
  | exception Xquery.Compose.Compose_error _ -> ()
  | _ -> Alcotest.fail "expected Compose_error"

(* --- conditions --- *)

let test_condition_compiles_to_columns () =
  let db = Fixtures.mk_db () in
  let view = compile_catalog db in
  let m = Xquery.Compose.compose_path view (Xquery.Parser.parse_path "view(\"catalog\")/product") in
  let cond = Xquery.Parser.parse_expr "$OLD_NODE/@name = 'CRT 15'" in
  (match Xquery.Compose.compile_condition m cond with
  | Some (Expr.Binop (Relkit.Ra.Eq, Expr.Col c, Expr.Const _)) ->
    Alcotest.(check bool) "old-side column" true
      (String.length c > 4 && String.sub c 0 4 = "old$")
  | _ -> Alcotest.fail "expected a compiled column comparison");
  let count_cond = Xquery.Parser.parse_expr "count($NEW_NODE/vendor) >= 3" in
  match Xquery.Compose.compile_condition m count_cond with
  | Some (Expr.Binop (Relkit.Ra.Ge, Expr.Col c, _)) ->
    Alcotest.(check bool) "new-side count column" true
      (String.length c > 4 && String.sub c 0 4 = "new$")
  | _ -> Alcotest.fail "expected a count column"

let test_condition_fallback () =
  let node =
    Xmlkit.Xml.elem ~attrs:[ ("name", "CRT 15") ] "product"
      [ Xmlkit.Xml.elem "vendor" [ Xmlkit.Xml.elem "price" [ Xmlkit.Xml.text "99" ] ];
        Xmlkit.Xml.elem "vendor" [ Xmlkit.Xml.elem "price" [ Xmlkit.Xml.text "120" ] ];
      ]
  in
  let check s expected =
    let cond = Xquery.Parser.parse_expr s in
    Alcotest.(check bool) s expected
      (Xquery.Compose.condition_fallback cond ~old_node:(Some node) ~new_node:(Some node))
  in
  check "$OLD_NODE/@name = 'CRT 15'" true;
  check "$OLD_NODE/@name = 'LCD 19'" false;
  check "count($NEW_NODE/vendor) >= 2" true;
  check "$NEW_NODE/vendor/price < 100" true;
  check "min($NEW_NODE/vendor/price) = 99" true;
  check "not(count($OLD_NODE/vendor) = 2)" false;
  (* absent side: comparisons over it are vacuously false *)
  let cond = Xquery.Parser.parse_expr "$OLD_NODE/@name = 'CRT 15'" in
  Alcotest.(check bool) "absent old node" false
    (Xquery.Compose.condition_fallback cond ~old_node:None ~new_node:(Some node))

(* --- the compiled view through the full trigger machinery --- *)

let test_compiled_view_affected_nodes () =
  let db = Fixtures.mk_db () in
  let view = compile_catalog db in
  let m = Xquery.Compose.compose_path view (Xquery.Parser.parse_path "view(\"catalog\")/product") in
  let monitored =
    { Trigview.Angraph.graph = m.Xquery.Compose.m_op;
      node_col = m.Xquery.Compose.m_node_col;
      key = m.Xquery.Compose.m_key;
    }
  in
  let an =
    Option.get
      (Trigview.Angraph.create ~schema_of:(schema_of db) ~event:Database.Update
         ~table:"vendor" ~check:Trigview.Angraph.Compare_nodes monitored)
  in
  let captured = ref None in
  Database.create_trigger db
    { Database.trig_name = "c";
      trig_table = "vendor";
      trig_event = Database.Insert;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun tc -> captured := Some (Ra_eval.ctx_of_trigger tc));
    };
  (* the 4.1 example again, now through the compiled view *)
  Fixtures.insert_vendor db ~vid:"Amazon" ~pid:"P2" ~price:500.0;
  let tctx = Option.get !captured in
  let rel = Eval.eval tctx an.Trigview.Angraph.graph in
  Alcotest.(check int) "LCD 19 updated" 1 (List.length rel.Eval.rows)

let () =
  Alcotest.run "xquery"
    [ ( "parser",
        [ Alcotest.test_case "figure 3" `Quick test_parse_figure_3;
          Alcotest.test_case "precedence" `Quick test_parse_operators_and_precedence;
          Alcotest.test_case "paths" `Quick test_parse_paths;
          Alcotest.test_case "path predicate" `Quick test_parse_predicate_in_path;
          Alcotest.test_case "quantified" `Quick test_parse_quantified;
          Alcotest.test_case "comments + errors" `Quick test_parse_comments_and_errors;
        ] );
      ( "compile",
        [ Alcotest.test_case "catalog = figure 4" `Quick test_compile_catalog_matches_figure_4;
          Alcotest.test_case "catalog = hand-built graph" `Quick
            test_compile_catalog_equals_handbuilt_fixture;
          Alcotest.test_case "trigger-specifiable" `Quick test_compile_trigger_specifiable;
          Alcotest.test_case "min-price view" `Quick test_compile_minprice_view;
          Alcotest.test_case "flat view" `Quick test_compile_simple_flat_view;
          Alcotest.test_case "some quantifier" `Quick test_compile_quantified_view;
          Alcotest.test_case "every quantifier" `Quick test_compile_every_quantifier;
          Alcotest.test_case "unsupported reports" `Quick test_compile_unsupported_reports;
        ] );
      ( "compose",
        [ Alcotest.test_case "product path" `Quick test_compose_product_path;
          Alcotest.test_case "descendant" `Quick test_compose_descendant_vendor;
          Alcotest.test_case "path predicate" `Quick test_compose_with_predicate;
          Alcotest.test_case "unknown element" `Quick test_compose_unknown_element;
        ] );
      ( "conditions",
        [ Alcotest.test_case "compiled to columns" `Quick test_condition_compiles_to_columns;
          Alcotest.test_case "fallback evaluation" `Quick test_condition_fallback;
        ] );
      ( "integration",
        [ Alcotest.test_case "compiled view affected nodes" `Quick
            test_compiled_view_affected_nodes;
        ] );
    ]
