(* Sliding-window statistics: the conservation invariant
   (total = evicted + Σ bucket deltas, for every series, at every instant)
   under (a) random synthetic add/advance sequences against a synthetic
   clock, and (b) real DML traffic through a live runtime, across all four
   strategies — so the wrap-the-lifetime-counters claim is checked where
   the window is actually maintained, not just in isolation. *)

open Relkit
module Workload = Workloadlib.Workload

let check_conservation label w =
  List.iter
    (fun (name, total, recomposed) ->
      if abs_float (total -. recomposed) > 1e-6 then
        Alcotest.failf "%s: series %S leaks: total=%g evicted+buckets=%g"
          label name total recomposed)
    (Obs.Window.conservation w)

(* --- synthetic clock property --- *)

type op =
  | Add of int * int  (* series index, amount *)
  | Advance of int  (* milliseconds *)

let op_gen =
  QCheck.Gen.(
    frequency
      [ (4, map2 (fun s v -> Add (s, v)) (int_bound 4) (int_range 1 100));
        (* spans from sub-bucket to multiple full rotations *)
        (2, map (fun ms -> Advance ms) (int_range 1 700));
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add (s, v) -> Printf.sprintf "add s%d %d" s v
             | Advance ms -> Printf.sprintf "+%dms" ms)
           ops))
    QCheck.Gen.(list_size (int_range 1 200) op_gen)

let prop_synthetic_conservation ops =
  (* tiny buckets so a random run crosses many window edges *)
  let w = Obs.Window.create ~buckets:4 ~width_ms:100 ~now:0L () in
  let now = ref 0L in
  let expected = Array.make 5 0.0 in
  List.iter
    (fun op ->
      (match op with
      | Add (s, v) ->
        expected.(s) <- expected.(s) +. float_of_int v;
        Obs.Window.add w ~now:!now (Printf.sprintf "s%d" s) (float_of_int v)
      | Advance ms ->
        now := Int64.add !now (Int64.mul (Int64.of_int ms) 1_000_000L));
      check_conservation "synthetic" w)
    ops;
  (* lifetime totals are never aged out *)
  Array.iteri
    (fun i exp ->
      let got = Obs.Window.total w (Printf.sprintf "s%d" i) in
      if abs_float (got -. exp) > 1e-6 then
        Alcotest.failf "series s%d lifetime total %g <> expected %g" i got exp)
    expected;
  (* and the window never reports more than the lifetime *)
  List.iter
    (fun name ->
      let ws = Obs.Window.window_sum w ~now:!now name in
      let tot = Obs.Window.total w name in
      if ws > tot +. 1e-6 then
        Alcotest.failf "series %S window %g exceeds total %g" name ws tot)
    (Obs.Window.names w);
  true

(* --- directed edges: full eviction, rate span, ewma sanity --- *)

let test_full_eviction () =
  let w = Obs.Window.create ~buckets:3 ~width_ms:10 ~now:0L () in
  Obs.Window.add w ~now:0L "x" 5.0;
  (* jump far past a full ring revolution: everything ages out *)
  let later = Int64.mul 1_000_000L 1_000L (* 1s *) in
  Alcotest.(check (float 1e-9)) "window drained" 0.0
    (Obs.Window.window_sum w ~now:later "x");
  Alcotest.(check (float 1e-9)) "evicted = total" 5.0 (Obs.Window.evicted w "x");
  Alcotest.(check (float 1e-9)) "total intact" 5.0 (Obs.Window.total w "x");
  check_conservation "full eviction" w

let test_rate_covers_elapsed_span () =
  let w = Obs.Window.create ~buckets:10 ~width_ms:1000 ~now:0L () in
  (* 10 events in the first half-second: the covered span is 0.5s, not the
     10s ring capacity, so the rate must read ~20/s, not 1/s *)
  for i = 0 to 9 do
    Obs.Window.add w ~now:(Int64.mul (Int64.of_int (i * 50)) 1_000_000L) "x" 1.0
  done;
  let r = Obs.Window.rate w ~now:(Int64.mul 500L 1_000_000L) "x" in
  Alcotest.(check bool) (Printf.sprintf "rate %.1f near 20/s" r) true
    (r > 15.0 && r < 25.0)

let test_remove_drops_series () =
  let w = Obs.Window.create ~buckets:4 ~width_ms:100 ~now:0L () in
  Obs.Window.add w ~now:0L "keep" 1.0;
  Obs.Window.add w ~now:0L "drop" 1.0;
  Obs.Window.remove w "drop";
  Alcotest.(check (list string)) "only keep left" [ "keep" ] (Obs.Window.names w)

(* --- observability knobs (satellite: TRIGVIEW_* env overrides) --- *)

let test_knobs_env_override () =
  Unix.putenv "TRIGVIEW_TRACE_RING" "123";
  Unix.putenv "TRIGVIEW_AUDIT_RING" "45";
  Unix.putenv "TRIGVIEW_WINDOW_BUCKETS" "7";
  Unix.putenv "TRIGVIEW_WINDOW_WIDTH_MS" "250";
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun k -> Unix.putenv k "")
        [ "TRIGVIEW_TRACE_RING"; "TRIGVIEW_AUDIT_RING";
          "TRIGVIEW_WINDOW_BUCKETS"; "TRIGVIEW_WINDOW_WIDTH_MS" ])
    (fun () ->
      let db = Database.create () in
      Alcotest.(check int) "trace ring" 123 (Obs.Trace.limit (Database.tracer db));
      Alcotest.(check int) "audit ring" 45 (Obs.Audit.limit (Database.audit db));
      Alcotest.(check int) "window buckets" 7 (Obs.Window.buckets (Database.window db));
      Alcotest.(check int) "window width" 250
        (Obs.Window.width_ms (Database.window db)))

let test_tuning_window_geometry () =
  let db = Database.create () in
  let tuning =
    { Trigview.Runtime.default_tuning with window_buckets = 5; window_width_ms = 333 }
  in
  let _mgr = Trigview.Runtime.create ~tuning db in
  Alcotest.(check int) "buckets applied" 5 (Obs.Window.buckets (Database.window db));
  Alcotest.(check int) "width applied" 333
    (Obs.Window.width_ms (Database.window db))

(* --- conservation under real DML, all four strategies --- *)

let tiny_params =
  { Workload.quick_defaults with leaf_tuples = 128; num_triggers = 8; num_satisfied = 3 }

let dml_gen =
  (* (top element, step) pairs driving update_leaf *)
  QCheck.Gen.(list_size (int_range 5 30) (pair (int_bound 1) (int_bound 50)))

let dml_arb =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (t, s) -> Printf.sprintf "(%d,%d)" t s) l))
    dml_gen

let prop_dml_conservation strat updates =
  let built = Workload.build tiny_params in
  let mgr = Trigview.Runtime.create ~strategy:strat built.Workload.db in
  Trigview.Runtime.define_view mgr ~name:"doc" built.Workload.view_text;
  Trigview.Runtime.register_action mgr ~name:"record" (fun _ -> ());
  if strat = Trigview.Runtime.Materialized then
    (* MATERIALIZED's fallback conditions cannot evaluate count();
       equality-only conditions exercise the same telemetry *)
    for i = 0 to tiny_params.Workload.num_triggers - 1 do
      let const =
        if i < tiny_params.Workload.num_satisfied then
          built.Workload.top_names.(0)
        else Printf.sprintf "nomatch%d" i
      in
      Trigview.Runtime.create_trigger mgr
        (Printf.sprintf
           "CREATE TRIGGER bench%d AFTER UPDATE ON view('doc')/e1 WHERE \
            NEW_NODE/@name = '%s' DO record(NEW_NODE)"
           i const)
    done
  else
    Workload.install_triggers mgr tiny_params
      ~target_name:built.Workload.top_names.(0);
  let w = Database.window built.Workload.db in
  check_conservation "post-arm" w;
  List.iter
    (fun (top, step) ->
      Workload.update_leaf built ~top_index:top ~step;
      check_conservation "post-DML" w)
    updates;
  (* the runtime's group series must actually be flowing *)
  let firing_series =
    List.filter
      (fun n -> String.length n > 8 && String.sub n 0 8 = "firings:")
      (Obs.Window.names w)
  in
  if firing_series = [] then Alcotest.fail "no firings series maintained";
  true

let qtest name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:30 ~name arb prop)

let dml_qtest strat =
  let name =
    Printf.sprintf "DML conservation (%s)" (Trigview.Runtime.strategy_to_string strat)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:5 ~name dml_arb (prop_dml_conservation strat))

let () =
  Alcotest.run "window"
    [ ( "conservation",
        [ qtest "synthetic add/advance" ops_arb prop_synthetic_conservation;
          Alcotest.test_case "full eviction" `Quick test_full_eviction;
          Alcotest.test_case "rate spans elapsed time" `Quick
            test_rate_covers_elapsed_span;
          Alcotest.test_case "remove" `Quick test_remove_drops_series;
        ] );
      ( "knobs",
        [ Alcotest.test_case "env overrides" `Quick test_knobs_env_override;
          Alcotest.test_case "tuning geometry" `Quick test_tuning_window_geometry;
        ] );
      ( "live",
        List.map dml_qtest
          [ Trigview.Runtime.Ungrouped; Trigview.Runtime.Grouped;
            Trigview.Runtime.Grouped_agg; Trigview.Runtime.Materialized ] );
    ]
