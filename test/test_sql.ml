(* Tests for the SQL front-end over the relational substrate. *)

open Relkit

let setup () =
  let db = Database.create () in
  let script =
    {|
    CREATE TABLE product (pid VARCHAR PRIMARY KEY, pname VARCHAR, mfr VARCHAR);
    CREATE TABLE vendor (vid VARCHAR, pid VARCHAR, price FLOAT,
                         PRIMARY KEY (vid, pid),
                         FOREIGN KEY (pid) REFERENCES product (pid));
    CREATE INDEX ON vendor (pid);
    INSERT INTO product VALUES ('P1', 'CRT 15', 'Samsung'),
                               ('P2', 'LCD 19', 'Samsung'),
                               ('P3', 'CRT 15', 'Viewsonic');
    INSERT INTO vendor VALUES ('Amazon', 'P1', 100.0), ('Bestbuy', 'P1', 120.0),
                              ('Circuitcity', 'P1', 150.0), ('Buy.com', 'P2', 200.0),
                              ('Bestbuy', 'P2', 180.0), ('Bestbuy', 'P3', 120.0),
                              ('Circuitcity', 'P3', 140.0);
    |}
  in
  ignore (Sql.exec_script db script);
  db

let rows db q =
  match Sql.exec db q with
  | Sql.Rows rel -> rel
  | _ -> Alcotest.fail "expected rows"

let affected db q =
  match Sql.exec db q with
  | Sql.Affected n -> n
  | _ -> Alcotest.fail "expected an affected count"

let cell rel i j = Value.to_string (List.nth rel.Ra_eval.rows i).(j)

let test_ddl_and_insert () =
  let db = setup () in
  Alcotest.(check int) "products" 3
    (Table.row_count (Database.get_table db "product"));
  Alcotest.(check int) "vendors" 7 (Table.row_count (Database.get_table db "vendor"));
  Alcotest.(check bool) "index created" true
    (Table.has_index (Database.get_table db "vendor") "pid")

let test_select_where_order () =
  let db = setup () in
  let rel =
    rows db "SELECT vid, price FROM vendor WHERE pid = 'P1' ORDER BY price DESC"
  in
  Alcotest.(check int) "3 rows" 3 (List.length rel.Ra_eval.rows);
  Alcotest.(check string) "most expensive first" "Circuitcity" (cell rel 0 0)

let test_select_star_and_aliases () =
  let db = setup () in
  let rel = rows db "SELECT * FROM product" in
  Alcotest.(check int) "arity" 3 (Array.length rel.Ra_eval.cols);
  let rel =
    rows db "SELECT pname AS name, mfr maker FROM product WHERE pid = 'P2'"
  in
  Alcotest.(check (array string)) "aliases" [| "name"; "maker" |] rel.Ra_eval.cols;
  Alcotest.(check string) "value" "LCD 19" (cell rel 0 0)

let test_join_two_tables () =
  let db = setup () in
  let rel =
    rows db
      "SELECT p.pname, v.vid FROM product p, vendor v WHERE p.pid = v.pid AND v.price > 150 ORDER BY vid"
  in
  Alcotest.(check int) "2 expensive offers" 2 (List.length rel.Ra_eval.rows);
  Alcotest.(check string) "bestbuy" "Bestbuy" (cell rel 0 1);
  (* equi conjuncts must have landed in the join, not a post-filter over a
     cross product: check via scan accounting that no quadratic blowup
     happened is overkill here, but at least the result is right *)
  Alcotest.(check string) "lcd" "LCD 19" (cell rel 0 0)

let test_group_by_having () =
  let db = setup () in
  let rel =
    rows db
      "SELECT pid, COUNT(*) AS n, MIN(price) AS cheapest FROM vendor GROUP BY pid HAVING COUNT(*) >= 2 ORDER BY pid"
  in
  Alcotest.(check int) "3 groups" 3 (List.length rel.Ra_eval.rows);
  Alcotest.(check string) "P1 count" "3" (cell rel 0 1);
  Alcotest.(check string) "P1 min" "100.0" (cell rel 0 2)

let test_scalar_aggregate () =
  let db = setup () in
  let rel = rows db "SELECT COUNT(*) AS n, AVG(price) AS avgp FROM vendor" in
  Alcotest.(check string) "count" "7" (cell rel 0 0);
  Alcotest.(check bool) "avg around 144" true
    (match (List.hd rel.Ra_eval.rows).(1) with
    | Value.Float f -> f > 144.0 && f < 145.0
    | _ -> false)

let test_update_delete () =
  let db = setup () in
  Alcotest.(check int) "one updated" 1
    (affected db "UPDATE vendor SET price = price - 25 WHERE vid = 'Amazon'");
  let rel = rows db "SELECT price FROM vendor WHERE vid = 'Amazon'" in
  Alcotest.(check string) "new price" "75.0" (cell rel 0 0);
  Alcotest.(check int) "two deleted" 2 (affected db "DELETE FROM vendor WHERE price >= 180");
  Alcotest.(check int) "5 left" 5 (Table.row_count (Database.get_table db "vendor"))

let test_dml_fires_triggers () =
  let db = setup () in
  let fired = ref 0 in
  Database.create_trigger db
    { Database.trig_name = "t";
      trig_table = "vendor";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun ctx -> fired := List.length ctx.Database.inserted);
    };
  ignore (affected db "UPDATE vendor SET price = price + 1 WHERE pid = 'P1'");
  Alcotest.(check int) "statement trigger saw 3 rows" 3 !fired

let test_insert_with_column_list () =
  let db = setup () in
  ignore (affected db "INSERT INTO product (pid, pname, mfr) VALUES ('P4', 'OLED', 'LG')");
  let rel = rows db "SELECT pname FROM product WHERE pid = 'P4'" in
  Alcotest.(check string) "inserted" "OLED" (cell rel 0 0)

let test_null_handling () =
  let db = setup () in
  ignore (Sql.exec db "CREATE TABLE t (a INT PRIMARY KEY, b INT)");
  ignore (Sql.exec db "INSERT INTO t VALUES (1, NULL), (2, 5)");
  let rel = rows db "SELECT a FROM t WHERE b IS NULL" in
  Alcotest.(check string) "null row" "1" (cell rel 0 0);
  let rel = rows db "SELECT a FROM t WHERE b IS NOT NULL" in
  Alcotest.(check string) "non-null row" "2" (cell rel 0 0);
  (* comparisons with NULL match nothing *)
  let rel = rows db "SELECT a FROM t WHERE b <> 5" in
  Alcotest.(check int) "null never compares" 0 (List.length rel.Ra_eval.rows)

let test_plan_select_exposed () =
  let db = setup () in
  let plan = Sql.plan_select db "SELECT pid FROM vendor WHERE price < 130" in
  let rel = Ra_eval.eval (Ra_eval.ctx_of_db db) plan in
  Alcotest.(check int) "3 cheap offers" 3 (List.length rel.Ra_eval.rows)

let test_errors () =
  let db = setup () in
  let bad q =
    match Sql.exec db q with exception Sql.Error _ -> true | _ -> false
  in
  Alcotest.(check bool) "unknown table" true (bad "SELECT * FROM nope");
  Alcotest.(check bool) "unknown column" true (bad "SELECT nope FROM product");
  Alcotest.(check bool) "ambiguous column" true
    (bad "SELECT pid FROM product p, vendor v WHERE p.pid = v.pid");
  Alcotest.(check bool) "aggregate in where" true
    (bad "SELECT pid FROM vendor WHERE COUNT(*) > 1");
  Alcotest.(check bool) "bare select item under group" true
    (bad "SELECT vid FROM vendor GROUP BY pid");
  Alcotest.(check bool) "syntax" true (bad "SELEC pid FROM vendor");
  Alcotest.(check bool) "fk violation" true
    (bad "INSERT INTO vendor VALUES ('X', 'P9', 1.0)");
  Alcotest.(check bool) "duplicate pk" true
    (bad "INSERT INTO product VALUES ('P1', 'dup', 'dup')")

let test_case_insensitive_keywords () =
  let db = setup () in
  let rel = rows db "select PID from VENDOR where PRICE < 130 order by pid" in
  Alcotest.(check int) "case-insensitive" 3 (List.length rel.Ra_eval.rows)

let test_script_with_comments () =
  let db = Database.create () in
  let results =
    Sql.exec_script db
      {|-- a comment
        CREATE TABLE x (a INT PRIMARY KEY);
        INSERT INTO x VALUES (1), (2); -- trailing comment
        SELECT COUNT(*) AS n FROM x|}
  in
  match results with
  | [ Sql.Done; Sql.Affected 2; Sql.Rows rel ] ->
    Alcotest.(check string) "count" "2" (cell rel 0 0)
  | _ -> Alcotest.fail "unexpected script results"

let () =
  Alcotest.run "sql"
    [ ( "sql",
        [ Alcotest.test_case "ddl + insert" `Quick test_ddl_and_insert;
          Alcotest.test_case "select/where/order" `Quick test_select_where_order;
          Alcotest.test_case "star + aliases" `Quick test_select_star_and_aliases;
          Alcotest.test_case "join" `Quick test_join_two_tables;
          Alcotest.test_case "group by + having" `Quick test_group_by_having;
          Alcotest.test_case "scalar aggregate" `Quick test_scalar_aggregate;
          Alcotest.test_case "update + delete" `Quick test_update_delete;
          Alcotest.test_case "DML fires triggers" `Quick test_dml_fires_triggers;
          Alcotest.test_case "insert with column list" `Quick test_insert_with_column_list;
          Alcotest.test_case "null handling" `Quick test_null_handling;
          Alcotest.test_case "plan_select" `Quick test_plan_select_exposed;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "case insensitivity" `Quick test_case_insensitive_keywords;
          Alcotest.test_case "script + comments" `Quick test_script_with_comments;
        ] );
    ]
