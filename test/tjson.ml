(* A tiny JSON parser shared by the test executables (validation + value
   extraction) — minimal recursive descent, enough to reject anything a
   real parser would reject.  Escapes decode to their real characters
   (\uXXXX to UTF-8, surrogate pairs included), so extracted strings
   compare against the original payloads. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    (* one \uXXXX unit (the backslash and 'u' already consumed) *)
    let hex4 () =
      let v = ref 0 in
      for _ = 1 to 4 do
        (match peek () with
        | Some c when c >= '0' && c <= '9' ->
          v := (!v * 16) + (Char.code c - Char.code '0')
        | Some c when c >= 'a' && c <= 'f' ->
          v := (!v * 16) + (Char.code c - Char.code 'a' + 10)
        | Some c when c >= 'A' && c <= 'F' ->
          v := (!v * 16) + (Char.code c - Char.code 'A' + 10)
        | _ -> fail "bad \\u escape");
        advance ()
      done;
      !v
    in
    let add_utf8 cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'u' ->
          advance ();
          let u = hex4 () in
          if u >= 0xD800 && u <= 0xDBFF then begin
            (* high surrogate: the low half must follow as \uXXXX *)
            (match peek () with
            | Some '\\' -> advance ()
            | _ -> fail "lone high surrogate");
            (match peek () with
            | Some 'u' -> advance ()
            | _ -> fail "lone high surrogate");
            let lo = hex4 () in
            if lo < 0xDC00 || lo > 0xDFFF then fail "bad low surrogate";
            add_utf8 (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if u >= 0xDC00 && u <= 0xDFFF then fail "lone low surrogate"
          else add_utf8 u
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); J_obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        J_obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); J_arr [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        J_arr (items [])
      end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let check_valid_json label s =
  match parse_json s with
  | _ -> ()
  | exception Bad_json msg ->
    Alcotest.failf "%s: invalid JSON: %s\n%s" label msg s

(* --- extraction helpers --- *)

let member key = function
  | J_obj kvs -> List.assoc_opt key kvs
  | _ -> None

let member_exn label key j =
  match member key j with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing key %S" label key

let as_str label = function
  | J_str s -> s
  | _ -> Alcotest.failf "%s: expected string" label

let as_num label = function
  | J_num f -> f
  | _ -> Alcotest.failf "%s: expected number" label

let as_arr label = function
  | J_arr l -> l
  | _ -> Alcotest.failf "%s: expected array" label
