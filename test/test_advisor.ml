(* The workload observatory's ANALYZE/TUNE advisor.

   - golden structure of [analyze] (text) and [analyze_json] (via the
     shared Tjson parser) on the paper's catalog example;
   - the Table-2 acceptance points: with the manager armed GROUPED, a
     1-trigger workload models UNGROUPED cheaper, a 1000-trigger workload
     keeps GROUPED;
   - TUNE round-trip: the applied recommendation re-arms live, the
     subsequent firing log is byte-identical to a runtime armed directly
     with the recommended strategy, and the transition survives
     checkpoint + reopen;
   - drop_trigger telemetry hygiene: histograms and window series die
     with the trigger, [triggers_dropped] records the drop. *)

open Relkit
module Workload = Workloadlib.Workload

let dir_counter = ref 0

let fresh_dir name =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "trigview_advisor_%d_%d_%s" (Unix.getpid ()) !dir_counter
         name)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  dir

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let check_contains label haystack needle =
  if not (contains haystack needle) then
    Alcotest.failf "%s: expected %S in:\n%s" label needle haystack

(* --- the catalog example --- *)

let product_schema () =
  Schema.make ~name:"product"
    ~columns:
      [ ("pid", Schema.TString); ("pname", Schema.TString);
        ("price", Schema.TFloat) ]
    ~primary_key:[ "pid" ] ()

let view_text =
  {|<catalog>
    {for $p in view("default")/product/row
     return <product name="{$p/pname}"><price>{$p/price}</price></product>}
  </catalog>|}

let mk_db () =
  let db = Database.create () in
  Database.create_table db (product_schema ());
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P1"; Value.String "crt"; Value.Float 10.0 |];
      [| Value.String "P2"; Value.String "lcd"; Value.Float 20.0 |];
    ];
  db

let bump_price db pid =
  ignore
    (Database.update_pk db ~table:"product" ~pk:[ Value.String pid ]
       ~set:(fun r -> [| r.(0); r.(1); Value.add r.(2) (Value.Float 1.0) |]))

let setup ?(strategy = Trigview.Runtime.Grouped) ?(action = fun _ -> ()) () =
  let db = mk_db () in
  let mgr = Trigview.Runtime.create ~strategy db in
  Trigview.Runtime.define_view mgr ~name:"catalog" view_text;
  Trigview.Runtime.register_action mgr ~name:"rec" action;
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO rec(NEW_NODE)";
  (db, mgr)

(* --- golden analyze output --- *)

let test_analyze_text () =
  let db, mgr = setup () in
  bump_price db "P1";
  bump_price db "P2";
  let out = Trigview.Runtime.analyze mgr in
  List.iter
    (check_contains "analyze" out)
    [ "workload observatory: window = ";
      "== trigger t (group ";
      "cohort of 1";
      "current: GROUPED";
      "modeled cost/stmt:";
      "UNGROUPED=";
      "GROUPED=";
      "GROUPED-AGG=";
      "MATERIALIZED=";
      (* a singleton cohort under GROUPED pays the constants join for
         nothing: the advisor must propose UNGROUPED *)
      "recommendation: UNGROUPED";
    ]

let test_analyze_json () =
  let db, mgr = setup () in
  bump_price db "P1";
  let j = Tjson.parse_json (Trigview.Runtime.analyze_json mgr) in
  let window = Tjson.member_exn "root" "window" j in
  ignore (Tjson.as_num "buckets" (Tjson.member_exn "window" "buckets" window));
  let trig =
    match Tjson.as_arr "triggers" (Tjson.member_exn "root" "triggers" j) with
    | [ t ] -> t
    | l -> Alcotest.failf "expected 1 trigger object, got %d" (List.length l)
  in
  let str k = Tjson.as_str k (Tjson.member_exn "trigger" k trig) in
  Alcotest.(check string) "name" "t" (str "name");
  Alcotest.(check string) "strategy" "GROUPED" (str "strategy");
  Alcotest.(check string) "recommendation" "UNGROUPED" (str "recommendation");
  Alcotest.(check (float 1e-9)) "cohort" 1.0
    (Tjson.as_num "cohort_members" (Tjson.member_exn "t" "cohort_members" trig));
  let obs = Tjson.member_exn "trigger" "observed" trig in
  Alcotest.(check bool) "windowed observation" true
    (match Tjson.member_exn "observed" "windowed" obs with
    | Tjson.J_bool b -> b
    | _ -> false);
  Alcotest.(check bool) "observed cost positive" true
    (Tjson.as_num "cost" (Tjson.member_exn "observed" "cost_per_stmt_ns" obs)
     > 0.0);
  let modeled = Tjson.member_exn "trigger" "modeled_cost_ns" trig in
  List.iter
    (fun k ->
      if Tjson.member k modeled = None then
        Alcotest.failf "modeled_cost_ns missing %S" k)
    [ "UNGROUPED"; "GROUPED"; "GROUPED-AGG"; "MATERIALIZED" ];
  (* report_json embeds the same advisor object under "observatory" *)
  let rep = Tjson.parse_json (Trigview.Runtime.report_json mgr) in
  let oby = Tjson.member_exn "report" "observatory" rep in
  ignore (Tjson.member_exn "observatory" "knobs" oby);
  ignore (Tjson.member_exn "observatory" "series" oby);
  ignore (Tjson.member_exn "observatory" "advisor" oby)

(* --- Table-2 acceptance: the recommendation flips with cohort size --- *)

let accept_params n =
  { Workload.quick_defaults with
    leaf_tuples = 512;
    num_triggers = n;
    num_satisfied = min n 20;
  }

let reco_at n =
  let p = accept_params n in
  let built = Workload.build p in
  (* interpreted plans: arming 1000 triggers must not pay compilation *)
  let tuning =
    { Trigview.Runtime.default_tuning with compile_plans = false }
  in
  let mgr =
    Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped ~tuning
      built.Workload.db
  in
  Trigview.Runtime.define_view mgr ~name:"doc" built.Workload.view_text;
  Trigview.Runtime.register_action mgr ~name:"record" (fun _ -> ());
  Workload.install_triggers mgr p ~target_name:built.Workload.top_names.(0);
  for step = 0 to 4 do
    Workload.update_leaf built ~top_index:0 ~step
  done;
  match Trigview.Runtime.recommendations mgr with
  | [] -> Alcotest.fail "no recommendations"
  | r :: _ ->
    (* the workload's negative count-thresholds split one plan group off
       (distinct condition shape), so the first cohort holds most — not
       all — of the n triggers *)
    Alcotest.(check bool)
      (Printf.sprintf "cohort size at %d (got %d)" n r.Trigview.Runtime.r_members)
      true
      (r.Trigview.Runtime.r_members >= max 1 (n * 9 / 10)
      && r.Trigview.Runtime.r_members <= n);
    r.Trigview.Runtime.r_recommended

let test_acceptance_flip () =
  Alcotest.(check string) "1 trigger -> UNGROUPED" "UNGROUPED"
    (Trigview.Runtime.strategy_to_string (reco_at 1));
  Alcotest.(check string) "1000 triggers -> GROUPED" "GROUPED"
    (Trigview.Runtime.strategy_to_string (reco_at 1000))

(* --- TUNE round-trip --- *)

let doc_log log fi =
  let render = function
    | Some x -> Xmlkit.Xml.to_string x
    | None -> "-"
  in
  log :=
    Printf.sprintf "%s|%s|%s" fi.Trigview.Runtime.fi_trigger
      (render fi.Trigview.Runtime.fi_old)
      (render fi.Trigview.Runtime.fi_new)
    :: !log

let test_tune_round_trip () =
  let dir = fresh_dir "tune" in
  let log = ref [] in
  let db, mgr = setup ~action:(doc_log log) () in
  Trigview.Runtime.attach_durability mgr ~data_dir:dir;
  bump_price db "P1";
  bump_price db "P2";
  let summary = Trigview.Runtime.tune mgr in
  check_contains "tune summary" summary "t: GROUPED -> UNGROUPED";
  check_contains "tune summary" summary "1 trigger(s) re-armed";
  Alcotest.(check (option string)) "re-armed strategy"
    (Some "UNGROUPED")
    (Option.map Trigview.Runtime.strategy_to_string
       (Trigview.Runtime.trigger_strategy mgr "t"));
  bump_price db "P1";
  bump_price db "P2";
  (* a second tune is a no-op: the cohort already runs the recommendation *)
  let summary2 = Trigview.Runtime.tune mgr in
  check_contains "idempotent tune" summary2 "0 trigger(s) re-armed";
  (* the full firing log must be byte-identical to a runtime armed with
     UNGROUPED from the start, fed the same statements *)
  let log' = ref [] in
  let db', _mgr' =
    setup ~strategy:Trigview.Runtime.Ungrouped ~action:(doc_log log') ()
  in
  bump_price db' "P1";
  bump_price db' "P2";
  bump_price db' "P1";
  bump_price db' "P2";
  Alcotest.(check (list string)) "firing logs byte-identical" !log' !log;
  (* the transition survives checkpoint + reopen *)
  Trigview.Runtime.checkpoint mgr;
  let log'' = ref [] in
  let r =
    Trigview.Runtime.reopen
      ~actions:[ ("rec", doc_log log'') ]
      ~data_dir:dir ()
  in
  Alcotest.(check (list string)) "clean recovery" []
    (r.Trigview.Runtime.recovery.Durability.Recovery.errors
    @ r.Trigview.Runtime.rearm_errors);
  Alcotest.(check (option string)) "strategy survives reopen"
    (Some "UNGROUPED")
    (Option.map Trigview.Runtime.strategy_to_string
       (Trigview.Runtime.trigger_strategy r.Trigview.Runtime.runtime "t"));
  bump_price (Trigview.Runtime.database r.Trigview.Runtime.runtime) "P1";
  Alcotest.(check int) "fires after reopen" 1 (List.length !log'')

(* --- drop hygiene: telemetry dies with the trigger --- *)

let test_drop_unregisters_telemetry () =
  let db, mgr = setup () in
  bump_price db "P1";
  let names_before =
    List.map fst (Trigview.Runtime.latencies mgr)
  in
  Alcotest.(check bool) "trigger histogram live" true
    (List.mem "t" names_before);
  Alcotest.(check bool) "firing histogram live" true
    (List.exists (fun n -> contains n "firing:g") names_before);
  Alcotest.(check bool) "window series live" true
    (List.exists
       (fun n -> contains n "firings:g")
       (Obs.Window.names (Database.window db)));
  Trigview.Runtime.drop_trigger mgr "t";
  let names_after = List.map fst (Trigview.Runtime.latencies mgr) in
  Alcotest.(check bool) "trigger histogram gone" false
    (List.mem "t" names_after);
  Alcotest.(check bool) "firing histogram gone" false
    (List.exists (fun n -> contains n "firing:g") names_after);
  Alcotest.(check bool) "window series gone" false
    (List.exists
       (fun n -> contains n "firings:g")
       (Obs.Window.names (Database.window db)));
  Alcotest.(check int) "dropped counted" 1
    (Trigview.Runtime.stats mgr).Trigview.Runtime.triggers_dropped

let () =
  Alcotest.run "advisor"
    [ ( "analyze",
        [ Alcotest.test_case "text golden" `Quick test_analyze_text;
          Alcotest.test_case "json golden" `Quick test_analyze_json;
        ] );
      ( "acceptance",
        [ Alcotest.test_case "reco flips with cohort size" `Slow
            test_acceptance_flip;
        ] );
      ( "tune",
        [ Alcotest.test_case "round trip + reopen" `Quick test_tune_round_trip ] );
      ( "hygiene",
        [ Alcotest.test_case "drop unregisters telemetry" `Quick
            test_drop_unregisters_telemetry;
        ] );
    ]
