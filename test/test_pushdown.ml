(* Tests for trigger pushdown: shredding XQGM into relational plans plus
   tagging templates must be observationally equivalent to the reference XQGM
   evaluator, with and without the optimizer passes (semijoin pushdown, CSE,
   GROUPED-AGG aggregate inversion). *)

open Relkit
open Xqgm

let v_str = Fixtures.v_str

let schema_of = function
  | "product" -> Fixtures.product_schema
  | "vendor" -> Fixtures.vendor_schema
  | name -> Alcotest.failf "unknown table %s" name

let monitored () =
  { Trigview.Angraph.graph = Fixtures.product_level ();
    node_col = "product_elem";
    key = [ "pname" ];
  }

let capture_ctx db ~table ~event dml =
  let captured = ref None in
  Database.create_trigger db
    { Database.trig_name = "capture!";
      trig_table = table;
      trig_event = event;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun tc -> captured := Some (Ra_eval.ctx_of_trigger tc));
    };
  dml ();
  Database.drop_trigger db "capture!";
  Option.get !captured

(* Compare render against Eval on the same graph and context, projected to
   the graph's own output columns. *)
let assert_equivalent ?(passes = fun p -> p) ctx graph =
  let reference = Eval.eval ctx graph in
  let shredded = Trigview.Pushdown.shred graph in
  let shredded = { shredded with Trigview.Pushdown.plan = passes shredded.Trigview.Pushdown.plan } in
  let rendered = Trigview.Pushdown.render ctx shredded in
  if not (Eval.equal_xrel reference rendered) then
    Alcotest.failf "pushdown diverges from reference:@.ref %a@.got %a" Eval.pp_xrel
      reference Eval.pp_xrel rendered

let test_shred_view_matches_eval () =
  let db = Fixtures.mk_db () in
  assert_equivalent (Ra_eval.ctx_of_db db) (Fixtures.product_level ())

let test_shred_whole_catalog () =
  let db = Fixtures.mk_db () in
  assert_equivalent (Ra_eval.ctx_of_db db) (Fixtures.catalog_view ())

let test_shred_minprice () =
  let db = Fixtures.mk_db () in
  assert_equivalent (Ra_eval.ctx_of_db db) (Fixtures.minprice_product_level ())

let test_shred_rejects_node_eq () =
  let g =
    Op.select
      ~pred:(Expr.Node_eq (Expr.Col "product_elem", Expr.Col "product_elem"))
      (Fixtures.product_level ())
  in
  match Trigview.Pushdown.shred g with
  | _ -> Alcotest.fail "expected Not_pushable"
  | exception Trigview.Pushdown.Not_pushable _ -> ()

let an_graph ?(check = Trigview.Angraph.Compare_cols [ "pname" ]) event =
  (* Compare_cols keeps the graph free of node comparisons so it is
     pushable; "pname" alone is not a sufficient check, so tests using this
     must not rely on spurious-update suppression. *)
  (Option.get
     (Trigview.Angraph.create ~schema_of ~event ~table:"vendor" ~check (monitored ())))
    .Trigview.Angraph.graph

let test_affected_graph_pushdown_update () =
  let db = Fixtures.mk_db () in
  let tctx =
    capture_ctx db ~table:"vendor" ~event:Database.Update (fun () ->
        Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0)
  in
  let g =
    an_graph ~check:(Trigview.Angraph.Compare_cols [ "pname" ]) Database.Update
  in
  (* use a real check column set that detects the change: expose vendors
     count?  pname does not change here, so use No_check for equivalence *)
  ignore g;
  let g = an_graph ~check:Trigview.Angraph.No_check Database.Update in
  assert_equivalent tctx g

let test_affected_graph_pushdown_insert_delete () =
  let db = Fixtures.mk_db () in
  let tctx =
    capture_ctx db ~table:"vendor" ~event:Database.Delete (fun () ->
        Fixtures.delete_vendor db ~vid:"Buy.com" ~pid:"P2")
  in
  List.iter
    (fun event -> assert_equivalent tctx (an_graph ~check:Trigview.Angraph.No_check event))
    [ Database.Insert; Database.Delete ]

let test_optimizer_passes_preserve_semantics () =
  let db = Fixtures.mk_db () in
  let tctx =
    capture_ctx db ~table:"vendor" ~event:Database.Insert (fun () ->
        Fixtures.insert_vendor db ~vid:"Amazon" ~pid:"P2" ~price:500.0)
  in
  let passes p =
    Ra_opt.share_common_subplans (Ra_opt.push_transition_joins p)
  in
  List.iter
    (fun event ->
      assert_equivalent ~passes tctx (an_graph ~check:Trigview.Angraph.No_check event))
    [ Database.Update; Database.Insert; Database.Delete ]

let test_grouped_agg_inversion_equivalence () =
  (* GROUPED-AGG: the inverted old-side aggregates must agree with direct
     OLD-OF evaluation, for updates, inserts and deletes. *)
  let scenarios =
    [ ( "update",
        Database.Update,
        fun db -> Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0 );
      ( "insert",
        Database.Insert,
        fun db -> Fixtures.insert_vendor db ~vid:"Amazon" ~pid:"P2" ~price:500.0 );
      ("delete", Database.Delete, fun db -> Fixtures.delete_vendor db ~vid:"Buy.com" ~pid:"P2");
    ]
  in
  List.iter
    (fun (name, event, dml) ->
      let db = Fixtures.mk_db () in
      let tctx = capture_ctx db ~table:"vendor" ~event (fun () -> dml db) in
      List.iter
        (fun xml_event ->
          let g = an_graph ~check:Trigview.Angraph.No_check xml_event in
          let reference = Eval.eval tctx g in
          let shredded =
            Trigview.Pushdown.invert_old_aggregates ~table:"vendor"
              (Trigview.Pushdown.shred g)
          in
          let rendered = Trigview.Pushdown.render tctx shredded in
          if not (Eval.equal_xrel reference rendered) then
            Alcotest.failf "GROUPED-AGG diverges (%s, %s):@.ref %a@.got %a" name
              (Database.string_of_event xml_event)
              Eval.pp_xrel reference Eval.pp_xrel rendered)
        [ Database.Update; Database.Insert; Database.Delete ])
    scenarios

let test_inverted_plan_avoids_old_of () =
  (* After inversion, the scalar part of the affected-node graph must not
     scan OLD-OF at all (the point of the optimization). *)
  let g = an_graph ~check:Trigview.Angraph.No_check Database.Update in
  let shredded = Trigview.Pushdown.shred g in
  let inverted = Trigview.Pushdown.invert_old_aggregates ~table:"vendor" shredded in
  let rec scans_old = function
    | Ra.Scan (Ra.Old_of _, _) -> true
    | Ra.Scan (_, _) | Ra.Values _ -> false
    | Ra.Select (_, i) | Ra.Project (_, i) | Ra.Group_by (_, _, i) | Ra.Distinct i
    | Ra.Order_by (_, i) | Ra.Shared (_, i) ->
      scans_old i
    | Ra.Join (_, _, l, r) -> scans_old l || scans_old r
    | Ra.Union { inputs; _ } -> List.exists scans_old inputs
  in
  Alcotest.(check bool) "GROUPED scans OLD-OF" true
    (scans_old shredded.Trigview.Pushdown.plan);
  Alcotest.(check bool) "GROUPED-AGG does not" false
    (scans_old inverted.Trigview.Pushdown.plan)

let test_render_partial_columns () =
  (* Rendering only new_node must not instantiate the old side's templates. *)
  let db = Fixtures.mk_db () in
  let tctx =
    capture_ctx db ~table:"vendor" ~event:Database.Update (fun () ->
        Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0)
  in
  let g = an_graph ~check:Trigview.Angraph.No_check Database.Update in
  let shredded = Trigview.Pushdown.shred g in
  let rel =
    Trigview.Pushdown.render ~cols:[ "pname"; "new_node" ] tctx shredded
  in
  Alcotest.(check int) "one row" 1 (List.length rel.Eval.rows);
  Alcotest.(check (array string)) "columns" [| "pname"; "new_node" |] rel.Eval.cols

let test_sql_text_mentions_structure () =
  let g = an_graph ~check:Trigview.Angraph.No_check Database.Update in
  let shredded = Trigview.Pushdown.shred g in
  let shredded =
    { shredded with
      Trigview.Pushdown.plan =
        Ra_opt.push_transition_joins shredded.Trigview.Pushdown.plan;
    }
  in
  let sql = Trigview.Pushdown.to_sql shredded in
  let contains frag =
    let n = String.length sql and m = String.length frag in
    let rec go i = i + m <= n && (String.sub sql i m = frag || go (i + 1)) in
    go 0
  in
  List.iter
    (fun frag ->
      if not (contains frag) then Alcotest.failf "missing %S in generated SQL" frag)
    [ "WITH"; "INSERTED"; "DELETED"; "GROUP BY"; "UNION ALL" ]

(* property: pushdown = reference across random DML, all events, both with
   and without optimizer passes and aggregate inversion *)

let dml_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun i p -> `Upd (i, float_of_int p)) (int_range 0 100) (int_range 10 400);
        map3 (fun v p price -> `Ins (v, p, float_of_int price)) (int_range 0 50) (int_range 0 2)
          (int_range 10 400);
        map (fun i -> `Del i) (int_range 0 100);
      ])

let prop_pushdown_differential =
  QCheck.Test.make ~name:"pushdown (all variants) = reference evaluator" ~count:40
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 4) dml_gen)) (fun ops ->
      let db = Fixtures.mk_db () in
      let ok = ref true in
      let with_ctx ~table ~event dml =
        let tctx = capture_ctx db ~table ~event dml in
        List.iter
          (fun xml_event ->
            let g = an_graph ~check:Trigview.Angraph.No_check xml_event in
            let reference = Eval.eval tctx g in
            let base = Trigview.Pushdown.shred g in
            let variants =
              [ base;
                { base with
                  Trigview.Pushdown.plan =
                    Ra_opt.share_common_subplans
                      (Ra_opt.push_transition_joins base.Trigview.Pushdown.plan);
                };
                Trigview.Pushdown.invert_old_aggregates ~table:"vendor" base;
              ]
            in
            List.iter
              (fun v ->
                if not (Eval.equal_xrel reference (Trigview.Pushdown.render tctx v)) then
                  ok := false)
              variants)
          [ Database.Update; Database.Insert; Database.Delete ]
      in
      List.iter
        (fun op ->
          match op with
          | `Upd (i, price) ->
            let vs = Table.to_rows (Database.get_table db "vendor") in
            if vs <> [] then begin
              let victim = List.nth vs (i mod List.length vs) in
              with_ctx ~table:"vendor" ~event:Database.Update (fun () ->
                  ignore
                    (Database.update_rows db ~table:"vendor"
                       ~where:(fun r -> r == victim)
                       ~set:(fun r -> [| r.(0); r.(1); Value.Float price |])))
            end
          | `Ins (v, p, price) ->
            let vid = Printf.sprintf "V%d" v in
            let pid = Printf.sprintf "P%d" (1 + (p mod 3)) in
            if Table.find_pk (Database.get_table db "vendor") [ v_str vid; v_str pid ] = None
            then
              with_ctx ~table:"vendor" ~event:Database.Insert (fun () ->
                  Fixtures.insert_vendor db ~vid ~pid ~price)
          | `Del i ->
            let vs = Table.to_rows (Database.get_table db "vendor") in
            if vs <> [] then begin
              let victim = List.nth vs (i mod List.length vs) in
              with_ctx ~table:"vendor" ~event:Database.Delete (fun () ->
                  ignore
                    (Database.delete_rows db ~table:"vendor" ~where:(fun r -> r == victim)))
            end)
        ops;
      !ok)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_pushdown_differential ]

let () =
  Alcotest.run "trigview-pushdown"
    [ ( "shred",
        [ Alcotest.test_case "product level" `Quick test_shred_view_matches_eval;
          Alcotest.test_case "whole catalog" `Quick test_shred_whole_catalog;
          Alcotest.test_case "min-price" `Quick test_shred_minprice;
          Alcotest.test_case "rejects node comparison" `Quick test_shred_rejects_node_eq;
        ] );
      ( "affected graphs",
        [ Alcotest.test_case "update" `Quick test_affected_graph_pushdown_update;
          Alcotest.test_case "insert/delete" `Quick test_affected_graph_pushdown_insert_delete;
          Alcotest.test_case "optimizer passes" `Quick test_optimizer_passes_preserve_semantics;
        ] );
      ( "grouped-agg",
        [ Alcotest.test_case "inversion equivalence" `Quick
            test_grouped_agg_inversion_equivalence;
          Alcotest.test_case "avoids OLD-OF" `Quick test_inverted_plan_avoids_old_of;
        ] );
      ( "render",
        [ Alcotest.test_case "partial columns" `Quick test_render_partial_columns;
          Alcotest.test_case "sql text" `Quick test_sql_text_mentions_structure;
        ] );
      ("properties", qcheck_tests);
    ]
