(* End-to-end tests of the trigger manager: define a view, register actions,
   create XML triggers (§2.2 syntax), run DML, observe firings — under every
   strategy, which must all agree. *)

open Relkit

let catalog_text =
  {|<catalog>
  {for $prodname in distinct(view("default")/product/row/pname)
   let $products := view("default")/product/row[./pname = $prodname]
   let $vendors := view("default")/vendor/row[./pid = $products/pid]
   where count($vendors) >= 2
   return <product name="{$prodname}">
     {for $vendor in $vendors
      return <vendor>{$vendor/*}</vendor>}
   </product>}
</catalog>|}

type recorded = {
  r_trigger : string;
  r_old : string option;
  r_new : string option;
}

let setup ?(strategy = Trigview.Runtime.Grouped_agg) () =
  let db = Fixtures.mk_db () in
  let mgr = Trigview.Runtime.create ~strategy db in
  Trigview.Runtime.define_view mgr ~name:"catalog" catalog_text;
  let log = ref [] in
  Trigview.Runtime.register_action mgr ~name:"notify" (fun fi ->
      log :=
        { r_trigger = fi.Trigview.Runtime.fi_trigger;
          r_old = Option.map (Xmlkit.Xml.to_string ~canonical:true) fi.Trigview.Runtime.fi_old;
          r_new = Option.map (Xmlkit.Xml.to_string ~canonical:true) fi.Trigview.Runtime.fi_new;
        }
        :: !log);
  (db, mgr, log)

let strategies =
  [ Trigview.Runtime.Ungrouped;
    Trigview.Runtime.Grouped;
    Trigview.Runtime.Grouped_agg;
    Trigview.Runtime.Materialized;
  ]

(* The §2.2 Notify trigger, verbatim. *)
let notify_trigger =
  {|CREATE TRIGGER Notify AFTER Update
ON view('catalog')/product
WHERE OLD_NODE/@name = 'CRT 15'
DO notify(NEW_NODE)|}

let test_notify_fires_on_price_update () =
  List.iter
    (fun strategy ->
      let db, mgr, log = setup ~strategy () in
      Trigview.Runtime.create_trigger mgr notify_trigger;
      Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
      (match !log with
      | [ r ] ->
        Alcotest.(check string)
          (Trigview.Runtime.strategy_to_string strategy ^ " trigger name")
          "Notify" r.r_trigger;
        let n = Xmlkit.Xml_parse.parse (Option.get r.r_new) in
        Alcotest.(check (option string)) "name attr" (Some "CRT 15") (Xmlkit.Xml.attr n "name");
        Alcotest.(check (list string)) "new price visible" [ "75.0" ]
          (Xmlkit.Xpath.select_strings n "/vendor[vid='Amazon']/price")
      | l ->
        Alcotest.failf "%s: expected 1 firing, got %d"
          (Trigview.Runtime.strategy_to_string strategy)
          (List.length l));
      (* updating an LCD 19 vendor must not fire (condition filters) *)
      log := [];
      Fixtures.update_vendor_price db ~vid:"Buy.com" ~pid:"P2" ~price:75.0;
      Alcotest.(check int)
        (Trigview.Runtime.strategy_to_string strategy ^ " condition filters")
        0 (List.length !log))
    strategies

let test_nested_insert_fires_update_trigger () =
  (* the §4.1 scenario through the whole system *)
  List.iter
    (fun strategy ->
      let db, mgr, log = setup ~strategy () in
      Trigview.Runtime.create_trigger mgr
        "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO notify(NEW_NODE)";
      Fixtures.insert_vendor db ~vid:"Amazon" ~pid:"P2" ~price:500.0;
      match !log with
      | [ r ] ->
        let n = Xmlkit.Xml_parse.parse (Option.get r.r_new) in
        Alcotest.(check (option string))
          (Trigview.Runtime.strategy_to_string strategy)
          (Some "LCD 19") (Xmlkit.Xml.attr n "name");
        Alcotest.(check int) "3 vendors now" 3
          (List.length (Xmlkit.Xml.children_named n "vendor"))
      | l ->
        Alcotest.failf "%s: expected 1 firing, got %d"
          (Trigview.Runtime.strategy_to_string strategy)
          (List.length l))
    strategies

let test_insert_and_delete_triggers () =
  List.iter
    (fun strategy ->
      let db, mgr, log = setup ~strategy () in
      Trigview.Runtime.create_trigger mgr
        "CREATE TRIGGER ti AFTER INSERT ON view('catalog')/product DO notify(NEW_NODE)";
      Trigview.Runtime.create_trigger mgr
        "CREATE TRIGGER td AFTER DELETE ON view('catalog')/product DO notify(OLD_NODE)";
      (* OLED enters the view when its second vendor appears *)
      Database.insert_rows db ~table:"product"
        [ [| Value.String "P4"; Value.String "OLED"; Value.String "LG" |] ];
      Fixtures.insert_vendor db ~vid:"Amazon" ~pid:"P4" ~price:900.0;
      Alcotest.(check int) "below threshold: nothing" 0 (List.length !log);
      Fixtures.insert_vendor db ~vid:"Bestbuy" ~pid:"P4" ~price:950.0;
      (match !log with
      | [ { r_trigger = "ti"; r_new = Some _; r_old = None } ] -> ()
      | _ ->
        Alcotest.failf "%s: expected INSERT firing"
          (Trigview.Runtime.strategy_to_string strategy));
      log := [];
      (* and leaves it when one vendor goes away *)
      Fixtures.delete_vendor db ~vid:"Amazon" ~pid:"P4";
      match !log with
      | [ { r_trigger = "td"; r_old = Some _; r_new = None } ] -> ()
      | _ ->
        Alcotest.failf "%s: expected DELETE firing"
          (Trigview.Runtime.strategy_to_string strategy))
    strategies

let test_grouping_shares_sql_triggers () =
  let db, mgr, _log = setup ~strategy:Trigview.Runtime.Grouped () in
  ignore db;
  let mk i name =
    Printf.sprintf
      "CREATE TRIGGER g%d AFTER UPDATE ON view('catalog')/product WHERE OLD_NODE/@name = '%s' DO notify(NEW_NODE)"
      i name
  in
  Trigview.Runtime.create_trigger mgr (mk 1 "CRT 15");
  let base = Trigview.Runtime.sql_trigger_count mgr in
  Trigview.Runtime.create_trigger mgr (mk 2 "CRT 15");
  Trigview.Runtime.create_trigger mgr (mk 3 "LCD 19");
  Trigview.Runtime.create_trigger mgr (mk 4 "Plasma 42");
  Alcotest.(check int) "no new SQL triggers for similar XML triggers" base
    (Trigview.Runtime.sql_trigger_count mgr)

let test_ungrouped_multiplies_sql_triggers () =
  let _db, mgr, _log = setup ~strategy:Trigview.Runtime.Ungrouped () in
  let mk i name =
    Printf.sprintf
      "CREATE TRIGGER g%d AFTER UPDATE ON view('catalog')/product WHERE OLD_NODE/@name = '%s' DO notify(NEW_NODE)"
      i name
  in
  Trigview.Runtime.create_trigger mgr (mk 1 "CRT 15");
  let base = Trigview.Runtime.sql_trigger_count mgr in
  Trigview.Runtime.create_trigger mgr (mk 2 "LCD 19");
  Alcotest.(check int) "each XML trigger gets its own SQL triggers" (2 * base)
    (Trigview.Runtime.sql_trigger_count mgr)

let test_grouped_dispatch_correctness () =
  (* triggers sharing constants and differing in constants must each fire
     exactly when their own condition holds *)
  List.iter
    (fun strategy ->
      let db, mgr, log = setup ~strategy () in
      let mk name const =
        Printf.sprintf
          "CREATE TRIGGER %s AFTER UPDATE ON view('catalog')/product WHERE OLD_NODE/@name = '%s' DO notify(NEW_NODE)"
          name const
      in
      Trigview.Runtime.create_trigger mgr (mk "crt_a" "CRT 15");
      Trigview.Runtime.create_trigger mgr (mk "crt_b" "CRT 15");
      Trigview.Runtime.create_trigger mgr (mk "lcd" "LCD 19");
      Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
      let fired = List.sort compare (List.map (fun r -> r.r_trigger) !log) in
      Alcotest.(check (list string))
        (Trigview.Runtime.strategy_to_string strategy)
        [ "crt_a"; "crt_b" ] fired;
      log := [];
      Fixtures.update_vendor_price db ~vid:"Buy.com" ~pid:"P2" ~price:60.0;
      let fired = List.map (fun r -> r.r_trigger) !log in
      Alcotest.(check (list string)) "lcd only" [ "lcd" ] fired)
    [ Trigview.Runtime.Ungrouped; Trigview.Runtime.Grouped; Trigview.Runtime.Grouped_agg ]

let test_count_condition () =
  List.iter
    (fun strategy ->
      let db, mgr, log = setup ~strategy () in
      Trigview.Runtime.create_trigger mgr
        "CREATE TRIGGER big AFTER UPDATE ON view('catalog')/product WHERE count(NEW_NODE/vendor) >= 3 DO notify(NEW_NODE)";
      (* LCD 19 goes from 2 to 3 vendors: fires *)
      Fixtures.insert_vendor db ~vid:"Walmart" ~pid:"P2" ~price:170.0;
      Alcotest.(check int)
        (Trigview.Runtime.strategy_to_string strategy ^ ": 3 vendors fires")
        1 (List.length !log);
      log := [];
      (* a price change on a 2-vendor product does not *)
      Fixtures.delete_vendor db ~vid:"Walmart" ~pid:"P2";
      log := [];
      Fixtures.update_vendor_price db ~vid:"Buy.com" ~pid:"P2" ~price:199.0;
      Alcotest.(check int) "2 vendors filtered" 0 (List.length !log))
    strategies

let test_no_op_statement_suppressed () =
  List.iter
    (fun strategy ->
      let db, mgr, log = setup ~strategy () in
      Trigview.Runtime.create_trigger mgr
        "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO notify(NEW_NODE)";
      ignore
        (Database.update_rows db ~table:"vendor" ~where:(fun _ -> true)
           ~set:(fun r -> Array.copy r));
      Alcotest.(check int)
        (Trigview.Runtime.strategy_to_string strategy ^ ": no-op suppressed")
        0 (List.length !log);
      (* irrelevant-column updates are pruned too (mfr is not in the view) *)
      ignore
        (Database.update_rows db ~table:"product" ~where:(fun _ -> true)
           ~set:(fun r -> [| r.(0); r.(1); Value.String "Acme" |]));
      Alcotest.(check int)
        (Trigview.Runtime.strategy_to_string strategy ^ ": irrelevant column pruned")
        0 (List.length !log))
    [ Trigview.Runtime.Ungrouped; Trigview.Runtime.Grouped; Trigview.Runtime.Grouped_agg ]

let test_errors_reported () =
  let _db, mgr, _ = setup () in
  let expect_error text =
    match Trigview.Runtime.create_trigger mgr text with
    | exception Trigview.Runtime.Error _ -> ()
    | () -> Alcotest.failf "expected an error for %s" text
  in
  expect_error "CREATE TRIGGER x AFTER UPDATE ON view('nope')/product DO notify(NEW_NODE)";
  expect_error "CREATE TRIGGER x AFTER UPDATE ON view('catalog')/widget DO notify(NEW_NODE)";
  expect_error "CREATE TRIGGER x AFTER UPDATE ON view('catalog')/product DO unregistered()";
  expect_error
    "CREATE TRIGGER x AFTER INSERT ON view('catalog')/product WHERE OLD_NODE/@name = 'x' DO notify(NEW_NODE)";
  expect_error "CREATE TRIGGER AFTER UPDATE ON view('catalog')/product DO notify()"

let test_theorem_1_rejection () =
  (* a view over a table without a primary key is not trigger-specifiable *)
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"nokeys" ~columns:[ ("a", Schema.TInt); ("b", Schema.TInt) ]
       ~primary_key:[] ());
  let mgr = Trigview.Runtime.create db in
  Trigview.Runtime.register_action mgr ~name:"notify" (fun _ -> ());
  match
    Trigview.Runtime.define_view mgr ~name:"v"
      "<v>{for $x in view(\"default\")/nokeys/row return <row>{$x/a}</row>}</v>"
  with
  | exception Trigview.Runtime.Error msg ->
    Alcotest.(check bool) "mentions Theorem 1" true
      (String.length msg > 0
      &&
      let lower = String.lowercase_ascii msg in
      let has sub =
        let n = String.length lower and m = String.length sub in
        let rec go i = i + m <= n && (String.sub lower i m = sub || go (i + 1)) in
        go 0
      in
      has "key" || has "theorem")
  | () -> Alcotest.fail "expected a Theorem 1 rejection"

let test_figure_16_structure () =
  (* the generated SQL for the paper's grouped trigger mirrors Figure 16:
     affected keys from both transition tables, counts grouped per affected
     key, the constants join, and the transition-table references *)
  let _db, mgr, _ = setup ~strategy:Trigview.Runtime.Grouped () in
  Trigview.Runtime.create_trigger mgr notify_trigger;
  let sqls = Trigview.Runtime.generated_sql mgr in
  let vendor_sql =
    match List.find_opt (fun (name, _) -> String.length name > 0 &&
        (let n = String.length name and m = String.length "vendor" in
         let rec go i = i + m <= n && (String.sub name i m = "vendor" || go (i + 1)) in
         go 0)) sqls with
    | Some (_, sql) -> sql
    | None -> Alcotest.fail "no vendor-table SQL trigger"
  in
  let contains frag =
    let n = String.length vendor_sql and m = String.length frag in
    let rec go i = i + m <= n && (String.sub vendor_sql i m = frag || go (i + 1)) in
    go 0
  in
  List.iter
    (fun frag ->
      if not (contains frag) then Alcotest.failf "Figure 16 fragment %S missing" frag)
    [ "WITH";  (* shared subplans as CTEs *)
      "FROM INSERTED";  (* Δ transition table *)
      "FROM DELETED";  (* ∇ transition table *)
      "GROUP BY";  (* the per-product count *)
      "COUNT(*)";
      "trigconsts";  (* the constants table *)
      "trig_ids";  (* dispatch column *)
      "EXCEPT SELECT * FROM INSERTED"  (* the B_old reconstruction *)
    ]

let test_drop_trigger () =
  let db, mgr, log = setup () in
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO notify(NEW_NODE)";
  Trigview.Runtime.drop_trigger mgr "t";
  Alcotest.(check int) "no sql triggers left" 0 (Trigview.Runtime.sql_trigger_count mgr);
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  Alcotest.(check int) "no firings" 0 (List.length !log)

let test_generated_sql_inspectable () =
  let _db, mgr, _ = setup ~strategy:Trigview.Runtime.Grouped () in
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product WHERE OLD_NODE/@name = 'CRT 15' DO notify(NEW_NODE)";
  let sqls = Trigview.Runtime.generated_sql mgr in
  Alcotest.(check bool) "one per affected table" true (List.length sqls >= 2);
  let all = String.concat "\n" (List.map snd sqls) in
  let contains frag =
    let n = String.length all and m = String.length frag in
    let rec go i = i + m <= n && (String.sub all i m = frag || go (i + 1)) in
    go 0
  in
  List.iter
    (fun frag ->
      if not (contains frag) then Alcotest.failf "missing %S in generated SQL" frag)
    [ "trigconsts"; "INSERTED"; "DELETED"; "trig_ids" ]

let test_fallback_condition_path () =
  (* a condition the relational compiler cannot handle falls back to XPath
     over the tagged nodes, and still works *)
  List.iter
    (fun strategy ->
      let db, mgr, log = setup ~strategy () in
      Trigview.Runtime.create_trigger mgr
        "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product WHERE NEW_NODE/vendor/price < 80 DO notify(NEW_NODE)";
      Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
      Alcotest.(check int)
        (Trigview.Runtime.strategy_to_string strategy ^ ": fallback fires")
        1 (List.length !log);
      (* fresh database: a change keeping all prices >= 80 must not fire *)
      let db2, mgr2, log2 = setup ~strategy () in
      Trigview.Runtime.create_trigger mgr2
        "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product WHERE NEW_NODE/vendor/price < 80 DO notify(NEW_NODE)";
      Fixtures.update_vendor_price db2 ~vid:"Bestbuy" ~pid:"P1" ~price:110.0;
      Alcotest.(check int) "fallback filters" 0 (List.length !log2))
    strategies

let test_multi_row_statement_fires_per_node () =
  List.iter
    (fun strategy ->
      let db, mgr, log = setup ~strategy () in
      Trigview.Runtime.create_trigger mgr
        "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO notify(NEW_NODE)";
      ignore
        (Database.update_rows db ~table:"vendor" ~where:(fun _ -> true)
           ~set:(fun r -> [| r.(0); r.(1); Value.add r.(2) (Value.Float 5.0) |]));
      Alcotest.(check int)
        (Trigview.Runtime.strategy_to_string strategy ^ ": both products")
        2 (List.length !log))
    strategies

let test_nested_count_condition () =
  (* §5.1's hard case: count(NEW_NODE/vendor[./price < x]) >= y, with
     different (x, y) per trigger — grouped into ONE SQL trigger set whose
     plan joins a per-(node, constants) count subquery. *)
  List.iter
    (fun strategy ->
      let db, mgr, log = setup ~strategy () in
      let mk name x y =
        Printf.sprintf
          "CREATE TRIGGER %s AFTER UPDATE ON view('catalog')/product WHERE count(NEW_NODE/vendor[./price < %d]) >= %d DO notify(NEW_NODE)"
          name x y
      in
      Trigview.Runtime.create_trigger mgr (mk "cheap2" 130 2);
      let base = Trigview.Runtime.sql_trigger_count mgr in
      Trigview.Runtime.create_trigger mgr (mk "cheap1" 101 1);
      Trigview.Runtime.create_trigger mgr (mk "never" 50 3);
      if strategy = Trigview.Runtime.Grouped || strategy = Trigview.Runtime.Grouped_agg then
        Alcotest.(check int)
          (Trigview.Runtime.strategy_to_string strategy ^ ": one SQL trigger set")
          base
          (Trigview.Runtime.sql_trigger_count mgr);
      (* CRT 15 vendors: 100, 120, 150, 120, 140.  Update 150 -> 125:
         - cheap2 (price < 130, need >= 2): before 4? after: 100,120,125,120 →
           fires (the node changed and the condition holds);
         - cheap1 (price < 101, need >= 1): 100 qualifies → fires;
         - never (price < 50, need >= 3): no vendor qualifies → must not. *)
      Fixtures.update_vendor_price db ~vid:"Circuitcity" ~pid:"P1" ~price:125.0;
      let fired = List.sort compare (List.map (fun r -> r.r_trigger) !log) in
      Alcotest.(check (list string))
        (Trigview.Runtime.strategy_to_string strategy ^ ": correct members fire")
        [ "cheap1"; "cheap2" ] fired;
      (* an update to LCD 19 (prices 180, 200 -> 190): no vendor below 130 *)
      log := [];
      Fixtures.update_vendor_price db ~vid:"Buy.com" ~pid:"P2" ~price:190.0;
      Alcotest.(check (list string))
        (Trigview.Runtime.strategy_to_string strategy ^ ": filtered out")
        [] (List.map (fun r -> r.r_trigger) !log))
    strategies

let test_nested_count_zero_children_edge () =
  (* a condition satisfiable with zero qualifying children: count >= 0 *)
  let db, mgr, log = setup () in
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER z AFTER UPDATE ON view('catalog')/product WHERE count(NEW_NODE/vendor[./price < 10]) >= 0 DO notify(NEW_NODE)";
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:99.0;
  Alcotest.(check int) "vacuous condition fires" 1 (List.length !log)

let test_stats_counters () =
  let db, mgr, _log = setup ~strategy:Trigview.Runtime.Grouped () in
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO notify(NEW_NODE)";
  Trigview.Runtime.reset_stats mgr;
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  let s = Trigview.Runtime.stats mgr in
  Alcotest.(check bool) "fired" true (s.Trigview.Runtime.sql_firings >= 1);
  Alcotest.(check int) "one row" 1 s.Trigview.Runtime.rows_computed;
  Alcotest.(check int) "one dispatch" 1 s.Trigview.Runtime.actions_dispatched

(* --- trigger language parsing --- *)

let test_trigger_parser () =
  let t =
    Trigview.Trigger.parse
      "create trigger T after update on view('v')/x where OLD_NODE/@a = 'b' do f(NEW_NODE, count(NEW_NODE/y))"
  in
  Alcotest.(check string) "name" "T" t.Trigview.Trigger.name;
  Alcotest.(check bool) "event" true (t.Trigview.Trigger.event = Database.Update);
  Alcotest.(check string) "action" "f" t.Trigview.Trigger.action;
  Alcotest.(check int) "two args" 2 (List.length t.Trigview.Trigger.args);
  Alcotest.(check bool) "condition parsed" true (t.Trigview.Trigger.condition <> None);
  (* keywords inside string literals must not split the statement *)
  let t2 =
    Trigview.Trigger.parse
      "CREATE TRIGGER q AFTER DELETE ON view('v')/x WHERE OLD_NODE/@a = 'WHERE DO ON' DO g(OLD_NODE)"
  in
  Alcotest.(check string) "quoted keywords" "g" t2.Trigview.Trigger.action;
  (* no WHERE clause *)
  let t3 = Trigview.Trigger.parse "CREATE TRIGGER r AFTER INSERT ON view('v')/x DO h()" in
  Alcotest.(check bool) "no condition" true (t3.Trigview.Trigger.condition = None);
  Alcotest.(check int) "no args" 0 (List.length t3.Trigview.Trigger.args);
  (* round trip *)
  let printed = Trigview.Trigger.to_string t in
  let t' = Trigview.Trigger.parse printed in
  Alcotest.(check string) "roundtrip name" t.Trigview.Trigger.name t'.Trigview.Trigger.name;
  Alcotest.(check int) "roundtrip args" 2 (List.length t'.Trigview.Trigger.args)

(* --- literal action arguments (subscription payload tags) --- *)

let test_literal_action_args () =
  List.iter
    (fun strategy ->
      let db = Fixtures.mk_db () in
      let mgr = Trigview.Runtime.create ~strategy db in
      Trigview.Runtime.define_view mgr ~name:"catalog" catalog_text;
      let seen = ref [] in
      Trigview.Runtime.register_action mgr ~name:"tagged" (fun fi ->
          seen := fi.Trigview.Runtime.fi_args :: !seen);
      (* string and int literals, a negative literal (parsed as 0 - 5 and
         constant-folded back), and folded literal arithmetic *)
      Trigview.Runtime.create_trigger mgr
        "CREATE TRIGGER lit AFTER UPDATE ON view('catalog')/product WHERE \
         NEW_NODE/@name = 'CRT 15' DO tagged('feed-1', 42, -5, 2 + 3 * 4, NEW_NODE)";
      Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
      let name = Trigview.Runtime.strategy_to_string strategy in
      match !seen with
      | [ [ a; b; c; d; e ] ] ->
        Alcotest.(check bool) (name ^ ": string literal") true
          (a = Xqgm.Xval.Atom (Value.String "feed-1"));
        Alcotest.(check bool) (name ^ ": int literal") true
          (b = Xqgm.Xval.Atom (Value.Int 42));
        Alcotest.(check bool) (name ^ ": negative literal") true
          (c = Xqgm.Xval.Atom (Value.Int (-5)));
        Alcotest.(check bool) (name ^ ": folded arithmetic") true
          (d = Xqgm.Xval.Atom (Value.Int 14));
        Alcotest.(check bool) (name ^ ": node arg alongside literals") true
          (match e with
          | Xqgm.Xval.Node n -> Xmlkit.Xml.attr n "name" = Some "CRT 15"
          | _ -> false)
      | l -> Alcotest.failf "%s: expected 1 firing with 5 args, got %d" name (List.length l))
    strategies

(* --- GROUPED unsubscribe churn: constants rows and SQL triggers --- *)

let test_drop_trigger_constants_hygiene () =
  let db = Fixtures.mk_db () in
  let mgr = Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped db in
  Trigview.Runtime.define_view mgr ~name:"catalog" catalog_text;
  let log = ref [] in
  Trigview.Runtime.register_action mgr ~name:"notify" (fun fi ->
      log := fi.Trigview.Runtime.fi_trigger :: !log);
  let mk name pname =
    Printf.sprintf
      "CREATE TRIGGER %s AFTER UPDATE ON view('catalog')/product WHERE \
       NEW_NODE/@name = '%s' DO notify(NEW_NODE)"
      name pname
  in
  Trigview.Runtime.create_trigger mgr (mk "a" "CRT 15");
  Trigview.Runtime.create_trigger mgr (mk "b" "LCD 19");
  Trigview.Runtime.create_trigger mgr (mk "c" "CRT 15") (* shares a's row *);
  let consts_tables () =
    List.filter
      (fun n -> String.length n >= 10 && String.sub n 0 10 = "trigconsts")
      (Database.table_names db)
  in
  let consts_table =
    match consts_tables () with
    | [ t ] -> t
    | l -> Alcotest.failf "expected one constants table, got %d" (List.length l)
  in
  let rows () = Table.row_count (Database.get_table db consts_table) in
  Alcotest.(check int) "two rows: a+c share one" 2 (rows ());
  Trigview.Runtime.drop_trigger mgr "c";
  Alcotest.(check int) "shared row survives c's drop" 2 (rows ());
  (* the rewritten row must route to a alone, not to the dropped c *)
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  Alcotest.(check (list string)) "only a fires after c dropped" [ "a" ] !log;
  Trigview.Runtime.drop_trigger mgr "a";
  Alcotest.(check int) "a's row removed with its last member" 1 (rows ());
  log := [];
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:76.0;
  Alcotest.(check (list string)) "no stale firings" [] !log;
  Trigview.Runtime.drop_trigger mgr "b";
  Alcotest.(check int) "group empty: shared SQL triggers dropped" 0
    (Trigview.Runtime.sql_trigger_count mgr);
  Alcotest.(check (list string)) "constants table dropped with its group" []
    (consts_tables ());
  (* unsubscribe churn: repeated create/drop must not accrete state *)
  for _ = 1 to 10 do
    Trigview.Runtime.create_trigger mgr (mk "churn" "CRT 15");
    Trigview.Runtime.drop_trigger mgr "churn"
  done;
  Alcotest.(check (list string)) "churn leaves no tables" [] (consts_tables ());
  Alcotest.(check int) "churn leaves no SQL triggers" 0
    (Trigview.Runtime.sql_trigger_count mgr)

let test_trigger_parser_errors () =
  let bad s =
    match Trigview.Trigger.parse s with
    | exception Trigview.Trigger.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing TRIGGER" true (bad "CREATE AFTER UPDATE ON x DO f()");
  Alcotest.(check bool) "bad event" true
    (bad "CREATE TRIGGER t AFTER UPSERT ON view('v')/x DO f()");
  Alcotest.(check bool) "missing action" true
    (bad "CREATE TRIGGER t AFTER UPDATE ON view('v')/x DO ");
  Alcotest.(check bool) "bad path" true (bad "CREATE TRIGGER t AFTER UPDATE ON $x DO f()");
  Alcotest.(check bool) "unbalanced args" true
    (bad "CREATE TRIGGER t AFTER UPDATE ON view('v')/x DO f(NEW_NODE")

let () =
  Alcotest.run "trigview-runtime"
    [ ( "trigger language",
        [ Alcotest.test_case "parser" `Quick test_trigger_parser;
          Alcotest.test_case "parse errors" `Quick test_trigger_parser_errors;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "2.2 Notify trigger" `Quick test_notify_fires_on_price_update;
          Alcotest.test_case "4.1 nested insert" `Quick test_nested_insert_fires_update_trigger;
          Alcotest.test_case "insert + delete events" `Quick test_insert_and_delete_triggers;
          Alcotest.test_case "count condition" `Quick test_count_condition;
          Alcotest.test_case "no-op + irrelevant-column suppression" `Quick
            test_no_op_statement_suppressed;
          Alcotest.test_case "multi-row statement" `Quick test_multi_row_statement_fires_per_node;
          Alcotest.test_case "fallback condition" `Quick test_fallback_condition_path;
          Alcotest.test_case "nested count condition (5.1)" `Quick test_nested_count_condition;
          Alcotest.test_case "nested count zero-children" `Quick
            test_nested_count_zero_children_edge;
        ] );
      ( "grouping",
        [ Alcotest.test_case "grouped shares SQL triggers" `Quick
            test_grouping_shares_sql_triggers;
          Alcotest.test_case "ungrouped multiplies them" `Quick
            test_ungrouped_multiplies_sql_triggers;
          Alcotest.test_case "grouped dispatch" `Quick test_grouped_dispatch_correctness;
        ] );
      ( "management",
        [ Alcotest.test_case "errors reported" `Quick test_errors_reported;
          Alcotest.test_case "Theorem 1 rejection" `Quick test_theorem_1_rejection;
          Alcotest.test_case "Figure 16 structure" `Quick test_figure_16_structure;
          Alcotest.test_case "drop trigger" `Quick test_drop_trigger;
          Alcotest.test_case "generated SQL" `Quick test_generated_sql_inspectable;
          Alcotest.test_case "stats" `Quick test_stats_counters;
          Alcotest.test_case "literal action args" `Quick test_literal_action_args;
          Alcotest.test_case "drop-trigger constants hygiene" `Quick
            test_drop_trigger_constants_hygiene;
        ] );
    ]
