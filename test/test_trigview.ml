(* Tests for the paper's core algorithms: event pushdown (Appendix C),
   CreateAKGraph (Figure 8) and CreateANGraph (Figure 12), checked against a
   naive recompute-and-diff oracle implementing Definitions 2 and 3
   literally. *)

open Relkit
open Xqgm

let v_str = Fixtures.v_str
let v_float = Fixtures.v_float

let schema_of = function
  | "product" -> Fixtures.product_schema
  | "vendor" -> Fixtures.vendor_schema
  | name -> Alcotest.failf "unknown table %s" name

let monitored () =
  { Trigview.Angraph.graph = Fixtures.product_level ();
    node_col = "product_elem";
    key = [ "pname" ];
  }

(* --- event pushdown --- *)

let has_event events table event =
  List.exists
    (fun e ->
      e.Trigview.Event_pushdown.ev_table = table
      && e.Trigview.Event_pushdown.ev_event = event)
    events

let test_events_update_on_product_path () =
  (* §3.3: UPDATE on /product can be caused by UPDATE on product, or by
     INSERT/UPDATE/DELETE on vendor. *)
  let events =
    Trigview.Event_pushdown.source_events (Fixtures.product_level ()) Database.Update
  in
  Alcotest.(check bool) "product update" true (has_event events "product" Database.Update);
  Alcotest.(check bool) "vendor insert" true (has_event events "vendor" Database.Insert);
  Alcotest.(check bool) "vendor update" true (has_event events "vendor" Database.Update);
  Alcotest.(check bool) "vendor delete" true (has_event events "vendor" Database.Delete)

let test_events_insert_on_product_path () =
  (* A product node can appear because the count predicate starts holding:
     vendor inserts/updates must be monitored. *)
  let events =
    Trigview.Event_pushdown.source_events (Fixtures.product_level ()) Database.Insert
  in
  Alcotest.(check bool) "vendor insert" true (has_event events "vendor" Database.Insert);
  Alcotest.(check bool) "vendor update" true (has_event events "vendor" Database.Update)

let test_events_unrelated_table_excluded () =
  (* A path over product alone never monitors vendor. *)
  let g =
    Op.project
      ~defs:[ ("pid", Expr.Col "pid"); ("pname", Expr.Col "pname") ]
      (Op.table "product" [ ("pid", "pid"); ("pname", "pname") ])
  in
  let events = Trigview.Event_pushdown.source_events g Database.Update in
  Alcotest.(check bool) "no vendor events" false
    (List.exists (fun e -> e.Trigview.Event_pushdown.ev_table = "vendor") events)

let test_relevant_columns () =
  let cols =
    Trigview.Event_pushdown.relevant_columns (Fixtures.product_level ()) ~table:"product"
  in
  Alcotest.(check (list string)) "product columns scanned" [ "pid"; "pname" ]
    (List.sort compare cols)

(* --- helpers: capture a trigger context for arbitrary DML --- *)

let capture_ctx db ~table ~event dml =
  let captured = ref None in
  Database.create_trigger db
    { Database.trig_name = "capture!";
      trig_table = table;
      trig_event = event;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun tc -> captured := Some (Ra_eval.ctx_of_trigger tc));
    };
  dml ();
  Database.drop_trigger db "capture!";
  match !captured with
  | Some tctx -> tctx
  | None -> Alcotest.fail "statement did not fire"

(* Materialize the monitored level as (key string, node) pairs. *)
let view_snapshot ctx =
  let rel = Eval.eval ctx (Fixtures.product_level ()) in
  let ki = Eval.col_index rel "pname" and ni = Eval.col_index rel "product_elem" in
  List.map
    (fun row ->
      match row.(ki), row.(ni) with
      | Xval.Atom k, Xval.Node n -> (Value.to_string k, n)
      | _ -> Alcotest.fail "unexpected shape")
    rel.Eval.rows

(* The oracle: Definitions 2 and 3, literally. *)
type diff = {
  updated : (string * Xmlkit.Xml.t * Xmlkit.Xml.t) list;  (* key, old, new *)
  inserted : (string * Xmlkit.Xml.t) list;
  deleted : (string * Xmlkit.Xml.t) list;
}

let oracle_diff before after =
  let updated =
    List.filter_map
      (fun (k, old_n) ->
        match List.assoc_opt k after with
        | Some new_n when not (Xmlkit.Xml.equal old_n new_n) -> Some (k, old_n, new_n)
        | _ -> None)
      before
  in
  let inserted =
    List.filter (fun (k, _) -> not (List.mem_assoc k before)) after
  in
  let deleted = List.filter (fun (k, _) -> not (List.mem_assoc k after)) before in
  { updated; inserted; deleted }

(* Evaluate a G_affected graph and decode its rows. *)
let eval_affected tctx (an : Trigview.Angraph.t) =
  let rel = Eval.eval tctx an.Trigview.Angraph.graph in
  let ki = Eval.col_index rel "pname" in
  let oi = Eval.col_index rel an.Trigview.Angraph.old_col in
  let ni = Eval.col_index rel an.Trigview.Angraph.new_col in
  List.map
    (fun row ->
      let key = match row.(ki) with Xval.Atom k -> Value.to_string k | _ -> "?" in
      let node = function
        | Xval.Node n -> Some n
        | Xval.Atom Value.Null -> None
        | v -> Alcotest.failf "unexpected node value %s" (Xval.to_string v)
      in
      (key, node row.(oi), node row.(ni)))
    rel.Eval.rows

(* Per-event comparison helper used in the named tests below. *)
let affected_for db ~table ~event ~xml_event ?check ?cond dml =
  let before = view_snapshot (Ra_eval.ctx_of_db db) in
  let tctx = capture_ctx db ~table ~event dml in
  let after = view_snapshot (Ra_eval.ctx_of_db db) in
  let an =
    match
      Trigview.Angraph.create ~schema_of ~event:xml_event ~table
        ~check:(Option.value check ~default:Trigview.Angraph.Compare_nodes)
        ?cond (monitored ())
    with
    | Some an -> an
    | None -> Alcotest.fail "no affected-node graph"
  in
  (eval_affected tctx an, oracle_diff before after)

(* --- the §4.1 nested-predicate example --- *)

let test_nested_predicate_insert_detected () =
  (* Insert (Amazon, P2, 500): LCD 19 gains a third vendor, so the LCD 19
     product node is UPDATED.  Computing changes from the transition table
     alone would see count = 1 < 2 and miss it — the motivating bug. *)
  let db = Fixtures.mk_db () in
  let rows, d =
    affected_for db ~table:"vendor" ~event:Database.Insert ~xml_event:Database.Update
      (fun () -> Fixtures.insert_vendor db ~vid:"Amazon" ~pid:"P2" ~price:500.0)
  in
  Alcotest.(check int) "oracle sees one update" 1 (List.length d.updated);
  match rows with
  | [ ("LCD 19", Some old_n, Some new_n) ] ->
    Alcotest.(check int) "old has 2 vendors" 2
      (List.length (Xmlkit.Xml.children_named old_n "vendor"));
    Alcotest.(check int) "new has 3 vendors" 3
      (List.length (Xmlkit.Xml.children_named new_n "vendor"))
  | _ -> Alcotest.failf "expected exactly the LCD 19 update, got %d rows" (List.length rows)

let test_transition_only_evaluation_misses_it () =
  (* Fidelity check for the paper's motivation: evaluating the view over the
     transition table alone (vendor := Delta) produces no rows, because the
     count predicate sees 1. *)
  let db = Fixtures.mk_db () in
  let tctx =
    capture_ctx db ~table:"vendor" ~event:Database.Insert (fun () ->
        Fixtures.insert_vendor db ~vid:"Amazon" ~pid:"P2" ~price:500.0)
  in
  (* rebuild the product level with the vendor scan bound to Delta *)
  let product = Op.table "product" [ ("pid", "pid"); ("pname", "pname") ] in
  let vendor =
    Op.table ~binding:Op.Delta "vendor" [ ("vid", "vid"); ("pid", "v_pid"); ("price", "price") ]
  in
  let joined = Op.join ~pred:(Expr.eq (Expr.Col "pid") (Expr.Col "v_pid")) product vendor in
  let grouped =
    Op.group_by ~keys:[ "pname" ] ~aggs:[ ("cnt", Expr.Count) ] joined
  in
  let filtered =
    Op.select ~pred:(Expr.Binop (Relkit.Ra.Ge, Expr.Col "cnt", Expr.Const (Fixtures.v_int 2)))
      grouped
  in
  let rel = Eval.eval tctx filtered in
  Alcotest.(check int) "naive propagate finds nothing" 0 (List.length rel.Eval.rows)

(* --- named event scenarios --- *)

let test_price_update_yields_update () =
  let db = Fixtures.mk_db () in
  let rows, d =
    affected_for db ~table:"vendor" ~event:Database.Update ~xml_event:Database.Update
      (fun () -> Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0)
  in
  Alcotest.(check int) "oracle" 1 (List.length d.updated);
  match rows with
  | [ ("CRT 15", Some o, Some n) ] ->
    let price node = Xmlkit.Xpath.select_strings node "/vendor[vid='Amazon']/price" in
    Alcotest.(check (list string)) "old" [ "100.0" ] (price o);
    Alcotest.(check (list string)) "new" [ "75.0" ] (price n)
  | _ -> Alcotest.fail "expected one CRT 15 update"

let test_view_insert_event () =
  let db = Fixtures.mk_db () in
  (* OLED starts with one vendor (below threshold), gains a second. *)
  Database.insert_rows db ~table:"product" [ [| v_str "P4"; v_str "OLED"; v_str "LG" |] ];
  Fixtures.insert_vendor db ~vid:"Amazon" ~pid:"P4" ~price:900.0;
  let rows, d =
    affected_for db ~table:"vendor" ~event:Database.Insert ~xml_event:Database.Insert
      (fun () -> Fixtures.insert_vendor db ~vid:"Bestbuy" ~pid:"P4" ~price:950.0)
  in
  Alcotest.(check int) "oracle insert" 1 (List.length d.inserted);
  match rows with
  | [ ("OLED", None, Some n) ] ->
    Alcotest.(check int) "2 vendors" 2 (List.length (Xmlkit.Xml.children_named n "vendor"))
  | _ -> Alcotest.fail "expected OLED insertion"

let test_view_delete_event () =
  let db = Fixtures.mk_db () in
  let rows, d =
    affected_for db ~table:"vendor" ~event:Database.Delete ~xml_event:Database.Delete
      (fun () -> Fixtures.delete_vendor db ~vid:"Buy.com" ~pid:"P2")
  in
  Alcotest.(check int) "oracle delete" 1 (List.length d.deleted);
  match rows with
  | [ ("LCD 19", Some o, None) ] ->
    Alcotest.(check int) "old had 2 vendors" 2
      (List.length (Xmlkit.Xml.children_named o "vendor"))
  | _ -> Alcotest.fail "expected LCD 19 deletion"

let test_threshold_crossing_is_not_update () =
  (* When a node leaves the view, an UPDATE trigger must not fire for it
     (Definition 2 requires presence on both sides). *)
  let db = Fixtures.mk_db () in
  let rows, d =
    affected_for db ~table:"vendor" ~event:Database.Delete ~xml_event:Database.Update
      (fun () -> Fixtures.delete_vendor db ~vid:"Buy.com" ~pid:"P2")
  in
  Alcotest.(check int) "oracle sees no update" 0 (List.length d.updated);
  Alcotest.(check int) "no update rows" 0 (List.length rows)

let test_product_update_affects_node () =
  (* Renaming a product merges/splits groups; monitor product UPDATE. *)
  let db = Fixtures.mk_db () in
  let rows, d =
    affected_for db ~table:"product" ~event:Database.Update ~xml_event:Database.Update
      (fun () ->
        ignore
          (Database.update_rows db ~table:"product"
             ~where:(fun r -> Value.equal r.(0) (v_str "P3"))
             ~set:(fun r -> [| r.(0); v_str "LCD 19"; r.(2) |])))
  in
  (* P3's vendors move from CRT 15 to LCD 19: both groups change value. *)
  Alcotest.(check int) "oracle updates" (List.length d.updated) (List.length rows);
  Alcotest.(check bool) "both groups" true (List.length rows = 2)

let test_multi_row_statement () =
  (* One statement updating several vendors: a single firing computes all
     affected nodes. *)
  let db = Fixtures.mk_db () in
  let rows, d =
    affected_for db ~table:"vendor" ~event:Database.Update ~xml_event:Database.Update
      (fun () ->
        ignore
          (Database.update_rows db ~table:"vendor"
             ~where:(fun _ -> true)
             ~set:(fun r -> [| r.(0); r.(1); Value.add r.(2) (v_float 5.0) |])))
  in
  Alcotest.(check int) "oracle" 2 (List.length d.updated);
  Alcotest.(check int) "both products updated" 2 (List.length rows)

let test_no_op_update_suppressed () =
  (* An UPDATE that does not change any row value must produce nothing (the
     pruned-transition-table argument of Appendix F.1).  The DML layer now
     drops value-identical pairs before the firing path, so the statement
     never even reaches AFTER triggers — strictly stronger than the old
     node-comparison suppression. *)
  let db = Fixtures.mk_db () in
  let fired = ref 0 in
  Database.create_trigger db
    { Database.trig_name = "watch";
      trig_table = "vendor";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun _ -> incr fired);
    };
  let matched =
    Database.update_rows db ~table:"vendor"
      ~where:(fun _ -> true)
      ~set:(fun r -> Array.copy r)
  in
  Database.drop_trigger db "watch";
  Alcotest.(check bool) "rows matched" true (matched > 0);
  Alcotest.(check int) "suppressed" 0 !fired

let test_injective_skip_check_agrees () =
  (* The catalog view is injective w.r.t. vendor: with pruned transition
     tables (single-row genuine update here) No_check must agree with
     Compare_nodes. *)
  let db = Fixtures.mk_db () in
  let rows, _ =
    affected_for db ~table:"vendor" ~event:Database.Update ~xml_event:Database.Update
      ~check:Trigview.Angraph.No_check (fun () ->
        Fixtures.update_vendor_price db ~vid:"Bestbuy" ~pid:"P3" ~price:99.0)
  in
  Alcotest.(check int) "one update without the check" 1 (List.length rows)

let test_condition_filters_pairs () =
  (* WHERE OLD_NODE/@name = 'CRT 15' (§2.2's Notify trigger), compiled to a
     condition over the exposed pname column of the old side. *)
  let db = Fixtures.mk_db () in
  let cond = Expr.eq (Expr.Col "old$pname") (Expr.Const (v_str "CRT 15")) in
  let rows_match, _ =
    affected_for db ~table:"vendor" ~event:Database.Update ~xml_event:Database.Update
      ~cond (fun () -> Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0)
  in
  Alcotest.(check int) "CRT 15 matches" 1 (List.length rows_match);
  let db = Fixtures.mk_db () in
  let rows_no_match, _ =
    affected_for db ~table:"vendor" ~event:Database.Update ~xml_event:Database.Update
      ~cond (fun () -> Fixtures.update_vendor_price db ~vid:"Buy.com" ~pid:"P2" ~price:75.0)
  in
  Alcotest.(check int) "LCD 19 does not" 0 (List.length rows_no_match)

(* --- the Appendix E.1 min-price spurious-update scenario --- *)

let minprice_monitored () =
  { Trigview.Angraph.graph = Fixtures.minprice_product_level ();
    node_col = "product_elem";
    key = [ "pname" ];
  }

let eval_affected_minprice tctx (an : Trigview.Angraph.t) =
  let rel = Eval.eval tctx an.Trigview.Angraph.graph in
  List.length rel.Eval.rows

let test_minprice_spurious_update_suppressed () =
  let db = Fixtures.mk_db () in
  (* P2 ("LCD 19") has prices 200 and 180; raising the non-minimum price from
     200 to 190 keeps min = 180: no XML update. *)
  let tctx =
    capture_ctx db ~table:"vendor" ~event:Database.Update (fun () ->
        Fixtures.update_vendor_price db ~vid:"Buy.com" ~pid:"P2" ~price:190.0)
  in
  let check =
    match
      Injective.analyze ~table:"vendor" ~schema_of (Fixtures.minprice_product_level ())
    with
    | Injective.Agg_only cols -> Trigview.Angraph.Compare_cols cols
    | v -> Alcotest.failf "expected Agg_only, got %s" (Injective.verdict_to_string v)
  in
  let an =
    Option.get
      (Trigview.Angraph.create ~schema_of ~event:Database.Update ~table:"vendor" ~check
         (minprice_monitored ()))
  in
  Alcotest.(check int) "suppressed by aggregate comparison" 0 (eval_affected_minprice tctx an);
  (* Without any check the affected-keys superset would report it. *)
  let an_unchecked =
    Option.get
      (Trigview.Angraph.create ~schema_of ~event:Database.Update ~table:"vendor"
         ~check:Trigview.Angraph.No_check (minprice_monitored ()))
  in
  Alcotest.(check int) "would be spurious without the check" 1
    (eval_affected_minprice tctx an_unchecked)

let test_minprice_real_update_detected () =
  let db = Fixtures.mk_db () in
  let tctx =
    capture_ctx db ~table:"vendor" ~event:Database.Update (fun () ->
        Fixtures.update_vendor_price db ~vid:"Bestbuy" ~pid:"P2" ~price:50.0)
  in
  let an =
    Option.get
      (Trigview.Angraph.create ~schema_of ~event:Database.Update ~table:"vendor"
         ~check:(Trigview.Angraph.Compare_cols [ "minp"; "pname" ])
         (minprice_monitored ()))
  in
  Alcotest.(check int) "min changed: detected" 1 (eval_affected_minprice tctx an)

(* --- property test: full differential against the oracle --- *)

type dml_op =
  | Upd_price of int * float
  | Ins_vendor of int * int * float
  | Del_vendor of int

let dml_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun i p -> Upd_price (i, float_of_int p)) (int_range 0 100) (int_range 10 400);
        map3
          (fun v p price -> Ins_vendor (v, p, float_of_int price))
          (int_range 0 1000) (int_range 0 2) (int_range 10 400);
        map (fun i -> Del_vendor i) (int_range 0 100);
      ])

let apply_dml db op ~on_fire =
  let vendors () = Table.to_rows (Database.get_table db "vendor") in
  match op with
  | Upd_price (i, price) ->
    let vs = vendors () in
    if vs = [] then None
    else begin
      let victim = List.nth vs (i mod List.length vs) in
      let tctx =
        capture_ctx db ~table:"vendor" ~event:Database.Update (fun () ->
            ignore
              (Database.update_rows db ~table:"vendor"
                 ~where:(fun r -> r == victim)
                 ~set:(fun r -> [| r.(0); r.(1); v_float price |])))
      in
      on_fire tctx;
      Some ()
    end
  | Ins_vendor (v, p, price) ->
    let vid = Printf.sprintf "V%d" v in
    let pid = Printf.sprintf "P%d" (1 + (p mod 3)) in
    if Table.find_pk (Database.get_table db "vendor") [ v_str vid; v_str pid ] <> None then
      None
    else begin
      let tctx =
        capture_ctx db ~table:"vendor" ~event:Database.Insert (fun () ->
            Fixtures.insert_vendor db ~vid ~pid ~price)
      in
      on_fire tctx;
      Some ()
    end
  | Del_vendor i ->
    let vs = vendors () in
    if vs = [] then None
    else begin
      let victim = List.nth vs (i mod List.length vs) in
      let tctx =
        capture_ctx db ~table:"vendor" ~event:Database.Delete (fun () ->
            ignore (Database.delete_rows db ~table:"vendor" ~where:(fun r -> r == victim)))
      in
      on_fire tctx;
      Some ()
    end

let prop_differential_vs_oracle =
  (* Apply random DML statements to the paper's database; after each firing,
     G_affected for each XML event must match the recompute-and-diff oracle
     exactly (same keys, same OLD/NEW node values). *)
  QCheck.Test.make ~name:"G_affected = recompute-and-diff oracle" ~count:60
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 6) dml_gen))
    (fun ops ->
      let db = Fixtures.mk_db () in
      let ok = ref true in
      List.iter
        (fun op ->
          let before = view_snapshot (Ra_eval.ctx_of_db db) in
          ignore
            (apply_dml db op ~on_fire:(fun tctx ->
                 let after = view_snapshot (Ra_eval.ctx_of_db db) in
                 let d = oracle_diff before after in
                 let xml n = Xmlkit.Xml.to_string ~canonical:true n in
                 let check ~xml_event expected =
                   match
                     Trigview.Angraph.create ~schema_of ~event:xml_event ~table:"vendor"
                       ~check:Trigview.Angraph.Compare_nodes (monitored ())
                   with
                   | None -> ok := false
                   | Some an ->
                     let rows = eval_affected tctx an in
                     let norm =
                       List.sort compare
                         (List.map
                            (fun (k, o, n) -> (k, Option.map xml o, Option.map xml n))
                            rows)
                     in
                     if norm <> List.sort compare expected then ok := false
                 in
                 (* The relational event is what fired; the XML event is what
                    the trigger monitors — all three must agree with the
                    oracle for every firing. *)
                 check ~xml_event:Database.Update
                   (List.map (fun (k, o, n) -> (k, Some (xml o), Some (xml n))) d.updated);
                 check ~xml_event:Database.Insert
                   (List.map (fun (k, n) -> (k, None, Some (xml n))) d.inserted);
                 check ~xml_event:Database.Delete
                   (List.map (fun (k, o) -> (k, Some (xml o), None)) d.deleted))))
        ops;
      !ok)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_differential_vs_oracle ]

let () =
  Alcotest.run "trigview-core"
    [ ( "event_pushdown",
        [ Alcotest.test_case "update on /product" `Quick test_events_update_on_product_path;
          Alcotest.test_case "insert on /product" `Quick test_events_insert_on_product_path;
          Alcotest.test_case "unrelated table excluded" `Quick
            test_events_unrelated_table_excluded;
          Alcotest.test_case "relevant columns" `Quick test_relevant_columns;
        ] );
      ( "nested_predicates",
        [ Alcotest.test_case "4.1 insert detected" `Quick test_nested_predicate_insert_detected;
          Alcotest.test_case "naive propagate misses it" `Quick
            test_transition_only_evaluation_misses_it;
        ] );
      ( "angraph",
        [ Alcotest.test_case "price update" `Quick test_price_update_yields_update;
          Alcotest.test_case "view-level insert" `Quick test_view_insert_event;
          Alcotest.test_case "view-level delete" `Quick test_view_delete_event;
          Alcotest.test_case "threshold crossing is not update" `Quick
            test_threshold_crossing_is_not_update;
          Alcotest.test_case "product rename" `Quick test_product_update_affects_node;
          Alcotest.test_case "multi-row statement" `Quick test_multi_row_statement;
          Alcotest.test_case "no-op update suppressed" `Quick test_no_op_update_suppressed;
          Alcotest.test_case "injective skip-check" `Quick test_injective_skip_check_agrees;
          Alcotest.test_case "condition filters" `Quick test_condition_filters_pairs;
        ] );
      ( "minprice (Appendix E.1/F)",
        [ Alcotest.test_case "spurious update suppressed" `Quick
            test_minprice_spurious_update_suppressed;
          Alcotest.test_case "real update detected" `Quick test_minprice_real_update_detected;
        ] );
      ("properties", qcheck_tests);
    ]
