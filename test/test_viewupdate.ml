(* Updatable-view subsystem tests: view-DML parsing, the catalog goldens
   (accepted updates, ambiguity rejection with candidate listings, the
   programmable-strategy resolutions, dynamic side-effect rejection), audit
   provenance of view-originated statements, crash recovery of view DML, and
   the qcheck differential property over the Table-2 workload — view DML on
   one instance must leave the extracted document and the trigger firings
   identical to direct base DML on a twin, under all four runtime strategies,
   compiled and interpreted. *)

open Relkit
module Runtime = Trigview.Runtime
module Vu = Viewupdate
module Xml = Xmlkit.Xml
module W = Workloadlib.Workload

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let catalog_view =
  {|<catalog>
    {for $prodname in distinct(view("default")/product/row/pname)
     let $products := view("default")/product/row[./pname = $prodname]
     let $vendors := view("default")/vendor/row[./pid = $products/pid]
     where count($vendors) >= 2
     return <product name="{$prodname}">
       {for $vendor in $vendors return <vendor>{$vendor/*}</vendor>}
     </product>}
  </catalog>|}

let mk_mgr () =
  let db = Fixtures.mk_db () in
  let mgr = Runtime.create db in
  Runtime.define_view mgr ~name:"catalog" catalog_view;
  mgr

let doc_of mgr name =
  match Runtime.find_view mgr name with
  | Some v -> Xquery.Compile.materialize (Ra_eval.ctx_of_db (Runtime.database mgr)) v
  | None -> Alcotest.failf "view %s not published" name

let table_rows mgr name =
  Table.to_rows (Database.get_table (Runtime.database mgr) name)

(* --- parsing --- *)

let test_parse () =
  (match Vu.parse "REPLACE NODE view('v')/a/b[./id = 'x'] WITH <b><id>x</id></b>" with
  | Vu.Replace_node _ -> ()
  | _ -> Alcotest.fail "expected Replace_node");
  (match Vu.parse "insert node <b/> into view('v')/a" with
  | Vu.Insert_node _ -> ()
  | _ -> Alcotest.fail "expected Insert_node (case-insensitive)");
  (match Vu.parse "DELETE NODE view('v')/a/b WHERE ./id = 'x' and ./p = 'y'" with
  | Vu.Delete_node { where = Some _; _ } -> ()
  | _ -> Alcotest.fail "expected Delete_node with condition");
  (* the WITH keyword must be found outside predicates and quotes *)
  (match Vu.parse "REPLACE NODE view('v')/a[./x = 'WITH'] WITH <a/>" with
  | Vu.Replace_node { path; _ } ->
    Alcotest.(check int) "one step" 1 (List.length path.Xquery.Ast.steps)
  | _ -> Alcotest.fail "expected Replace_node");
  let expect_error text =
    match Vu.parse text with
    | exception Vu.Error _ -> ()
    | _ -> Alcotest.failf "parse %S should have failed" text
  in
  expect_error "TRUNCATE NODE view('v')/a";
  expect_error "INSERT NODE <a/> view('v')/a";
  expect_error "REPLACE NODE view('v')/a WITH not-xml";
  expect_error "INSERT NODE <a><b></a> INTO view('v')/a";
  (* a comment containing markup must not corrupt the literal scan: the
     stray </b> inside it used to count toward element depth and cut the
     literal short of the INTO keyword *)
  match Vu.parse "INSERT NODE <a><!-- see <b>note</b> --><x>1</x></a> INTO view('v')/a" with
  | Vu.Insert_node { xml; _ } ->
    Alcotest.(check bool) "comment skipped, content kept" true
      (contains (Xml.to_string xml) "<x>1</x>")
  | _ -> Alcotest.fail "expected Insert_node for a commented literal"

(* --- accepted updates --- *)

let test_replace_vendor_price () =
  let mgr = mk_mgr () in
  let p =
    Vu.execute mgr
      "REPLACE NODE view('catalog')/product/vendor[./vid = 'Amazon'] WITH \
       <vendor><vid>Amazon</vid><pid>P1</pid><price>95</price></vendor>"
  in
  Alcotest.(check int) "one base statement" 1 (List.length p.Vu.p_ops);
  Alcotest.(check string) "anchored to vendor" "vendor" p.Vu.p_anchor;
  (match Table.find_pk
           (Database.get_table (Runtime.database mgr) "vendor")
           [ Value.String "Amazon"; Value.String "P1" ]
  with
  | Some row -> Alcotest.(check bool) "price written" true (Value.equal row.(2) (Value.Float 95.0))
  | None -> Alcotest.fail "row vanished");
  Alcotest.(check bool) "document reflects the update" true
    (contains (Xml.to_string (doc_of mgr "catalog")) "<price>95.0</price>")

let test_replace_noop () =
  let mgr = mk_mgr () in
  let before = Xml.to_string (doc_of mgr "catalog") in
  let p =
    Vu.execute mgr
      "REPLACE NODE view('catalog')/product/vendor[./vid = 'Amazon'] WITH \
       <vendor><vid>Amazon</vid><pid>P1</pid><price>100</price></vendor>"
  in
  Alcotest.(check int) "no base statements" 0 (List.length p.Vu.p_ops);
  Alcotest.(check string) "document unchanged" before (Xml.to_string (doc_of mgr "catalog"))

(* Changing the product's name: the <product> level is grouped (not
   key-anchored), but only one product row carries pname 'LCD 19', so the
   update auto-resolves to that row; the name is the level key, so the static
   check is inconclusive and the dynamic differential check must accept. *)
let test_replace_unanchored_unique () =
  let mgr = mk_mgr () in
  let p =
    Vu.execute mgr
      {|REPLACE NODE view('catalog')/product[@name = 'LCD 19'] WITH <product name="LCD 19in"><vendor><vid>Bestbuy</vid><pid>P2</pid><price>180.0</price></vendor><vendor><vid>Buy.com</vid><pid>P2</pid><price>200.0</price></vendor></product>|}
  in
  Alcotest.(check int) "one base statement" 1 (List.length p.Vu.p_ops);
  Alcotest.(check bool) "resolved to the single candidate" true
    (List.exists (fun v -> contains v "single product row") p.Vu.p_verdict);
  Alcotest.(check bool) "renamed in the document" true
    (contains (Xml.to_string (doc_of mgr "catalog")) {|name="LCD 19in"|})

let test_insert_vendor () =
  let mgr = mk_mgr () in
  let p =
    Vu.execute mgr
      "INSERT NODE <vendor><vid>Walmart</vid><pid>P3</pid><price>110</price></vendor> \
       INTO view('catalog')/product[@name = 'CRT 15']"
  in
  Alcotest.(check int) "one base statement" 1 (List.length p.Vu.p_ops);
  Alcotest.(check int) "vendor row added" 8 (List.length (table_rows mgr "vendor"));
  Alcotest.(check bool) "node visible" true
    (contains (Xml.to_string (doc_of mgr "catalog")) "<vid>Walmart</vid>")

let test_insert_errors () =
  let mgr = mk_mgr () in
  let expect_error frag text =
    match Vu.execute mgr text with
    | exception Vu.Error msg ->
      Alcotest.(check bool) (Printf.sprintf "error mentions %S" frag) true (contains msg frag)
    | _ -> Alcotest.failf "%S should have been refused" text
  in
  expect_error "primary key"
    "INSERT NODE <vendor><vid>Amazon</vid><pid>P1</pid><price>1</price></vendor> INTO \
     view('catalog')/product[@name = 'CRT 15']";
  expect_error "foreign key"
    "INSERT NODE <vendor><vid>Walmart</vid><pid>P9</pid><price>1</price></vendor> INTO \
     view('catalog')/product[@name = 'CRT 15']";
  expect_error "no underlying column"
    "INSERT NODE <vendor><vid>W</vid><pid>P1</pid><price>1</price><note>hi</note></vendor> \
     INTO view('catalog')/product[@name = 'CRT 15']"

(* --- ambiguity: rejection and the programmable strategies --- *)

let delete_crt = "DELETE NODE view('catalog')/product[@name = 'CRT 15']"

let test_ambiguous_delete_rejected () =
  let mgr = mk_mgr () in
  match Vu.execute mgr delete_crt with
  | _ -> Alcotest.fail "ambiguous delete must be rejected"
  | exception Vu.Rejected d ->
    Alcotest.(check int) "two candidate rows" 2 (List.length d.Vu.d_candidates);
    let pids =
      List.map (fun (_, row) -> Value.to_string row.(0)) d.Vu.d_candidates |> List.sort compare
    in
    Alcotest.(check (list string)) "P1 and P3 listed" [ "P1"; "P3" ] pids;
    Alcotest.(check int) "database untouched" 3 (List.length (table_rows mgr "product"));
    let text = Vu.render_diagnostic d in
    Alcotest.(check bool) "diagnostic names the statement" true (contains text delete_crt);
    Alcotest.(check bool) "diagnostic suggests strategies" true (contains text "strategy")

let test_all_candidates_strategy () =
  let mgr = mk_mgr () in
  Vu.set_strategy mgr ~view:"catalog" Vu.All_candidates;
  Fun.protect ~finally:(fun () -> Vu.clear_strategy mgr ~view:"catalog") @@ fun () ->
  let p = Vu.execute mgr delete_crt in
  (* P1 and P3 plus their five vendor offers, vendors deleted first *)
  Alcotest.(check int) "seven base statements" 7 (List.length p.Vu.p_ops);
  Alcotest.(check int) "both products gone" 1 (List.length (table_rows mgr "product"));
  Alcotest.(check int) "their vendors cascaded" 2 (List.length (table_rows mgr "vendor"));
  let doc = Xml.to_string (doc_of mgr "catalog") in
  Alcotest.(check bool) "CRT 15 gone from the document" false (contains doc "CRT 15");
  Alcotest.(check bool) "LCD 19 untouched" true (contains doc "LCD 19")

(* Deleting only the first candidate (P1) leaves 'CRT 15' visible through
   P3's two offers: the node the user deleted would survive, so the
   strategy-resolved translation must still fail verification. *)
let test_first_candidate_rejected_dynamically () =
  let mgr = mk_mgr () in
  match Vu.execute mgr ~strategy:Vu.First_candidate delete_crt with
  | _ -> Alcotest.fail "first-candidate delete must fail verification"
  | exception Vu.Rejected d ->
    Alcotest.(check bool) "side effects reported" true (d.Vu.d_side_effects <> []);
    Alcotest.(check int) "database untouched" 3 (List.length (table_rows mgr "product"));
    Alcotest.(check int) "vendors untouched" 7 (List.length (table_rows mgr "vendor"))

let test_custom_strategy () =
  let mgr = mk_mgr () in
  let seen = ref 0 in
  let strat =
    Vu.Custom
      (fun amb ->
        seen := List.length amb.Vu.amb_candidates;
        Some amb.Vu.amb_candidates)
  in
  let p = Vu.execute mgr ~strategy:strat delete_crt in
  Alcotest.(check int) "hook saw both candidates" 2 !seen;
  Alcotest.(check int) "seven base statements" 7 (List.length p.Vu.p_ops);
  Alcotest.(check int) "both products gone" 1 (List.length (table_rows mgr "product"))

(* Deleting Bestbuy's P2 offer drops 'LCD 19' to one vendor: the whole
   product node disappears from the view, a side effect on an untargeted
   node that the dynamic check must catch. *)
let test_visibility_flip_rejected () =
  let mgr = mk_mgr () in
  match
    Vu.execute mgr
      "DELETE NODE view('catalog')/product/vendor WHERE ./vid = 'Bestbuy' and ./pid = 'P2'"
  with
  | _ -> Alcotest.fail "visibility-flipping delete must be rejected"
  | exception Vu.Rejected d ->
    Alcotest.(check bool) "side effects reported" true (d.Vu.d_side_effects <> []);
    Alcotest.(check int) "vendors untouched" 7 (List.length (table_rows mgr "vendor"))

(* A vendor whose product group fails the count(>= 2) WHERE exists in the
   vendor level relation but not in the document: view DML must refuse to
   touch its base row (it used to update/delete it silently, bypassing the
   ancestor level's predicate). *)
let test_hidden_node_rejected () =
  let mgr = mk_mgr () in
  let db = Runtime.database mgr in
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P4"; Value.String "Plasma 42"; Value.String "LG" |] ];
  Database.insert_rows db ~table:"vendor"
    [ [| Value.String "Newegg"; Value.String "P4"; Value.Float 900.0 |] ];
  Alcotest.(check bool) "the node is not in the document" false
    (contains (Xml.to_string (doc_of mgr "catalog")) "Newegg");
  let expect_no_match text =
    match Vu.execute mgr text with
    | _ -> Alcotest.failf "%S must fail: the node is not in the view" text
    | exception Vu.Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S says no node matches" msg)
        true (contains msg "no node matches")
  in
  expect_no_match
    "REPLACE NODE view('catalog')/product/vendor[./vid = 'Newegg'] WITH \
     <vendor><vid>Newegg</vid><pid>P4</pid><price>850</price></vendor>";
  expect_no_match "DELETE NODE view('catalog')/product/vendor WHERE ./vid = 'Newegg'";
  match
    Table.find_pk (Database.get_table db "vendor") [ Value.String "Newegg"; Value.String "P4" ]
  with
  | Some row ->
    Alcotest.(check bool) "base row untouched" true (Value.equal row.(2) (Value.Float 900.0))
  | None -> Alcotest.fail "the hidden node's base row was deleted"

(* A trigger that raises mid-plan must not leave the verified-atomic
   translation half-applied: the base statements already executed (and the
   one in flight) are compensated, and the database comes back unchanged. *)
let test_midplan_abort_rolls_back () =
  let mgr = mk_mgr () in
  Runtime.register_action mgr ~name:"boom" (fun _ -> failwith "boom");
  Runtime.create_trigger mgr
    "CREATE TRIGGER boom AFTER DELETE ON view('catalog')/product DO boom(OLD_NODE)";
  let before = Xml.to_string (doc_of mgr "catalog") in
  (match Vu.execute mgr ~strategy:Vu.All_candidates delete_crt with
  | _ -> Alcotest.fail "the raising trigger must abort the view update"
  | exception Failure _ -> ()
  | exception Vu.Error msg -> Alcotest.failf "compensation must succeed and re-raise: %s" msg);
  Alcotest.(check int) "products restored" 3 (List.length (table_rows mgr "product"));
  Alcotest.(check int) "vendors restored" 7 (List.length (table_rows mgr "vendor"));
  Alcotest.(check string) "document restored" before (Xml.to_string (doc_of mgr "catalog"))

let test_explain () =
  let mgr = mk_mgr () in
  let before = Xml.to_string (doc_of mgr "catalog") in
  let text =
    Vu.explain mgr
      "REPLACE NODE view('catalog')/product/vendor[./vid = 'Amazon'] WITH \
       <vendor><vid>Amazon</vid><pid>P1</pid><price>95</price></vendor>"
  in
  Alcotest.(check bool) "shows the translated DML" true
    (contains text "UPDATE vendor SET price = 95.0 WHERE vid = 'Amazon' AND pid = 'P1'");
  Alcotest.(check bool) "shows the safety verdict" true (contains text "statically safe");
  Alcotest.(check bool) "not executed" true (contains text "(not executed)");
  Alcotest.(check string) "database untouched" before (Xml.to_string (doc_of mgr "catalog"));
  (* explain never raises on rejection; it renders the diagnostic *)
  let rejected = Vu.explain mgr delete_crt in
  Alcotest.(check bool) "renders the rejection" true (contains rejected "rejected:");
  Alcotest.(check bool) "lists candidates" true (contains rejected "P3")

(* --- audit provenance: view DML tagged in the firing lineage --- *)

let test_audit_origin () =
  let mgr = mk_mgr () in
  Runtime.register_action mgr ~name:"note" (fun _ -> ());
  Runtime.create_trigger mgr
    "CREATE TRIGGER pricewatch AFTER UPDATE ON view('catalog')/product/vendor WHERE \
     NEW_NODE/price < OLD_NODE/price DO note(NEW_NODE)";
  Runtime.set_audit mgr true;
  let stmt =
    "REPLACE NODE view('catalog')/product/vendor[./vid = 'Amazon'] WITH \
     <vendor><vid>Amazon</vid><pid>P1</pid><price>95</price></vendor>"
  in
  ignore (Vu.execute mgr stmt);
  (match Runtime.audit_records mgr with
  | [] -> Alcotest.fail "expected an audit record"
  | r :: _ ->
    Alcotest.(check string) "record carries the view-DML text" stmt r.Obs.Audit.origin);
  let why = Runtime.why mgr 1 in
  Alcotest.(check bool) "why shows the origin line" true (contains why "origin");
  Alcotest.(check bool) "why shows the statement" true (contains why "REPLACE NODE");
  Alcotest.(check bool) "origin is valid in the JSON export" true
    (contains (Runtime.audit_json mgr) "\"origin\"");
  (* direct relational DML carries no origin *)
  Runtime.audit_clear mgr;
  ignore
    (Database.update_pk (Runtime.database mgr) ~table:"vendor"
       ~pk:[ Value.String "Amazon"; Value.String "P1" ]
       ~set:(fun row -> [| row.(0); row.(1); Value.Float 90.0 |]));
  match Runtime.audit_records mgr with
  | r :: _ -> Alcotest.(check string) "direct DML origin empty" "" r.Obs.Audit.origin
  | [] -> Alcotest.fail "expected an audit record for the direct update"

(* --- durability: view DML replays identically after a crash --- *)

let dir_counter = ref 0

let fresh_dir name =
  incr dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trigview_vu_%d_%d_%s" (Unix.getpid ()) !dir_counter name)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  dir

let test_crash_recovery () =
  let dir = fresh_dir "vdml" in
  let mgr = mk_mgr () in
  Runtime.attach_durability mgr ~data_dir:dir;
  let stmt =
    "REPLACE NODE view('catalog')/product/vendor[./vid = 'Amazon'] WITH \
     <vendor><vid>Amazon</vid><pid>P1</pid><price>95</price></vendor>"
  in
  ignore (Vu.execute mgr stmt);
  ignore
    (Vu.execute mgr ~strategy:Vu.All_candidates
       "DELETE NODE view('catalog')/product[@name = 'CRT 15']");
  let doc_before = Xml.to_string ~canonical:true (doc_of mgr "catalog") in
  Runtime.durability_sync mgr;
  (* crash: abandon the runtime, recover from disk (no checkpoint taken
     since the view DML, so the translated statements replay from the WAL) *)
  let r = Runtime.reopen ~data_dir:dir () in
  let mgr' = r.Runtime.runtime in
  Alcotest.(check int) "views re-armed" 1 r.Runtime.rearmed_views;
  Alcotest.(check string) "document identical after recovery" doc_before
    (Xml.to_string ~canonical:true (doc_of mgr' "catalog"));
  Alcotest.(check int) "products recovered" 1 (List.length (table_rows mgr' "product"));
  (* the provenance meta records travelled through recovery *)
  let vdml =
    List.filter (fun (kind, _, _) -> kind = "viewdml") r.Runtime.recovery.Durability.Recovery.meta
  in
  Alcotest.(check bool) "viewdml meta records recovered" true
    (List.exists (fun (_, _, payload) -> payload = stmt) vdml)

(* --- qcheck differential over the Table-2 workload ---

   Random view DML (leaf REPLACE / DELETE / INSERT) applied through the
   translator on instance A; the equivalent base DML applied directly on
   twin instance B.  Whenever A accepts, the extracted documents and the
   trigger firing logs must be identical; whenever A rejects, nothing is
   applied on either side. *)

(* num_satisfied = 1: the workload gives further satisfied triggers negative
   count thresholds, which the Materialized strategy's fallback condition
   evaluator does not parse (a pre-existing limitation orthogonal to view
   DML). *)
let diff_params =
  { W.depth = 3; leaf_tuples = 96; fanout = 8; num_triggers = 6; num_satisfied = 1 }

type wop =
  | Wrepl of int * int  (* leaf pick, new price *)
  | Wdel of int
  | Wins of int * int  (* leaf pick (its parent hosts the new node), price *)

let op_gen =
  QCheck.Gen.(
    frequency
      [ (5, map2 (fun l p -> Wrepl (l, p)) (int_bound 1000) (int_range 1 400));
        (2, map (fun l -> Wdel l) (int_bound 1000));
        (2, map2 (fun l p -> Wins (l, p)) (int_bound 1000) (int_range 1 400));
      ])

let build_instance strategy tuning log =
  let built = W.build diff_params in
  let mgr = Runtime.create ~strategy ~tuning built.W.db in
  Runtime.define_view mgr ~name:"doc" built.W.view_text;
  Runtime.register_action mgr ~name:"record" (fun fi ->
      log :=
        ( fi.Runtime.fi_trigger,
          Database.string_of_event fi.Runtime.fi_event,
          Option.map (Xml.to_string ~canonical:true) fi.Runtime.fi_old,
          Option.map (Xml.to_string ~canonical:true) fi.Runtime.fi_new )
        :: !log);
  W.install_triggers mgr diff_params ~target_name:built.W.top_names.(0);
  (built, mgr)

let differential_case strategy tuning ops =
  let log_a = ref [] and log_b = ref [] in
  let built_a, mgr_a = build_instance strategy tuning log_a in
  let built_b, mgr_b = build_instance strategy tuning log_b in
  let leaf_table = W.table_name diff_params.W.depth in
  let all_leaves = Array.concat (Array.to_list built_a.W.leaf_ids_of_top) in
  let fresh = ref 0 in
  List.iter
    (fun op ->
      let leaf_of i = all_leaves.(i mod Array.length all_leaves) in
      let row_of db leaf =
        Table.find_pk (Database.get_table db leaf_table) [ Value.String leaf ]
      in
      match op with
      | Wrepl (l, price) -> (
        let leaf = leaf_of l in
        let text =
          Printf.sprintf
            "REPLACE NODE view('doc')/e1/e2/e3[./id = '%s'] WITH \
             <e3><id>%s</id><price>%d</price></e3>"
            leaf leaf price
        in
        match Vu.execute mgr_a text with
        | _ ->
          ignore
            (Database.update_pk built_b.W.db ~table:leaf_table ~pk:[ Value.String leaf ]
               ~set:(fun row ->
                 let row = Array.copy row in
                 row.(Array.length row - 1) <- Value.Float (float_of_int price);
                 row))
        | exception (Vu.Error _ | Vu.Rejected _) -> ())
      | Wdel l -> (
        let leaf = leaf_of l in
        let text = Printf.sprintf "DELETE NODE view('doc')/e1/e2/e3[./id = '%s']" leaf in
        match Vu.execute mgr_a text with
        | _ -> ignore (Database.delete_pk built_b.W.db ~table:leaf_table ~pk:[ Value.String leaf ])
        | exception (Vu.Error _ | Vu.Rejected _) -> ())
      | Wins (l, price) -> (
        let leaf = leaf_of l in
        match row_of built_a.W.db leaf with
        | None -> ()
        | Some row ->
          let parent = Value.to_string row.(1) in
          incr fresh;
          let id = Printf.sprintf "new%d" !fresh in
          let text =
            Printf.sprintf
              "INSERT NODE <e3><id>%s</id><price>%d</price></e3> INTO \
               view('doc')/e1/e2[@id = '%s']"
              id price parent
          in
          (match Vu.execute mgr_a text with
          | _ ->
            Database.insert_rows built_b.W.db ~table:leaf_table
              [ [| Value.String id; Value.String parent; Value.Float (float_of_int price) |] ]
          | exception (Vu.Error _ | Vu.Rejected _) -> ())))
    ops;
  let doc mgr = Xml.to_string ~canonical:true (doc_of mgr "doc") in
  if doc mgr_a <> doc mgr_b then
    QCheck.Test.fail_reportf "documents diverged under %s"
      (Runtime.strategy_to_string strategy);
  if List.rev !log_a <> List.rev !log_b then
    QCheck.Test.fail_reportf "trigger firings diverged under %s"
      (Runtime.strategy_to_string strategy);
  true

let differential_test strategy ~compiled =
  let tuning = { Runtime.default_tuning with Runtime.compile_plans = compiled } in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "view DML = direct base DML (%s, %s)"
         (Runtime.strategy_to_string strategy)
         (if compiled then "compiled" else "interpreted"))
    ~count:4
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 2 6) op_gen))
    (differential_case strategy tuning)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    (List.concat_map
       (fun s -> [ differential_test s ~compiled:true; differential_test s ~compiled:false ])
       [ Runtime.Ungrouped; Runtime.Grouped; Runtime.Grouped_agg; Runtime.Materialized ])

let () =
  Alcotest.run "viewupdate"
    [ ( "parse",
        [ Alcotest.test_case "verbs and errors" `Quick test_parse ] );
      ( "accepted updates",
        [ Alcotest.test_case "replace vendor price" `Quick test_replace_vendor_price;
          Alcotest.test_case "no-op replace" `Quick test_replace_noop;
          Alcotest.test_case "unanchored unique candidate" `Quick test_replace_unanchored_unique;
          Alcotest.test_case "insert vendor" `Quick test_insert_vendor;
          Alcotest.test_case "insert errors" `Quick test_insert_errors;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
      ( "ambiguity and strategies",
        [ Alcotest.test_case "ambiguous delete rejected" `Quick test_ambiguous_delete_rejected;
          Alcotest.test_case "all-candidates cascade" `Quick test_all_candidates_strategy;
          Alcotest.test_case "first-candidate fails verification" `Quick
            test_first_candidate_rejected_dynamically;
          Alcotest.test_case "custom hook" `Quick test_custom_strategy;
          Alcotest.test_case "visibility flip rejected" `Quick test_visibility_flip_rejected;
          Alcotest.test_case "hidden node rejected" `Quick test_hidden_node_rejected;
          Alcotest.test_case "mid-plan abort rolls back" `Quick test_midplan_abort_rolls_back;
        ] );
      ( "provenance",
        [ Alcotest.test_case "audit origin" `Quick test_audit_origin;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
        ] );
      ("differential (table 2)", qcheck_tests);
    ]
