(* Integration tests over a three-level hierarchy (region > store > sale)
   compiled from XQuery text — the shape of the paper's benchmark views.

   The heavyweight checks here:
   - every strategy's end-to-end firings agree with a recompute-and-diff
     oracle over random DML streams touching all three tables;
   - the generated plans never fall back to full table scans per update
     (the property behind Figure 23's flat curves), enforced through the
     executor's scan accounting. *)

open Relkit

let region_schema =
  Schema.make ~name:"region"
    ~columns:[ ("rid", Schema.TString); ("rname", Schema.TString) ]
    ~primary_key:[ "rid" ] ()

let store_schema =
  Schema.make ~name:"store"
    ~columns:[ ("sid", Schema.TString); ("rid", Schema.TString); ("city", Schema.TString) ]
    ~primary_key:[ "sid" ]
    ~foreign_keys:
      [ { Schema.fk_columns = [ "rid" ]; fk_table = "region"; fk_ref_columns = [ "rid" ] } ]
    ()

let sale_schema =
  Schema.make ~name:"sale"
    ~columns:
      [ ("saleid", Schema.TString); ("sid", Schema.TString); ("amount", Schema.TFloat) ]
    ~primary_key:[ "saleid" ]
    ~foreign_keys:
      [ { Schema.fk_columns = [ "sid" ]; fk_table = "store"; fk_ref_columns = [ "sid" ] } ]
    ()

let view_text =
  {|<report>
    {for $r in view("default")/region/row
     let $stores := view("default")/store/row[./rid = $r/rid]
     return <region name="{$r/rname}">
       {for $s in $stores
        let $sales := view("default")/sale/row[./sid = $s/sid]
        where count($sales) >= 1
        return <store city="{$s/city}">
          {for $x in $sales return <sale><amt>{$x/amount}</amt></sale>}
        </store>}
     </region>}
  </report>|}

let mk_db () =
  let db = Database.create () in
  List.iter (Database.create_table db) [ region_schema; store_schema; sale_schema ];
  Database.create_index db ~table:"store" ~column:"rid";
  Database.create_index db ~table:"sale" ~column:"sid";
  Database.insert_rows db ~table:"region"
    [ [| Value.String "R1"; Value.String "north" |];
      [| Value.String "R2"; Value.String "south" |];
    ];
  Database.insert_rows db ~table:"store"
    [ [| Value.String "S1"; Value.String "R1"; Value.String "oslo" |];
      [| Value.String "S2"; Value.String "R1"; Value.String "kiruna" |];
      [| Value.String "S3"; Value.String "R2"; Value.String "porto" |];
    ];
  Database.insert_rows db ~table:"sale"
    [ [| Value.String "L1"; Value.String "S1"; Value.Float 10.0 |];
      [| Value.String "L2"; Value.String "S1"; Value.Float 20.0 |];
      [| Value.String "L3"; Value.String "S2"; Value.Float 30.0 |];
      [| Value.String "L4"; Value.String "S3"; Value.Float 40.0 |];
    ];
  db

let schema_of db name = Table.schema (Database.get_table db name)

(* materialize the region level as (name, canonical node text) pairs *)
let snapshot db =
  let view = Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"report" view_text in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  List.map
    (fun r ->
      ( Option.value ~default:"?" (Xmlkit.Xml.attr r "name"),
        Xmlkit.Xml.to_string ~canonical:true r ))
    (Xmlkit.Xml.children_named doc "region")

type change = {
  c_event : Database.event;
  c_key : string;
}

let oracle_changes before after =
  List.filter_map
    (fun (k, old_s) ->
      match List.assoc_opt k after with
      | Some new_s when new_s <> old_s -> Some { c_event = Database.Update; c_key = k }
      | Some _ -> None
      | None -> Some { c_event = Database.Delete; c_key = k })
    before
  @ List.filter_map
      (fun (k, _) ->
        if List.mem_assoc k before then None
        else Some { c_event = Database.Insert; c_key = k })
      after

let setup strategy =
  let db = mk_db () in
  let mgr = Trigview.Runtime.create ~strategy db in
  Trigview.Runtime.define_view mgr ~name:"report" view_text;
  let log = ref [] in
  Trigview.Runtime.register_action mgr ~name:"rec" (fun fi ->
      let key =
        match fi.Trigview.Runtime.fi_new, fi.Trigview.Runtime.fi_old with
        | Some n, _ | None, Some n -> Option.value ~default:"?" (Xmlkit.Xml.attr n "name")
        | None, None -> "?"
      in
      log := { c_event = fi.Trigview.Runtime.fi_event; c_key = key } :: !log);
  List.iter
    (Trigview.Runtime.create_trigger mgr)
    [ "CREATE TRIGGER u AFTER UPDATE ON view('report')/region DO rec(NEW_NODE)";
      "CREATE TRIGGER i AFTER INSERT ON view('report')/region DO rec(NEW_NODE)";
      "CREATE TRIGGER d AFTER DELETE ON view('report')/region DO rec(OLD_NODE)";
    ];
  (db, mgr, log)

let strategies =
  [ Trigview.Runtime.Ungrouped; Trigview.Runtime.Grouped; Trigview.Runtime.Grouped_agg;
    Trigview.Runtime.Materialized;
  ]

(* --- deterministic multi-table scenarios, all strategies --- *)

let check_scenario ?(oracle = true) name dml expected_sorted =
  List.iter
    (fun strategy ->
      let db, _mgr, log = setup strategy in
      let before = snapshot db in
      dml db;
      let after = snapshot db in
      let oracle_changes_sorted =
        List.sort compare
          (List.map
             (fun c -> (Database.string_of_event c.c_event, c.c_key))
             (oracle_changes before after))
      in
      let got =
        List.sort compare
          (List.map (fun c -> (Database.string_of_event c.c_event, c.c_key)) !log)
      in
      (* the whole-scenario diff only matches the per-statement firings when
         the scenario is a single statement *)
      if oracle then
        Alcotest.(check (list (pair string string)))
          (Printf.sprintf "%s [%s] vs oracle" name
             (Trigview.Runtime.strategy_to_string strategy))
          oracle_changes_sorted got;
      (match expected_sorted with
      | Some expected ->
        Alcotest.(check (list (pair string string)))
          (Printf.sprintf "%s [%s] expectation" name
             (Trigview.Runtime.strategy_to_string strategy))
          expected got
      | None -> ()))
    strategies

let test_leaf_update () =
  check_scenario "leaf update"
    (fun db ->
      ignore
        (Database.update_pk db ~table:"sale" ~pk:[ Value.String "L1" ]
           ~set:(fun r -> [| r.(0); r.(1); Value.Float 11.0 |])))
    (Some [ ("UPDATE", "north") ])

let test_middle_insert () =
  check_scenario "store insert (no sales yet: invisible)"
    (fun db ->
      Database.insert_rows db ~table:"store"
        [ [| Value.String "S4"; Value.String "R2"; Value.String "faro" |] ])
    (Some [])

let test_middle_level_appears () =
  check_scenario ~oracle:false "a store becomes visible when its first sale lands"
    (fun db ->
      Database.insert_rows db ~table:"store"
        [ [| Value.String "S4"; Value.String "R2"; Value.String "faro" |] ];
      Database.insert_rows db ~table:"sale"
        [ [| Value.String "L9"; Value.String "S4"; Value.Float 5.0 |] ])
    (Some [ ("UPDATE", "south") ])

let test_region_insert_and_delete () =
  check_scenario "region insert (empty region still appears)"
    (fun db ->
      Database.insert_rows db ~table:"region"
        [ [| Value.String "R3"; Value.String "east" |] ])
    (Some [ ("INSERT", "east") ]);
  (* a cascade is three statements: the sale deletion empties the region
     (an UPDATE of its node), the store deletion changes nothing visible,
     and the region deletion removes the node *)
  check_scenario ~oracle:false "cascade delete of a region"
    (fun db ->
      ignore (Database.delete_rows db ~table:"sale" ~where:(fun r -> Value.equal r.(1) (Value.String "S3")));
      ignore (Database.delete_rows db ~table:"store" ~where:(fun r -> Value.equal r.(1) (Value.String "R2")));
      ignore (Database.delete_pk db ~table:"region" ~pk:[ Value.String "R2" ]))
    (Some [ ("DELETE", "south"); ("UPDATE", "south") ])

let test_store_moves_regions () =
  check_scenario "a store moves between regions (both nodes update)"
    (fun db ->
      ignore
        (Database.update_pk db ~table:"store" ~pk:[ Value.String "S2" ]
           ~set:(fun r -> [| r.(0); Value.String "R2"; r.(2) |])))
    (Some [ ("UPDATE", "north"); ("UPDATE", "south") ])

let test_multi_statement_sequence () =
  check_scenario "mixed statement on sales"
    (fun db ->
      ignore
        (Database.update_rows db ~table:"sale"
           ~where:(fun r -> Value.equal r.(1) (Value.String "S1"))
           ~set:(fun r -> [| r.(0); r.(1); Value.add r.(2) (Value.Float 1.0) |])))
    (Some [ ("UPDATE", "north") ])

(* --- random DML property across strategies --- *)

type op =
  | Upd_sale of int * float
  | Ins_sale of int * int * float
  | Del_sale of int
  | Move_store of int * int

let op_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun i a -> Upd_sale (i, float_of_int a)) (int_range 0 50) (int_range 1 99);
        map3 (fun n s a -> Ins_sale (n, s, float_of_int a)) (int_range 100 140) (int_range 0 3)
          (int_range 1 99);
        map (fun i -> Del_sale i) (int_range 0 50);
        map2 (fun s r -> Move_store (s, r)) (int_range 0 3) (int_range 0 2);
      ])

let apply_op db op =
  let nth_sale i =
    let rows = Table.to_rows (Database.get_table db "sale") in
    match rows with [] -> None | _ -> Some (List.nth rows (i mod List.length rows))
  in
  match op with
  | Upd_sale (i, amount) ->
    Option.iter
      (fun row ->
        ignore
          (Database.update_rows db ~table:"sale"
             ~where:(fun r -> r == row)
             ~set:(fun r -> [| r.(0); r.(1); Value.Float amount |])))
      (nth_sale i)
  | Ins_sale (n, s, amount) ->
    let saleid = Printf.sprintf "N%d" n in
    let sid = Printf.sprintf "S%d" (1 + (s mod 3)) in
    if Table.find_pk (Database.get_table db "sale") [ Value.String saleid ] = None then
      Database.insert_rows db ~table:"sale"
        [ [| Value.String saleid; Value.String sid; Value.Float amount |] ]
  | Del_sale i ->
    Option.iter
      (fun row ->
        ignore (Database.delete_rows db ~table:"sale" ~where:(fun r -> r == row)))
      (nth_sale i)
  | Move_store (s, r) ->
    let sid = Printf.sprintf "S%d" (1 + (s mod 3)) in
    let rid = Printf.sprintf "R%d" (1 + (r mod 2)) in
    ignore
      (Database.update_pk db ~table:"store" ~pk:[ Value.String sid ]
         ~set:(fun row -> [| row.(0); Value.String rid; row.(2) |]))

let prop_all_strategies_match_oracle =
  QCheck.Test.make ~name:"all strategies = oracle over random DML" ~count:25
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 8) op_gen)) (fun ops ->
      List.for_all
        (fun strategy ->
          let db, _mgr, log = setup strategy in
          let ok = ref true in
          List.iter
            (fun op ->
              log := [];
              let before = snapshot db in
              apply_op db op;
              let after = snapshot db in
              let oracle =
                List.sort compare
                  (List.map
                     (fun c -> (Database.string_of_event c.c_event, c.c_key))
                     (oracle_changes before after))
              in
              let got =
                List.sort compare
                  (List.map
                     (fun c -> (Database.string_of_event c.c_event, c.c_key))
                     !log)
              in
              if oracle <> got then ok := false)
            ops;
          !ok)
        [ Trigview.Runtime.Ungrouped; Trigview.Runtime.Grouped; Trigview.Runtime.Grouped_agg ])

(* --- no-full-scan regression (the Figure 23 property) --- *)

let test_no_full_scans_per_update () =
  List.iter
    (fun strategy ->
      let db, mgr, _log = setup strategy in
      (* enlarge the leaf table so a full scan is unmistakable *)
      Database.load_rows db ~table:"sale"
        (List.init 2000 (fun i ->
             [| Value.String (Printf.sprintf "BULK%d" i);
                Value.String "S3";
                Value.Float (float_of_int (i mod 90));
             |]));
      (* warm up, then account *)
      ignore
        (Database.update_pk db ~table:"sale" ~pk:[ Value.String "L1" ]
           ~set:(fun r -> [| r.(0); r.(1); Value.Float 12.0 |]));
      Trigview.Runtime.reset_scan_rows mgr;
      ignore
        (Database.update_pk db ~table:"sale" ~pk:[ Value.String "L1" ]
           ~set:(fun r -> [| r.(0); r.(1); Value.Float 13.0 |]));
      let leaf_scans =
        List.fold_left
          (fun acc (k, n) -> if k = "scan:sale" || k = "oldof:sale" then acc + n else acc)
          0
          (Trigview.Runtime.scan_rows_report mgr)
      in
      Alcotest.(check bool)
        (Printf.sprintf "[%s] no full leaf scans (saw %d rows)"
           (Trigview.Runtime.strategy_to_string strategy)
           leaf_scans)
        true (leaf_scans < 200))
    [ Trigview.Runtime.Ungrouped; Trigview.Runtime.Grouped; Trigview.Runtime.Grouped_agg ]

let test_grouped_agg_avoids_oldof_entirely () =
  let db, mgr, _log = setup Trigview.Runtime.Grouped_agg in
  ignore
    (Database.update_pk db ~table:"sale" ~pk:[ Value.String "L1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 12.0 |]));
  Trigview.Runtime.reset_scan_rows mgr;
  ignore
    (Database.update_pk db ~table:"sale" ~pk:[ Value.String "L1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 13.0 |]));
  let oldof =
    List.fold_left
      (fun acc (k, n) ->
        if String.length k >= 6 && String.sub k 0 6 = "oldof:" then acc + n else acc)
      0
      (Trigview.Runtime.scan_rows_report mgr)
  in
  Alcotest.(check int) "no OLD-OF materialization under GROUPED-AGG" 0 oldof

(* --- incremental view maintenance (the paper's §8 future work) --- *)

let recomputed_nodes db =
  let view = Xquery.Compile.view_of_string ~schema_of:(schema_of db) ~name:"report" view_text in
  let doc = Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view in
  List.sort Xmlkit.Xml.compare (Xmlkit.Xml.children_named doc "region")

let test_maintain_matches_recomputation () =
  let db, mgr, _log = setup Trigview.Runtime.Grouped_agg in
  let maintained = Trigview.Maintain.attach mgr ~path:"view('report')/region" in
  let check what =
    let a = Trigview.Maintain.current maintained in
    let b = recomputed_nodes db in
    if not (List.equal Xmlkit.Xml.equal a b) then
      Alcotest.failf "maintained copy diverged after %s" what
  in
  check "attach";
  ignore
    (Database.update_pk db ~table:"sale" ~pk:[ Value.String "L1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 99.0 |]));
  check "leaf update";
  Database.insert_rows db ~table:"region" [ [| Value.String "R3"; Value.String "east" |] ];
  check "region insert";
  Database.insert_rows db ~table:"sale"
    [ [| Value.String "L7"; Value.String "S3"; Value.Float 1.0 |] ];
  check "sale insert";
  ignore (Database.delete_pk db ~table:"region" ~pk:[ Value.String "R3" ]);
  check "region delete";
  Alcotest.(check bool) "deltas were applied incrementally" true
    (Trigview.Maintain.deltas_applied maintained >= 4);
  (* after detach the copy freezes *)
  Trigview.Maintain.detach maintained;
  ignore
    (Database.update_pk db ~table:"sale" ~pk:[ Value.String "L1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 5.0 |]));
  Alcotest.(check bool) "frozen after detach" false
    (List.equal Xmlkit.Xml.equal (Trigview.Maintain.current maintained) (recomputed_nodes db))

(* Regression: the maintained store keyed nodes by canonical XML text, so
   two siblings that serialize identically (same name, same content)
   collapsed into one entry, and deleting one dropped the survivor too. *)
let test_maintain_duplicate_content_siblings () =
  let db, mgr, _log = setup Trigview.Runtime.Grouped_agg in
  (* two regions with the same name and no stores: identical serialization *)
  Database.insert_rows db ~table:"region"
    [ [| Value.String "R3"; Value.String "east" |];
      [| Value.String "R4"; Value.String "east" |];
    ];
  let maintained = Trigview.Maintain.attach mgr ~path:"view('report')/region" in
  let check what =
    if
      not
        (List.equal Xmlkit.Xml.equal
           (Trigview.Maintain.current maintained)
           (recomputed_nodes db))
    then Alcotest.failf "maintained copy diverged after %s" what
  in
  check "attach (both duplicates must be tracked)";
  ignore (Database.delete_pk db ~table:"region" ~pk:[ Value.String "R4" ]);
  check "deleting one of two identical siblings";
  let remaining =
    List.filter
      (fun n -> Xmlkit.Xml.attr n "name" = Some "east")
      (Trigview.Maintain.current maintained)
  in
  Alcotest.(check int) "the identical twin survives" 1 (List.length remaining);
  Trigview.Maintain.detach maintained

let prop_maintain_matches_recomputation =
  QCheck.Test.make ~name:"incremental maintenance = recomputation over random DML" ~count:25
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 10) op_gen)) (fun ops ->
      let db, mgr, _log = setup Trigview.Runtime.Grouped_agg in
      let maintained = Trigview.Maintain.attach mgr ~path:"view('report')/region" in
      List.for_all
        (fun op ->
          apply_op db op;
          List.equal Xmlkit.Xml.equal
            (Trigview.Maintain.current maintained)
            (recomputed_nodes db))
        ops)

(* --- differential crash recovery ---

   Run the same Table 2 workload on a durable instance and an uncrashed
   twin, "crash" the durable one (abandon the in-memory state), recover it
   with [Runtime.reopen], and require that table contents, generated SQL
   and the firing behaviour of the next updates are indistinguishable from
   the twin that never crashed. *)

let diff_params =
  { Workloadlib.Workload.depth = 3; leaf_tuples = 240; fanout = 8;
    num_triggers = 12; num_satisfied = 4 }

let diff_dir_counter = ref 0

let fresh_data_dir () =
  incr diff_dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trigview_diff_%d_%d" (Unix.getpid ()) !diff_dir_counter)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  dir

(* a firing rendered comparably, OLD/NEW node text included: any divergence
   in recovered state shows up in the serialized nodes *)
let firing_sig fi =
  ( fi.Trigview.Runtime.fi_trigger,
    Database.string_of_event fi.Trigview.Runtime.fi_event,
    Option.map (Xmlkit.Xml.to_string ~canonical:true) fi.Trigview.Runtime.fi_old,
    Option.map (Xmlkit.Xml.to_string ~canonical:true) fi.Trigview.Runtime.fi_new )

let build_twin log =
  let built = Workloadlib.Workload.build diff_params in
  let mgr =
    Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped_agg
      built.Workloadlib.Workload.db
  in
  Trigview.Runtime.define_view mgr ~name:"doc" built.Workloadlib.Workload.view_text;
  Trigview.Runtime.register_action mgr ~name:"record" (fun fi ->
      log := firing_sig fi :: !log);
  Workloadlib.Workload.install_triggers mgr diff_params
    ~target_name:built.Workloadlib.Workload.top_names.(0);
  (built, mgr)

(* The plan compiler's fresh-name counters are process-global, so a runtime
   compiled later in the same process numbers its CTEs/aliases differently.
   Canonicalize each digit run by order of first occurrence *per identifier
   prefix* (the counters behind "cte", "q", "sj", … are independent, so two
   different counters can coincide on one side only): two SQL texts are then
   equal iff they are identical up to a consistent renumbering. *)
let normalize_sql s =
  let maps : (string, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '$'
  in
  let i = ref 0 in
  let word_start = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      let prefix = String.sub s !word_start (!i - !word_start) in
      let num = String.sub s !i (!j - !i) in
      let map =
        match Hashtbl.find_opt maps prefix with
        | Some m -> m
        | None ->
          let m = Hashtbl.create 8 in
          Hashtbl.add maps prefix m;
          m
      in
      let k =
        match Hashtbl.find_opt map num with
        | Some k -> k
        | None ->
          let k = Hashtbl.length map in
          Hashtbl.add map num k;
          k
      in
      Buffer.add_string buf (Printf.sprintf "N%d" k);
      i := !j
    end
    else begin
      if not (is_word c) then word_start := !i + 1;
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let user_tables db =
  List.sort compare
    (List.filter
       (fun n -> not (String.length n >= 10 && String.sub n 0 10 = "trigconsts"))
       (Database.table_names db))

let table_contents db =
  List.map
    (fun n -> (n, List.sort compare (Table.to_rows (Database.get_table db n))))
    (user_tables db)

(* [steps]: the workload before the crash; [probe]: updates issued to both
   the recovered instance and the twin afterwards, whose firings must agree.
   Each element is (top_index, step). *)
let run_differential steps probe =
  let dir = fresh_data_dir () in
  let log_a = ref [] in
  let built_a, mgr_a = build_twin log_a in
  Trigview.Runtime.attach_durability mgr_a ~data_dir:dir;
  List.iter
    (fun (t, s) -> Workloadlib.Workload.update_leaf built_a ~top_index:t ~step:s)
    steps;
  Trigview.Runtime.durability_sync mgr_a;
  (* the crash: built_a / mgr_a are never used again *)
  let log_b = ref [] in
  let built_b, mgr_b = build_twin log_b in
  List.iter
    (fun (t, s) -> Workloadlib.Workload.update_leaf built_b ~top_index:t ~step:s)
    steps;
  let log_r = ref [] in
  let r =
    Trigview.Runtime.reopen ~strategy:Trigview.Runtime.Grouped_agg
      ~actions:[ ("record", fun fi -> log_r := firing_sig fi :: !log_r) ]
      ~data_dir:dir ()
  in
  let db_r = Trigview.Runtime.database r.Trigview.Runtime.runtime in
  let errors =
    r.Trigview.Runtime.recovery.Durability.Recovery.errors
    @ r.Trigview.Runtime.rearm_errors
  in
  let tables_equal = table_contents db_r = table_contents built_b.Workloadlib.Workload.db in
  let sql_of m =
    List.sort compare
      (List.map
         (fun (name, sql) -> normalize_sql (name ^ "\x00" ^ sql))
         (Trigview.Runtime.generated_sql m))
  in
  let sql_equal = sql_of r.Trigview.Runtime.runtime = sql_of mgr_b in
  (* probe: same statements against both survivors; firings must match *)
  log_b := [];
  log_r := [];
  let built_r = { built_b with Workloadlib.Workload.db = db_r } in
  List.iter
    (fun (t, s) ->
      Workloadlib.Workload.update_leaf built_r ~top_index:t ~step:s;
      Workloadlib.Workload.update_leaf built_b ~top_index:t ~step:s)
    probe;
  let probe_equal = List.sort compare !log_r = List.sort compare !log_b in
  let probe_fired = !log_b <> [] in
  (errors, tables_equal, sql_equal, probe_equal, probe_fired)

let test_differential_recovery () =
  let steps = List.init 20 (fun i -> (i mod 2, i)) in
  let probe = [ (0, 20); (1, 21); (0, 22) ] in
  let errors, tables_equal, sql_equal, probe_equal, probe_fired =
    run_differential steps probe
  in
  Alcotest.(check (list string)) "no recovery/re-arm errors" [] errors;
  Alcotest.(check bool) "table contents match the uncrashed twin" true tables_equal;
  Alcotest.(check bool) "generated SQL matches" true sql_equal;
  Alcotest.(check bool) "post-recovery firings match" true probe_equal;
  Alcotest.(check bool) "the probe actually fired triggers" true probe_fired

let prop_differential_recovery =
  QCheck.Test.make ~name:"crash recovery = uncrashed twin over random workloads"
    ~count:5
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 15) (pair (int_bound 3) (int_bound 50)))
           (list_size (int_range 1 4) (pair (int_bound 3) (int_range 51 60)))))
    (fun (steps, probe) ->
      let errors, tables_equal, sql_equal, probe_equal, _ =
        run_differential steps probe
      in
      errors = [] && tables_equal && sql_equal && probe_equal)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_all_strategies_match_oracle; prop_maintain_matches_recomputation;
      prop_differential_recovery ]

let () =
  Alcotest.run "trigview-integration"
    [ ( "scenarios",
        [ Alcotest.test_case "leaf update" `Quick test_leaf_update;
          Alcotest.test_case "invisible store insert" `Quick test_middle_insert;
          Alcotest.test_case "store becomes visible" `Quick test_middle_level_appears;
          Alcotest.test_case "region insert/delete" `Quick test_region_insert_and_delete;
          Alcotest.test_case "store moves regions" `Quick test_store_moves_regions;
          Alcotest.test_case "multi-row statement" `Quick test_multi_statement_sequence;
        ] );
      ( "incremental maintenance",
        [ Alcotest.test_case "matches recomputation" `Quick test_maintain_matches_recomputation;
          Alcotest.test_case "duplicate-content siblings" `Quick
            test_maintain_duplicate_content_siblings;
        ]
      );
      ( "durability",
        [ Alcotest.test_case "differential crash recovery" `Quick
            test_differential_recovery ] );
      ( "performance properties",
        [ Alcotest.test_case "no full scans per update" `Quick test_no_full_scans_per_update;
          Alcotest.test_case "GROUPED-AGG avoids OLD-OF" `Quick
            test_grouped_agg_avoids_oldof_entirely;
        ] );
      ("properties", qcheck_tests);
    ]
