(* The subscription & delivery subsystem: bounded queues (unit + qcheck
   invariants), notification rendering and coalescing keys, the hub over a
   live trigger runtime (callback and file sinks, coalescing windows,
   unsubscribe), and the Unix-domain-socket server end to end — framed
   delivery in statement order, ack-cursor redelivery after reconnect, and
   subscriptions surviving checkpoint + reopen. *)

module Squeue = Subscribe.Squeue
module Notification = Subscribe.Notification
module Server = Subscribe.Server

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- queue unit tests --- *)

let push q k v = Subscribe.Squeue.push q ~key:k v

let test_queue_fifo () =
  let q = Squeue.create ~capacity:8 () in
  List.iter (fun i -> ignore (push q (string_of_int i) i)) [ 1; 2; 3 ];
  Alcotest.(check int) "depth" 3 (Squeue.depth q);
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (Squeue.flush q);
  Alcotest.(check int) "drained" 0 (Squeue.depth q);
  Alcotest.(check int) "delivered" 3 (Squeue.delivered q);
  Alcotest.(check (list int)) "second flush empty" [] (Squeue.flush q);
  Alcotest.(check bool) "invariant" true (Squeue.invariant_holds q)

let test_queue_drop_oldest () =
  let q = Squeue.create ~capacity:3 ~overflow:Squeue.Drop_oldest () in
  List.iter (fun i -> ignore (push q (string_of_int i) i)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "bounded" 3 (Squeue.depth q);
  Alcotest.(check (list int)) "oldest evicted" [ 3; 4; 5 ] (Squeue.flush q);
  Alcotest.(check int) "dropped" 2 (Squeue.dropped q);
  Alcotest.(check bool) "invariant" true (Squeue.invariant_holds q)

let test_queue_drop_newest () =
  let q = Squeue.create ~capacity:3 ~overflow:Squeue.Drop_newest () in
  let results = List.map (fun i -> push q (string_of_int i) i) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "newest rejected" [ 1; 2; 3 ] (Squeue.flush q);
  Alcotest.(check bool) "push reported drop" true
    (List.nth results 3 = Squeue.Dropped && List.nth results 4 = Squeue.Dropped);
  Alcotest.(check bool) "invariant" true (Squeue.invariant_holds q)

let test_queue_disconnect () =
  let q = Squeue.create ~capacity:2 ~overflow:Squeue.Disconnect () in
  ignore (push q "a" 1);
  ignore (push q "b" 2);
  Alcotest.(check bool) "overflow disconnects" true (push q "c" 3 = Squeue.Disconnected);
  Alcotest.(check bool) "flag set" true (Squeue.disconnected q);
  Alcotest.(check int) "pending discarded with the subscriber" 0 (Squeue.depth q);
  Alcotest.(check bool) "pushes rejected while disconnected" true
    (push q "d" 4 = Squeue.Disconnected);
  Alcotest.(check int) "all 4 accounted as dropped" 4 (Squeue.dropped q);
  Squeue.reconnect q;
  Alcotest.(check bool) "accepts again after reconnect" true (push q "e" 5 = Squeue.Enqueued);
  Alcotest.(check (list int)) "delivers after reconnect" [ 5 ] (Squeue.flush q);
  Alcotest.(check bool) "invariant" true (Squeue.invariant_holds q)

let test_queue_coalesce () =
  let q = Squeue.create ~capacity:8 ~coalesce:true () in
  Alcotest.(check bool) "first is enqueued" true (push q "a" 1 = Squeue.Enqueued);
  ignore (push q "b" 2);
  Alcotest.(check bool) "same key coalesces" true (push q "a" 3 = Squeue.Coalesced);
  (* the coalesced key keeps its original (first-arrival) position but
     carries the latest payload *)
  Alcotest.(check (list int)) "in-place replacement" [ 3; 2 ] (Squeue.flush q);
  Alcotest.(check int) "coalesced counted" 1 (Squeue.coalesced q);
  (* coalescing is scoped to the flush window: after a flush the key is new *)
  Alcotest.(check bool) "window reset" true (push q "a" 4 = Squeue.Enqueued);
  Alcotest.(check bool) "invariant" true (Squeue.invariant_holds q)

(* --- qcheck: queue invariants under arbitrary workloads --- *)

type qop = Push of int * int | Flush  (* Push (key, payload) *)

let qop_gen =
  QCheck.Gen.(
    frequency
      [ (8, map2 (fun k v -> Push (k, v)) (int_bound 5) (int_bound 1000));
        (1, return Flush);
      ])

let qops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function Push (k, v) -> Printf.sprintf "p%d=%d" k v | Flush -> "f")
           ops))
    QCheck.Gen.(list_size (int_bound 200) qop_gen)

let params_arb =
  QCheck.make
    QCheck.Gen.(
      triple (1 -- 16) (int_bound 2) bool (* capacity, overflow, coalesce *))

let overflow_of_int = function
  | 0 -> Squeue.Drop_oldest
  | 1 -> Squeue.Drop_newest
  | _ -> Squeue.Disconnect

let qcheck_accounting =
  QCheck.Test.make ~name:"queue accounting invariant" ~count:300
    (QCheck.pair params_arb qops_arb)
    (fun ((cap, ovf, coal), ops) ->
      let q = Squeue.create ~capacity:cap ~overflow:(overflow_of_int ovf) ~coalesce:coal () in
      List.iter
        (function
          | Push (k, v) -> ignore (push q (string_of_int k) v)
          | Flush -> ignore (Squeue.flush q))
        ops;
      ignore (Squeue.flush q);
      Squeue.invariant_holds q
      && Squeue.enqueued q
         = Squeue.delivered q + Squeue.dropped q + Squeue.coalesced q)

let qcheck_bounded_depth =
  QCheck.Test.make ~name:"queue depth never exceeds capacity" ~count:300
    (QCheck.pair params_arb qops_arb)
    (fun ((cap, ovf, coal), ops) ->
      let q = Squeue.create ~capacity:cap ~overflow:(overflow_of_int ovf) ~coalesce:coal () in
      List.for_all
        (function
          | Push (k, v) ->
            ignore (push q (string_of_int k) v);
            Squeue.depth q <= cap
          | Flush ->
            ignore (Squeue.flush q);
            Squeue.depth q = 0)
        ops)

(* Under coalescing with no overflow pressure: each key appears at most once
   per flush, carries the key's last-pushed payload, and keys leave in
   first-arrival order. *)
let qcheck_coalesce_order =
  QCheck.Test.make ~name:"per-key coalescing: last payload, first-arrival order"
    ~count:300 qops_arb (fun ops ->
      let q = Squeue.create ~capacity:2048 ~coalesce:true () in
      (* payload = (key, value) so the flushed items identify their keys *)
      let expect_order = ref [] (* first-arrival order, reversed *) in
      let expect_last = Hashtbl.create 8 in
      let check_flush () =
        let out = Squeue.flush q in
        let expected =
          List.rev_map (fun k -> (k, Hashtbl.find expect_last k)) !expect_order
        in
        expect_order := [];
        Hashtbl.reset expect_last;
        out = expected
      in
      List.for_all
        (function
          | Push (k, v) ->
            ignore (push q (string_of_int k) (k, v));
            if not (Hashtbl.mem expect_last k) then expect_order := k :: !expect_order;
            Hashtbl.replace expect_last k v;
            true
          | Flush -> check_flush ())
        ops
      && check_flush ())

(* --- notifications --- *)

let elem tag attrs children = Xmlkit.Xml.Element { tag; attrs; children }

let test_notification_ndjson () =
  let n =
    Notification.make ~subscription:"feed" ~seq:3 ~stmt_id:17 ~event:"UPDATE"
      ~trigger:"sub$feed"
      ~old_xml:(Some (elem "p" [ ("name", "a\"b") ] [ Xmlkit.Xml.Text "1" ]))
      ~new_xml:None
  in
  Alcotest.(check string) "ndjson"
    "{\"subscription\": \"feed\", \"seq\": 3, \"stmt\": 17, \"event\": \
     \"UPDATE\", \"trigger\": \"sub$feed\", \"old\": \
     \"<p name=\\\"a&quot;b\\\">1</p>\", \"new\": null}"
    (Notification.to_ndjson n)

let test_notification_key () =
  let mk ?old_xml ?new_xml seq =
    Notification.make ~subscription:"s" ~seq ~stmt_id:0 ~event:"UPDATE"
      ~trigger:"t" ~old_xml ~new_xml
  in
  let a1 = mk ~new_xml:(elem "p" [ ("name", "x") ] [ Xmlkit.Xml.Text "1" ]) 1 in
  let a2 = mk ~new_xml:(elem "p" [ ("name", "x") ] [ Xmlkit.Xml.Text "2" ]) 2 in
  let b = mk ~new_xml:(elem "p" [ ("name", "y") ] []) 3 in
  Alcotest.(check bool) "same node, different content: same key" true
    (Notification.key a1 = Notification.key a2);
  Alcotest.(check bool) "different node: different key" false
    (Notification.key a1 = Notification.key b);
  (* DELETE has only OLD_NODE; it must still coalesce with the same node *)
  let d = mk ~old_xml:(elem "p" [ ("name", "x") ] []) 4 in
  Alcotest.(check bool) "old-node key matches new-node key" true
    (Notification.key a1 = Notification.key d)

(* --- the hub over a live runtime --- *)

let catalog_text =
  {|<catalog>
  {for $prodname in distinct(view("default")/product/row/pname)
   let $products := view("default")/product/row[./pname = $prodname]
   let $vendors := view("default")/vendor/row[./pid = $products/pid]
   where count($vendors) >= 2
   return <product name="{$prodname}">
     {for $vendor in $vendors
      return <vendor>{$vendor/*}</vendor>}
   </product>}
</catalog>|}

let setup_hub ?(strategy = Trigview.Runtime.Grouped_agg) () =
  let db = Fixtures.mk_db () in
  let mgr = Trigview.Runtime.create ~strategy db in
  Trigview.Runtime.define_view mgr ~name:"catalog" catalog_text;
  let hub = Subscribe.attach mgr in
  (db, mgr, hub)

let crt_sub = "crt AFTER UPDATE ON view('catalog')/product WHERE NEW_NODE/@name = 'CRT 15'"

let test_hub_callback_delivery () =
  let db, _mgr, hub = setup_hub () in
  let got = ref [] in
  Subscribe.add_callback hub (fun n -> got := n :: !got);
  Subscribe.subscribe hub crt_sub;
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  Alcotest.(check int) "queued, not yet delivered" 0 (List.length !got);
  Alcotest.(check int) "flush delivers one" 1 (Subscribe.flush hub);
  (match !got with
  | [ n ] ->
    let line = Notification.to_ndjson n in
    Alcotest.(check bool) "names its subscription" true
      (String.length line > 0
      && contains line "\"subscription\": \"crt\"")
  | _ -> Alcotest.fail "expected exactly one notification");
  (* an LCD 19 update does not match the WHERE *)
  Fixtures.update_vendor_price db ~vid:"Buy.com" ~pid:"P2" ~price:75.0;
  Alcotest.(check int) "condition filters" 0 (Subscribe.flush hub)

let test_hub_statement_order_and_stmt_ids () =
  let db, _mgr, hub = setup_hub () in
  let got = ref [] in
  Subscribe.add_callback hub (fun n -> got := n :: !got);
  Subscribe.subscribe hub (crt_sub ^ " COALESCE off");
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:76.0;
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:77.0;
  Alcotest.(check int) "three delivered" 3 (Subscribe.flush hub);
  let seqs = List.rev_map (fun n -> n.Notification.seq) !got in
  let stmts = List.rev_map (fun n -> n.Notification.stmt_id) !got in
  Alcotest.(check (list int)) "seqs in statement order" [ 1; 2; 3 ] seqs;
  Alcotest.(check bool) "stmt ids strictly increasing" true
    (match stmts with
    | [ a; b; c ] -> a < b && b < c
    | _ -> false)

let test_hub_coalescing_window () =
  let db, _mgr, hub = setup_hub () in
  let got = ref [] in
  Subscribe.add_callback hub (fun n -> got := n :: !got);
  Subscribe.subscribe hub (crt_sub ^ " COALESCE on");
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:76.0;
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:77.0;
  (* three firings for the same view node inside one window: one delivery,
     carrying the latest state *)
  Alcotest.(check int) "coalesced to one" 1 (Subscribe.flush hub);
  (match !got with
  | [ n ] ->
    let doc = Xmlkit.Xml_parse.parse (Notification.to_ndjson n |> fun _ ->
      match n.Notification.new_xml with
      | Some x -> Xmlkit.Xml.to_string ~canonical:true x
      | None -> "<none/>")
    in
    Alcotest.(check (list string)) "latest price wins" [ "77.0" ]
      (Xmlkit.Xpath.select_strings doc "/vendor[vid='Amazon']/price")
  | _ -> Alcotest.fail "expected one coalesced notification");
  (* the next window starts fresh *)
  got := [];
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:78.0;
  Alcotest.(check int) "next window delivers" 1 (Subscribe.flush hub)

let test_hub_unsubscribe_stops_delivery () =
  let db, mgr, hub = setup_hub () in
  Subscribe.subscribe hub crt_sub;
  let sql_before = Trigview.Runtime.sql_trigger_count mgr in
  Alcotest.(check bool) "SQL triggers armed" true (sql_before > 0);
  Subscribe.unsubscribe hub "crt";
  Alcotest.(check int) "SQL triggers dropped" 0 (Trigview.Runtime.sql_trigger_count mgr);
  Alcotest.(check (list string)) "registry empty" [] (Subscribe.subscription_names hub);
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  Alcotest.(check int) "nothing delivered" 0 (Subscribe.flush hub)

let test_hub_ddl_errors () =
  let _db, _mgr, hub = setup_hub () in
  let expect_error text =
    match Subscribe.subscribe hub text with
    | () -> Alcotest.failf "expected rejection of %S" text
    | exception Subscribe.Error _ -> ()
  in
  expect_error "no keywords here";
  expect_error "bad name! AFTER UPDATE ON view('catalog')/product";
  expect_error "f AFTER SHRUG ON view('catalog')/product";
  expect_error "f AFTER UPDATE ON view('catalog')/product QUEUE -3";
  expect_error "f AFTER UPDATE ON view('catalog')/product OVERFLOW sideways";
  Subscribe.subscribe hub crt_sub;
  expect_error crt_sub (* duplicate name *)

let test_hub_file_sink () =
  let db, _mgr, hub = setup_hub () in
  let path = Filename.temp_file "trigview_sub" ".ndjson" in
  Subscribe.add_file hub ~path;
  Subscribe.subscribe hub crt_sub;
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:76.0;
  Alcotest.(check int) "two delivered" 2 (Subscribe.flush hub);
  Subscribe.close_sinks hub;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check int) "two NDJSON lines" 2 (List.length !lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    !lines

(* --- socket server end to end --- *)

let sock_counter = ref 0

let fresh_socket_path () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "trigview_sub_%d_%d.sock" (Unix.getpid ()) !sock_counter)

let connect_client path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.set_nonblock fd;
  fd

let send_frame fd payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  ignore (Unix.write fd b 0 (Bytes.length b))

(* Pump the server and drain this client's socket until [want] frames have
   arrived (or ~1s passes). *)
let recv_frames server fd ~want =
  let buf = Buffer.create 1024 in
  let frames = ref [] in
  let parse () =
    let continue = ref true in
    while !continue do
      let data = Buffer.contents buf in
      let n = String.length data in
      if n < 4 then continue := false
      else
        let len =
          (Char.code data.[0] lsl 24)
          lor (Char.code data.[1] lsl 16)
          lor (Char.code data.[2] lsl 8)
          lor Char.code data.[3]
        in
        if n < 4 + len then continue := false
        else begin
          frames := String.sub data 4 len :: !frames;
          Buffer.clear buf;
          Buffer.add_string buf (String.sub data (4 + len) (n - 4 - len))
        end
    done
  in
  let tries = ref 200 in
  let chunk = Bytes.create 65536 in
  while List.length !frames < want && !tries > 0 do
    decr tries;
    ignore (Server.step ~timeout_ms:5 server);
    (match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> tries := 0 (* EOF *)
    | n -> Buffer.add_subbytes buf chunk 0 n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    parse ()
  done;
  List.rev !frames

let gseq_of frame =
  (* frames look like {"gseq": N, "payload": ...} *)
  try Scanf.sscanf frame "{\"gseq\": %d," (fun g -> g) with _ -> -1

let test_socket_end_to_end () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trigview_sub_e2e_%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  let sock = fresh_socket_path () in
  let db, mgr, hub = setup_hub () in
  Trigview.Runtime.attach_durability mgr ~data_dir:dir;
  let server = Server.create ~path:sock () in
  Subscribe.add_server hub server;
  Subscribe.subscribe hub (crt_sub ^ " COALESCE off");

  (* client connects and sends its hello cursor (fresh: 0) *)
  let fd = connect_client sock in
  send_frame fd "{\"ack\": 0}";
  ignore (Server.step ~timeout_ms:10 server);

  (* DML on base tables -> framed notifications in statement order *)
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:75.0;
  Fixtures.update_vendor_price db ~vid:"Amazon" ~pid:"P1" ~price:76.0;
  Alcotest.(check int) "two delivered to server" 2 (Subscribe.flush hub);
  let frames = recv_frames server fd ~want:2 in
  Alcotest.(check int) "two frames" 2 (List.length frames);
  Alcotest.(check (list int)) "gseq order" [ 1; 2 ] (List.map gseq_of frames);
  Alcotest.(check bool) "payload carries seq 1 then 2" true
    (match frames with
    | [ a; b ] ->
      contains a "\"seq\": 1" && contains b "\"seq\": 2"
    | _ -> false);

  (* client acks only the first frame, then drops the connection *)
  send_frame fd "{\"ack\": 1}";
  ignore (Server.step ~timeout_ms:10 server);
  Unix.close fd;
  ignore (Server.step ~timeout_ms:10 server);

  (* subscriptions survive checkpoint + reopen *)
  Trigview.Runtime.checkpoint mgr;
  Subscribe.subscribe hub "lcd AFTER UPDATE ON view('catalog')/product WHERE NEW_NODE/@name = 'LCD 19'";
  Subscribe.unsubscribe hub "lcd";  (* the drop must survive replay too *)
  Trigview.Runtime.durability_sync mgr;
  let r = Trigview.Runtime.reopen ~data_dir:dir () in
  let mgr2 = r.Trigview.Runtime.runtime in
  let hub2 = Subscribe.attach mgr2 in
  let errs =
    Subscribe.rearm hub2 ~meta:r.Trigview.Runtime.recovery.Durability.Recovery.meta
  in
  Alcotest.(check (list string)) "rearm clean" [] errs;
  Alcotest.(check (list string)) "crt survived, lcd did not" [ "crt" ]
    (Subscribe.subscription_names hub2);
  Alcotest.(check bool) "trigger re-armed" true
    (List.mem "sub$crt" (Trigview.Runtime.trigger_names mgr2));

  (* a fresh server on the reopened runtime; the reconnecting client resumes
     from its ack cursor: it re-receives frame 2 (unacked), not frame 1 *)
  Server.stop server;
  let server2 = Server.create ~path:sock () in
  Subscribe.add_server hub2 server2;
  (* live traffic against the recovered runtime *)
  Fixtures.update_vendor_price (Trigview.Runtime.database mgr2) ~vid:"Amazon"
    ~pid:"P1" ~price:77.0;
  Alcotest.(check int) "recovered feed fires" 1 (Subscribe.flush hub2);
  let fd2 = connect_client sock in
  send_frame fd2 "{\"ack\": 0}";
  let frames2 = recv_frames server2 fd2 ~want:1 in
  Alcotest.(check int) "replay after reconnect" 1 (List.length frames2);
  Alcotest.(check bool) "recovered notification has seq 1 (fresh hub state)" true
    (contains (List.hd frames2) "\"seq\": 1");
  Unix.close fd2;
  Server.stop server2;
  rm_rf dir

let test_socket_ack_cursor_redelivery () =
  let sock = fresh_socket_path () in
  let server = Server.create ~path:sock () in
  (* publish three notifications with no client connected *)
  Server.publish server "{\"n\": 1}";
  Server.publish server "{\"n\": 2}";
  Server.publish server "{\"n\": 3}";
  (* a client that has consumed up to gseq 1 reconnects: it must get 2 and 3 *)
  let fd = connect_client sock in
  send_frame fd "{\"ack\": 1}";
  let frames = recv_frames server fd ~want:2 in
  Alcotest.(check (list int)) "redelivered above the cursor" [ 2; 3 ]
    (List.map gseq_of frames);
  (* acking 3 and reconnecting again yields nothing new *)
  send_frame fd "{\"ack\": 3}";
  ignore (Server.step ~timeout_ms:10 server);
  Unix.close fd;
  let fd2 = connect_client sock in
  send_frame fd2 "{\"ack\": 3}";
  let frames2 = recv_frames server fd2 ~want:1 in
  Alcotest.(check int) "nothing to redeliver" 0 (List.length frames2);
  Unix.close fd2;
  Server.stop server

let test_socket_multiple_clients () =
  let sock = fresh_socket_path () in
  let server = Server.create ~path:sock () in
  let a = connect_client sock in
  let b = connect_client sock in
  send_frame a "{\"ack\": 0}";
  send_frame b "{\"ack\": 0}";
  ignore (Server.step ~timeout_ms:10 server);
  ignore (Server.step ~timeout_ms:10 server);
  Alcotest.(check int) "both connected" 2 (Server.client_count server);
  Server.publish server "{\"n\": 1}";
  let fa = recv_frames server a ~want:1 in
  let fb = recv_frames server b ~want:1 in
  Alcotest.(check int) "client a got it" 1 (List.length fa);
  Alcotest.(check int) "client b got it" 1 (List.length fb);
  Unix.close a;
  Unix.close b;
  Server.stop server

let test_socket_gap_marker () =
  let sock = fresh_socket_path () in
  (* retention of 2: a client behind by more must see a gap marker *)
  let server = Server.create ~retain:2 ~path:sock () in
  List.iter (fun i -> Server.publish server (Printf.sprintf "{\"n\": %d}" i)) [ 1; 2; 3; 4 ];
  let fd = connect_client sock in
  send_frame fd "{\"ack\": 0}";
  let frames = recv_frames server fd ~want:3 in
  (match frames with
  | gap :: rest ->
    Alcotest.(check bool) "gap marker first" true
      (contains gap "\"gap\": true" && contains gap "\"oldest\": 3");
    Alcotest.(check (list int)) "then the retained tail" [ 3; 4 ] (List.map gseq_of rest)
  | [] -> Alcotest.fail "expected frames");
  Unix.close fd;
  Server.stop server

let () =
  Alcotest.run "subscribe"
    [ ( "queue",
        [ Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "drop-oldest" `Quick test_queue_drop_oldest;
          Alcotest.test_case "drop-newest" `Quick test_queue_drop_newest;
          Alcotest.test_case "disconnect" `Quick test_queue_disconnect;
          Alcotest.test_case "coalesce" `Quick test_queue_coalesce;
          QCheck_alcotest.to_alcotest qcheck_accounting;
          QCheck_alcotest.to_alcotest qcheck_bounded_depth;
          QCheck_alcotest.to_alcotest qcheck_coalesce_order;
        ] );
      ( "notification",
        [ Alcotest.test_case "ndjson" `Quick test_notification_ndjson;
          Alcotest.test_case "coalescing key" `Quick test_notification_key;
        ] );
      ( "hub",
        [ Alcotest.test_case "callback delivery" `Quick test_hub_callback_delivery;
          Alcotest.test_case "statement order + stmt ids" `Quick
            test_hub_statement_order_and_stmt_ids;
          Alcotest.test_case "coalescing window" `Quick test_hub_coalescing_window;
          Alcotest.test_case "unsubscribe" `Quick test_hub_unsubscribe_stops_delivery;
          Alcotest.test_case "DDL errors" `Quick test_hub_ddl_errors;
          Alcotest.test_case "file sink" `Quick test_hub_file_sink;
        ] );
      ( "socket",
        [ Alcotest.test_case "end to end (durable)" `Quick test_socket_end_to_end;
          Alcotest.test_case "ack-cursor redelivery" `Quick
            test_socket_ack_cursor_redelivery;
          Alcotest.test_case "multiple clients" `Quick test_socket_multiple_clients;
          Alcotest.test_case "gap marker" `Quick test_socket_gap_marker;
        ] );
    ]
