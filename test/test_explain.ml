(* Golden tests for [Runtime.explain]: one fixed single-table workload, one
   trigger, one update, per strategy -- the rendered plan annotation is
   pinned verbatim.  The output is deterministic by design: group ids
   follow creation order, fragment key binding names are masked, and the
   cardinalities are those of the single update.  A nested-view case
   checks the fragment sections structurally (its generated column names
   embed a process-global op counter, so verbatim pinning would depend on
   test execution order). *)

open Relkit

let product_schema =
  Schema.make ~name:"product"
    ~columns:
      [ ("pid", Schema.TString); ("pname", Schema.TString); ("price", Schema.TFloat) ]
    ~primary_key:[ "pid" ] ()

let view_text =
  {|<catalog>
    {for $p in view("default")/product/row
     return <product name="{$p/pname}"><price>{$p/price}</price></product>}
  </catalog>|}

let mk_db () =
  let db = Database.create () in
  Database.create_table db product_schema;
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P1"; Value.String "crt"; Value.Float 10.0 |];
      [| Value.String "P2"; Value.String "lcd"; Value.Float 20.0 |];
    ];
  db

let setup ?tuning strategy =
  let db = mk_db () in
  let mgr = Trigview.Runtime.create ~strategy ?tuning db in
  Trigview.Runtime.define_view mgr ~name:"catalog" view_text;
  Trigview.Runtime.register_action mgr ~name:"rec" (fun _ -> ());
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO rec(NEW_NODE)";
  ignore
    (Database.update_pk db ~table:"product" ~pk:[ Value.String "P1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 11.0 |]));
  mgr

(* The annotated plan is identical for the three compiled strategies on this
   single-table view: grouping only changes how triggers share it, not the
   maintenance plan itself. *)
let compiled_plan_body =
  "pipeline[project]  [last=1 rows, total=1 over 1 execs]\n\
  \  nl-join inner  [last=1 rows, total=1 over 1 execs]\n\
  \    hash-join inner (build right)  [last=1 rows, total=1 over 1 execs]\n\
  \      pipeline[project]  [last=1 rows, total=1 over 1 execs]\n\
  \        hash-join inner (build right)  [last=1 rows, total=1 over 1 execs]\n\
  \          shared  [last=1 rows, total=1 over 1 execs, cache hit=1 miss=0]\n\
  \            union distinct  [last=1 rows, total=1 over 1 execs]\n\
  \              pipeline[project,project]  [last=1 rows, total=1 over 1 execs]\n\
  \                delta:product  [last=1 rows, total=1 over 1 execs]\n\
  \              pipeline[project,project]  [last=1 rows, total=1 over 1 execs]\n\
  \                nabla:product  [last=1 rows, total=1 over 1 execs]\n\
  \          pipeline[project,project,project]  [last=1 rows, total=1 over 1 execs]\n\
  \            inl-join inner (probe product via pk)  [last=1 rows, total=1 over 1 execs]\n\
  \              distinct  [last=1 rows, total=1 over 1 execs]\n\
  \                pipeline[project]  [last=1 rows, total=1 over 1 execs]\n\
  \                  shared  [last=1 rows, total=1 over 1 execs, cache hit=0 miss=1]\n\
  \                    union distinct  [see above]\n\
  \      pipeline[project]  [last=1 rows, total=1 over 1 execs]\n\
  \        hash-join inner (build right)  [last=1 rows, total=1 over 1 execs]\n\
  \          shared  [last=1 rows, total=1 over 1 execs, cache hit=1 miss=0]\n\
  \            union distinct  [last=1 rows, total=1 over 1 execs]\n\
  \              pipeline[project,project]  [last=1 rows, total=1 over 1 execs]\n\
  \                delta:product  [last=1 rows, total=1 over 1 execs]\n\
  \              pipeline[project,project]  [last=1 rows, total=1 over 1 execs]\n\
  \                nabla:product  [last=1 rows, total=1 over 1 execs]\n\
  \          pipeline[project,project,project]  [last=1 rows, total=1 over 1 execs]\n\
  \            inl-join inner (probe oldof product via pk)  [last=1 rows, total=1 over 1 execs]\n\
  \              distinct  [last=1 rows, total=1 over 1 execs]\n\
  \                pipeline[project]  [last=1 rows, total=1 over 1 execs]\n\
  \                  shared  [last=1 rows, total=1 over 1 execs, cache hit=0 miss=1]\n\
  \                    union distinct  [see above]\n\
  \    scan:trigconsts0  [last=1 rows, total=1 over 1 execs]\n"

let compiled_expected strategy_name =
  Printf.sprintf
    "== group 0: %s UPDATE on view catalog ==\ntriggers: t\n-- table product: \
     compiled\n   relevance: cols={pid,pname,price} pred=-\n%s"
    strategy_name compiled_plan_body

let check_golden label expected mgr =
  Alcotest.(check string) label expected (Trigview.Runtime.explain mgr)

let test_ungrouped () =
  check_golden "ungrouped explain" (compiled_expected "UNGROUPED")
    (setup Trigview.Runtime.Ungrouped)

let test_grouped () =
  check_golden "grouped explain" (compiled_expected "GROUPED")
    (setup Trigview.Runtime.Grouped)

let test_grouped_agg () =
  check_golden "grouped-agg explain" (compiled_expected "GROUPED-AGG")
    (setup Trigview.Runtime.Grouped_agg)

let test_materialized () =
  check_golden "materialized explain"
    "== group 0: MATERIALIZED UPDATE on view catalog ==\n\
     triggers: t\n\
     plan: MATERIALIZED baseline -- recompute the monitored level and diff \
     snapshots on every relevant statement\n"
    (setup Trigview.Runtime.Materialized)

let test_interpreted () =
  check_golden "interpreted explain"
    "== group 0: GROUPED UPDATE on view catalog ==\n\
     triggers: t\n\
     -- table product: interpreted (compilation disabled)\n\
    \   relevance: cols={pid,pname,price} pred=-\n"
    (setup
       ~tuning:
         { Trigview.Runtime.default_tuning with Trigview.Runtime.compile_plans = false }
       Trigview.Runtime.Grouped)

(* ------------------------------------------------------------------ *)
(* Nested view: the inner for becomes a tagger fragment.  Generated
   column names embed a global op-counter id ([offer<N>$pid]), so we
   normalize digit runs that directly precede '$' and assert structure
   instead of pinning the whole rendering. *)

let offer_schema =
  Schema.make ~name:"offer"
    ~columns:[ ("oid", Schema.TString); ("pid", Schema.TString); ("price", Schema.TFloat) ]
    ~primary_key:[ "oid" ]
    ~foreign_keys:
      [ { Schema.fk_columns = [ "pid" ]; fk_table = "product"; fk_ref_columns = [ "pid" ] } ]
    ()

let nested_view_text =
  {|<catalog>
    {for $p in view("default")/product/row
     let $offers := view("default")/offer/row[./pid = $p/pid]
     return <product name="{$p/pname}">
       {for $o in $offers return <offer>{$o/price}</offer>}
     </product>}
  </catalog>|}

let setup_nested () =
  let db = mk_db () in
  Database.create_table db offer_schema;
  Database.create_index db ~table:"offer" ~column:"pid";
  Database.insert_rows db ~table:"offer"
    [ [| Value.String "O1"; Value.String "P1"; Value.Float 9.0 |];
      [| Value.String "O2"; Value.String "P1"; Value.Float 12.0 |];
    ];
  let mgr = Trigview.Runtime.create ~strategy:Trigview.Runtime.Grouped_agg db in
  Trigview.Runtime.define_view mgr ~name:"catalog" nested_view_text;
  Trigview.Runtime.register_action mgr ~name:"rec" (fun _ -> ());
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER t AFTER UPDATE ON view('catalog')/product DO rec(NEW_NODE)";
  ignore
    (Database.update_pk db ~table:"offer" ~pk:[ Value.String "O1" ]
       ~set:(fun r -> [| r.(0); r.(1); Value.Float 9.5 |]));
  mgr

(* Strip maximal digit runs immediately preceding '$' ("offer22$pid" ->
   "offer$pid") so assertions survive op-counter drift. *)
let mask_op_ids s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
      incr j
    done;
    if !j > !i && !j < n && s.[!j] = '$' then i := !j
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let contains hay needle = count_substring hay needle > 0

let test_nested () =
  let mgr = setup_nested () in
  let out = mask_op_ids (Trigview.Runtime.explain mgr) in
  let check_has label needle =
    Alcotest.(check bool) label true (contains out needle)
  in
  check_has "header" "== group 0: GROUPED-AGG UPDATE on view catalog ==";
  check_has "triggers line" "triggers: t\n";
  check_has "offer table compiled" "-- table offer: compiled";
  check_has "product table compiled" "-- table product: compiled";
  (* the offer update ran the offer plan; the product plan never fired *)
  check_has "offer plan executed" "[last=1 rows, total=1 over 1 execs]";
  check_has "product plan unexecuted" "[never run]";
  (* tagger fragments render with masked key relations *)
  check_has "fragment section" "fragment (link on offer$pid):";
  check_has "fragment key masked" "rel:fragkeys$_";
  Alcotest.(check bool) "no raw fragkeys name" false (contains out "rel:fragkeys$0");
  (* index selection is visible in the annotations *)
  check_has "index probe" "inl-join inner (probe offer via index pid)";
  check_has "old-state index probe" "inl-join inner (probe oldof offer via index pid)";
  check_has "aggregate grouping" "group_by [offer$pid] aggs=1";
  (* every fragment appears under both table sections: 2 live + 2 never-run *)
  Alcotest.(check int) "fragment count" 4 (count_substring out "fragment (link on")

let () =
  Alcotest.run "explain"
    [ ( "golden",
        [ Alcotest.test_case "UNGROUPED" `Quick test_ungrouped;
          Alcotest.test_case "GROUPED" `Quick test_grouped;
          Alcotest.test_case "GROUPED-AGG" `Quick test_grouped_agg;
          Alcotest.test_case "MATERIALIZED" `Quick test_materialized;
          Alcotest.test_case "interpreted" `Quick test_interpreted;
        ] );
      ("nested", [ Alcotest.test_case "fragments and masking" `Quick test_nested ]);
    ]
