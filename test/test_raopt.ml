(* Tests for the plan rewrites in Relkit.Ra_opt: semijoin pushdown (with
   equality transfer and sideways information passing), transition-join
   pushdown, and common-subplan sharing.  Each rewrite is checked for
   semantic preservation against a filter-semantics oracle, and for the
   physical effect (index probes instead of scans) via scan accounting. *)

open Relkit

let v_int i = Value.Int i
let v_str s = Value.String s

let db_with_parent_child () =
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"parent"
       ~columns:[ ("pid", Schema.TInt); ("label", Schema.TString) ]
       ~primary_key:[ "pid" ] ());
  Database.create_table db
    (Schema.make ~name:"child"
       ~columns:[ ("cid", Schema.TInt); ("pid", Schema.TInt); ("v", Schema.TInt) ]
       ~primary_key:[ "cid" ] ());
  Database.create_index db ~table:"child" ~column:"pid";
  Database.load_rows db ~table:"parent"
    (List.init 50 (fun i -> [| v_int i; v_str (Printf.sprintf "p%d" (i mod 7)) |]));
  Database.load_rows db ~table:"child"
    (List.init 400 (fun i -> [| v_int i; v_int (i mod 50); v_int (i mod 13) |]));
  db

let parent_scan db = Ra.scan (Ra.Base "parent") (Table.schema (Database.get_table db "parent"))
let child_scan db = Ra.scan (Ra.Base "child") (Table.schema (Database.get_table db "child"))

let keys_rel vals = Ra.Values ([ "k" ], List.map (fun v -> [| v_int v |]) vals)

(* oracle: a semijoin is just a filter on the link column *)
let filter_oracle ctx plan ~link ~vals =
  let rel = Ra_eval.eval ctx plan in
  let slot = Ra_eval.col_index rel link in
  { rel with
    Ra_eval.rows =
      List.filter
        (fun row -> List.exists (fun v -> Value.sql_eq row.(slot) (v_int v)) vals)
        rel.Ra_eval.rows;
  }

let check_push ?(name = "push = filter") ctx plan ~link ~vals =
  let pushed = Ra_opt.push_semijoin ~keys:(keys_rel vals) ~on:[ (link, "k") ] plan in
  let got = Ra_eval.eval ctx pushed in
  let expected = filter_oracle ctx plan ~link ~vals in
  if not (Ra_eval.equal_rel got expected) then
    Alcotest.failf "%s diverged:@.expected %a@.got %a" name Ra_eval.pp_rel expected
      Ra_eval.pp_rel got

let test_push_through_select_project () =
  let db = db_with_parent_child () in
  let ctx = Ra_eval.ctx_of_db db in
  let plan =
    Ra.Project
      ( [ ("key", Ra.Col "cid"); ("par", Ra.Col "pid") ],
        Ra.Select (Ra.Binop (Ra.Gt, Ra.Col "v", Ra.Const (v_int 3)), child_scan db) )
  in
  check_push ctx plan ~link:"par" ~vals:[ 1; 2; 3 ]

let test_push_through_group_by () =
  let db = db_with_parent_child () in
  let ctx = Ra_eval.ctx_of_db db in
  let plan = Ra.Group_by ([ "pid" ], [ ("n", Ra.Count_star) ], child_scan db) in
  check_push ctx plan ~link:"pid" ~vals:[ 5; 7 ]

let test_push_through_union () =
  let db = db_with_parent_child () in
  let ctx = Ra_eval.ctx_of_db db in
  let half cmp = Ra.Select (Ra.Binop (cmp, Ra.Col "v", Ra.Const (v_int 6)), child_scan db) in
  let plan = Ra.Union { all = true; inputs = [ half Ra.Lt; half Ra.Ge ] } in
  check_push ctx plan ~link:"pid" ~vals:[ 0; 49 ]

let test_push_transfers_across_join_equality () =
  (* the link column lives on the left, but the right side is restricted too
     through pid = c_pid *)
  let db = db_with_parent_child () in
  let ctx = Ra_eval.ctx_of_db db in
  let plan =
    Ra.Join
      ( Ra.Inner,
        Ra.Binop (Ra.Eq, Ra.Col "pid", Ra.Col "c_pid"),
        parent_scan db,
        Ra.Scan (Ra.Base "child", [ ("cid", "c_cid"); ("pid", "c_pid"); ("v", "c_v") ]) )
  in
  check_push ctx plan ~link:"pid" ~vals:[ 3; 4 ];
  (* and the physical effect: no full child scan *)
  Ra_eval.reset_scan_stats ctx.Ra_eval.scan_stats;
  let pushed = Ra_opt.push_semijoin ~keys:(keys_rel [ 3; 4 ]) ~on:[ ("pid", "k") ] plan in
  ignore (Ra_eval.eval ctx pushed);
  let child_rows =
    List.fold_left
      (fun acc (k, n) -> if k = "scan:child" then acc + n else acc)
      0 (Ra_eval.scan_stats_report ctx.Ra_eval.scan_stats)
  in
  Alcotest.(check int) "child probed, not scanned" 0 child_rows

let test_push_left_outer_keeps_padding () =
  let db = db_with_parent_child () in
  (* give one parent no children *)
  ignore
    (Database.delete_rows db ~table:"child" ~where:(fun r -> Value.equal r.(1) (v_int 9)));
  let ctx = Ra_eval.ctx_of_db db in
  let grouped = Ra.Group_by ([ "pid" ], [ ("n", Ra.Count_star) ], child_scan db) in
  let plan =
    Ra.Join
      ( Ra.Left_outer,
        Ra.Binop (Ra.Eq, Ra.Col "p_pid", Ra.Col "pid"),
        Ra.Scan (Ra.Base "parent", [ ("pid", "p_pid"); ("label", "label") ]),
        grouped )
  in
  check_push ctx plan ~link:"p_pid" ~vals:[ 8; 9; 10 ];
  (* parent 9 must survive as a padded row *)
  let pushed = Ra_opt.push_semijoin ~keys:(keys_rel [ 8; 9; 10 ]) ~on:[ ("p_pid", "k") ] plan in
  let rel = Ra_eval.eval ctx pushed in
  let nine =
    List.find (fun r -> Value.equal r.(0) (v_int 9)) rel.Ra_eval.rows
  in
  Alcotest.(check bool) "padded count" true (Value.is_null nine.(2))

let test_push_sideways_through_nested_join () =
  (* grandparent-style chain: the restriction enters via the left leg and
     must reach the grouped right leg through the join equality *)
  let db = db_with_parent_child () in
  let ctx = Ra_eval.ctx_of_db db in
  let grouped = Ra.Group_by ([ "pid" ], [ ("total", Ra.Sum (Ra.Col "v")) ], child_scan db) in
  let plan =
    Ra.Join
      ( Ra.Inner,
        Ra.Binop (Ra.Eq, Ra.Col "p_pid", Ra.Col "pid"),
        Ra.Scan (Ra.Base "parent", [ ("pid", "p_pid"); ("label", "label") ]),
        grouped )
  in
  check_push ctx plan ~link:"p_pid" ~vals:[ 11; 12 ];
  Ra_eval.reset_scan_stats ctx.Ra_eval.scan_stats;
  let pushed = Ra_opt.push_semijoin ~keys:(keys_rel [ 11; 12 ]) ~on:[ ("p_pid", "k") ] plan in
  ignore (Ra_eval.eval ctx pushed);
  let child_rows =
    List.fold_left
      (fun acc (k, n) -> if k = "scan:child" then acc + n else acc)
      0 (Ra_eval.scan_stats_report ctx.Ra_eval.scan_stats)
  in
  Alcotest.(check int) "grouped child side probed via sideways keys" 0 child_rows

let test_push_semijoin_deep_reports_progress () =
  let db = db_with_parent_child () in
  let scan = child_scan db in
  (* pushing into a bare scan only re-attaches at the root: no progress *)
  Alcotest.(check bool) "no progress on a bare scan" true
    (Ra_opt.push_semijoin_deep ~keys:(keys_rel [ 1 ]) ~on:[ ("pid", "k") ] scan = None);
  let deeper = Ra.Select (Ra.Binop (Ra.Gt, Ra.Col "v", Ra.Const (v_int 0)), scan) in
  Alcotest.(check bool) "progress through a select" true
    (Ra_opt.push_semijoin_deep ~keys:(keys_rel [ 1 ]) ~on:[ ("pid", "k") ] deeper <> None)

let test_shared_evaluated_once () =
  let db = db_with_parent_child () in
  let grouped = Ra.Group_by ([ "pid" ], [ ("n", Ra.Count_star) ], child_scan db) in
  (* the same subtree appears twice; CSE must make the engine evaluate it
     once per context *)
  let dup =
    Ra.Join
      ( Ra.Inner,
        Ra.Binop (Ra.Eq, Ra.Col "pid", Ra.Col "pid2"),
        grouped,
        Ra.Project ([ ("pid2", Ra.Col "pid"); ("n2", Ra.Col "n") ], grouped) )
  in
  let shared = Ra_opt.share_common_subplans dup in
  let run plan =
    let ctx = Ra_eval.ctx_of_db db in
    ignore (Ra_eval.eval ctx plan);
    List.fold_left
      (fun acc (k, n) -> if k = "scan:child" then acc + n else acc)
      0 (Ra_eval.scan_stats_report ctx.Ra_eval.scan_stats)
  in
  let unshared_rows = run dup in
  let shared_rows = run shared in
  Alcotest.(check bool)
    (Printf.sprintf "halved scans (%d -> %d)" unshared_rows shared_rows)
    true
    (shared_rows * 2 <= unshared_rows + 1);
  (* and of course the results agree *)
  Alcotest.(check bool) "same result" true
    (Ra_eval.equal_rel
       (Ra_eval.eval (Ra_eval.ctx_of_db db) dup)
       (Ra_eval.eval (Ra_eval.ctx_of_db db) shared))

let test_push_transition_joins_probes () =
  let db = db_with_parent_child () in
  (* simulate a firing: Δchild drives a join against the full parent table *)
  let captured = ref None in
  Database.create_trigger db
    { Database.trig_name = "c";
      trig_table = "child";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun tc -> captured := Some (Ra_eval.ctx_of_trigger tc));
    };
  ignore
    (Database.update_pk db ~table:"child" ~pk:[ v_int 7 ]
       ~set:(fun r -> [| r.(0); r.(1); v_int 99 |]));
  let tctx = Option.get !captured in
  let plan =
    Ra.Join
      ( Ra.Inner,
        Ra.Binop (Ra.Eq, Ra.Col "d_pid", Ra.Col "pid"),
        Ra.Scan (Ra.Delta "child", [ ("pid", "d_pid") ]),
        parent_scan db )
  in
  let optimized = Ra_opt.push_transition_joins plan in
  Alcotest.(check bool) "same result" true
    (Ra_eval.equal_rel (Ra_eval.eval tctx plan) (Ra_eval.eval tctx optimized));
  Ra_eval.reset_scan_stats tctx.Ra_eval.scan_stats;
  ignore (Ra_eval.eval tctx optimized);
  let parent_rows =
    List.fold_left
      (fun acc (k, n) -> if k = "scan:parent" then acc + n else acc)
      0 (Ra_eval.scan_stats_report tctx.Ra_eval.scan_stats)
  in
  Alcotest.(check int) "parent probed by pk, not scanned" 0 parent_rows

(* property: pushdown = filter, over random key sets and plan shapes *)

let plan_shapes db =
  [ ("scan", child_scan db, "pid");
    ( "select",
      Ra.Select (Ra.Binop (Ra.Lt, Ra.Col "v", Ra.Const (v_int 10)), child_scan db),
      "pid" );
    ("groupby", Ra.Group_by ([ "pid" ], [ ("n", Ra.Count_star) ], child_scan db), "pid");
    ( "join",
      Ra.Join
        ( Ra.Inner,
          Ra.Binop (Ra.Eq, Ra.Col "pid", Ra.Col "c_pid"),
          parent_scan db,
          Ra.Scan (Ra.Base "child", [ ("cid", "c_cid"); ("pid", "c_pid"); ("v", "c_v") ]) ),
      "pid" );
    ("distinct", Ra.Distinct (Ra.Project ([ ("pid", Ra.Col "pid") ], child_scan db)), "pid");
  ]

let prop_push_equals_filter =
  QCheck.Test.make ~name:"push_semijoin = filter (all shapes, random keys)" ~count:60
    (QCheck.make
       QCheck.Gen.(pair (int_range 0 4) (list_size (int_range 0 8) (int_range 0 55))))
    (fun (shape, vals) ->
      let db = db_with_parent_child () in
      let ctx = Ra_eval.ctx_of_db db in
      let _, plan, link = List.nth (plan_shapes db) (shape mod 5) in
      let pushed = Ra_opt.push_semijoin ~keys:(keys_rel vals) ~on:[ (link, "k") ] plan in
      Ra_eval.equal_rel (Ra_eval.eval ctx pushed) (filter_oracle ctx plan ~link ~vals))

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_push_equals_filter ]

let () =
  Alcotest.run "ra_opt"
    [ ( "push_semijoin",
        [ Alcotest.test_case "select/project" `Quick test_push_through_select_project;
          Alcotest.test_case "group-by" `Quick test_push_through_group_by;
          Alcotest.test_case "union" `Quick test_push_through_union;
          Alcotest.test_case "equality transfer" `Quick test_push_transfers_across_join_equality;
          Alcotest.test_case "left outer padding" `Quick test_push_left_outer_keeps_padding;
          Alcotest.test_case "sideways passing" `Quick test_push_sideways_through_nested_join;
          Alcotest.test_case "progress detection" `Quick test_push_semijoin_deep_reports_progress;
        ] );
      ( "other passes",
        [ Alcotest.test_case "CSE evaluates once" `Quick test_shared_evaluated_once;
          Alcotest.test_case "transition joins probe" `Quick test_push_transition_joins_probes;
        ] );
      ("properties", qcheck_tests);
    ]
