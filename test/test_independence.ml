(* PR 8: static query–update independence.

   At arm time the runtime derives a relevance signature per SQL trigger
   from its XQGM plan (observed base columns via [Lineage.observed],
   constant path-predicate filters via [Lineage.site_filters]); the firing
   path uses it to prove statements independent before any delta plan runs,
   counting those skips in [independence_skips].

   This file also pins the prefilter bookkeeping fixes that rode along:
   - the firing path's table-level skip accounting uses a cached catalog
     count (no per-statement walk of the trigger list);
   - registration is O(1) amortized (reversed buckets, creation-order view
     rebuilt lazily) and preserves firing order across drops;
   - statements whose transition tables are empty after dropping
     value-identical pairs never enter the firing path at all;
   - a qcheck differential: pruning on vs off is observationally identical
     (documents, firing logs, audit records, subscriber deliveries) across
     all four strategies and domains 1 vs 4 — pruning may only remove
     activations whose audit records carried zero kept pairs. *)

open Relkit
module Runtime = Trigview.Runtime
module Workload = Workloadlib.Workload

(* --- a flat single-table view with a column the view never reads --- *)

let flat_schema =
  Schema.make ~name:"flat"
    ~columns:
      [ ("id", Schema.TString); ("region", Schema.TString);
        ("val", Schema.TFloat); ("hidden", Schema.TString) ]
    ~primary_key:[ "id" ] ()

let flat_view =
  {|<doc>{for $r in view("default")/flat/row
    return <item><region>{$r/region}</region><val>{$r/val}</val></item>}</doc>|}

(* ten rows, two per region r0..r4 *)
let mk_mgr ?(independence = true) ?(strategy = Runtime.Grouped) () =
  let db = Database.create () in
  Database.create_table db flat_schema;
  Database.load_rows db ~table:"flat"
    (List.init 10 (fun i ->
         [| Value.String (Printf.sprintf "f%d" i);
            Value.String (Printf.sprintf "r%d" (i / 2));
            Value.Float (float_of_int i);
            Value.String "h" |]));
  let tuning = { Runtime.default_tuning with Runtime.independence } in
  let mgr = Runtime.create ~strategy ~tuning db in
  Runtime.define_view mgr ~name:"doc" flat_view;
  let log = ref [] in
  Runtime.register_action mgr ~name:"record" (fun fi ->
      log := fi.Runtime.fi_trigger :: !log);
  (db, mgr, log)

let region_trigger k =
  Printf.sprintf
    "CREATE TRIGGER t%d AFTER UPDATE ON view('doc')/item[./region = 'r%d'] \
     DO record(NEW_NODE)"
    k k

let set_val v r =
  let r = Array.copy r in
  r.(2) <- Value.Float v;
  r

let update_row db id set =
  Database.update_rows db ~table:"flat"
    ~where:(fun r -> Value.equal r.(0) (Value.String id))
    ~set

(* --- predicate-level pruning: equality path predicates --- *)

let test_eq_pruning () =
  let db, mgr, log = mk_mgr () in
  for k = 0 to 4 do
    Runtime.create_trigger mgr (region_trigger k)
  done;
  Runtime.reset_stats mgr;
  Alcotest.(check int) "one row" 1 (update_row db "f0" (set_val 99.0));
  let s = Runtime.stats mgr in
  Alcotest.(check int) "only the r0 trigger's plan ran" 1 s.Runtime.sql_firings;
  Alcotest.(check int) "four activations pruned" 4 s.Runtime.independence_skips;
  Alcotest.(check (list string)) "r0 trigger fired" [ "t0" ] !log;
  (* moving a row between regions keeps both sides' triggers live: the old
     value reaches r0's watcher via nabla, the new one r1's via delta *)
  log := [];
  Runtime.reset_stats mgr;
  ignore
    (update_row db "f0" (fun r ->
         let r = Array.copy r in
         r.(1) <- Value.String "r1";
         r));
  let s = Runtime.stats mgr in
  Alcotest.(check int) "both region watchers examined" 2 s.Runtime.sql_firings;
  Alcotest.(check int) "other three pruned" 3 s.Runtime.independence_skips

let test_insert_pruning () =
  let db, mgr, log = mk_mgr () in
  Runtime.create_trigger mgr
    "CREATE TRIGGER ti AFTER INSERT ON view('doc')/item[./region = 'r9'] \
     DO record(NEW_NODE)";
  Runtime.reset_stats mgr;
  Database.insert_rows db ~table:"flat"
    [ [| Value.String "fx"; Value.String "r7"; Value.Float 1.0; Value.String "h" |] ];
  let s = Runtime.stats mgr in
  Alcotest.(check int) "failing-constant insert pruned" 0 s.Runtime.sql_firings;
  Alcotest.(check int) "counted as independence skip" 1 s.Runtime.independence_skips;
  Alcotest.(check (list string)) "nothing fired" [] !log;
  Database.insert_rows db ~table:"flat"
    [ [| Value.String "fy"; Value.String "r9"; Value.Float 2.0; Value.String "h" |] ];
  Alcotest.(check (list string)) "matching insert fires" [ "ti" ] !log

(* --- column-level pruning: updates confined to unobserved columns --- *)

let test_column_pruning () =
  let db, mgr, log = mk_mgr () in
  Runtime.create_trigger mgr
    "CREATE TRIGGER tall AFTER UPDATE ON view('doc')/item DO record(NEW_NODE)";
  Runtime.reset_stats mgr;
  let n =
    update_row db "f0" (fun r ->
        let r = Array.copy r in
        r.(3) <- Value.String "z";
        r)
  in
  Alcotest.(check int) "row updated" 1 n;
  let s = Runtime.stats mgr in
  Alcotest.(check int) "unobserved-column update never fires" 0 s.Runtime.sql_firings;
  Alcotest.(check int) "pruned by column footprint" 1 s.Runtime.independence_skips;
  Alcotest.(check (list string)) "no dispatch" [] !log;
  ignore (update_row db "f0" (set_val 42.0));
  Alcotest.(check (list string)) "observed-column update fires" [ "tall" ] !log

(* --- the off switch restores the pre-independence behaviour --- *)

let test_pruning_off () =
  let db, mgr, log = mk_mgr ~independence:false () in
  for k = 0 to 4 do
    Runtime.create_trigger mgr (region_trigger k)
  done;
  Runtime.reset_stats mgr;
  ignore (update_row db "f0" (set_val 99.0));
  let s = Runtime.stats mgr in
  Alcotest.(check int) "every bucket member runs its plans" 5 s.Runtime.sql_firings;
  Alcotest.(check int) "no independence skips" 0 s.Runtime.independence_skips;
  (* the extra activations compute zero pairs, so dispatch is unchanged *)
  Alcotest.(check (list string)) "same firings as with pruning" [ "t0" ] !log

let test_explain_shows_signature () =
  let _, mgr, _ = mk_mgr () in
  Runtime.create_trigger mgr (region_trigger 3);
  let out = Runtime.explain mgr in
  let contains needle =
    let nh = String.length out and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub out i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "relevance line rendered" true (contains "relevance:");
  Alcotest.(check bool) "constant filter rendered" true (contains "region = 'r3'")

(* --- no-op statements never reach the firing path (satellite 3) --- *)

let test_noop_update_stats () =
  let db, mgr, log = mk_mgr () in
  Runtime.create_trigger mgr
    "CREATE TRIGGER tall AFTER UPDATE ON view('doc')/item DO record(NEW_NODE)";
  Runtime.reset_stats mgr;
  let n = update_row db "f0" Array.copy in
  Alcotest.(check int) "statement matched the row" 1 n;
  let s = Runtime.stats mgr in
  Alcotest.(check int) "no firings" 0 s.Runtime.sql_firings;
  Alcotest.(check int) "no prefilter skips" 0 s.Runtime.prefilter_skips;
  Alcotest.(check int) "no independence skips" 0 s.Runtime.independence_skips;
  Alcotest.(check int) "no dispatch" 0 s.Runtime.actions_dispatched;
  Alcotest.(check (list string)) "log empty" [] !log

(* --- prefilter bookkeeping at the Database layer (satellites 1 and 2) --- *)

let mk_flat_db () =
  let db = Database.create () in
  Database.create_table db flat_schema;
  Database.create_table db
    (Schema.make ~name:"lone"
       ~columns:[ ("id", Schema.TString); ("x", Schema.TFloat) ]
       ~primary_key:[ "id" ] ());
  Database.load_rows db ~table:"flat"
    [ [| Value.String "f0"; Value.String "r0"; Value.Float 0.0; Value.String "h" |] ];
  Database.load_rows db ~table:"lone" [ [| Value.String "l0"; Value.Float 0.0 |] ];
  db

let watch db fired name =
  Database.create_trigger db
    { Database.trig_name = name;
      trig_table = "flat";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun _ -> fired := name :: !fired);
    }

let test_registration_order () =
  let db = mk_flat_db () in
  let fired = ref [] in
  List.iter (watch db fired) [ "a"; "b"; "c" ];
  let names () =
    List.map
      (fun t -> t.Database.trig_name)
      (Database.triggers_on db ~table:"flat" ~event:Database.Update)
  in
  Alcotest.(check (list string)) "creation order" [ "a"; "b"; "c" ] (names ());
  ignore (update_row db "f0" (set_val 1.0));
  Alcotest.(check (list string)) "firing order = creation order" [ "a"; "b"; "c" ]
    (List.rev !fired);
  (* dropping from the middle and re-registering keeps the order coherent *)
  Database.drop_trigger db "b";
  watch db fired "d";
  Alcotest.(check (list string)) "order after drop + create" [ "a"; "c"; "d" ] (names ());
  fired := [];
  ignore (update_row db "f0" (set_val 2.0));
  Alcotest.(check (list string)) "firing order after drop" [ "a"; "c"; "d" ]
    (List.rev !fired);
  Alcotest.(check int) "cached catalog count" 3 (Database.trigger_count db)

let test_prefilter_skip_accounting () =
  let db = mk_flat_db () in
  let fired = ref [] in
  List.iter (watch db fired) [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ];
  Database.reset_trigger_skips db;
  (* bucket miss on another table: the whole catalog is skipped, via the
     cached count (no per-statement walk of a 7-element list) *)
  ignore
    (Database.update_rows db ~table:"lone"
       ~where:(fun _ -> true)
       ~set:(fun r -> [| r.(0); Value.Float 9.0 |]));
  Alcotest.(check int) "whole catalog skipped on a foreign table" 7
    (Database.trigger_skips db);
  (* bucket miss on the same table, different event *)
  Database.insert_rows db ~table:"flat"
    [ [| Value.String "f9"; Value.String "r9"; Value.Float 9.0; Value.String "h" |] ];
  Alcotest.(check int) "same-table other-event statement skips all" 14
    (Database.trigger_skips db);
  Alcotest.(check (list string)) "nothing fired" [] !fired;
  Alcotest.(check int) "count maintained across DML" 7 (Database.trigger_count db)

(* --- qcheck differential: pruning on vs off, all strategies, 1 vs 4
   domains.  Ops mix leaf price updates (never prunable: price is
   observed), top-element renames (prunable against the path-predicated
   triggers' name constants) and no-op updates (dropped pre-firing). --- *)

let small =
  { Workload.depth = 3; leaf_tuples = 96; fanout = 8; num_triggers = 12; num_satisfied = 4 }

(* Three trigger families: path-predicated (the signature carries an
   equality on t1.name), WHERE-only (constants generalized away — no
   predicate pruning, column pruning only), and WHERE + count conjunct
   (its own GROUPED family). *)
let install_mixed_triggers mgr ~target =
  for i = 0 to small.Workload.num_triggers - 1 do
    let const =
      if i < small.Workload.num_satisfied then target
      else Printf.sprintf "nomatch%d" i
    in
    let text =
      if i mod 3 = 0 then
        Printf.sprintf
          "CREATE TRIGGER mix%d AFTER UPDATE ON view('doc')/e1[@name = '%s'] \
           DO record(NEW_NODE)"
          i const
      else if i mod 3 = 1 then
        Printf.sprintf
          "CREATE TRIGGER mix%d AFTER UPDATE ON view('doc')/e1 WHERE \
           NEW_NODE/@name = '%s' DO record(NEW_NODE)"
          i const
      else
        Printf.sprintf
          "CREATE TRIGGER mix%d AFTER UPDATE ON view('doc')/e1 WHERE \
           NEW_NODE/@name = '%s' and count(NEW_NODE/e2) >= 1 DO record(NEW_NODE)"
          i const
    in
    Runtime.create_trigger mgr text
  done

let apply_op built (kind, top, step) =
  let top = top mod Array.length built.Workload.top_names in
  match kind with
  | 0 -> Workload.update_leaf built ~top_index:top ~step
  | 1 ->
    (* rename the top element: prunable for watchers of other names *)
    ignore
      (Database.update_pk built.Workload.db ~table:"t1"
         ~pk:[ Value.String (Printf.sprintf "t1r%d" top) ]
         ~set:(fun r -> [| r.(0); Value.String (Printf.sprintf "name%d~%d" top step) |]))
  | _ ->
    (* identity update: dropped before the firing path in both runs *)
    ignore
      (Database.update_pk built.Workload.db ~table:"t1"
         ~pk:[ Value.String (Printf.sprintf "t1r%d" top) ]
         ~set:Array.copy)

let run_workload ~independence ~domains ~strategy ops =
  let built = Workload.build small in
  let db = built.Workload.db in
  let tuning = { Runtime.default_tuning with Runtime.domains; independence } in
  let mgr = Runtime.create ~strategy ~tuning db in
  Runtime.define_view mgr ~name:"doc" built.Workload.view_text;
  let log = ref [] in
  Runtime.register_action mgr ~name:"record" (fun fi ->
      log :=
        ( fi.Runtime.fi_stmt_id,
          fi.Runtime.fi_trigger,
          Database.string_of_event fi.Runtime.fi_event )
        :: !log);
  let target = built.Workload.top_names.(0) in
  install_mixed_triggers mgr ~target;
  let hub = Subscribe.attach mgr in
  let deliveries = ref [] in
  Subscribe.add_callback hub (fun n ->
      deliveries := Subscribe.Notification.to_ndjson n :: !deliveries);
  Subscribe.subscribe hub
    (Printf.sprintf
       "s0 AFTER UPDATE ON view('doc')/e1 WHERE NEW_NODE/@name = '%s'" target);
  Subscribe.subscribe hub "s1 AFTER UPDATE ON view('doc')/e1";
  Runtime.set_audit mgr true;
  List.iter
    (fun op ->
      apply_op built op;
      ignore (Subscribe.flush hub))
    ops;
  let doc =
    let schema_of name = Table.schema (Database.get_table db name) in
    let view =
      Xquery.Compile.view_of_string ~schema_of ~name:"doc" built.Workload.view_text
    in
    Xmlkit.Xml.to_string (Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view)
  in
  let audit =
    List.map
      (fun r ->
        Obs.Audit.
          ( r.stmt_id,
            r.sql_trigger,
            r.delta_rows,
            r.nabla_rows,
            r.pairs_computed,
            r.pairs_spurious,
            r.pairs_kept,
            r.dispatched ))
      (Runtime.audit_records mgr)
  in
  (doc, List.sort compare !log, List.sort compare audit, List.sort compare !deliveries)

(* Multiset difference of the off-run's audit records against the on-run's:
   [Some removed] when on ⊆ off (both sorted), [None] when the on-run has a
   record the off-run lacks. *)
let rec audit_removed off on =
  match off, on with
  | rest, [] -> Some rest
  | [], _ :: _ -> None
  | o :: off', n :: on' ->
    if o = n then audit_removed off' on'
    else if compare o n < 0 then
      Option.map (fun d -> o :: d) (audit_removed off' on)
    else None

let strategies =
  [ Runtime.Ungrouped; Runtime.Grouped; Runtime.Grouped_agg; Runtime.Materialized ]

let op_gen =
  QCheck.Gen.(triple (int_range 0 2) (int_range 0 11) (int_range 0 40))

let prop_independence_differential =
  QCheck.Test.make
    ~name:"pruning on = pruning off (doc, log, audit, deliveries)" ~count:4
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 4) op_gen))
    (fun ops ->
      List.for_all
        (fun strategy ->
          List.for_all
            (fun domains ->
              let doc_on, log_on, audit_on, del_on =
                run_workload ~independence:true ~domains ~strategy ops
              in
              let doc_off, log_off, audit_off, del_off =
                run_workload ~independence:false ~domains ~strategy ops
              in
              doc_on = doc_off && log_on = log_off && del_on = del_off
              &&
              match audit_removed audit_off audit_on with
              | None -> false  (* pruning may never add an activation *)
              | Some removed ->
                (* removed activations must have been provably idle *)
                List.for_all
                  (fun (_, _, _, _, _, _, kept, dispatched) ->
                    kept = 0 && dispatched = 0)
                  removed)
            [ 1; 4 ])
        strategies)

let () =
  Alcotest.run "independence"
    [ ( "pruning",
        [ Alcotest.test_case "equality predicate" `Quick test_eq_pruning;
          Alcotest.test_case "insert constant filter" `Quick test_insert_pruning;
          Alcotest.test_case "column footprint" `Quick test_column_pruning;
          Alcotest.test_case "off switch" `Quick test_pruning_off;
          Alcotest.test_case "explain signature" `Quick test_explain_shows_signature;
        ] );
      ( "firing path",
        [ Alcotest.test_case "no-op update stats" `Quick test_noop_update_stats;
          Alcotest.test_case "registration order" `Quick test_registration_order;
          Alcotest.test_case "prefilter accounting" `Quick test_prefilter_skip_accounting;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest [ prop_independence_differential ] );
    ]
