(* Tests for the relational substrate: values, schemas, tables, the database
   with statement-level triggers, and the Ra executor. *)

open Relkit

let v_int i = Value.Int i
let v_str s = Value.String s
let v_float f = Value.Float f

(* --- Value --- *)

let test_value_compare () =
  Alcotest.(check bool) "null < int" true (Value.compare Value.Null (v_int 0) < 0);
  Alcotest.(check bool) "int/float numeric" true (Value.compare (v_int 2) (v_float 2.0) = 0);
  Alcotest.(check bool) "int < float" true (Value.compare (v_int 2) (v_float 2.5) < 0);
  Alcotest.(check bool) "string order" true (Value.compare (v_str "a") (v_str "b") < 0)

let test_value_sql_eq () =
  Alcotest.(check bool) "null <> null" false (Value.sql_eq Value.Null Value.Null);
  Alcotest.(check bool) "null <> 1" false (Value.sql_eq Value.Null (v_int 1));
  Alcotest.(check bool) "1 = 1.0" true (Value.sql_eq (v_int 1) (v_float 1.0))

let test_value_hash_consistent () =
  (* equal values must hash equally, including across Int/Float *)
  Alcotest.(check int) "hash 2 = hash 2.0" (Value.hash (v_int 2)) (Value.hash (v_float 2.0))

let test_value_arith () =
  Alcotest.(check bool) "int add" true (Value.equal (Value.add (v_int 2) (v_int 3)) (v_int 5));
  Alcotest.(check bool) "mixed mul" true
    (Value.equal (Value.mul (v_int 2) (v_float 1.5)) (v_float 3.0));
  Alcotest.(check bool) "null propagates" true (Value.is_null (Value.add Value.Null (v_int 1)));
  Alcotest.check_raises "div by zero" (Invalid_argument "Value.div: division by zero")
    (fun () -> ignore (Value.div (v_int 1) (v_int 0)))

let test_value_literals () =
  Alcotest.(check string) "string quoted" "'o''brien'" (Value.to_sql_literal (v_str "o'brien"));
  Alcotest.(check string) "null" "NULL" (Value.to_sql_literal Value.Null)

(* --- Schema --- *)

let product_schema =
  Schema.make ~name:"product"
    ~columns:[ ("pid", Schema.TString); ("pname", Schema.TString); ("mfr", Schema.TString) ]
    ~primary_key:[ "pid" ] ()

let vendor_schema =
  Schema.make ~name:"vendor"
    ~foreign_keys:
      [ { Schema.fk_columns = [ "pid" ]; fk_table = "product"; fk_ref_columns = [ "pid" ] } ]
    ~columns:[ ("vid", Schema.TString); ("pid", Schema.TString); ("price", Schema.TFloat) ]
    ~primary_key:[ "vid"; "pid" ] ()

let test_schema_basics () =
  Alcotest.(check (list string)) "columns" [ "pid"; "pname"; "mfr" ]
    (Schema.column_names product_schema);
  Alcotest.(check int) "col_index" 1 (Schema.col_index product_schema "pname");
  Alcotest.(check bool) "pk not nullable" false
    (List.find (fun c -> c.Schema.col_name = "pid") product_schema.Schema.columns)
      .Schema.nullable

let test_schema_rejects_bad_pk () =
  Alcotest.check_raises "unknown pk col"
    (Invalid_argument
       "Schema.make: primary key references unknown column \"nope\" in table \"t\"")
    (fun () ->
      ignore
        (Schema.make ~name:"t" ~columns:[ ("a", Schema.TInt) ] ~primary_key:[ "nope" ] ()))

let test_schema_validate_row () =
  let ok = Schema.validate_row product_schema [| v_str "P1"; v_str "CRT"; v_str "X" |] in
  Alcotest.(check bool) "valid" true (Result.is_ok ok);
  let bad_arity = Schema.validate_row product_schema [| v_str "P1" |] in
  Alcotest.(check bool) "arity" true (Result.is_error bad_arity);
  let bad_null = Schema.validate_row product_schema [| Value.Null; v_str "a"; v_str "b" |] in
  Alcotest.(check bool) "null pk" true (Result.is_error bad_null);
  let bad_type = Schema.validate_row product_schema [| v_str "P1"; v_int 3; v_str "b" |] in
  Alcotest.(check bool) "type" true (Result.is_error bad_type)

(* --- Table --- *)

let mk_product_table () =
  let t = Table.create product_schema in
  Table.insert_exn t [| v_str "P1"; v_str "CRT 15"; v_str "Samsung" |];
  Table.insert_exn t [| v_str "P2"; v_str "LCD 19"; v_str "Samsung" |];
  Table.insert_exn t [| v_str "P3"; v_str "CRT 15"; v_str "Viewsonic" |];
  t

let test_table_pk_lookup () =
  let t = mk_product_table () in
  Alcotest.(check int) "count" 3 (Table.row_count t);
  (match Table.find_pk t [ v_str "P2" ] with
  | Some row -> Alcotest.(check string) "pname" "LCD 19" (Value.to_string row.(1))
  | None -> Alcotest.fail "P2 not found");
  Alcotest.(check bool) "missing" true (Table.find_pk t [ v_str "P9" ] = None)

let test_table_duplicate_pk () =
  let t = mk_product_table () in
  Alcotest.check_raises "dup"
    (Invalid_argument "Table.insert: duplicate primary key (P1) in table \"product\"")
    (fun () -> Table.insert_exn t [| v_str "P1"; v_str "x"; v_str "y" |])

let test_table_secondary_index () =
  let t = mk_product_table () in
  Table.create_index t "pname";
  let crt = Table.lookup t ~column:"pname" (v_str "CRT 15") in
  Alcotest.(check int) "two CRT 15" 2 (List.length crt);
  (* index maintained across replace and delete *)
  ignore (Table.replace_exn t [| v_str "P1"; v_str "LED 20"; v_str "Samsung" |]);
  Alcotest.(check int) "one CRT 15 after update" 1
    (List.length (Table.lookup t ~column:"pname" (v_str "CRT 15")));
  Alcotest.(check int) "one LED 20" 1
    (List.length (Table.lookup t ~column:"pname" (v_str "LED 20")));
  ignore (Table.delete_pk t [ v_str "P3" ]);
  Alcotest.(check int) "none after delete" 0
    (List.length (Table.lookup t ~column:"pname" (v_str "CRT 15")))

let test_table_lookup_without_index_scans () =
  let t = mk_product_table () in
  let rows = Table.lookup t ~column:"mfr" (v_str "Samsung") in
  Alcotest.(check int) "scan fallback" 2 (List.length rows)

(* Regression: NULL keys used to be entered into secondary indexes, so an
   indexed lookup on NULL returned the NULL-keyed rows while the scan path
   (SQL semantics: NULL = NULL is unknown) returned nothing. *)
let test_table_null_keys_not_indexed () =
  let schema =
    Schema.make ~name:"n"
      ~columns:[ ("id", Schema.TInt); ("k", Schema.TString); ("m", Schema.TString) ]
      ~primary_key:[ "id" ] ()
  in
  let t = Table.create schema in
  Table.insert_exn t [| v_int 1; v_str "a"; Value.Null |];
  Table.insert_exn t [| v_int 2; Value.Null; Value.Null |];
  Table.insert_exn t [| v_int 3; Value.Null; v_str "x" |];
  (* index built over existing rows: NULLs skipped *)
  Table.create_index t "k";
  Alcotest.(check int) "index holds only the non-NULL key" 1 (Table.index_entry_count t "k");
  (* both lookup paths agree: NULL matches nothing *)
  Alcotest.(check int) "indexed NULL lookup empty" 0
    (List.length (Table.lookup t ~column:"k" Value.Null));
  Alcotest.(check int) "scan NULL lookup empty" 0
    (List.length (Table.lookup t ~column:"m" Value.Null));
  (* non-NULL lookups unaffected by NULL-keyed rows *)
  Alcotest.(check int) "indexed lookup" 1
    (List.length (Table.lookup t ~column:"k" (v_str "a")));
  (* incremental maintenance across NULL <-> non-NULL transitions *)
  ignore (Table.replace_exn t [| v_int 2; v_str "a"; Value.Null |]);
  Alcotest.(check int) "NULL -> 'a' enters index" 2
    (List.length (Table.lookup t ~column:"k" (v_str "a")));
  ignore (Table.replace_exn t [| v_int 1; Value.Null; Value.Null |]);
  Alcotest.(check int) "'a' -> NULL leaves index" 1
    (List.length (Table.lookup t ~column:"k" (v_str "a")));
  Alcotest.(check int) "still no NULL entry" 1 (Table.index_entry_count t "k");
  ignore (Table.delete_pk t [ v_int 3 ]);
  Alcotest.(check int) "deleting a NULL-keyed row is a no-op on the index" 1
    (Table.index_entry_count t "k")

(* --- Database: DML, constraints, triggers --- *)

let mk_db () =
  let db = Database.create () in
  Database.create_table db product_schema;
  Database.create_table db vendor_schema;
  Database.create_index db ~table:"vendor" ~column:"pid";
  Database.insert_rows db ~table:"product"
    [ [| v_str "P1"; v_str "CRT 15"; v_str "Samsung" |];
      [| v_str "P2"; v_str "LCD 19"; v_str "Samsung" |];
      [| v_str "P3"; v_str "CRT 15"; v_str "Viewsonic" |];
    ];
  Database.insert_rows db ~table:"vendor"
    [ [| v_str "Amazon"; v_str "P1"; v_float 100.0 |];
      [| v_str "Bestbuy"; v_str "P1"; v_float 120.0 |];
      [| v_str "Circuitcity"; v_str "P1"; v_float 150.0 |];
      [| v_str "Buy.com"; v_str "P2"; v_float 200.0 |];
      [| v_str "Bestbuy"; v_str "P2"; v_float 180.0 |];
      [| v_str "Bestbuy"; v_str "P3"; v_float 120.0 |];
      [| v_str "Circuitcity"; v_str "P3"; v_float 140.0 |];
    ];
  db

let test_db_fk_violation () =
  let db = mk_db () in
  Alcotest.check_raises "fk"
    (Invalid_argument "foreign key violation: (P9) not present in \"product\"(pid)")
    (fun () ->
      Database.insert_rows db ~table:"vendor" [ [| v_str "Alice"; v_str "P9"; v_float 1.0 |] ])

let test_db_update_fires_trigger_with_transitions () =
  let db = mk_db () in
  let seen = ref None in
  Database.create_trigger db
    { Database.trig_name = "t1";
      trig_table = "vendor";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun ctx -> seen := Some (ctx.Database.inserted, ctx.Database.deleted));
    };
  let n =
    Database.update_rows db ~table:"vendor"
      ~where:(fun row -> Value.equal row.(0) (v_str "Amazon"))
      ~set:(fun row -> [| row.(0); row.(1); v_float 75.0 |])
  in
  Alcotest.(check int) "one row updated" 1 n;
  match !seen with
  | Some ([ ins ], [ del ]) ->
    Alcotest.(check string) "new price" "75.0" (Value.to_string ins.(2));
    Alcotest.(check string) "old price" "100.0" (Value.to_string del.(2))
  | _ -> Alcotest.fail "trigger did not fire with singleton transition tables"

let test_db_statement_level_firing () =
  let db = mk_db () in
  let fired = ref 0 in
  let delta_size = ref 0 in
  Database.create_trigger db
    { Database.trig_name = "t1";
      trig_table = "vendor";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body =
        (fun ctx ->
          incr fired;
          delta_size := List.length ctx.Database.inserted);
    };
  (* One statement touching 3 rows fires the trigger once with |delta| = 3. *)
  let n =
    Database.update_rows db ~table:"vendor"
      ~where:(fun row -> Value.equal row.(1) (v_str "P1"))
      ~set:(fun row -> [| row.(0); row.(1); Value.add row.(2) (v_float 1.0) |])
  in
  Alcotest.(check int) "three rows" 3 n;
  Alcotest.(check int) "fired once" 1 !fired;
  Alcotest.(check int) "delta has 3 rows" 3 !delta_size

let test_db_no_fire_on_empty_statement () =
  let db = mk_db () in
  let fired = ref 0 in
  Database.create_trigger db
    { Database.trig_name = "t1";
      trig_table = "vendor";
      trig_event = Database.Delete;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun _ -> incr fired);
    };
  let n = Database.delete_rows db ~table:"vendor" ~where:(fun _ -> false) in
  Alcotest.(check int) "nothing deleted" 0 n;
  Alcotest.(check int) "not fired" 0 !fired

let test_db_insert_delete_events () =
  let db = mk_db () in
  let log = ref [] in
  List.iter
    (fun (name, event) ->
      Database.create_trigger db
        { Database.trig_name = name;
          trig_table = "vendor";
          trig_event = event;
          prepare = None;
      relevance = None;
          sql_text = "(test)";
          body =
            (fun ctx ->
              log :=
                (name, List.length ctx.Database.inserted, List.length ctx.Database.deleted)
                :: !log);
        })
    [ ("ins", Database.Insert); ("del", Database.Delete) ];
  Database.insert_rows db ~table:"vendor" [ [| v_str "Newegg"; v_str "P2"; v_float 190.0 |] ];
  ignore (Database.delete_pk db ~table:"vendor" ~pk:[ v_str "Newegg"; v_str "P2" ]);
  Alcotest.(check (list (triple string int int)))
    "events" [ ("del", 0, 1); ("ins", 1, 0) ] !log

let test_db_trigger_recursion_cap () =
  let db = mk_db () in
  (* each statement must genuinely change the row (identity updates are
     dropped before the firing path), so toggle pname back and forth *)
  let toggle row =
    let next = if Value.equal row.(1) (v_str "ping") then "pong" else "ping" in
    [| row.(0); v_str next; row.(2) |]
  in
  Database.create_trigger db
    { Database.trig_name = "loop";
      trig_table = "product";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body =
        (fun ctx ->
          ignore
            (Database.update_rows ctx.Database.db ~table:"product"
               ~where:(fun row -> Value.equal row.(0) (v_str "P1"))
               ~set:toggle));
    };
  Alcotest.check_raises "depth cap"
    (Invalid_argument "Database: trigger recursion depth exceeded")
    (fun () ->
      ignore
        (Database.update_rows db ~table:"product"
           ~where:(fun row -> Value.equal row.(0) (v_str "P1"))
           ~set:toggle))

let test_db_load_rows_skips_triggers () =
  let db = mk_db () in
  let fired = ref 0 in
  Database.create_trigger db
    { Database.trig_name = "t";
      trig_table = "vendor";
      trig_event = Database.Insert;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun _ -> incr fired);
    };
  Database.load_rows db ~table:"vendor" [ [| v_str "Load"; v_str "P1"; v_float 1.0 |] ];
  Alcotest.(check int) "no fire" 0 !fired;
  Alcotest.(check int) "loaded" 8 (Table.row_count (Database.get_table db "vendor"))

(* --- Ra_eval --- *)

let ctx db = Ra_eval.ctx_of_db db

let scan_vendor db = Ra.scan (Ra.Base "vendor") (Table.schema (Database.get_table db "vendor"))

let scan_product db =
  Ra.scan (Ra.Base "product") (Table.schema (Database.get_table db "product"))

let test_ra_scan_select_project () =
  let db = mk_db () in
  let plan =
    Ra.Project
      ( [ ("vid", Ra.Col "vid") ],
        Ra.Select (Ra.Binop (Ra.Gt, Ra.Col "price", Ra.Const (v_float 150.0)), scan_vendor db)
      )
  in
  let rel = Ra_eval.eval (ctx db) plan in
  let vids = List.sort compare (List.map (fun r -> Value.to_string r.(0)) rel.Ra_eval.rows) in
  Alcotest.(check (list string)) "expensive vendors" [ "Bestbuy"; "Buy.com" ] vids

let join_plan db kind =
  Ra.Join
    ( kind,
      Ra.Binop (Ra.Eq, Ra.Col "pid", Ra.Col "v_pid"),
      scan_product db,
      Ra.Scan
        (Ra.Base "vendor", [ ("vid", "v_vid"); ("pid", "v_pid"); ("price", "v_price") ]) )

let test_ra_inner_join () =
  let db = mk_db () in
  let rel = Ra_eval.eval (ctx db) (join_plan db Ra.Inner) in
  Alcotest.(check int) "7 pairs" 7 (List.length rel.Ra_eval.rows)

let test_ra_inl_equals_hash_join () =
  let db = mk_db () in
  (* The vendor scan is index-probeable on pid; compare against the same join
     forced through a hash join by hiding the scan under a Distinct. *)
  let inl = Ra_eval.eval (ctx db) (join_plan db Ra.Inner) in
  let hash =
    Ra_eval.eval (ctx db)
      (Ra.Join
         ( Ra.Inner,
           Ra.Binop (Ra.Eq, Ra.Col "pid", Ra.Col "v_pid"),
           scan_product db,
           Ra.Distinct
             (Ra.Scan
                ( Ra.Base "vendor",
                  [ ("vid", "v_vid"); ("pid", "v_pid"); ("price", "v_price") ] )) ))
  in
  Alcotest.(check bool) "same result" true (Ra_eval.equal_rel inl hash)

let test_ra_left_outer_join () =
  let db = mk_db () in
  (* delete all P3 vendors, then left-outer join keeps P3 padded with nulls *)
  ignore
    (Database.delete_rows db ~table:"vendor" ~where:(fun row ->
         Value.equal row.(1) (v_str "P3")));
  let rel = Ra_eval.eval (ctx db) (join_plan db Ra.Left_outer) in
  let p3_rows = List.filter (fun r -> Value.equal r.(0) (v_str "P3")) rel.Ra_eval.rows in
  (match p3_rows with
  | [ row ] -> Alcotest.(check bool) "padded" true (Value.is_null row.(3))
  | _ -> Alcotest.fail "expected exactly one padded P3 row");
  Alcotest.(check int) "5 + 1 rows" 6 (List.length rel.Ra_eval.rows)

let test_ra_anti_joins () =
  let db = mk_db () in
  ignore
    (Database.delete_rows db ~table:"vendor" ~where:(fun row ->
         Value.equal row.(1) (v_str "P3")));
  let left_anti = Ra_eval.eval (ctx db) (join_plan db Ra.Left_anti) in
  Alcotest.(check int) "P3 has no vendors" 1 (List.length left_anti.Ra_eval.rows);
  let right_anti =
    Ra_eval.eval (ctx db)
      (Ra.Join
         ( Ra.Right_anti,
           Ra.Binop (Ra.Eq, Ra.Col "pid", Ra.Col "v_pid"),
           Ra.Select (Ra.Binop (Ra.Eq, Ra.Col "pid", Ra.Const (v_str "P1")), scan_product db),
           Ra.Scan
             (Ra.Base "vendor", [ ("vid", "v_vid"); ("pid", "v_pid"); ("price", "v_price") ])
         ))
  in
  (* vendors whose product is not P1 *)
  Alcotest.(check int) "non-P1 vendors" 2 (List.length right_anti.Ra_eval.rows)

let test_ra_group_by () =
  let db = mk_db () in
  let plan =
    Ra.Group_by
      ([ "pid" ], [ ("n", Ra.Count_star); ("minp", Ra.Min (Ra.Col "price")) ], scan_vendor db)
  in
  let rel = Ra_eval.sorted (Ra_eval.eval (ctx db) plan) in
  let show r =
    Printf.sprintf "%s:%s:%s" (Value.to_string r.(0)) (Value.to_string r.(1))
      (Value.to_string r.(2))
  in
  Alcotest.(check (list string))
    "groups"
    [ "P1:3:100.0"; "P2:2:180.0"; "P3:2:120.0" ]
    (List.map show rel.Ra_eval.rows)

let test_ra_scalar_aggregate_over_empty () =
  let db = mk_db () in
  let plan =
    Ra.Group_by
      ( [],
        [ ("n", Ra.Count_star); ("s", Ra.Sum (Ra.Col "price")) ],
        Ra.Select (Ra.Const (Value.Bool false), scan_vendor db) )
  in
  let rel = Ra_eval.eval (ctx db) plan in
  match rel.Ra_eval.rows with
  | [ row ] ->
    Alcotest.(check string) "count 0" "0" (Value.to_string row.(0));
    Alcotest.(check bool) "sum null" true (Value.is_null row.(1))
  | _ -> Alcotest.fail "scalar aggregate must yield one row"

let test_ra_union_distinct () =
  let db = mk_db () in
  let pids = Ra.Project ([ ("pid", Ra.Col "pid") ], scan_vendor db) in
  let u = Ra.Union { all = false; inputs = [ pids; pids ] } in
  let rel = Ra_eval.eval (ctx db) u in
  Alcotest.(check int) "3 distinct pids" 3 (List.length rel.Ra_eval.rows);
  let ua = Ra.Union { all = true; inputs = [ pids; pids ] } in
  Alcotest.(check int) "14 with all" 14 (List.length (Ra_eval.eval (ctx db) ua).Ra_eval.rows)

let test_ra_order_by () =
  let db = mk_db () in
  let plan =
    Ra.Order_by
      ( [ ("price", Ra.Desc); ("vid", Ra.Asc) ],
        Ra.Project ([ ("vid", Ra.Col "vid"); ("price", Ra.Col "price") ], scan_vendor db) )
  in
  let rel = Ra_eval.eval (ctx db) plan in
  match rel.Ra_eval.rows with
  | first :: _ -> Alcotest.(check string) "max price first" "Buy.com" (Value.to_string first.(0))
  | [] -> Alcotest.fail "empty"

(* --- transition tables and OLD-OF --- *)

let with_update_ctx db f =
  (* Capture a real trigger context from an actual UPDATE statement. *)
  let captured = ref None in
  Database.create_trigger db
    { Database.trig_name = "capture";
      trig_table = "vendor";
      trig_event = Database.Update;
      prepare = None;
      relevance = None;
      sql_text = "(test)";
      body = (fun ctx -> captured := Some (Ra_eval.ctx_of_trigger ctx));
    };
  ignore
    (Database.update_rows db ~table:"vendor"
       ~where:(fun row -> Value.equal row.(0) (v_str "Amazon"))
       ~set:(fun row -> [| row.(0); row.(1); v_float 75.0 |]));
  Database.drop_trigger db "capture";
  match !captured with
  | Some tctx -> f tctx
  | None -> Alcotest.fail "trigger did not fire"

let test_ra_transition_tables () =
  let db = mk_db () in
  with_update_ctx db (fun tctx ->
      let delta = Ra_eval.eval tctx (Ra.scan (Ra.Delta "vendor") vendor_schema) in
      let nabla = Ra_eval.eval tctx (Ra.scan (Ra.Nabla "vendor") vendor_schema) in
      Alcotest.(check int) "delta 1" 1 (List.length delta.Ra_eval.rows);
      Alcotest.(check int) "nabla 1" 1 (List.length nabla.Ra_eval.rows);
      (match delta.Ra_eval.rows with
      | [ row ] -> Alcotest.(check string) "new" "75.0" (Value.to_string row.(2))
      | _ -> Alcotest.fail "delta");
      match nabla.Ra_eval.rows with
      | [ row ] -> Alcotest.(check string) "old" "100.0" (Value.to_string row.(2))
      | _ -> Alcotest.fail "nabla")

let test_ra_old_of_reconstruction () =
  let db = mk_db () in
  with_update_ctx db (fun tctx ->
      let old = Ra_eval.eval tctx (Ra.scan (Ra.Old_of "vendor") vendor_schema) in
      Alcotest.(check int) "still 7 rows" 7 (List.length old.Ra_eval.rows);
      let amazon = List.find (fun r -> Value.equal r.(0) (v_str "Amazon")) old.Ra_eval.rows in
      Alcotest.(check string) "pre-update price" "100.0" (Value.to_string amazon.(2));
      (* and the post-state still says 75 *)
      let cur = Ra_eval.eval tctx (Ra.scan (Ra.Base "vendor") vendor_schema) in
      let amazon' = List.find (fun r -> Value.equal r.(0) (v_str "Amazon")) cur.Ra_eval.rows in
      Alcotest.(check string) "post-update price" "75.0" (Value.to_string amazon'.(2)))

let test_ra_old_of_probe_matches_full_scan () =
  let db = mk_db () in
  with_update_ctx db (fun tctx ->
      (* join affected pids against OLD-OF(vendor): the INL path (index on
         pid) must agree with a hash join over the full reconstruction. *)
      let keys = Ra.Values ([ "k" ], [ [| v_str "P1" |] ]) in
      let probe_join =
        Ra.Join
          ( Ra.Inner,
            Ra.Binop (Ra.Eq, Ra.Col "k", Ra.Col "pid"),
            keys,
            Ra.scan (Ra.Old_of "vendor") vendor_schema )
      in
      let hash_join =
        Ra.Join
          ( Ra.Inner,
            Ra.Binop (Ra.Eq, Ra.Col "k", Ra.Col "pid"),
            keys,
            Ra.Distinct (Ra.scan (Ra.Old_of "vendor") vendor_schema) )
      in
      let a = Ra_eval.eval tctx probe_join and b = Ra_eval.eval tctx hash_join in
      Alcotest.(check bool) "INL = hash over OLD-OF" true (Ra_eval.equal_rel a b);
      Alcotest.(check int) "3 old P1 vendors" 3 (List.length a.Ra_eval.rows);
      let amazon = List.find (fun r -> Value.equal r.(1) (v_str "Amazon")) a.Ra_eval.rows in
      Alcotest.(check string) "old price via probe" "100.0" (Value.to_string amazon.(3)))

let test_ra_pk_probe () =
  let db = mk_db () in
  let keys = Ra.Values ([ "k" ], [ [| v_str "P2" |]; [| v_str "P9" |] ]) in
  let plan =
    Ra.Join (Ra.Inner, Ra.Binop (Ra.Eq, Ra.Col "k", Ra.Col "pid"), keys, scan_product db)
  in
  let rel = Ra_eval.eval (ctx db) plan in
  Alcotest.(check int) "only P2 matches" 1 (List.length rel.Ra_eval.rows)

(* --- SQL printing --- *)

let contains s frag =
  let n = String.length s and m = String.length frag in
  let rec go i = i + m <= n && (String.sub s i m = frag || go (i + 1)) in
  m = 0 || go 0

let test_sql_print_smoke () =
  let db = mk_db () in
  let plan =
    Ra.Order_by
      ( [ ("pid", Ra.Asc) ],
        Ra.Select
          ( Ra.Binop (Ra.Ge, Ra.Col "n", Ra.Const (v_int 2)),
            Ra.Group_by ([ "pid" ], [ ("n", Ra.Count_star) ], scan_vendor db) ) )
  in
  let sql = Sql_print.plan_to_sql plan in
  List.iter
    (fun frag ->
      if not (contains sql frag) then Alcotest.failf "missing %S in:\n%s" frag sql)
    [ "GROUP BY pid"; "COUNT(*)"; "ORDER BY pid"; "WHERE (n >= 2)" ]

let test_sql_print_old_of () =
  let sql = Sql_print.plan_to_sql (Ra.scan (Ra.Old_of "vendor") vendor_schema) in
  Alcotest.(check bool) "EXCEPT form" true (contains sql "EXCEPT SELECT * FROM INSERTED")

let test_sql_print_trigger_wrapper () =
  let db = mk_db () in
  let sql =
    Sql_print.trigger_to_sql ~name:"sqlTrigger1" ~table:"vendor" ~event:Database.Update
      ~body:(scan_vendor db)
  in
  Alcotest.(check bool) "header" true (contains sql "CREATE TRIGGER sqlTrigger1");
  Alcotest.(check bool) "referencing" true
    (contains sql "REFERENCING OLD_TABLE AS DELETED, NEW_TABLE AS INSERTED");
  Alcotest.(check bool) "statement level" true (contains sql "FOR EACH STATEMENT")

(* --- property tests --- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun i -> Value.Int i) (int_range (-5) 5);
        map (fun s -> Value.String s) (oneofl [ "a"; "b"; "c" ]);
      ])

let small_rel_gen =
  QCheck.Gen.(
    let row = map (fun (a, b) -> [| a; b |]) (pair value_gen value_gen) in
    list_size (int_range 0 12) row)

let prop_union_all_counts =
  QCheck.Test.make ~name:"union_all row count = sum of inputs" ~count:100
    (QCheck.make small_rel_gen) (fun rows ->
      let db = Database.create () in
      let v = Ra.Values ([ "a"; "b" ], rows) in
      let u =
        Ra_eval.eval (Ra_eval.ctx_of_db db) (Ra.Union { all = true; inputs = [ v; v ] })
      in
      List.length u.Ra_eval.rows = 2 * List.length rows)

let prop_distinct_idempotent =
  QCheck.Test.make ~name:"distinct is idempotent" ~count:100 (QCheck.make small_rel_gen)
    (fun rows ->
      let db = Database.create () in
      let v = Ra.Values ([ "a"; "b" ], rows) in
      let once = Ra_eval.eval (Ra_eval.ctx_of_db db) (Ra.Distinct v) in
      let twice = Ra_eval.eval (Ra_eval.ctx_of_db db) (Ra.Distinct (Ra.Distinct v)) in
      Ra_eval.equal_rel once twice)

let prop_hash_join_equals_nested_loop =
  (* Compare the equi hash join against a cross product + filter. *)
  QCheck.Test.make ~name:"hash join = cross + select" ~count:100
    (QCheck.make (QCheck.Gen.pair small_rel_gen small_rel_gen)) (fun (l, r) ->
      let db = Database.create () in
      let lv = Ra.Values ([ "la"; "lb" ], l) in
      let rv = Ra.Values ([ "ra"; "rb" ], r) in
      let pred = Ra.Binop (Ra.Eq, Ra.Col "la", Ra.Col "ra") in
      let hash = Ra_eval.eval (Ra_eval.ctx_of_db db) (Ra.Join (Ra.Inner, pred, lv, rv)) in
      let nested =
        Ra_eval.eval (Ra_eval.ctx_of_db db)
          (Ra.Select (pred, Ra.Join (Ra.Inner, Ra.Const (Value.Bool true), lv, rv)))
      in
      Ra_eval.equal_rel hash nested)

let prop_old_of_inverts_update =
  (* After random single-row updates, OLD-OF(vendor) must equal the
     pre-statement table contents. *)
  QCheck.Test.make ~name:"OLD-OF reconstructs pre-state" ~count:50
    (QCheck.make QCheck.Gen.(int_range 0 6)) (fun i ->
      let db = mk_db () in
      let before =
        Ra_eval.sorted
          (Ra_eval.eval (Ra_eval.ctx_of_db db) (Ra.scan (Ra.Base "vendor") vendor_schema))
      in
      let vendors = Table.to_rows (Database.get_table db "vendor") in
      let victim = List.nth vendors (i mod List.length vendors) in
      let ok = ref false in
      Database.create_trigger db
        { Database.trig_name = "capture";
          trig_table = "vendor";
          trig_event = Database.Update;
          prepare = None;
      relevance = None;
          sql_text = "(test)";
          body =
            (fun tc ->
              let tctx = Ra_eval.ctx_of_trigger tc in
              let old =
                Ra_eval.sorted (Ra_eval.eval tctx (Ra.scan (Ra.Old_of "vendor") vendor_schema))
              in
              ok := Ra_eval.equal_rel old before);
        };
      ignore
        (Database.update_rows db ~table:"vendor"
           ~where:(fun row -> row == victim)
           ~set:(fun row -> [| row.(0); row.(1); Value.add row.(2) (v_float 7.0) |]));
      !ok)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_union_all_counts;
      prop_distinct_idempotent;
      prop_hash_join_equals_nested_loop;
      prop_old_of_inverts_update;
    ]

let () =
  Alcotest.run "relkit"
    [ ( "value",
        [ Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "sql_eq" `Quick test_value_sql_eq;
          Alcotest.test_case "hash consistency" `Quick test_value_hash_consistent;
          Alcotest.test_case "arith" `Quick test_value_arith;
          Alcotest.test_case "literals" `Quick test_value_literals;
        ] );
      ( "schema",
        [ Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "bad pk" `Quick test_schema_rejects_bad_pk;
          Alcotest.test_case "validate row" `Quick test_schema_validate_row;
        ] );
      ( "table",
        [ Alcotest.test_case "pk lookup" `Quick test_table_pk_lookup;
          Alcotest.test_case "duplicate pk" `Quick test_table_duplicate_pk;
          Alcotest.test_case "secondary index" `Quick test_table_secondary_index;
          Alcotest.test_case "lookup scan fallback" `Quick test_table_lookup_without_index_scans;
          Alcotest.test_case "NULL keys not indexed" `Quick test_table_null_keys_not_indexed;
        ] );
      ( "database",
        [ Alcotest.test_case "fk violation" `Quick test_db_fk_violation;
          Alcotest.test_case "update trigger transitions" `Quick
            test_db_update_fires_trigger_with_transitions;
          Alcotest.test_case "statement-level firing" `Quick test_db_statement_level_firing;
          Alcotest.test_case "no fire on empty statement" `Quick
            test_db_no_fire_on_empty_statement;
          Alcotest.test_case "insert/delete events" `Quick test_db_insert_delete_events;
          Alcotest.test_case "recursion cap" `Quick test_db_trigger_recursion_cap;
          Alcotest.test_case "load skips triggers" `Quick test_db_load_rows_skips_triggers;
        ] );
      ( "ra_eval",
        [ Alcotest.test_case "scan/select/project" `Quick test_ra_scan_select_project;
          Alcotest.test_case "inner join" `Quick test_ra_inner_join;
          Alcotest.test_case "INL = hash join" `Quick test_ra_inl_equals_hash_join;
          Alcotest.test_case "left outer join" `Quick test_ra_left_outer_join;
          Alcotest.test_case "anti joins" `Quick test_ra_anti_joins;
          Alcotest.test_case "group by" `Quick test_ra_group_by;
          Alcotest.test_case "scalar agg over empty" `Quick test_ra_scalar_aggregate_over_empty;
          Alcotest.test_case "union" `Quick test_ra_union_distinct;
          Alcotest.test_case "order by" `Quick test_ra_order_by;
          Alcotest.test_case "transition tables" `Quick test_ra_transition_tables;
          Alcotest.test_case "OLD-OF reconstruction" `Quick test_ra_old_of_reconstruction;
          Alcotest.test_case "OLD-OF probe = scan" `Quick test_ra_old_of_probe_matches_full_scan;
          Alcotest.test_case "pk probe" `Quick test_ra_pk_probe;
        ] );
      ( "sql_print",
        [ Alcotest.test_case "plan fragments" `Quick test_sql_print_smoke;
          Alcotest.test_case "OLD-OF rendering" `Quick test_sql_print_old_of;
          Alcotest.test_case "trigger wrapper" `Quick test_sql_print_trigger_wrapper;
        ] );
      ("properties", qcheck_tests);
    ]
