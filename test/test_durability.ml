(* Durability subsystem tests: codec round-trips (qcheck), WAL fault
   injection (torn tails, bit flips, crash between segment rotations),
   snapshot atomicity/fallback, and end-to-end crash recovery that must
   drop exactly the torn tail and nothing else. *)

open Relkit
module Codec = Durability.Codec
module Wal = Durability.Wal
module Snapshot = Durability.Snapshot
module Recovery = Durability.Recovery
module Store = Durability.Store

let dir_counter = ref 0

let fresh_dir name =
  incr dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trigview_test_%d_%d_%s" (Unix.getpid ()) !dir_counter name)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  dir

let wal_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = "wal-")
  |> List.sort compare
  |> List.map (Filename.concat dir)

(* --- generators --- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun i -> Value.Int i) int;
        (* finite floats only: NaN is not reflexive under (=) *)
        map (fun f -> Value.Float f) (float_bound_inclusive 1e9);
        map (fun s -> Value.String s) (string_size (int_bound 12));
        map (fun b -> Value.Bool b) bool;
      ])

let row_gen = QCheck.Gen.(map Array.of_list (list_size (int_range 1 5) value_gen))
let rows_gen = QCheck.Gen.(list_size (int_bound 6) row_gen)
let name_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))

let col_type_gen =
  QCheck.Gen.oneofl [ Schema.TInt; Schema.TFloat; Schema.TString; Schema.TBool ]

(* Built directly as a record (not via Schema.make) so the codec is exercised
   on arbitrary nullable flags and constraint lists, valid or not. *)
let schema_gen =
  QCheck.Gen.(
    let column_gen =
      map3
        (fun n t nl -> { Schema.col_name = n; col_type = t; nullable = nl })
        name_gen col_type_gen bool
    in
    let fk_gen =
      map3
        (fun cols tbl refs ->
          { Schema.fk_columns = cols; fk_table = tbl; fk_ref_columns = refs })
        (list_size (int_range 1 2) name_gen)
        name_gen
        (list_size (int_range 1 2) name_gen)
    in
    map
      (fun (name, columns, pk, uniques, fks) ->
        { Schema.name; columns; primary_key = pk; uniques; foreign_keys = fks })
      (tup5 name_gen
         (list_size (int_range 1 4) column_gen)
         (list_size (int_bound 2) name_gen)
         (list_size (int_bound 2) (list_size (int_range 1 2) name_gen))
         (list_size (int_bound 2) fk_gen)))

let stmt_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun t r -> Codec.Insert { table = t; rows = r }) name_gen rows_gen;
        (* before/after must be pairwise: the decoder rejects a count mismatch *)
        map2
          (fun t pairs ->
            Codec.Update
              { table = t; before = List.map fst pairs; after = List.map snd pairs })
          name_gen
          (list_size (int_bound 6) (pair row_gen row_gen));
        map2 (fun t r -> Codec.Delete { table = t; rows = r }) name_gen rows_gen;
        map (fun s -> Codec.Create_table s) schema_gen;
        map2 (fun t c -> Codec.Create_index { table = t; column = c }) name_gen name_gen;
        map3 (fun k n p -> Codec.Meta { kind = k; name = n; payload = p })
          name_gen name_gen (string_size (int_bound 40));
      ])

let stmt_arb = QCheck.make ~print:(fun s -> Codec.encode_stmt s |> String.escaped) stmt_gen

(* --- codec --- *)

let codec_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec: decode (encode stmt) = stmt" stmt_arb
    (fun stmt -> Codec.decode_stmt (Codec.encode_stmt stmt) = stmt)

let codec_trailing_garbage_rejected =
  QCheck.Test.make ~count:100 ~name:"codec: trailing bytes rejected" stmt_arb
    (fun stmt ->
      match Codec.decode_stmt (Codec.encode_stmt stmt ^ "x") with
      | _ -> false
      | exception Codec.Corrupt _ -> true)

let codec_truncation_rejected =
  QCheck.Test.make ~count:100 ~name:"codec: truncated payload rejected" stmt_arb
    (fun stmt ->
      let s = Codec.encode_stmt stmt in
      QCheck.assume (String.length s > 1);
      match Codec.decode_stmt (String.sub s 0 (String.length s - 1)) with
      | _ -> false
      | exception Codec.Corrupt _ -> true)

let test_crc32_known () =
  (* the zlib/IEEE test vector *)
  Alcotest.(check int)
    "crc32 of \"123456789\"" 0xcbf43926
    (Codec.crc32 "123456789")

(* --- WAL --- *)

let sample_stmts n =
  List.init n (fun i ->
      Codec.Insert
        { table = "t";
          rows = [ [| Value.Int i; Value.String (Printf.sprintf "row%d" i) |] ];
        })

let test_wal_roundtrip () =
  let dir = fresh_dir "wal_roundtrip" in
  let stmts = sample_stmts 20 in
  let wal = Wal.open_log ~policy:Wal.Always dir in
  List.iter (Wal.append wal) stmts;
  Wal.close wal;
  let records, status = Wal.read_dir dir in
  Alcotest.(check bool) "clean tail" true (status = Wal.Clean);
  Alcotest.(check bool) "all records back in order" true (records = stmts)

let test_wal_torn_tail () =
  let dir = fresh_dir "wal_torn" in
  let stmts = sample_stmts 10 in
  let wal = Wal.open_log ~policy:Wal.Always dir in
  List.iter (Wal.append wal) stmts;
  Wal.close wal;
  let path = List.hd (wal_files dir) in
  (* cut the last record mid-payload *)
  Unix.truncate path ((Unix.stat path).Unix.st_size - 3);
  let records, status = Wal.read_dir dir in
  Alcotest.(check int) "one record dropped" 9 (List.length records);
  Alcotest.(check bool) "prefix intact" true
    (records = List.filteri (fun i _ -> i < 9) stmts);
  (match status with
  | Wal.Torn { reason; _ } ->
    Alcotest.(check string) "reason" "truncated record payload" reason
  | Wal.Clean -> Alcotest.fail "expected a torn tail")

let test_wal_torn_header () =
  let dir = fresh_dir "wal_torn_header" in
  let wal = Wal.open_log ~policy:Wal.Always dir in
  List.iter (Wal.append wal) (sample_stmts 5);
  Wal.close wal;
  let path = List.hd (wal_files dir) in
  (* leave 4 bytes of the next header: not even a full length+crc *)
  let full = (Unix.stat path).Unix.st_size in
  Unix.truncate path (full - 1);
  let with_partial_header, _ = Wal.read_dir dir in
  Alcotest.(check int) "payload cut" 4 (List.length with_partial_header)

let test_wal_bit_flip () =
  let dir = fresh_dir "wal_flip" in
  let stmts = sample_stmts 10 in
  let wal = Wal.open_log ~policy:Wal.Always dir in
  List.iter (Wal.append wal) stmts;
  Wal.close wal;
  let path = List.hd (wal_files dir) in
  (* flip one byte inside the 6th record's payload *)
  let size = (Unix.stat path).Unix.st_size in
  let record_bytes = size / 10 in
  let victim = (5 * record_bytes) + Wal.header_bytes + 2 in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd victim Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.lseek fd victim Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let records, status = Wal.read_dir dir in
  Alcotest.(check int) "stops before the corrupt record" 5 (List.length records);
  (match status with
  | Wal.Torn { reason; _ } ->
    Alcotest.(check string) "reason" "checksum mismatch" reason
  | Wal.Clean -> Alcotest.fail "expected checksum rejection")

let test_wal_rotation () =
  let dir = fresh_dir "wal_rotate" in
  let stmts = sample_stmts 200 in
  (* tiny segment limit: force many rotations *)
  let wal = Wal.open_log ~segment_limit:256 ~policy:Wal.Never dir in
  List.iter (Wal.append wal) stmts;
  Wal.close wal;
  Alcotest.(check bool) "several segments" true (List.length (wal_files dir) > 3);
  let records, status = Wal.read_dir dir in
  Alcotest.(check bool) "clean" true (status = Wal.Clean);
  Alcotest.(check bool) "order preserved across segments" true (records = stmts)

let test_wal_crash_between_rotations () =
  (* a crash right after [rotate] leaves an empty newest segment — the reader
     must treat that as a clean (empty) tail, not an error *)
  let dir = fresh_dir "wal_rotate_crash" in
  let stmts = sample_stmts 8 in
  let wal = Wal.open_log ~policy:Wal.Always dir in
  List.iter (Wal.append wal) stmts;
  ignore (Wal.rotate wal);
  Wal.close wal;
  Alcotest.(check int) "two segments on disk" 2 (List.length (wal_files dir));
  let records, status = Wal.read_dir dir in
  Alcotest.(check bool) "clean" true (status = Wal.Clean);
  Alcotest.(check bool) "nothing lost" true (records = stmts);
  (* and a torn tail in an *earlier* segment hides later segments entirely:
     records past a tear can depend on the lost ones *)
  let first = List.hd (wal_files dir) in
  Unix.truncate first ((Unix.stat first).Unix.st_size - 2);
  let records, status = Wal.read_dir dir in
  Alcotest.(check int) "only the intact prefix" 7 (List.length records);
  Alcotest.(check bool) "torn" true (status <> Wal.Clean)

(* --- snapshots --- *)

let small_db () =
  let db = Database.create () in
  Database.create_table db
    (Schema.make ~name:"a"
       ~columns:[ ("id", Schema.TInt); ("label", Schema.TString) ]
       ~primary_key:[ "id" ] ());
  Database.create_table db
    (Schema.make ~name:"b"
       ~columns:[ ("id", Schema.TInt); ("aid", Schema.TInt) ]
       ~primary_key:[ "id" ]
       ~foreign_keys:
         [ { Schema.fk_columns = [ "aid" ]; fk_table = "a"; fk_ref_columns = [ "id" ] } ]
       ());
  Database.create_index db ~table:"b" ~column:"aid";
  Database.insert_rows db ~table:"a"
    (List.init 5 (fun i -> [| Value.Int i; Value.String (Printf.sprintf "a%d" i) |]));
  Database.insert_rows db ~table:"b"
    (List.init 10 (fun i -> [| Value.Int i; Value.Int (i mod 5) |]));
  db

let sorted_rows db name =
  List.sort compare (Table.to_rows (Database.get_table db name))

let test_snapshot_roundtrip () =
  let dir = fresh_dir "snap_roundtrip" in
  Wal.mkdirs dir;
  let db = small_db () in
  let meta = [ ("view", "v", "<doc/>"); ("xmltrigger", "t", "CREATE TRIGGER ...") ] in
  let contents = Snapshot.capture db ~exclude:(fun _ -> false) ~meta ~wal_start:7 in
  let path = Snapshot.write ~dir ~id:3 contents in
  let back = Snapshot.load path in
  Alcotest.(check bool) "contents round-trip" true (back = contents);
  Alcotest.(check int) "wal_start" 7 back.Snapshot.wal_start;
  Alcotest.(check int) "meta entries" 2 (List.length back.Snapshot.meta)

let test_snapshot_excludes_system_tables () =
  let dir = fresh_dir "snap_exclude" in
  Wal.mkdirs dir;
  let db = small_db () in
  let contents =
    Snapshot.capture db ~exclude:(fun n -> n = "b") ~meta:[] ~wal_start:0
  in
  Alcotest.(check (list string)) "only table a"
    [ "a" ]
    (List.map (fun (s, _, _) -> s.Schema.name) contents.Snapshot.tables)

let test_snapshot_corrupt_fallback () =
  let dir = fresh_dir "snap_fallback" in
  Wal.mkdirs dir;
  let db = small_db () in
  let contents = Snapshot.capture db ~exclude:(fun _ -> false) ~meta:[] ~wal_start:1 in
  ignore (Snapshot.write ~dir ~id:1 contents);
  let newest = Snapshot.write ~dir ~id:2 { contents with Snapshot.wal_start = 2 } in
  (* corrupt the newest snapshot: flip a byte past the header *)
  let fd = Unix.openfile newest [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 20 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  (match Snapshot.latest dir with
  | Some (id, c) ->
    Alcotest.(check int) "fell back to snapshot 1" 1 id;
    Alcotest.(check int) "its wal_start" 1 c.Snapshot.wal_start
  | None -> Alcotest.fail "expected fallback to the older snapshot");
  Snapshot.prune dir ~keep:1;
  Alcotest.(check (list int)) "prune keeps newest id" [ 2 ] (Snapshot.ids dir)

(* --- recovery --- *)

(* Attach a store to a fresh database, run DML through the normal path (so
   the WAL sees it), and hand back the pieces. *)
let durable_db dir =
  Wal.mkdirs dir;
  let db = Database.create () in
  let store = Store.attach ~policy:Wal.Always ~data_dir:dir db in
  Database.create_table db
    (Schema.make ~name:"a"
       ~columns:[ ("id", Schema.TInt); ("label", Schema.TString) ]
       ~primary_key:[ "id" ] ());
  Database.insert_rows db ~table:"a"
    (List.init 8 (fun i -> [| Value.Int i; Value.String (Printf.sprintf "v%d" i) |]));
  (db, store)

let test_recovery_wal_only () =
  let dir = fresh_dir "rec_wal" in
  let db, _store = durable_db dir in
  ignore
    (Database.update_pk db ~table:"a" ~pk:[ Value.Int 3 ]
       ~set:(fun r -> [| r.(0); Value.String "updated" |]));
  ignore (Database.delete_pk db ~table:"a" ~pk:[ Value.Int 7 ]);
  let outcome = Recovery.recover ~data_dir:dir () in
  Alcotest.(check (list string)) "no errors" [] outcome.Recovery.errors;
  Alcotest.(check bool) "clean" true (outcome.Recovery.wal_status = Wal.Clean);
  Alcotest.(check bool) "rows match the live db" true
    (sorted_rows outcome.Recovery.db "a" = sorted_rows db "a");
  Alcotest.(check int) "deleted row stayed deleted" 7
    (Table.row_count (Database.get_table outcome.Recovery.db "a"))

let test_recovery_snapshot_plus_tail () =
  let dir = fresh_dir "rec_snap_tail" in
  let db, store = durable_db dir in
  ignore (Store.checkpoint store db ~meta:[]);
  (* post-checkpoint tail *)
  Database.insert_rows db ~table:"a" [ [| Value.Int 100; Value.String "tail" |] ];
  let outcome = Recovery.recover ~data_dir:dir () in
  Alcotest.(check bool) "snapshot used" true (outcome.Recovery.snapshot_id <> None);
  Alcotest.(check int) "only the tail replayed" 1 outcome.Recovery.wal_applied;
  Alcotest.(check bool) "rows match" true
    (sorted_rows outcome.Recovery.db "a" = sorted_rows db "a")

let test_recovery_torn_tail_dropped () =
  let dir = fresh_dir "rec_torn" in
  let db, _store = durable_db dir in
  Database.insert_rows db ~table:"a" [ [| Value.Int 50; Value.String "kept" |] ];
  Database.insert_rows db ~table:"a" [ [| Value.Int 51; Value.String "torn off" |] ];
  (* crash mid-write of the final record *)
  let path = List.hd (List.rev (wal_files dir)) in
  Unix.truncate path ((Unix.stat path).Unix.st_size - 5);
  let outcome = Recovery.recover ~data_dir:dir () in
  Alcotest.(check bool) "torn" true (outcome.Recovery.wal_status <> Wal.Clean);
  Alcotest.(check (list string)) "replay itself clean" [] outcome.Recovery.errors;
  let t = Database.get_table outcome.Recovery.db "a" in
  Alcotest.(check bool) "last complete record survived" true
    (Table.find_pk t [ Value.Int 50 ] <> None);
  Alcotest.(check bool) "torn record dropped" true
    (Table.find_pk t [ Value.Int 51 ] = None)

let test_recovery_system_tables_excluded () =
  let dir = fresh_dir "rec_system" in
  Wal.mkdirs dir;
  let db = Database.create () in
  let store =
    Store.attach ~policy:Wal.Always
      ~is_system_table:(fun n -> n = "sys") ~data_dir:dir db
  in
  Database.create_table db
    (Schema.make ~name:"sys" ~columns:[ ("id", Schema.TInt) ] ~primary_key:[ "id" ] ());
  Database.create_table db
    (Schema.make ~name:"user" ~columns:[ ("id", Schema.TInt) ] ~primary_key:[ "id" ] ());
  Database.insert_rows db ~table:"sys" [ [| Value.Int 1 |] ];
  Database.insert_rows db ~table:"user" [ [| Value.Int 1 |] ];
  ignore (Store.checkpoint store db ~meta:[]);
  let outcome = Recovery.recover ~data_dir:dir () in
  Alcotest.(check bool) "system table not recovered" true
    (Database.find_table outcome.Recovery.db "sys" = None);
  Alcotest.(check bool) "user table recovered" true
    (Database.find_table outcome.Recovery.db "user" <> None)

let test_checkpoint_truncates_wal () =
  let dir = fresh_dir "rec_truncate" in
  let db, store = durable_db dir in
  let before = Wal.total_bytes dir in
  Alcotest.(check bool) "wal non-empty before checkpoint" true (before > 0);
  ignore (Store.checkpoint store db ~meta:[]);
  Alcotest.(check int) "wal empty after checkpoint" 0 (Wal.total_bytes dir);
  (* crash with *zero* WAL tail: snapshot alone must carry the state *)
  let outcome = Recovery.recover ~data_dir:dir () in
  Alcotest.(check bool) "rows restored from snapshot only" true
    (sorted_rows outcome.Recovery.db "a" = sorted_rows db "a")

(* --- runtime reopen: views + XML triggers re-armed --- *)

let product_schema () =
  Schema.make ~name:"product"
    ~columns:[ ("pid", Schema.TString); ("pname", Schema.TString) ]
    ~primary_key:[ "pid" ] ()

let tiny_view = {|<doc>{for $p in view("default")/product/row return <p name="{$p/pname}"><id>{$p/pid}</id></p>}</doc>|}

let test_reopen_rearms_triggers () =
  let dir = fresh_dir "reopen" in
  let fired = ref [] in
  let db = Database.create () in
  Database.create_table db (product_schema ());
  Database.insert_rows db ~table:"product"
    [ [| Value.String "P1"; Value.String "widget" |] ];
  let mgr = Trigview.Runtime.create db in
  Trigview.Runtime.define_view mgr ~name:"doc" tiny_view;
  Trigview.Runtime.register_action mgr ~name:"note" (fun fi ->
      fired := fi.Trigview.Runtime.fi_trigger :: !fired);
  Trigview.Runtime.attach_durability mgr ~data_dir:dir;
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER w AFTER UPDATE ON view('doc')/p WHERE NEW_NODE/@name = 'gadget' DO note(NEW_NODE)";
  Trigview.Runtime.durability_sync mgr;
  (* crash; recover into a fresh runtime with the action re-supplied *)
  let fired' = ref [] in
  let r =
    Trigview.Runtime.reopen
      ~actions:
        [ ("note", fun fi -> fired' := fi.Trigview.Runtime.fi_trigger :: !fired') ]
      ~data_dir:dir ()
  in
  Alcotest.(check (list string)) "no recovery errors" []
    (r.Trigview.Runtime.recovery.Recovery.errors @ r.Trigview.Runtime.rearm_errors);
  Alcotest.(check int) "view re-armed" 1 r.Trigview.Runtime.rearmed_views;
  Alcotest.(check int) "trigger re-armed" 1 r.Trigview.Runtime.rearmed_triggers;
  Alcotest.(check (list string)) "trigger listed" [ "w" ]
    (Trigview.Runtime.trigger_names r.Trigview.Runtime.runtime);
  (* the recovered trigger must actually fire on the next statement *)
  ignore
    (Database.update_pk
       (Trigview.Runtime.database r.Trigview.Runtime.runtime)
       ~table:"product" ~pk:[ Value.String "P1" ]
       ~set:(fun row -> [| row.(0); Value.String "gadget" |]));
  Alcotest.(check (list string)) "fired after recovery" [ "w" ] !fired'

let test_reopen_missing_action_reported () =
  let dir = fresh_dir "reopen_missing" in
  let db = Database.create () in
  Database.create_table db (product_schema ());
  let mgr = Trigview.Runtime.create db in
  Trigview.Runtime.define_view mgr ~name:"doc" tiny_view;
  Trigview.Runtime.register_action mgr ~name:"note" (fun _ -> ());
  Trigview.Runtime.attach_durability mgr ~data_dir:dir;
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER w AFTER UPDATE ON view('doc')/p DO note(NEW_NODE)";
  Trigview.Runtime.durability_sync mgr;
  (* reopen without re-supplying the action: recovery must survive and say so *)
  let r = Trigview.Runtime.reopen ~actions:[] ~data_dir:dir () in
  Alcotest.(check int) "trigger not re-armed" 0 r.Trigview.Runtime.rearmed_triggers;
  Alcotest.(check bool) "failure reported" true
    (r.Trigview.Runtime.rearm_errors <> [])

let test_drop_trigger_survives_reopen () =
  let dir = fresh_dir "reopen_drop" in
  let db = Database.create () in
  Database.create_table db (product_schema ());
  let mgr = Trigview.Runtime.create db in
  Trigview.Runtime.define_view mgr ~name:"doc" tiny_view;
  Trigview.Runtime.register_action mgr ~name:"note" (fun _ -> ());
  Trigview.Runtime.attach_durability mgr ~data_dir:dir;
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER keepme AFTER UPDATE ON view('doc')/p DO note(NEW_NODE)";
  Trigview.Runtime.create_trigger mgr
    "CREATE TRIGGER dropme AFTER UPDATE ON view('doc')/p DO note(NEW_NODE)";
  Trigview.Runtime.drop_trigger mgr "dropme";
  Trigview.Runtime.durability_sync mgr;
  let r =
    Trigview.Runtime.reopen ~actions:[ ("note", fun _ -> ()) ] ~data_dir:dir ()
  in
  Alcotest.(check (list string)) "only the surviving trigger" [ "keepme" ]
    (Trigview.Runtime.trigger_names r.Trigview.Runtime.runtime)

let () =
  Alcotest.run "durability"
    [ ( "codec",
        [ QCheck_alcotest.to_alcotest codec_roundtrip;
          QCheck_alcotest.to_alcotest codec_trailing_garbage_rejected;
          QCheck_alcotest.to_alcotest codec_truncation_rejected;
          Alcotest.test_case "crc32 test vector" `Quick test_crc32_known;
        ] );
      ( "wal fault injection",
        [ Alcotest.test_case "round-trip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail mid-payload" `Quick test_wal_torn_tail;
          Alcotest.test_case "torn tail mid-header" `Quick test_wal_torn_header;
          Alcotest.test_case "bit flip rejected by checksum" `Quick test_wal_bit_flip;
          Alcotest.test_case "segment rotation" `Quick test_wal_rotation;
          Alcotest.test_case "crash between rotations" `Quick
            test_wal_crash_between_rotations;
        ] );
      ( "snapshots",
        [ Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "system tables excluded" `Quick
            test_snapshot_excludes_system_tables;
          Alcotest.test_case "corrupt newest falls back" `Quick
            test_snapshot_corrupt_fallback;
        ] );
      ( "recovery",
        [ Alcotest.test_case "WAL-only replay" `Quick test_recovery_wal_only;
          Alcotest.test_case "snapshot + tail" `Quick test_recovery_snapshot_plus_tail;
          Alcotest.test_case "torn tail dropped, prefix kept" `Quick
            test_recovery_torn_tail_dropped;
          Alcotest.test_case "system tables excluded" `Quick
            test_recovery_system_tables_excluded;
          Alcotest.test_case "checkpoint truncates WAL" `Quick
            test_checkpoint_truncates_wal;
        ] );
      ( "runtime reopen",
        [ Alcotest.test_case "views + triggers re-armed and firing" `Quick
            test_reopen_rearms_triggers;
          Alcotest.test_case "missing action reported, not fatal" `Quick
            test_reopen_missing_action_reported;
          Alcotest.test_case "dropped trigger stays dropped" `Quick
            test_drop_trigger_survives_reopen;
        ] );
    ]
