(* The multicore firing pipeline (PR 7).

   - Pool: result ordering, caller participation, exception propagation.
   - Squeue: the conservation invariant under real cross-domain contention
     (four producer domains racing a flushing consumer).
   - Differential property: a Table-2 workload driven at domains=4 must be
     indistinguishable from domains=1 for every strategy — same final
     document, same (ordering-normalized) firing log, same audit pair
     accounting, same counters.
   - Hub writer domain: async sink delivery delivers exactly the sync set. *)

open Relkit
module Runtime = Trigview.Runtime
module Pool = Trigview.Pool
module Workload = Workloadlib.Workload
module Squeue = Subscribe.Squeue

(* --- pool --- *)

let test_pool_ordering () =
  let pool = Pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let results = Pool.run_list pool (List.init 100 (fun i () -> i * i)) in
  Alcotest.(check (list int))
    "results in submission order"
    (List.init 100 (fun i -> i * i))
    results;
  Alcotest.(check (list int)) "empty list" [] (Pool.run_list pool []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.run_list pool [ (fun () -> 7) ])

let test_pool_sequential_fallback () =
  let pool = Pool.create ~domains:1 in
  Alcotest.(check int) "size 1" 1 (Pool.size pool);
  Alcotest.(check (list int))
    "runs inline" [ 1; 2; 3 ]
    (Pool.run_list pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ]);
  Pool.shutdown pool

let test_pool_exception () =
  let pool = Pool.create ~domains:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (match
     Pool.run_list pool
       [ (fun () -> 1); (fun () -> failwith "second"); (fun () -> failwith "third") ]
   with
  | _ -> Alcotest.fail "expected the task exception to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "lowest-index failure wins" "second" msg);
  (* the pool survives a failed batch *)
  Alcotest.(check (list int)) "pool reusable after failure" [ 9 ]
    (Pool.run_list pool [ (fun () -> 9) ])

let test_pool_registry_shared () =
  let a = Pool.get ~domains:4 in
  let b = Pool.get ~domains:4 in
  Alcotest.(check bool) "one process-wide pool per size" true (a == b);
  Alcotest.(check int) "sequential pool is size 1" 1 (Pool.size (Pool.get ~domains:1))

(* --- squeue under contention --- *)

let test_squeue_contention () =
  let q = Squeue.create ~capacity:64 ~overflow:Squeue.Drop_oldest ~coalesce:true () in
  let producers = 4 and per = 2_000 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (Squeue.push q ~key:(Printf.sprintf "k%d" (i mod 8)) ((p * per) + i))
            done))
  in
  (* race a consumer against the producers; the invariant must hold on
     every snapshot taken mid-flight *)
  let drained = ref 0 in
  for _ = 1 to 200 do
    drained := !drained + List.length (Squeue.flush q);
    if not (Squeue.invariant_holds q) then
      Alcotest.fail "conservation invariant violated under contention"
  done;
  List.iter Domain.join doms;
  drained := !drained + List.length (Squeue.flush q);
  Alcotest.(check bool) "invariant at quiescence" true (Squeue.invariant_holds q);
  Alcotest.(check int) "every push accounted" (producers * per) (Squeue.enqueued q);
  Alcotest.(check int) "conservation: enqueued = delivered + dropped + coalesced"
    (producers * per)
    (Squeue.delivered q + Squeue.dropped q + Squeue.coalesced q + Squeue.depth q);
  Alcotest.(check int) "drained items = delivered counter" (Squeue.delivered q) !drained;
  Alcotest.(check int) "nothing pending after final flush" 0 (Squeue.depth q)

let test_squeue_drop_newest_contention () =
  let q = Squeue.create ~capacity:16 ~overflow:Squeue.Drop_newest () in
  let doms =
    List.init 3 (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to 999 do
              ignore (Squeue.push q ~key:"" ((p * 1000) + i))
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check bool) "invariant after racing producers" true (Squeue.invariant_holds q);
  Alcotest.(check int) "all pushes counted" 3_000 (Squeue.enqueued q);
  Alcotest.(check int) "ring never overfilled" 16 (Squeue.depth q)

(* --- differential property: domains=1 vs domains=4 --- *)

let small =
  { Workload.depth = 3; leaf_tuples = 96; fanout = 8; num_triggers = 12; num_satisfied = 4 }

(* Twelve triggers in two structural families (so GROUPED forms two
   groups and the pool has independent group work), four satisfied.  The
   workload generator's own triggers carry negative count thresholds,
   which MATERIALIZED's fallback condition evaluator rejects (unary minus
   is arithmetic); these stay inside what every strategy supports. *)
let install_test_triggers mgr ~target =
  for i = 0 to small.Workload.num_triggers - 1 do
    let const =
      if i < small.Workload.num_satisfied then target
      else Printf.sprintf "nomatch%d" i
    in
    let conjunct =
      if i mod 2 = 0 then "" else " and count(NEW_NODE/e2) >= 1"
    in
    Runtime.create_trigger mgr
      (Printf.sprintf
         "CREATE TRIGGER bench%d AFTER UPDATE ON view('doc')/e1 WHERE \
          NEW_NODE/@name = '%s'%s DO record(NEW_NODE)"
         i const conjunct)
  done

(* One full run: build, install, drive [ops], then summarize everything the
   determinism contract promises.  The firing log is ordering-normalized
   (sorted) before comparison. *)
let run_workload ~domains ~strategy ops =
  let built = Workload.build small in
  let db = built.Workload.db in
  let tuning = { Runtime.default_tuning with Runtime.domains } in
  let mgr = Runtime.create ~strategy ~tuning db in
  Runtime.define_view mgr ~name:"doc" built.Workload.view_text;
  let log = ref [] in
  Runtime.register_action mgr ~name:"record" (fun fi ->
      log :=
        ( fi.Runtime.fi_stmt_id,
          fi.Runtime.fi_trigger,
          Database.string_of_event fi.Runtime.fi_event )
        :: !log);
  install_test_triggers mgr ~target:built.Workload.top_names.(0);
  Runtime.set_audit mgr true;
  List.iter
    (fun (top, step) ->
      Workload.update_leaf built
        ~top_index:(top mod Array.length built.Workload.top_names)
        ~step)
    ops;
  let doc =
    let schema_of name = Table.schema (Database.get_table db name) in
    let view =
      Xquery.Compile.view_of_string ~schema_of ~name:"doc" built.Workload.view_text
    in
    Xmlkit.Xml.to_string (Xquery.Compile.materialize (Ra_eval.ctx_of_db db) view)
  in
  let pairs =
    List.map
      (fun r ->
        Obs.Audit.
          ( r.stmt_id,
            r.sql_trigger,
            r.delta_rows,
            r.nabla_rows,
            r.pairs_computed,
            r.pairs_spurious,
            r.pairs_kept,
            r.dispatched ))
      (Runtime.audit_records mgr)
  in
  let s = Runtime.stats mgr in
  ( doc,
    List.sort compare !log,
    List.sort compare pairs,
    (s.Runtime.sql_firings, s.Runtime.rows_computed, s.Runtime.actions_dispatched,
     s.Runtime.prefilter_skips) )

let strategies =
  [ Runtime.Ungrouped; Runtime.Grouped; Runtime.Grouped_agg; Runtime.Materialized ]

let op_gen = QCheck.Gen.(pair (int_range 0 11) (int_range 0 40))

let prop_parallel_differential =
  QCheck.Test.make ~name:"domains=4 = domains=1 across all strategies" ~count:8
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 6) op_gen))
    (fun ops ->
      List.for_all
        (fun strategy ->
          let doc1, log1, pairs1, stats1 = run_workload ~domains:1 ~strategy ops in
          let doc4, log4, pairs4, stats4 = run_workload ~domains:4 ~strategy ops in
          doc1 = doc4 && log1 = log4 && pairs1 = pairs4 && stats1 = stats4)
        strategies)

(* --- hub writer domain --- *)

let test_writer_domain_delivery () =
  let run ~domains =
    let built = Workload.build small in
    let tuning = { Runtime.default_tuning with Runtime.domains } in
    let mgr = Runtime.create ~strategy:Runtime.Grouped ~tuning built.Workload.db in
    Runtime.define_view mgr ~name:"doc" built.Workload.view_text;
    let hub = Subscribe.attach mgr in
    let seen = Atomic.make 0 in
    Subscribe.add_callback hub (fun _ -> Atomic.incr seen);
    if domains > 1 then Subscribe.start_writer hub;
    let target = built.Workload.top_names.(0) in
    for i = 0 to 3 do
      Subscribe.subscribe hub
        (Printf.sprintf "w%d AFTER UPDATE ON view('doc')/e1 WHERE NEW_NODE/@name = '%s'"
           i target)
    done;
    let total = ref 0 in
    for step = 0 to 9 do
      Workload.update_leaf built ~top_index:0 ~step;
      total := !total + Subscribe.flush hub
    done;
    Subscribe.drain_writer hub;
    Subscribe.stop_writer hub;
    Alcotest.(check int)
      (Printf.sprintf "callback saw every notification (domains=%d)" domains)
      !total (Atomic.get seen);
    !total
  in
  let sync = run ~domains:1 in
  let async = run ~domains:4 in
  Alcotest.(check int) "async delivery set = sync delivery set" sync async;
  Alcotest.(check bool) "something was delivered" true (sync > 0)

let test_writer_stop_idempotent () =
  let built = Workload.build small in
  let mgr = Runtime.create ~strategy:Runtime.Grouped built.Workload.db in
  Runtime.define_view mgr ~name:"doc" built.Workload.view_text;
  let hub = Subscribe.attach mgr in
  Subscribe.start_writer hub;
  Subscribe.start_writer hub;  (* second start is a no-op *)
  Subscribe.stop_writer hub;
  Subscribe.stop_writer hub;  (* second stop is a no-op *)
  Subscribe.drain_writer hub  (* drain with no writer is a no-op *)

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "result ordering" `Quick test_pool_ordering;
          Alcotest.test_case "sequential fallback" `Quick test_pool_sequential_fallback;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "process-global registry" `Quick test_pool_registry_shared;
        ] );
      ( "squeue",
        [ Alcotest.test_case "conservation under contention" `Quick test_squeue_contention;
          Alcotest.test_case "drop-newest under contention" `Quick
            test_squeue_drop_newest_contention;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest [ prop_parallel_differential ] );
      ( "hub",
        [ Alcotest.test_case "writer-domain delivery" `Quick test_writer_domain_delivery;
          Alcotest.test_case "writer lifecycle idempotent" `Quick
            test_writer_stop_idempotent;
        ] );
    ]
